# Local entry points mirroring .github/workflows/ci.yml step for step, so
# local and CI invocations stay identical. `make ci` runs the whole gate.

GO ?= go

# Concurrency-critical packages for the -race pass (the serving layer, the
# oracle registry, the conn dynamic/forest update paths, the parallel-build
# oracles and generators, plus their concurrently-used dependencies); the
# full suite under -race is too slow for a gate.
RACE_PKGS := ./internal/serve/... ./internal/oracle/... ./internal/store/... \
             ./internal/conn/ ./internal/asym/ ./internal/obs/ \
             ./internal/parallel/ ./internal/eulertour/ ./internal/graphio/ \
             ./internal/unionfind/ \
             ./internal/bicc/ ./internal/spanning/ ./internal/ldd/ \
             ./internal/graph/

.PHONY: build test race bench bench-record bench-smoke lint serve smoke smoke-churn smoke-multitenant smoke-restart ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Every paper-table benchmark executes once (smoke); use
# `go test -bench . -benchtime 3s .` for real measurements.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Regenerate the committed BENCH_*.json files at the repo root: the pinned
# engine sweep on both dispatch paths (fast + legacy baseline) and the HTTP
# sweep. Graph shapes and the uniform/powerlaw asymmetric costs are
# bit-stable across machines; churn asym fields race the rebuilder and are
# only approximately stable; QPS/latency/alloc fields vary by host (see
# docs/benchmark.md).
bench-record:
	$(GO) run ./cmd/wecbench -exp bench -benchlegacy -benchout .

# Seconds-scale version of bench-record: tiny sizes and query counts, all
# three BENCH files emitted to a scratch dir (BENCH_SMOKE_OUT overrides)
# and schema-validated — the harness exits nonzero on a malformed document.
# Never writes to the repo root, so the committed files stay untouched.
bench-smoke:
	@out=$${BENCH_SMOKE_OUT:-$$(mktemp -d)}; \
	$(GO) run ./cmd/wecbench -exp bench -benchlegacy \
	  -benchsizes 256,512 -benchqueries 768 -benchhttpqueries 768 \
	  -benchbatch 64 -benchout $$out && ls -l $$out/BENCH_*.json

# gofmt + vet + the repository's own invariant analyzers (weclint: metered
# access, snapshot immutability, typed errors, the zero-alloc hot path,
# godoc coverage, //wec: directive hygiene — see docs/static-analysis.md).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
	  echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/weclint ./...

# Run the query daemon on a generated graph (override with ARGS, e.g.
# make serve ARGS="-graph edges.txt -omega 256 -addr :9090").
serve:
	$(GO) run ./cmd/oracled $(ARGS)

# End-to-end smoke of the serving path: the wecbench load generator starts
# an in-process oracled and exits nonzero unless every query is answered.
smoke:
	$(GO) run ./cmd/wecbench -exp serve -servequeries 2000 -serveconc 2 -scale 1

# End-to-end smoke of the dynamic-update path (race-built): /update batches
# cycling insertion-only / deletion-heavy / mixed shapes under query load,
# every post-swap answer verified against a from-scratch oracle, the
# per-oracle strategy ladder asserted exactly (patch-insert, patch-delete,
# scheduled re-base — and zero full conn rebuilds, since every removal is
# chosen split-free), and patched rebuilds must write strictly less than a
# full build. Bicc deferral gates ride along: zero publish-path bicc
# rebuilds, every batch deferred or absorbed, lazy builds == lazy
# deferrals. The second phase restricts the query load to conn-family
# kinds and asserts — counter-gated via /stats — that a conn-only workload
# triggers ZERO bicc rebuilds across the whole churn run.
smoke-churn:
	$(GO) run -race ./cmd/wecbench -exp serve -servechurn 9 -servechurnedges 24 -servechurnrebase 5 -serveconc 2 -scale 1
	$(GO) run -race ./cmd/wecbench -exp serve -servechurn 6 -servechurnedges 16 -servechurnrebase 3 -serveconc 2 -scale 1 -servechurnconnonly

# End-to-end smoke of the multi-graph registry, under the race detector:
# two graphs created through the lifecycle API and served concurrently,
# one churned, answers verified against per-graph reference oracles,
# admission control demonstrated (queue-full → 429, rejection counted in
# /stats), one graph deleted.
smoke-multitenant:
	$(GO) run -race ./cmd/wecbench -exp multitenant -mtgraphs 2 -mtqueries 1500 -mtchurn 3 -mtconc 2 -scale 1

# End-to-end smoke of the durable store, under the race detector on both
# sides of the process boundary: a race-built oracled is started with
# -datadir, two graphs are created and churned under load, the daemon is
# SIGKILL'd mid-churn, restarted, and every graph must recover to its last
# acknowledged epoch with query answers matching a from-scratch reference
# oracle; a deleted graph must stay deleted, and a graceful-shutdown
# snapshot-fold round runs after that.
smoke-restart:
	@tmp=$$(mktemp -d); \
	$(GO) build -race -o $$tmp/oracled ./cmd/oracled && \
	$(GO) run -race ./cmd/wecbench -exp restart -restartchurn 4 -oracledbin $$tmp/oracled; \
	rc=$$?; rm -rf $$tmp; exit $$rc

ci: lint build test race bench bench-smoke smoke smoke-churn smoke-multitenant smoke-restart
