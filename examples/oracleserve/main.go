// Oracle serving: run the batched query engine (internal/serve) in-process
// — the same engine cmd/oracled mounts over HTTP — and watch the paper's
// cost metrics accumulate as live serving telemetry.
//
// The engine builds both oracles in parallel, shards query batches across
// GOMAXPROCS workers with per-worker cost meters, and aggregates per-kind
// stats; queries stay write-free (one output write per answer is the only
// asymmetric write in the serving path).
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/serve"
)

func main() {
	// A bounded-degree graph: two communities joined by a single edge, so
	// bridge and articulation queries have interesting answers.
	a := graph.RandomRegular(5_000, 3, 1)
	edges := a.Edges()
	n := a.N()
	for _, e := range graph.RandomRegular(5_000, 3, 2).Edges() {
		edges = append(edges, [2]int32{e[0] + int32(n), e[1] + int32(n)})
	}
	edges = append(edges, [2]int32{0, int32(n)}) // the bridge
	g := graph.FromEdges(2*n, edges)

	eng := serve.New(g, serve.Config{Omega: 256, Seed: 7})
	st := eng.Stats()
	fmt.Printf("engine up: n=%d m=%d ω=%d k=%d, %d components, %d BCCs\n",
		st.GraphN, st.GraphM, st.Omega, st.K, st.NumComponents, st.NumBCC)
	fmt.Printf("  conn build: %v\n", st.BuildConn)
	fmt.Printf("  bicc build: %v\n", st.BuildBicc)

	// Single queries: the joining edge is a bridge, its endpoints are cut
	// vertices, and the two sides are connected but not biconnected.
	for _, q := range []serve.Query{
		{Kind: serve.KindConnected, U: 17, V: int32(n) + 17},
		{Kind: serve.KindBridge, U: 0, V: int32(n)},
		{Kind: serve.KindArticulation, U: 0},
		{Kind: serve.KindBiconnected, U: 17, V: int32(n) + 17},
		{Kind: serve.KindComponent, U: 42},
	} {
		res := eng.Query(q)
		switch {
		case res.Bool != nil:
			fmt.Printf("%-13s(%5d,%5d) = %v\n", q.Kind, q.U, q.V, *res.Bool)
		case res.Label != nil:
			fmt.Printf("%-13s(%5d)       = %d\n", q.Kind, q.U, *res.Label)
		}
	}

	// A batch: 10k mixed queries sharded across workers, answered with
	// per-worker meters and merged into the aggregate stats below.
	rng := graph.NewRNG(99)
	batch := make([]serve.Query, 10_000)
	for i := range batch {
		batch[i] = serve.Query{
			Kind: serve.Kinds[i%len(serve.Kinds)],
			U:    int32(rng.Intn(g.N())),
			V:    int32(rng.Intn(g.N())),
		}
	}
	eng.Do(batch)

	st = eng.Stats()
	fmt.Printf("\nserved %d queries; per-kind telemetry:\n", st.TotalQueries)
	for _, k := range serve.Kinds {
		ks := st.Queries[string(k)]
		fmt.Printf("  %-13s count=%-6d reads/q=%-8.1f work/q=%.1f\n",
			k, ks.Count,
			float64(ks.Cost.Reads)/float64(ks.Count),
			float64(ks.Cost.Work())/float64(ks.Count))
	}
}
