// Oracle serving: run the batched query engine (internal/serve) in-process
// — the same engine cmd/oracled mounts over HTTP — and watch the paper's
// cost metrics accumulate as live serving telemetry.
//
// The engine builds one oracle per factory registered in internal/oracle
// (the two paper oracles are the built-ins), shards query batches across a
// bounded worker pool with per-worker cost meters, and aggregates per-kind
// stats; queries stay write-free (one output write per answer is the only
// asymmetric write in the serving path).
//
// The second half shows the multi-tenant layer: a serve.Registry carrying
// several named graphs — per-graph lifecycle (building → ready), one
// shared admission-controlled worker pool, per-graph admission caps with
// rejection telemetry. cmd/oracled mounts exactly this registry over HTTP
// (/graphs lifecycle API).
package main

import (
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	// A bounded-degree graph: two communities joined by a single edge, so
	// bridge and articulation queries have interesting answers.
	a := graph.RandomRegular(5_000, 3, 1)
	edges := a.Edges()
	n := a.N()
	for _, e := range graph.RandomRegular(5_000, 3, 2).Edges() {
		edges = append(edges, [2]int32{e[0] + int32(n), e[1] + int32(n)})
	}
	edges = append(edges, [2]int32{0, int32(n)}) // the bridge
	g := graph.FromEdges(2*n, edges)

	eng := serve.New(g, serve.Config{Omega: 256, Seed: 7})
	st := eng.Stats()
	fmt.Printf("engine up: n=%d m=%d ω=%d k=%d, %d components, %d BCCs\n",
		st.GraphN, st.GraphM, st.Omega, st.K, st.NumComponents, st.NumBCC)
	fmt.Printf("  conn build: %v\n", st.BuildConn)
	fmt.Printf("  bicc build: %v\n", st.BuildBicc)

	// Single queries: the joining edge is a bridge, its endpoints are cut
	// vertices, and the two sides are connected but not biconnected.
	for _, q := range []serve.Query{
		{Kind: serve.KindConnected, U: 17, V: int32(n) + 17},
		{Kind: serve.KindBridge, U: 0, V: int32(n)},
		{Kind: serve.KindArticulation, U: 0},
		{Kind: serve.KindBiconnected, U: 17, V: int32(n) + 17},
		{Kind: serve.KindComponent, U: 42},
	} {
		res := eng.Query(q)
		switch {
		case res.Bool != nil:
			fmt.Printf("%-13s(%5d,%5d) = %v\n", q.Kind, q.U, q.V, *res.Bool)
		case res.Label != nil:
			fmt.Printf("%-13s(%5d)       = %d\n", q.Kind, q.U, *res.Label)
		}
	}

	// A batch: 10k mixed queries sharded across workers, answered with
	// per-worker meters and merged into the aggregate stats below.
	rng := graph.NewRNG(99)
	batch := make([]serve.Query, 10_000)
	for i := range batch {
		batch[i] = serve.Query{
			Kind: serve.Kinds[i%len(serve.Kinds)],
			U:    int32(rng.Intn(g.N())),
			V:    int32(rng.Intn(g.N())),
		}
	}
	eng.Do(batch)

	st = eng.Stats()
	fmt.Printf("\nserved %d queries; per-kind telemetry:\n", st.TotalQueries)
	for _, k := range serve.Kinds {
		ks := st.Queries[string(k)]
		fmt.Printf("  %-13s count=%-6d reads/q=%-8.1f work/q=%.1f\n",
			k, ks.Count,
			float64(ks.Cost.Reads)/float64(ks.Count),
			float64(ks.Cost.Work())/float64(ks.Count))
	}

	// --- Multi-tenant: many graphs, one registry, one worker pool. ------
	//
	// Each graph keeps its own engine, epoch and stats; the pool bounds
	// query workers across all of them, and per-graph admission caps turn
	// overload into explicit rejections instead of unbounded queues.
	fmt.Println("\nmulti-tenant registry:")
	reg := serve.NewRegistry(serve.RegistryConfig{
		Engine:      serve.Config{Omega: 64, Seed: 7},
		MaxInflight: 2, // per-graph cap; beyond it Admit returns ErrBusy (HTTP: 429)
	})
	defer reg.Close()
	// Wait=true builds synchronously; cmd/oracled creates asynchronously
	// and reports state "building" until the first snapshot publishes.
	for _, spec := range []serve.GraphSpec{
		{Name: "mesh", Gen: "random-regular", N: 2000, Deg: 3, GraphSeed: 1, Wait: true},
		{Name: "social", Gen: "gnm", N: 3000, Deg: 6, GraphSeed: 2, Wait: true},
	} {
		if _, err := reg.Create(spec); err != nil {
			panic(err)
		}
	}
	for _, gs := range reg.List() {
		e, _ := reg.Get(gs.Name)
		es := e.Stats()
		fmt.Printf("  %-7s state=%s n=%-5d m=%-5d components=%-3d built in %.0fms\n",
			gs.Name, gs.State, gs.GraphN, gs.GraphM, es.NumComponents, gs.BuildMs)
	}

	// Both graphs answer batches whose chunks run on the shared pool.
	mesh, _ := reg.Get("mesh")
	social, _ := reg.Get("social")
	for name, e := range map[string]*serve.Engine{"mesh": mesh, "social": social} {
		release, err := e.Admit() // the transport layer's admission step
		if err != nil {
			panic(err)
		}
		qs := make([]serve.Query, 1000)
		for i := range qs {
			qs[i] = serve.Query{Kind: serve.KindConnected, U: int32(i), V: int32(i + 99)}
		}
		res := e.Do(qs)
		release()
		fmt.Printf("  %-7s batch of %d served; connected(0,99)=%v queue-wait=%v\n",
			name, len(res), *res[0].Bool, e.Stats().Admission.QueueWait)
	}
	ps := reg.Pool().Stats()
	fmt.Printf("  shared pool: size=%d peak=%d tasks=%d\n", ps.Size, ps.PeakInUse, ps.Tasks)

	// --- Restart survival: the durable store (internal/store). ----------
	//
	// Everything above lives in memory: kill the process and every
	// expensively-built oracle is gone. A registry wired to a store
	// persists the fleet — creates/deletes to a manifest, every accepted
	// update batch to a per-graph WAL *before* it is staged, snapshots on
	// a compaction schedule — so a restarted daemon replays the data
	// directory and rebuilds. cmd/oracled does exactly this under
	// -datadir; the walkthrough below is the same wiring in-process, with
	// a simulated crash (the first store is dropped without any graceful
	// fold).
	fmt.Println("\nrestart survival:")
	dir, err := os.MkdirTemp("", "oracleserve-data-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	dst, _, err := store.Open(dir, store.Options{Fsync: store.FsyncNone})
	if err != nil {
		panic(err)
	}
	dreg := serve.NewRegistry(serve.RegistryConfig{
		Engine:  serve.Config{Omega: 64, Seed: 7},
		Persist: storePersist{dst},
	})
	if _, err := dreg.Create(serve.GraphSpec{Name: "durable", N: 2000, Deg: 3, GraphSeed: 9, Wait: true}); err != nil {
		panic(err)
	}
	de, _ := dreg.Get("durable")
	// Two acknowledged churn batches: by the time Update returns, both are
	// in the WAL (logged before staging) and published (wait=true).
	if _, err := de.Update(serve.Update{Add: [][2]int32{{0, 1000}, {5, 1500}}}, true); err != nil {
		panic(err)
	}
	if _, err := de.Update(serve.Update{Remove: [][2]int32{{0, 1000}}}, true); err != nil {
		panic(err)
	}
	fmt.Printf("  pre-crash:  epoch=%d m=%d connected(5,1500)=%v\n",
		de.Epoch(), de.Graph().M(), *de.Query(serve.Query{Kind: serve.KindConnected, U: 5, V: 1500}).Bool)

	// CRASH: drop registry and store with no shutdown. (kill -9 in
	// process form — the OS file buffers survive, nothing else does.)
	dst.Close()
	dreg.Close()

	// Recover: reopen the store, hand each recovered graph to a fresh
	// registry. Epoch and update sequence numbers resume where clients
	// last saw them acknowledged.
	dst2, rec, err := store.Open(dir, store.Options{Fsync: store.FsyncNone})
	if err != nil {
		panic(err)
	}
	defer dst2.Close()
	reg2 := serve.NewRegistry(serve.RegistryConfig{
		Engine:  serve.Config{Omega: 64, Seed: 7},
		Persist: storePersist{dst2},
	})
	defer reg2.Close()
	for _, rg := range rec.Graphs {
		rs := serve.RecoveredState{Epoch: rg.Epoch, Seq: rg.LastSeq, Forest: rg.Forest, ChainDepth: rg.ChainDepth}
		if _, err := reg2.CreateRecovered(rg.Name, rg.Graph, serve.GraphSpec{Wait: true}, rg.Log, rs); err != nil {
			panic(err)
		}
	}
	re, err := reg2.Get("durable")
	if err != nil {
		panic(err)
	}
	fmt.Printf("  post-crash: epoch=%d m=%d connected(5,1500)=%v (fleet of %d recovered)\n",
		re.Epoch(), re.Graph().M(), *re.Query(serve.Query{Kind: serve.KindConnected, U: 5, V: 1500}).Bool, len(rec.Graphs))
	if re.Graph().M() != de.Graph().M() || re.Epoch() < de.Epoch() {
		panic("recovery lost state")
	}
}

// storePersist adapts the durable store to the registry's persistence
// interface — the same glue cmd/oracled uses.
type storePersist struct{ st *store.Store }

func (p storePersist) CreateGraph(name string, specJSON []byte) (serve.GraphPersister, error) {
	return p.st.CreateGraph(name, specJSON)
}

func (p storePersist) DeleteGraph(name string) error { return p.st.DeleteGraph(name) }
