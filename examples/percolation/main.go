// Percolation: the Swendsen–Wang workload from the paper's introduction.
// A Monte-Carlo simulation repeatedly re-samples the bonds of a lattice and
// needs the connected components of every sample; the lattice is implicit
// and the samples are cheap to regenerate, so paying Θ(n) writes per sample
// just to answer cluster queries is the dominant cost on asymmetric memory.
//
// This example sweeps the bond probability p across the 2D percolation
// threshold (~0.5) and, for each sample, builds the sublinear-write
// connectivity oracle and reports the largest-cluster fraction — the
// physics observable — together with the write cost per sample, compared
// against the classic BFS labeling.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	const side = 96 // 9216-site lattice
	const omega = 256
	n := side * side

	fmt.Printf("%-6s %12s %12s | %12s %12s\n",
		"p", "max cluster", "components", "oracle wr", "BFS wr")
	for _, p := range []float64{0.30, 0.45, 0.50, 0.55, 0.70} {
		g := graph.Percolation(side, side, p, uint64(p*1000))

		sys := core.New(g, core.Config{Omega: omega, Seed: 7})
		oracle := sys.NewConnectivityOracle()

		// Largest-cluster fraction via oracle queries (reads only).
		counts := map[int32]int{}
		for v := int32(0); int(v) < n; v++ {
			counts[oracle.Component(v)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}

		ref := core.New(g, core.Config{Omega: omega, Seed: 7})
		ref.ConnectivitySequential(false)

		fmt.Printf("%-6.2f %12.3f %12d | %12d %12d\n",
			p, float64(max)/float64(n), len(counts),
			sys.Cost().Writes, ref.Cost().Writes)
	}
	fmt.Println("\nThe oracle's per-sample writes stay ~n/√ω while BFS labeling pays ~n;")
	fmt.Println("across thousands of Monte-Carlo sweeps that factor is the energy budget.")
}
