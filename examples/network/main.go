// Network audit: biconnectivity as a reliability analysis. A synthetic
// wide-area network (a backbone ring of regions, each an internal mesh,
// hung with access trees) is audited for single points of failure:
// articulation points (router failures that partition the network) and
// bridges (link failures that do). The BC labeling answers both in O(1)
// per query after one O(n)-write construction (§5.2), and the block-cut
// tree summarizes the failure domains.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// buildNetwork returns a synthetic WAN: `regions` meshes of `meshSize`
// routers joined in a redundant ring, each mesh serving an access tree of
// `treeSize` edge routers (trees are where the single points of failure
// live).
func buildNetwork(regions, meshSize, treeSize int, seed uint64) *graph.Graph {
	rng := graph.NewRNG(seed)
	var edges [][2]int32
	n := 0
	meshBase := make([]int, regions)
	for r := 0; r < regions; r++ {
		meshBase[r] = n
		// Region mesh: a cycle plus chords (2-connected).
		for i := 0; i < meshSize; i++ {
			edges = append(edges, [2]int32{int32(n + i), int32(n + (i+1)%meshSize)})
		}
		for c := 0; c < meshSize/2; c++ {
			a := n + rng.Intn(meshSize)
			b := n + rng.Intn(meshSize)
			if a != b {
				edges = append(edges, [2]int32{int32(a), int32(b)})
			}
		}
		n += meshSize
	}
	// Redundant backbone ring: two parallel links between adjacent regions.
	for r := 0; r < regions; r++ {
		next := (r + 1) % regions
		edges = append(edges, [2]int32{int32(meshBase[r]), int32(meshBase[next])})
		edges = append(edges, [2]int32{int32(meshBase[r] + 1), int32(meshBase[next] + 1)})
	}
	// Access trees: each hangs off one mesh router — pure bridges.
	for r := 0; r < regions; r++ {
		attach := meshBase[r] + 2
		for t := 0; t < treeSize; t++ {
			parent := attach
			if t > 0 {
				parent = n + rng.Intn(t)
			}
			edges = append(edges, [2]int32{int32(parent), int32(n + t)})
		}
		n += treeSize
	}
	return graph.FromEdges(n, edges)
}

func main() {
	g := buildNetwork(6, 40, 25, 11)
	sys := core.New(g, core.Config{Omega: 64, Seed: 3})
	bc := sys.NewBCLabeling()

	artic, bridges := 0, 0
	for v := int32(0); int(v) < g.N(); v++ {
		if bc.IsArticulation(v) {
			artic++
		}
	}
	for _, e := range g.Edges() {
		if bc.IsBridge(e[0], e[1]) {
			bridges++
		}
	}
	fmt.Printf("network: %d routers, %d links\n", g.N(), g.M())
	fmt.Printf("single-point-of-failure routers (articulation points): %d\n", artic)
	fmt.Printf("single-point-of-failure links (bridges): %d\n", bridges)
	fmt.Printf("failure domains (biconnected components): %d\n", bc.NumBCC())
	fmt.Printf("block-cut tree: %d attachment edges\n", len(bc.BlockCutTree()))

	// Reliability queries: can these two routers survive any single
	// router/link failure elsewhere?
	pairs := [][2]int32{{0, 40}, {0, 120}, {2, int32(g.N() - 1)}}
	for _, p := range pairs {
		fmt.Printf("routers %4d-%4d: survives any router failure: %-5v  any link failure: %v\n",
			p[0], p[1], bc.SameBCC(p[0], p[1]), bc.Same2EdgeCC(p[0], p[1]))
	}
	fmt.Printf("\nconstruction cost: %v (queries: %v)\n", sys.Cost(), bc.QueryCost())
}
