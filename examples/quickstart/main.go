// Quickstart: build both connectivity and biconnectivity oracles over a
// bounded-degree graph, answer queries, and print the asymmetric-memory
// cost split the paper's Table 1 is about (construction writes vs query
// reads).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// A 3-regular graph on 10k vertices: the bounded-degree regime where
	// the sublinear-write oracles of Theorems 4.4 and 5.3 apply.
	g := graph.RandomRegular(10_000, 3, 1)

	// ω is the hardware write/read cost ratio; k defaults to √ω. The
	// larger ω is, the further below n the construction writes fall.
	sys := core.New(g, core.Config{Omega: 4096, Seed: 42})

	connOracle := sys.NewConnectivityOracle()
	fmt.Printf("connectivity oracle built: %v\n", sys.Cost())
	fmt.Printf("  writes/n = %.3f (sublinear: the Ω(n) barrier is broken)\n",
		float64(sys.Cost().Writes)/float64(g.N()))

	fmt.Printf("connected(0, 9999) = %v\n", connOracle.Connected(0, 9999))
	fmt.Printf("  query cost so far: %v\n", connOracle.QueryCost())

	biccOracle := sys.NewBiconnectivityOracle()
	u, v := int32(17), int32(4242)
	fmt.Printf("biconnected(%d, %d) = %v\n", u, v, biccOracle.Biconnected(u, v))
	fmt.Printf("1-edge-connected(%d, %d) = %v\n", u, v, biccOracle.OneEdgeConnected(u, v))
	fmt.Printf("articulation(%d) = %v\n", u, biccOracle.IsArticulation(u))
	fmt.Printf("  biconnectivity query cost: %v\n", biccOracle.QueryCost())

	// The dense-structure alternative: O(n)-word BC labeling, O(1) queries.
	bc := sys.NewBCLabeling()
	fmt.Printf("BC labeling: %d biconnected components, block-cut tree %d edges\n",
		bc.NumBCC(), len(bc.BlockCutTree()))

	// Batches run as a parallel for over independent queries.
	vs := []int32{0, 1000, 2000, 3000}
	fmt.Printf("batch components: %v\n", connOracle.ComponentsBatch(vs))

	// A spanning forest can be enumerated from the oracle's implicit state
	// without writing it anywhere first (§4.3).
	forest := connOracle.SpanningForest()
	fmt.Printf("spanning forest: %d edges, still zero query-side writes: %d\n",
		len(forest), connOracle.QueryCost().Writes)
}
