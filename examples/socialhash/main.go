// Socialhash: the paper's second §1 motivation — "edges selected based on
// different Boolean hash functions ... and used multiple times". A fixed
// interaction graph is never materialized per-sample; instead each analysis
// pass keeps an edge iff a hash of (edge, salt) passes a threshold, and
// asks connectivity questions on that sampled subgraph. Because a fresh
// subgraph is queried for every salt, construction writes — not reads —
// dominate on asymmetric memory, which is precisely where the sublinear-
// write oracle pays off.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// The base interaction graph: bounded-degree (each account keeps its
	// top-4 contacts).
	base := graph.RandomRegular(20_000, 4, 5)
	baseEdges := base.Edges()
	const omega = 1024

	fmt.Printf("%-6s %-6s | %10s %10s | %12s %12s\n",
		"salt", "keep%", "components", "largest", "oracle wr", "BFS wr")
	var totalOracle, totalBFS int64
	for salt := uint64(1); salt <= 5; salt++ {
		keep := 55 + int(salt)*5 // sweep sampling rate 60..80%
		var edges [][2]int32
		for i, e := range baseEdges {
			h := graph.Hash64(salt, uint64(i))
			if int(h%100) < keep {
				edges = append(edges, e)
			}
		}
		g := graph.FromEdges(base.N(), edges)

		sys := core.New(g, core.Config{Omega: omega, Seed: salt})
		oracle := sys.NewConnectivityOracle()
		counts := map[int32]int{}
		for v := int32(0); int(v) < g.N(); v += 1 {
			counts[oracle.Component(v)]++
		}
		largest := 0
		for _, c := range counts {
			if c > largest {
				largest = c
			}
		}
		ref := core.New(g, core.Config{Omega: omega, Seed: salt})
		ref.ConnectivitySequential(false)

		fmt.Printf("%-6d %-6d | %10d %10d | %12d %12d\n",
			salt, keep, len(counts), largest, sys.Cost().Writes, ref.Cost().Writes)
		totalOracle += sys.Cost().Writes
		totalBFS += ref.Cost().Writes
	}
	fmt.Printf("\ntotal construction writes over 5 samples: oracle %d vs BFS labeling %d (%.1fx fewer)\n",
		totalOracle, totalBFS, float64(totalBFS)/float64(totalOracle))
}
