package main

import "testing"

// TestValidateFlags: bad parameters must become usage errors, not panic
// stack traces out of decomp.Build / ldd.Decompose.
func TestValidateFlags(t *testing.T) {
	type args struct {
		graph, gen                string
		n, deg, omega, k, workers int
	}
	ok := args{graph: "", gen: "random-regular", n: 1 << 10, deg: 3, omega: 64, k: 0, workers: 0}
	if err := validateFlags(ok.graph, ok.gen, ok.n, ok.deg, ok.omega, ok.k, ok.workers); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}

	for name, a := range map[string]args{
		"negative k":        {gen: "random-regular", n: 1024, deg: 3, omega: 64, k: -1},
		"negative omega":    {gen: "random-regular", n: 1024, deg: 3, omega: -5},
		"zero omega":        {gen: "random-regular", n: 1024, deg: 3, omega: 0},
		"negative workers":  {gen: "random-regular", n: 1024, deg: 3, omega: 64, workers: -2},
		"zero n":            {gen: "random-regular", n: 0, deg: 3, omega: 64},
		"negative deg":      {gen: "gnm", n: 1024, deg: -1, omega: 64},
		"regular deg 1":     {gen: "random-regular", n: 1024, deg: 1, omega: 64},
		"regular deg >= n":  {gen: "random-regular", n: 4, deg: 4, omega: 64},
		"regular odd nd":    {gen: "random-regular", n: 1023, deg: 3, omega: 64},
		"unknown generator": {gen: "mystery", n: 1024, deg: 3, omega: 64},
	} {
		if err := validateFlags(a.graph, a.gen, a.n, a.deg, a.omega, a.k, a.workers); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Generator flags are irrelevant when a graph file is given.
	file := args{graph: "edges.txt", gen: "mystery", n: 0, deg: -1, omega: 64}
	if err := validateFlags(file.graph, file.gen, file.n, file.deg, file.omega, 0, 0); err != nil {
		t.Errorf("file mode rejected generator-only defaults: %v", err)
	}
}
