// Command oracled serves the paper's connectivity and biconnectivity query
// oracles over HTTP/JSON. It loads a graph (edge-list file via graphio, or
// a synthetic generator), builds both oracles in parallel, and answers
// connected / component / bridge / articulation / biconnected queries —
// singly via POST /query, batched via POST /batch — with the paper's
// cost-model metrics (asymmetric reads, writes, work per query kind)
// exposed live at GET /stats.
//
// The served graph is dynamic: POST /update stages an edge-churn batch
// (adds and removes over the fixed vertex set), a background rebuild folds
// it into the next snapshot while the current one keeps answering, and an
// atomic swap publishes it — insertion-only batches take the
// write-efficient incremental path. Every rebuild is logged with its
// strategy and per-phase asymmetric costs.
//
// Usage:
//
//	oracled -graph edges.txt -addr :8080 -omega 64
//	oracled -gen random-regular -n 100000 -deg 3 -addr :8080
//
//	curl -s localhost:8080/info
//	curl -s -d '{"kind":"connected","u":0,"v":42}' localhost:8080/query
//	curl -s -d '{"queries":[{"kind":"component","u":7},{"kind":"bridge","u":1,"v":2}]}' \
//	     localhost:8080/batch
//	curl -s -d '{"add":[[0,42],[7,9]],"remove":[[1,2]],"wait":true}' localhost:8080/update
//	curl -s localhost:8080/stats
//
// With -graph "-" the edge list is read from stdin. On SIGINT/SIGTERM the
// daemon stops accepting requests, drains in-flight ones, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		graphArg = flag.String("graph", "", `edge-list file ("-" for stdin); empty uses -gen`)
		gen      = flag.String("gen", "random-regular", "generator when -graph is empty: random-regular|gnm")
		n        = flag.Int("n", 1<<14, "generated graph: vertices")
		deg      = flag.Int("deg", 3, "generated graph: degree (random-regular) or avg degree (gnm)")
		gseed    = flag.Uint64("graphseed", 42, "generated graph: seed")
		omega    = flag.Int("omega", 64, "asymmetric write cost ω")
		k        = flag.Int("k", 0, "decomposition parameter k (0 = ⌈√ω⌉)")
		seed     = flag.Uint64("seed", 7, "decomposition sampling seed")
		workers  = flag.Int("workers", 0, "batch shard count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if err := validateFlags(*graphArg, *gen, *n, *deg, *omega, *k, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	g, err := loadGraph(*graphArg, *gen, *n, *deg, *gseed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("oracled: graph n=%d m=%d, building oracles (ω=%d)...\n", g.N(), g.M(), *omega)
	start := time.Now()
	eng := serve.New(g, serve.Config{
		Omega: *omega, K: *k, Seed: *seed, Workers: *workers,
		OnRebuild: logRebuild,
	})
	st := eng.Stats()
	fmt.Printf("oracled: built in %v: k=%d components=%d bccs=%d\n",
		time.Since(start).Round(time.Millisecond), st.K, st.NumComponents, st.NumBCC)
	fmt.Printf("oracled: build cost conn: %v\n", st.BuildConn)
	fmt.Printf("oracled: build cost bicc: %v\n", st.BuildBicc)
	fmt.Printf("oracled: serving on %s (endpoints: /query /batch /update /stats /info /healthz)\n", *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewServer(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Graceful shutdown: stop the listener, drain in-flight requests, then
	// stop the engine's rebuild goroutine.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		fmt.Printf("oracled: %v — shutting down (epoch %d)\n", sig, eng.Epoch())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		eng.Close()
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
		os.Exit(1)
	}
	<-done
}

// logRebuild reports every snapshot swap: strategy, coalesced batch shape,
// and the separable asymmetric costs of the rebuild phases.
func logRebuild(r serve.RebuildRecord) {
	if r.Err != "" {
		fmt.Fprintf(os.Stderr, "oracled: rebuild failed (%d batches dropped): %s\n", r.Batches, r.Err)
		return
	}
	fmt.Printf("oracled: epoch %d published: %s rebuild of %d batches (+%d/-%d edges) in %v — writes graph=%d conn=%d bicc=%d\n",
		r.Epoch, r.Strategy, r.Batches, r.AddedEdges, r.RemovedEdges,
		r.Duration.Round(time.Millisecond),
		r.GraphCost.Writes, r.ConnCost.Writes, r.BiccCost.Writes)
}

// validateFlags rejects parameter combinations that would otherwise
// surface as panics deep inside decomp.Build / ldd.Decompose (e.g. -k -1
// or -omega -5) or as nonsense generator inputs. Returns the usage error;
// main exits 2.
func validateFlags(graphArg, gen string, n, deg, omega, k, workers int) error {
	if omega < 1 {
		return fmt.Errorf("-omega must be >= 1, got %d", omega)
	}
	if k < 0 {
		return fmt.Errorf("-k must be >= 0 (0 selects ⌈√ω⌉), got %d", k)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 selects GOMAXPROCS), got %d", workers)
	}
	if graphArg == "" {
		if gen != "random-regular" && gen != "gnm" {
			return fmt.Errorf("unknown generator %q (want random-regular or gnm)", gen)
		}
		if n < 1 {
			return fmt.Errorf("-n must be >= 1, got %d", n)
		}
		if deg < 0 {
			return fmt.Errorf("-deg must be >= 0, got %d", deg)
		}
		if gen == "random-regular" {
			if deg < 2 {
				return fmt.Errorf("-deg must be >= 2 for random-regular, got %d", deg)
			}
			if deg >= n {
				return fmt.Errorf("-deg %d must be below -n %d for random-regular", deg, n)
			}
			if n*deg%2 != 0 {
				return fmt.Errorf("-n·-deg must be even for random-regular, got %d·%d", n, deg)
			}
		}
	}
	return nil
}

func loadGraph(path, gen string, n, deg int, seed uint64) (*graph.Graph, error) {
	if path == "-" {
		return graphio.Read(os.Stdin)
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graphio.Read(f)
	}
	switch gen {
	case "random-regular":
		return graph.RandomRegular(n, deg, seed), nil
	case "gnm":
		return graph.GNM(n, n*deg/2, seed, true), nil
	default:
		return nil, fmt.Errorf("unknown generator %q (want random-regular or gnm)", gen)
	}
}
