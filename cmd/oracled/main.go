// Command oracled serves the paper's connectivity and biconnectivity query
// oracles over HTTP/JSON — for one graph or many. It starts a graph
// registry, registers a default graph (edge-list file via graphio, or a
// synthetic generator) whose oracles build in the background while the
// listener is already up (/healthz reports 503 until the first snapshot
// publishes), and answers connected / component / bridge / articulation /
// biconnected queries — singly via POST /query, batched via POST /batch —
// with the paper's cost-model metrics (asymmetric reads, writes, work per
// query kind) exposed live at GET /stats.
//
// Further graphs are created and destroyed at runtime through the
// lifecycle API: POST /graphs registers a named graph (generator params or
// an inline graphio edge list) built in the background, GET /graphs lists
// every graph's state (building | ready | failed), and each graph serves
// its own /graphs/{name}/query|batch|update|stats|info endpoints.
// DELETE /graphs/{name} drains and closes it. All graphs draw query
// workers from one shared pool sized to -poolsize, and -maxinflight caps
// concurrently admitted requests per graph (beyond it: 429 + Retry-After,
// counted in that graph's /stats).
//
// Every served graph is dynamic: POST /update stages an edge-churn batch
// (adds and removes over the fixed vertex set), a background rebuild folds
// it into the next snapshot while the current one keeps answering, and an
// atomic swap publishes it — insertion-only batches take the
// write-efficient incremental path. Every rebuild is logged with its
// graph, strategy and per-phase asymmetric costs.
//
// Observability: the daemon logs structured JSON (log/slog) on stdout,
// with graph/epoch/strategy fields on lifecycle and rebuild events. The
// fleet's metrics are served in Prometheus text format at GET /metrics and
// recent slow-request traces at GET /debug/traces (capture threshold set
// by -slowquery; negative captures every request). -opsaddr starts a
// second listener carrying /metrics, /debug/traces and net/http/pprof —
// so profiling and scraping stay reachable (and access-controllable)
// separately from query traffic. -version prints build/VCS info and
// exits.
//
// Usage:
//
//	oracled -graph edges.txt -addr :8080 -omega 64
//	oracled -gen random-regular -n 100000 -deg 3 -addr :8080 -maxinflight 64
//
//	curl -s localhost:8080/healthz       # 503 until the default graph is ready
//	curl -s localhost:8080/info
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/debug/traces
//	curl -s -d '{"kind":"connected","u":0,"v":42}' localhost:8080/query
//	curl -s -d '{"queries":[{"kind":"component","u":7},{"kind":"bridge","u":1,"v":2}]}' \
//	     localhost:8080/batch
//	curl -s -d '{"add":[[0,42],[7,9]],"remove":[[1,2]],"wait":true}' localhost:8080/update
//	curl -s -d '{"name":"social","gen":"gnm","n":50000,"deg":8}' localhost:8080/graphs
//	curl -s localhost:8080/graphs
//	curl -s -d '{"kind":"component","u":7}' localhost:8080/graphs/social/query
//	curl -s -X DELETE localhost:8080/graphs/social
//	curl -s localhost:8080/stats
//
// With -datadir the fleet is durable: every accepted /update batch is
// appended to a per-graph write-ahead log before it is staged, snapshots
// fold the WAL periodically (and on size growth) into CRC-guarded files
// installed by atomic rename, and graph create/delete events are recorded
// in a manifest. A restarted daemon replays the data directory — newest
// valid snapshot plus WAL tail per graph — and rebuilds every oracle in
// the background while the listener is already up, resuming each graph at
// (at least) its last acknowledged epoch with continuing update sequence
// numbers. -fsync picks the WAL sync policy (always | commit | none);
// kill -9 recovery needs none of them, power-loss durability of
// acknowledged updates needs "always".
//
// With -graph "-" the edge list is read from stdin. On SIGINT/SIGTERM the
// daemon stops accepting requests, drains in-flight ones, and exits.
//
// The `inspect` subcommand dumps a data directory without starting a
// daemon (and without repairing anything — strictly read-only): manifest
// entries, snapshot headers (format version, epoch/seq watermark, CRC
// verdict, section sizes incl. the persisted forest and chain depth), and
// WAL segment coverage (record counts, sequence ranges, commit watermarks,
// torn tails):
//
//	oracled inspect /var/lib/oracled
//	oracled inspect -json /var/lib/oracled
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

// storePersist adapts the durable store to the registry's persistence
// interface (serve must not import store; this is the whole glue).
type storePersist struct{ st *store.Store }

func (p storePersist) CreateGraph(name string, specJSON []byte) (serve.GraphPersister, error) {
	return p.st.CreateGraph(name, specJSON)
}

func (p storePersist) DeleteGraph(name string) error { return p.st.DeleteGraph(name) }

func main() {
	if len(os.Args) > 1 && os.Args[1] == "inspect" {
		os.Exit(runInspect(os.Args[2:]))
	}
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		graphArg    = flag.String("graph", "", `edge-list file ("-" for stdin); empty uses -gen`)
		gen         = flag.String("gen", "random-regular", "generator when -graph is empty: random-regular|gnm")
		n           = flag.Int("n", 1<<14, "generated graph: vertices")
		deg         = flag.Int("deg", 3, "generated graph: degree (random-regular) or avg degree (gnm)")
		gseed       = flag.Uint64("graphseed", 42, "generated graph: seed")
		omega       = flag.Int("omega", 64, "asymmetric write cost ω (default for every graph)")
		k           = flag.Int("k", 0, "decomposition parameter k (0 = ⌈√ω⌉)")
		seed        = flag.Uint64("seed", 7, "decomposition sampling seed")
		workers     = flag.Int("workers", 0, "batch shard count per request (0 = GOMAXPROCS)")
		graphName   = flag.String("graphname", "default", "name of the default graph")
		poolSize    = flag.Int("poolsize", 0, "shared query-worker pool size across all graphs (0 = GOMAXPROCS)")
		maxInflight = flag.Int("maxinflight", 0, "per-graph cap on concurrently admitted requests; beyond it 429 (0 = unlimited)")
		maxGraphs   = flag.Int("maxgraphs", 0, "cap on registered graphs (0 = default 64, negative = unlimited)")
		rebaseEvery = flag.Int("rebaseevery", 0, "re-base an oracle's incremental patch chain after this many chained batches (0 = default 64, negative = never)")

		dataDir  = flag.String("datadir", "", "durable store directory; empty = in-memory fleet (lost on exit)")
		fsync    = flag.String("fsync", store.FsyncCommit, "WAL sync policy with -datadir: always|commit|none")
		compactB = flag.Int64("compactbytes", store.DefaultCompactBytes, "WAL bytes since last snapshot that trigger compaction (negative disables)")
		compactT = flag.Duration("compactevery", store.DefaultCompactInterval, "max snapshot age before a publish triggers compaction (negative disables)")

		opsAddr   = flag.String("opsaddr", "", "optional second listener for /metrics, /debug/traces and /debug/pprof; empty serves no pprof")
		slowQuery = flag.Duration("slowquery", obs.DefaultSlowQuery, "capture a request trace at /debug/traces when it runs at least this long (negative = capture all)")
		version   = flag.Bool("version", false, "print version/build info and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("oracled " + obs.Build().String())
		os.Exit(0)
	}

	if err := validateFlags(*graphArg, *gen, *n, *deg, *omega, *k, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *poolSize < 0 || *maxInflight < 0 {
		fmt.Fprintf(os.Stderr, "oracled: -poolsize and -maxinflight must be >= 0\n")
		flag.Usage()
		os.Exit(2)
	}
	if !store.ValidFsync(*fsync) {
		fmt.Fprintf(os.Stderr, "oracled: -fsync must be always|commit|none, got %q\n", *fsync)
		flag.Usage()
		os.Exit(2)
	}

	// Structured JSON logging on stdout. Only the "listening on" line below
	// stays plain text: it is the machine-readable readiness contract that
	// harnesses (wecbench -exp restart) parse.
	logger := slog.New(slog.NewJSONHandler(os.Stdout, nil))
	bi := obs.Build()
	logger.Info("oracled starting", "version", bi.Version, "revision", bi.Revision, "dirty", bi.Dirty, "go", bi.GoVersion)

	// One metrics registry for the whole process: the store's durability
	// families and the serving layer's query/rebuild families land in the
	// same /metrics page.
	metrics := obs.NewRegistry()

	// With a data directory, open the store first: recovery decides whether
	// the flag-described default graph even needs to be built.
	var st *store.Store
	var recovered *store.Recovery
	var persist serve.RegistryPersister
	if *dataDir != "" {
		var err error
		st, recovered, err = store.Open(*dataDir, store.Options{
			Fsync:           *fsync,
			CompactBytes:    *compactB,
			CompactInterval: *compactT,
			Metrics:         metrics,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...), "component", "store")
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "oracled: open datadir: %v\n", err)
			os.Exit(1)
		}
		persist = storePersist{st}
		logger.Info("datadir open", "dir", *dataDir, "fsync", *fsync, "graphs_to_recover", len(recovered.Graphs))
	}

	var reg *serve.Registry
	reg = serve.NewRegistry(serve.RegistryConfig{
		Engine:      serve.Config{Omega: *omega, K: *k, Seed: *seed, Workers: *workers, RebaseEvery: *rebaseEvery},
		Pool:        serve.NewPool(*poolSize),
		MaxInflight: *maxInflight,
		MaxGraphs:   *maxGraphs,
		Persist:     persist,
		Metrics:     metrics,
		SlowQuery:   *slowQuery,
		OnRebuild: func(name string, r serve.RebuildRecord) {
			logRebuild(logger, name, r)
		},
		// Lifecycle logging: the build finishing (or failing) is the
		// daemon's readiness moment, so say so with the build's shape.
		OnState: func(name string, state serve.GraphState, errMsg string) {
			if state == serve.StateFailed {
				logger.Error("graph build failed", "graph", name, "error", errMsg)
				return
			}
			st, _ := reg.Status(name)
			if eng, err := reg.Get(name); err == nil {
				es := eng.Stats()
				logger.Info("graph ready",
					"graph", name, "build_ms", st.BuildMs,
					"n", es.GraphN, "m", es.GraphM, "k", es.K,
					"components", es.NumComponents, "bccs", es.NumBCC,
					"build_cost_conn", fmt.Sprint(es.BuildConn),
					"build_cost_bicc", fmt.Sprint(es.BuildBicc))
			}
		},
	})

	// Recovered graphs first, in their original creation order (so the
	// pre-crash default graph is the default again). All builds run in the
	// background: the listener below is up before any oracle exists.
	recoveredDefault := false
	if recovered != nil {
		for _, rg := range recovered.Graphs {
			var spec serve.GraphSpec
			if err := json.Unmarshal(rg.SpecJSON, &spec); err != nil {
				logger.Warn("stored spec unreadable, using flag defaults", "graph", rg.Name, "error", err.Error())
				spec = serve.GraphSpec{}
			}
			spec.Wait = false
			rs := serve.RecoveredState{Epoch: rg.Epoch, Seq: rg.LastSeq, Forest: rg.Forest, ChainDepth: rg.ChainDepth}
			if _, err := reg.CreateRecovered(rg.Name, rg.Graph, spec, rg.Log, rs); err != nil {
				fmt.Fprintf(os.Stderr, "oracled: recover %q: %v\n", rg.Name, err)
				os.Exit(1)
			}
			if rg.Warn != "" {
				logger.Warn("recovery notes", "graph", rg.Name, "notes", rg.Warn)
			}
			logger.Info("graph recovered, rebuilding oracles in the background",
				"graph", rg.Name, "n", rg.Graph.N(), "m", rg.Graph.M(),
				"epoch", rg.Epoch, "seq", rg.LastSeq)
			recoveredDefault = recoveredDefault || rg.Name == *graphName
		}
		// Recovered graphs never auto-claim the default slot (that could
		// silently point the un-prefixed endpoints at another tenant's
		// graph); the daemon's default is by name.
		if recoveredDefault {
			if err := reg.SetDefault(*graphName); err != nil {
				fmt.Fprintf(os.Stderr, "oracled: restore default %q: %v\n", *graphName, err)
				os.Exit(1)
			}
		}
	}

	// The flag-described default graph is only built when recovery did not
	// already bring it back (generation/IO is skipped entirely otherwise).
	if !recoveredDefault {
		g, err := loadGraph(*graphArg, *gen, *n, *deg, *gseed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
			os.Exit(1)
		}
		logger.Info("building default graph in the background",
			"graph", *graphName, "n", g.N(), "m", g.M(),
			"omega", *omega, "pool", reg.Pool().Size(), "maxinflight", *maxInflight)
		if _, err := reg.CreateFromGraph(*graphName, g, serve.GraphSpec{Name: *graphName}); err != nil {
			fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
			os.Exit(1)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
		os.Exit(1)
	}
	// The resolved address (exact port even for ":0") on its own line:
	// harnesses like wecbench -exp restart parse it. Keep it plain text —
	// NOT slog — or restarted fleets stop finding their daemon.
	fmt.Printf("oracled: listening on %s\n", ln.Addr())
	logger.Info("serving",
		"addr", ln.Addr().String(), "default_graph", *graphName,
		"endpoints", "/query /batch /update /stats /info /healthz /metrics /debug/traces /graphs[/{name}/...]")

	// The ops listener carries the observability surface on its own port:
	// pprof profiling plus a second mount of /metrics and /debug/traces, so
	// scrapers and profilers can be firewalled away from query traffic.
	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oracled: ops listener: %v\n", err)
			os.Exit(1)
		}
		opsMux := http.NewServeMux()
		opsMux.HandleFunc("/debug/pprof/", pprof.Index)
		opsMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		opsMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		opsMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		opsMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		opsMux.Handle("/metrics", metrics.Handler())
		opsMux.Handle("/debug/traces", reg.Tracer().Handler())
		opsSrv = &http.Server{Handler: opsMux, ReadHeaderTimeout: 10 * time.Second}
		logger.Info("ops listener up", "addr", opsLn.Addr().String())
		go func() {
			if err := opsSrv.Serve(opsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("ops listener failed", "error", err.Error())
			}
		}()
	}

	srv := &http.Server{
		Handler:           serve.NewRegistryServer(reg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Graceful shutdown: stop the listener, drain in-flight requests, then
	// stop every engine's rebuild goroutine, then fold each graph's WAL
	// into a final snapshot so the next boot skips replay.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		logger.Info("shutting down", "signal", sig.String(), "graphs", len(reg.List()))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if opsSrv != nil {
			_ = opsSrv.Shutdown(ctx)
		}
		reg.Close()
		if st != nil {
			foldFleet(logger, reg)
			st.Close()
		}
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
		os.Exit(1)
	}
	<-done
}

// foldFleet writes a final snapshot for every ready graph on graceful
// shutdown, so the next boot loads one file per graph instead of replaying
// WAL tails. Best-effort: a failure leaves the WAL, which recovery
// replays anyway.
func foldFleet(logger *slog.Logger, reg *serve.Registry) {
	for _, gs := range reg.List() {
		eng, err := reg.Get(gs.Name)
		if err != nil {
			continue
		}
		if err := eng.PersistNow(); err != nil {
			logger.Error("final snapshot failed", "graph", gs.Name, "error", err.Error())
		} else {
			logger.Info("final snapshot written", "graph", gs.Name, "epoch", eng.Epoch())
		}
	}
}

// logRebuild reports every snapshot swap of every graph: strategy,
// coalesced batch shape, and the separable asymmetric costs of the rebuild
// phases.
func logRebuild(logger *slog.Logger, name string, r serve.RebuildRecord) {
	if r.Err != "" {
		logger.Error("rebuild failed, batches dropped",
			"graph", name, "batches", r.Batches, "error", r.Err)
		return
	}
	deferred := 0
	for _, s := range r.Strategies {
		if s == serve.StrategyLazy {
			deferred++
		}
	}
	logger.Info("epoch published",
		"graph", name, "epoch", r.Epoch, "strategy", r.Strategy,
		"batches", r.Batches, "added_edges", r.AddedEdges, "removed_edges", r.RemovedEdges,
		"duration_ms", float64(r.Duration.Nanoseconds())/1e6,
		"oracle_strategies", r.Strategies, "deferred_oracles", deferred,
		"writes_graph", r.GraphCost.Writes, "writes_conn", r.ConnCost.Writes, "writes_bicc", r.BiccCost.Writes)
}

// validateFlags rejects parameter combinations that would otherwise
// surface as panics deep inside decomp.Build / ldd.Decompose (e.g. -k -1
// or -omega -5) or as nonsense generator inputs. Returns the usage error;
// main exits 2.
func validateFlags(graphArg, gen string, n, deg, omega, k, workers int) error {
	if omega < 1 {
		return fmt.Errorf("-omega must be >= 1, got %d", omega)
	}
	if k < 0 {
		return fmt.Errorf("-k must be >= 0 (0 selects ⌈√ω⌉), got %d", k)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 selects GOMAXPROCS), got %d", workers)
	}
	if graphArg == "" {
		if gen != "random-regular" && gen != "gnm" {
			return fmt.Errorf("unknown generator %q (want random-regular or gnm)", gen)
		}
		if n < 1 {
			return fmt.Errorf("-n must be >= 1, got %d", n)
		}
		if deg < 0 {
			return fmt.Errorf("-deg must be >= 0, got %d", deg)
		}
		if gen == "random-regular" {
			if deg < 2 {
				return fmt.Errorf("-deg must be >= 2 for random-regular, got %d", deg)
			}
			if deg >= n {
				return fmt.Errorf("-deg %d must be below -n %d for random-regular", deg, n)
			}
			if n*deg%2 != 0 {
				return fmt.Errorf("-n·-deg must be even for random-regular, got %d·%d", n, deg)
			}
		}
	}
	return nil
}

func loadGraph(path, gen string, n, deg int, seed uint64) (*graph.Graph, error) {
	if path == "-" {
		return graphio.Read(os.Stdin)
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graphio.Read(f)
	}
	switch gen {
	case "random-regular":
		return graph.RandomRegular(n, deg, seed), nil
	case "gnm":
		return graph.GNM(n, n*deg/2, seed, true), nil
	default:
		return nil, fmt.Errorf("unknown generator %q (want random-regular or gnm)", gen)
	}
}
