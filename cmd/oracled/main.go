// Command oracled serves the paper's connectivity and biconnectivity query
// oracles over HTTP/JSON. It loads a graph (edge-list file via graphio, or
// a synthetic generator), builds both oracles in parallel, and answers
// connected / component / bridge / articulation / biconnected queries —
// singly via POST /query, batched via POST /batch — with the paper's
// cost-model metrics (asymmetric reads, writes, work per query kind)
// exposed live at GET /stats.
//
// Usage:
//
//	oracled -graph edges.txt -addr :8080 -omega 64
//	oracled -gen random-regular -n 100000 -deg 3 -addr :8080
//
//	curl -s localhost:8080/info
//	curl -s -d '{"kind":"connected","u":0,"v":42}' localhost:8080/query
//	curl -s -d '{"queries":[{"kind":"component","u":7},{"kind":"bridge","u":1,"v":2}]}' \
//	     localhost:8080/batch
//	curl -s localhost:8080/stats
//
// With -graph "-" the edge list is read from stdin.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		graphArg = flag.String("graph", "", `edge-list file ("-" for stdin); empty uses -gen`)
		gen      = flag.String("gen", "random-regular", "generator when -graph is empty: random-regular|gnm")
		n        = flag.Int("n", 1<<14, "generated graph: vertices")
		deg      = flag.Int("deg", 3, "generated graph: degree (random-regular) or avg degree (gnm)")
		gseed    = flag.Uint64("graphseed", 42, "generated graph: seed")
		omega    = flag.Int("omega", 64, "asymmetric write cost ω")
		k        = flag.Int("k", 0, "decomposition parameter k (0 = ⌈√ω⌉)")
		seed     = flag.Uint64("seed", 7, "decomposition sampling seed")
		workers  = flag.Int("workers", 0, "batch shard count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	g, err := loadGraph(*graphArg, *gen, *n, *deg, *gseed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("oracled: graph n=%d m=%d, building oracles (ω=%d)...\n", g.N(), g.M(), *omega)
	start := time.Now()
	eng := serve.New(g, serve.Config{Omega: *omega, K: *k, Seed: *seed, Workers: *workers})
	st := eng.Stats()
	fmt.Printf("oracled: built in %v: k=%d components=%d bccs=%d\n",
		time.Since(start).Round(time.Millisecond), st.K, st.NumComponents, st.NumBCC)
	fmt.Printf("oracled: build cost conn: %v\n", st.BuildConn)
	fmt.Printf("oracled: build cost bicc: %v\n", st.BuildBicc)
	fmt.Printf("oracled: serving on %s (endpoints: /query /batch /stats /info /healthz)\n", *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewServer(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "oracled: %v\n", err)
		os.Exit(1)
	}
}

func loadGraph(path, gen string, n, deg int, seed uint64) (*graph.Graph, error) {
	if path == "-" {
		return graphio.Read(os.Stdin)
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graphio.Read(f)
	}
	switch gen {
	case "random-regular":
		return graph.RandomRegular(n, deg, seed), nil
	case "gnm":
		return graph.GNM(n, n*deg/2, seed, true), nil
	default:
		return nil, fmt.Errorf("unknown generator %q (want random-regular or gnm)", gen)
	}
}
