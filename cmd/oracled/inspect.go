package main

// The `oracled inspect` subcommand: a read-only dump of a -datadir layout
// (manifest, snapshot headers, WAL segment coverage) over the store's own
// binary codecs. No daemon is started and nothing on disk is modified —
// damage is reported, never repaired (recovery repairs; inspection looks).

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/store"
)

func runInspect(args []string) int {
	fs := flag.NewFlagSet("oracled inspect", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: oracled inspect [-json] <datadir>\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	rep, err := store.InspectDir(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracled inspect: %v\n", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "oracled inspect: %v\n", err)
			return 1
		}
		return exitCode(rep)
	}

	fmt.Printf("datadir %s: %d graphs in manifest, %d graph dirs on disk\n",
		rep.Dir, len(rep.Manifest), len(rep.Graphs))
	for _, w := range rep.Warnings {
		fmt.Printf("  WARNING: %s\n", w)
	}
	for _, m := range rep.Manifest {
		fmt.Printf("  manifest: %s %s\n", m.Name, m.SpecJSON)
	}
	for _, g := range rep.Graphs {
		tag := ""
		if g.Orphan {
			tag = " (ORPHAN: not in manifest)"
		}
		if !g.HasSpec {
			tag += " (no spec.json)"
		}
		fmt.Printf("graph %q%s: %d snapshots, %d WAL segments\n", g.Name, tag, len(g.Snapshots), len(g.Segments))
		for _, s := range g.Snapshots {
			if s.Err != "" {
				fmt.Printf("  %-26s %8d B  v%d crc=%v INVALID: %s\n", s.File, s.Size, s.Version, s.CRCOK, s.Err)
				continue
			}
			fmt.Printf("  %-26s %8d B  v%d crc=ok epoch=%d seq=%d n=%d m=%d overlay=%d remap=%d forest=%d chain=%d\n",
				s.File, s.Size, s.Version, s.Epoch, s.LastSeq, s.GraphN, s.GraphM,
				s.Overlay, s.Remap, s.Forest, s.ChainDepth)
		}
		for _, w := range g.Segments {
			line := fmt.Sprintf("  %-26s %8d B  %d updates", w.File, w.Size, w.Updates)
			if w.Updates > 0 {
				line += fmt.Sprintf(" (seq %d..%d)", w.MinSeq, w.MaxSeq)
			}
			line += fmt.Sprintf(", %d commits", w.Commits)
			if w.Commits > 0 {
				line += fmt.Sprintf(" (last epoch=%d seq=%d)", w.LastCommitEpoch, w.LastCommitSeq)
			}
			line += fmt.Sprintf(", %d aborts", w.Aborts)
			if w.Torn {
				line += fmt.Sprintf(" — TORN at byte %d: %s", w.GoodBytes, w.Warn)
			}
			fmt.Println(line)
		}
	}
	return exitCode(rep)
}

// exitCode is 0 for a clean directory and 1 when the inspector saw damage
// (torn segments, invalid snapshots, manifest warnings, orphans) — so
// scripts can gate on it.
func exitCode(rep *store.DirReport) int {
	if len(rep.Warnings) > 0 {
		return 1
	}
	for _, g := range rep.Graphs {
		if g.Orphan || !g.HasSpec {
			return 1
		}
		for _, s := range g.Snapshots {
			if s.Err != "" {
				return 1
			}
		}
		for _, w := range g.Segments {
			if w.Torn {
				return 1
			}
		}
	}
	return 0
}
