// Command decompstat prints implicit k-decomposition statistics for a
// generated graph: center counts, cluster-size histogram, and construction
// cost — a quick way to inspect Theorem 3.1 behaviour on a chosen family.
//
// Usage:
//
//	decompstat -graph 3regular|grid|cycle|tree -n 4096 -k 8 -seed 1 [-parallel]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
)

func main() {
	family := flag.String("graph", "3regular", "3regular | grid | cycle | tree | percolation")
	input := flag.String("input", "", "read an edge list (graphio format) instead of generating")
	n := flag.Int("n", 4096, "number of vertices (grids are √n × √n)")
	k := flag.Int("k", 8, "cluster-size parameter")
	seed := flag.Uint64("seed", 1, "random seed")
	par := flag.Bool("parallel", false, "use the Lemma 3.7 parallel construction")
	flag.Parse()

	var g *graph.Graph
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		g, err = graphio.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		*family = *input
	}
	switch {
	case g != nil:
		// loaded from -input
	default:
		g = generate(*family, *n, *seed)
	}

	runStats(g, *family, *k, *seed, *par)
}

func generate(family string, n int, seed uint64) *graph.Graph {
	var g *graph.Graph
	switch family {
	case "3regular":
		g = graph.RandomRegular(n, 3, seed)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		g = graph.Grid2D(side, side)
	case "cycle":
		g = graph.Cycle(n)
	case "tree":
		g = graph.RandomTree(n, seed)
	case "percolation":
		side := 1
		for side*side < n {
			side++
		}
		g = graph.Percolation(side, side, 0.55, seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph family %q\n", family)
		os.Exit(2)
	}
	return g
}

func runStats(g *graph.Graph, family string, k int, seed uint64, par bool) {
	s := core.New(g, core.Config{Omega: k * k, K: k, Seed: seed})
	d := s.NewDecomposition(par)
	fmt.Printf("graph=%s n=%d m=%d maxdeg=%d k=%d parallel=%v\n",
		family, g.N(), g.M(), g.MaxDegree(), k, par)
	fmt.Printf("centers: %d (primary %d, secondary %d, extension %d); n/k = %d\n",
		d.NumCenters(), d.D.PrimaryCount, d.D.SecondaryCount, d.D.ExtraPrimaries, g.N()/k)
	fmt.Printf("construction: %v, depth %d, sym high-water %d words\n",
		s.Cost(), s.Depth(), s.SymHighWater())

	sizes := map[int32]int{}
	for v := int32(0); int(v) < g.N(); v++ {
		sizes[d.Center(v)]++
	}
	hist := map[int]int{}
	maxSz := 0
	for _, sz := range sizes {
		hist[sz]++
		if sz > maxSz {
			maxSz = sz
		}
	}
	fmt.Printf("clusters: %d, max size %d (bound %d)\n", len(sizes), maxSz, k)
	var keys []int
	for sz := range hist {
		keys = append(keys, sz)
	}
	sort.Ints(keys)
	for _, sz := range keys {
		fmt.Printf("  size %3d: %d clusters\n", sz, hist[sz])
	}
	fmt.Printf("avg ρ-query reads: %.1f (k = %d)\n",
		float64(d.QueryCost().Reads)/float64(g.N()), k)
}
