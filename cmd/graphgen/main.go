// Command graphgen emits synthetic graphs as edge lists ("u v" per line,
// preceded by a "# n m" header) for use outside this repository or for
// feeding experiments reproducibly.
//
// Usage:
//
//	graphgen -graph gnm -n 1000 -m 5000 -seed 7 > edges.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
)

func main() {
	family := flag.String("graph", "gnm", "gnm | 3regular | grid | cycle | tree | star | powerlaw | percolation | lollipop | ladder")
	n := flag.Int("n", 1000, "vertices")
	m := flag.Int("m", 0, "edges (gnm only; default 4n)")
	p := flag.Float64("p", 0.5, "bond probability (percolation only)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if *m == 0 {
		*m = 4 * *n
	}
	var g *graph.Graph
	switch *family {
	case "gnm":
		g = graph.GNM(*n, *m, *seed, true)
	case "3regular":
		g = graph.RandomRegular(*n, 3, *seed)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = graph.Grid2D(side, side)
	case "cycle":
		g = graph.Cycle(*n)
	case "tree":
		g = graph.RandomTree(*n, *seed)
	case "star":
		g = graph.Star(*n)
	case "powerlaw":
		g = graph.PowerLaw(*n, 4, *seed)
	case "percolation":
		side := 1
		for side*side < *n {
			side++
		}
		g = graph.Percolation(side, side, *p, *seed)
	case "lollipop":
		g = graph.Lollipop(*n/2, *n/2)
	case "ladder":
		g = graph.Ladder(*n / 2)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph family %q\n", *family)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# %d %d\n", g.N(), g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "%d %d\n", e[0], e[1])
	}
}
