// Command weclint is the repository's invariant lint gate: it runs the
// internal/analysis suite — meteredaccess, snapshotsafe, typederr,
// noallocpath, docstyle, wecdirective — over a package pattern and exits
// nonzero on any finding. It is the static half of the accounting
// discipline the paper's cost model imposes; `make lint` and CI run it as
//
//	go run ./cmd/weclint ./...
//
// Flags:
//
//	-run a,b    run only the named analyzers
//	-list       print the analyzers and exit
//
// Directive grammar and per-analyzer semantics: docs/static-analysis.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: weclint [-run a,b] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "weclint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "weclint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "weclint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "weclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
