package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// Restart workload (-exp restart): the end-to-end gate on the durable
// store. It drives a REAL oracled process (not in-process: crash recovery
// is only honest across a process boundary):
//
//  1. start oracled with -datadir on a fresh directory, two graphs (the
//     flag default plus one via POST /graphs), aggressive compaction so
//     snapshot rotation and WAL reclaim happen during the run;
//  2. churn both graphs with acknowledged batches (insertion-only and
//     removal batches) under concurrent query load, create-and-delete a
//     third graph (delete durability);
//  3. SIGKILL the daemon mid-churn — the last batches are acknowledged
//     wait=false, their rebuild racing the kill;
//  4. restart on the same -datadir and verify: the fleet is exactly the
//     two live graphs, each at (at least) its last acknowledged epoch,
//     with n/m equal to the expected edge multiset and every sampled
//     query answer equal to a from-scratch reference oracle's;
//  5. churn the recovered fleet again (sequence continuity), re-verify,
//     then shut down gracefully (final snapshot fold) and do one more
//     boot-and-verify round.
//
// The process exits nonzero unless every check passes. CI runs it with a
// race-enabled oracled binary (make smoke-restart).
var (
	oracledBin   = flag.String("oracledbin", "", "restart: path to an oracled binary (empty = go build one)")
	restartChurn = flag.Int("restartchurn", 6, "restart: acknowledged churn batches per graph per phase")
)

// rdaemon is one managed oracled process.
type rdaemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

func startOracled(bin, datadir string, extra ...string) (*rdaemon, error) {
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-datadir", datadir,
		"-fsync", "always",
		"-compactbytes", "512",
		"-n", "512", "-deg", "3", "-graphseed", "42",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Printf("  | %s\n", line)
			if a, ok := strings.CutPrefix(line, "oracled: listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(a):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &rdaemon{cmd: cmd, base: "http://" + addr}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("oracled did not announce its listen address")
	}
}

func (d *rdaemon) kill() error {
	d.cmd.Process.Kill() // SIGKILL: no cleanup, no final snapshot
	return d.cmd.Wait()
}

func (d *rdaemon) shutdown() error {
	if err := d.cmd.Process.Signal(os.Interrupt); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		return fmt.Errorf("graceful shutdown timed out")
	}
}

// waitGraphReady polls one graph's lifecycle state until ready.
func waitGraphReady(base, name string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st serve.GraphStatus
		if err := getDecode(base+"/graphs/"+name, &st); err == nil {
			switch st.State {
			case serve.StateReady:
				return nil
			case serve.StateFailed:
				return fmt.Errorf("graph %s failed: %s", name, st.Error)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("graph %s not ready after %v", name, timeout)
}

// assertBiccUnbuilt checks /info's per-oracle built epochs on a freshly
// recovered graph: recovery boots with LazyBoot, so the deferrable bicc
// oracle must report -1 (never built) — recovery paid only for the graph
// and the conn oracle. Must run BEFORE any bicc-family query against the
// graph (restartVerify's random batch contains them and would trigger the
// deferred build).
func assertBiccUnbuilt(base, name string) error {
	info, err := fetchInfo(base + "/graphs/" + name)
	if err != nil {
		return fmt.Errorf("%s /info: %v", name, err)
	}
	if got := info.OracleEpochs["bicc"]; got != -1 {
		return fmt.Errorf("%s recovered with bicc built at epoch %d, want -1 (lazily unbuilt)", name, got)
	}
	if got := info.OracleEpochs["conn"]; got < 0 {
		return fmt.Errorf("%s recovered with conn unbuilt (epoch %d)", name, got)
	}
	return nil
}

// rtenant tracks one graph's expected state across kills.
type rtenant struct {
	name       string
	n          int
	edges      [][2]int32
	ackedEpoch int64
}

// restartVerify compares the daemon's served state for tn against a
// from-scratch reference engine (oracled's default ω=64, seed=7 — labels
// compare exactly).
func restartVerify(base string, tn *rtenant, rng *graph.RNG) error {
	gbase := base + "/graphs/" + tn.name
	info, err := fetchInfo(gbase)
	if err != nil {
		return fmt.Errorf("%s /info: %v", tn.name, err)
	}
	if info.GraphN != tn.n || info.GraphM != len(tn.edges) {
		return fmt.Errorf("%s shape n=%d m=%d, want n=%d m=%d", tn.name, info.GraphN, info.GraphM, tn.n, len(tn.edges))
	}
	if info.Epoch < tn.ackedEpoch {
		return fmt.Errorf("%s epoch %d below last acknowledged %d", tn.name, info.Epoch, tn.ackedEpoch)
	}
	ref := serve.New(graph.FromEdges(tn.n, tn.edges), serve.Config{Omega: 64, Seed: 7})
	defer ref.Close()
	qs := randomBatch(rng, tn.n, 400)
	got, err := postBatchResults(gbase, qs)
	if err != nil {
		return fmt.Errorf("%s batch: %v", tn.name, err)
	}
	want := ref.Do(qs)
	for i := range qs {
		if !sameServedResult(got[i], want[i]) {
			return fmt.Errorf("%s answer drift: %s(%d,%d) served %s, reference %s",
				tn.name, qs[i].Kind, qs[i].U, qs[i].V, resultString(got[i]), resultString(want[i]))
		}
	}
	return nil
}

// churnTenant sends acknowledged wait=true update batches, maintaining the
// expected edge multiset and acked epoch. Odd batches are insertion-only
// (incremental path), even ones mix in removals (full rebuilds).
func churnTenant(base string, tn *rtenant, batches int, rng *graph.RNG) error {
	for b := 0; b < batches; b++ {
		req := serve.UpdateRequest{Wait: true}
		for j := 0; j < 8; j++ {
			req.Add = append(req.Add, [2]int32{int32(rng.Intn(tn.n)), int32(rng.Intn(tn.n))})
		}
		if b%2 == 1 && len(tn.edges) > 4 {
			for j := 0; j < 3; j++ {
				idx := rng.Intn(len(tn.edges))
				req.Remove = append(req.Remove, tn.edges[idx])
				tn.edges = append(tn.edges[:idx], tn.edges[idx+1:]...)
			}
		}
		var ur serve.UpdateResponse
		if err := postUpdate(base+"/graphs/"+tn.name, req, &ur); err != nil {
			return fmt.Errorf("%s churn %d: %v", tn.name, b, err)
		}
		if !ur.Applied {
			return fmt.Errorf("%s churn %d: wait=true not applied: %+v", tn.name, b, ur)
		}
		tn.edges = append(tn.edges, req.Add...)
		tn.ackedEpoch = ur.Epoch
	}
	return nil
}

func restartBench(scale int) {
	header("Restart", "durable store: kill -9 under churn, recover the fleet, verify against reference oracles")
	http.DefaultClient.Timeout = 2 * time.Minute
	defer func() { http.DefaultClient.Timeout = 0 }()
	_ = scale

	bin := *oracledBin
	if bin == "" {
		tmp, err := os.MkdirTemp("", "wecrestart-bin-")
		if err != nil {
			fatalf("tempdir: %v", err)
		}
		defer os.RemoveAll(tmp)
		bin = filepath.Join(tmp, "oracled")
		fmt.Printf("building oracled into %s\n", bin)
		build := exec.Command("go", "build", "-o", bin, "./cmd/oracled")
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		if err := build.Run(); err != nil {
			fatalf("go build oracled: %v", err)
		}
	}

	datadir, err := os.MkdirTemp("", "wecrestart-data-")
	if err != nil {
		fatalf("tempdir: %v", err)
	}
	defer os.RemoveAll(datadir)

	// ---- Phase 1: fresh boot, fleet setup, churn, create/delete, SIGKILL.
	d, err := startOracled(bin, datadir)
	if err != nil {
		fatalf("start: %v", err)
	}
	if err := waitGraphReady(d.base, "default", time.Minute); err != nil {
		fatalf("%v", err)
	}

	tenants := []*rtenant{
		{name: "default", n: 512, edges: graph.RandomRegular(512, 3, 42).Edges()},
		{name: "beta", n: 384, edges: graph.RandomRegular(384, 3, 11).Edges()},
	}
	body, _ := json.Marshal(serve.GraphSpec{Name: "beta", N: 384, Deg: 3, GraphSeed: 11, Wait: true})
	if code, resp := rawReq(http.MethodPost, d.base+"/graphs", body); code != http.StatusCreated {
		fatalf("create beta: code=%d body=%s", code, resp)
	}

	// Delete durability: a third graph created and deleted pre-kill must
	// stay gone after recovery.
	body, _ = json.Marshal(serve.GraphSpec{Name: "ghost", N: 256, Deg: 3, GraphSeed: 5, Wait: true})
	if code, resp := rawReq(http.MethodPost, d.base+"/graphs", body); code != http.StatusCreated {
		fatalf("create ghost: code=%d body=%s", code, resp)
	}
	if code, resp := rawReq(http.MethodDelete, d.base+"/graphs/ghost", nil); code != http.StatusOK {
		fatalf("delete ghost: code=%d body=%s", code, resp)
	}

	// Churn both tenants under concurrent query load.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i, tn := range tenants {
		wg.Add(1)
		go func(i int, name string, n int) {
			defer wg.Done()
			qrng := graph.NewRNG(uint64(900 + i))
			for !stop.Load() {
				if _, err := postBatchResults(d.base+"/graphs/"+name, randomBatch(qrng, n, 64)); err != nil {
					return // the kill below severs connections; that's fine
				}
			}
		}(i, tn.name, tn.n)
	}
	rng := graph.NewRNG(2024)
	for _, tn := range tenants {
		if err := churnTenant(d.base, tn, *restartChurn, rng); err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Printf("churned: default epoch=%d m=%d, beta epoch=%d m=%d\n",
		tenants[0].ackedEpoch, len(tenants[0].edges), tenants[1].ackedEpoch, len(tenants[1].edges))

	// Scrape /metrics mid-churn: with -datadir the durability families
	// (WAL append/fsync/commit, snapshot size, compactions) must be
	// present alongside the serving-layer set, and the exposition must
	// parse while rebuilds and compactions run underneath.
	if err := checkMetrics(d.base, serveMetricFamilies, storeMetricFamilies); err != nil {
		fatalf("mid-churn metrics scrape: %v", err)
	}
	fmt.Println("mid-churn metrics scrape ok (serve + store families)")

	// Final acknowledged-but-racing-the-kill batches: wait=false staging is
	// acknowledged after the WAL append, so these must survive even though
	// their rebuild is (at best) mid-flight when SIGKILL lands.
	for _, tn := range tenants {
		req := serve.UpdateRequest{Add: [][2]int32{
			{int32(rng.Intn(tn.n)), int32(rng.Intn(tn.n))},
			{int32(rng.Intn(tn.n)), int32(rng.Intn(tn.n))},
		}}
		var ur serve.UpdateResponse
		if err := postUpdate(d.base+"/graphs/"+tn.name, req, &ur); err != nil {
			fatalf("%s final async update: %v", tn.name, err)
		}
		tn.edges = append(tn.edges, req.Add...)
	}
	stop.Store(true)
	if err := d.kill(); err == nil {
		fatalf("SIGKILL'd daemon exited cleanly?")
	}
	wg.Wait()
	fmt.Println("daemon SIGKILL'd mid-churn")

	// ---- Phase 2: restart, recover, verify, churn again.
	d, err = startOracled(bin, datadir)
	if err != nil {
		fatalf("restart: %v", err)
	}
	for _, tn := range tenants {
		if err := waitGraphReady(d.base, tn.name, 2*time.Minute); err != nil {
			fatalf("recovery: %v", err)
		}
	}
	var list serve.GraphListResponse
	if err := getDecode(d.base+"/graphs", &list); err != nil {
		fatalf("/graphs: %v", err)
	}
	if len(list.Graphs) != 2 || list.Default != "default" {
		fatalf("recovered fleet %+v (default %q), want exactly default+beta", list.Graphs, list.Default)
	}
	if code, _ := rawReq(http.MethodGet, d.base+"/graphs/ghost", nil); code != http.StatusNotFound {
		fatalf("deleted graph resurrected: GET /graphs/ghost = %d, want 404", code)
	}
	vrng := graph.NewRNG(31337)
	for _, tn := range tenants {
		if err := assertBiccUnbuilt(d.base, tn.name); err != nil {
			fatalf("post-kill recovery: %v", err)
		}
		if err := restartVerify(d.base, tn, vrng); err != nil {
			fatalf("post-kill verification: %v", err)
		}
		fmt.Printf("  %s recovered and verified: m=%d, epoch >= %d, bicc lazily unbuilt until queried ✓\n", tn.name, len(tn.edges), tn.ackedEpoch)
	}

	// The recovered fleet is live: more acknowledged churn, sequence
	// numbers continuing where the WAL left off.
	for _, tn := range tenants {
		if err := churnTenant(d.base, tn, 2, rng); err != nil {
			fatalf("post-recovery churn: %v", err)
		}
		if err := restartVerify(d.base, tn, vrng); err != nil {
			fatalf("post-recovery verification: %v", err)
		}
	}
	fmt.Println("post-recovery churn applied and verified")

	// ---- Phase 3: graceful shutdown (final snapshot fold), boot, verify.
	if err := d.shutdown(); err != nil {
		fatalf("graceful shutdown: %v", err)
	}
	d, err = startOracled(bin, datadir)
	if err != nil {
		fatalf("third boot: %v", err)
	}
	for _, tn := range tenants {
		if err := waitGraphReady(d.base, tn.name, 2*time.Minute); err != nil {
			fatalf("post-graceful recovery: %v", err)
		}
		if err := assertBiccUnbuilt(d.base, tn.name); err != nil {
			fatalf("post-graceful recovery: %v", err)
		}
		if err := restartVerify(d.base, tn, vrng); err != nil {
			fatalf("post-graceful verification: %v", err)
		}
	}
	if err := d.shutdown(); err != nil {
		fatalf("final shutdown: %v", err)
	}
	fmt.Println("restart: PASS")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "restart: FAILED — "+format+"\n", args...)
	os.Exit(1)
}
