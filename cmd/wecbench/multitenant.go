package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// Multitenant workload (-exp multitenant): the end-to-end gate on the
// multi-graph registry. One in-process registry server carries N graphs
// created through the lifecycle API (POST /graphs), all sharing one
// admission-controlled worker pool. The workload:
//
//   - asserts the readiness window: /healthz is 503 before the default
//     graph exists, 200 once it is ready;
//   - drives concurrent /graphs/{name}/batch query load against every
//     graph at once, verifying every answer against that graph's own
//     from-scratch reference engine (cross-graph isolation: a leaked
//     snapshot would answer with the wrong graph's structure);
//   - churns one graph through /graphs/{name}/update (wait=true) under the
//     query load, re-verifying after every snapshot swap, and asserts the
//     other graphs' epochs never move;
//   - demonstrates admission control on a capped graph: queue-full → 429 +
//     Retry-After, the rejection visible in that graph's /stats, and a 200
//     once the slot frees;
//   - deletes a graph and asserts it 404s while the rest keep serving;
//   - prints per-graph query/cost deltas and the shared-pool telemetry.
//
// The process exits nonzero unless every check passes. CI runs this under
// the race detector (make smoke-multitenant).
var (
	mtGraphs  = flag.Int("mtgraphs", 3, "multitenant: graphs to serve (>= 2)")
	mtQueries = flag.Int("mtqueries", 3000, "multitenant: queries per graph")
	mtChurn   = flag.Int("mtchurn", 4, "multitenant: update batches against the churned graph")
	mtConc    = flag.Int("mtconc", 3, "multitenant: concurrent clients per graph")
)

// mtSpec mirrors the registry's generator mapping for one benchmark graph
// so the reference engine is built over the identical graph the daemon
// serves; /info is cross-checked to catch drift.
type mtSpec struct {
	name string
	gen  string
	n    int
	deg  int
	seed uint64
}

func (s mtSpec) build() *graph.Graph {
	if s.gen == "gnm" {
		return graph.GNM(s.n, s.n*s.deg/2, s.seed, true)
	}
	return graph.RandomRegular(s.n, s.deg, s.seed)
}

func multitenantBench(scale int) {
	if *mtGraphs < 2 {
		fmt.Fprintf(os.Stderr, "multitenant: -mtgraphs must be >= 2\n")
		os.Exit(2)
	}
	header("Multitenant", "N graphs behind one registry: lifecycle, isolation, shared-pool admission control")
	// This bench is a CI gate for concurrency regressions; a hung request
	// (e.g. a leaked pool slot) must fail fast with a diagnostic, not
	// stall the job until its timeout. All helpers use the default client.
	http.DefaultClient.Timeout = 2 * time.Minute
	defer func() { http.DefaultClient.Timeout = 0 }()
	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "multitenant: FAILED — "+format+"\n", args...)
		failed = true
	}

	reg := serve.NewRegistry(serve.RegistryConfig{
		Engine: serve.Config{Omega: *serveOmega, Seed: 7},
	})
	defer reg.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "multitenant: listen: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: serve.NewRegistryServer(reg)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Readiness: no graphs yet, the daemon must say so.
	if code, _ := rawReq(http.MethodGet, base+"/healthz", nil); code != http.StatusServiceUnavailable {
		fail("/healthz with no graphs: %d, want 503", code)
	}

	// Create the tenant fleet through the lifecycle API: distinct shapes
	// and seeds per graph so no two graphs answer alike.
	specs := make([]mtSpec, *mtGraphs)
	refs := make([]*serve.Engine, *mtGraphs)
	edgeLists := make([][][2]int32, *mtGraphs)
	for i := range specs {
		s := mtSpec{
			name: fmt.Sprintf("g%d", i),
			gen:  "random-regular",
			n:    (1<<9)*scale + 128*i,
			deg:  3,
			seed: uint64(101 + 13*i),
		}
		if i%2 == 1 {
			s.gen, s.deg = "gnm", 4
		}
		specs[i] = s
		body, _ := json.Marshal(serve.GraphSpec{
			Name: s.name, Gen: s.gen, N: s.n, Deg: s.deg, GraphSeed: s.seed, Wait: true,
		})
		code, resp := rawReq(http.MethodPost, base+"/graphs", body)
		if code != http.StatusCreated {
			fmt.Fprintf(os.Stderr, "multitenant: create %s: code=%d body=%s\n", s.name, code, resp)
			os.Exit(1)
		}
		g := s.build()
		edgeLists[i] = g.Edges()
		refs[i] = serve.New(g, serve.Config{Omega: *serveOmega, Seed: 7})
		defer refs[i].Close()
	}
	if code, _ := rawReq(http.MethodGet, base+"/healthz", nil); code != http.StatusOK {
		fail("/healthz with default graph ready: %d, want 200", code)
	}

	// Per-graph /info must reflect each graph's own shape (and match the
	// local twin, or the reference verification below is meaningless).
	for i, s := range specs {
		info, err := fetchInfo(base + "/graphs/" + s.name)
		if err != nil {
			fail("%s /info: %v", s.name, err)
			continue
		}
		if info.GraphN != refs[i].Graph().N() || info.GraphM != refs[i].Graph().M() {
			fail("%s shape: served n=%d m=%d, reference n=%d m=%d (generator drift?)",
				s.name, info.GraphN, info.GraphM, refs[i].Graph().N(), refs[i].Graph().M())
		}
	}
	fmt.Printf("%d graphs ready behind %s (shared pool: %d workers)\n",
		*mtGraphs, base, reg.Pool().Size())

	statsBefore := make([]serve.StatsJSON, *mtGraphs)
	for i, s := range specs {
		if statsBefore[i], err = fetchStats(base + "/graphs/" + s.name); err != nil {
			fail("%s /stats: %v", s.name, err)
		}
	}

	// Concurrent mixed load against every graph at once, every answer
	// verified against the graph's own reference engine. The churn graph
	// (g1) is churned from the main goroutine meanwhile.
	churnIdx := 1
	var stop atomic.Bool
	var answered atomic.Int64
	var vfailed atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for i, s := range specs {
		// The churned graph's reference is swapped by the main goroutine
		// mid-run; its clients use only the (fixed) vertex count, captured
		// here, and skip the per-batch reference check — verifyChurn covers
		// it at every swap boundary.
		ref, n := refs[i], refs[i].Graph().N()
		for c := 0; c < *mtConc; c++ {
			wg.Add(1)
			go func(i int, s mtSpec, c int) {
				defer wg.Done()
				gbase := base + "/graphs/" + s.name
				rng := graph.NewRNG(uint64(5000 + 97*i + c))
				sent := 0
				for sent < *mtQueries && !stop.Load() && !vfailed.Load() {
					batch := *serveBatchSz
					if left := *mtQueries - sent; batch > left {
						batch = left
					}
					qs := randomBatch(rng, n, batch)
					got, err := postBatchResults(gbase, qs)
					if err != nil {
						fmt.Fprintf(os.Stderr, "multitenant: %s batch: %v\n", s.name, err)
						vfailed.Store(true)
						return
					}
					// The churned graph is verified at swap boundaries below
					// (its reference evolves); the static graphs must match
					// their reference answer for answer.
					if i != churnIdx {
						want := ref.Do(qs)
						for j := range qs {
							if !sameServedResult(got[j], want[j]) {
								fmt.Fprintf(os.Stderr,
									"multitenant: %s isolation breach: %s(%d,%d) served %s, reference %s\n",
									s.name, qs[j].Kind, qs[j].U, qs[j].V,
									resultString(got[j]), resultString(want[j]))
								vfailed.Store(true)
								return
							}
						}
					}
					sent += batch
					answered.Add(int64(batch))
				}
			}(i, s, c)
		}
	}

	// Churn g1 while the fleet serves: odd batches insertion-only
	// (incremental), even mixed (full rebuild), each verified post-swap
	// against a from-scratch engine over the evolving edge list.
	churnBase := base + "/graphs/" + specs[churnIdx].name
	churnEdges := edgeLists[churnIdx]
	churnN := refs[churnIdx].Graph().N()
	rng := graph.NewRNG(4242)
	for b := 1; b <= *mtChurn && !vfailed.Load(); b++ {
		req := serve.UpdateRequest{Wait: true}
		next := churnEdges
		if b%2 == 1 {
			for j := 0; j < 16; j++ {
				req.Add = append(req.Add, [2]int32{int32(rng.Intn(churnN)), int32(rng.Intn(churnN))})
			}
		} else {
			idx := map[int]bool{}
			for len(idx) < 8 && len(idx) < len(churnEdges) {
				idx[rng.Intn(len(churnEdges))] = true
			}
			next = nil
			for j, e := range churnEdges {
				if idx[j] {
					req.Remove = append(req.Remove, e)
				} else {
					next = append(next, e)
				}
			}
			for j := 0; j < 8; j++ {
				req.Add = append(req.Add, [2]int32{int32(rng.Intn(churnN)), int32(rng.Intn(churnN))})
			}
		}
		var ur serve.UpdateResponse
		if err := postUpdate(churnBase, req, &ur); err != nil {
			fail("churn update %d: %v", b, err)
			break
		}
		if !ur.Applied || ur.Epoch != int64(b) {
			fail("churn update %d not applied at epoch %d: %+v", b, b, ur)
			break
		}
		next = append(next, req.Add...)
		churnEdges = next
		refs[churnIdx].Close()
		refs[churnIdx] = serve.New(graph.FromEdges(churnN, churnEdges), serve.Config{Omega: *serveOmega, Seed: 7})
		if err := verifyChurn(churnBase, refs[churnIdx], churnEdges, graph.NewRNG(uint64(31*b)), false); err != nil {
			fail("churn epoch %d verification: %v", b, err)
			break
		}
		// Scrape /metrics mid-churn, with the cross-tenant query load still
		// running: the exposition must stay parseable and complete while
		// epochs swap underneath it.
		if err := checkMetrics(base, serveMetricFamilies); err != nil {
			fail("mid-churn metrics scrape (epoch %d): %v", b, err)
			break
		}
		fmt.Printf("  %s epoch %d: +%d/-%d edges applied and verified under cross-tenant load (metrics scrape ok)\n",
			specs[churnIdx].name, ur.Epoch, len(req.Add), len(req.Remove))
	}
	if failed || vfailed.Load() {
		// A churn failure already decided the run: stop the clients early
		// instead of letting them finish their full query quota.
		stop.Store(true)
	}
	wg.Wait()
	wall := time.Since(start)
	if vfailed.Load() {
		failed = true
	}

	// Update isolation: only the churned graph's epoch moved.
	for i, s := range specs {
		st, err := fetchStats(base + "/graphs/" + s.name)
		if err != nil {
			fail("%s /stats after load: %v", s.name, err)
			continue
		}
		wantEpoch := int64(0)
		if i == churnIdx {
			wantEpoch = int64(*mtChurn)
		}
		if st.Epoch != wantEpoch {
			fail("%s epoch %d, want %d (update isolation)", s.name, st.Epoch, wantEpoch)
		}
		for kind, ks := range st.Queries {
			if ks.Errors != 0 {
				fail("%s: %d %s queries errored", s.name, ks.Errors, kind)
			}
		}
		delta := st.TotalQueries - statsBefore[i].TotalQueries
		fmt.Printf("  %-4s n=%-6d m=%-6d epoch=%-2d queries=%-7d queue-wait=%.1fms\n",
			s.name, st.GraphN, st.GraphM, st.Epoch, delta, st.Admission.QueueWaitMs)
	}

	// Admission control: a capped tenant rejects the second concurrent
	// request with 429 + Retry-After, visibly in /stats, then recovers.
	body, _ := json.Marshal(serve.GraphSpec{
		Name: "tiny", N: 256, Deg: 3, GraphSeed: 5, MaxInflight: 1, Wait: true,
	})
	if code, resp := rawReq(http.MethodPost, base+"/graphs", body); code != http.StatusCreated {
		fail("create tiny: code=%d body=%s", code, resp)
	}
	tinyEng, err := reg.Get("tiny")
	if err != nil {
		fail("tiny engine: %v", err)
	} else {
		release, err := tinyEng.Admit() // hold the single slot
		if err != nil {
			fail("tiny admit: %v", err)
		}
		qbody, _ := json.Marshal(serve.BatchRequest{Queries: randomBatch(graph.NewRNG(1), 256, 64)})
		code, hdr, resp := rawReqHeaders(http.MethodPost, base+"/graphs/tiny/batch", qbody)
		if code != http.StatusTooManyRequests {
			fail("batch against full tiny queue: code=%d body=%s, want 429", code, resp)
		} else if hdr.Get("Retry-After") == "" {
			fail("429 without Retry-After header")
		} else {
			fmt.Printf("  admission: tiny (max_inflight=1) rejected a concurrent batch with 429, Retry-After=%s\n",
				hdr.Get("Retry-After"))
		}
		release()
		if code, _, _ := rawReqHeaders(http.MethodPost, base+"/graphs/tiny/batch", qbody); code != http.StatusOK {
			fail("batch after release: code=%d, want 200", code)
		}
		st, err := fetchStats(base + "/graphs/tiny")
		if err != nil || st.Admission.Rejected < 1 {
			fail("tiny /stats admission.rejected = %d (err=%v), want >= 1", st.Admission.Rejected, err)
		} else {
			fmt.Printf("  admission: tiny /stats reports rejected=%d inflight=%d\n",
				st.Admission.Rejected, st.Admission.Inflight)
		}
	}

	// Lifecycle: delete the last graph; it 404s while the rest serve on.
	victim := specs[len(specs)-1].name
	if code, resp := rawReq(http.MethodDelete, base+"/graphs/"+victim, nil); code != http.StatusOK {
		fail("delete %s: code=%d body=%s", victim, code, resp)
	}
	qbody, _ := json.Marshal(serve.Query{Kind: serve.KindComponent, U: 0})
	if code, _ := rawReq(http.MethodPost, base+"/graphs/"+victim+"/query", qbody); code != http.StatusNotFound {
		fail("query deleted %s: code=%d, want 404", victim, code)
	}
	if code, _ := rawReq(http.MethodPost, base+"/query", qbody); code != http.StatusOK {
		fail("default graph after delete: code=%d, want 200", code)
	}

	ps := reg.Pool().Stats()
	fmt.Printf("\npool: size=%d peak=%d tasks=%d queue-wait=%v\n",
		ps.Size, ps.PeakInUse, ps.Tasks, ps.QueueWait.Round(time.Millisecond))
	fmt.Printf("%d graphs, %d queries answered and verified, %d churn epochs, %v wall\n",
		*mtGraphs, answered.Load(), *mtChurn, wall.Round(time.Millisecond))
	if int64(ps.PeakInUse) > int64(ps.Size) {
		fail("pool peak %d exceeded size %d", ps.PeakInUse, ps.Size)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("multitenant: PASS")
}

// sameServedResult compares two served results for the static-graph
// verification (both sides run the same engine seed over the same graph,
// so labels compare exactly, not just as a partition).
func sameServedResult(a, b serve.Result) bool {
	if (a.Bool == nil) != (b.Bool == nil) || (a.Label == nil) != (b.Label == nil) {
		return false
	}
	if a.Bool != nil && *a.Bool != *b.Bool {
		return false
	}
	if a.Label != nil && *a.Label != *b.Label {
		return false
	}
	return a.Err == b.Err
}

func rawReq(method, url string, body []byte) (int, []byte) {
	code, _, b := rawReqHeaders(method, url, body)
	return code, b
}

func rawReqHeaders(method, url string, body []byte) (int, http.Header, []byte) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, []byte(err.Error())
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, []byte(err.Error())
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b
}
