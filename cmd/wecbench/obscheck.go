package main

import (
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// serveMetricFamilies is the serving-layer family set every daemon must
// expose on GET /metrics; the smoke workloads scrape it mid-churn so a
// family that silently stops registering (or an exposition the parser
// rejects) fails the gate, not just a dashboard.
var serveMetricFamilies = []string{
	"wec_query_duration_seconds",
	"wec_queries_total",
	"wec_batch_size_queries",
	"wec_pool_queue_wait_seconds",
	"wec_admission_rejected_total",
	"wec_rebuild_duration_seconds",
	"wec_published_epoch",
	"wec_cache_hits_total",
	"wec_pool_size",
	"wec_graphs",
}

// storeMetricFamilies is the additional durability family set present when
// the daemon runs with -datadir (restart workload).
var storeMetricFamilies = []string{
	"wec_wal_append_seconds",
	"wec_wal_fsync_seconds",
	"wec_wal_commit_seconds",
	"wec_snapshot_write_seconds",
	"wec_snapshot_bytes",
	"wec_compactions_total",
}

// checkMetrics scrapes base+"/metrics", requires a parseable Prometheus
// text exposition, and requires every family in familySets to be present.
func checkMetrics(base string, familySets ...[]string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape /metrics: status %d", resp.StatusCode)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return fmt.Errorf("/metrics exposition unparseable: %v", err)
	}
	for _, fams := range familySets {
		for _, f := range fams {
			if !exp.HasFamily(f) {
				return fmt.Errorf("/metrics missing family %s", f)
			}
		}
	}
	return nil
}
