package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// serve mode: a load generator for the oracled HTTP API. With -serveaddr it
// drives a running daemon; without, it starts an in-process server over a
// generated random-regular graph (so the mode is self-contained and works
// as a smoke test). Queries are sent as /batch requests from -serveconc
// concurrent clients; the mix knob splits traffic between the cheap
// connectivity family (connected/component, O(√ω) reads each) and the
// expensive biconnectivity family (bridge/articulation/biconnected, O(ω)
// reads each). Reported: QPS, batch latency percentiles, and the /stats
// per-kind cost-model telemetry. The process exits nonzero unless every
// requested query was answered — CI uses this mode as the end-to-end gate
// on the serving path.
var (
	serveAddr    = flag.String("serveaddr", "", "oracled base URL (empty: start in-process server)")
	serveQueries = flag.Int("servequeries", 20000, "serve mode: total queries to send")
	serveConc    = flag.Int("serveconc", 8, "serve mode: concurrent clients")
	serveBatchSz = flag.Int("servebatch", 256, "serve mode: queries per /batch request")
	serveMix     = flag.Float64("servemix", 0.5, "serve mode: fraction of connectivity-family queries (rest biconnectivity)")
	serveOmega   = flag.Int("serveomega", 64, "serve mode (in-process): write cost ω")
)

var connKinds = []serve.Kind{serve.KindConnected, serve.KindComponent}
var biccKinds = []serve.Kind{serve.KindBridge, serve.KindArticulation, serve.KindBiconnected, serve.KindTwoEdgeConnected}

// serveBench is the wecbench runner for -exp serve. With -servechurn > 0
// it runs the dynamic-update churn workload (churn.go) instead of the
// static load test.
func serveBench(scale int) {
	if *serveChurn > 0 {
		churnBench(scale)
		return
	}
	header("Serve", "oracled under load: QPS, latency percentiles, per-kind cost telemetry")

	base := *serveAddr
	var g *graph.Graph
	if base == "" {
		n := (1 << 13) * scale
		g = graph.RandomRegular(n, 3, 71)
		fmt.Printf("in-process oracled: n=%d m=%d ω=%d, building...\n", g.N(), g.M(), *serveOmega)
		eng := serve.New(g, serve.Config{Omega: *serveOmega, Seed: 7})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: listen: %v\n", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: serve.NewServer(eng)}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
	}

	info, err := fetchInfo(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %s unreachable: %v\n", base, err)
		os.Exit(1)
	}
	fmt.Printf("target %s: n=%d m=%d ω=%d k=%d workers=%d\n",
		base, info.GraphN, info.GraphM, info.Omega, info.K, info.Workers)
	fmt.Printf("load: %d queries, %d clients, batch=%d, mix=%.0f%% conn / %.0f%% bicc\n",
		*serveQueries, *serveConc, *serveBatchSz, 100**serveMix, 100*(1-*serveMix))

	statsBefore, err := fetchStats(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: /stats unreachable: %v\n", err)
		os.Exit(1)
	}

	var sent, answered atomic.Int64
	var failed atomic.Bool
	var latencies []time.Duration
	var latMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *serveConc; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := graph.NewRNG(uint64(1000 + client))
			var local []time.Duration
			defer func() {
				latMu.Lock()
				latencies = append(latencies, local...)
				latMu.Unlock()
			}()
			for {
				remaining := int64(*serveQueries) - sent.Add(int64(*serveBatchSz))
				batch := *serveBatchSz
				if remaining < 0 {
					batch += int(remaining) // last, partial batch
					if batch <= 0 {
						break
					}
				}
				qs := randomBatch(rng, info.GraphN, batch)
				t0 := time.Now()
				if err := postBatch(base, qs); err != nil {
					fmt.Fprintf(os.Stderr, "serve: batch failed: %v\n", err)
					failed.Store(true)
					return
				}
				local = append(local, time.Since(t0))
				answered.Add(int64(batch))
				if remaining <= 0 {
					break
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	total := answered.Load()
	if failed.Load() || total < int64(*serveQueries) {
		fmt.Fprintf(os.Stderr, "serve: FAILED — only %d/%d queries answered\n",
			total, *serveQueries)
		os.Exit(1)
	}
	fmt.Printf("\n%12s %12s %10s | %10s %10s %10s %10s\n",
		"queries", "wall", "QPS", "p50", "p90", "p99", "max")
	sum := summarize(latencies, total, wall)
	round := func(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
	fmt.Printf("%12d %12v %10.0f | %10v %10v %10v %10v\n",
		total, wall.Round(time.Millisecond), sum.QPS,
		round(sum.P50), round(sum.P90), round(sum.P99), round(sum.Max))

	statsAfter, err := fetchStats(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: FAILED — /stats after load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%-14s %10s | %12s %10s %12s %12s\n",
		"kind", "count", "reads/q", "writes/q", "work/q", "errors")
	for _, k := range serve.Kinds {
		a, b := statsAfter.Queries[string(k)], statsBefore.Queries[string(k)]
		count := a.Count - b.Count
		if count == 0 {
			continue
		}
		fmt.Printf("%-14s %10d | %12.1f %10.2f %12.1f %12d\n",
			k, count,
			float64(a.Cost.Reads-b.Cost.Reads)/float64(count),
			float64(a.Cost.Writes-b.Cost.Writes)/float64(count),
			float64(a.Cost.Work-b.Cost.Work)/float64(count),
			a.Errors-b.Errors)
	}
}

// randomBatch draws batch queries with the configured family mix.
func randomBatch(rng *graph.RNG, n, batch int) []serve.Query {
	qs := make([]serve.Query, batch)
	for i := range qs {
		var kind serve.Kind
		if rng.Float64() < *serveMix {
			kind = connKinds[rng.Intn(len(connKinds))]
		} else {
			kind = biccKinds[rng.Intn(len(biccKinds))]
		}
		qs[i] = serve.Query{Kind: kind, U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	return qs
}

func fetchInfo(base string) (serve.Info, error) {
	var info serve.Info
	err := getDecode(base+"/info", &info)
	return info, err
}

func fetchStats(base string) (serve.StatsJSON, error) {
	var st serve.StatsJSON
	err := getDecode(base+"/stats", &st)
	return st, err
}

func getDecode(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func postBatch(base string, qs []serve.Query) error {
	body, err := json.Marshal(serve.BatchRequest{Queries: qs})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /batch: %s", resp.Status)
	}
	if br.Count != len(qs) {
		return fmt.Errorf("POST /batch: sent %d got %d results", len(qs), br.Count)
	}
	return nil
}
