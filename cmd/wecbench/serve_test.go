package main

import (
	"testing"
	"time"
)

// TestPctNearestRank is the regression test for the percentile index bug:
// int(p*n)-1 under-reported whenever p·n was fractional (p50 of 101
// samples returned the 50th value, not the median).
func TestPctNearestRank(t *testing.T) {
	ladder := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(i+1) * time.Millisecond
		}
		return s
	}
	for _, tc := range []struct {
		n    int
		p    float64
		want time.Duration
	}{
		{101, 0.50, 51 * time.Millisecond}, // median of odd-length input
		{101, 0.90, 91 * time.Millisecond}, // ceil(90.9) = 91st value
		{101, 0.99, 100 * time.Millisecond},
		{101, 1.00, 101 * time.Millisecond},
		{100, 0.50, 50 * time.Millisecond}, // exact rank unchanged
		{3, 0.50, 2 * time.Millisecond},
		{1, 0.50, 1 * time.Millisecond},
		{2, 0.99, 2 * time.Millisecond},
	} {
		if got := pct(ladder(tc.n), tc.p); got != tc.want {
			t.Errorf("pct(n=%d, p=%.2f) = %v, want %v", tc.n, tc.p, got, tc.want)
		}
	}
	if got := pct(nil, 0.5); got != 0 {
		t.Errorf("pct(empty) = %v, want 0", got)
	}
}
