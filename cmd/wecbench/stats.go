package main

import (
	"math"
	"sort"
	"time"
)

// Shared latency-statistics helpers for the load-driving modes (-exp serve
// and -exp bench). One nearest-rank percentile implementation lives here so
// the two harnesses cannot drift apart on the definition — the serve mode
// once shipped a ⌊p·n⌋-1 variant that under-reported fractional ranks, and
// the bench mode records the same digests into BENCH_*.json files.

// latSummary digests one run's latency samples: nearest-rank percentiles
// plus wall-clock throughput. Count is the number of queries the samples
// cover (one sample is typically one batch, not one query).
type latSummary struct {
	Count int64
	Wall  time.Duration
	QPS   float64
	P50   time.Duration
	P90   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// summarize sorts samples in place and digests them. Percentiles are exact
// (unrounded) so machine-readable consumers keep full resolution; display
// code rounds at the formatting site.
func summarize(samples []time.Duration, count int64, wall time.Duration) latSummary {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := latSummary{Count: count, Wall: wall}
	if wall > 0 {
		s.QPS = float64(count) / wall.Seconds()
	}
	s.P50 = pctExact(samples, 0.50)
	s.P90 = pctExact(samples, 0.90)
	s.P95 = pctExact(samples, 0.95)
	s.P99 = pctExact(samples, 0.99)
	s.Max = pctExact(samples, 1.0)
	return s
}

// pctExact returns the p-th percentile of a sorted sample by the
// nearest-rank definition: the ⌈p·n⌉-th smallest value. (The historical
// ⌊p·n⌋-1 index under-reported whenever p·n was fractional — p50 of 101
// samples returned the 50th value instead of the median.)
func pctExact(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// pct is pctExact rounded to 10µs for human-readable tables.
func pct(sorted []time.Duration, p float64) time.Duration {
	return pctExact(sorted, p).Round(10 * time.Microsecond)
}
