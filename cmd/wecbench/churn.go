package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// Churn workload (-exp serve -servechurn N): the end-to-end gate on the
// dynamic-update path. An in-process oracled serves a generated graph while
// -serveconc clients keep /batch query load running; the main goroutine
// interleaves N /update batches cycling through three shapes — insertion-
// only (patch-insert path), deletion-heavy (patch-delete path: every
// removal is chosen split-free, so the maintained spanning forest absorbs
// it, replacement search included, with zero full conn rebuilds), and
// mixed add+remove — each with wait=true so the returned epoch is the
// batch's snapshot. The harness mirrors the engine's strategy ladder
// (including the -servechurnrebase re-base cadence) and asserts the
// per-oracle strategy sequence and cumulative strategy counters match
// exactly. After every swap the server's answers are verified against a
// from-scratch engine rebuilt over the evolving edge list. The process
// exits nonzero unless every query was answered, every post-swap answer
// matched, the epoch advanced once per batch, the conn oracle was never
// fully rebuilt, the deferrable bicc oracle never rebuilt on the publish
// path (every batch deferred lazily or absorbed as a no-op patch), and
// every patched rebuild reported strictly fewer connectivity-oracle writes
// than the from-scratch build.
//
// With -servechurnconnonly the query load and per-epoch verification are
// restricted to conn kinds, and the harness gates on the lazy-rebuild
// counter staying at ZERO: a pure-connectivity tenant must be able to
// churn the graph forever without ever paying for a biconnectivity build,
// neither at publish time nor on the query path. This is `make
// smoke-churn`'s second phase.
var (
	serveChurn         = flag.Int("servechurn", 0, "serve mode: interleaved /update batches (0 = static serving; in-process only)")
	serveChurnEdges    = flag.Int("servechurnedges", 32, "serve mode: edges added/removed per update batch")
	serveChurnRebase   = flag.Int("servechurnrebase", 5, "serve mode: re-base the conn patch chain after this many chained batches (0 = engine default, negative = never)")
	serveChurnConnOnly = flag.Bool("servechurnconnonly", false, "serve mode: conn-kind-only churn; gate on zero bicc builds (publish path and lazy)")
)

func churnBench(scale int) {
	if *serveAddr != "" {
		fmt.Fprintf(os.Stderr, "churn: -servechurn needs the in-process server (verification rebuilds the oracle from the evolving edge list); drop -serveaddr\n")
		os.Exit(2)
	}
	header("Serve-churn", "dynamic updates under query load: snapshot swaps, answer verification, incremental write savings")

	// A disconnected base (8 random-regular islands) so insertion batches
	// actually merge components and the incremental label-merge path does
	// real work rather than trivially writing nothing. Degree 3 keeps most
	// edges on cycles, so split-free removals are plentiful.
	g := graph.Disconnected(graph.RandomRegular((1<<8)*scale, 3, 71), 8)
	n := g.N()
	fmt.Printf("in-process oracled: n=%d m=%d ω=%d; churn: %d batches × %d edges under %d query clients (rebase every %d)\n",
		g.N(), g.M(), *serveOmega, *serveChurn, *serveChurnEdges, *serveConc, *serveChurnRebase)
	eng := serve.New(g, serve.Config{Omega: *serveOmega, Seed: 7, RebaseEvery: *serveChurnRebase})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn: listen: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: serve.NewServer(eng)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Continuous query load for the whole churn window.
	var stop, failed atomic.Bool
	var answered atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < *serveConc; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := graph.NewRNG(uint64(9000 + client))
			for !stop.Load() {
				var qs []serve.Query
				if *serveChurnConnOnly {
					qs = connOnlyBatch(rng, n, *serveBatchSz)
				} else {
					qs = randomBatch(rng, n, *serveBatchSz)
				}
				if err := postBatch(base, qs); err != nil {
					fmt.Fprintf(os.Stderr, "churn: query batch failed: %v\n", err)
					failed.Store(true)
					stop.Store(true)
					return
				}
				answered.Add(int64(*serveBatchSz))
			}
		}(c)
	}

	// Mirror the engine's strategy ladder so every batch's expected conn
	// strategy (and the re-base cadence) can be asserted exactly.
	effRebase := *serveChurnRebase
	switch {
	case effRebase == 0:
		effRebase = serve.DefaultRebaseEvery
	case effRebase < 0:
		effRebase = 0
	}
	depth := 0
	var expect []string

	edges := g.Edges()
	rng := graph.NewRNG(4242)
	var fresh *serve.Engine
	start := time.Now()
	for i := 1; i <= *serveChurn && !failed.Load(); i++ {
		req := serve.UpdateRequest{Wait: true}
		working := edges
		switch i % 3 {
		case 1: // insertion-only: the patch-insert path
			for j := 0; j < *serveChurnEdges; j++ {
				req.Add = append(req.Add, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
			}
			working = append(working, req.Add...)
		case 2: // deletion-heavy: the patch-delete path, split-free removals only
			req.Remove, working = pickSplitFreeRemovals(rng, n, working, *serveChurnEdges)
			if len(req.Remove) == 0 {
				// Degenerate graph with no split-free edge left: keep the
				// batch non-empty (and the ladder mirror honest) with one add.
				req.Add = append(req.Add, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
				working = append(working, req.Add...)
			}
		default: // mixed: half adds (applied first), half split-free removals
			half := *serveChurnEdges / 2
			for j := 0; j < half; j++ {
				req.Add = append(req.Add, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
			}
			working = append(append([][2]int32{}, working...), req.Add...)
			req.Remove, working = pickSplitFreeRemovals(rng, n, working, half)
		}
		if effRebase > 0 && depth >= effRebase {
			expect = append(expect, serve.StrategyRebased)
			depth = 0
		} else if len(req.Remove) > 0 {
			expect = append(expect, serve.StrategyPatchedDelete)
			// Chain depth counts patch *generations*: a mixed batch folds
			// twice (insertions, then deletions), a pure one once.
			depth++
			if len(req.Add) > 0 {
				depth++
			}
		} else {
			expect = append(expect, serve.StrategyPatchedInsert)
			depth++
		}
		var ur serve.UpdateResponse
		if err := postUpdate(base, req, &ur); err != nil {
			fmt.Fprintf(os.Stderr, "churn: FAILED — update %d: %v\n", i, err)
			failed.Store(true)
			break
		}
		if !ur.Applied || ur.Epoch != int64(i) {
			fmt.Fprintf(os.Stderr, "churn: FAILED — update %d not applied at epoch %d: %+v\n", i, i, ur)
			failed.Store(true)
			break
		}
		edges = working

		// Every post-swap answer must match a from-scratch rebuilt oracle.
		if fresh != nil {
			fresh.Close()
		}
		fresh = serve.New(graph.FromEdges(n, edges), serve.Config{Omega: *serveOmega, Seed: 7})
		if err := verifyChurn(base, fresh, edges, graph.NewRNG(uint64(31*i)), *serveChurnConnOnly); err != nil {
			fmt.Fprintf(os.Stderr, "churn: FAILED — epoch %d verification: %v\n", i, err)
			failed.Store(true)
			break
		}
		fmt.Printf("  epoch %2d: +%d/-%d edges applied and verified (m=%d, want %s)\n",
			ur.Epoch, len(req.Add), len(req.Remove), len(edges), expect[len(expect)-1])
	}
	stop.Store(true)
	wg.Wait()
	wall := time.Since(start)
	if fresh == nil {
		fmt.Fprintf(os.Stderr, "churn: FAILED — no batch applied\n")
		os.Exit(1)
	}
	defer fresh.Close()

	st, err := fetchStats(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn: FAILED — /stats: %v\n", err)
		os.Exit(1)
	}
	for kind, ks := range st.Queries {
		if ks.Errors != 0 {
			fmt.Fprintf(os.Stderr, "churn: FAILED — %d %s queries errored\n", ks.Errors, kind)
			failed.Store(true)
		}
	}
	wantInc := int64(0)
	wantByStrat := map[string]int64{}
	for _, s := range expect {
		wantByStrat[s]++
		if s == serve.StrategyPatchedInsert || s == serve.StrategyPatchedDelete {
			wantInc++
		}
	}
	if st.Epoch != int64(*serveChurn) || st.PendingUpdates != 0 ||
		st.TotalRebuilds != int64(*serveChurn) || st.IncrementalRebuilds != wantInc {
		fmt.Fprintf(os.Stderr, "churn: FAILED — stats epoch=%d pending=%d rebuilds=%d incremental=%d (want %d/0/%d/%d)\n",
			st.Epoch, st.PendingUpdates, st.TotalRebuilds, st.IncrementalRebuilds,
			*serveChurn, *serveChurn, wantInc)
		failed.Store(true)
	}

	// The tentpole gates. Conn: never fully rebuilt — every deletion was
	// split-free, so the maintained spanning forest absorbed all of them —
	// and the cumulative per-oracle strategy counters must match the
	// mirrored ladder exactly. Bicc: never rebuilt on the publish path —
	// every batch was either deferred to the lazy rung or absorbed as a
	// provable no-op patch, so the counted avoided rebuilds must cover every
	// epoch.
	connStrat := st.Strategies["conn"]
	if connStrat[serve.StrategyFull] != 0 {
		fmt.Fprintf(os.Stderr, "churn: FAILED — %d full conn rebuilds (want 0): %v\n",
			connStrat[serve.StrategyFull], connStrat)
		failed.Store(true)
	}
	for _, s := range []string{serve.StrategyPatchedInsert, serve.StrategyPatchedDelete, serve.StrategyRebased} {
		if connStrat[s] != wantByStrat[s] {
			fmt.Fprintf(os.Stderr, "churn: FAILED — conn strategy %q count %d, want %d\n",
				s, connStrat[s], wantByStrat[s])
			failed.Store(true)
		}
	}
	biccStrat := st.Strategies["bicc"]
	if biccStrat[serve.StrategyFull] != 0 || biccStrat[serve.StrategyRebased] != 0 {
		fmt.Fprintf(os.Stderr, "churn: FAILED — bicc rebuilt on the publish path: %v\n", biccStrat)
		failed.Store(true)
	}
	deferred := biccStrat[serve.StrategyLazy] + biccStrat[serve.StrategyPatchedInsert] + biccStrat[serve.StrategyPatchedDelete]
	if deferred != int64(*serveChurn) {
		fmt.Fprintf(os.Stderr, "churn: FAILED — bicc deferred/patched %d of %d batches: %v\n",
			deferred, *serveChurn, biccStrat)
		failed.Store(true)
	}
	if st.RebuildsAvoided != int64(*serveChurn) {
		fmt.Fprintf(os.Stderr, "churn: FAILED — rebuilds_avoided %d, want %d\n",
			st.RebuildsAvoided, *serveChurn)
		failed.Store(true)
	}
	if *serveChurnConnOnly {
		// The conn-only gate: with no bicc-family query ever arriving, the
		// deferred slot must never have built — zero publish-path rebuilds
		// AND zero query-path (lazy) rebuilds, counter-checked.
		if st.LazyRebuilds != 0 {
			fmt.Fprintf(os.Stderr, "churn: FAILED — %d lazy bicc builds under a conn-only workload (want 0)\n",
				st.LazyRebuilds)
			failed.Store(true)
		}
	} else if st.LazyRebuilds != biccStrat[serve.StrategyLazy] {
		// Every deferred epoch is verified with bicc-family queries before
		// the next batch, so exactly one lazy build per lazy deferral.
		fmt.Fprintf(os.Stderr, "churn: FAILED — %d lazy bicc builds, want %d (one per deferral)\n",
			st.LazyRebuilds, biccStrat[serve.StrategyLazy])
		failed.Store(true)
	}
	fmt.Printf("bicc deferral: %d avoided publish-path rebuilds (%v), %d query-triggered builds\n",
		st.RebuildsAvoided, biccStrat, st.LazyRebuilds)
	fmt.Printf("oracle epochs at exit: %v (published %d)\n", st.OracleEpochs, st.Epoch)

	// Per-rebuild cost telemetry, and the write-savings gate: every
	// patched rebuild must report strictly fewer connectivity-oracle
	// writes than building that oracle from scratch. /stats keeps a bounded
	// history, so assert we got exactly the records we expect and say so
	// when the oldest epochs rotated out rather than reading as covered.
	wantRecords := *serveChurn
	if wantRecords > serve.MaxRebuildHistory {
		wantRecords = serve.MaxRebuildHistory
		fmt.Printf("(rebuild history capped at %d records; epochs 1..%d rotated out of the write-savings gate)\n",
			serve.MaxRebuildHistory, *serveChurn-serve.MaxRebuildHistory)
	}
	if len(st.Rebuilds) != wantRecords {
		fmt.Fprintf(os.Stderr, "churn: FAILED — /stats returned %d rebuild records, want %d\n",
			len(st.Rebuilds), wantRecords)
		failed.Store(true)
	}
	fullConnWrites := fresh.Stats().BuildConn.Writes
	fmt.Printf("\n%6s %-14s %8s %8s | %12s %12s %12s | %9s\n",
		"epoch", "conn strategy", "+edges", "-edges", "graph wr", "conn wr", "bicc wr", "ms")
	for _, r := range st.Rebuilds {
		fmt.Printf("%6d %-14s %8d %8d | %12d %12d %12d | %9.1f\n",
			r.Epoch, r.Strategies["conn"], r.AddedEdges, r.RemovedEdges,
			r.GraphCost.Writes, r.ConnCost.Writes, r.BiccCost.Writes, r.DurationMs)
		if int(r.Epoch) >= 1 && int(r.Epoch) <= len(expect) {
			if want := expect[r.Epoch-1]; r.Strategies["conn"] != want {
				fmt.Fprintf(os.Stderr, "churn: FAILED — epoch %d conn strategy %q, want %q\n",
					r.Epoch, r.Strategies["conn"], want)
				failed.Store(true)
			}
		}
		patched := r.Strategies["conn"] == serve.StrategyPatchedInsert || r.Strategies["conn"] == serve.StrategyPatchedDelete
		if patched && r.ConnCost.Writes >= fullConnWrites {
			fmt.Fprintf(os.Stderr, "churn: FAILED — patched epoch %d conn writes %d not below full build %d\n",
				r.Epoch, r.ConnCost.Writes, fullConnWrites)
			failed.Store(true)
		}
	}
	fmt.Printf("from-scratch conn-oracle build writes: %d (patched rebuilds stay strictly below)\n", fullConnWrites)
	fmt.Printf("conn strategy counters: %v\n", connStrat)
	fmt.Printf("\n%d epochs, %d queries answered during churn, %v wall, 0 failed\n",
		st.Epoch, answered.Load(), wall.Round(time.Millisecond))

	if failed.Load() {
		os.Exit(1)
	}
}

// pickSplitFreeRemovals chooses up to count removals from the working edge
// multiset such that no removal can split a component: a chosen edge either
// keeps a surviving parallel copy or its endpoints stay connected through
// the remaining edges (checked by BFS). This is what pins the server's
// behavior: every such removal must be absorbed by the maintained spanning
// forest (possibly via replacement-edge search) without a full conn
// rebuild. Returns the removals and the remaining multiset.
func pickSplitFreeRemovals(rng *graph.RNG, n int, working [][2]int32, count int) (removed, remaining [][2]int32) {
	remaining = append([][2]int32{}, working...)
	for attempts := 0; len(removed) < count && attempts < 8*count && len(remaining) > 0; attempts++ {
		idx := rng.Intn(len(remaining))
		if !graph.RemovalPreservesConnectivity(n, remaining, idx) {
			continue
		}
		removed = append(removed, remaining[idx])
		remaining[idx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return removed, remaining
}

// connOnlyBatch builds a query batch restricted to conn kinds — the
// -servechurnconnonly load, which must never touch the deferred bicc slot.
func connOnlyBatch(rng *graph.RNG, n, batch int) []serve.Query {
	qs := make([]serve.Query, batch)
	for i := range qs {
		qs[i] = serve.Query{Kind: connKinds[rng.Intn(len(connKinds))], U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	return qs
}

// verifyChurn compares the served answers (via /batch) with a from-scratch
// engine over the same edge list: boolean kinds must agree exactly,
// component labels as a partition. With connOnly the probe skips the
// bicc-family kinds entirely — a conn-only run's verification must not be
// the thing that triggers the deferred bicc build.
func verifyChurn(base string, fresh *serve.Engine, edges [][2]int32, rng *graph.RNG, connOnly bool) error {
	n := fresh.Graph().N()
	boolKinds := []serve.Kind{serve.KindConnected, serve.KindBridge, serve.KindArticulation, serve.KindBiconnected, serve.KindTwoEdgeConnected}
	if connOnly {
		boolKinds = []serve.Kind{serve.KindConnected}
	}
	qs := make([]serve.Query, 0, 256)
	for j := 0; j < 200; j++ {
		kind := boolKinds[rng.Intn(len(boolKinds))]
		var u, v int32
		if (kind == serve.KindBridge || kind == serve.KindBiconnected) && j%2 == 0 && len(edges) > 0 {
			e := edges[rng.Intn(len(edges))]
			u, v = e[0], e[1]
		} else {
			u, v = int32(rng.Intn(n)), int32(rng.Intn(n))
		}
		qs = append(qs, serve.Query{Kind: kind, U: u, V: v})
	}
	compBase := len(qs)
	for j := 0; j < 64; j++ {
		qs = append(qs, serve.Query{Kind: serve.KindComponent, U: int32(rng.Intn(n))})
	}
	got, err := postBatchResults(base, qs)
	if err != nil {
		return err
	}
	want := fresh.Do(qs)
	for i := 0; i < compBase; i++ {
		g, w := got[i], want[i]
		if g.Err != "" || w.Err != "" || g.Bool == nil || w.Bool == nil || *g.Bool != *w.Bool {
			return fmt.Errorf("%s(%d,%d): served %s, from-scratch %s",
				qs[i].Kind, qs[i].U, qs[i].V, resultString(g), resultString(w))
		}
	}
	// Component labels need only induce the same partition (a full rebuild
	// may renumber canonical labels).
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := compBase; i < len(qs); i++ {
		g, w := got[i], want[i]
		if g.Label == nil || w.Label == nil {
			return fmt.Errorf("component(%d): served %s, from-scratch %s", qs[i].U, resultString(g), resultString(w))
		}
		if x, ok := fwd[*g.Label]; ok && x != *w.Label {
			return fmt.Errorf("component partition diverges at vertex %d", qs[i].U)
		}
		if x, ok := bwd[*w.Label]; ok && x != *g.Label {
			return fmt.Errorf("component partition diverges at vertex %d", qs[i].U)
		}
		fwd[*g.Label] = *w.Label
		bwd[*w.Label] = *g.Label
	}
	return nil
}

func resultString(r serve.Result) string {
	switch {
	case r.Err != "":
		return fmt.Sprintf("error(%s)", r.Err)
	case r.Bool != nil:
		return fmt.Sprintf("%v", *r.Bool)
	case r.Label != nil:
		return fmt.Sprintf("label(%d)", *r.Label)
	}
	return "empty"
}

func postUpdate(base string, req serve.UpdateRequest, out *serve.UpdateResponse) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /update: %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func postBatchResults(base string, qs []serve.Query) ([]serve.Result, error) {
	body, err := json.Marshal(serve.BatchRequest{Queries: qs})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /batch: %s", resp.Status)
	}
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	if len(br.Results) != len(qs) {
		return nil, fmt.Errorf("POST /batch: sent %d got %d results", len(qs), len(br.Results))
	}
	return br.Results, nil
}
