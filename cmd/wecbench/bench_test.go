package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenDoc is a fixed synthetic BENCH document exercising every schema
// field. Its serialized form is pinned in testdata/bench_schema_v3.golden.json.
func goldenDoc() benchDoc {
	allocs, bytes := 0.25, 48.5
	return benchDoc{
		SchemaVersion: benchSchemaVersion,
		Experiment:    "golden",
		Description:   "synthetic document pinning schema v3",
		Config: benchConfig{
			Dispatch:        "fast",
			Omega:           64,
			K:               8,
			Seed:            7,
			QueriesPerPoint: 1024,
			BatchSize:       256,
			Sizes:           []int{4096},
			Families:        []string{"uniform", "churn"},
			Mixes:           []string{"conn"},
			QueryDist:       "uniform",
			GoMaxProcs:      4,
			HTTPClients:     2,
			EagerRebuilds:   true,
		},
		Points: []benchPoint{
			{
				Family: "uniform", Mix: "conn", N: 4096, M: 6144,
				Queries: 1024, QPS: 250000.5,
				LatencyNs:      benchLatency{P50: 1000, P90: 2000, P95: 2500, P99: 4000, Max: 9000},
				AllocsPerQuery: &allocs, BytesPerQuery: &bytes,
				Asym: map[string]benchAsym{
					"connected": {Queries: 1024, ReadsPerQuery: 58.5, WritesPerQ: 1, WorkPerQuery: 136.25},
				},
			},
			{
				Family: "churn", Mix: "conn", N: 8192, M: 12288,
				Queries: 1024, QPS: 180000.25,
				LatencyNs:          benchLatency{P50: 1500, P90: 2200, P95: 2600, P99: 4100, Max: 9500},
				Asym:               map[string]benchAsym{"connected": {Queries: 1024, ReadsPerQuery: 60, WritesPerQ: 1, WorkPerQuery: 140}},
				ChurnBatches:       12,
				ChurnBatchesPerSec: 84.5,
				ChurnEpochs:        9,
				RebuildStrategies: map[string]map[string]int64{
					"bicc": {"lazy": 8, "patched-insert": 1},
					"conn": {"patched-insert": 5, "patched-delete": 4},
				},
				RebuildWritesPerBatch: map[string]float64{"bicc": 0, "conn": 12.5},
			},
		},
	}
}

// TestBenchGoldenSchema pins the BENCH JSON wire format: any change to the
// document shape — fields added, removed, renamed, retyped, or reordered —
// changes the serialized form and fails here. To change the schema
// deliberately, bump benchSchemaVersion, update docs/benchmark.md, and
// regenerate the golden with UPDATE_GOLDEN=1 go test ./cmd/wecbench.
func TestBenchGoldenSchema(t *testing.T) {
	doc := goldenDoc()
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	golden := filepath.Join("testdata", "bench_schema_v3.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if string(buf) != string(want) {
		t.Errorf("BENCH schema drifted from %s.\nIf intentional: bump benchSchemaVersion, update docs/benchmark.md, regenerate with UPDATE_GOLDEN=1.\ngot:\n%s\nwant:\n%s",
			golden, buf, want)
	}
	if err := validateBenchDoc(doc); err != nil {
		t.Errorf("golden document must validate: %v", err)
	}
}

// TestBenchValidate covers the validator's rejection paths.
func TestBenchValidate(t *testing.T) {
	mutate := func(f func(*benchDoc)) benchDoc {
		d := goldenDoc()
		f(&d)
		return d
	}
	cases := []struct {
		name string
		doc  benchDoc
	}{
		{"wrong version", mutate(func(d *benchDoc) { d.SchemaVersion = 99 })},
		{"empty experiment", mutate(func(d *benchDoc) { d.Experiment = "" })},
		{"bad dispatch", mutate(func(d *benchDoc) { d.Config.Dispatch = "warp" })},
		{"bad query dist", mutate(func(d *benchDoc) { d.Config.QueryDist = "hotspot" })},
		{"no points", mutate(func(d *benchDoc) { d.Points = nil })},
		{"point count mismatch", mutate(func(d *benchDoc) { d.Points = d.Points[:1] })},
		{"zero qps", mutate(func(d *benchDoc) { d.Points[0].QPS = 0 })},
		{"non-monotone latency", mutate(func(d *benchDoc) { d.Points[0].LatencyNs.P99 = 1 })},
		{"allocs without bytes", mutate(func(d *benchDoc) { d.Points[0].BytesPerQuery = nil })},
		{"no asym", mutate(func(d *benchDoc) { d.Points[0].Asym = nil })},
		{"asym undercount", mutate(func(d *benchDoc) {
			a := d.Points[0].Asym["connected"]
			a.Queries = 1
			d.Points[0].Asym["connected"] = a
		})},
		{"churn without throughput", mutate(func(d *benchDoc) { d.Points[1].ChurnBatchesPerSec = 0 })},
		{"rebuild telemetry without epochs", mutate(func(d *benchDoc) { d.Points[1].ChurnEpochs = 0 })},
		{"churn telemetry on non-churn point", mutate(func(d *benchDoc) { d.Points[0].ChurnEpochs = 3 })},
		{"negative publish writes", mutate(func(d *benchDoc) { d.Points[1].RebuildWritesPerBatch["conn"] = -1 })},
	}
	for _, tc := range cases {
		if err := validateBenchDoc(tc.doc); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	if err := validateBenchDoc(goldenDoc()); err != nil {
		t.Errorf("unmutated golden rejected: %v", err)
	}
}

// TestBenchTinySweep runs a seconds-scale engine sweep end to end — the
// in-process version of CI's bench-smoke job: sweep, validate, write, read
// back, validate again.
func TestBenchTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep builds oracles; skipped in -short")
	}
	restore := func(p *int, v int) func() { old := *p; *p = v; return func() { *p = old } }
	defer restore(benchQueries, 128)()
	defer restore(benchBatch, 32)()
	defer restore(benchOmega, 16)()

	doc := benchEngineSweep([]int{64}, false)
	if err := validateBenchDoc(doc); err != nil {
		t.Fatalf("tiny sweep produced invalid document: %v", err)
	}
	for _, p := range doc.Points {
		if p.Family != "churn" && p.AllocsPerQuery == nil {
			t.Errorf("point %s/%s: missing alloc stats", p.Family, p.Mix)
		}
	}

	dir := t.TempDir()
	path, err := writeBenchFile(dir, doc)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back benchDoc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("emitted file does not parse: %v", err)
	}
	if err := validateBenchDoc(back); err != nil {
		t.Errorf("emitted file does not re-validate: %v", err)
	}
	if back.Experiment != "query_hot_path" || path != filepath.Join(dir, "BENCH_query_hot_path.json") {
		t.Errorf("unexpected experiment/path: %s %s", back.Experiment, path)
	}
}
