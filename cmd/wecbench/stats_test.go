package main

import (
	"testing"
	"time"
)

// TestPctNearestRank is the regression test for the percentile index bug:
// int(p*n)-1 under-reported whenever p·n was fractional (p50 of 101
// samples returned the 50th value, not the median).
func TestPctNearestRank(t *testing.T) {
	for _, tc := range []struct {
		n    int
		p    float64
		want time.Duration
	}{
		{101, 0.50, 51 * time.Millisecond}, // median of odd-length input
		{101, 0.90, 91 * time.Millisecond}, // ceil(90.9) = 91st value
		{101, 0.99, 100 * time.Millisecond},
		{101, 1.00, 101 * time.Millisecond},
		{100, 0.50, 50 * time.Millisecond}, // exact rank unchanged
		{3, 0.50, 2 * time.Millisecond},
		{1, 0.50, 1 * time.Millisecond},
		{2, 0.99, 2 * time.Millisecond},
	} {
		if got := pct(ladder(tc.n), tc.p); got != tc.want {
			t.Errorf("pct(n=%d, p=%.2f) = %v, want %v", tc.n, tc.p, got, tc.want)
		}
	}
	if got := pct(nil, 0.5); got != 0 {
		t.Errorf("pct(empty) = %v, want 0", got)
	}
}

// TestSummarize checks the shared digest: unsorted input, exact
// (unrounded) percentiles, and QPS derived from count/wall rather than the
// sample count.
func TestSummarize(t *testing.T) {
	samples := []time.Duration{
		5 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond,
		2 * time.Millisecond, 4 * time.Millisecond,
	}
	s := summarize(samples, 1000, 2*time.Second)
	if s.Count != 1000 || s.Wall != 2*time.Second {
		t.Fatalf("count/wall not carried: %+v", s)
	}
	if s.QPS != 500 {
		t.Errorf("QPS = %v, want 500", s.QPS)
	}
	if s.P50 != 3*time.Millisecond {
		t.Errorf("P50 = %v, want 3ms", s.P50)
	}
	if s.P90 != 5*time.Millisecond || s.P99 != 5*time.Millisecond || s.Max != 5*time.Millisecond {
		t.Errorf("tail percentiles wrong: %+v", s)
	}
	// 5 samples, p95: ceil(0.95*5)=5 → 5ms.
	if s.P95 != 5*time.Millisecond {
		t.Errorf("P95 = %v, want 5ms", s.P95)
	}
	// Percentiles must not be rounded (777µs survives intact).
	odd := []time.Duration{777 * time.Microsecond}
	if got := summarize(odd, 1, time.Second).P50; got != 777*time.Microsecond {
		t.Errorf("P50 rounded: %v", got)
	}
	// Empty sample set: zero percentiles, no panic.
	z := summarize(nil, 0, 0)
	if z.P50 != 0 || z.QPS != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}

func ladder(n int) []time.Duration {
	s := make([]time.Duration, n)
	for i := range s {
		s[i] = time.Duration(i+1) * time.Millisecond
	}
	return s
}
