// Command wecbench regenerates the paper's evaluation: one mode per table
// or figure of "Implicit Decomposition for Write-Efficient Connectivity
// Algorithms" (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	wecbench -exp t1conn|t1sparse|t1bicc|t1query|crossover|decomp|bclabel|localgraph|beta|alg1depth|sec6|scaling|all
//
// Beyond the paper tables, -exp serve is a load generator for the oracled
// query daemon (cmd/oracled): it drives the HTTP /batch endpoint with a
// configurable connectivity/biconnectivity query mix and reports QPS,
// latency percentiles, and the daemon's per-kind cost-model telemetry (see
// the serve* flags in serve.go), -exp multitenant is the end-to-end gate
// on the multi-graph registry: N graphs behind one daemon, verified
// isolation, shared-pool admission control (see multitenant.go), and
// -exp restart is the end-to-end gate on the durable store: a real
// oracled process SIGKILL'd under churn and recovered from its -datadir
// with reference-verified answers (see restart.go), and -exp bench is the
// recorded-perf-trajectory harness: it sweeps graph size × query mix ×
// workload family over the engine and HTTP surfaces and emits the
// schema-versioned BENCH_*.json files documented in docs/benchmark.md
// (see bench.go). None of these are part of "all" (they measure the
// serving layer, not a paper claim).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asym"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see DESIGN.md)")
	scale := flag.Int("scale", 1, "multiply instance sizes by this factor")
	flag.Parse()
	runners := map[string]func(int){
		"t1conn":      t1conn,
		"t1sparse":    t1sparse,
		"t1bicc":      t1bicc,
		"t1query":     t1query,
		"crossover":   crossover,
		"decomp":      decompStats,
		"bclabel":     bclabel,
		"localgraph":  localgraph,
		"beta":        betaSweep,
		"alg1depth":   alg1depth,
		"sec6":        sec6,
		"scaling":     scaling,
		"serve":       serveBench,
		"multitenant": multitenantBench,
		"restart":     restartBench,
		"bench":       benchRun,
	}
	if *exp == "all" {
		for _, id := range []string{"t1conn", "t1sparse", "t1bicc", "t1query",
			"crossover", "decomp", "bclabel", "localgraph", "beta", "alg1depth", "sec6", "scaling"} {
			runners[id](*scale)
		}
		return
	}
	r, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	r(*scale)
}

func header(id, claim string) {
	fmt.Printf("\n== %s — %s\n", id, claim)
}

// t1conn: Table 1, dense connectivity. Prior work Θ(ωm) vs ours O(m + ωn).
func t1conn(scale int) {
	header("T1-conn-dense", "parallel connectivity: prior Θ(ωm) work vs ours O(m+ωn)")
	fmt.Printf("%8s %9s %6s | %12s %12s | %12s %12s | %7s\n",
		"n", "m", "ω", "prior wr", "prior work", "ours wr", "ours work", "speedup")
	for _, tc := range []struct {
		n, deg, omega int
	}{
		{1 << 12 * scale, 8, 32},
		{1 << 12 * scale, 16, 32},
		{1 << 13 * scale, 8, 64},
		{1 << 13 * scale, 16, 128},
	} {
		g := graph.GNM(tc.n, tc.n*tc.deg/2, 42, true)
		base := core.New(g, core.Config{Omega: tc.omega, Seed: 7})
		base.ConnectivityBaseline()
		ours := core.New(g, core.Config{Omega: tc.omega, Seed: 7})
		ours.ConnectivityParallel(false)
		cb, co := base.Cost(), ours.Cost()
		fmt.Printf("%8d %9d %6d | %12d %12d | %12d %12d | %6.1fx\n",
			g.N(), g.M(), tc.omega, cb.Writes, cb.Work(), co.Writes, co.Work(),
			float64(cb.Work())/float64(co.Work()))
	}
}

// t1sparse: Table 1, sparse (bounded-degree) oracle: o(n) writes, O(√ω m) work.
func t1sparse(scale int) {
	header("T1-conn-sparse", "connectivity oracle: writes O(n/√ω), work O(√ω·n)")
	fmt.Printf("%8s %6s %5s | %10s %10s %12s | %10s\n",
		"n", "ω", "k", "writes", "writes/n", "work", "BFS writes")
	n := (1 << 14) * scale
	g := graph.RandomRegular(n, 3, 21)
	for _, omega := range []int{16, 64, 256, 1024} {
		s := core.New(g, core.Config{Omega: omega, Seed: 5})
		s.NewConnectivityOracle()
		c := s.Cost()
		seq := core.New(g, core.Config{Omega: omega, Seed: 5})
		seq.ConnectivitySequential(false)
		fmt.Printf("%8d %6d %5d | %10d %10.3f %12d | %10d\n",
			n, omega, s.K(), c.Writes, float64(c.Writes)/float64(n), c.Work(),
			seq.Cost().Writes)
	}
}

// t1bicc: Table 1, biconnectivity. Dense regime: BC labeling O(m+ωn) vs
// the classic Θ(ωm) output. Sparse regime: the Theorem 5.3 oracle's
// O(n/√ω) writes vs BC labeling's O(n) on bounded-degree inputs.
func t1bicc(scale int) {
	header("T1-bicc-dense", "biconnectivity: BC labeling writes O(n) vs classic Θ(m) output")
	fmt.Printf("%8s %9s %6s | %10s %12s | %10s %12s\n",
		"n", "m", "ω", "classic wr", "classic work", "BC wr", "BC work")
	for _, tc := range []struct{ n, deg, omega int }{
		{1 << 12 * scale, 8, 64},
		{1 << 12 * scale, 16, 64},
	} {
		g := graph.GNM(tc.n, tc.n*tc.deg/2, 17, true)
		s := core.New(g, core.Config{Omega: tc.omega, Seed: 3})
		s.NewBCLabeling()
		c := s.Cost()
		// Classic output: the Tarjan–Vishkin low/high pass plus an m-word
		// edge-label array.
		classicWrites := c.Writes + int64(g.M())
		classicWork := c.Work() + int64(tc.omega)*int64(g.M())
		fmt.Printf("%8d %9d %6d | %10d %12d | %10d %12d\n",
			g.N(), g.M(), tc.omega, classicWrites, classicWork,
			c.Writes, c.Work())
	}

	header("T1-bicc-sparse", "bounded-degree: oracle writes O(n/√ω) vs BC labeling O(n)")
	fmt.Printf("%8s %6s %5s | %10s %10s | %10s\n",
		"n", "ω", "k", "oracle wr", "wr/n", "BC wr")
	n := (1 << 13) * scale
	g := graph.RandomRegular(n, 3, 19)
	for _, omega := range []int{256, 1024, 4096} {
		so := core.New(g, core.Config{Omega: omega, Seed: 3})
		so.NewBiconnectivityOracle()
		bl := core.New(g, core.Config{Omega: omega, Seed: 3})
		bl.NewBCLabeling()
		fmt.Printf("%8d %6d %5d | %10d %10.3f | %10d\n",
			n, omega, so.K(), so.Cost().Writes,
			float64(so.Cost().Writes)/float64(n), bl.Cost().Writes)
	}
}

// t1query: Table 1 query costs: O(1) dense, O(√ω) conn / O(ω) bicc sparse.
func t1query(scale int) {
	header("T1-query", "query reads: BC labeling O(1); oracles O(√ω) conn, O(ω) bicc")
	n := (1 << 13) * scale
	g := graph.RandomRegular(n, 3, 31)
	fmt.Printf("%6s %5s | %12s %12s %12s\n", "ω", "k", "bc reads", "conn reads", "bicc reads")
	for _, omega := range []int{16, 64, 256} {
		s := core.New(g, core.Config{Omega: omega, Seed: 9})
		bc := s.NewBCLabeling()
		co := s.NewConnectivityOracle()
		bo := s.NewBiconnectivityOracle()
		rng := graph.NewRNG(77)
		const q = 300
		for i := 0; i < q; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			bc.SameBCC(u, v)
			co.Connected(u, v)
			bo.Biconnected(u, v)
		}
		fmt.Printf("%6d %5d | %12.1f %12.1f %12.1f\n", omega, s.K(),
			float64(bc.QueryCost().Reads)/q,
			float64(co.QueryCost().Reads)/q,
			float64(bo.QueryCost().Reads)/q)
	}
}

// crossover: Table 1 "best choice" column: dense alg wins when m ∈ Ω(√ω n),
// sparse oracle when m ∈ o(√ω n). With bounded degree the knob is ω.
func crossover(scale int) {
	header("T1-crossover", "construction work: dense O(m+ωn) vs sparse O(√ω·m); crossover near m=√ω·n")
	n := (1 << 13) * scale
	fmt.Printf("%8s %6s %8s | %14s %14s | %s\n",
		"n", "ω", "√ω·n/m", "dense work", "sparse work", "winner")
	g := graph.RandomRegular(n, 3, 51)
	m := g.M()
	for _, omega := range []int{4, 16, 64, 256, 1024, 4096} {
		dense := core.New(g, core.Config{Omega: omega, Seed: 13})
		dense.ConnectivityParallel(false)
		sparse := core.New(g, core.Config{Omega: omega, Seed: 13})
		sparse.NewConnectivityOracle()
		dw, sw := dense.Cost().Work(), sparse.Cost().Work()
		win := "dense"
		if sw < dw {
			win = "sparse-oracle"
		}
		sqrtOmega := 1
		for sqrtOmega*sqrtOmega < omega {
			sqrtOmega++
		}
		fmt.Printf("%8d %6d %8.2f | %14d %14d | %s\n",
			n, omega, float64(sqrtOmega*n)/float64(m), dw, sw, win)
	}
}

// decompStats: Figure 1 / Theorem 3.1: decomposition shape and costs.
func decompStats(scale int) {
	header("F1-decomp", "implicit k-decomposition: |S|=O(n/k), clusters ≤ k, ρ cost O(k)")
	n := (1 << 13) * scale
	g := graph.RandomRegular(n, 3, 61)
	fmt.Printf("%5s | %8s %8s %8s | %10s %10s | %10s\n",
		"k", "|S|", "n/k", "max|C|", "build wr", "build ops", "ρ reads")
	for _, k := range []int{4, 8, 16, 32} {
		s := core.New(g, core.Config{Omega: k * k, K: k, Seed: 71})
		d := s.NewDecomposition(false)
		maxC := 0
		sizes := map[int32]int{}
		for v := int32(0); int(v) < n; v++ {
			sizes[d.Center(v)]++
		}
		for _, sz := range sizes {
			if sz > maxC {
				maxC = sz
			}
		}
		rhoReads := float64(d.QueryCost().Reads) / float64(n)
		c := s.Cost()
		fmt.Printf("%5d | %8d %8d %8d | %10d %10d | %10.1f\n",
			k, d.NumCenters(), n/k, maxC, c.Writes, c.Reads+c.Ops, rhoReads)
	}
}

// bclabel: Figure 2 / Lemma 5.1: the BC labeling on the paper's own graph.
func bclabel(int) {
	header("F2-bclabel", "BC labeling of the Figure 2 graph (0-indexed)")
	g := graph.FromEdges(9, [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {3, 5}, {0, 5}, {5, 6}, {6, 0},
		{1, 4}, {5, 7}, {7, 8}, {8, 5},
	})
	s := core.New(g, core.Config{Omega: 8, Seed: 1})
	bc := s.NewBCLabeling()
	fmt.Printf("bridges:")
	for _, e := range g.Edges() {
		if bc.IsBridge(e[0], e[1]) {
			fmt.Printf(" (%d,%d)", e[0], e[1])
		}
	}
	fmt.Printf("\narticulation points:")
	for v := int32(0); v < 9; v++ {
		if bc.IsArticulation(v) {
			fmt.Printf(" %d", v)
		}
	}
	fmt.Printf("\nbiconnected components: %d\n", bc.NumBCC())
	labels := map[int32][]int32{}
	for _, e := range g.Edges() {
		l := bc.EdgeLabel(e[0], e[1])
		labels[l] = append(labels[l], e[0], e[1])
	}
	for l, vs := range labels {
		set := map[int32]bool{}
		for _, v := range vs {
			set[v] = true
		}
		fmt.Printf("  label %d vertices %d\n", l, len(set))
	}
	fmt.Printf("construction: %v\n", s.Cost())
}

// localgraph: Figure 3 / Lemma 5.4: local graph construction cost O(k²).
func localgraph(scale int) {
	header("F3-localgraph", "biconnectivity oracle query reads scale as O(k²)")
	n := (1 << 12) * scale
	g := graph.RandomRegular(n, 3, 81)
	fmt.Printf("%5s | %12s %8s\n", "k", "query reads", "k²")
	for _, k := range []int{4, 8, 16} {
		s := core.New(g, core.Config{Omega: k * k, K: k, Seed: 83})
		bo := s.NewBiconnectivityOracle()
		rng := graph.NewRNG(85)
		const q = 100
		for i := 0; i < q; i++ {
			bo.IsArticulation(int32(rng.Intn(n)))
		}
		fmt.Printf("%5d | %12.1f %8d\n", k, float64(bo.QueryCost().Reads)/q, k*k)
	}
}

// betaSweep: Theorem 4.2: writes O(n + βm) as β varies.
func betaSweep(scale int) {
	header("Thm4.2-beta", "parallel connectivity writes O(n+βm), work O(ωn+βωm+m)")
	n := (1 << 12) * scale
	g := graph.GNM(n, 16*n, 91, true)
	omega := 64
	fmt.Printf("%10s | %10s %12s | %10s\n", "β", "writes", "work", "n+βm")
	for _, beta := range []float64{1, 0.25, 0.0625, 1.0 / 64} {
		s := core.New(g, core.Config{Omega: omega, Beta: beta, Seed: 93})
		s.ConnectivityParallel(false)
		c := s.Cost()
		fmt.Printf("%10.4f | %10d %12d | %10.0f\n",
			beta, c.Writes, c.Work(), float64(n)+beta*float64(g.M()))
	}
}

// alg1depth: Lemma 3.7: parallel construction depth is polylog-in-n times
// poly(ω), far below the work.
func alg1depth(scale int) {
	header("Alg1-parallel", "parallel decomposition: depth ≪ work (Lemma 3.7)")
	fmt.Printf("%8s | %12s %12s | %10s\n", "n", "work", "depth", "work/depth")
	for _, n := range []int{1 << 11 * scale, 1 << 12 * scale, 1 << 13 * scale} {
		g := graph.RandomRegular(n, 3, 95)
		s := core.New(g, core.Config{Omega: 64, Seed: 97})
		s.NewDecomposition(true)
		fmt.Printf("%8d | %12d %12d | %10.1f\n",
			n, s.Cost().Work(), s.Depth(), float64(s.Cost().Work())/float64(s.Depth()))
	}
}

// sec6: §6: degree-bounding transform, then the oracles on the transform.
func sec6(scale int) {
	header("Sec6-unbounded", "degree bounding: star and power-law inputs")
	fmt.Printf("%10s %8s %8s | %8s %8s | %10s\n",
		"graph", "n", "maxdeg", "n'", "maxdeg'", "oracle wr")
	n := (1 << 12) * scale
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(n)},
		{"powerlaw", graph.PowerLaw(n, 4, 99)},
	} {
		b := graph.BoundDegree(tc.g, 3)
		s := core.New(b.G, core.Config{Omega: 256, Seed: 101})
		o := s.NewConnectivityOracle()
		// Sanity: all original vertices in one component for these inputs.
		ok := o.Connected(b.Rep(0), b.Rep(tc.g.N()-1))
		if !ok {
			fmt.Println("ERROR: transform broke connectivity")
		}
		fmt.Printf("%10s %8d %8d | %8d %8d | %10d\n",
			tc.name, tc.g.N(), tc.g.MaxDegree(), b.G.N(), b.G.MaxDegree(),
			s.Cost().Writes)
	}
	_ = asym.DefaultOmega
}

// scaling: the scheduling theorem of [9] — projected O(W/P + ωD) times for
// the parallel algorithms, from their measured work and depth.
func scaling(scale int) {
	header("Scaling", "projected time W/P + D (work-stealing theorem of [9])")
	n := (1 << 12) * scale
	g := graph.GNM(n, 8*n, 121, true)
	s := core.New(g, core.Config{Omega: 64, Seed: 123})
	s.ConnectivityParallel(false)
	w, d := s.Cost().Work(), s.Depth()
	fmt.Printf("parallel connectivity: n=%d m=%d work=%d depth=%d\n", g.N(), g.M(), w, d)
	fmt.Printf("%8s | %14s %10s\n", "P", "proj. time", "speedup")
	for _, p := range []int{1, 4, 16, 64, 256, 1024} {
		fmt.Printf("%8d | %14d %9.1fx\n",
			p, asym.ProjectedTime(w, d, p), asym.ProjectedSpeedup(w, d, p))
	}
}
