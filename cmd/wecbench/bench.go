package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// bench mode: the recorded performance trajectory. -exp bench sweeps graph
// size × query mix × workload family over the serving engine (in-process
// serve.Engine.Do) and the HTTP surface (/batch), and emits schema-stable
// BENCH_<experiment>.json files: QPS, batch-latency percentiles, allocs and
// bytes per query (runtime.MemStats deltas), and per-kind asymmetric
// read/write work. The sweep is pinned — fixed graph seeds, fixed query
// seeds, a fixed size ladder — so `make bench-record` regenerates the
// committed files reproducibly; the deterministic fields (graph shape,
// asymmetric costs) are bit-stable while timing fields vary by machine.
// docs/benchmark.md is the methodology page: schema glossary, how to read
// the curves, and the before/after rule for perf PRs.
//
// With -benchlegacy the engine sweep also runs under
// serve.Config.LegacyDispatch — the boxed pre-optimization dispatch path —
// producing BENCH_query_hot_path_legacy.json, the "before" of every
// before/after pair.
var (
	benchOut         = flag.String("benchout", ".", "bench mode: directory BENCH_*.json files are written to")
	benchSizes       = flag.String("benchsizes", "4096,8192,16384", "bench mode: comma-separated graph sizes (each multiplied by -scale)")
	benchQueries     = flag.Int("benchqueries", 4096, "bench mode: queries per sweep point (engine sweep)")
	benchBatch       = flag.Int("benchbatch", 256, "bench mode: queries per batch")
	benchOmega       = flag.Int("benchomega", 64, "bench mode: asymmetric write cost ω")
	benchLegacy      = flag.Bool("benchlegacy", false, "bench mode: also record the legacy-dispatch baseline sweep")
	benchHTTPQueries = flag.Int("benchhttpqueries", 4096, "bench mode: queries per sweep point (HTTP sweep)")
	benchHTTPConc    = flag.Int("benchhttpconc", 4, "bench mode: concurrent HTTP clients")
	benchDist        = flag.String("benchdist", "uniform", "bench mode: query endpoint distribution, uniform or zipf (hot-pair skew; exercises the result cache)")
)

// benchSchemaVersion is the version stamped into every BENCH file. Any
// change to the JSON shape — fields added, removed, renamed, or retyped —
// must bump it; the golden-file test (bench_test.go) enforces that.
//
// v3 added the churn family's update-throughput telemetry (batches/sec,
// published epochs, per-oracle rebuild strategies and publish-path writes
// per epoch) and pinned the legacy sweep to serve.Config.EagerRebuilds —
// the pre-deferral baseline that rebuilds bicc on every publish.
const benchSchemaVersion = 3

// The pinned sweep axes. Families shape the workload: uniform is a random
// 3-regular graph, powerlaw a degree-bounded preferential-attachment graph
// (the §6 transform), churn the uniform graph with concurrent edge updates
// staged during measurement. Mixes pick the query families: conn is the
// cheap O(√ω)-read connectivity family, bicc the expensive O(ω)-read
// biconnectivity family, mixed a 50/50 draw.
var (
	benchFamilies = []string{"uniform", "powerlaw", "churn"}
	benchMixes    = []string{"conn", "bicc", "mixed"}
)

// Fixed seeds: graph generation and query streams are deterministic per
// sweep point, so reruns replay identical work.
const (
	benchGraphSeedUniform  = 71
	benchGraphSeedPowerLaw = 99
	benchEngineSeed        = 7
	benchQuerySeedBase     = 211
	benchChurnSeedBase     = 977
)

// benchDoc is one BENCH_<experiment>.json file.
type benchDoc struct {
	SchemaVersion int          `json:"schema_version"`
	Experiment    string       `json:"experiment"`
	Description   string       `json:"description"`
	Config        benchConfig  `json:"config"`
	Points        []benchPoint `json:"points"`
}

// benchConfig records the sweep spec a document was produced under — the
// reproducibility contract of make bench-record.
type benchConfig struct {
	// Dispatch names the measured path: "fast" (the zero-alloc
	// FastAnswerer path), "legacy" (boxed pre-optimization dispatch), or
	// "http" (the full HTTP /batch surface over the fast path).
	Dispatch        string   `json:"dispatch"`
	Omega           int      `json:"omega"`
	K               int      `json:"k"`
	Seed            uint64   `json:"seed"`
	QueriesPerPoint int      `json:"queries_per_point"`
	BatchSize       int      `json:"batch_size"`
	Sizes           []int    `json:"sizes"`
	Families        []string `json:"families"`
	Mixes           []string `json:"mixes"`
	// QueryDist names the endpoint distribution of the query streams:
	// "uniform" (independent uniform endpoints, the committed-file default)
	// or "zipf" (endpoints drawn from a pregenerated hot-pair table under a
	// Zipf-like rank weighting — the cache-effectiveness workload).
	QueryDist string `json:"query_dist"`
	// GoMaxProcs is the worker parallelism the timing fields were measured
	// under (machine-dependent, recorded for interpretation).
	GoMaxProcs int `json:"gomaxprocs"`
	// HTTPClients is the concurrent-client count of the HTTP sweep (0 for
	// engine sweeps).
	HTTPClients int `json:"http_clients,omitempty"`
	// EagerRebuilds records serve.Config.EagerRebuilds: true pins
	// deferrable oracles (bicc) to a publish-path rebuild every epoch —
	// the pre-deferral baseline the legacy sweep measures. The fast sweep
	// leaves it false, so churn points show the lazy path's publish cost.
	EagerRebuilds bool `json:"eager_rebuilds,omitempty"`
}

// benchPoint is one sweep point: one (size, family, mix) cell's measured
// curve sample.
type benchPoint struct {
	Family  string `json:"family"`
	Mix     string `json:"mix"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	Queries int64  `json:"queries"`
	// QPS and LatencyNs are wall-clock (machine-dependent).
	QPS       float64      `json:"qps"`
	LatencyNs benchLatency `json:"latency_ns"`
	// AllocsPerQuery/BytesPerQuery are runtime.MemStats deltas across the
	// measurement window divided by the query count. Omitted for the churn
	// family, where concurrent rebuild allocations would be misattributed
	// to the query path.
	AllocsPerQuery *float64 `json:"allocs_per_query,omitempty"`
	BytesPerQuery  *float64 `json:"bytes_per_query,omitempty"`
	// Asym is the deterministic cost-model telemetry per served kind:
	// asymmetric reads/writes/work per query (Stats deltas).
	Asym map[string]benchAsym `json:"asym"`
	// ChurnBatches counts update batches staged during a churn point's
	// measurement window (0 elsewhere); ChurnBatchesPerSec is that count
	// over the window's wall clock — the staged update throughput.
	ChurnBatches       int64   `json:"churn_batches,omitempty"`
	ChurnBatchesPerSec float64 `json:"churn_batches_per_sec,omitempty"`
	// ChurnEpochs counts the epochs the rebuild loop published for those
	// batches (coalescing makes it <= ChurnBatches); RebuildStrategies is
	// the per-oracle strategy histogram over those publishes (oracle ->
	// strategy -> count) and RebuildWritesPerBatch each oracle's mean
	// publish-path asymmetric writes per published epoch. These are the
	// before/after axis of the lazy-bicc story: the eager baseline pays a
	// full bicc build every publish, the lazy path writes nothing there.
	ChurnEpochs           int64                       `json:"churn_epochs,omitempty"`
	RebuildStrategies     map[string]map[string]int64 `json:"rebuild_strategies,omitempty"`
	RebuildWritesPerBatch map[string]float64          `json:"rebuild_writes_per_batch,omitempty"`
}

// benchLatency is the nearest-rank batch-latency digest in nanoseconds.
type benchLatency struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// benchAsym is per-query asymmetric cost for one kind.
type benchAsym struct {
	Queries       int64   `json:"queries"`
	ReadsPerQuery float64 `json:"reads_per_query"`
	WritesPerQ    float64 `json:"writes_per_query"`
	WorkPerQuery  float64 `json:"work_per_query"`
}

// benchRun is the wecbench runner for -exp bench.
func benchRun(scale int) {
	header("Bench", "recorded perf trajectory: engine + HTTP sweeps -> BENCH_*.json")
	sizes, err := parseBenchSizes(*benchSizes, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
	switch *benchDist {
	case "uniform", "zipf":
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown -benchdist %q (want uniform or zipf)\n", *benchDist)
		os.Exit(2)
	}

	doc := benchEngineSweep(sizes, false)
	emitBench(doc)
	if *benchLegacy {
		legacy := benchEngineSweep(sizes, true)
		emitBench(legacy)
		benchCompare(legacy, doc)
	}
	emitBench(benchHTTPSweep(sizes))
}

// emitBench validates and writes one document, exiting nonzero on either
// failure — CI treats a malformed BENCH file as a broken build.
func emitBench(doc benchDoc) {
	if err := validateBenchDoc(doc); err != nil {
		fmt.Fprintf(os.Stderr, "bench: FAILED — invalid %s document: %v\n", doc.Experiment, err)
		os.Exit(1)
	}
	path, err := writeBenchFile(*benchOut, doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: FAILED — %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d points)\n", path, len(doc.Points))
}

// benchCompare prints the headline before/after deltas between the legacy
// and fast engine sweeps (matched points only).
func benchCompare(legacy, fast benchDoc) {
	type key struct {
		family, mix string
		n           int
	}
	idx := map[key]benchPoint{}
	for _, p := range legacy.Points {
		idx[key{p.Family, p.Mix, p.N}] = p
	}
	fmt.Printf("\n%-9s %-6s %8s | %13s %13s | %10s %10s\n",
		"family", "mix", "n", "allocs/q", "bytes/q", "p95", "QPS")
	for _, p := range fast.Points {
		lp, ok := idx[key{p.Family, p.Mix, p.N}]
		if !ok {
			continue
		}
		allocs, bytes := "-", "-"
		if p.AllocsPerQuery != nil && lp.AllocsPerQuery != nil {
			allocs = fmt.Sprintf("%.1f→%.1f", *lp.AllocsPerQuery, *p.AllocsPerQuery)
			bytes = fmt.Sprintf("%.0f→%.0f", *lp.BytesPerQuery, *p.BytesPerQuery)
		}
		fmt.Printf("%-9s %-6s %8d | %13s %13s | %9.2fx %9.2fx\n",
			p.Family, p.Mix, p.N, allocs, bytes,
			float64(lp.LatencyNs.P95)/float64(p.LatencyNs.P95),
			p.QPS/lp.QPS)
	}
	// The churn family's publish-cost story: total publish-path writes per
	// published epoch, eager baseline vs the lazy path. The bicc column is
	// where deferral shows — the baseline pays a full build every epoch.
	printed := false
	for _, p := range fast.Points {
		if p.Family != "churn" || len(p.RebuildWritesPerBatch) == 0 {
			continue
		}
		lp, ok := idx[key{p.Family, p.Mix, p.N}]
		if !ok || len(lp.RebuildWritesPerBatch) == 0 {
			continue
		}
		if !printed {
			fmt.Printf("\n%-9s %-6s %8s | %16s %16s | %10s\n",
				"family", "mix", "n", "bicc wr/epoch", "total wr/epoch", "cost drop")
			printed = true
		}
		var ltot, ftot float64
		for _, w := range lp.RebuildWritesPerBatch {
			ltot += w
		}
		for _, w := range p.RebuildWritesPerBatch {
			ftot += w
		}
		drop := "inf"
		if ftot > 0 {
			drop = fmt.Sprintf("%.1fx", ltot/ftot)
		}
		fmt.Printf("%-9s %-6s %8d | %7.0f→%-8.0f %7.0f→%-8.0f | %10s\n",
			p.Family, p.Mix, p.N,
			lp.RebuildWritesPerBatch["bicc"], p.RebuildWritesPerBatch["bicc"],
			ltot, ftot, drop)
	}
}

// parseBenchSizes parses the -benchsizes ladder, multiplying by scale.
func parseBenchSizes(spec string, scale int) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -benchsizes entry %q", f)
		}
		sizes = append(sizes, n*scale)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("-benchsizes is empty")
	}
	return sizes, nil
}

// benchGraph builds the pinned workload graph of one (family, size) cell.
func benchGraph(family string, n int) *graph.Graph {
	switch family {
	case "powerlaw":
		return graph.BoundDegree(graph.PowerLaw(n, 4, benchGraphSeedPowerLaw), 3).G
	default: // uniform, churn
		return graph.RandomRegular(n, 3, benchGraphSeedUniform)
	}
}

// mixFrac maps a mix name to its connectivity-family fraction.
func mixFrac(mix string) float64 {
	switch mix {
	case "conn":
		return 1.0
	case "bicc":
		return 0.0
	default:
		return 0.5
	}
}

// benchZipfSeedMix decorrelates the zipf hot-pair table's rng from the
// query stream's kind draws (which stay on the point seed), so switching
// -benchdist never perturbs the kind sequence.
const benchZipfSeedMix = 0x51bf

// benchZipfExponent is the rank-weight exponent: pair at rank r (1-based)
// is drawn with weight 1/r^1.2 — a mild Zipf skew where the top handful of
// pairs dominate but the tail still gets traffic.
const benchZipfExponent = 1.2

// benchZipfPairs draws query endpoints from a pregenerated table of n
// (u, v) pairs under a Zipf-like rank weighting, via inverse-CDF lookup on
// the prefix-summed weights. Hot pairs repeat across batches, so the
// serving layer's result cache (and bicc's cluster cache) answer most of
// the stream — the workload -benchdist=zipf exists to measure.
type benchZipfPairs struct {
	pairs  [][2]int32
	prefix []float64
	rng    *graph.RNG
}

func newBenchZipfPairs(seed uint64, n int) *benchZipfPairs {
	rng := graph.NewRNG(seed)
	z := &benchZipfPairs{
		pairs:  make([][2]int32, n),
		prefix: make([]float64, n),
		rng:    rng,
	}
	sum := 0.0
	for i := range z.pairs {
		z.pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		sum += 1 / math.Pow(float64(i+1), benchZipfExponent)
		z.prefix[i] = sum
	}
	return z
}

func (z *benchZipfPairs) pick() (u, v int32) {
	x := z.rng.Float64() * z.prefix[len(z.prefix)-1]
	i := sort.SearchFloat64s(z.prefix, x)
	if i >= len(z.pairs) {
		i = len(z.pairs) - 1
	}
	return z.pairs[i][0], z.pairs[i][1]
}

// benchBatches pregenerates the whole query stream of one point, so no
// query-generation allocations land inside the measurement window. dist
// selects the endpoint distribution ("uniform" or "zipf"); the uniform
// path's rng call sequence is unchanged from schema v1, so uniform streams
// replay byte-identically across the version bump.
func benchBatches(seed uint64, n, total, batch int, frac float64, dist string) [][]serve.Query {
	rng := graph.NewRNG(seed)
	var zipf *benchZipfPairs
	if dist == "zipf" {
		zipf = newBenchZipfPairs(seed^benchZipfSeedMix, n)
	}
	out := make([][]serve.Query, 0, (total+batch-1)/batch)
	for done := 0; done < total; done += batch {
		b := batch
		if total-done < b {
			b = total - done
		}
		qs := make([]serve.Query, b)
		for i := range qs {
			var kind serve.Kind
			if rng.Float64() < frac {
				kind = connKinds[rng.Intn(len(connKinds))]
			} else {
				kind = biccKinds[rng.Intn(len(biccKinds))]
			}
			var u, v int32
			if zipf != nil {
				u, v = zipf.pick()
			} else {
				u, v = int32(rng.Intn(n)), int32(rng.Intn(n))
			}
			qs[i] = serve.Query{Kind: kind, U: u, V: v}
		}
		out = append(out, qs)
	}
	return out
}

// benchEngineSweep measures the in-process serving hot path (Engine.Do)
// across the full size × family × mix grid.
func benchEngineSweep(sizes []int, legacy bool) benchDoc {
	dispatch := "fast"
	experiment := "query_hot_path"
	desc := "in-process serve.Engine.Do over the zero-alloc FastAnswerer dispatch path with deferred (lazy) bicc rebuilds"
	if legacy {
		dispatch = "legacy"
		experiment = "query_hot_path_legacy"
		desc = "in-process serve.Engine.Do over the boxed legacy dispatch path with eager per-epoch rebuilds (pre-optimization baseline)"
	}
	doc := benchDoc{
		SchemaVersion: benchSchemaVersion,
		Experiment:    experiment,
		Description:   desc,
		Config: benchConfig{
			Dispatch:        dispatch,
			Omega:           *benchOmega,
			Seed:            benchEngineSeed,
			QueriesPerPoint: *benchQueries,
			BatchSize:       *benchBatch,
			Sizes:           sizes,
			Families:        benchFamilies,
			Mixes:           benchMixes,
			QueryDist:       *benchDist,
			GoMaxProcs:      runtime.GOMAXPROCS(0),
			EagerRebuilds:   legacy,
		},
	}
	fmt.Printf("\nengine sweep (%s dispatch): %d sizes × %d families × %d mixes, %d queries/point, ω=%d\n",
		dispatch, len(sizes), len(benchFamilies), len(benchMixes), *benchQueries, *benchOmega)
	fmt.Printf("%-9s %-6s %8s %8s | %10s %10s %10s | %9s %10s\n",
		"family", "mix", "n", "m", "QPS", "p50", "p95", "allocs/q", "bytes/q")
	for si, n := range sizes {
		for fi, family := range benchFamilies {
			g := benchGraph(family, n)
			cfg := serve.Config{
				Omega:          *benchOmega,
				Seed:           benchEngineSeed,
				LegacyDispatch: legacy,
				EagerRebuilds:  legacy,
			}
			var accum *benchRebuildAccum
			if family == "churn" {
				accum = &benchRebuildAccum{}
				cfg.OnRebuild = accum.add
			}
			eng := serve.New(g, cfg)
			doc.Config.K = eng.K()
			for mi, mix := range benchMixes {
				seed := uint64(benchQuerySeedBase + 97*si + 13*fi + mi)
				p := benchMeasurePoint(eng, family, mix, seed, accum)
				doc.Points = append(doc.Points, p)
				allocs, bytes := "-", "-"
				if p.AllocsPerQuery != nil {
					allocs = fmt.Sprintf("%.2f", *p.AllocsPerQuery)
					bytes = fmt.Sprintf("%.0f", *p.BytesPerQuery)
				}
				fmt.Printf("%-9s %-6s %8d %8d | %10.0f %10v %10v | %9s %10s\n",
					family, mix, p.N, p.M, p.QPS,
					time.Duration(p.LatencyNs.P50).Round(time.Microsecond),
					time.Duration(p.LatencyNs.P95).Round(time.Microsecond),
					allocs, bytes)
			}
			eng.Close()
		}
	}
	return doc
}

// benchMeasurePoint runs one point's pregenerated query stream against the
// engine and digests the window: latency percentiles and QPS from the batch
// loop, allocs/bytes per query from MemStats deltas (skipped under churn),
// per-kind asymmetric costs from Stats deltas, and — for the churn family —
// the update-throughput digest from the OnRebuild accumulator. A point with
// query errors aborts the run — the harness doubles as a correctness gate.
func benchMeasurePoint(eng *serve.Engine, family, mix string, seed uint64, accum *benchRebuildAccum) benchPoint {
	n := eng.Graph().N()
	total := *benchQueries
	batches := benchBatches(seed, n, total, *benchBatch, mixFrac(mix), *benchDist)
	churn := family == "churn"

	before := eng.Stats()
	lat := make([]time.Duration, 0, len(batches))
	var ch *benchChurner
	if churn {
		accum.take() // drop records from a previous point's tail
		ch = startBenchChurner(eng, n, seed+benchChurnSeedBase)
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, qs := range batches {
		t0 := time.Now()
		eng.Do(qs)
		lat = append(lat, time.Since(t0))
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if ch != nil {
		ch.stopAndWait()
		// Drain staged-but-unpublished batches so the rebuild telemetry
		// below accounts every batch the window staged.
		deadline := time.Now().Add(5 * time.Second)
		for eng.Stats().PendingUpdates > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	after := eng.Stats()

	p := benchPoint{
		Family:  family,
		Mix:     mix,
		N:       before.GraphN,
		M:       before.GraphM,
		Queries: int64(total),
		Asym:    map[string]benchAsym{},
	}
	sum := summarize(lat, int64(total), wall)
	p.QPS = sum.QPS
	p.LatencyNs = benchLatency{
		P50: int64(sum.P50), P90: int64(sum.P90), P95: int64(sum.P95),
		P99: int64(sum.P99), Max: int64(sum.Max),
	}
	if !churn {
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(total)
		bytes := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(total)
		p.AllocsPerQuery = &allocs
		p.BytesPerQuery = &bytes
	} else {
		p.ChurnBatches = ch.batches.Load()
		p.ChurnBatchesPerSec = float64(p.ChurnBatches) / wall.Seconds()
		recs := accum.take()
		p.ChurnEpochs = int64(len(recs))
		if len(recs) > 0 {
			p.RebuildStrategies = map[string]map[string]int64{}
			writes := map[string]int64{}
			for _, rec := range recs {
				for o, s := range rec.Strategies {
					if p.RebuildStrategies[o] == nil {
						p.RebuildStrategies[o] = map[string]int64{}
					}
					p.RebuildStrategies[o][s]++
				}
				for o, c := range rec.OracleCosts {
					writes[o] += c.Writes
				}
			}
			p.RebuildWritesPerBatch = map[string]float64{}
			for o, w := range writes {
				p.RebuildWritesPerBatch[o] = float64(w) / float64(len(recs))
			}
		}
	}
	var errs int64
	for kind, a := range after.Queries {
		b := before.Queries[kind]
		count := a.Count - b.Count
		errs += a.Errors - b.Errors
		if count == 0 {
			continue
		}
		p.Asym[kind] = benchAsym{
			Queries:       count,
			ReadsPerQuery: float64(a.Cost.Reads-b.Cost.Reads) / float64(count),
			WritesPerQ:    float64(a.Cost.Writes-b.Cost.Writes) / float64(count),
			WorkPerQuery:  float64(a.Cost.Work()-b.Cost.Work()) / float64(count),
		}
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "bench: FAILED — %d query errors at family=%s mix=%s n=%d\n",
			errs, family, mix, n)
		os.Exit(1)
	}
	return p
}

// benchRebuildAccum collects the publish-path rebuild records of one churn
// point's window via serve.Config.OnRebuild (called from the engine's
// rebuild goroutine, hence the lock).
type benchRebuildAccum struct {
	mu   sync.Mutex
	recs []serve.RebuildRecord
}

func (a *benchRebuildAccum) add(rec serve.RebuildRecord) {
	a.mu.Lock()
	a.recs = append(a.recs, rec)
	a.mu.Unlock()
}

// take returns the accumulated records and resets the accumulator.
func (a *benchRebuildAccum) take() []serve.RebuildRecord {
	a.mu.Lock()
	recs := a.recs
	a.recs = nil
	a.mu.Unlock()
	return recs
}

// benchChurner stages small edge-update batches against the engine while a
// churn point measures, alternating an add batch with the removal of the
// same edges so the graph's size stays near its seed.
type benchChurner struct {
	stop    chan struct{}
	done    chan struct{}
	batches atomic.Int64
}

func startBenchChurner(eng *serve.Engine, n int, seed uint64) *benchChurner {
	c := &benchChurner{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		rng := graph.NewRNG(seed)
		var pending [][2]int32
		for {
			select {
			case <-c.stop:
				return
			default:
			}
			if pending == nil {
				edges := make([][2]int32, 8)
				for i := range edges {
					edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
				}
				if _, err := eng.Update(serve.Update{Add: edges}, false); err == nil {
					pending = edges
				}
			} else {
				if _, err := eng.Update(serve.Update{Remove: pending}, false); err == nil {
					pending = nil
				}
			}
			c.batches.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	return c
}

func (c *benchChurner) stopAndWait() {
	close(c.stop)
	<-c.done
}

// benchHTTPSweep measures the full HTTP surface: an in-process oracled
// server per size over the uniform family, driven with concurrent /batch
// clients on the mixed query mix.
func benchHTTPSweep(sizes []int) benchDoc {
	doc := benchDoc{
		SchemaVersion: benchSchemaVersion,
		Experiment:    "serve_http",
		Description:   "HTTP /batch surface: in-process oracled server, concurrent clients, mixed query mix",
		Config: benchConfig{
			Dispatch:        "http",
			Omega:           *benchOmega,
			Seed:            benchEngineSeed,
			QueriesPerPoint: *benchHTTPQueries,
			BatchSize:       *benchBatch,
			Sizes:           sizes,
			Families:        []string{"uniform"},
			Mixes:           []string{"mixed"},
			QueryDist:       *benchDist,
			GoMaxProcs:      runtime.GOMAXPROCS(0),
			HTTPClients:     *benchHTTPConc,
		},
	}
	fmt.Printf("\nHTTP sweep: %d sizes, %d queries/point, %d clients\n",
		len(sizes), *benchHTTPQueries, *benchHTTPConc)
	fmt.Printf("%8s %8s | %10s %10s %10s\n", "n", "m", "QPS", "p50", "p95")
	for _, n := range sizes {
		g := benchGraph("uniform", n)
		eng := serve.New(g, serve.Config{Omega: *benchOmega, Seed: benchEngineSeed})
		doc.Config.K = eng.K()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: listen: %v\n", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: serve.NewServer(eng)}
		go srv.Serve(ln)
		base := "http://" + ln.Addr().String()

		before := eng.Stats()
		total := int64(*benchHTTPQueries)
		var sent, answered atomic.Int64
		var failed atomic.Bool
		var mu sync.Mutex
		var lat []time.Duration
		var wg sync.WaitGroup
		start := time.Now()
		for cl := 0; cl < *benchHTTPConc; cl++ {
			wg.Add(1)
			go func(client int) {
				defer wg.Done()
				rng := graph.NewRNG(uint64(benchQuerySeedBase + 1000 + client))
				var local []time.Duration
				defer func() {
					mu.Lock()
					lat = append(lat, local...)
					mu.Unlock()
				}()
				for {
					remaining := total - sent.Add(int64(*benchBatch))
					batch := *benchBatch
					if remaining < 0 {
						batch += int(remaining)
						if batch <= 0 {
							break
						}
					}
					qs := benchBatches(rng.Next(), g.N(), batch, batch, 0.5, *benchDist)[0]
					t0 := time.Now()
					if err := postBatch(base, qs); err != nil {
						fmt.Fprintf(os.Stderr, "bench: batch failed: %v\n", err)
						failed.Store(true)
						return
					}
					local = append(local, time.Since(t0))
					answered.Add(int64(batch))
					if remaining <= 0 {
						break
					}
				}
			}(cl)
		}
		wg.Wait()
		wall := time.Since(start)
		srv.Close()
		if failed.Load() || answered.Load() < total {
			fmt.Fprintf(os.Stderr, "bench: FAILED — only %d/%d HTTP queries answered at n=%d\n",
				answered.Load(), total, n)
			os.Exit(1)
		}
		after := eng.Stats()
		p := benchPoint{
			Family:  "uniform",
			Mix:     "mixed",
			N:       before.GraphN,
			M:       before.GraphM,
			Queries: total,
			Asym:    map[string]benchAsym{},
		}
		sum := summarize(lat, total, wall)
		p.QPS = sum.QPS
		p.LatencyNs = benchLatency{
			P50: int64(sum.P50), P90: int64(sum.P90), P95: int64(sum.P95),
			P99: int64(sum.P99), Max: int64(sum.Max),
		}
		for kind, a := range after.Queries {
			b := before.Queries[kind]
			count := a.Count - b.Count
			if count == 0 {
				continue
			}
			p.Asym[kind] = benchAsym{
				Queries:       count,
				ReadsPerQuery: float64(a.Cost.Reads-b.Cost.Reads) / float64(count),
				WritesPerQ:    float64(a.Cost.Writes-b.Cost.Writes) / float64(count),
				WorkPerQuery:  float64(a.Cost.Work()-b.Cost.Work()) / float64(count),
			}
		}
		doc.Points = append(doc.Points, p)
		fmt.Printf("%8d %8d | %10.0f %10v %10v\n",
			p.N, p.M, p.QPS,
			time.Duration(p.LatencyNs.P50).Round(time.Microsecond),
			time.Duration(p.LatencyNs.P95).Round(time.Microsecond))
	}
	return doc
}

// validateBenchDoc checks the schema invariants every emitted document must
// satisfy; CI's bench-smoke job runs the emitted files back through this.
func validateBenchDoc(d benchDoc) error {
	if d.SchemaVersion != benchSchemaVersion {
		return fmt.Errorf("schema_version %d, want %d", d.SchemaVersion, benchSchemaVersion)
	}
	if d.Experiment == "" {
		return fmt.Errorf("empty experiment name")
	}
	switch d.Config.Dispatch {
	case "fast", "legacy", "http":
	default:
		return fmt.Errorf("unknown dispatch %q", d.Config.Dispatch)
	}
	switch d.Config.QueryDist {
	case "uniform", "zipf":
	default:
		return fmt.Errorf("unknown query_dist %q", d.Config.QueryDist)
	}
	if d.Config.Omega <= 0 || d.Config.K <= 0 || len(d.Config.Sizes) == 0 {
		return fmt.Errorf("incomplete config: %+v", d.Config)
	}
	if len(d.Points) == 0 {
		return fmt.Errorf("no points")
	}
	want := len(d.Config.Sizes) * len(d.Config.Families) * len(d.Config.Mixes)
	if len(d.Points) != want {
		return fmt.Errorf("%d points, want %d (sizes × families × mixes)", len(d.Points), want)
	}
	for i, p := range d.Points {
		if p.N <= 0 || p.M < 0 || p.Queries <= 0 || p.QPS <= 0 {
			return fmt.Errorf("point %d: non-positive shape/throughput: %+v", i, p)
		}
		l := p.LatencyNs
		if l.P50 < 0 || l.P50 > l.P90 || l.P90 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max {
			return fmt.Errorf("point %d: latency percentiles not monotone: %+v", i, l)
		}
		if (p.AllocsPerQuery == nil) != (p.BytesPerQuery == nil) {
			return fmt.Errorf("point %d: allocs/bytes must be set together", i)
		}
		if p.AllocsPerQuery != nil && (*p.AllocsPerQuery < 0 || *p.BytesPerQuery < 0) {
			return fmt.Errorf("point %d: negative alloc stats", i)
		}
		if p.Family == "churn" {
			if p.ChurnBatches <= 0 || p.ChurnBatchesPerSec <= 0 {
				return fmt.Errorf("point %d: churn point without update throughput (batches=%d, batches/sec=%g)",
					i, p.ChurnBatches, p.ChurnBatchesPerSec)
			}
			if (p.ChurnEpochs == 0) != (len(p.RebuildStrategies) == 0) ||
				(p.ChurnEpochs == 0) != (len(p.RebuildWritesPerBatch) == 0) {
				return fmt.Errorf("point %d: rebuild telemetry inconsistent with %d published epochs", i, p.ChurnEpochs)
			}
			for o, w := range p.RebuildWritesPerBatch {
				if w < 0 {
					return fmt.Errorf("point %d: negative publish writes for oracle %s", i, o)
				}
			}
		} else if p.ChurnBatches != 0 || p.ChurnBatchesPerSec != 0 || p.ChurnEpochs != 0 ||
			len(p.RebuildStrategies) != 0 || len(p.RebuildWritesPerBatch) != 0 {
			return fmt.Errorf("point %d: churn telemetry on family %q", i, p.Family)
		}
		if len(p.Asym) == 0 {
			return fmt.Errorf("point %d: no asym telemetry", i)
		}
		var covered int64
		for kind, a := range p.Asym {
			if a.Queries <= 0 || a.ReadsPerQuery < 0 || a.WorkPerQuery < 0 {
				return fmt.Errorf("point %d kind %s: bad asym entry %+v", i, kind, a)
			}
			covered += a.Queries
		}
		if covered != p.Queries {
			return fmt.Errorf("point %d: asym covers %d of %d queries", i, covered, p.Queries)
		}
	}
	return nil
}

// writeBenchFile marshals the document to <dir>/BENCH_<experiment>.json
// (indented, trailing newline — committed files must diff cleanly).
func writeBenchFile(dir string, d benchDoc) (string, error) {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	buf = append(buf, '\n')
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+d.Experiment+".json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
