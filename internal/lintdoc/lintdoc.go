// Package lintdoc is a dependency-free godoc-coverage linter in the spirit
// of revive's "exported" rule: every exported top-level identifier — and
// every exported method on an exported type — must carry a doc comment.
// It runs from `go test` (packages that want the guarantee add a one-line
// test calling Check on their own directory), so the repository's no-new-
// dependencies constraint holds and the check rides the existing CI test
// job instead of needing a separate linter install.
//
// Scope follows the revive rule: top-level funcs, types, consts, vars, and
// methods. Struct fields and interface members are not required to be
// documented (document them where it helps, but the lint does not force
// it). A const/var block is covered by a single doc comment on the block.
package lintdoc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"unicode"
)

// A Finding is one exported identifier lacking a doc comment: its position
// and a "kind Name" description ("func Foo", "method T.M", "type Bar").
type Finding struct {
	Pos  token.Pos
	What string
}

// Check parses the non-test Go files of dir and returns one finding per
// exported identifier lacking a doc comment, as "file:line: name" strings
// sorted by position. An empty slice means full coverage.
func Check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, fd := range FileFindings(f) {
				p := fset.Position(fd.Pos)
				out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fd.What))
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// FileFindings applies the godoc-coverage rule to one parsed file (the
// entry point the weclint docstyle analyzer shares with Check; the file
// must have been parsed with comments).
func FileFindings(f *ast.File) []Finding {
	var out []Finding
	checkFile(f, func(pos token.Pos, what string) {
		out = append(out, Finding{Pos: pos, What: what})
	})
	return out
}

func checkFile(f *ast.File, add func(token.Pos, string)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || hasDoc(d.Doc) {
				continue
			}
			if d.Recv != nil {
				recv := receiverName(d.Recv)
				if !exportedName(recv) {
					continue // method on an unexported type: not public API
				}
				add(d.Pos(), fmt.Sprintf("method %s.%s", recv, d.Name.Name))
				continue
			}
			add(d.Pos(), "func "+d.Name.Name)
		case *ast.GenDecl:
			checkGenDecl(d, add)
		}
	}
}

func checkGenDecl(d *ast.GenDecl, add func(token.Pos, string)) {
	blockDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			// A type needs its own comment (or the decl's, for the common
			// single-spec form).
			if s.Name.IsExported() && !blockDoc && !hasDoc(s.Doc) {
				add(s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			// One comment on a const/var block covers every spec in it.
			if blockDoc || hasDoc(s.Doc) || hasDoc(s.Comment) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					add(name.Pos(), kindWord(d.Tok)+" "+name.Name)
				}
			}
		}
	}
}

// receiverName extracts the receiver's base type name (T from T, *T, or
// T[...] generic forms).
func receiverName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func exportedName(name string) bool {
	if name == "" {
		return false
	}
	return unicode.IsUpper([]rune(name)[0])
}

func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

func kindWord(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return tok.String()
}
