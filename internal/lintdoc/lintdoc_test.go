package lintdoc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func checkSrc(t *testing.T, src string) []string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCheckFindsUndocumentedExports(t *testing.T) {
	got := checkSrc(t, `package x

func Documented() {} // no doc comment above, inline doesn't count

type T struct{ F int }

func (t T) M() {}

func (t *T) Documented2() {}

const C = 1

var V = 2

type hidden struct{}

func (h hidden) Exported() {} // method on unexported type: skipped

func private() {}
`)
	wantNames := []string{"func Documented", "type T", "method T.M", "method T.Documented2", "const C", "var V"}
	if len(got) != len(wantNames) {
		t.Fatalf("got %d findings %v, want %d", len(got), got, len(wantNames))
	}
	for _, w := range wantNames {
		found := false
		for _, g := range got {
			if strings.HasSuffix(g, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding for %q in %v", w, got)
		}
	}
}

func TestCheckAcceptsDocumentedCode(t *testing.T) {
	got := checkSrc(t, `// Package x is documented.
package x

// Documented does nothing.
func Documented() {}

// T is a type.
type T struct{ F int }

// M is a method.
func (t T) M() {}

// Grouped constants share one block comment.
const (
	A = 1
	B = 2
)

var v = 3 // unexported: no requirement
`)
	if len(got) != 0 {
		t.Errorf("documented code flagged: %v", got)
	}
}

func TestCheckValueSpecLineComment(t *testing.T) {
	got := checkSrc(t, `package x

var (
	// A has a per-spec doc.
	A = 1
	B = 2 // B has a line comment.
)
`)
	if len(got) != 0 {
		t.Errorf("per-spec comments not honored: %v", got)
	}
}
