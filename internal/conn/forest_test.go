package conn

import (
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// checkSpanningForest verifies the §4.3 forest enumeration: every emitted
// pair is a real edge, the set is acyclic, and it spans every component.
func checkSpanningForest(t *testing.T, g *graph.Graph, k int, seed uint64) {
	t.Helper()
	m, c := env(k * k)
	o := BuildOracle(c, graph.View{G: g, M: m}, k, seed)
	qm := asym.NewMeter(k * k)
	uf := unionfind.NewRef(g.N())
	count := 0
	before := qm.Snapshot()
	o.VisitSpanningForest(qm, nil, func(u, v int32) {
		count++
		// Real edge?
		found := false
		for _, w := range g.Adj(int(u)) {
			if w == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("forest edge (%d,%d) not in graph", u, v)
		}
		if !uf.Union(u, v) {
			t.Fatalf("forest edge (%d,%d) creates a cycle", u, v)
		}
	})
	if d := qm.Snapshot().Sub(before); d.Writes != 0 {
		t.Fatalf("forest enumeration wrote %d words", d.Writes)
	}
	// Count components of g.
	ref := unionfind.NewRef(g.N())
	for _, e := range g.Edges() {
		ref.Union(e[0], e[1])
	}
	comps := map[int32]bool{}
	for v := 0; v < g.N(); v++ {
		comps[ref.Find(int32(v))] = true
	}
	want := g.N() - len(comps)
	if count != want {
		t.Fatalf("forest has %d edges, want %d", count, want)
	}
	// Spanning: the forest connects exactly what g connects.
	for v := 0; v < g.N(); v++ {
		if uf.Find(int32(v)) != uf.Find(ref.Find(int32(v))) {
			t.Fatalf("vertex %d not connected to its component in the forest", v)
		}
	}
}

func TestOracleSpanningForestFamilies(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"3regular":     graph.RandomRegular(300, 3, 7),
		"grid":         graph.Grid2D(12, 12),
		"cycle":        graph.Cycle(50),
		"disconnected": graph.Disconnected(graph.Cycle(9), 4),
		"small-comps":  graph.Disconnected(graph.Path(3), 5),
		"tree":         graph.RandomTree(80, 3),
	} {
		t.Run(name, func(t *testing.T) { checkSpanningForest(t, g, 5, 17) })
	}
}

func TestOracleSpanningForestLargerK(t *testing.T) {
	checkSpanningForest(t, graph.RandomRegular(500, 3, 9), 12, 19)
}
