package conn

import (
	"sort"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/spanning"
)

// Forest is an explicit spanning forest over the vertices of a dynamic
// connectivity oracle's graph — the structure that makes deletions cheap.
// A deletion of a non-forest edge cannot change connectivity at all; a
// deletion of a forest edge splits one tree into two, and connectivity is
// preserved iff some surviving edge of the graph reconnects the two sides
// (a replacement edge, found by scanning the smaller side). Only when no
// replacement exists has a component genuinely split, which the label-based
// oracle cannot express incrementally — that is the rebuild fallback.
//
// The forest lives on the *update* path only: queries never touch it, so it
// needs no synchronization with concurrent readers. The single background
// rebuilder of the serving layer is its only writer, and every patch works
// on a Clone (copy-on-write snapshot discipline, like the remap table).
// Within the asymmetric cost model the forest is an in-place structure:
// maintenance charges O(1) writes per link/cut, and the Go-level clone is
// an unmetered implementation detail of snapshot isolation, not a persisted
// rewrite.
type Forest struct {
	n int
	// adj is the forest adjacency (tree edges only, both directions).
	adj [][]int32
	// set holds normalized (u <= v) forest-edge keys for O(1) membership.
	set   map[[2]int32]bool
	edges int
}

// NewForest returns an empty forest over n vertices.
func NewForest(n int) *Forest {
	return &Forest{n: n, adj: make([][]int32, n), set: map[[2]int32]bool{}}
}

// SeedForest selects a spanning forest of the n-vertex multigraph given by
// edges via spanning.Forest (union-find over the explicit edge list) and
// materializes it. Costs: spanning.Forest's reads/writes plus two writes
// per adjacency entry of the chosen edges.
func SeedForest(m *asym.Meter, n int, edges [][2]int32) *Forest {
	f := NewForest(n)
	for _, i := range spanning.Forest(m, n, edges) {
		f.Link(edges[i][0], edges[i][1])
		m.Write(2)
	}
	return f
}

// N returns the vertex count.
func (f *Forest) N() int { return f.n }

// Size returns the number of forest edges.
func (f *Forest) Size() int { return f.edges }

// Has reports whether {u,v} is a forest edge.
func (f *Forest) Has(u, v int32) bool { return f.set[graph.NormEdge([2]int32{u, v})] }

// Link adds the forest edge {u,v}. The caller guarantees u and v are in
// distinct trees (forests never hold cycles) and the edge is not a
// self-loop.
func (f *Forest) Link(u, v int32) {
	key := graph.NormEdge([2]int32{u, v})
	if f.set[key] {
		return
	}
	f.set[key] = true
	f.adj[u] = append(f.adj[u], v)
	f.adj[v] = append(f.adj[v], u)
	f.edges++
}

// Cut removes the forest edge {u,v}; a no-op when absent.
func (f *Forest) Cut(u, v int32) {
	key := graph.NormEdge([2]int32{u, v})
	if !f.set[key] {
		return
	}
	delete(f.set, key)
	f.adj[u] = dropNeighbor(f.adj[u], v)
	f.adj[v] = dropNeighbor(f.adj[v], u)
	f.edges--
}

func dropNeighbor(adj []int32, w int32) []int32 {
	for i, x := range adj {
		if x == w {
			adj[i] = adj[len(adj)-1]
			return adj[:len(adj)-1]
		}
	}
	return adj
}

// Clone returns an independent copy (copy-on-write for patched oracles).
func (f *Forest) Clone() *Forest {
	c := &Forest{n: f.n, adj: make([][]int32, f.n), set: make(map[[2]int32]bool, len(f.set)), edges: f.edges}
	for v, a := range f.adj {
		if len(a) > 0 {
			c.adj[v] = append([]int32(nil), a...)
		}
	}
	for k := range f.set {
		c.set[k] = true
	}
	return c
}

// EdgeList returns the forest edges, normalized and sorted — the canonical
// form the durable store persists.
func (f *Forest) EdgeList() [][2]int32 {
	if f.edges == 0 {
		return nil
	}
	out := make([][2]int32, 0, f.edges)
	for k := range f.set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// smallerSide explores the trees of u and v (the edge {u,v} must already be
// cut) in lockstep and returns the vertex set of the smaller one, in BFS
// order plus as a membership set — so the replacement-edge search pays
// O(min side), the classic bound for decremental forest maintenance. Reads
// are charged per traversed forest adjacency entry.
func (f *Forest) smallerSide(m *asym.Meter, u, v int32) ([]int32, map[int32]bool) {
	type walk struct {
		order []int32
		seen  map[int32]bool
		next  int // frontier cursor into order
	}
	start := func(r int32) *walk {
		return &walk{order: []int32{r}, seen: map[int32]bool{r: true}}
	}
	// step expands one vertex; false once the whole tree is explored.
	step := func(w *walk) bool {
		if w.next >= len(w.order) {
			return false
		}
		x := w.order[w.next]
		w.next++
		for _, y := range f.adj[x] {
			m.Read(1)
			if !w.seen[y] {
				w.seen[y] = true
				w.order = append(w.order, y)
			}
		}
		return true
	}
	a, b := start(u), start(v)
	for {
		if !step(a) {
			return a.order, a.seen
		}
		if !step(b) {
			return b.order, b.seen
		}
	}
}
