package conn

import (
	"errors"
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// TestMixedChurnChain is the deletion-era mirror of TestRemapChainGrowth:
// a long chain (≥50 batches) interleaving ApplyInsertions, ApplyDeletions
// and periodic Rebase must stay exactly equivalent to a from-scratch
// oracle over the evolving edge multiset — partition, NumComponents — with
// the remap table flat and bounded and the maintained forest always a
// valid spanning forest. Deletions are drawn adversarially from the whole
// edge list; when one genuinely splits a component the chain handles it
// the way the serving ladder does: Rebase over the post-batch graph.
func TestMixedChurnChain(t *testing.T) {
	base := graph.Disconnected(graph.Cycle(8), 24) // 24 islands, n=192
	n := base.N()
	o := buildDyn(t, base, 4, 11)

	edges := append([][2]int32{}, base.Edges()...)
	cur := o
	qm := asym.NewMeter(16)
	sym := asym.NewSymTracker(0)
	rng := graph.NewRNG(4099)

	const batches = 60
	var rebases, deletionsAbsorbed, splits int
	for b := 0; b < batches; b++ {
		switch b % 3 {
		case 0, 1: // insertions (two per batch, random — merges and chords)
			batch := [][2]int32{
				{int32(rng.Intn(n)), int32(rng.Intn(n))},
				{int32(rng.Intn(n)), int32(rng.Intn(n))},
			}
			nx, err := cur.ApplyInsertions(qm, sym, batch)
			if err != nil {
				t.Fatalf("batch %d insert: %v", b, err)
			}
			edges = append(edges, batch...)
			cur = nx
		default: // deletions (two random copies)
			var removed [][2]int32
			for j := 0; j < 2 && len(edges) > 1; j++ {
				idx := rng.Intn(len(edges))
				removed = append(removed, edges[idx])
				edges[idx] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
			}
			next := graph.FromEdges(n, edges)
			nx, err := cur.ApplyDeletions(qm, sym, removed, next)
			switch {
			case err == nil:
				deletionsAbsorbed += len(removed)
				cur = nx
			case errors.Is(err, ErrNeedsRebuild):
				// The ladder's fallback: re-base onto the post-batch graph.
				splits++
				m, c := env(16)
				cur = cur.Rebase(c, graph.View{G: next, M: m}, 4, 11)
			default:
				t.Fatalf("batch %d delete: %v", b, err)
			}
		}
		// Scheduled re-base, like Config.RebaseEvery = 6.
		if cur.ChainDepth() >= 6 {
			m, c := env(16)
			cur = cur.Rebase(c, graph.View{G: graph.FromEdges(n, edges), M: m}, 4, 11)
			rebases++
		}

		// Invariants after every batch: equivalence with a reference
		// union-find partition, a spanning forest of the current multiset,
		// and a flat remap.
		ref := unionfind.NewRef(n)
		for _, e := range edges {
			ref.Union(e[0], e[1])
		}
		if !samePartition(oracleLabels(cur, n, 16), ref.Components()) {
			t.Fatalf("batch %d: labels diverge from reference", b)
		}
		checkForestSpans(t, cur, n, edges)
		for k, v := range cur.remap {
			if _, ok := cur.remap[v]; ok {
				t.Fatalf("batch %d: remap chain not flat: %d -> %d -> %d", b, k, v, cur.remap[v])
			}
		}
		if cur.ChainDepth() > 6 {
			t.Fatalf("batch %d: chain depth %d beyond the re-base budget", b, cur.ChainDepth())
		}
	}

	// Equivalence with a from-scratch oracle over the final multiset —
	// partition and the exact component count.
	fg := graph.FromEdges(n, edges)
	fm, fc := env(16)
	fresh := BuildOracle(fc, graph.View{G: fg, M: fm}, 4, 11)
	if !samePartition(oracleLabels(cur, n, 16), oracleLabels(fresh, n, 16)) {
		t.Fatal("chained labels diverge from from-scratch oracle after 60 mixed batches")
	}
	if cur.NumComponents != fresh.NumComponents {
		t.Fatalf("NumComponents: chained %d, from-scratch %d", cur.NumComponents, fresh.NumComponents)
	}
	if deletionsAbsorbed == 0 {
		t.Fatal("no deletion was absorbed incrementally (test lost its teeth)")
	}
	if rebases == 0 {
		t.Fatal("the scheduled re-base never fired (test lost its teeth)")
	}
	t.Logf("60 batches: %d deletions absorbed, %d splits (rebased), %d scheduled rebases, final m=%d",
		deletionsAbsorbed, splits, rebases, len(edges))
}
