package conn

import (
	"errors"
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// buildDyn builds an oracle with its explicit spanning forest seeded — the
// shape the serving layer's conn factory produces.
func buildDyn(t *testing.T, g *graph.Graph, k int, seed uint64) *Oracle {
	t.Helper()
	m, c := env(16)
	o := BuildOracle(c, graph.View{G: g, M: m}, k, seed)
	o.EnsureForest(m)
	return o
}

// removeCopies returns edges minus one copy per removal (multiset).
func removeCopies(t *testing.T, edges, removals [][2]int32) [][2]int32 {
	t.Helper()
	out := append([][2]int32{}, edges...)
	for _, r := range removals {
		key := graph.NormEdge(r)
		found := false
		for i, e := range out {
			if graph.NormEdge(e) == key {
				out[i] = out[len(out)-1]
				out = out[:len(out)-1]
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("removal %v not present", r)
		}
	}
	return out
}

// checkForestSpans verifies the oracle's forest is a spanning forest of
// edges: every forest edge present, acyclic, and exactly n - components
// edges.
func checkForestSpans(t *testing.T, o *Oracle, n int, edges [][2]int32) {
	t.Helper()
	mult := map[[2]int32]int{}
	for _, e := range edges {
		mult[graph.NormEdge(e)]++
	}
	ref := unionfind.NewRef(n)
	for _, e := range o.ForestEdges() {
		if mult[e] == 0 {
			t.Fatalf("forest edge %v not in graph", e)
		}
		if !ref.Union(e[0], e[1]) {
			t.Fatalf("forest edge %v closes a cycle", e)
		}
	}
	comps := unionfind.NewRef(n)
	want := 0
	for _, e := range edges {
		if e[0] != e[1] && comps.Union(e[0], e[1]) {
			want++
		}
	}
	if got := len(o.ForestEdges()); got != want {
		t.Fatalf("forest has %d edges, want %d", got, want)
	}
}

// TestApplyDeletionsNonForest: removing a cycle chord the forest does not
// use costs O(1) and changes no labels, no components, no forest.
func TestApplyDeletionsNonForest(t *testing.T) {
	g := graph.Cycle(12) // every vertex on one cycle: exactly one non-forest edge
	o := buildDyn(t, g, 3, 1)
	var nonForest [2]int32
	found := false
	forest := map[[2]int32]bool{}
	for _, e := range o.ForestEdges() {
		forest[e] = true
	}
	for _, e := range g.Edges() {
		if !forest[graph.NormEdge(e)] {
			nonForest, found = e, true
			break
		}
	}
	if !found {
		t.Fatal("cycle's forest uses every edge?")
	}

	next := graph.FromEdges(g.N(), removeCopies(t, g.Edges(), [][2]int32{nonForest}))
	m := asym.NewMeter(16)
	nx, err := o.ApplyDeletions(m, asym.NewSymTracker(0), [][2]int32{nonForest}, next)
	if err != nil {
		t.Fatal(err)
	}
	if nx.NumComponents != o.NumComponents || nx.ChainDepth() != 1 {
		t.Fatalf("components %d->%d depth %d", o.NumComponents, nx.NumComponents, nx.ChainDepth())
	}
	if !samePartition(oracleLabels(nx, g.N(), 16), oracleLabels(o, g.N(), 16)) {
		t.Fatal("labels changed by a non-forest deletion")
	}
	checkForestSpans(t, nx, g.N(), next.Edges())
	// Cheap: a couple of probes, no side search.
	if m.Writes() != 0 {
		t.Fatalf("non-forest deletion charged %d writes", m.Writes())
	}
	// The receiver is untouched (copy-on-write).
	if o.ChainDepth() != 0 || len(o.ForestEdges()) != 11 {
		t.Fatal("receiver mutated")
	}
}

// TestApplyDeletionsReplacement: cutting a forest edge of a cycle relinks
// through the surviving path — same components, valid forest, no rebuild.
func TestApplyDeletionsReplacement(t *testing.T) {
	g := graph.Cycle(16)
	o := buildDyn(t, g, 3, 5)
	cut := o.ForestEdges()[4] // definitely a forest edge

	next := graph.FromEdges(g.N(), removeCopies(t, g.Edges(), [][2]int32{cut}))
	m := asym.NewMeter(16)
	nx, err := o.ApplyDeletions(m, asym.NewSymTracker(0), [][2]int32{cut}, next)
	if err != nil {
		t.Fatal(err)
	}
	if nx.NumComponents != o.NumComponents {
		t.Fatalf("components %d -> %d", o.NumComponents, nx.NumComponents)
	}
	ref := refLabels(next)
	if !samePartition(oracleLabels(nx, g.N(), 16), ref) {
		t.Fatal("labels diverge after replacement relink")
	}
	checkForestSpans(t, nx, g.N(), next.Edges())
}

// TestApplyDeletionsBridgeNeedsRebuild: removing a bridge has no
// replacement — typed ErrNeedsRebuild, receiver untouched.
func TestApplyDeletionsBridgeNeedsRebuild(t *testing.T) {
	g := graph.Lollipop(6, 5) // path edges are bridges
	o := buildDyn(t, g, 3, 2)
	n := int32(g.N())
	bridge := [2]int32{n - 2, n - 1}

	next := graph.FromEdges(g.N(), removeCopies(t, g.Edges(), [][2]int32{bridge}))
	_, err := o.ApplyDeletions(asym.NewMeter(16), asym.NewSymTracker(0), [][2]int32{bridge}, next)
	if !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("err = %v, want ErrNeedsRebuild", err)
	}
	// The refused receiver still works and still carries its forest.
	checkForestSpans(t, o, g.N(), g.Edges())
	if !samePartition(oracleLabels(o, g.N(), 16), refLabels(g)) {
		t.Fatal("receiver damaged by refused batch")
	}
}

// TestApplyDeletionsParallelCopy: deleting one copy of a doubled edge never
// touches the forest, even when the forest uses that pair.
func TestApplyDeletionsParallelCopy(t *testing.T) {
	edges := [][2]int32{{0, 1}, {0, 1}, {1, 2}} // doubled bridge + tail
	g := graph.FromEdges(3, edges)
	o := buildDyn(t, g, 2, 3)

	next := graph.FromEdges(3, removeCopies(t, edges, [][2]int32{{0, 1}}))
	nx, err := o.ApplyDeletions(asym.NewMeter(16), asym.NewSymTracker(0), [][2]int32{{0, 1}}, next)
	if err != nil {
		t.Fatal(err)
	}
	if nx.NumComponents != o.NumComponents {
		t.Fatal("parallel-copy deletion changed components")
	}
	checkForestSpans(t, nx, 3, next.Edges())

	// Removing the second copy now cuts for real — and it is a bridge.
	next2 := graph.FromEdges(3, removeCopies(t, next.Edges(), [][2]int32{{0, 1}}))
	if _, err := nx.ApplyDeletions(asym.NewMeter(16), asym.NewSymTracker(0), [][2]int32{{0, 1}}, next2); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("second copy removal: %v, want ErrNeedsRebuild", err)
	}
}

// TestApplyDeletionsSelfLoopAndValidation: self-loops are absorbed
// trivially; out-of-range edges and a missing post-batch graph are
// rejected; an oracle without a forest refuses with ErrNeedsRebuild.
func TestApplyDeletionsSelfLoopAndValidation(t *testing.T) {
	edges := [][2]int32{{0, 1}, {1, 1}, {1, 2}}
	g := graph.FromEdges(3, edges)
	o := buildDyn(t, g, 2, 1)

	next := graph.FromEdges(3, removeCopies(t, edges, [][2]int32{{1, 1}}))
	nx, err := o.ApplyDeletions(asym.NewMeter(16), asym.NewSymTracker(0), [][2]int32{{1, 1}}, next)
	if err != nil || nx.NumComponents != o.NumComponents {
		t.Fatalf("self-loop removal: %v", err)
	}

	if _, err := o.ApplyDeletions(asym.NewMeter(16), nil, [][2]int32{{0, 9}}, next); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
	if _, err := o.ApplyDeletions(asym.NewMeter(16), nil, [][2]int32{{0, 1}}, nil); err == nil {
		t.Fatal("nil post-batch graph accepted")
	}

	m, c := env(16)
	bare := BuildOracle(c, graph.View{G: g, M: m}, 2, 1) // no EnsureForest
	if _, err := bare.ApplyDeletions(asym.NewMeter(16), nil, [][2]int32{{0, 1}}, next); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("forest-less oracle: %v, want ErrNeedsRebuild", err)
	}
}

// TestInsertionsMaintainForest: merging insertions become forest edges, so
// a later deletion of an original bridge can relink through them.
func TestInsertionsMaintainForest(t *testing.T) {
	g := graph.Disconnected(graph.Path(4), 2) // two paths: 0-1-2-3, 4-5-6-7
	o := buildDyn(t, g, 3, 7)

	adds := [][2]int32{{3, 4}, {0, 7}} // first merges, second closes a cycle
	m := asym.NewMeter(16)
	nx, err := o.ApplyInsertions(m, asym.NewSymTracker(0), adds)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][2]int32{}, g.Edges()...), adds...)
	checkForestSpans(t, nx, g.N(), all)
	if nx.ChainDepth() != 1 {
		t.Fatalf("depth %d", nx.ChainDepth())
	}

	// Deleting the merged bridge (3,4) must relink through (0,7).
	next := graph.FromEdges(g.N(), removeCopies(t, all, [][2]int32{{3, 4}}))
	nx2, err := nx.ApplyDeletions(asym.NewMeter(16), asym.NewSymTracker(0), [][2]int32{{3, 4}}, next)
	if err != nil {
		t.Fatal(err)
	}
	if nx2.NumComponents != nx.NumComponents || nx2.ChainDepth() != 2 {
		t.Fatalf("components %d->%d depth %d", nx.NumComponents, nx2.NumComponents, nx2.ChainDepth())
	}
	if !samePartition(oracleLabels(nx2, g.N(), 16), refLabels(next)) {
		t.Fatal("labels diverge after relink through inserted edge")
	}
	checkForestSpans(t, nx2, g.N(), next.Edges())
}

// TestRebaseCollapsesChain: Rebase over the current graph resets depth and
// remap while answering identically.
func TestRebaseCollapsesChain(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(8), 5)
	o := buildDyn(t, g, 3, 9)
	n := g.N()

	edges := g.Edges()
	cur := o
	rng := graph.NewRNG(77)
	for b := 0; b < 6; b++ {
		batch := [][2]int32{{int32(rng.Intn(n)), int32(rng.Intn(n))}}
		nx, err := cur.ApplyInsertions(asym.NewMeter(16), asym.NewSymTracker(0), batch)
		if err != nil {
			t.Fatal(err)
		}
		edges = append(edges, batch...)
		cur = nx
	}
	if cur.ChainDepth() != 6 {
		t.Fatalf("depth %d, want 6", cur.ChainDepth())
	}

	curG := graph.FromEdges(n, edges)
	m, c := env(16)
	rb := cur.Rebase(c, graph.View{G: curG, M: m}, 3, 9)
	if rb.ChainDepth() != 0 || rb.Remap() != nil {
		t.Fatalf("rebase left depth=%d remap=%v", rb.ChainDepth(), rb.Remap())
	}
	if !samePartition(oracleLabels(rb, n, 16), oracleLabels(cur, n, 16)) {
		t.Fatal("rebase changed the partition")
	}
	if rb.NumComponents != cur.NumComponents {
		t.Fatalf("NumComponents %d -> %d", cur.NumComponents, rb.NumComponents)
	}
	checkForestSpans(t, rb, n, edges)
}

// TestAdoptForest: a persisted forest round-trips through adoption, and
// stale forests (missing edge, cycle, wrong size) are rejected.
func TestAdoptForest(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(6), 3)
	o := buildDyn(t, g, 3, 4)
	persisted := o.ForestEdges()

	m, c := env(16)
	fresh := BuildOracle(c, graph.View{G: g, M: m}, 3, 4)
	adopted, err := fresh.AdoptForest(persisted, 7)
	if err != nil {
		t.Fatal(err)
	}
	if adopted.ChainDepth() != 7 {
		t.Fatalf("depth %d, want 7", adopted.ChainDepth())
	}
	checkForestSpans(t, adopted, g.N(), g.Edges())

	if _, err := fresh.AdoptForest([][2]int32{{0, 3}}, 0); err == nil {
		t.Fatal("forest with a non-edge accepted")
	}
	if _, err := fresh.AdoptForest(persisted[:len(persisted)-1], 0); err == nil {
		t.Fatal("non-spanning forest accepted")
	}
	cyclic := append(append([][2]int32{}, persisted...), persisted[0])
	if _, err := fresh.AdoptForest(cyclic, 0); err == nil {
		t.Fatal("cyclic forest accepted")
	}
	if _, err := fresh.AdoptForest(persisted, -1); err == nil {
		t.Fatal("negative chain depth accepted")
	}
}
