// Package conn implements the paper's §4 connectivity algorithms:
//
//   - Sequential: the classic BFS labeling, O(m) operations and O(n) writes
//     (already write-efficient sequentially).
//   - Parallel: Theorem 4.2 — one low-diameter decomposition with small β,
//     per-cluster spanning trees by write-efficient BFS, a write-efficient
//     filter of the cross edges into a contracted graph, and a spanning
//     forest on the contraction: O(n + βm) expected writes, O(ωn + βωm + m)
//     expected work. β = 1/ω gives O(n + m/ω) writes and O(m + ωn) work.
//   - Baseline: the prior-work recursive-contraction algorithm of Shun et
//     al. [43] with constant β, which performs Θ(m) writes per round and is
//     therefore Θ(ωm) work under asymmetry — the comparator for Table 1.
//   - Oracle (own file): Theorem 4.4 — connectivity in o(n) writes via the
//     implicit k-decomposition.
package conn

import (
	"repro/internal/asym"
	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/ldd"
	"repro/internal/parallel"
	"repro/internal/spanning"
)

// Result holds connectivity output: component labels (canonical: smallest
// vertex id in the component) and optionally a spanning forest.
type Result struct {
	Labels        *asym.Array // per vertex, canonical component id
	Forest        [][2]int32  // spanning forest edges (when requested)
	NumComponents int
}

// Sequential labels components by repeated BFS in O(m) operations and O(n)
// writes — the classic algorithm, which already meets the dense bound
// sequentially (Table 1 row 1 for sequential connectivity).
func Sequential(c *parallel.Ctx, vw graph.View, wantForest bool) Result {
	n := vw.G.N()
	m := vw.M
	labels := asym.NewArray(m, n)
	labels.Fill(bfs.Unvisited)
	res := Result{Labels: labels}
	for s := 0; s < n; s++ {
		m.Read(1)
		if labels.Raw()[s] != bfs.Unvisited { //wec:unmetered charged by the m.Read(1) above
			continue
		}
		res.NumComponents++
		// Claim the whole component with label s via a parent-writing BFS
		// so the forest falls out of the same pass.
		parent := map[int32]int32{int32(s): int32(s)}
		frontier := []int32{int32(s)}
		labels.Set(s, int32(s))
		for len(frontier) > 0 {
			var next []int32
			for _, v := range frontier {
				deg := vw.Degree(int(v))
				for i := 0; i < deg; i++ {
					u := vw.Neighbor(int(v), i)
					if _, ok := parent[u]; ok {
						continue
					}
					parent[u] = v
					labels.Set(int(u), int32(s))
					if wantForest {
						res.Forest = append(res.Forest, [2]int32{v, u})
						m.Write(1)
					}
					next = append(next, u)
				}
			}
			frontier = next
		}
		c.AddDepth(1)
	}
	return res
}

// Parallel is the write-efficient parallel connectivity of Theorem 4.2.
// beta <= 0 selects the paper's choice 1/ω.
func Parallel(c *parallel.Ctx, vw graph.View, beta float64, seed uint64, wantForest bool) Result {
	n := vw.G.N()
	m := vw.M
	if beta <= 0 {
		beta = 1.0 / float64(m.Omega())
	}

	// Step 1: one low-diameter decomposition.
	dec := ldd.Decompose(c, ldd.Explicit{VW: vw}, m, beta, seed)

	// Step 2: spanning trees inside each cluster come from the LDD's own
	// BFS claims; for the forest output, re-derive parent edges with
	// write-efficient BFS restricted to each cluster (O(n) writes total).
	var forest [][2]int32
	if wantForest {
		forest = clusterForest(c, vw, dec)
	}

	// Step 3: write-efficient filter of the cross-cluster edges into a
	// compacted array — writes proportional to the output size O(βm).
	cross := filterCrossEdges(c, vw, dec)

	// Step 4: spanning forest / components on the contracted graph. The
	// contracted graph has the original vertex-id space but only cluster
	// sources carry edges; labeling all n vertices costs the O(n) writes
	// the theorem already budgets.
	labels := asym.NewArray(m, n)
	spanning.Components(m, n, cross, labels)
	// Cluster members inherit their source's label.
	numComp := relabelByCluster(c, dec, labels)

	if wantForest {
		chosen := spanning.Forest(m, n, cross)
		for _, i := range chosen {
			forest = append(forest, cross[i])
		}
	}
	return Result{Labels: labels, Forest: forest, NumComponents: numComp}
}

// clusterForest runs a write-efficient BFS from each LDD source restricted
// to its own cluster, emitting parent edges. Disjoint searches share the
// parent array, so writes are O(n) total and depth is bounded by the
// cluster diameter O(log n / β).
func clusterForest(c *parallel.Ctx, vw graph.View, dec ldd.Result) [][2]int32 {
	m := vw.M
	var forest [][2]int32
	for _, s := range dec.Sources {
		frontier := []int32{s}
		seen := map[int32]bool{s: true}
		cl := dec.Cluster.Get(int(s))
		for len(frontier) > 0 {
			var next []int32
			for _, v := range frontier {
				deg := vw.Degree(int(v))
				for i := 0; i < deg; i++ {
					u := vw.Neighbor(int(v), i)
					m.Read(1)
					if seen[u] || dec.Cluster.Raw()[u] != cl { //wec:unmetered charged by the m.Read(1) above
						continue
					}
					seen[u] = true
					forest = append(forest, [2]int32{v, u})
					m.Write(1)
					next = append(next, u)
				}
			}
			frontier = next
		}
	}
	c.AddDepth(int64(dec.Iterations))
	return forest
}

// filterCrossEdges packs the cross-cluster edges, as (source u, source v)
// pairs in cluster-id space, using the write-efficient filter: two read
// passes over the adjacency structure, writes only for surviving edges.
func filterCrossEdges(c *parallel.Ctx, vw graph.View, dec ldd.Result) [][2]int32 {
	g := vw.G
	m := vw.M
	n := g.N()
	// Directed slot enumeration: slot t is the t-th adjacency word; the
	// CSR offsets identify its owning vertex. pred keeps the {v < u}
	// halves whose endpoints lie in different clusters.
	vertexOf := make([]int32, 0, 2*g.M())
	for v := 0; v < n; v++ {
		for j := 0; j < g.Degree(v); j++ { //wec:unmetered CSR offset lookup; the slot reads themselves are charged in the filter
			vertexOf = append(vertexOf, int32(v))
		}
	}
	slotBase := make([]int, n+1)
	for v := 0; v < n; v++ {
		slotBase[v+1] = slotBase[v] + g.Degree(v) //wec:unmetered CSR offset lookup, covered by the m.Op(n) charge below
	}
	m.Op(n)
	slots := parallel.Filter(c, len(vertexOf), func(slot int) bool {
		v := vertexOf[slot]
		u := vw.Neighbor(int(v), slot-slotBase[v])
		if u <= v {
			return false
		}
		m.Read(2)
		return dec.Cluster.Raw()[v] != dec.Cluster.Raw()[u] //wec:unmetered both cluster reads charged by the m.Read(2) above
	})
	out := make([][2]int32, len(slots))
	for i, slot := range slots {
		v := vertexOf[slot]
		u := vw.Neighbor(int(v), slot-slotBase[v])
		m.Read(2)
		m.Write(2)                                                    // the packed contracted edge
		out[i] = [2]int32{dec.Cluster.Raw()[v], dec.Cluster.Raw()[u]} //wec:unmetered both cluster reads charged by the m.Read(2) above
	}
	return out
}

// relabelByCluster overwrites labels[v] with the canonical label of v's
// cluster source and returns the number of distinct components.
func relabelByCluster(c *parallel.Ctx, dec ldd.Result, labels *asym.Array) int {
	n := labels.Len()
	m := labels.Meter()
	distinct := map[int32]bool{}
	for v := 0; v < n; v++ {
		src := dec.Cluster.Get(v)
		lab := labels.Get(int(src))
		labels.Set(v, lab)
		distinct[lab] = true
	}
	c.AddDepth(logDepth(n))
	_ = m
	return len(distinct)
}

func logDepth(n int) int64 {
	d := int64(1)
	for n > 1 {
		n >>= 1
		d++
	}
	return d
}
