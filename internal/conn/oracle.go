package conn

import (
	"math"

	"repro/internal/asym"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/ldd"
	"repro/internal/parallel"
	"repro/internal/spanning"
)

// Oracle is the sublinear-write connectivity oracle of Theorem 4.4: an
// implicit k-decomposition plus one component label per center. For
// bounded-degree graphs with k = √ω, construction performs O(n/√ω) writes
// and O(√ω·n) work; a query costs O(√ω) expected reads and no writes.
//
// Concurrency contract: after BuildOracle returns, the oracle is immutable.
// Query, Connected, and VisitSpanningForest touch no oracle state outside
// the Meter and SymTracker passed to them (their scratch lives in per-call
// symmetric memory), so any number of goroutines may query one Oracle
// concurrently as long as each uses its own meter — or shares one, since
// Meter and SymTracker are themselves safe for concurrent use. Package
// serve relies on this to shard query batches across workers.
//
//wec:immutable
type Oracle struct {
	D *decomp.Decomposition
	// labels[i] is the canonical component label of the i-th center: the
	// smallest center id in its clusters-graph component. O(n/k) words.
	labels *asym.Array
	// NumComponents counts components that contain at least one stored
	// center; small primary-free components are answered implicitly and
	// not counted here.
	NumComponents int
	// remap, when non-nil, redirects component labels merged by dynamic
	// edge insertions (ApplyInsertions in dynamic.go): after the base
	// lookup, a label that is a remap key resolves to the canonical label
	// of its merged component. Nil for freshly built oracles. The map is
	// immutable after construction, so concurrent queries stay safe.
	remap map[int32]int32
	// forest, when non-nil, is the explicit spanning forest of the
	// oracle's *current* effective graph (base plus applied insertions
	// minus applied deletions) — the structure ApplyDeletions needs.
	// Maintained copy-on-write by the dynamic-update path (dynamic.go);
	// queries never read it, so it takes no part in the concurrency
	// contract above.
	forest *Forest
	// chainDepth counts the incremental patches (ApplyInsertions /
	// ApplyDeletions generations) separating this oracle from its last
	// full decomposition — the remap-chain length Rebase collapses.
	chainDepth int
}

// clustersGraph is the implicit clusters graph: vertex i is the i-th center
// of the decomposition; neighbors are recomputed on every visit via the
// O(k²) listing of Lemma 4.3 and never written to asymmetric memory.
type clustersGraph struct {
	d   *decomp.Decomposition
	m   *asym.Meter
	sym *asym.SymTracker
}

// Size returns the number of centers.
func (cg clustersGraph) Size() int { return cg.d.NumCenters() }

// Visit enumerates the clusters-graph neighbors of center index v.
func (cg clustersGraph) Visit(v int32, f func(u int32)) {
	s := cg.d.Center(cg.m, int(v))
	for _, e := range cg.d.NeighborCenters(cg.m, cg.sym, s) {
		f(int32(cg.d.CenterIndex(cg.m, e.Other)))
	}
}

// DefaultK returns the paper's choice k = ⌈√ω⌉ (at least 2).
func DefaultK(omega int) int {
	k := int(math.Ceil(math.Sqrt(float64(omega))))
	if k < 2 {
		k = 2
	}
	return k
}

// BuildOracle constructs a connectivity oracle over the bounded-degree
// graph behind vw. k <= 0 selects √ω. All costs are charged to vw.M and
// symmetric scratch is tracked on c's tracker.
//
//wec:mutator build-time constructor; the oracle is not shared until it returns
func BuildOracle(c *parallel.Ctx, vw graph.View, k int, seed uint64) *Oracle {
	m := vw.M
	if k <= 0 {
		k = DefaultK(m.Omega())
	}
	// Step 1: implicit k-decomposition (Theorem 3.1).
	d := decomp.Build(c, vw, k, seed, decomp.Options{})

	// Step 2: the write-efficient connectivity algorithm of §4.2 with
	// β = 1/k on the *implicit* clusters graph: the LDD queries neighbor
	// lists on demand (Lemma 4.3) instead of writing Θ(m') edges.
	cg := clustersGraph{d: d, m: m, sym: c.Sym()}
	nPrime := cg.Size()
	o := &Oracle{D: d}
	if nPrime == 0 {
		o.labels = asym.NewArray(m, 0)
		return o
	}
	beta := 1.0 / float64(k)
	dec := ldd.Decompose(c, cg, m, beta, seed+0x9e37)

	// Contract: pack cross-cluster clusters-graph edges explicitly (the
	// contracted graph has O(n') vertices and O(βm') expected edges, so
	// it may be written, per Theorem 4.2 step 4).
	var cross [][2]int32
	for i := 0; i < nPrime; i++ {
		ci := dec.Cluster.Get(i)
		cg.Visit(int32(i), func(j int32) {
			m.Read(1)
			if int32(i) < j && dec.Cluster.Raw()[j] != ci { //wec:unmetered cluster read charged by the m.Read(1) above
				cross = append(cross, [2]int32{ci, dec.Cluster.Raw()[j]}) //wec:unmetered re-reads the slot charged above
				m.Write(2)
			}
		})
	}
	labels := asym.NewArray(m, nPrime)
	spanning.Components(m, nPrime, cross, labels)
	// Center i's component label: follow its LDD source's contracted
	// label (a source's own label never changes, so update order is free).
	for i := 0; i < nPrime; i++ {
		labels.Set(i, labels.Get(int(dec.Cluster.Get(i))))
	}
	// Canonicalize to the smallest center index per component, so the
	// stored label is the component's smallest center id once resolved.
	minOf := map[int32]int32{}
	for i := 0; i < nPrime; i++ {
		lab := labels.Get(i)
		if cur, ok := minOf[lab]; !ok || int32(i) < cur {
			minOf[lab] = int32(i)
		}
	}
	for i := 0; i < nPrime; i++ {
		labels.Set(i, minOf[labels.Get(i)])
	}
	o.labels = labels
	o.NumComponents = len(minOf)
	return o
}

// Query returns the component label of v: the smallest center id in v's
// component, or the implicit center itself for small primary-free
// components. O(k) expected reads (the ρ query) plus O(log n) for the
// center-index lookup; no writes.
func (o *Oracle) Query(m *asym.Meter, sym *asym.SymTracker, v int32) int32 {
	return o.QueryS(m, sym, nil, v)
}

// QueryS is Query with a caller-provided reusable search scratch (nil
// allocates per call) — the serving layer's zero-alloc query path. Charged
// costs are identical to Query's.
//
//wec:noalloc
func (o *Oracle) QueryS(m *asym.Meter, sym *asym.SymTracker, sc *decomp.Scratch, v int32) int32 {
	s := o.D.RhoS(m, sym, sc, v)
	var lab int32
	if i := o.D.CenterIndex(m, s); i < 0 {
		// Implicit center of a small primary-free component: the center id
		// itself is the canonical label (it is the component's smallest
		// vertex and can collide with no stored component's label, which
		// is always a stored center in a different component).
		lab = s
	} else {
		m.Read(1)
		labIdx := o.labels.Raw()[i] //wec:unmetered charged by the m.Read(1) above
		lab = o.D.Center(m, int(labIdx))
	}
	if o.remap != nil {
		m.Read(1)
		if to, ok := o.remap[lab]; ok {
			lab = to
		}
	}
	return lab
}

// Connected reports whether u and v are in the same component.
func (o *Oracle) Connected(m *asym.Meter, sym *asym.SymTracker, u, v int32) bool {
	return o.Query(m, sym, u) == o.Query(m, sym, v)
}

// ConnectedS is Connected with a reusable search scratch shared by both ρ
// queries (nil allocates per call).
//
//wec:noalloc
func (o *Oracle) ConnectedS(m *asym.Meter, sym *asym.SymTracker, sc *decomp.Scratch, u, v int32) bool {
	return o.QueryS(m, sym, sc, u) == o.QueryS(m, sym, sc, v)
}

// Remap returns a copy of the dynamic-insertion label remap table (nil for
// a freshly built oracle). It is the durable trace of the incremental
// path: the serving layer's store persists it with each snapshot so the
// label state a fleet acknowledged survives restarts. Unmetered — this is
// an I/O-path accessor, not a query.
func (o *Oracle) Remap() map[int32]int32 {
	if o.remap == nil {
		return nil
	}
	out := make(map[int32]int32, len(o.remap))
	for k, v := range o.remap {
		out[k] = v
	}
	return out
}

// ChainDepth returns the number of incremental patches applied since the
// oracle's last full decomposition build (0 for a fresh build). The serving
// layer's strategy engine re-bases the oracle once this crosses its
// configured budget.
func (o *Oracle) ChainDepth() int { return o.chainDepth }

// ForestEdges returns the explicit spanning forest's edges, normalized and
// sorted (nil when the oracle carries no forest). Like Remap, this is the
// I/O-path accessor the durable store persists with each snapshot;
// unmetered.
func (o *Oracle) ForestEdges() [][2]int32 {
	if o.forest == nil {
		return nil
	}
	return o.forest.EdgeList()
}

// HasForest reports whether the oracle carries an explicit spanning forest
// (the precondition of ApplyDeletions).
func (o *Oracle) HasForest() bool { return o.forest != nil }

// VisitSpanningForest enumerates the edges of a spanning forest of the
// whole graph, realizing the spanning-forest remark at the end of §4.3:
// the per-cluster shortest-path trees of Lemma 3.3 are *recomputed* (never
// stored), one witness edge joins each pair of clusters chosen by a BFS
// over the implicit clusters graph, and small primary-free components
// contribute their own search trees. The enumeration performs O(√ω·n)
// expected reads and zero asymmetric writes; the visited-cluster marks use
// O(n/k) symmetric words (beyond the O(k log n) query budget — acceptable
// for an output-enumeration pass, which the paper prices like
// construction).
//
// visit receives each forest edge once as an original-graph edge (u, v).
func (o *Oracle) VisitSpanningForest(m *asym.Meter, sym *asym.SymTracker, visit func(u, v int32)) {
	d := o.D
	np := d.NumCenters()
	// Cluster-internal trees: every non-center vertex contributes the
	// first edge of its path to its center. Covering all vertices costs
	// one ρ-path query each.
	n := d.Graph().N()
	implicitRoots := map[int32]bool{}
	for v := int32(0); int(v) < n; v++ {
		path := d.PathToCenter(m, sym, v)
		if len(path) >= 2 {
			visit(path[0], path[1])
		}
		if i := d.CenterIndex(m, path[len(path)-1]); i < 0 {
			implicitRoots[path[len(path)-1]] = true
		}
	}
	_ = implicitRoots // implicit components are fully covered by their paths
	// Clusters-graph spanning forest: BFS over the implicit clusters
	// graph, emitting each tree edge's witness original edge.
	seen := make([]bool, np)
	if sym != nil {
		sym.Acquire(np)
		defer sym.Release(np)
	}
	for s := 0; s < np; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		frontier := []int32{int32(s)}
		for len(frontier) > 0 {
			var next []int32
			for _, ci := range frontier {
				center := d.Center(m, int(ci))
				for _, e := range d.NeighborCenters(m, sym, center) {
					cj := d.CenterIndex(m, e.Other)
					if cj < 0 || seen[cj] {
						continue
					}
					seen[cj] = true
					visit(e.From, e.To)
					next = append(next, int32(cj))
				}
			}
			frontier = next
		}
	}
}
