package conn

import (
	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/ldd"
	"repro/internal/parallel"
)

// Baseline is the prior-work linear-work parallel connectivity algorithm of
// Shun, Dhulipala and Blelloch [43]: recursively apply a low-diameter
// decomposition with constant β and contract each cluster to a supervertex,
// rewriting the remaining edge list every round. Under symmetric costs this
// is work-optimal; under asymmetry the per-round edge rewriting makes it
// Θ(ωm) work — the "Prior work" column of Table 1 that Theorem 4.2 beats.
//
// The contraction writes are charged faithfully: every surviving edge is
// rewritten every round, and every vertex is relabeled every round.
func Baseline(c *parallel.Ctx, vw graph.View, seed uint64) Result {
	m := vw.M
	n := vw.G.N()
	const beta = 0.4 // constant, as in [43]

	labels := asym.NewArray(m, n)
	for v := 0; v < n; v++ {
		labels.Set(v, int32(v))
	}

	curN := n
	curEdges := vw.G.Edges() //wec:unmetered the input edge list is given, not charged
	// Initial edge list materialization is part of the input, not charged;
	// every subsequent round's list is charged below.
	round := 0
	for len(curEdges) > 0 {
		round++
		g := graph.FromEdges(curN, curEdges)
		gvw := graph.View{G: g, M: m}
		dec := ldd.Decompose(c, ldd.Explicit{VW: gvw}, m, beta, seed+uint64(round))
		// Prior-work decompositions use standard (non-write-efficient)
		// BFS, whose frontier and edge-list packing writes one word per
		// directed edge each round (§4: "Existing linear-work parallel
		// connectivity algorithms perform Θ(m) writes"). Charge it.
		m.Write(2 * g.M())

		// Renumber cluster sources densely.
		index := make(map[int32]int32, len(dec.Sources))
		for i, s := range dec.Sources {
			index[s] = int32(i)
		}
		m.Op(len(dec.Sources))

		// Contract: rewrite every surviving (cross-cluster) edge — the
		// Θ(m) writes per round that make the baseline expensive.
		var nextEdges [][2]int32
		for _, e := range curEdges {
			m.Read(4)                     // endpoints + their cluster labels
			cu := dec.Cluster.Raw()[e[0]] //wec:unmetered both cluster reads charged by the m.Read(4) above
			cv := dec.Cluster.Raw()[e[1]]
			if cu == cv {
				continue
			}
			nextEdges = append(nextEdges, [2]int32{index[cu], index[cv]})
			m.Write(2)
		}
		// Relabel the original vertices through this round's contraction.
		for v := 0; v < n; v++ {
			old := labels.Get(v)
			labels.Set(v, index[dec.Cluster.Raw()[old]]) //wec:unmetered cluster read charged by the m.Read(1) below
			m.Read(1)
		}
		curN = len(dec.Sources)
		curEdges = nextEdges
		c.AddDepth(int64(dec.Iterations))
		if round > 64 {
			panic("conn: baseline failed to converge")
		}
	}

	// Canonicalize labels to the smallest original vertex per component.
	minOf := map[int32]int32{}
	for v := 0; v < n; v++ {
		l := labels.Get(v)
		if cur, ok := minOf[l]; !ok || int32(v) < cur {
			minOf[l] = int32(v)
		}
	}
	for v := 0; v < n; v++ {
		labels.Set(v, minOf[labels.Get(v)])
	}
	return Result{Labels: labels, NumComponents: len(minOf)}
}
