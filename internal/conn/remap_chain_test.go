package conn

import (
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// TestRemapChainGrowth guards the ROADMAP re-basing item: a long chain of
// insertion-only ApplyInsertions batches (50+, far beyond what the other
// dynamic tests exercise) must stay exactly equivalent to a from-scratch
// oracle over the accumulated edge list — labels as a partition,
// NumComponents exactly — and the persisted remap table must stay flat
// (every key resolves in one hop; chains never deepen) and bounded by the
// number of components that ever existed.
func TestRemapChainGrowth(t *testing.T) {
	// Many small islands so the chain keeps finding components to merge
	// deep into the sequence.
	base := graph.Disconnected(graph.Cycle(6), 60) // 60 components, n=360
	n := base.N()
	m, c := env(16)
	o := BuildOracle(c, graph.View{G: base, M: m}, 4, 9)

	ref := unionfind.NewRef(n)
	for _, e := range base.Edges() {
		ref.Union(e[0], e[1])
	}
	edges := base.Edges()

	const batches = 55
	rng := graph.NewRNG(2024)
	cur := o
	qm := asym.NewMeter(16)
	sym := asym.NewSymTracker(0)
	for b := 0; b < batches; b++ {
		// Two random edges per batch: early batches merge often, late ones
		// mostly land inside one component — both paths stay on the chain.
		batch := [][2]int32{
			{int32(rng.Intn(n)), int32(rng.Intn(n))},
			{int32(rng.Intn(n)), int32(rng.Intn(n))},
		}
		next, err := cur.ApplyInsertions(qm, sym, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		for _, e := range batch {
			ref.Union(e[0], e[1])
		}
		edges = append(edges, batch...)
		cur = next
	}

	// Equivalence against a from-scratch oracle over the final edge list.
	fg := graph.FromEdges(n, edges)
	fm, fc := env(16)
	fresh := BuildOracle(fc, graph.View{G: fg, M: fm}, 4, 9)

	got := oracleLabels(cur, n, 16)
	want := oracleLabels(fresh, n, 16)
	if !samePartition(got, want) {
		t.Fatal("chained labels diverge from from-scratch oracle after 55 batches")
	}
	if !samePartition(got, ref.Components()) {
		t.Fatal("chained labels diverge from reference union-find")
	}
	if cur.NumComponents != fresh.NumComponents {
		t.Fatalf("NumComponents: chained %d, from-scratch %d", cur.NumComponents, fresh.NumComponents)
	}

	// Remap-table invariants. Flatness: values are never themselves keys,
	// so a query resolves in one extra read no matter how long the chain
	// got. Boundedness: at most one entry per component the base oracle
	// ever stored (the re-basing cost ceiling the ROADMAP item tracks).
	for k, v := range cur.remap {
		if _, ok := cur.remap[v]; ok {
			t.Fatalf("remap chain not flat: %d -> %d -> %d", k, v, cur.remap[v])
		}
	}
	if len(cur.remap) >= o.NumComponents {
		t.Fatalf("remap has %d entries, want < initial component count %d",
			len(cur.remap), o.NumComponents)
	}
	if len(cur.remap) == 0 {
		t.Fatal("55 merging batches persisted no remap entries (test lost its teeth)")
	}

	// The chain still composes: one more merging batch on top of the long
	// chain behaves.
	last, err := cur.ApplyInsertions(qm, sym, [][2]int32{{0, int32(n - 1)}})
	if err != nil {
		t.Fatal(err)
	}
	lm := asym.NewMeter(16)
	if !last.Connected(lm, sym, 0, int32(n-1)) {
		t.Fatal("post-chain insertion not reflected")
	}
}
