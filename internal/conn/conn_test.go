package conn

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

func env(omega int) (*asym.Meter, *parallel.Ctx) {
	m := asym.NewMeter(omega)
	return m, parallel.NewCtx(m, asym.NewSymTracker(0))
}

// refLabels computes ground-truth component labels (min vertex id).
func refLabels(g *graph.Graph) []int32 {
	uf := unionfind.NewRef(g.N())
	for _, e := range g.Edges() {
		uf.Union(e[0], e[1])
	}
	return uf.Components()
}

// samePartition checks that two labelings induce the same partition.
func samePartition(a, b []int32) bool {
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := bwd[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func countComponents(labels []int32) int {
	s := map[int32]bool{}
	for _, l := range labels {
		s[l] = true
	}
	return len(s)
}

func TestSequentialMatchesRef(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(20),
		graph.Disconnected(graph.Cycle(7), 3),
		graph.GNM(100, 150, 3, false),
		graph.FromEdges(5, nil), // no edges: all singletons
	} {
		m, c := env(8)
		res := Sequential(c, graph.View{G: g, M: m}, false)
		ref := refLabels(g)
		if !samePartition(res.Labels.Raw(), ref) {
			t.Fatalf("partition mismatch on n=%d m=%d", g.N(), g.M())
		}
		if res.NumComponents != countComponents(ref) {
			t.Fatalf("components = %d, want %d", res.NumComponents, countComponents(ref))
		}
	}
}

func TestSequentialForest(t *testing.T) {
	g := graph.GNM(80, 200, 5, true)
	m, c := env(8)
	res := Sequential(c, graph.View{G: g, M: m}, true)
	if len(res.Forest) != g.N()-1 {
		t.Fatalf("forest edges = %d, want %d", len(res.Forest), g.N()-1)
	}
	uf := unionfind.NewRef(g.N())
	for _, e := range res.Forest {
		if !uf.Union(e[0], e[1]) {
			t.Fatal("forest has a cycle")
		}
	}
}

func TestParallelMatchesRef(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		beta float64
	}{
		{graph.GNM(300, 1200, 7, true), 0},
		{graph.GNM(300, 600, 9, false), 0.25},
		{graph.Grid2D(20, 20), 0},
		{graph.Disconnected(graph.Cycle(15), 4), 0.1},
	} {
		m, c := env(16)
		res := Parallel(c, graph.View{G: tc.g, M: m}, tc.beta, 42, false)
		ref := refLabels(tc.g)
		if !samePartition(res.Labels.Raw(), ref) {
			t.Fatalf("partition mismatch (beta=%v)", tc.beta)
		}
		if res.NumComponents != countComponents(ref) {
			t.Fatalf("components = %d, want %d", res.NumComponents, countComponents(ref))
		}
	}
}

func TestParallelForestSpans(t *testing.T) {
	g := graph.GNM(200, 800, 11, true)
	m, c := env(16)
	res := Parallel(c, graph.View{G: g, M: m}, 0, 13, true)
	if len(res.Forest) != g.N()-1 {
		t.Fatalf("forest edges = %d, want %d", len(res.Forest), g.N()-1)
	}
	uf := unionfind.NewRef(g.N())
	for _, e := range res.Forest {
		if !uf.Union(e[0], e[1]) {
			t.Fatal("forest has a cycle")
		}
	}
	// Forest edges must be real edges... cross-cluster forest edges are in
	// cluster-source space? No: Parallel emits original-graph edges for
	// in-cluster trees and source-space edges for the contracted forest.
	// The count and acyclicity over vertex ids are the meaningful checks.
}

func TestParallelWriteEfficiency(t *testing.T) {
	// Theorem 4.2 with beta=1/omega: writes O(n + m/omega), far below m.
	g := graph.GNM(1000, 16000, 17, true)
	omega := 32
	m, c := env(omega)
	Parallel(c, graph.View{G: g, M: m}, 0, 19, false)
	limit := int64(8*g.N()) + int64(4*g.M()/omega)
	if m.Writes() > limit {
		t.Fatalf("writes = %d > %d (n=%d m=%d omega=%d)",
			m.Writes(), limit, g.N(), g.M(), omega)
	}
}

func TestParallelBeatsBaselineOnWrites(t *testing.T) {
	// The headline Table 1 comparison: baseline performs Θ(m) contraction
	// writes, ours O(n + m/omega).
	g := graph.GNM(800, 12800, 23, true)
	omega := 64

	mOurs, cOurs := env(omega)
	Parallel(cOurs, graph.View{G: g, M: mOurs}, 0, 29, false)

	mBase, cBase := env(omega)
	resBase := Baseline(cBase, graph.View{G: g, M: mBase}, 29)

	if !samePartition(resBase.Labels.Raw(), refLabels(g)) {
		t.Fatal("baseline wrong")
	}
	if mOurs.Writes()*2 >= mBase.Writes() {
		t.Fatalf("ours %d writes, baseline %d writes: expected clear win",
			mOurs.Writes(), mBase.Writes())
	}
	if mOurs.Work() >= mBase.Work() {
		t.Fatalf("ours %d work, baseline %d work", mOurs.Work(), mBase.Work())
	}
}

func TestBaselineMatchesRef(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(120, 300, seed, false)
		m, c := env(8)
		res := Baseline(c, graph.View{G: g, M: m}, seed+1)
		return samePartition(res.Labels.Raw(), refLabels(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(150, 300, seed, false)
		m, c := env(16)
		res := Parallel(c, graph.View{G: g, M: m}, 0, seed+7, false)
		return samePartition(res.Labels.Raw(), refLabels(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// --- Oracle (Theorem 4.4) ---

func TestOracleMatchesRefConnected(t *testing.T) {
	g := graph.RandomRegular(400, 3, 31)
	m, c := env(64)
	o := BuildOracle(c, graph.View{G: g, M: m}, 0, 33)
	qm := asym.NewMeter(64)
	ref := refLabels(g)
	got := make([]int32, g.N())
	for v := 0; v < g.N(); v++ {
		got[v] = o.Query(qm, nil, int32(v))
	}
	if !samePartition(got, ref) {
		t.Fatal("oracle partition mismatch")
	}
	if o.NumComponents != 1 {
		t.Fatalf("NumComponents = %d", o.NumComponents)
	}
}

func TestOracleDisconnectedMixedSizes(t *testing.T) {
	// Large components + small (< k) primary-free components together.
	edges := [][2]int32{}
	// Component A: cycle 0..39. Component B: cycle 40..79. C: path 80-81.
	for i := 0; i < 40; i++ {
		edges = append(edges, [2]int32{int32(i), int32((i + 1) % 40)})
	}
	for i := 0; i < 40; i++ {
		edges = append(edges, [2]int32{int32(40 + i), int32(40 + (i+1)%40)})
	}
	edges = append(edges, [2]int32{80, 81})
	g := graph.FromEdges(82, edges)

	m, c := env(36) // k = 6
	o := BuildOracle(c, graph.View{G: g, M: m}, 0, 35)
	qm := asym.NewMeter(36)
	got := make([]int32, g.N())
	for v := 0; v < g.N(); v++ {
		got[v] = o.Query(qm, nil, int32(v))
	}
	if !samePartition(got, refLabels(g)) {
		t.Fatal("oracle partition mismatch")
	}
	if !o.Connected(qm, nil, 0, 39) || o.Connected(qm, nil, 0, 40) ||
		o.Connected(qm, nil, 0, 80) || !o.Connected(qm, nil, 80, 81) {
		t.Fatal("Connected answers wrong")
	}
}

func TestOracleSublinearWrites(t *testing.T) {
	// Theorem 4.4: O(n/√ω) writes. With omega=256 (k=16) the writes must
	// be well below n.
	g := graph.RandomRegular(4000, 3, 41)
	omega := 256
	m, c := env(omega)
	BuildOracle(c, graph.View{G: g, M: m}, 0, 43)
	k := DefaultK(omega)
	limit := int64(20 * g.N() / k)
	if m.Writes() > limit {
		t.Fatalf("writes = %d > %d (n=%d k=%d)", m.Writes(), limit, g.N(), k)
	}
	if m.Writes() >= int64(g.N()) {
		t.Fatalf("writes = %d not sublinear in n=%d", m.Writes(), g.N())
	}
}

func TestOracleQueryCostNoWrites(t *testing.T) {
	g := graph.RandomRegular(1000, 3, 51)
	omega := 64
	m, c := env(omega)
	o := BuildOracle(c, graph.View{G: g, M: m}, 0, 53)
	k := DefaultK(omega)
	qm := asym.NewMeter(omega)
	var reads int64
	for v := 0; v < g.N(); v++ {
		before := qm.Snapshot()
		o.Query(qm, nil, int32(v))
		d := qm.Snapshot().Sub(before)
		if d.Writes != 0 {
			t.Fatalf("query wrote %d", d.Writes)
		}
		reads += d.Reads
	}
	avg := reads / int64(g.N())
	// O(k) expected plus O(log n') index lookup; allow 40k.
	if avg > int64(40*k) {
		t.Fatalf("avg query reads = %d, want O(k)=O(%d)", avg, k)
	}
}

func TestOracleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.RandomRegular(120, 3, seed)
		m, c := env(16)
		o := BuildOracle(c, graph.View{G: g, M: m}, 4, seed+3)
		qm := asym.NewMeter(16)
		got := make([]int32, g.N())
		for v := 0; v < g.N(); v++ {
			got[v] = o.Query(qm, nil, int32(v))
		}
		return samePartition(got, refLabels(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleOnBoundedTransform(t *testing.T) {
	// §6: oracle on the degree-bounded transform answers queries for the
	// original unbounded-degree graph.
	g := graph.PowerLaw(300, 4, 61)
	b := graph.BoundDegree(g, 3)
	m, c := env(64)
	o := BuildOracle(c, graph.View{G: b.G, M: m}, 0, 63)
	qm := asym.NewMeter(64)
	ref := refLabels(g)
	got := make([]int32, g.N())
	for v := 0; v < g.N(); v++ {
		got[v] = o.Query(qm, nil, b.Rep(v))
	}
	if !samePartition(got, ref) {
		t.Fatal("oracle-on-transform partition mismatch")
	}
}

func TestDefaultK(t *testing.T) {
	if DefaultK(64) != 8 || DefaultK(1) != 2 || DefaultK(100) != 10 {
		t.Fatalf("DefaultK: %d %d %d", DefaultK(64), DefaultK(1), DefaultK(100))
	}
}

func TestOracleEmptyGraph(t *testing.T) {
	g := graph.FromEdges(3, nil)
	m, c := env(16)
	o := BuildOracle(c, graph.View{G: g, M: m}, 4, 1)
	qm := asym.NewMeter(16)
	// Three singletons: all differ.
	a, b2, c2 := o.Query(qm, nil, 0), o.Query(qm, nil, 1), o.Query(qm, nil, 2)
	if a == b2 || b2 == c2 || a == c2 {
		t.Fatalf("singleton labels collide: %d %d %d", a, b2, c2)
	}
}
