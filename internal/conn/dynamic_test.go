package conn

import (
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// oracleLabels queries every vertex of the oracle's (logical) graph.
func oracleLabels(o *Oracle, n int, omega int) []int32 {
	m := asym.NewMeter(omega)
	sym := asym.NewSymTracker(0)
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		out[v] = o.Query(m, sym, int32(v))
	}
	return out
}

// TestApplyInsertionsMatchesRef chains insertion batches onto oracles built
// over graphs with many components and checks, after every batch, that the
// incremental labeling induces exactly the partition of a reference
// union-find over the updated edge multiset.
func TestApplyInsertionsMatchesRef(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"disconnected-cycles", graph.Disconnected(graph.Cycle(9), 8)},
		{"sparse-gnm", graph.GNM(120, 90, 5, false)},
		{"singletons", graph.FromEdges(40, [][2]int32{{0, 1}, {2, 3}})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			n := g.N()
			m, c := env(16)
			o := BuildOracle(c, graph.View{G: g, M: m}, 4, 9)

			ref := unionfind.NewRef(n)
			for _, e := range g.Edges() {
				ref.Union(e[0], e[1])
			}
			rng := graph.NewRNG(777)
			cur := o
			for batch := 0; batch < 4; batch++ {
				edges := make([][2]int32, 0, 10)
				for i := 0; i < 10; i++ {
					edges = append(edges, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
				}
				qm := asym.NewMeter(16)
				next, err := cur.ApplyInsertions(qm, asym.NewSymTracker(0), edges)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range edges {
					ref.Union(e[0], e[1])
				}
				got := oracleLabels(next, n, 16)
				if !samePartition(got, ref.Components()) {
					t.Fatalf("batch %d: incremental labels diverge from reference", batch)
				}
				// Untouched components keep their labels (canonical = min of
				// the merged labels): every label must already have been a
				// label of the previous oracle.
				prev := map[int32]bool{}
				for _, l := range oracleLabels(cur, n, 16) {
					prev[l] = true
				}
				for _, l := range got {
					if !prev[l] {
						t.Fatalf("batch %d: new label %d not drawn from previous labels", batch, l)
					}
				}
				// NumComponents stays consistent with its own definition:
				// the number of distinct labels that are stored centers.
				distinct := map[int32]bool{}
				cm := asym.NewMeter(16)
				for _, l := range got {
					if next.D.CenterIndex(cm, l) >= 0 {
						distinct[l] = true
					}
				}
				if next.NumComponents != len(distinct) {
					t.Fatalf("batch %d: NumComponents=%d, distinct stored labels=%d",
						batch, next.NumComponents, len(distinct))
				}
				cur = next
			}
		})
	}
}

// TestApplyInsertionsWritesBelowRebuild is the write-savings claim: folding
// an insertion batch into an existing oracle must cost strictly fewer
// asymmetric writes than rebuilding the oracle from scratch over the
// updated graph.
func TestApplyInsertionsWritesBelowRebuild(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(16), 12) // 12 components to merge
	n := g.N()
	m, c := env(64)
	o := BuildOracle(c, graph.View{G: g, M: m}, 4, 3)

	var edges [][2]int32
	rng := graph.NewRNG(5)
	for i := 0; i < 20; i++ {
		edges = append(edges, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	im := asym.NewMeter(64)
	inc, err := o.ApplyInsertions(im, asym.NewSymTracker(0), edges)
	if err != nil {
		t.Fatal(err)
	}
	if inc.NumComponents >= o.NumComponents {
		t.Fatalf("no merge happened: %d -> %d components", o.NumComponents, inc.NumComponents)
	}

	// From-scratch rebuild over the same final edge set.
	ov := graph.NewOverlay(g)
	if err := ov.AddEdges(edges); err != nil {
		t.Fatal(err)
	}
	gm := asym.NewMeter(64)
	g2 := ov.Build(gm)
	fm, fc := env(64)
	BuildOracle(fc, graph.View{G: g2, M: fm}, 4, 3)

	if im.Writes() >= fm.Writes() {
		t.Fatalf("incremental writes %d not below full-rebuild writes %d",
			im.Writes(), fm.Writes())
	}
	if im.Writes() == 0 {
		t.Fatal("merging batch should persist a nonempty remap")
	}
}

// TestApplyInsertionsNoMerge: edges inside existing components change
// nothing and persist nothing.
func TestApplyInsertionsNoMerge(t *testing.T) {
	g := graph.Cycle(12)
	m, c := env(16)
	o := BuildOracle(c, graph.View{G: g, M: m}, 3, 1)
	im := asym.NewMeter(16)
	inc, err := o.ApplyInsertions(im, asym.NewSymTracker(0), [][2]int32{{0, 6}, {2, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if inc.remap != nil {
		t.Fatalf("no-merge batch persisted remap %v", inc.remap)
	}
	if im.Writes() != 0 {
		t.Fatalf("no-merge batch charged %d writes", im.Writes())
	}
	if inc.NumComponents != o.NumComponents {
		t.Fatalf("components changed %d -> %d", o.NumComponents, inc.NumComponents)
	}
}

func TestApplyInsertionsRejectsOutOfRange(t *testing.T) {
	g := graph.Path(5)
	m, c := env(8)
	o := BuildOracle(c, graph.View{G: g, M: m}, 2, 1)
	for _, e := range [][2]int32{{0, 5}, {-1, 2}, {9, 9}} {
		if _, err := o.ApplyInsertions(asym.NewMeter(8), asym.NewSymTracker(0), [][2]int32{e}); err == nil {
			t.Fatalf("edge %v accepted", e)
		}
	}
}
