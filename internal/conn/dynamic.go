package conn

import (
	"errors"
	"fmt"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

// This file is the incremental half of the dynamic-update path.
//
// Edge *insertions* only ever merge components, so a connectivity oracle
// over graph G remains a correct connectivity oracle over G + E⁺ once the
// labels of the merged components are unified. ApplyInsertions performs
// exactly that unification — a union-find over the O(#components) touched
// labels in symmetric memory, persisted as a small remap table — instead of
// the full O(n/k)-write rebuild. This is where the write savings of the
// asymmetric model show up for evolving graphs: an insertion batch of b
// edges costs O(b·k) reads (one label query per endpoint) and O(#merged
// components) asymmetric writes, versus the Θ(n/k + ...) writes of
// reconstruction.
//
// Edge *deletions* have no monotone shortcut — a removal can split a
// component — but most removals do not: deleting a non-forest edge of a
// maintained spanning forest provably preserves connectivity, and deleting
// a forest edge preserves it whenever a surviving replacement edge
// reconnects the two tree halves. ApplyDeletions maintains that forest
// (seeded by EnsureForest, persisted through batches like the remap table)
// and absorbs exactly those deletions for O(batch) metered writes; only a
// genuine component split — no replacement edge across the cut — falls
// back to reconstruction, reported as the typed ErrNeedsRebuild so the
// serving layer's strategy ladder can step down to a rebuild.
//
// Long patch chains are collapsed by Rebase: a fresh decomposition over the
// current effective graph with a reseeded forest, nil remap, and chain
// depth 0 — the re-basing the ROADMAP names, scheduled by the serving
// layer after Config.RebaseEvery chained incremental batches.

// ErrNeedsRebuild is returned by ApplyDeletions when a deletion genuinely
// splits a component (no surviving replacement edge reconnects the two
// sides of a cut forest edge) — the one case the label-remap oracle cannot
// absorb incrementally and the caller must reconstruct (or Rebase).
var ErrNeedsRebuild = errors.New("conn: deletion splits a component, rebuild required")

// ApplyInsertions returns a new Oracle that answers connectivity over the
// base oracle's graph plus the inserted edges. The base oracle is not
// modified and keeps answering queries over the old edge set (copy-on-write
// snapshot discipline). Inserted edges must reference vertices of the base
// graph. Costs are charged to m: label queries for both endpoints of every
// edge (reads only) plus one write per word of the persisted remap table.
//
// The canonical label of a merged component is the smallest stored-center
// label among its parts, falling back to the smallest label when no part
// has a stored center — so components NumComponents counts keep
// stored-center labels, labels of untouched components are stable across
// incremental batches, and repeated application composes: the returned
// oracle may itself be extended by further ApplyInsertions calls.
//
// The returned oracle is for Query/Connected only: VisitSpanningForest
// still enumerates the *base* graph's spanning forest and must not be used
// on an oracle carrying insertions.
func (o *Oracle) ApplyInsertions(m *asym.Meter, sym *asym.SymTracker, edges [][2]int32) (*Oracle, error) {
	n := int32(o.D.Graph().N())
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return nil, fmt.Errorf("conn: inserted edge (%d,%d) out of range n=%d", e[0], e[1], n)
		}
	}

	// Union-find over component labels, held entirely in symmetric memory.
	// Labels are sparse vertex ids (stored-center ids or implicit small-
	// component minima), so the forest is a map rather than an array.
	parent := map[int32]int32{}
	var find func(x int32) int32
	find = func(x int32) int32 {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	// storedRoot[r] records whether the merged component rooted at r
	// contains a component that NumComponents counts (one with a stored
	// center). Labels absent from the map default to their own storedness.
	stored := func(lab int32) bool { return o.D.CenterIndex(m, lab) >= 0 }
	storedRoot := map[int32]bool{}
	rootStored := func(r int32) bool {
		if s, ok := storedRoot[r]; ok {
			return s
		}
		return stored(r)
	}

	// The maintained spanning forest (when present) gains every inserted
	// edge that merges two components: the two trees were disjoint, so the
	// merging edge links them without forming a cycle.
	var forest *Forest
	if o.forest != nil {
		forest = o.forest.Clone()
	}

	merges := 0 // merges of two counted components
	for _, e := range edges {
		lu := find(o.Query(m, sym, e[0]))
		lv := find(o.Query(m, sym, e[1]))
		m.Op(2)
		if lu == lv {
			continue
		}
		if forest != nil {
			forest.Link(e[0], e[1])
			m.Write(2)
		}
		// The canonical label of the merged component: the smallest label,
		// except that a stored-center label always beats an implicit one —
		// so a component NumComponents counts keeps a stored-center label,
		// and untouched labels stay stable across batches.
		su, sv := rootStored(lu), rootStored(lv)
		switch {
		case su && sv:
			merges++
			if lu > lv {
				lu, lv = lv, lu
			}
		case sv: // only lv stored: it wins
			lu, lv = lv, lu
		case !su && lu > lv: // neither stored: min wins
			lu, lv = lv, lu
		}
		parent[lv] = lu
		storedRoot[lu] = su || sv
		delete(storedRoot, lv)
		if sym != nil {
			sym.Acquire(2)
		}
	}
	if sym != nil {
		defer sym.Release(2 * len(parent))
	}

	// Flatten the union-find plus the base remap into the new oracle's
	// remap table. Old keys re-resolve through the new unions so chains
	// never deepen; every entry is one persisted (key, value) word pair.
	remap := make(map[int32]int32, len(parent)+len(o.remap))
	for k, v := range o.remap {
		remap[k] = find(v)
	}
	for k := range parent {
		if r := find(k); r != k {
			remap[k] = r
		}
	}
	if len(remap) == 0 {
		remap = nil
	}
	m.Write(2 * len(remap))

	return &Oracle{
		D:             o.D,
		labels:        o.labels,
		NumComponents: o.NumComponents - merges,
		remap:         remap,
		forest:        forest,
		chainDepth:    o.chainDepth + 1,
	}, nil
}

// ApplyDeletions returns a new Oracle that answers connectivity over the
// current effective graph minus the removed edges, absorbing the batch
// without reconstruction whenever connectivity is preserved. next must be
// the already-materialized post-batch graph (the serving layer builds the
// new CSR for every strategy anyway); it is consulted for surviving edge
// multiplicities and for the replacement-edge search. The receiver is not
// modified (copy-on-write snapshot discipline).
//
// Per removed edge: a non-forest edge costs O(1) reads (connectivity is
// untouched by construction — the forest still spans); a forest edge whose
// final multiplicity stays positive likewise; a forest edge actually lost
// cuts its tree and searches the smaller side for a replacement among the
// surviving edges — O(min side) reads, O(1) writes to relink. A cut with
// no replacement is a genuine component split, which the remap-based
// labeling cannot express: ErrNeedsRebuild (typed) tells the caller to
// step down to reconstruction; the receiver remains valid and untouched.
//
// Labels, NumComponents and the remap table are unchanged on success —
// exactly because success means no component split.
func (o *Oracle) ApplyDeletions(m *asym.Meter, sym *asym.SymTracker, removed [][2]int32, next *graph.Graph) (*Oracle, error) {
	if o.forest == nil {
		return nil, fmt.Errorf("%w: oracle carries no spanning forest (EnsureForest not called)", ErrNeedsRebuild)
	}
	if next == nil {
		return nil, errors.New("conn: ApplyDeletions needs the materialized post-batch graph")
	}
	n := int32(o.D.Graph().N())
	if int32(next.N()) != n {
		return nil, fmt.Errorf("conn: post-batch graph has n=%d, oracle has n=%d", next.N(), n)
	}
	for _, e := range removed {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return nil, fmt.Errorf("conn: removed edge (%d,%d) out of range n=%d", e[0], e[1], n)
		}
	}

	f := o.forest.Clone()
	for _, e := range removed {
		key := graph.NormEdge(e)
		u, v := key[0], key[1]
		if u == v {
			m.Op(1) // self-loops are never forest edges
			continue
		}
		m.Read(1) // forest membership probe
		if !f.Has(u, v) {
			continue // non-forest: the forest still spans, connectivity untouched
		}
		m.Read(1)
		if next.EdgeMultiplicity(u, v) > 0 { //wec:unmetered charged by the m.Read(1) above
			// A parallel copy survives the whole batch; the tree edge
			// stands on the surviving copy.
			continue
		}
		f.Cut(u, v)
		m.Write(2)
		side, member := f.smallerSide(m, u, v)
		if sym != nil {
			sym.Acquire(2 * len(side))
		}
		// Replacement search: any surviving edge from the smaller side to a
		// vertex outside it reconnects the cut (deletions never extend a
		// component, so every such neighbor lies on the other side).
		relinked := false
		for _, x := range side {
			for _, y := range next.Adj(int(x)) { //wec:unmetered each slot read is charged by the m.Read(1) in the loop body
				m.Read(1)
				if y != x && !member[y] {
					f.Link(x, y)
					m.Write(2)
					relinked = true
					break
				}
			}
			if relinked {
				break
			}
		}
		if sym != nil {
			sym.Release(2 * len(side))
		}
		if !relinked {
			return nil, fmt.Errorf("%w: no replacement for forest edge (%d,%d)", ErrNeedsRebuild, u, v)
		}
	}

	return &Oracle{
		D:             o.D,
		labels:        o.labels,
		NumComponents: o.NumComponents,
		remap:         o.remap,
		forest:        f,
		chainDepth:    o.chainDepth + 1,
	}, nil
}

// EnsureForest seeds the oracle's explicit spanning forest from
// spanning.Forest over its base graph's edge list, charging m. It must be
// called before the oracle is shared (construction time — the factory or
// test that built the oracle), and only on an unpatched oracle: a patched
// oracle's effective graph differs from its base graph, so a base-seeded
// forest would be wrong. No-op when a forest is already present.
//
//wec:mutator construction-time seeding, called before the oracle is shared
func (o *Oracle) EnsureForest(m *asym.Meter) {
	if o.forest != nil {
		return
	}
	if o.chainDepth != 0 {
		panic("conn: EnsureForest on a patched oracle")
	}
	g := o.D.Graph()
	o.forest = SeedForest(m, g.N(), g.Edges()) //wec:unmetered SeedForest charges the edge scan to m itself
}

// AdoptForest returns a copy of o carrying the given explicit spanning
// forest and chain depth — the recovery path: the durable store persists
// the forest and chain depth with each snapshot, and a restarted daemon
// hands them back to the freshly rebuilt oracle so the dynamic-update
// machinery resumes where the fleet left off instead of starting a new
// chain. The edges are validated against the oracle's base graph (present,
// acyclic, spanning); a stale or corrupt forest is rejected so the caller
// can fall back to EnsureForest.
//
//wec:unmetered recovery-path constructor; validation I/O is not part of the query/update cost model
func (o *Oracle) AdoptForest(edges [][2]int32, chainDepth int) (*Oracle, error) {
	if chainDepth < 0 {
		return nil, fmt.Errorf("conn: negative chain depth %d", chainDepth)
	}
	g := o.D.Graph()
	n := int32(g.N())
	ref := unionfind.NewRef(g.N())
	f := NewForest(g.N())
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return nil, fmt.Errorf("conn: forest edge (%d,%d) out of range n=%d", e[0], e[1], n)
		}
		if g.EdgeMultiplicity(e[0], e[1]) == 0 {
			return nil, fmt.Errorf("conn: forest edge (%d,%d) not in graph", e[0], e[1])
		}
		if !ref.Union(e[0], e[1]) {
			return nil, fmt.Errorf("conn: forest edge (%d,%d) closes a cycle", e[0], e[1])
		}
		f.Link(e[0], e[1])
	}
	// Spanning check: an acyclic subgraph of g spans iff it has exactly
	// n - components(g) edges — the size of any spanning forest of g.
	comps := unionfind.NewRef(g.N())
	want := 0
	for _, e := range g.Edges() {
		if e[0] != e[1] && comps.Union(e[0], e[1]) {
			want++
		}
	}
	if f.Size() != want {
		return nil, fmt.Errorf("conn: forest has %d edges, a spanning forest of the graph needs %d", f.Size(), want)
	}
	return &Oracle{
		D:             o.D,
		labels:        o.labels,
		NumComponents: o.NumComponents,
		remap:         o.remap,
		forest:        f,
		chainDepth:    chainDepth,
	}, nil
}

// Rebase collapses the oracle's remap chain onto a freshly computed
// decomposition over the current effective graph (vw must wrap its
// materialized CSR): a full reconstruction with fresh canonical labels, a
// nil remap table, a reseeded spanning forest, and chain depth 0. The
// receiver keeps serving its own snapshot untouched. This is the periodic
// re-basing the serving layer schedules after RebaseEvery chained
// incremental batches — it pays one reconstruction to reset the remap
// chain's per-batch copy cost and restore pristine query labels.
func (o *Oracle) Rebase(c *parallel.Ctx, vw graph.View, k int, seed uint64) *Oracle {
	nx := BuildOracle(c, vw, k, seed)
	nx.EnsureForest(vw.M)
	return nx
}
