package conn

import (
	"fmt"

	"repro/internal/asym"
)

// This file is the incremental half of the dynamic-update path: edge
// *insertions* only ever merge components, so a connectivity oracle over
// graph G remains a correct connectivity oracle over G + E⁺ once the labels
// of the merged components are unified. ApplyInsertions performs exactly
// that unification — a union-find over the O(#components) touched labels in
// symmetric memory, persisted as a small remap table — instead of the full
// O(n/k)-write rebuild. This is where the write savings of the asymmetric
// model show up for evolving graphs: an insertion batch of b edges costs
// O(b·k) reads (one label query per endpoint) and O(#merged components)
// asymmetric writes, versus the Θ(n/k + ...) writes of reconstruction.
// Deletions can split components and have no such monotone shortcut; the
// serving layer falls back to a full rebuild for any batch containing one.

// ApplyInsertions returns a new Oracle that answers connectivity over the
// base oracle's graph plus the inserted edges. The base oracle is not
// modified and keeps answering queries over the old edge set (copy-on-write
// snapshot discipline). Inserted edges must reference vertices of the base
// graph. Costs are charged to m: label queries for both endpoints of every
// edge (reads only) plus one write per word of the persisted remap table.
//
// The canonical label of a merged component is the smallest stored-center
// label among its parts, falling back to the smallest label when no part
// has a stored center — so components NumComponents counts keep
// stored-center labels, labels of untouched components are stable across
// incremental batches, and repeated application composes: the returned
// oracle may itself be extended by further ApplyInsertions calls.
//
// The returned oracle is for Query/Connected only: VisitSpanningForest
// still enumerates the *base* graph's spanning forest and must not be used
// on an oracle carrying insertions.
func (o *Oracle) ApplyInsertions(m *asym.Meter, sym *asym.SymTracker, edges [][2]int32) (*Oracle, error) {
	n := int32(o.D.Graph().N())
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return nil, fmt.Errorf("conn: inserted edge (%d,%d) out of range n=%d", e[0], e[1], n)
		}
	}

	// Union-find over component labels, held entirely in symmetric memory.
	// Labels are sparse vertex ids (stored-center ids or implicit small-
	// component minima), so the forest is a map rather than an array.
	parent := map[int32]int32{}
	var find func(x int32) int32
	find = func(x int32) int32 {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	// storedRoot[r] records whether the merged component rooted at r
	// contains a component that NumComponents counts (one with a stored
	// center). Labels absent from the map default to their own storedness.
	stored := func(lab int32) bool { return o.D.CenterIndex(m, lab) >= 0 }
	storedRoot := map[int32]bool{}
	rootStored := func(r int32) bool {
		if s, ok := storedRoot[r]; ok {
			return s
		}
		return stored(r)
	}

	merges := 0 // merges of two counted components
	for _, e := range edges {
		lu := find(o.Query(m, sym, e[0]))
		lv := find(o.Query(m, sym, e[1]))
		m.Op(2)
		if lu == lv {
			continue
		}
		// The canonical label of the merged component: the smallest label,
		// except that a stored-center label always beats an implicit one —
		// so a component NumComponents counts keeps a stored-center label,
		// and untouched labels stay stable across batches.
		su, sv := rootStored(lu), rootStored(lv)
		switch {
		case su && sv:
			merges++
			if lu > lv {
				lu, lv = lv, lu
			}
		case sv: // only lv stored: it wins
			lu, lv = lv, lu
		case !su && lu > lv: // neither stored: min wins
			lu, lv = lv, lu
		}
		parent[lv] = lu
		storedRoot[lu] = su || sv
		delete(storedRoot, lv)
		if sym != nil {
			sym.Acquire(2)
		}
	}
	if sym != nil {
		defer sym.Release(2 * len(parent))
	}

	// Flatten the union-find plus the base remap into the new oracle's
	// remap table. Old keys re-resolve through the new unions so chains
	// never deepen; every entry is one persisted (key, value) word pair.
	remap := make(map[int32]int32, len(parent)+len(o.remap))
	for k, v := range o.remap {
		remap[k] = find(v)
	}
	for k := range parent {
		if r := find(k); r != k {
			remap[k] = r
		}
	}
	if len(remap) == 0 {
		remap = nil
	}
	m.Write(2 * len(remap))

	return &Oracle{
		D:             o.D,
		labels:        o.labels,
		NumComponents: o.NumComponents - merges,
		remap:         remap,
	}, nil
}
