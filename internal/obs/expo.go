package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition format
// (version 0.0.4): one # HELP / # TYPE header per family in registration
// order, then one sample line per series sorted by label values —
// counters and gauges as a single sample, histograms as the cumulative
// _bucket{le=...} ladder plus _sum and _count. The output is deterministic
// for a fixed registry state, which the tests (and the smoke harnesses'
// scrape checks) rely on.

// ExpositionContentType is the Content-Type of the /metrics response.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the registry to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.typ))
		bw.WriteByte('\n')
		for _, s := range f.series {
			if f.typ == TypeHistogram {
				writeHistogram(bw, f, s)
				continue
			}
			bw.WriteString(f.name)
			writeLabels(bw, f.labels, s.vals, "", 0)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with the
// le label appended after the series labels, then _sum and _count.
func writeHistogram(bw *bufio.Writer, f familySnapshot, s seriesSnapshot) {
	var cum int64
	for i, c := range s.bucketCounts {
		cum += c
		le := "+Inf"
		if i < len(f.buckets) {
			le = formatValue(f.buckets[i])
		}
		bw.WriteString(f.name)
		bw.WriteString("_bucket")
		writeLabels(bw, f.labels, s.vals, le, 1)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(f.name)
	bw.WriteString("_sum")
	writeLabels(bw, f.labels, s.vals, "", 0)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(s.sum))
	bw.WriteByte('\n')
	bw.WriteString(f.name)
	bw.WriteString("_count")
	writeLabels(bw, f.labels, s.vals, "", 0)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
}

// writeLabels renders {k="v",...}; extraLe (when extra == 1) appends the
// histogram bucket's le label. No braces are written for a label-less
// sample.
func writeLabels(bw *bufio.Writer, labels, vals []string, extraLe string, extra int) {
	if len(labels)+extra == 0 {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(vals[i]))
		bw.WriteByte('"')
	}
	if extra == 1 {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(extraLe)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// formatValue renders a float sample value the way Prometheus expects
// (shortest round-trippable form; integers without a decimal point).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash, quote
// and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline; quotes are
// legal there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns the GET /metrics endpoint serving this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		_ = r.WritePrometheus(w)
	})
}
