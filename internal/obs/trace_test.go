package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTracerCapturesAboveThreshold(t *testing.T) {
	tr := NewTracer(8, -1) // capture everything
	req := tr.Start("g1", "batch")
	req.Phase("decode")
	req.Add("pool_queue", time.Millisecond, time.Millisecond)
	req.SetDetail("queries=4")
	req.Finish(200)

	got := tr.Snapshot()
	if len(got) != 1 {
		t.Fatalf("captured %d traces, want 1", len(got))
	}
	c := got[0]
	if c.Graph != "g1" || c.Op != "batch" || c.Status != 200 || c.Detail != "queries=4" {
		t.Fatalf("trace fields wrong: %+v", c)
	}
	if len(c.Spans) != 2 || c.Spans[0].Name != "decode" || c.Spans[1].Name != "pool_queue" {
		t.Fatalf("spans wrong: %+v", c.Spans)
	}
	if c.Spans[1].OffsetMs != 1 || c.Spans[1].DurMs != 1 {
		t.Fatalf("explicit span offsets wrong: %+v", c.Spans[1])
	}
}

func TestTracerSkipsBelowThreshold(t *testing.T) {
	tr := NewTracer(8, time.Hour)
	req := tr.Start("g1", "query")
	req.Phase("decode")
	req.Finish(200)
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("fast request captured: %+v", got)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4, -1)
	for i := 0; i < 10; i++ {
		req := tr.Start("g", "query")
		req.SetDetail(string(rune('a' + i)))
		req.Finish(200)
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	// Oldest-first: the survivors are the last four finishes g..j.
	for i, want := range []string{"g", "h", "i", "j"} {
		if got[i].Detail != want {
			t.Fatalf("ring order wrong at %d: %+v", i, got)
		}
	}
}

func TestTracerDefaults(t *testing.T) {
	tr := NewTracer(0, 0)
	if cap(tr.ring) != DefaultTraceCap {
		t.Fatalf("default cap = %d, want %d", cap(tr.ring), DefaultTraceCap)
	}
	if tr.Threshold() != DefaultSlowQuery {
		t.Fatalf("default threshold = %v, want %v", tr.Threshold(), DefaultSlowQuery)
	}
}

func TestNilTracerAndReqAreNoOps(t *testing.T) {
	var tr *Tracer
	req := tr.Start("g", "query")
	req.Phase("decode")
	req.Add("x", 0, 0)
	req.SetDetail("d")
	if req.Elapsed() != 0 {
		t.Fatal("nil req Elapsed != 0")
	}
	req.Finish(200)
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot non-nil")
	}
	// The handler still serves an empty page for a nil tracer.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var page TracesPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("nil tracer handler: %v", err)
	}
	if len(page.Traces) != 0 {
		t.Fatalf("nil tracer page has traces: %+v", page)
	}
}

func TestTracerHandlerJSON(t *testing.T) {
	tr := NewTracer(8, -1)
	req := tr.Start("g1", "update")
	req.Phase("decode")
	req.Finish(200)
	req = tr.Start("g1", "query")
	req.Finish(400)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var page TracesPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Seen != 2 || page.Captured != 2 || len(page.Traces) != 2 {
		t.Fatalf("page = %+v", page)
	}
	if page.ThresholdMs != -1 {
		t.Fatalf("ThresholdMs = %v, want -1 (capture all)", page.ThresholdMs)
	}
	if page.Traces[1].Status != 400 {
		t.Fatalf("trace order or status wrong: %+v", page.Traces)
	}
}

func TestTracerSeenCountsSkipped(t *testing.T) {
	tr := NewTracer(8, time.Hour)
	for i := 0; i < 3; i++ {
		tr.Start("g", "query").Finish(200)
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var page TracesPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Seen != 3 || page.Captured != 0 {
		t.Fatalf("seen/captured = %d/%d, want 3/0", page.Seen, page.Captured)
	}
}
