// Package obs is the serving stack's dependency-free observability core:
// a metrics registry of atomic counters, gauges and fixed-bucket histograms
// with Prometheus text-format exposition (expo.go), a bounded ring of
// recent slow-request traces (trace.go), and the build identity of the
// running binary (buildinfo.go).
//
// The design is shaped by the engine's hot-path discipline. Instruments are
// resolved once (Vec.With at setup time) into plain structs of atomics, so
// the per-event cost of Counter.Add and Histogram.Observe is a handful of
// atomic operations with zero allocation — safe inside //wec:noalloc
// functions. Values the serving layer already tracks in its own atomics are
// exported through func instruments (FuncVec), which are evaluated only at
// scrape time and cost the hot path nothing at all.
//
// Label cardinality is bounded by construction: label values are the fixed
// vocabularies of the fleet (graph names, query kinds, rebuild strategies,
// cache layers), never per-request data like vertex ids, and
// Registry.DeleteLabeled retires a deleted graph's series so the scrape
// surface tracks the live fleet.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Type names an instrument family's Prometheus metric type.
type Type string

// The metric types the registry exposes.
const (
	// TypeCounter is a monotonically increasing count.
	TypeCounter Type = "counter"
	// TypeGauge is a value that can go up and down.
	TypeGauge Type = "gauge"
	// TypeHistogram is a fixed-bucket distribution with sum and count.
	TypeHistogram Type = "histogram"
)

// DurationBuckets is the default histogram layout for latencies in seconds:
// 10µs to 10s in a 1-2.5-5 progression, covering WAL fsyncs at the low end
// and full oracle rebuilds at the high end.
var DurationBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default histogram layout for request/batch sizes:
// powers of four from 1 to the serving layer's MaxBatch (2^20).
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// ByteBuckets is the default histogram layout for on-disk sizes: powers of
// eight from 1 KiB to 8 GiB.
var ByteBuckets = []float64{1 << 10, 8 << 10, 64 << 10, 512 << 10, 4 << 20, 32 << 20, 256 << 20, 2 << 30, 8 << 30}

// Registry is an ordered set of metric families. All methods are safe for
// concurrent use; families expose in registration order so scrapes are
// stable across the process lifetime.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	order  []*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one named metric with a fixed label schema and one series per
// distinct label-value tuple.
type family struct {
	name    string
	help    string
	typ     Type
	labels  []string
	buckets []float64 // histograms only

	series map[string]*series // key: label values joined with \xff
}

// series is one (family, label values) instrument. Exactly one of the
// value fields is set, matching the family type; fn (when non-nil) wins —
// it is the scrape-time callback of a func instrument.
type series struct {
	vals []string
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() float64
}

// metricNameOK guards family and label names: Prometheus identifier
// grammar, no embedded quoting needed at exposition time.
func metricNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// getFamily returns the named family, creating it on first use. A name
// re-registered with a different type, label schema or bucket layout is a
// programmer error and panics — silently forking a family would corrupt
// the exposition.
func (r *Registry) getFamily(name, help string, typ Type, buckets []float64, labels []string) *family {
	if !metricNameOK(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !metricNameOK(l) {
			panic(fmt.Sprintf("obs: invalid label name %q in %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) || len(f.buckets) != len(buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets, series: map[string]*series{}}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

// seriesKey joins label values into a family's series map key.
func seriesKey(vals []string) string { return strings.Join(vals, "\xff") }

// getSeries returns the family's series for vals, creating it with mk on
// first use. Caller holds r.mu via the vec methods below.
func (r *Registry) getSeries(f *family, vals []string, mk func() *series) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(vals)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.vals = append([]string(nil), vals...)
	f.series[key] = s
	return s
}

// DeleteLabeled removes every series, in every family, whose label named
// label carries the value value — how the serving layer retires a deleted
// graph's series so the scrape surface stays bounded by the live fleet.
// Families themselves remain registered (an empty family still exposes its
// HELP/TYPE header). Instrument handles already resolved for a deleted
// series keep working but are no longer scraped.
func (r *Registry) DeleteLabeled(label, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.order {
		li := -1
		for i, l := range f.labels {
			if l == label {
				li = i
				break
			}
		}
		if li < 0 {
			continue
		}
		for key, s := range f.series {
			if s.vals[li] == value {
				delete(f.series, key)
			}
		}
	}
}

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use, but counters are normally resolved through
// CounterVec.With so they are exposed at /metrics.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0; negative deltas would
// silently break Prometheus rate() math and are the caller's bug).
//
//wec:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//wec:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float-valued metric that can move in both directions, stored
// as IEEE-754 bits in one atomic word.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
//
//wec:noalloc
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bucket bounds are set at
// family registration and shared by every series; counts are per-bucket
// atomics (the +Inf bucket is implicit as the last slot) and the sum is
// accumulated with a compare-and-swap on its float bits — Observe performs
// only atomic operations and never allocates, which is what lets the
// engine's //wec:noalloc query path observe latencies directly.
type Histogram struct {
	upper  []float64
	counts []atomic.Int64 // len(upper)+1; last is +Inf
	sum    atomic.Uint64  // math.Float64bits of the running sum
}

// Observe records one value.
//
//wec:noalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterVec is a counter family; With resolves one labeled series.
type CounterVec struct {
	r *Registry
	f *family
}

// NewCounterVec registers (or returns the already-registered) counter
// family with the given label schema.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r: r, f: r.getFamily(name, help, TypeCounter, nil, labels)}
}

// With returns the counter for the given label values, creating the series
// on first use. Resolve once at setup time and keep the handle; With takes
// the registry lock.
func (v *CounterVec) With(values ...string) *Counter {
	return v.r.getSeries(v.f, values, func() *series { return &series{c: &Counter{}} }).c
}

// GaugeVec is a gauge family; With resolves one labeled series.
type GaugeVec struct {
	r *Registry
	f *family
}

// NewGaugeVec registers (or returns the already-registered) gauge family
// with the given label schema.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r: r, f: r.getFamily(name, help, TypeGauge, nil, labels)}
}

// With returns the gauge for the given label values, creating the series on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.r.getSeries(v.f, values, func() *series { return &series{g: &Gauge{}} }).g
}

// HistogramVec is a histogram family; With resolves one labeled series.
type HistogramVec struct {
	r *Registry
	f *family
}

// NewHistogramVec registers (or returns the already-registered) histogram
// family with the given bucket upper bounds (ascending; +Inf is implicit)
// and label schema. Nil buckets select DurationBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DurationBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: metric %q buckets not ascending", name))
		}
	}
	return &HistogramVec{r: r, f: r.getFamily(name, help, TypeHistogram, buckets, labels)}
}

// With returns the histogram for the given label values, creating the
// series on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.r.getSeries(v.f, values, func() *series {
		return &series{h: &Histogram{upper: v.f.buckets, counts: make([]atomic.Int64, len(v.f.buckets)+1)}}
	}).h
}

// FuncVec is a family of scrape-time callback instruments: each series
// reports whatever its function returns when /metrics is read. This is the
// zero-hot-path-cost way to export values the serving layer already tracks
// in its own atomics (cache hit counters, the published epoch, pool
// telemetry). The callback must be safe to call from any goroutine and
// should be fast; it runs under the registry lock during exposition.
type FuncVec struct {
	r *Registry
	f *family
}

// NewFuncVec registers (or returns the already-registered) func-instrument
// family exposed with the given metric type (TypeCounter or TypeGauge).
func (r *Registry) NewFuncVec(name, help string, typ Type, labels ...string) *FuncVec {
	if typ != TypeCounter && typ != TypeGauge {
		panic(fmt.Sprintf("obs: func metric %q must be counter or gauge, got %q", name, typ))
	}
	return &FuncVec{r: r, f: r.getFamily(name, help, typ, nil, labels)}
}

// Set installs (or replaces) the callback behind the given label values.
func (v *FuncVec) Set(fn func() float64, values ...string) {
	s := v.r.getSeries(v.f, values, func() *series { return &series{} })
	v.r.mu.Lock()
	s.fn = fn
	v.r.mu.Unlock()
}

// snapshotFamilies copies the family list and per-family sorted series so
// exposition can run without holding the lock across the writer. Func
// instruments are evaluated here, under the lock, so a concurrent
// DeleteLabeled cannot race a callback whose target is being retired.
func (r *Registry) snapshotFamilies() []familySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familySnapshot, 0, len(r.order))
	for _, f := range r.order {
		fs := familySnapshot{name: f.name, help: f.help, typ: f.typ, labels: f.labels, buckets: f.buckets}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := seriesSnapshot{vals: s.vals}
			switch {
			case s.fn != nil:
				ss.value = s.fn()
			case s.c != nil:
				ss.value = float64(s.c.Value())
			case s.g != nil:
				ss.value = s.g.Value()
			case s.h != nil:
				ss.bucketCounts = make([]int64, len(s.h.counts))
				for i := range s.h.counts {
					ss.bucketCounts[i] = s.h.counts[i].Load()
				}
				ss.sum = s.h.Sum()
			}
			fs.series = append(fs.series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// familySnapshot is one family's exposition-time state.
type familySnapshot struct {
	name    string
	help    string
	typ     Type
	labels  []string
	buckets []float64
	series  []seriesSnapshot
}

// seriesSnapshot is one series' exposition-time state.
type seriesSnapshot struct {
	vals         []string
	value        float64 // counter/gauge/func
	bucketCounts []int64 // histogram (non-cumulative; +Inf last)
	sum          float64 // histogram
}
