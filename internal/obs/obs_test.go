package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("t_total", "help", "graph").With("g1")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGaugeVec("t_gauge", "help", "graph").With("g1")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	h := r.NewHistogramVec("t_seconds", "help", []float64{0.1, 1, 10}, "graph").With("g1")
	h.Observe(0.05) // bucket 0
	h.Observe(0.5)  // bucket 1
	h.Observe(100)  // +Inf
	if got := h.Count(); got != 3 {
		t.Fatalf("histogram count = %d, want 3", got)
	}
	if got := h.Sum(); math.Abs(got-100.55) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 100.55", got)
	}
}

func TestVecWithReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("t_total", "help", "graph")
	if v.With("a") != v.With("a") {
		t.Fatal("With returned distinct handles for identical label values")
	}
	if v.With("a") == v.With("b") {
		t.Fatal("With returned the same handle for distinct label values")
	}
}

func TestReRegisterSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("t_total", "help", "graph")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type did not panic")
		}
	}()
	r.NewGaugeVec("t_total", "help", "graph")
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("t_queries_total", "Total queries.", "graph", "kind").With("g1", "conn").Add(7)
	r.NewGaugeVec("t_epoch", "Published epoch.", "graph").With("g1").Set(42)
	h := r.NewHistogramVec("t_dur_seconds", "Latency.", []float64{0.01, 0.1}, "graph").With("g1")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	r.NewFuncVec("t_fn", "Callback gauge.", TypeGauge, "graph").Set(func() float64 { return 9 }, "g1")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	exp, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	for _, fam := range []string{"t_queries_total", "t_epoch", "t_dur_seconds", "t_fn"} {
		if !exp.HasFamily(fam) {
			t.Errorf("family %q missing from exposition", fam)
		}
	}
	want := map[string]float64{
		"t_queries_total":     7,
		"t_epoch":             42,
		"t_fn":                9,
		"t_dur_seconds_count": 3,
	}
	got := map[string]float64{}
	bucketCum := map[string]float64{}
	for _, s := range exp.Samples {
		if s.Name == "t_dur_seconds_bucket" {
			bucketCum[s.Labels["le"]] = s.Value
			continue
		}
		got[s.Name] = s.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("sample %s = %v, want %v", name, got[name], v)
		}
	}
	// Buckets must be cumulative and end at +Inf == _count.
	if bucketCum["0.01"] != 1 || bucketCum["0.1"] != 2 || bucketCum["+Inf"] != 3 {
		t.Errorf("cumulative buckets wrong: %v", bucketCum)
	}
	if got["t_queries_total"] != 7 {
		t.Errorf("counter sample = %v", got["t_queries_total"])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("t_total", "help", "graph").With("we\"ird\\name\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("escaped exposition does not parse: %v\n%s", err, sb.String())
	}
	if len(exp.Samples) != 1 || exp.Samples[0].Labels["graph"] != "we\"ird\\name\n" {
		t.Fatalf("label did not round-trip: %+v", exp.Samples)
	}
}

func TestDeleteLabeled(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("t_total", "help", "graph", "kind")
	v.With("g1", "conn").Inc()
	v.With("g2", "conn").Inc()
	r.NewGaugeVec("t_epoch", "help", "graph").With("g1").Set(1)
	r.DeleteLabeled("graph", "g1")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if strings.Contains(text, `graph="g1"`) {
		t.Fatalf("deleted graph's series still exposed:\n%s", text)
	}
	if !strings.Contains(text, `graph="g2"`) {
		t.Fatalf("surviving graph's series missing:\n%s", text)
	}
	// Family headers survive an emptied family.
	if !strings.Contains(text, "# TYPE t_epoch gauge") {
		t.Fatalf("emptied family lost its header:\n%s", text)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("t_total", "help").With().Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ExpositionContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ExpositionContentType)
	}
	if _, err := ParseExposition(rec.Body); err != nil {
		t.Fatalf("handler output does not parse: %v", err)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("t_total", "help", "graph").With("g")
	h := r.NewHistogramVec("t_seconds", "help", nil, "graph").With("g")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.001)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(strings.NewReader(sb.String())); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if c.Value() != h.Count() {
		t.Fatalf("counter %d != histogram count %d", c.Value(), h.Count())
	}
}

func TestObserveNoAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("t_total", "help", "graph").With("g")
	g := r.NewGaugeVec("t_gauge", "help", "graph").With("g")
	h := r.NewHistogramVec("t_seconds", "help", nil, "graph").With("g")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("hot-path instrument ops allocated %v/op, want 0", allocs)
	}
}

func TestFuncVecEvaluatedAtScrape(t *testing.T) {
	r := NewRegistry()
	var v float64 = 1
	r.NewFuncVec("t_fn", "help", TypeCounter, "graph").Set(func() float64 { return v }, "g")
	scrape := func() string {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if !strings.Contains(scrape(), `t_fn{graph="g"} 1`) {
		t.Fatalf("func value not exposed:\n%s", scrape())
	}
	v = 2
	if !strings.Contains(scrape(), `t_fn{graph="g"} 2`) {
		t.Fatalf("func re-evaluation not exposed:\n%s", scrape())
	}
}

func TestParseRejectsUndeclaredSample(t *testing.T) {
	_, err := ParseExposition(strings.NewReader("mystery_total 1\n"))
	if err == nil {
		t.Fatal("sample with no TYPE header parsed")
	}
}

func TestBuildInfoPopulated(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Fatal("BuildInfo.GoVersion empty")
	}
	if b.String() == "" {
		t.Fatal("BuildInfo.String empty")
	}
}

func TestDurationBucketsCoverTypicalLatencies(t *testing.T) {
	h := NewRegistry().NewHistogramVec("t_seconds", "help", nil, "graph").With("g")
	for _, d := range []time.Duration{5 * time.Microsecond, time.Millisecond, time.Second, time.Minute} {
		h.Observe(d.Seconds())
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
}
