package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-tracing half of the package: a per-request span
// recorder for the HTTP layer (Req) feeding a bounded ring of recent slow
// requests (Tracer), served as JSON at GET /debug/traces. Tracing is
// deliberately HTTP-layer-only — a Req allocates, so it is built where a
// request already allocates (decoders, response writers), never inside the
// engine's zero-alloc query path; the pool-queue and answer spans are
// reported up by the engine as plain durations instead.

// DefaultSlowQuery is the capture threshold selected by a zero Tracer
// threshold: requests at least this slow are kept.
const DefaultSlowQuery = 100 * time.Millisecond

// DefaultTraceCap is the slow-request ring size selected by a non-positive
// Tracer capacity.
const DefaultTraceCap = 64

// Span is one phase of a traced request, with its offset from the request
// start. Durations are reported in milliseconds, matching the /stats
// convention for JSON surfaces (docs/observability.md maps the units).
type Span struct {
	// Name identifies the phase: admit, decode, pool_queue, answer,
	// update, encode.
	Name string `json:"name"`
	// OffsetMs is the span start relative to the request start.
	OffsetMs float64 `json:"offset_ms"`
	// DurMs is the span duration.
	DurMs float64 `json:"dur_ms"`
}

// Trace is one captured slow request.
type Trace struct {
	// Start is the request's wall-clock start time.
	Start time.Time `json:"start"`
	// Graph is the target graph's name.
	Graph string `json:"graph"`
	// Op is the request kind: query, batch or update.
	Op string `json:"op"`
	// Detail is a short bounded description (e.g. "queries=512").
	Detail string `json:"detail,omitempty"`
	// Status is the HTTP status the request finished with.
	Status int `json:"status"`
	// TotalMs is the end-to-end request duration.
	TotalMs float64 `json:"total_ms"`
	// Spans lists the request's phases in order.
	Spans []Span `json:"spans"`
}

// Tracer keeps the most recent slow requests in a bounded ring: a finished
// request is recorded only when its total duration reaches the threshold,
// and the oldest capture rotates out beyond the capacity. All methods are
// safe for concurrent use; a nil *Tracer is valid and records nothing.
type Tracer struct {
	thresholdNs atomic.Int64
	seen        atomic.Int64 // requests finished (captured or not)

	mu       sync.Mutex
	ring     []Trace
	next     int
	captured int64
}

// NewTracer returns a tracer keeping up to capacity slow requests
// (non-positive selects DefaultTraceCap). A zero threshold selects
// DefaultSlowQuery; a negative threshold captures every request.
func NewTracer(capacity int, threshold time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	t := &Tracer{ring: make([]Trace, 0, capacity)}
	t.SetThreshold(threshold)
	return t
}

// SetThreshold replaces the capture threshold (zero selects
// DefaultSlowQuery, negative captures everything).
func (t *Tracer) SetThreshold(threshold time.Duration) {
	if threshold == 0 {
		threshold = DefaultSlowQuery
	}
	if threshold < 0 {
		threshold = -1 // any non-negative total qualifies
	}
	t.thresholdNs.Store(int64(threshold))
}

// Threshold returns the current capture threshold (negative means every
// request is captured).
func (t *Tracer) Threshold() time.Duration {
	return time.Duration(t.thresholdNs.Load())
}

// record keeps tr if it qualifies, rotating the oldest capture out.
func (t *Tracer) record(tr Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.captured++
}

// Snapshot returns the captured traces, oldest first.
func (t *Tracer) Snapshot() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// TracesPage is the GET /debug/traces response body.
type TracesPage struct {
	// ThresholdMs is the active capture threshold (negative: capture all).
	ThresholdMs float64 `json:"threshold_ms"`
	// Seen counts requests observed by the tracer since start.
	Seen int64 `json:"seen"`
	// Captured counts requests that met the threshold (including ones the
	// ring has since rotated out).
	Captured int64 `json:"captured"`
	// Traces holds the ring contents, oldest first.
	Traces []Trace `json:"traces"`
}

// Handler returns the GET /debug/traces endpoint serving the ring as JSON.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		page := TracesPage{Traces: []Trace{}}
		if t != nil {
			thr := t.Threshold()
			page.ThresholdMs = float64(thr.Microseconds()) / 1000
			if thr < 0 {
				page.ThresholdMs = -1
			}
			page.Seen = t.seen.Load()
			page.Traces = t.Snapshot()
			t.mu.Lock()
			page.Captured = t.captured
			t.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(page)
	})
}

// Req accumulates one in-flight request's spans; Finish hands it to the
// tracer when the total duration meets the threshold. A nil *Req (from a
// nil Tracer) is valid: every method is a no-op, so handlers never branch
// on tracing being enabled.
type Req struct {
	t     *Tracer
	start time.Time
	mark  time.Time
	tr    Trace
}

// Start begins tracing one request against the named graph.
func (t *Tracer) Start(graphName, op string) *Req {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Req{t: t, start: now, mark: now, tr: Trace{Start: now, Graph: graphName, Op: op}}
}

// Phase closes the current phase: a span named name covering the time from
// the previous span's end (or the request start) to now.
func (r *Req) Phase(name string) {
	if r == nil {
		return
	}
	now := time.Now()
	r.tr.Spans = append(r.tr.Spans, Span{
		Name:     name,
		OffsetMs: ms(r.mark.Sub(r.start)),
		DurMs:    ms(now.Sub(r.mark)),
	})
	r.mark = now
}

// Add appends an explicit span at the given offset from the request start
// — used when one measured interval splits into sub-phases (the engine
// reports the pool queue wait inside a batch dispatch as a duration, not a
// callback). The phase mark advances to the span's end when that is later.
func (r *Req) Add(name string, offset, dur time.Duration) {
	if r == nil {
		return
	}
	r.tr.Spans = append(r.tr.Spans, Span{Name: name, OffsetMs: ms(offset), DurMs: ms(dur)})
	if end := r.start.Add(offset + dur); end.After(r.mark) {
		r.mark = end
	}
}

// Elapsed returns the time since the request started.
func (r *Req) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// SetDetail attaches a short bounded description (never per-request
// unbounded data; the label-hygiene rule applies to trace output too).
func (r *Req) SetDetail(d string) {
	if r == nil {
		return
	}
	r.tr.Detail = d
}

// Finish completes the request with its HTTP status, recording the trace
// when the total duration meets the tracer's threshold.
func (r *Req) Finish(status int) {
	if r == nil {
		return
	}
	total := time.Since(r.start)
	r.t.seen.Add(1)
	if total < time.Duration(r.t.thresholdNs.Load()) {
		return
	}
	r.tr.Status = status
	r.tr.TotalMs = ms(total)
	r.t.record(r.tr)
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
