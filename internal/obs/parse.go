package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is a minimal parser/validator for the Prometheus text
// exposition format — the consumer half of expo.go. It exists so the test
// suite and the wecbench smoke harnesses can assert that /metrics serves
// well-formed output with every expected family present, without pulling a
// Prometheus client library into the module. It validates structure
// (HELP/TYPE headers, sample shape, numeric values, samples belonging to a
// declared family) rather than implementing every corner of the spec.

// Sample is one parsed exposition sample line.
type Sample struct {
	// Name is the full sample name (histogram samples keep their
	// _bucket/_sum/_count suffix).
	Name string
	// Labels holds the sample's label pairs (including histogram le).
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// Exposition is one parsed scrape.
type Exposition struct {
	// Families maps each declared family name to its TYPE.
	Families map[string]Type
	// Samples holds every sample line in input order.
	Samples []Sample
}

// HasFamily reports whether the scrape declared the named family.
func (e *Exposition) HasFamily(name string) bool {
	_, ok := e.Families[name]
	return ok
}

// ParseExposition reads one Prometheus text-format scrape, returning its
// families and samples, or an error describing the first malformed line.
// Every sample must belong to a family declared by a preceding # TYPE line
// (histogram samples via their _bucket/_sum/_count suffixes) — an
// undeclared sample is how a typo'd family name or a missing header
// surfaces in the smoke checks.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Families: map[string]Type{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeader(line, exp); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !sampleDeclared(exp, s.Name) {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, s.Name)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// parseHeader handles # HELP / # TYPE lines (other comments pass through).
func parseHeader(line string, exp *Exposition) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		typ := Type(fields[3])
		if typ != TypeCounter && typ != TypeGauge && typ != TypeHistogram && typ != "summary" && typ != "untyped" {
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		exp.Families[fields[2]] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

// sampleDeclared reports whether name belongs to a declared family,
// accounting for histogram sample suffixes.
func sampleDeclared(exp *Exposition, name string) bool {
	if _, ok := exp.Families[name]; ok {
		return true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if exp.Families[base] == TypeHistogram {
			return true
		}
	}
	return false
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		if !metricNameOK(s.Name) {
			return s, fmt.Errorf("invalid sample name %q", s.Name)
		}
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses k="v" pairs (escaped values per the text format).
func parseLabels(body string, out map[string]string) error {
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !metricNameOK(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		body = body[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
				continue
			}
			if c == '"' {
				out[name] = val.String()
				body = strings.TrimPrefix(strings.TrimSpace(body[i+1:]), ",")
				body = strings.TrimSpace(body)
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", name)
		}
	}
	return nil
}
