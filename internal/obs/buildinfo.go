package obs

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary so scraped metrics and logs can be
// correlated with an exact build: the Go toolchain, the module version, and
// the VCS state stamped by `go build` when the source tree is a checkout.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
	// Version is the main module version ("(devel)" for a checkout build).
	Version string `json:"version,omitempty"`
	// Revision is the VCS commit the binary was built from, when stamped.
	Revision string `json:"vcs_revision,omitempty"`
	// Time is the commit timestamp (RFC 3339), when stamped.
	Time string `json:"vcs_time,omitempty"`
	// Dirty reports uncommitted local modifications at build time.
	Dirty bool `json:"vcs_dirty,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, read once from
// runtime/debug.ReadBuildInfo. Fields the toolchain did not stamp (e.g. VCS
// data in a test binary) are left empty.
func Build() BuildInfo {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the build identity as a single human-readable line, the
// body of `oracled -version`.
func (b BuildInfo) String() string {
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Dirty {
		rev += "-dirty"
	}
	s := fmt.Sprintf("revision %s (%s)", rev, b.GoVersion)
	if b.Time != "" {
		s += " built from commit of " + b.Time
	}
	return s
}
