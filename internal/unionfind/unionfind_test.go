package unionfind

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
)

func TestDSUBasic(t *testing.T) {
	m := asym.NewMeter(4)
	d := New(m, 5)
	if !d.Union(0, 1) {
		t.Fatal("first union false")
	}
	if d.Union(1, 0) {
		t.Fatal("repeat union true")
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Fatal("Same wrong")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if !d.Same(1, 2) {
		t.Fatal("transitive union broken")
	}
	if d.Same(4, 0) {
		t.Fatal("singleton merged")
	}
}

func TestDSUChargesWrites(t *testing.T) {
	m := asym.NewMeter(4)
	d := New(m, 100)
	if m.Writes() != 100 {
		t.Fatalf("init writes = %d", m.Writes())
	}
	before := m.Writes()
	for i := 0; i < 99; i++ {
		d.Union(int32(i), int32(i+1))
	}
	if m.Writes() == before {
		t.Fatal("unions performed no writes")
	}
}

func TestDSUMatchesRef(t *testing.T) {
	f := func(ops [][2]uint8) bool {
		const n = 40
		m := asym.NewMeter(1)
		d := New(m, n)
		r := NewRef(n)
		for _, op := range ops {
			a, b := int32(op[0]%n), int32(op[1]%n)
			if d.Union(a, b) != r.Union(a, b) {
				return false
			}
		}
		for i := int32(0); i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d.Same(i, j) != r.Same(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRefComponents(t *testing.T) {
	r := NewRef(6)
	r.Union(0, 1)
	r.Union(2, 3)
	r.Union(3, 4)
	comps := r.Components()
	want := []int32{0, 0, 2, 2, 2, 5}
	for i := range want {
		if comps[i] != want[i] {
			t.Fatalf("comps = %v, want %v", comps, want)
		}
	}
}

func TestFindSelf(t *testing.T) {
	m := asym.NewMeter(1)
	d := New(m, 3)
	for i := int32(0); i < 3; i++ {
		if d.Find(i) != i {
			t.Fatalf("Find(%d) = %d", i, d.Find(i))
		}
	}
}
