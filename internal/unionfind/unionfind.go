// Package unionfind provides disjoint-set forests. Two flavors exist:
//
//   - DSU: a metered union-find whose every parent/rank access is charged to
//     an asym.Meter. It is the classic *write-heavy* connectivity baseline
//     the paper's algorithms are compared against (path compression makes
//     it fast on a symmetric RAM but performs Θ(m α(n)) asymmetric writes
//     in the worst case).
//   - Ref: an unmetered reference implementation used by tests as ground
//     truth for component structure.
package unionfind

import "repro/internal/asym"

// DSU is a metered disjoint-set forest with union by rank and path
// compression. Parents and ranks live in asymmetric memory.
type DSU struct {
	parent *asym.Array
	rank   *asym.Array
}

// New returns a DSU over n singleton elements, charging the initializing
// writes to m.
func New(m *asym.Meter, n int) *DSU {
	d := &DSU{parent: asym.NewArray(m, n), rank: asym.NewArray(m, n)}
	for i := 0; i < n; i++ {
		d.parent.Set(i, int32(i))
	}
	return d
}

// Find returns the representative of x, compressing the path (each
// compression step is an asymmetric write — the cost the paper's
// write-efficient algorithms avoid).
func (d *DSU) Find(x int32) int32 {
	root := x
	for {
		p := d.parent.Get(int(root))
		if p == root {
			break
		}
		root = p
	}
	for x != root {
		next := d.parent.Get(int(x))
		if next != root { // skip the no-op write when already compressed
			d.parent.Set(int(x), root)
		}
		x = next
	}
	return root
}

// Union merges the sets of a and b; returns true when they were distinct.
func (d *DSU) Union(a, b int32) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	qa, qb := d.rank.Get(int(ra)), d.rank.Get(int(rb))
	switch {
	case qa < qb:
		d.parent.Set(int(ra), rb)
	case qa > qb:
		d.parent.Set(int(rb), ra)
	default:
		d.parent.Set(int(rb), ra)
		d.rank.Set(int(ra), qa+1)
	}
	return true
}

// Same reports whether a and b are in one set.
func (d *DSU) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }

// Ref is the unmetered reference union-find for test oracles.
type Ref struct {
	parent []int32
}

// NewRef returns a reference DSU over n singletons.
func NewRef(n int) *Ref {
	r := &Ref{parent: make([]int32, n)}
	for i := range r.parent {
		r.parent[i] = int32(i)
	}
	return r
}

// Find returns the representative of x.
func (r *Ref) Find(x int32) int32 {
	for r.parent[x] != x {
		r.parent[x] = r.parent[r.parent[x]]
		x = r.parent[x]
	}
	return x
}

// Union merges the sets of a and b; returns true when they were distinct.
func (r *Ref) Union(a, b int32) bool {
	ra, rb := r.Find(a), r.Find(b)
	if ra == rb {
		return false
	}
	r.parent[rb] = ra
	return true
}

// Same reports whether a and b are in one set.
func (r *Ref) Same(a, b int32) bool { return r.Find(a) == r.Find(b) }

// Components returns a canonical component label per element: the minimum
// element id in each set.
func (r *Ref) Components() []int32 {
	n := len(r.parent)
	minOf := make(map[int32]int32, 16)
	for i := 0; i < n; i++ {
		root := r.Find(int32(i))
		if cur, ok := minOf[root]; !ok || int32(i) < cur {
			minOf[root] = int32(i)
		}
	}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = minOf[r.Find(int32(i))]
	}
	return out
}
