package oracle

import (
	"errors"
	"testing"

	"repro/internal/asym"
	"repro/internal/bicc"
	"repro/internal/conn"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func buildAll(t *testing.T, g *graph.Graph, omega int) map[string]QueryOracle {
	t.Helper()
	out := map[string]QueryOracle{}
	for _, f := range Factories() {
		m := asym.NewMeter(omega)
		c := parallel.NewCtx(m, asym.NewSymTracker(0))
		out[f.Name] = f.Build(c, graph.View{G: g, M: m}, 0, 7)
	}
	return out
}

// TestBuiltinsRegistered pins the built-in registry contents: both paper
// oracles present, the six kinds in the stable serving order, correct
// pairwise arity.
func TestBuiltinsRegistered(t *testing.T) {
	names := Names()
	hasConn, hasBicc := false, false
	for _, n := range names {
		hasConn = hasConn || n == "conn"
		hasBicc = hasBicc || n == "bicc"
	}
	if !hasConn || !hasBicc {
		t.Fatalf("builtins missing from registry: %v", names)
	}

	wantOrder := []Kind{KindConnected, KindComponent, KindBridge, KindArticulation, KindBiconnected, KindTwoEdgeConnected}
	ks := Kinds()
	if len(ks) < len(wantOrder) {
		t.Fatalf("registry has %d kinds, want at least %d", len(ks), len(wantOrder))
	}
	for i, k := range wantOrder {
		if ks[i] != k {
			t.Fatalf("kind order[%d] = %q, want %q (full: %v)", i, ks[i], k, ks)
		}
	}

	pairwise := map[Kind]bool{
		KindConnected: true, KindComponent: false,
		KindBridge: true, KindArticulation: false, KindBiconnected: true,
		KindTwoEdgeConnected: true,
	}
	for k, want := range pairwise {
		s, ok := SpecOf(k)
		if !ok || s.Pairwise != want {
			t.Errorf("SpecOf(%s) = %+v ok=%v, want pairwise=%v", k, s, ok, want)
		}
	}
	if _, ok := SpecOf("nope"); ok {
		t.Error("SpecOf accepted an unregistered kind")
	}
}

// TestAdaptersMatchDirect checks the thin-adapter property: every kind
// answered through the registry interface must equal the direct oracle call
// and charge the same cost.
func TestAdaptersMatchDirect(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(15), 4)
	omega := 16
	built := buildAll(t, g, omega)

	dm := asym.NewMeter(omega)
	dc := parallel.NewCtx(dm, asym.NewSymTracker(0))
	co := conn.BuildOracle(dc, graph.View{G: g, M: dm}, 0, 7)
	bo := bicc.BuildOracle(dc, graph.View{G: g, M: dm}, nil, 0, 7)

	rng := graph.NewRNG(3)
	n := g.N()
	for i := 0; i < 500; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		am, dm2 := asym.NewMeter(omega), asym.NewMeter(omega)
		sym := asym.NewSymTracker(0)

		for _, tc := range []struct {
			oracle QueryOracle
			q      Query
			want   Answer
		}{
			{built["conn"], Query{KindConnected, u, v}, boolAns(co.Connected(dm2, sym, u, v))},
			{built["conn"], Query{KindComponent, u, 0}, labelAns(co.Query(dm2, sym, u))},
			{built["bicc"], Query{KindBridge, u, v}, boolAns(bo.IsBridge(dm2, sym, u, v))},
			{built["bicc"], Query{KindArticulation, u, 0}, boolAns(bo.IsArticulation(dm2, sym, u))},
			{built["bicc"], Query{KindBiconnected, u, v}, boolAns(bo.Biconnected(dm2, sym, u, v))},
			{built["bicc"], Query{KindTwoEdgeConnected, u, v}, boolAns(bo.OneEdgeConnected(dm2, sym, u, v))},
		} {
			got, err := tc.oracle.Answer(am, sym, tc.q)
			if err != nil {
				t.Fatalf("%s(%d,%d): %v", tc.q.Kind, u, v, err)
			}
			if !sameAnswer(got, tc.want) {
				t.Fatalf("%s(%d,%d): adapter %v, direct %v", tc.q.Kind, u, v, render(got), render(tc.want))
			}
		}
		// Thin means free: identical costs on both meters.
		if am.Snapshot() != dm2.Snapshot() {
			t.Fatalf("adapter cost %v != direct cost %v", am.Snapshot(), dm2.Snapshot())
		}
	}

	// Kinds outside a factory's family are rejected, not misanswered.
	if _, err := built["conn"].Answer(asym.NewMeter(omega), nil, Query{Kind: KindBridge, U: 0, V: 1}); err == nil {
		t.Error("conn adapter answered a bicc kind")
	}
	if _, err := built["bicc"].Answer(asym.NewMeter(omega), nil, Query{Kind: KindComponent, U: 0}); err == nil {
		t.Error("bicc adapter answered a conn kind")
	}
}

// TestCounters checks the optional counting interfaces resolve through the
// interface values the factories return.
func TestCounters(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(8), 5)
	built := buildAll(t, g, 16)
	cc, ok := built["conn"].(ComponentCounter)
	if !ok || cc.NumComponents() != 5 {
		t.Fatalf("conn ComponentCounter: ok=%v components=%v", ok, cc)
	}
	bc, ok := built["bicc"].(BCCCounter)
	if !ok || bc.NumBCC() != 5 {
		t.Fatalf("bicc BCCCounter: ok=%v bccs=%v", ok, bc)
	}
}

// TestBiccPatchSurface pins the bicc adapter's patch-first contract: both
// appliers are advertised, a provably structure-preserving batch is
// absorbed by returning the receiver unchanged, and anything that could
// move the block-cut tree is refused with the typed ErrNeedsRebuild (the
// serving layer's signal to defer the rebuild to the first query).
func TestBiccPatchSurface(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(8), 2) // two 8-cycles: one block each
	built := buildAll(t, g, 16)
	ia, ok := built["bicc"].(InsertionApplier)
	if !ok {
		t.Fatal("bicc adapter must implement InsertionApplier")
	}
	da, ok := built["bicc"].(DeletionApplier)
	if !ok {
		t.Fatal("bicc adapter must implement DeletionApplier")
	}
	m := asym.NewMeter(16)
	sym := asym.NewSymTracker(0)

	// A chord inside one cycle and a self-loop are no-ops: the same
	// instance comes back (identity, not a copy — the serving layer's
	// carried-forward detection relies on it).
	same, err := ia.ApplyInsertions(m, sym, [][2]int32{{0, 3}, {5, 5}})
	if err != nil {
		t.Fatalf("within-block insertions refused: %v", err)
	}
	if same != built["bicc"] {
		t.Fatal("no-op insertion patch did not return the receiver")
	}
	// An edge between the two cycles merges blocks: refused, typed.
	if _, err := ia.ApplyInsertions(m, sym, [][2]int32{{0, 8}}); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("merging insertion: err=%v, want ErrNeedsRebuild", err)
	}

	// Deleting one copy of a doubled edge keeps multiplicity >= 1... the
	// no-op rule needs multiplicity >= 2 *after* removal, so removing a
	// plain cycle edge (multiplicity 0 after) is refused.
	postG := graph.FromEdges(g.N(), g.Edges()[1:])
	if _, err := da.ApplyDeletions(m, sym, [][2]int32{g.Edges()[0]}, postG); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("structural deletion: err=%v, want ErrNeedsRebuild", err)
	}
	// A self-loop removal is always a no-op.
	loopG := graph.FromEdges(g.N(), append(append([][2]int32{}, g.Edges()...), [2]int32{2, 2}))
	loopBuilt := buildAll(t, loopG, 16)
	lda := loopBuilt["bicc"].(DeletionApplier)
	same, err = lda.ApplyDeletions(m, sym, [][2]int32{{2, 2}}, g)
	if err != nil {
		t.Fatalf("self-loop deletion refused: %v", err)
	}
	if same != loopBuilt["bicc"] {
		t.Fatal("no-op deletion patch did not return the receiver")
	}
}

// TestInsertionApplier checks the incremental path composes through the
// interface: applying a merging batch yields an oracle answering over the
// extended edge set.
func TestInsertionApplier(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(10), 3) // vertices 0..9, 10..19, 20..29
	built := buildAll(t, g, 16)
	ia, ok := built["conn"].(InsertionApplier)
	if !ok {
		t.Fatal("conn adapter must implement InsertionApplier")
	}
	m := asym.NewMeter(16)
	sym := asym.NewSymTracker(0)
	next, err := ia.ApplyInsertions(m, sym, [][2]int32{{0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := next.Answer(m, sym, Query{Kind: KindConnected, U: 0, V: 15})
	if err != nil || ans.Bool == nil || !*ans.Bool {
		t.Fatalf("merged components not connected: %v err=%v", render(ans), err)
	}
	if next.(ComponentCounter).NumComponents() != 2 {
		t.Fatalf("components = %d, want 2", next.(ComponentCounter).NumComponents())
	}
	// The base oracle is untouched (copy-on-write snapshot discipline).
	old, _ := built["conn"].Answer(m, sym, Query{Kind: KindConnected, U: 0, V: 15})
	if *old.Bool {
		t.Fatal("base oracle mutated by ApplyInsertions")
	}
}

// TestDeletionApplierAndRebaser pins the dynamic-update capability surface
// of the built-ins: the conn adapter implements DeletionApplier (absorbing
// split-free removals, refusing genuine splits with ErrNeedsRebuild),
// Rebaser (chain depth + collapse) and ForestCarrier (persist/adopt); the
// bicc adapter has no re-base path (its appliers are the no-op patch
// predicates, TestBiccPatchSurface).
func TestDeletionApplierAndRebaser(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(10), 3)
	built := buildAll(t, g, 16)
	if _, ok := built["bicc"].(Rebaser); ok {
		t.Fatal("bicc adapter claims a re-base path")
	}
	da, ok := built["conn"].(DeletionApplier)
	if !ok {
		t.Fatal("conn adapter must implement DeletionApplier")
	}
	m := asym.NewMeter(16)
	sym := asym.NewSymTracker(0)

	// A cycle edge is split-free: absorbed without error, same components.
	cut := g.Edges()[0]
	edges := append([][2]int32{}, g.Edges()[1:]...)
	next := graph.FromEdges(g.N(), edges)
	patched, err := da.ApplyDeletions(m, sym, [][2]int32{cut}, next)
	if err != nil {
		t.Fatal(err)
	}
	if patched.(ComponentCounter).NumComponents() != 3 {
		t.Fatalf("components %d, want 3", patched.(ComponentCounter).NumComponents())
	}
	if patched.(Rebaser).ChainDepth() != 1 {
		t.Fatalf("depth %d, want 1", patched.(Rebaser).ChainDepth())
	}

	// Cutting the now-path island genuinely splits: typed refusal.
	cut2 := edges[0]
	next2 := graph.FromEdges(g.N(), edges[1:])
	if _, err := patched.(DeletionApplier).ApplyDeletions(m, sym, [][2]int32{cut2}, next2); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("split refusal: %v, want ErrNeedsRebuild", err)
	}

	// Re-base collapses the chain; the forest round-trips through the
	// carrier hooks.
	c := parallel.NewCtx(asym.NewMeter(16), asym.NewSymTracker(0))
	rb := patched.(Rebaser).Rebase(c, graph.View{G: next, M: asym.NewMeter(16)}, 0, 7)
	if rb.(Rebaser).ChainDepth() != 0 {
		t.Fatalf("rebased depth %d", rb.(Rebaser).ChainDepth())
	}
	fc := rb.(ForestCarrier)
	forest := fc.ForestEdges()
	if len(forest) == 0 {
		t.Fatal("rebased oracle carries no forest")
	}
	adopted, err := fc.AdoptForest(forest, 42)
	if err != nil {
		t.Fatal(err)
	}
	if adopted.(Rebaser).ChainDepth() != 42 {
		t.Fatalf("adopted depth %d, want 42", adopted.(Rebaser).ChainDepth())
	}
	if _, err := fc.AdoptForest([][2]int32{{0, 25}}, 0); err == nil {
		t.Fatal("stale forest adopted")
	}
}

// TestRegisterCustomKind is the extensibility contract: a third-party
// factory plugs a new kind into the registry and answers through the same
// generic dispatch, with no engine involvement.
func TestRegisterCustomKind(t *testing.T) {
	err := Register(Factory{
		Name:  "parity-test",
		Specs: []Spec{{Kind: "same-parity", Pairwise: true}},
		Build: func(c *parallel.Ctx, vw graph.View, k int, seed uint64) QueryOracle {
			return parityOracle{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := SpecOf("same-parity"); !ok || !s.Pairwise {
		t.Fatalf("custom kind not resolvable: %+v ok=%v", s, ok)
	}
	g := graph.Path(4)
	var custom QueryOracle
	for _, f := range Factories() {
		if f.Name == "parity-test" {
			m := asym.NewMeter(8)
			custom = f.Build(parallel.NewCtx(m, nil), graph.View{G: g, M: m}, 0, 1)
		}
	}
	if custom == nil {
		t.Fatal("custom factory not listed")
	}
	ans, err := custom.Answer(asym.NewMeter(8), nil, Query{Kind: "same-parity", U: 2, V: 4})
	if err != nil || ans.Bool == nil || !*ans.Bool {
		t.Fatalf("custom oracle: %v err=%v", render(ans), err)
	}

	// Duplicate kinds and names are rejected.
	if err := Register(Factory{
		Name:  "parity-test-2",
		Specs: []Spec{{Kind: "same-parity"}},
		Build: func(*parallel.Ctx, graph.View, int, uint64) QueryOracle { return parityOracle{} },
	}); err == nil {
		t.Error("duplicate kind accepted")
	}
	if err := Register(Factory{
		Name:  "conn",
		Specs: []Spec{{Kind: "conn-dup"}},
		Build: func(*parallel.Ctx, graph.View, int, uint64) QueryOracle { return parityOracle{} },
	}); err == nil {
		t.Error("duplicate factory name accepted")
	}
	if err := Register(Factory{Name: "broken"}); err == nil {
		t.Error("malformed factory accepted")
	}
	if err := Register(Factory{
		Name:  "self-dup",
		Specs: []Spec{{Kind: "twice", Pairwise: true}, {Kind: "twice"}},
		Build: func(*parallel.Ctx, graph.View, int, uint64) QueryOracle { return parityOracle{} },
	}); err == nil {
		t.Error("factory listing one kind twice accepted")
	}
}

type parityOracle struct{}

func (parityOracle) Answer(m *asym.Meter, _ *asym.SymTracker, q Query) (Answer, error) {
	m.Read(2)
	v := q.U%2 == q.V%2
	return Answer{Bool: &v}, nil
}

func boolAns(v bool) Answer   { return Answer{Bool: &v} }
func labelAns(v int32) Answer { return Answer{Label: &v} }

func sameAnswer(a, b Answer) bool {
	if (a.Bool == nil) != (b.Bool == nil) || (a.Label == nil) != (b.Label == nil) {
		return false
	}
	if a.Bool != nil && *a.Bool != *b.Bool {
		return false
	}
	if a.Label != nil && *a.Label != *b.Label {
		return false
	}
	return true
}

func render(a Answer) any {
	switch {
	case a.Bool != nil:
		return *a.Bool
	case a.Label != nil:
		return *a.Label
	}
	return nil
}
