package oracle

import (
	"testing"

	"repro/internal/lintdoc"
)

// TestExportedAPIDocumented enforces godoc coverage on the oracle
// registry's exported surface (revive "exported"-rule semantics, run from
// go test so no linter install is needed): plugged-in oracles program
// against this package, so its API contract must be written down.
func TestExportedAPIDocumented(t *testing.T) {
	missing, err := lintdoc.Check(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}
