// Package oracle defines the pluggable query-oracle surface of the serving
// layer: a QueryOracle interface that any of the paper's (or future) query
// structures can implement, plus a process-wide kind registry that maps
// query kinds ("connected", "bridge", ...) to the factory that builds an
// oracle answering them.
//
// The serving engine (internal/serve) no longer hardcodes the two paper
// oracles; it asks this registry which factories exist, builds one oracle
// per factory over each graph snapshot, and dispatches queries by kind.
// A new oracle — a spanning-forest enumerator, a 2-edge-connectivity
// oracle — plugs in by calling Register from an init function and never
// touches the engine.
//
// Contract mirrored from the underlying oracles: a QueryOracle is immutable
// after construction, queries charge only the Meter/SymTracker they are
// handed (so any number of goroutines may query concurrently with private
// meters), and queries perform no asymmetric writes.
package oracle

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Kind names a query type answerable by some registered oracle.
type Kind string

// The built-in kinds. Connected and Component are served by the Theorem 4.4
// connectivity oracle; Bridge, Articulation, Biconnected and
// TwoEdgeConnected by the Theorem 5.3 biconnectivity oracle (2-edge
// connectivity is the §5.3 OneEdgeConnected query: no single edge removal
// separates the pair).
const (
	KindConnected        Kind = "connected"    // u, v — same component?
	KindComponent        Kind = "component"    // u — canonical component label
	KindBridge           Kind = "bridge"       // u, v — is edge {u,v} a bridge?
	KindArticulation     Kind = "articulation" // u — is u a cut vertex?
	KindBiconnected      Kind = "biconnected"  // u, v — biconnected pair?
	KindTwoEdgeConnected Kind = "2ecc"         // u, v — same 2-edge-connected component?
)

// Spec describes one query kind: its wire name and whether it takes a
// vertex pair (U and V both validated) or a single vertex (V ignored).
type Spec struct {
	Kind     Kind `json:"kind"`
	Pairwise bool `json:"pairwise"`
}

// Query is one oracle query in registry terms. V is meaningless for
// non-pairwise kinds.
type Query struct {
	Kind Kind
	U, V int32
}

// Answer is a successful query answer: exactly one of Bool/Label is set.
type Answer struct {
	Bool  *bool
	Label *int32
}

// QueryOracle answers queries of the kinds its factory declares, over one
// immutable graph snapshot. Answer must only be called with in-range
// vertices of a declared kind; costs are charged to m, symmetric scratch to
// sym. Implementations must be safe for concurrent use with per-caller
// meters (the conn/bicc concurrency contract).
type QueryOracle interface {
	Answer(m *asym.Meter, sym *asym.SymTracker, q Query) (Answer, error)
}

// AnswerVal is the unboxed answer of the allocation-free query fast path:
// for boolean kinds IsBool is true and Bool carries the answer; otherwise
// Label carries the component label. Unlike Answer, nothing here is
// pointer-typed, so returning one never escapes to the heap.
type AnswerVal struct {
	Label  int32
	Bool   bool
	IsBool bool
}

// FastAnswerer is the optional zero-alloc query capability. An oracle that
// implements it answers hot-path queries without boxing the result and with
// a reusable per-worker scratch:
//
//   - NewScratch returns a workspace a serving worker allocates once and
//     passes back on every AnswerFast call (nil when the oracle needs
//     none). A scratch must only depend on the oracle's *type* — snapshot
//     swaps hand the same scratch to the next epoch's oracle instance.
//   - AnswerFast must be observably equivalent to Answer: same answers,
//     same errors, same charged costs. The serving engine's dispatch
//     prefers it and falls back to Answer for oracles without it (or when
//     the legacy-dispatch benchmark knob forces the boxed path).
//
// A scratch is worker-local and never used concurrently; the oracle itself
// must remain safe for concurrent AnswerFast calls with distinct scratches.
type FastAnswerer interface {
	NewScratch() any
	AnswerFast(m *asym.Meter, sym *asym.SymTracker, q Query, scratch any) (AnswerVal, error)
}

// InsertionApplier is implemented by oracles that can fold an
// insertion-only edge batch into a new oracle with o(rebuild) writes
// instead of a full reconstruction (conn.Oracle.ApplyInsertions). The
// receiver is not modified; the returned oracle serves the extended edge
// multiset.
type InsertionApplier interface {
	ApplyInsertions(m *asym.Meter, sym *asym.SymTracker, edges [][2]int32) (QueryOracle, error)
}

// ErrNeedsRebuild is the typed refusal of the patch appliers: the batch
// cannot be absorbed incrementally (a deletion genuinely splits a
// component; an inserted edge merges biconnected blocks) and the caller
// must step down the strategy ladder — a full reconstruction, or for a
// Deferrable factory the lazy on-demand rebuild. It signals a strategy
// decision, not a failure — the receiver oracle is untouched and still
// valid for its own snapshot.
var ErrNeedsRebuild = errors.New("oracle: update batch needs a rebuild")

// DeletionApplier mirrors InsertionApplier for edge removals: oracles that
// maintain enough structure (conn's explicit spanning forest) to absorb a
// deletion batch with O(batch) writes whenever connectivity is preserved.
// next is the already-materialized post-batch graph — the serving layer
// builds the new CSR for every strategy, so the replacement-edge search
// runs over it instead of a private overlay. A batch the oracle cannot
// absorb returns an error wrapping ErrNeedsRebuild.
type DeletionApplier interface {
	ApplyDeletions(m *asym.Meter, sym *asym.SymTracker, removed [][2]int32, next *graph.Graph) (QueryOracle, error)
}

// Rebaser is implemented by oracles whose incremental patches form a chain
// (remap tables, maintained forests) that should periodically be collapsed
// onto a fresh construction. ChainDepth reports how many patched
// generations separate the oracle from its last full build; Rebase pays one
// reconstruction over the current graph to reset it to zero.
type Rebaser interface {
	ChainDepth() int
	Rebase(c *parallel.Ctx, vw graph.View, k int, seed uint64) QueryOracle
}

// ForestCarrier is implemented by oracles that maintain an explicit
// spanning forest across dynamic updates. ForestEdges is the persistence
// accessor (normalized, sorted; nil when absent); AdoptForest is the
// recovery constructor — it returns a copy of the oracle carrying a
// previously persisted forest and chain depth, validating the forest
// against the oracle's graph (an error means the caller keeps the oracle's
// own freshly seeded forest).
type ForestCarrier interface {
	ForestEdges() [][2]int32
	AdoptForest(edges [][2]int32, chainDepth int) (QueryOracle, error)
}

// ComponentCounter exposes the connected-component count of the oracle's
// snapshot (components with at least one stored center).
type ComponentCounter interface{ NumComponents() int }

// BCCCounter exposes the biconnected-component count of the snapshot.
type BCCCounter interface{ NumBCC() int }

// CacheStatser is implemented by oracles whose fast path memoizes derived
// per-snapshot structures (the bicc cluster local-graph cache). The
// serving layer sums these counters into /stats; caching must never change
// answers or charged costs — hits replay the fill-time charges.
type CacheStatser interface {
	CacheStats() (hits, misses, evictions int64)
}

// Factory builds the oracle serving one family of kinds. Build runs under a
// parallel.Ctx (construction work and depth are metered) and must return an
// immutable oracle; k <= 0 selects the factory's default (the paper's
// k = ⌈√ω⌉ for both built-ins).
type Factory struct {
	// Name identifies the factory ("conn", "bicc") in build-cost telemetry.
	Name string
	// Specs lists the kinds this factory's oracles answer.
	Specs []Spec
	// Build constructs the oracle over the graph behind vw, charging vw.M.
	Build func(c *parallel.Ctx, vw graph.View, k int, seed uint64) QueryOracle
	// Deferrable marks a factory whose rebuild the serving layer may defer:
	// instead of reconstructing the oracle on every accepted update batch,
	// the engine carries the last-built instance forward as *stale* and
	// rebuilds on demand the first time one of the factory's kinds is
	// queried at a newer snapshot. The staleness contract: a stale oracle's
	// answers correspond exactly to the epoch it was built at (its tag in
	// the snapshot), never a mixture — the serving layer reports that epoch
	// alongside any answer a bounded-staleness query accepts from it.
	// Non-deferrable factories (conn, whose kinds gate admission semantics)
	// are rebuilt or patched on every publish as before.
	Deferrable bool
}

var (
	regMu     sync.RWMutex
	factories []Factory
	kindOwner = map[Kind]string{} // kind -> factory name
)

// Register adds a factory to the process-wide registry. It fails if the
// factory name or any of its kinds is already taken, or if the factory is
// malformed; registration order is preserved and defines the stable kind
// order reported by Kinds.
func Register(f Factory) error {
	if f.Name == "" || f.Build == nil || len(f.Specs) == 0 {
		return fmt.Errorf("oracle: factory needs a name, specs, and a build func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, existing := range factories {
		if existing.Name == f.Name {
			return fmt.Errorf("oracle: factory %q already registered", f.Name)
		}
	}
	seen := map[Kind]bool{}
	for _, s := range f.Specs {
		if owner, ok := kindOwner[s.Kind]; ok {
			return fmt.Errorf("oracle: kind %q already registered by factory %q", s.Kind, owner)
		}
		if seen[s.Kind] {
			return fmt.Errorf("oracle: factory %q lists kind %q twice", f.Name, s.Kind)
		}
		seen[s.Kind] = true
	}
	for _, s := range f.Specs {
		kindOwner[s.Kind] = f.Name
	}
	factories = append(factories, f)
	return nil
}

// MustRegister is Register that panics on error; for init-time use.
func MustRegister(f Factory) {
	if err := Register(f); err != nil {
		panic(err)
	}
}

// Factories returns the registered factories in registration order.
func Factories() []Factory {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]Factory(nil), factories...)
}

// Kinds returns every registered kind in registration order.
func Kinds() []Kind {
	regMu.RLock()
	defer regMu.RUnlock()
	var ks []Kind
	for _, f := range factories {
		for _, s := range f.Specs {
			ks = append(ks, s.Kind)
		}
	}
	return ks
}

// SpecOf returns the spec of a registered kind.
func SpecOf(k Kind) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, f := range factories {
		for _, s := range f.Specs {
			if s.Kind == k {
				return s, true
			}
		}
	}
	return Spec{}, false
}

// Names returns the registered factory names, sorted (registration-order
// independent, so output built from it is stable).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(factories))
	for _, f := range factories {
		out = append(out, f.Name)
	}
	sort.Strings(out)
	return out
}
