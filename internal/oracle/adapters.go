package oracle

import (
	"errors"
	"fmt"

	"repro/internal/asym"
	"repro/internal/bicc"
	"repro/internal/conn"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// This file adapts the two paper oracles to the QueryOracle interface and
// registers them as the built-in factories. The adapters are thin by
// design: they translate Query/Answer and forward the caller's meter and
// tracker untouched, so the cost charged per query is exactly what a direct
// oracle call would charge.

// ConnAdapter serves the connectivity kinds over a conn.Oracle
// (Theorem 4.4). It also carries the oracle's full dynamic-update surface:
// the incremental-insertion path (InsertionApplier), the forest-backed
// deletion path (DeletionApplier), remap-chain re-basing (Rebaser), the
// persisted-forest recovery hooks (ForestCarrier), and the component count
// (ComponentCounter).
type ConnAdapter struct{ O *conn.Oracle }

// Answer dispatches connected/component queries.
func (a ConnAdapter) Answer(m *asym.Meter, sym *asym.SymTracker, q Query) (Answer, error) {
	switch q.Kind {
	case KindConnected:
		v := a.O.Connected(m, sym, q.U, q.V)
		return Answer{Bool: &v}, nil
	case KindComponent:
		v := a.O.Query(m, sym, q.U)
		return Answer{Label: &v}, nil
	}
	return Answer{}, fmt.Errorf("oracle: conn does not serve kind %q", q.Kind)
}

// NewScratch returns the reusable decomposition-search workspace of the
// zero-alloc fast path (FastAnswerer).
func (a ConnAdapter) NewScratch() any { return decomp.NewScratch() }

// AnswerFast answers connected/component queries without boxing the result,
// reusing the worker's search scratch (FastAnswerer). Equivalent to Answer
// in answers, errors, and charged costs.
//
//wec:noalloc
func (a ConnAdapter) AnswerFast(m *asym.Meter, sym *asym.SymTracker, q Query, scratch any) (AnswerVal, error) {
	sc, _ := scratch.(*decomp.Scratch)
	switch q.Kind {
	case KindConnected:
		return AnswerVal{IsBool: true, Bool: a.O.ConnectedS(m, sym, sc, q.U, q.V)}, nil
	case KindComponent:
		return AnswerVal{Label: a.O.QueryS(m, sym, sc, q.U)}, nil
	}
	return AnswerVal{}, fmt.Errorf("oracle: conn does not serve kind %q", q.Kind) //wec:alloc unknown-kind error path, not the hot answer path
}

// ApplyInsertions folds an insertion-only batch into a new adapter via the
// write-efficient label merge of conn.Oracle.ApplyInsertions.
func (a ConnAdapter) ApplyInsertions(m *asym.Meter, sym *asym.SymTracker, edges [][2]int32) (QueryOracle, error) {
	next, err := a.O.ApplyInsertions(m, sym, edges)
	if err != nil {
		return nil, err
	}
	return ConnAdapter{O: next}, nil
}

// ApplyDeletions folds a deletion batch into a new adapter via the
// spanning-forest maintenance of conn.Oracle.ApplyDeletions. A batch that
// genuinely splits a component is refused with an error wrapping the
// registry's ErrNeedsRebuild, which the serving layer's strategy ladder
// reads as "step down to a full rebuild".
func (a ConnAdapter) ApplyDeletions(m *asym.Meter, sym *asym.SymTracker, removed [][2]int32, next *graph.Graph) (QueryOracle, error) {
	nx, err := a.O.ApplyDeletions(m, sym, removed, next)
	if err != nil {
		if errors.Is(err, conn.ErrNeedsRebuild) {
			return nil, fmt.Errorf("%w: %v", ErrNeedsRebuild, err)
		}
		return nil, err
	}
	return ConnAdapter{O: nx}, nil
}

// ChainDepth reports how many incremental patches separate the oracle from
// its last full decomposition.
func (a ConnAdapter) ChainDepth() int { return a.O.ChainDepth() }

// Rebase collapses the oracle's remap chain onto a fresh decomposition over
// the current graph (vw), reseeding the maintained spanning forest.
func (a ConnAdapter) Rebase(c *parallel.Ctx, vw graph.View, k int, seed uint64) QueryOracle {
	return ConnAdapter{O: a.O.Rebase(c, vw, k, seed)}
}

// ForestEdges exposes the maintained spanning forest for persistence.
func (a ConnAdapter) ForestEdges() [][2]int32 { return a.O.ForestEdges() }

// AdoptForest installs a recovered forest and chain depth (validated
// against the oracle's graph) into a copy of the adapter.
func (a ConnAdapter) AdoptForest(edges [][2]int32, chainDepth int) (QueryOracle, error) {
	nx, err := a.O.AdoptForest(edges, chainDepth)
	if err != nil {
		return nil, err
	}
	return ConnAdapter{O: nx}, nil
}

// NumComponents reports the snapshot's component count.
func (a ConnAdapter) NumComponents() int { return a.O.NumComponents }

// Remap exposes the oracle's dynamic-insertion label remap table (copied);
// the serving layer's durable store persists it with each snapshot.
func (a ConnAdapter) Remap() map[int32]int32 { return a.O.Remap() }

// BiccAdapter serves the biconnectivity kinds over a bicc.Oracle
// (Theorem 5.3). Biconnectivity has no general incremental path, so the
// factory is registered Deferrable: the engine carries a stale instance
// across update batches and rebuilds lazily at the first biconnectivity
// query of a newer snapshot. The adapter additionally patches the provably
// structure-preserving edits (InsertionApplier/DeletionApplier via the
// block-cut-tree predicates in internal/bicc), refusing everything else
// with ErrNeedsRebuild so the engine steps down to the lazy rung. Cache,
// when non-nil, memoizes materialized cluster local graphs for the fast
// path; it is created fresh by the factory on every (re)build, so it can
// never serve a stale epoch, and hits replay the fill-time charges so
// telemetry matches the uncached path exactly.
type BiccAdapter struct {
	O     *bicc.Oracle
	Cache *bicc.ClusterCache
}

// Answer dispatches bridge/articulation/biconnected/2ecc queries.
func (a BiccAdapter) Answer(m *asym.Meter, sym *asym.SymTracker, q Query) (Answer, error) {
	switch q.Kind {
	case KindBridge:
		v := a.O.IsBridge(m, sym, q.U, q.V)
		return Answer{Bool: &v}, nil
	case KindArticulation:
		v := a.O.IsArticulation(m, sym, q.U)
		return Answer{Bool: &v}, nil
	case KindBiconnected:
		v := a.O.Biconnected(m, sym, q.U, q.V)
		return Answer{Bool: &v}, nil
	case KindTwoEdgeConnected:
		v := a.O.OneEdgeConnected(m, sym, q.U, q.V)
		return Answer{Bool: &v}, nil
	}
	return Answer{}, fmt.Errorf("oracle: bicc does not serve kind %q", q.Kind)
}

// NumBCC reports the snapshot's biconnected-component count.
func (a BiccAdapter) NumBCC() int { return a.O.NumBCC }

// NewScratch returns the reusable local-graph build workspace of the
// zero-alloc fast path (FastAnswerer).
func (a BiccAdapter) NewScratch() any { return bicc.NewScratch() }

// AnswerFast answers the biconnectivity kinds without boxing the result
// (FastAnswerer), reusing the worker's build scratch and the adapter's
// cluster local-graph cache. Equivalent to Answer in answers, errors, and
// charged costs (cache hits replay the fill-time charges).
//
//wec:noalloc
func (a BiccAdapter) AnswerFast(m *asym.Meter, sym *asym.SymTracker, q Query, scratch any) (AnswerVal, error) {
	sc, _ := scratch.(*bicc.Scratch)
	switch q.Kind {
	case KindBridge:
		return AnswerVal{IsBool: true, Bool: a.O.IsBridgeS(m, sym, sc, a.Cache, q.U, q.V)}, nil
	case KindArticulation:
		return AnswerVal{IsBool: true, Bool: a.O.IsArticulationS(m, sym, sc, a.Cache, q.U)}, nil
	case KindBiconnected:
		return AnswerVal{IsBool: true, Bool: a.O.BiconnectedS(m, sym, sc, a.Cache, q.U, q.V)}, nil
	case KindTwoEdgeConnected:
		return AnswerVal{IsBool: true, Bool: a.O.OneEdgeConnectedS(m, sym, sc, a.Cache, q.U, q.V)}, nil
	}
	return AnswerVal{}, fmt.Errorf("oracle: bicc does not serve kind %q", q.Kind) //wec:alloc unknown-kind error path, not the hot answer path
}

// ApplyInsertions absorbs an insertion-only batch when every inserted edge
// lands strictly inside one existing block of the block-cut tree
// (bicc.Oracle.InsertionIsNoop): such a batch changes no
// bridge/articulation/biconnected/2ecc answer, so the receiver itself —
// same oracle, same cluster cache — already serves the extended edge
// multiset exactly. The identity return is deliberate: the serving layer
// detects the carried-forward instance and keeps its cache counters live
// instead of folding them as retired. An edge that would merge blocks (or
// bridge two components) is refused with an error wrapping ErrNeedsRebuild;
// the engine's ladder reads that as "defer to the lazy rebuild", not as a
// full rebuild on the publish path.
func (a BiccAdapter) ApplyInsertions(m *asym.Meter, sym *asym.SymTracker, edges [][2]int32) (QueryOracle, error) {
	sc := bicc.NewScratch()
	for _, e := range edges {
		if !a.O.InsertionIsNoop(m, sym, sc, a.Cache, e[0], e[1]) {
			return nil, fmt.Errorf("%w: bicc: inserted edge (%d,%d) merges blocks", ErrNeedsRebuild, e[0], e[1])
		}
	}
	return a, nil
}

// ApplyDeletions absorbs the easy half of a deletion batch: removals that
// provably leave the block-cut tree untouched (self-loops, and parallel
// copies whose pair keeps multiplicity >= 2 in the post-removal graph
// next). As with ApplyInsertions, success returns the receiver itself.
// Any other removal can split a block — even one whose endpoints remain
// 2-edge connected — so it is refused with an error wrapping
// ErrNeedsRebuild and handled by the engine's lazy rebuild path.
func (a BiccAdapter) ApplyDeletions(m *asym.Meter, sym *asym.SymTracker, removed [][2]int32, next *graph.Graph) (QueryOracle, error) {
	for _, e := range removed {
		mult := 0
		if e[0] != e[1] {
			mult = next.EdgeMultiplicity(e[0], e[1])
		}
		if !a.O.DeletionIsNoop(m, e[0], e[1], mult) {
			return nil, fmt.Errorf("%w: bicc: removing edge (%d,%d) can change the block-cut tree", ErrNeedsRebuild, e[0], e[1])
		}
	}
	return a, nil
}

// CacheStats reports the adapter's cluster-cache hit/miss/eviction counts
// (CacheStatser); zeros without a cache.
func (a BiccAdapter) CacheStats() (hits, misses, evictions int64) {
	if a.Cache == nil {
		return 0, 0, 0
	}
	return a.Cache.Stats()
}

// The built-ins register here (one init so the kind order is fixed:
// connectivity family first, biconnectivity family second — the stable
// order /stats and load-mix parsing rely on).
func init() {
	MustRegister(Factory{
		Name: "conn",
		Specs: []Spec{
			{Kind: KindConnected, Pairwise: true},
			{Kind: KindComponent, Pairwise: false},
		},
		Build: func(c *parallel.Ctx, vw graph.View, k int, seed uint64) QueryOracle {
			o := conn.BuildOracle(c, vw, k, seed)
			// The explicit spanning forest is part of the dynamic-capable
			// oracle's construction (it is what makes deletions patchable),
			// so it is seeded here and charged to the same build meter —
			// BuildOracle itself stays pristine for the paper's static
			// cost bounds.
			o.EnsureForest(vw.M)
			return ConnAdapter{O: o}
		},
	})
	MustRegister(Factory{
		Name: "bicc",
		Specs: []Spec{
			{Kind: KindBridge, Pairwise: true},
			{Kind: KindArticulation, Pairwise: false},
			{Kind: KindBiconnected, Pairwise: true},
			{Kind: KindTwoEdgeConnected, Pairwise: true},
		},
		Build: func(c *parallel.Ctx, vw graph.View, k int, seed uint64) QueryOracle {
			// A fresh cache per build: a bicc instance (and its cache) lives
			// until the engine builds a replacement — eagerly or lazily — so
			// cache contents can never cross oracle generations.
			return BiccAdapter{O: bicc.BuildOracle(c, vw, nil, k, seed), Cache: bicc.NewClusterCache(0)}
		},
		// Deferrable: buildNext marks bicc stale instead of rebuilding;
		// the rebuild runs on demand at the first biconnectivity-family
		// query of the newer snapshot (see internal/serve's lazy slot).
		Deferrable: true,
	})
}
