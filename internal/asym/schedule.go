package asym

// ProjectedTime applies the scheduling theorem of Ben-David et al. [9]: a
// work-stealing scheduler executes a computation with Asymmetric NP work W
// and depth D in O(W/P + ω·D) expected time on P processors. Depth values
// produced by package parallel already carry ω on their write steps, so the
// projection here is W/P + D.
//
// The projection turns the simulator's (work, depth) pairs into the
// machine-scaling curves an evaluation on real hardware would plot; the
// wecbench "scaling" experiment prints them.
func ProjectedTime(work, depth int64, procs int) int64 {
	if procs < 1 {
		procs = 1
	}
	return work/int64(procs) + depth
}

// ProjectedSpeedup returns ProjectedTime(1) / ProjectedTime(procs) as a
// float — the self-relative speedup the depth bound permits.
func ProjectedSpeedup(work, depth int64, procs int) float64 {
	t1 := ProjectedTime(work, depth, 1)
	tp := ProjectedTime(work, depth, procs)
	if tp == 0 {
		return 1
	}
	return float64(t1) / float64(tp)
}
