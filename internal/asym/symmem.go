package asym

import "sync"

// SymTracker accounts for symmetric-memory (cache) usage in words. The paper
// requires the symmetric memory to stay within O(ω log n) words for the dense
// algorithms and O(k log n) = O(√ω log n) words for the oracle constructions;
// tracking a high-water mark makes those budgets testable.
//
// Usage pattern: each task Acquires words for its scratch (BFS queue, local
// graph, cluster buffer) and Releases them when the scratch is discarded.
// The tracker records the maximum simultaneous total.
type SymTracker struct {
	mu    sync.Mutex
	cur   int64
	high  int64
	limit int64 // 0 = unlimited
}

// NewSymTracker returns a tracker with the given word limit; limit 0 means
// report-only (no limit enforced).
func NewSymTracker(limit int) *SymTracker {
	return &SymTracker{limit: int64(limit)}
}

// Acquire reserves n words of symmetric memory. It returns false when a
// limit is set and would be exceeded; callers in this repository treat that
// as a bug (the paper proves the budgets suffice) and tests assert it never
// happens.
func (t *SymTracker) Acquire(n int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cur += int64(n)
	if t.cur > t.high {
		t.high = t.cur
	}
	return t.limit == 0 || t.cur <= t.limit
}

// Release returns n words of symmetric memory.
func (t *SymTracker) Release(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cur -= int64(n)
	if t.cur < 0 {
		t.cur = 0
	}
}

// HighWater returns the maximum simultaneous words acquired.
func (t *SymTracker) HighWater() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.high
}

// Current returns the currently acquired words.
func (t *SymTracker) Current() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

// Reset zeroes the tracker, keeping the limit.
func (t *SymTracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cur, t.high = 0, 0
}
