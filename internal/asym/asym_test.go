package asym

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMeterWork(t *testing.T) {
	m := NewMeter(10)
	m.Read(3)
	m.Write(2)
	m.Op(5)
	if got := m.Work(); got != 3+5+10*2 {
		t.Fatalf("Work = %d, want 28", got)
	}
	if m.Reads() != 3 || m.Writes() != 2 || m.Ops() != 5 {
		t.Fatalf("counters = %d/%d/%d", m.Reads(), m.Writes(), m.Ops())
	}
}

func TestMeterOmegaFloor(t *testing.T) {
	m := NewMeter(0)
	if m.Omega() != 1 {
		t.Fatalf("omega floor: got %d, want 1", m.Omega())
	}
	m = NewMeter(-5)
	if m.Omega() != 1 {
		t.Fatalf("negative omega: got %d, want 1", m.Omega())
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(4)
	m.Read(1)
	m.Write(1)
	m.Op(1)
	m.Reset()
	if m.Work() != 0 {
		t.Fatalf("after Reset, Work = %d", m.Work())
	}
	if m.Omega() != 4 {
		t.Fatalf("Reset dropped omega: %d", m.Omega())
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter(2)
	var wg sync.WaitGroup
	const gor, per = 8, 1000
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Read(1)
				m.Write(1)
			}
		}()
	}
	wg.Wait()
	if m.Reads() != gor*per || m.Writes() != gor*per {
		t.Fatalf("lost updates: reads=%d writes=%d", m.Reads(), m.Writes())
	}
}

func TestMeterMerge(t *testing.T) {
	// The per-worker pattern of package serve: workers meter privately,
	// then merge into a shared aggregate.
	agg := NewMeter(8)
	agg.Read(1) // pre-existing traffic survives merges
	w1, w2 := NewMeter(8), NewMeter(8)
	w1.Read(10)
	w1.Write(2)
	w1.Op(5)
	w2.Read(100)
	w2.Write(1)
	agg.Merge(w1.Snapshot())
	agg.Merge(w2.Snapshot())
	if agg.Reads() != 111 || agg.Writes() != 3 || agg.Ops() != 5 {
		t.Fatalf("merge: %v", agg.Snapshot())
	}
	if want := int64(111 + 5 + 8*3); agg.Work() != want {
		t.Fatalf("work after merge = %d, want %d", agg.Work(), want)
	}
}

func TestMeterMergeConcurrent(t *testing.T) {
	agg := NewMeter(4)
	var wg sync.WaitGroup
	const gor = 8
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewMeter(4)
			w.Read(7)
			w.Write(3)
			agg.Merge(w.Snapshot())
		}()
	}
	wg.Wait()
	if agg.Reads() != 7*gor || agg.Writes() != 3*gor {
		t.Fatalf("concurrent merge lost updates: %v", agg.Snapshot())
	}
}

func TestCostSubAdd(t *testing.T) {
	m := NewMeter(8)
	m.Read(10)
	before := m.Snapshot()
	m.Write(3)
	m.Op(7)
	after := m.Snapshot()
	d := after.Sub(before)
	if d.Reads != 0 || d.Writes != 3 || d.Ops != 7 {
		t.Fatalf("Sub = %+v", d)
	}
	s := before.Add(d)
	if s.Reads != after.Reads || s.Writes != after.Writes || s.Ops != after.Ops {
		t.Fatalf("Add mismatch: %+v vs %+v", s, after)
	}
	if d.Work() != 0+7+8*3 {
		t.Fatalf("Cost.Work = %d", d.Work())
	}
}

func TestCostString(t *testing.T) {
	c := Cost{Omega: 2, Reads: 1, Writes: 1, Ops: 1}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

func TestArrayMetering(t *testing.T) {
	m := NewMeter(5)
	a := NewArray(m, 10)
	if a.Len() != 10 {
		t.Fatalf("Len = %d", a.Len())
	}
	a.Set(3, 42)
	if got := a.Get(3); got != 42 {
		t.Fatalf("Get = %d", got)
	}
	if m.Writes() != 1 || m.Reads() != 1 {
		t.Fatalf("metering: writes=%d reads=%d", m.Writes(), m.Reads())
	}
	a.Fill(7)
	if m.Writes() != 11 {
		t.Fatalf("Fill metering: writes=%d, want 11", m.Writes())
	}
	for i := 0; i < 10; i++ {
		if a.Raw()[i] != 7 {
			t.Fatalf("Fill missed index %d", i)
		}
	}
	if a.Meter() != m {
		t.Fatal("Meter() identity")
	}
}

func TestArray64(t *testing.T) {
	m := NewMeter(5)
	a := NewArray64(m, 4)
	a.Set(0, 1<<40)
	if a.Get(0) != 1<<40 {
		t.Fatal("Array64 round trip")
	}
	a.Fill(-1)
	if a.Len() != 4 || a.Raw()[3] != -1 {
		t.Fatal("Array64 Fill")
	}
	if m.Writes() != 1+4 {
		t.Fatalf("Array64 metering: %d", m.Writes())
	}
}

func TestBitArray(t *testing.T) {
	m := NewMeter(3)
	b := NewBitArray(m, 130) // spans three words
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i, true)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		b.Set(i, false)
		if b.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
	if m.Writes() == 0 || m.Reads() == 0 {
		t.Fatal("BitArray did not meter")
	}
}

func TestBitArrayProperty(t *testing.T) {
	// Property: a BitArray behaves like a []bool under any Set sequence.
	f := func(ops []uint16) bool {
		m := NewMeter(1)
		b := NewBitArray(m, 256)
		ref := make([]bool, 256)
		for _, op := range ops {
			i := int(op % 256)
			v := op&0x8000 != 0
			b.Set(i, v)
			ref[i] = v
		}
		for i := range ref {
			if b.RawGet(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymTracker(t *testing.T) {
	s := NewSymTracker(100)
	if !s.Acquire(60) {
		t.Fatal("within limit rejected")
	}
	if !s.Acquire(40) {
		t.Fatal("at limit rejected")
	}
	if s.Acquire(1) {
		t.Fatal("over limit accepted")
	}
	s.Release(101)
	if s.Current() != 0 {
		t.Fatalf("Current = %d after over-release", s.Current())
	}
	if s.HighWater() != 101 {
		t.Fatalf("HighWater = %d, want 101", s.HighWater())
	}
	s.Reset()
	if s.HighWater() != 0 || s.Current() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSymTrackerUnlimited(t *testing.T) {
	s := NewSymTracker(0)
	if !s.Acquire(1 << 30) {
		t.Fatal("unlimited tracker rejected")
	}
}

func TestSymTrackerConcurrent(t *testing.T) {
	s := NewSymTracker(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Acquire(2)
				s.Release(2)
			}
		}()
	}
	wg.Wait()
	if s.Current() != 0 {
		t.Fatalf("Current = %d, want 0", s.Current())
	}
}

func TestProjectedTime(t *testing.T) {
	// W=1000, D=10: sequential time 1010; with many processors the depth
	// floor dominates.
	if got := ProjectedTime(1000, 10, 1); got != 1010 {
		t.Fatalf("P=1: %d", got)
	}
	if got := ProjectedTime(1000, 10, 100); got != 20 {
		t.Fatalf("P=100: %d", got)
	}
	if got := ProjectedTime(1000, 10, 0); got != 1010 {
		t.Fatalf("P=0 clamps to 1: %d", got)
	}
}

func TestProjectedSpeedupMonotone(t *testing.T) {
	prev := 0.0
	for _, p := range []int{1, 2, 4, 8, 1 << 20} {
		s := ProjectedSpeedup(1_000_000, 500, p)
		if s < prev {
			t.Fatalf("speedup not monotone at P=%d", p)
		}
		prev = s
	}
	// Amdahl-style ceiling: speedup can never exceed (W+D)/D.
	if s := ProjectedSpeedup(1_000_000, 500, 1<<30); s > 1_000_500.0/500.0+1 {
		t.Fatalf("speedup above depth ceiling: %f", s)
	}
}
