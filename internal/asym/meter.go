// Package asym implements the Asymmetric RAM cost model of Blelloch et al.
// (and its parallel Asymmetric NP variant) used throughout the paper
// "Implicit Decomposition for Write-Efficient Connectivity Algorithms".
//
// The model has an infinitely large asymmetric memory in which a write costs
// ω ≫ 1 and a read costs 1, plus a small symmetric memory (a cache) whose
// reads and writes are free but whose size is budgeted (O(ω log n) words in
// the paper). The package provides:
//
//   - Meter: a concurrent-safe counter of asymmetric reads, asymmetric
//     writes, and unit-cost operations, from which Work = other + reads +
//     ω·writes is derived.
//   - Array / BitArray: metered asymmetric-memory arrays; every access is
//     charged to a Meter.
//   - SymTracker: a high-water-mark tracker for symmetric-memory usage so the
//     paper's O(k log n)-word budgets are testable.
//
// All counters use atomics so that parallel algorithms (package parallel)
// can share a single Meter.
package asym

import (
	"fmt"
	"sync/atomic"
)

// DefaultOmega is the write-cost used when a caller does not specify one.
// The paper treats ω as a hardware parameter; projections for PCM and ReRAM
// put it between one and two orders of magnitude (Appendix A).
const DefaultOmega = 64

// Meter accumulates the cost of a computation under the Asymmetric RAM
// model. The zero value is not usable; construct with NewMeter.
type Meter struct {
	omega  int64
	reads  atomic.Int64 // asymmetric-memory reads
	writes atomic.Int64 // asymmetric-memory writes
	ops    atomic.Int64 // other unit-cost operations
}

// NewMeter returns a Meter charging each asymmetric write cost omega.
// omega < 1 is treated as 1 (the symmetric-cost RAM model).
func NewMeter(omega int) *Meter {
	if omega < 1 {
		omega = 1
	}
	return &Meter{omega: int64(omega)}
}

// Omega returns the write cost ω this meter charges.
func (m *Meter) Omega() int { return int(m.omega) }

// Read charges n asymmetric-memory reads.
func (m *Meter) Read(n int) { m.reads.Add(int64(n)) }

// Write charges n asymmetric-memory writes.
func (m *Meter) Write(n int) { m.writes.Add(int64(n)) }

// Op charges n unit-cost operations (arithmetic, branches, symmetric-memory
// traffic beyond what is already implied by reads).
func (m *Meter) Op(n int) { m.ops.Add(int64(n)) }

// Reads returns the number of asymmetric reads charged so far.
func (m *Meter) Reads() int64 { return m.reads.Load() }

// Writes returns the number of asymmetric writes charged so far.
func (m *Meter) Writes() int64 { return m.writes.Load() }

// Ops returns the number of other unit-cost operations charged so far.
func (m *Meter) Ops() int64 { return m.ops.Load() }

// Work returns reads + ops + ω·writes, the Asymmetric RAM time (equivalently
// the Asymmetric NP work) of everything charged to the meter.
func (m *Meter) Work() int64 {
	return m.reads.Load() + m.ops.Load() + m.omega*m.writes.Load()
}

// Merge folds a cost snapshot into the meter: reads, writes, and ops are
// added to the running counters. It is the aggregation half of the
// per-worker metering pattern used by the serving layer (package serve):
// each worker charges queries to a private Meter so no mutable cost-model
// state is shared mid-flight, then merges its totals into a long-lived
// aggregate meter once the batch completes. Safe for concurrent use.
func (m *Meter) Merge(c Cost) {
	m.reads.Add(c.Reads)
	m.writes.Add(c.Writes)
	m.ops.Add(c.Ops)
}

// Reset zeroes all counters, keeping ω.
func (m *Meter) Reset() {
	m.reads.Store(0)
	m.writes.Store(0)
	m.ops.Store(0)
}

// Snapshot captures the current counter values.
func (m *Meter) Snapshot() Cost {
	return Cost{
		Omega:  int(m.omega),
		Reads:  m.reads.Load(),
		Writes: m.writes.Load(),
		Ops:    m.ops.Load(),
	}
}

// Cost is an immutable snapshot of a Meter.
type Cost struct {
	Omega  int
	Reads  int64
	Writes int64
	Ops    int64
}

// Work returns reads + ops + ω·writes for the snapshot.
func (c Cost) Work() int64 { return c.Reads + c.Ops + int64(c.Omega)*c.Writes }

// Sub returns the component-wise difference c - other; use it to isolate the
// cost of a phase bracketed by two snapshots.
func (c Cost) Sub(other Cost) Cost {
	return Cost{
		Omega:  c.Omega,
		Reads:  c.Reads - other.Reads,
		Writes: c.Writes - other.Writes,
		Ops:    c.Ops - other.Ops,
	}
}

// Add returns the component-wise sum of c and other.
func (c Cost) Add(other Cost) Cost {
	return Cost{
		Omega:  c.Omega,
		Reads:  c.Reads + other.Reads,
		Writes: c.Writes + other.Writes,
		Ops:    c.Ops + other.Ops,
	}
}

// String formats the cost in the shape used by EXPERIMENTS.md tables.
func (c Cost) String() string {
	return fmt.Sprintf("reads=%d writes=%d ops=%d work=%d (ω=%d)",
		c.Reads, c.Writes, c.Ops, c.Work(), c.Omega)
}
