package asym

// Array is an asymmetric-memory array of int32 words. Every Get charges one
// read and every Set charges one write to the attached Meter. Algorithms in
// this repository store all Θ(n)- and Θ(m)-sized state (component labels,
// parent pointers, BC labels, contracted edge lists, ...) in Arrays so that
// the write counts the paper analyzes are measured, not estimated.
//
// Array deliberately exposes unmetered access (Raw) for test assertions and
// for result consumers that are outside the modeled computation.
type Array struct {
	m    *Meter
	data []int32
}

// NewArray allocates an n-word asymmetric array. Allocation itself is free
// (the model charges for accesses, not for address space); initializing
// contents must be done through Set/Fill so it is charged.
func NewArray(m *Meter, n int) *Array {
	return &Array{m: m, data: make([]int32, n)}
}

// Len returns the array length.
func (a *Array) Len() int { return len(a.data) }

// Get reads element i, charging one asymmetric read.
func (a *Array) Get(i int) int32 {
	a.m.Read(1)
	return a.data[i]
}

// Set writes element i, charging one asymmetric write.
func (a *Array) Set(i int, v int32) {
	a.m.Write(1)
	a.data[i] = v
}

// Fill sets every element to v, charging Len writes.
func (a *Array) Fill(v int32) {
	a.m.Write(len(a.data))
	for i := range a.data {
		a.data[i] = v
	}
}

// Raw returns the backing slice without charging. For verification only.
func (a *Array) Raw() []int32 { return a.data }

// Meter returns the meter this array charges.
func (a *Array) Meter() *Meter { return a.m }

// Array64 is an asymmetric-memory array of int64 words, used where values may
// exceed int32 range (Euler-tour ranks on large graphs, prefix sums of costs).
type Array64 struct {
	m    *Meter
	data []int64
}

// NewArray64 allocates an n-word asymmetric array of int64.
func NewArray64(m *Meter, n int) *Array64 {
	return &Array64{m: m, data: make([]int64, n)}
}

// Len returns the array length.
func (a *Array64) Len() int { return len(a.data) }

// Get reads element i, charging one asymmetric read.
func (a *Array64) Get(i int) int64 {
	a.m.Read(1)
	return a.data[i]
}

// Set writes element i, charging one asymmetric write.
func (a *Array64) Set(i int, v int64) {
	a.m.Write(1)
	a.data[i] = v
}

// Fill sets every element to v, charging Len writes.
func (a *Array64) Fill(v int64) {
	a.m.Write(len(a.data))
	for i := range a.data {
		a.data[i] = v
	}
}

// Raw returns the backing slice without charging. For verification only.
func (a *Array64) Raw() []int64 { return a.data }

// BitArray is an asymmetric-memory bit vector. The implicit decomposition
// stores exactly one bit per center (primary vs secondary, §3), so bit-level
// granularity matters for the space accounting even though the cost model
// charges per word access.
type BitArray struct {
	m     *Meter
	words []uint64
	n     int
}

// NewBitArray allocates an n-bit asymmetric bit vector.
func NewBitArray(m *Meter, n int) *BitArray {
	return &BitArray{m: m, words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *BitArray) Len() int { return b.n }

// Get reads bit i, charging one asymmetric read.
func (b *BitArray) Get(i int) bool {
	b.m.Read(1)
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

// Set writes bit i, charging one asymmetric write.
func (b *BitArray) Set(i int, v bool) {
	b.m.Write(1)
	if v {
		b.words[i/64] |= 1 << uint(i%64)
	} else {
		b.words[i/64] &^= 1 << uint(i%64)
	}
}

// RawGet reads bit i without charging. For verification only.
func (b *BitArray) RawGet(i int) bool {
	return b.words[i/64]&(1<<uint(i%64)) != 0
}
