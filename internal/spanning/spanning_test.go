package spanning

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

func TestForestOnTreeKeepsAll(t *testing.T) {
	g := graph.RandomTree(50, 3)
	m := asym.NewMeter(4)
	chosen := Forest(m, g.N(), g.Edges())
	if len(chosen) != 49 {
		t.Fatalf("chose %d edges on a tree, want 49", len(chosen))
	}
}

func TestForestSizeAndAcyclicity(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(60, 150, seed, true)
		m := asym.NewMeter(4)
		edges := g.Edges()
		chosen := Forest(m, g.N(), edges)
		if len(chosen) != g.N()-1 { // connected graph
			return false
		}
		// Chosen edges must be acyclic: re-adding them to a fresh DSU
		// always merges.
		uf := unionfind.NewRef(g.N())
		for _, i := range chosen {
			if !uf.Union(edges[i][0], edges[i][1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForestSkipsSelfLoopsAndParallel(t *testing.T) {
	edges := [][2]int32{{0, 0}, {0, 1}, {0, 1}, {1, 2}}
	m := asym.NewMeter(4)
	chosen := Forest(m, 3, edges)
	if len(chosen) != 2 {
		t.Fatalf("chose %d, want 2", len(chosen))
	}
	for _, i := range chosen {
		if edges[i][0] == edges[i][1] {
			t.Fatal("self-loop chosen")
		}
	}
}

func TestForestDisconnected(t *testing.T) {
	// Two components of sizes 3 and 2: forest has 3 edges.
	edges := [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}}
	m := asym.NewMeter(4)
	if got := len(Forest(m, 5, edges)); got != 3 {
		t.Fatalf("forest edges = %d, want 3", got)
	}
}

func TestComponentsLabels(t *testing.T) {
	edges := [][2]int32{{0, 1}, {2, 3}, {3, 4}}
	m := asym.NewMeter(4)
	label := asym.NewArray(m, 6)
	nc := Components(m, 6, edges, label)
	if nc != 3 {
		t.Fatalf("components = %d, want 3", nc)
	}
	want := []int32{0, 0, 2, 2, 2, 5}
	for i, w := range want {
		if label.Raw()[i] != w {
			t.Fatalf("label = %v, want %v", label.Raw(), want)
		}
	}
}

func TestComponentsMatchesRef(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(50, 70, seed, false)
		m := asym.NewMeter(2)
		label := asym.NewArray(m, g.N())
		Components(m, g.N(), g.Edges(), label)
		uf := unionfind.NewRef(g.N())
		for _, e := range g.Edges() {
			uf.Union(e[0], e[1])
		}
		ref := uf.Components()
		for v := 0; v < g.N(); v++ {
			if label.Raw()[v] != ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsEmpty(t *testing.T) {
	m := asym.NewMeter(2)
	label := asym.NewArray(m, 3)
	if nc := Components(m, 3, nil, label); nc != 3 {
		t.Fatalf("components = %d", nc)
	}
}

// TestRebasePrefersPrior: Rebase must return a valid spanning forest that
// reuses every prior edge still present and acyclic, drops vanished or
// cycle-closing prior edges, and completes the rest from the graph.
func TestRebasePrefersPrior(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(40, 55, seed, false)
		m := asym.NewMeter(2)
		prior := Forest(m, g.N(), g.Edges())
		var priorEdges [][2]int32
		for _, i := range prior {
			priorEdges = append(priorEdges, g.Edges()[i])
		}
		// Perturb the graph: drop some edges, add some new ones.
		rng := graph.NewRNG(seed + 1)
		var edges [][2]int32
		for _, e := range g.Edges() {
			if rng.Intn(4) != 0 {
				edges = append(edges, e)
			}
		}
		for j := 0; j < 8; j++ {
			edges = append(edges, [2]int32{int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))})
		}

		out := Rebase(asym.NewMeter(2), g.N(), edges, priorEdges)
		// Valid spanning forest of the new multiset?
		mult := map[[2]int32]int{}
		for _, e := range edges {
			mult[graph.NormEdge(e)]++
		}
		uf := unionfind.NewRef(g.N())
		for _, e := range out {
			if mult[e] == 0 || !uf.Union(e[0], e[1]) {
				return false
			}
		}
		ref := unionfind.NewRef(g.N())
		want := 0
		for _, e := range edges {
			if e[0] != e[1] && ref.Union(e[0], e[1]) {
				want++
			}
		}
		if len(out) != want {
			return false
		}
		// Every surviving prior edge is reused (prior edges are processed
		// first and prior is itself acyclic, so none can be rejected).
		chosen := map[[2]int32]bool{}
		for _, e := range out {
			chosen[e] = true
		}
		for _, e := range priorEdges {
			key := graph.NormEdge(e)
			if mult[key] > 0 && !chosen[key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
