package spanning

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

func TestForestOnTreeKeepsAll(t *testing.T) {
	g := graph.RandomTree(50, 3)
	m := asym.NewMeter(4)
	chosen := Forest(m, g.N(), g.Edges())
	if len(chosen) != 49 {
		t.Fatalf("chose %d edges on a tree, want 49", len(chosen))
	}
}

func TestForestSizeAndAcyclicity(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(60, 150, seed, true)
		m := asym.NewMeter(4)
		edges := g.Edges()
		chosen := Forest(m, g.N(), edges)
		if len(chosen) != g.N()-1 { // connected graph
			return false
		}
		// Chosen edges must be acyclic: re-adding them to a fresh DSU
		// always merges.
		uf := unionfind.NewRef(g.N())
		for _, i := range chosen {
			if !uf.Union(edges[i][0], edges[i][1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForestSkipsSelfLoopsAndParallel(t *testing.T) {
	edges := [][2]int32{{0, 0}, {0, 1}, {0, 1}, {1, 2}}
	m := asym.NewMeter(4)
	chosen := Forest(m, 3, edges)
	if len(chosen) != 2 {
		t.Fatalf("chose %d, want 2", len(chosen))
	}
	for _, i := range chosen {
		if edges[i][0] == edges[i][1] {
			t.Fatal("self-loop chosen")
		}
	}
}

func TestForestDisconnected(t *testing.T) {
	// Two components of sizes 3 and 2: forest has 3 edges.
	edges := [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}}
	m := asym.NewMeter(4)
	if got := len(Forest(m, 5, edges)); got != 3 {
		t.Fatalf("forest edges = %d, want 3", got)
	}
}

func TestComponentsLabels(t *testing.T) {
	edges := [][2]int32{{0, 1}, {2, 3}, {3, 4}}
	m := asym.NewMeter(4)
	label := asym.NewArray(m, 6)
	nc := Components(m, 6, edges, label)
	if nc != 3 {
		t.Fatalf("components = %d, want 3", nc)
	}
	want := []int32{0, 0, 2, 2, 2, 5}
	for i, w := range want {
		if label.Raw()[i] != w {
			t.Fatalf("label = %v, want %v", label.Raw(), want)
		}
	}
}

func TestComponentsMatchesRef(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(50, 70, seed, false)
		m := asym.NewMeter(2)
		label := asym.NewArray(m, g.N())
		Components(m, g.N(), g.Edges(), label)
		uf := unionfind.NewRef(g.N())
		for _, e := range g.Edges() {
			uf.Union(e[0], e[1])
		}
		ref := uf.Components()
		for v := 0; v < g.N(); v++ {
			if label.Raw()[v] != ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsEmpty(t *testing.T) {
	m := asym.NewMeter(2)
	label := asym.NewArray(m, 3)
	if nc := Components(m, 3, nil, label); nc != 3 {
		t.Fatalf("components = %d", nc)
	}
}
