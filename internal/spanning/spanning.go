// Package spanning computes spanning forests of explicit (small) graphs.
// It stands in for the linear-work parallel spanning-forest algorithm of
// Cole, Klein and Tarjan [20] that Theorem 4.2 invokes in step 4: by that
// point the contracted graph has only O(n + βm) vertices and edges, so a
// non-write-efficient algorithm is affordable. Costs are still charged to
// the meter so the end-to-end accounting of the connectivity algorithms is
// complete.
package spanning

import (
	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// Forest selects a spanning forest of the n-vertex multigraph given by
// edges, returning the indices of the chosen edges. Self-loops are never
// chosen; parallel edges contribute at most one tree edge.
func Forest(m *asym.Meter, n int, edges [][2]int32) []int32 {
	dsu := unionfind.New(m, n)
	var out []int32
	for i, e := range edges {
		m.Read(2) // load the edge endpoints
		if e[0] == e[1] {
			continue
		}
		if dsu.Union(e[0], e[1]) {
			out = append(out, int32(i))
			m.Write(1) // record the chosen edge index
		}
	}
	return out
}

// Rebase selects a spanning forest of the n-vertex multigraph given by
// edges, preferring the edges of prior — a previously chosen forest — so
// that a persisted forest survives a restart wherever it is still valid.
// Prior edges that no longer exist in the graph (or would now close a
// cycle) are dropped silently; the remainder is completed from the graph's
// own edge list. The result is always a valid spanning forest of edges,
// returned as normalized (u <= v) pairs.
func Rebase(m *asym.Meter, n int, edges, prior [][2]int32) [][2]int32 {
	avail := make(map[[2]int32]int, len(edges))
	for _, e := range edges {
		avail[graph.NormEdge(e)]++
	}
	m.Op(len(edges))
	dsu := unionfind.New(m, n)
	var out [][2]int32
	for _, e := range prior {
		key := graph.NormEdge(e)
		m.Read(2)
		if key[0] < 0 || int(key[1]) >= n || key[0] == key[1] || avail[key] == 0 {
			continue
		}
		if dsu.Union(key[0], key[1]) {
			out = append(out, key)
			m.Write(1)
		}
	}
	for _, e := range edges {
		m.Read(2)
		if e[0] == e[1] {
			continue
		}
		if dsu.Union(e[0], e[1]) {
			out = append(out, graph.NormEdge(e))
			m.Write(1)
		}
	}
	return out
}

// Components labels the n vertices of the multigraph given by edges with
// canonical component ids (the minimum vertex id in each component),
// writing them into label. It is the final labeling pass run on the
// contracted clusters graph.
func Components(m *asym.Meter, n int, edges [][2]int32, label *asym.Array) int {
	dsu := unionfind.New(m, n)
	for _, e := range edges {
		m.Read(2)
		if e[0] != e[1] {
			dsu.Union(e[0], e[1])
		}
	}
	// Canonicalize to min-id labels: first pass records the minimum vertex
	// per root (symmetric scratch), second pass writes one label per vertex.
	minOf := make(map[int32]int32, 16)
	for v := 0; v < n; v++ {
		root := dsu.Find(int32(v))
		if cur, ok := minOf[root]; !ok || int32(v) < cur {
			minOf[root] = int32(v)
		}
	}
	m.Op(n)
	for v := 0; v < n; v++ {
		label.Set(v, minOf[dsu.Find(int32(v))])
	}
	return len(minOf)
}
