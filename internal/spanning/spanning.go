// Package spanning computes spanning forests of explicit (small) graphs.
// It stands in for the linear-work parallel spanning-forest algorithm of
// Cole, Klein and Tarjan [20] that Theorem 4.2 invokes in step 4: by that
// point the contracted graph has only O(n + βm) vertices and edges, so a
// non-write-efficient algorithm is affordable. Costs are still charged to
// the meter so the end-to-end accounting of the connectivity algorithms is
// complete.
package spanning

import (
	"repro/internal/asym"
	"repro/internal/unionfind"
)

// Forest selects a spanning forest of the n-vertex multigraph given by
// edges, returning the indices of the chosen edges. Self-loops are never
// chosen; parallel edges contribute at most one tree edge.
func Forest(m *asym.Meter, n int, edges [][2]int32) []int32 {
	dsu := unionfind.New(m, n)
	var out []int32
	for i, e := range edges {
		m.Read(2) // load the edge endpoints
		if e[0] == e[1] {
			continue
		}
		if dsu.Union(e[0], e[1]) {
			out = append(out, int32(i))
			m.Write(1) // record the chosen edge index
		}
	}
	return out
}

// Components labels the n vertices of the multigraph given by edges with
// canonical component ids (the minimum vertex id in each component),
// writing them into label. It is the final labeling pass run on the
// contracted clusters graph.
func Components(m *asym.Meter, n int, edges [][2]int32, label *asym.Array) int {
	dsu := unionfind.New(m, n)
	for _, e := range edges {
		m.Read(2)
		if e[0] != e[1] {
			dsu.Union(e[0], e[1])
		}
	}
	// Canonicalize to min-id labels: first pass records the minimum vertex
	// per root (symmetric scratch), second pass writes one label per vertex.
	minOf := make(map[int32]int32, 16)
	for v := 0; v < n; v++ {
		root := dsu.Find(int32(v))
		if cur, ok := minOf[root]; !ok || int32(v) < cur {
			minOf[root] = int32(v)
		}
	}
	m.Op(n)
	for v := 0; v < n; v++ {
		label.Set(v, minOf[dsu.Find(int32(v))])
	}
	return len(minOf)
}
