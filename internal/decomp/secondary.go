package decomp

import (
	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// This file implements lines 3-12 of Algorithm 1: recursively carving each
// primary cluster into pieces of size at most k by marking secondary
// centers at balanced tree separators (Lemma 3.6), plus the Lemma 3.7
// parallel variant that additionally marks the root's children to bound the
// recursion depth.

// clusterTree is the rooted tree formed, per Lemma 3.3, by the tie-broken
// shortest paths from cluster members to their center. members is the
// prefix found by a size-limited search, in level order; parent gives each
// member's SP predecessor toward the root (parent[root] = root).
type clusterTree struct {
	root      int32
	members   []int32
	parent    map[int32]int32
	exhausted bool // the whole cluster was found (fewer than limit members)
}

// clusterSearch finds up to limit members of C(s) in BFS level order,
// linking each member to its shortest-path parent. Each membership test is
// a ρ query (O(k) expected reads), so the search costs O(k·limit) expected
// operations and no writes — the "Search from v for the first k vertices
// that have v as their center" step of Algorithm 1.
func (d *Decomposition) clusterSearch(m *asym.Meter, sym *asym.SymTracker, s int32, limit int) clusterTree {
	ct := clusterTree{root: s, parent: map[int32]int32{s: s}}
	seen := map[int32]bool{s: true}
	frontier := []int32{s}
	ct.members = append(ct.members, s)
	if sym != nil {
		words := 3
		sym.Acquire(words)
		defer func() { sym.Release(words) }()
	}
	if limit <= 1 {
		ct.exhausted = false
		return ct
	}
	vw := graph.View{G: d.g, M: m}
	for len(frontier) > 0 {
		var next []int32
		for _, x := range frontier {
			deg := vw.Degree(int(x))
			for i := 0; i < deg; i++ {
				u := vw.Neighbor(int(x), i)
				if seen[u] {
					continue
				}
				seen[u] = true
				c, path := d.rhoPath(m, sym, nil, u)
				if c != s {
					continue
				}
				// path = u .. s; the SP predecessor of u toward s is
				// path[1], already a member (it lies one BFS level closer).
				ct.parent[u] = path[1]
				ct.members = append(ct.members, u)
				next = append(next, u)
				if len(ct.members) >= limit {
					return ct
				}
			}
		}
		frontier = next
	}
	ct.exhausted = true
	return ct
}

// subtreeSizes computes the size of each member's subtree. members is in
// level (BFS) order, so a reverse sweep accumulates child sizes before
// parents.
func (ct *clusterTree) subtreeSizes() map[int32]int {
	size := make(map[int32]int, len(ct.members))
	for _, v := range ct.members {
		size[v] = 1
	}
	for i := len(ct.members) - 1; i >= 1; i-- {
		v := ct.members[i]
		size[ct.parent[v]] += size[v]
	}
	return size
}

// splitter picks the non-root member u maximizing min(|subtree(u)|,
// total−|subtree(u)|). On bounded-degree trees both sides are a constant
// fraction of the total (Rosenberg & Heath [41]), which is what drives the
// O(n/k) bound on the number of SECONDARYCENTERS calls.
func (ct *clusterTree) splitter() int32 {
	size := ct.subtreeSizes()
	total := len(ct.members)
	best, bestScore := int32(-1), -1
	for _, v := range ct.members[1:] {
		s := size[v]
		score := s
		if total-s < score {
			score = total - s
		}
		if score > bestScore || (score == bestScore && v < best) {
			best, bestScore = v, score
		}
	}
	return best
}

// children returns the root's children in the cluster tree.
func (ct *clusterTree) rootChildren() []int32 {
	var out []int32
	for _, v := range ct.members[1:] {
		if ct.parent[v] == ct.root {
			out = append(out, v)
		}
	}
	return out
}

// addSecondaryCenters runs SECONDARYCENTERS on every primary center.
func (d *Decomposition) addSecondaryCenters(c *parallel.Ctx, vw graph.View, opt Options) {
	n := vw.G.N()
	for v := 0; v < n; v++ {
		vw.M.Read(1)
		if d.isPrimary.RawGet(v) { //wec:unmetered charged by the vw.M.Read(1) above
			d.secondaryCenters(c, vw, int32(v), opt, 0)
		}
	}
}

// secondaryCenters is one call of Algorithm 1's recursive procedure. The
// recursion re-runs the cluster search after every mark because marking a
// center changes ρ for the subtree below it — that recomputation, rather
// than stored state, is exactly the read-for-write trade the paper makes.
func (d *Decomposition) secondaryCenters(c *parallel.Ctx, vw graph.View, v int32, opt Options, depth int) {
	if depth > d.g.N() {
		panic("decomp: secondaryCenters recursion exceeded n") // cannot happen
	}
	ct := d.clusterSearch(vw.M, c.Sym(), v, d.k+1)
	if ct.exhausted && len(ct.members) <= d.k {
		// Line 8: the whole cluster fits.
		c.AddDepth(int64(len(ct.members)))
		return
	}
	// The search found k+1 members, so the cluster is oversized. Work on
	// the first k (the tree the paper's line 7 defines).
	ct.members = ct.members[:d.k]
	u := ct.splitter()
	if u < 0 { // k == 1: every non-root member becomes its own center
		for _, w := range ct.members[1:] {
			d.markSecondary(w)
		}
		return
	}
	c.AddDepth(int64(d.k) + int64(vw.M.Omega())) // one search + the mark write
	if opt.Parallel {
		// Lemma 3.7: besides the splitter, mark the root's children, which
		// lowers the cluster-tree height by at least one per level of
		// recursion (bounded degree keeps the extra centers a constant
		// factor). The children's subtrees become their clusters, so the
		// recursion continues into each child and into the splitter; v's
		// own cluster is now just {v}.
		targets := ct.rootChildren()
		marked := map[int32]bool{}
		for _, ch := range targets {
			d.markSecondary(ch)
			marked[ch] = true
		}
		if !marked[u] {
			d.markSecondary(u)
			targets = append(targets, u)
		}
		// The targets recurse in parallel: depth is the max branch plus the
		// constant fan-out spine (bounded degree keeps len(targets) O(1)).
		var maxChild int64
		for _, tgt := range targets {
			dd := c.Measure(func(cc *parallel.Ctx) {
				d.secondaryCenters(cc, vw, tgt, opt, depth+1)
			})
			if dd > maxChild {
				maxChild = dd
			}
		}
		c.AddDepth(maxChild + int64(len(targets)))
		return
	}
	d.markSecondary(u)
	d.secondaryCenters(c, vw, v, opt, depth+1)
	d.secondaryCenters(c, vw, u, opt, depth+1)
}
