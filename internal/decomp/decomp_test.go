package decomp

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

func build(g *graph.Graph, k int, seed uint64, opt Options) (*Decomposition, *asym.Meter, *parallel.Ctx) {
	m := asym.NewMeter(asym.DefaultOmega)
	c := parallel.NewCtx(m, asym.NewSymTracker(0))
	d := Build(c, graph.View{G: g, M: m}, k, seed, opt)
	return d, m, c
}

// checkInvariants verifies the Theorem 3.1 properties on any graph:
// every vertex maps to a center (or implicit center), clusters are
// connected, cluster sizes are at most k (for components >= k), clusters
// stay within one connected component, and C(s) inverts ρ.
func checkInvariants(t *testing.T, g *graph.Graph, d *Decomposition) {
	t.Helper()
	qm := asym.NewMeter(1)
	n := g.N()

	// Reference components.
	uf := unionfind.NewRef(n)
	for _, e := range g.Edges() {
		uf.Union(e[0], e[1])
	}
	compSize := map[int32]int{}
	for v := 0; v < n; v++ {
		compSize[uf.Find(int32(v))]++
	}

	rho := make([]int32, n)
	clusterSize := map[int32]int{}
	for v := 0; v < n; v++ {
		rho[v] = d.Rho(qm, nil, int32(v))
		clusterSize[rho[v]]++
		if !uf.Same(int32(v), rho[v]) {
			t.Fatalf("rho(%d)=%d crosses components", v, rho[v])
		}
	}
	// Centers map to themselves.
	for v := 0; v < n; v++ {
		if d.isCenter.RawGet(v) && rho[v] != int32(v) {
			t.Fatalf("center %d has rho %d", v, rho[v])
		}
	}
	// Cluster size bound: at most k whenever the component has size >= k
	// (smaller components form one whole-component cluster).
	for s, size := range clusterSize {
		if compSize[uf.Find(s)] >= d.K() && size > d.K() {
			t.Fatalf("cluster %d has size %d > k=%d", s, size, d.K())
		}
	}
	// Cluster connectivity: union edges within clusters; every vertex must
	// reach its center.
	cu := unionfind.NewRef(n)
	for _, e := range g.Edges() {
		if rho[e[0]] == rho[e[1]] {
			cu.Union(e[0], e[1])
		}
	}
	for v := 0; v < n; v++ {
		if !cu.Same(int32(v), rho[v]) {
			t.Fatalf("vertex %d not connected to center %d within cluster", v, rho[v])
		}
	}
	// C(s) inverts rho for every stored center.
	for i := 0; i < d.NumCenters(); i++ {
		s := d.Center(qm, i)
		members := d.Cluster(qm, nil, s)
		if len(members) != clusterSize[s] {
			t.Fatalf("Cluster(%d) size %d, rho counts %d", s, len(members), clusterSize[s])
		}
		for _, v := range members {
			if rho[v] != s {
				t.Fatalf("Cluster(%d) contains %d with rho %d", s, v, rho[v])
			}
		}
	}
}

func TestInvariantsCycle(t *testing.T) {
	g := graph.Cycle(64)
	d, _, _ := build(g, 8, 1, Options{})
	checkInvariants(t, g, d)
}

func TestInvariantsGrid(t *testing.T) {
	g := graph.Grid2D(12, 12)
	d, _, _ := build(g, 6, 2, Options{})
	checkInvariants(t, g, d)
}

func TestInvariants3Regular(t *testing.T) {
	g := graph.RandomRegular(150, 3, 3)
	d, _, _ := build(g, 10, 4, Options{})
	checkInvariants(t, g, d)
}

func TestInvariantsTree(t *testing.T) {
	g := graph.RandomTree(100, 5)
	d, _, _ := build(g, 7, 6, Options{})
	checkInvariants(t, g, d)
}

func TestInvariantsDisconnected(t *testing.T) {
	// Mix of small (< k) and large components.
	g := graph.Disconnected(graph.Cycle(5), 3) // size-5 comps, k=8: implicit centers
	d, _, _ := build(g, 8, 7, Options{})
	checkInvariants(t, g, d)

	g2 := graph.Disconnected(graph.Cycle(40), 4) // size-40 comps
	d2, _, _ := build(g2, 8, 8, Options{})
	checkInvariants(t, g2, d2)
}

func TestInvariantsParallelVariant(t *testing.T) {
	g := graph.Grid2D(12, 12)
	d, _, _ := build(g, 6, 2, Options{Parallel: true})
	checkInvariants(t, g, d)
	g2 := graph.RandomRegular(150, 3, 9)
	d2, _, _ := build(g2, 10, 10, Options{Parallel: true})
	checkInvariants(t, g2, d2)
}

func TestInvariantsK1(t *testing.T) {
	// k=1: every vertex its own cluster.
	g := graph.Cycle(10)
	d, _, _ := build(g, 1, 11, Options{})
	qm := asym.NewMeter(1)
	for v := int32(0); v < 10; v++ {
		if d.Rho(qm, nil, v) != v {
			t.Fatalf("k=1: rho(%d)=%d", v, d.Rho(qm, nil, v))
		}
	}
}

func TestInvariantsKBiggerThanN(t *testing.T) {
	g := graph.Cycle(6)
	d, _, _ := build(g, 100, 12, Options{})
	checkInvariants(t, g, d)
	// Whole graph may be one cluster; all vertices share one center.
	qm := asym.NewMeter(1)
	c0 := d.Rho(qm, nil, 0)
	for v := int32(1); v < 6; v++ {
		if d.Rho(qm, nil, v) != c0 {
			t.Fatalf("k>n: split into multiple clusters")
		}
	}
}

func TestCenterCountLinearInNOverK(t *testing.T) {
	// Theorem 3.1: |S| = O(n/k). Constant allowance 6 (the paper's own
	// constant is unstated; splits guarantee pieces of size >= k/(d+1)).
	for _, k := range []int{4, 8, 16} {
		g := graph.RandomRegular(1200, 3, uint64(k))
		d, _, _ := build(g, k, uint64(100+k), Options{})
		limit := 6*g.N()/k + 4
		if d.NumCenters() > limit {
			t.Fatalf("k=%d: |S| = %d > %d", k, d.NumCenters(), limit)
		}
		if d.NumCenters() == 0 {
			t.Fatalf("k=%d: no centers", k)
		}
	}
}

func TestConstructionWritesSublinear(t *testing.T) {
	// Lemma 3.6: O(n/k) writes. The bitmap marks, center list, and nothing
	// else; allowance 8x n/k.
	g := graph.RandomRegular(2000, 3, 21)
	k := 16
	d, m, _ := build(g, k, 22, Options{})
	_ = d
	limit := int64(8 * g.N() / k)
	if m.Writes() > limit {
		t.Fatalf("writes = %d > %d (n=%d k=%d)", m.Writes(), limit, g.N(), k)
	}
}

func TestRhoQueryCostAndNoWrites(t *testing.T) {
	// Lemma 3.2: O(k) expected operations, no writes.
	g := graph.RandomRegular(1000, 3, 31)
	k := 16
	d, _, _ := build(g, k, 32, Options{})
	qm := asym.NewMeter(asym.DefaultOmega)
	totalReads := int64(0)
	for v := 0; v < g.N(); v++ {
		before := qm.Snapshot()
		d.Rho(qm, nil, int32(v))
		delta := qm.Snapshot().Sub(before)
		if delta.Writes != 0 {
			t.Fatalf("rho(%d) wrote %d words", v, delta.Writes)
		}
		totalReads += delta.Reads
	}
	avg := totalReads / int64(g.N())
	// Expected O(k) visits, each costing O(degree) reads; allow 40*k.
	if avg > int64(40*k) {
		t.Fatalf("avg rho reads = %d, want O(k)=O(%d)", avg, k)
	}
}

func TestClusterQueryCost(t *testing.T) {
	// Lemma 3.5: O(k^2) expected operations per cluster listing.
	g := graph.RandomRegular(600, 3, 41)
	k := 8
	d, _, _ := build(g, k, 42, Options{})
	qm := asym.NewMeter(1)
	var total int64
	for i := 0; i < d.NumCenters(); i++ {
		s := d.Center(qm, i)
		before := qm.Snapshot()
		d.Cluster(qm, nil, s)
		delta := qm.Snapshot().Sub(before)
		if delta.Writes != 0 {
			t.Fatalf("Cluster(%d) wrote", s)
		}
		total += delta.Reads
	}
	avg := total / int64(d.NumCenters())
	if avg > int64(60*k*k) {
		t.Fatalf("avg cluster reads = %d, want O(k^2)=O(%d)", avg, k*k)
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Grid2D(10, 10)
	a, _, _ := build(g, 6, 99, Options{})
	b, _, _ := build(g, 6, 99, Options{})
	if a.NumCenters() != b.NumCenters() {
		t.Fatalf("center counts differ: %d vs %d", a.NumCenters(), b.NumCenters())
	}
	qm := asym.NewMeter(1)
	for v := 0; v < g.N(); v++ {
		if a.Rho(qm, nil, int32(v)) != b.Rho(qm, nil, int32(v)) {
			t.Fatalf("rho(%d) differs", v)
		}
	}
}

func TestSeedChangesDecomposition(t *testing.T) {
	g := graph.Grid2D(16, 16)
	a, _, _ := build(g, 8, 1, Options{})
	b, _, _ := build(g, 8, 2, Options{})
	qm := asym.NewMeter(1)
	diff := 0
	for v := 0; v < g.N(); v++ {
		if a.Rho(qm, nil, int32(v)) != b.Rho(qm, nil, int32(v)) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical decompositions")
	}
}

func TestCenterIndexRoundTrip(t *testing.T) {
	g := graph.RandomRegular(300, 3, 51)
	d, _, _ := build(g, 8, 52, Options{})
	qm := asym.NewMeter(1)
	for i := 0; i < d.NumCenters(); i++ {
		s := d.Center(qm, i)
		if got := d.CenterIndex(qm, s); got != i {
			t.Fatalf("CenterIndex(%d) = %d, want %d", s, got, i)
		}
	}
	if d.CenterIndex(qm, -5) != -1 {
		t.Fatal("bogus center found")
	}
}

func TestIsCenterIsPrimary(t *testing.T) {
	g := graph.Cycle(64)
	d, _, _ := build(g, 8, 61, Options{})
	qm := asym.NewMeter(1)
	prim, sec := 0, 0
	for v := int32(0); v < 64; v++ {
		if d.IsPrimary(qm, v) {
			prim++
			if !d.IsCenter(qm, v) {
				t.Fatalf("primary %d not a center", v)
			}
		} else if d.IsCenter(qm, v) {
			sec++
		}
	}
	if prim != d.PrimaryCount || sec != d.SecondaryCount {
		t.Fatalf("counts: prim %d/%d sec %d/%d", prim, d.PrimaryCount, sec, d.SecondaryCount)
	}
}

func TestNeighborCenters(t *testing.T) {
	g := graph.Cycle(60)
	d, _, _ := build(g, 6, 71, Options{})
	qm := asym.NewMeter(1)
	// On a cycle, every cluster is an arc: exactly 2 neighbor centers
	// (unless there are fewer than 3 clusters).
	if d.NumCenters() < 3 {
		t.Skip("too few clusters for the arc property")
	}
	for i := 0; i < d.NumCenters(); i++ {
		s := d.Center(qm, i)
		nbrs := d.NeighborCenters(qm, nil, s)
		if len(nbrs) != 2 {
			t.Fatalf("center %d has %d neighbor centers, want 2", s, len(nbrs))
		}
		for _, e := range nbrs {
			if e.Other == s {
				t.Fatal("self neighbor")
			}
			if d.Rho(qm, nil, e.From) != s || d.Rho(qm, nil, e.To) != e.Other {
				t.Fatal("witness edge maps to wrong clusters")
			}
			// Witness must be a real edge.
			found := false
			for _, u := range g.Adj(int(e.From)) {
				if u == e.To {
					found = true
				}
			}
			if !found {
				t.Fatalf("witness (%d,%d) not an edge", e.From, e.To)
			}
		}
	}
}

func TestSmallComponentImplicitCenter(t *testing.T) {
	// Components smaller than k with no sampled primary must resolve to
	// their smallest vertex (never written out). Components that happen to
	// contain a sampled primary follow the normal rules; either way all
	// members agree on one in-component center.
	g := graph.Disconnected(graph.Cycle(4), 5) // 5 comps of size 4
	d, _, _ := build(g, 10, 81, Options{})
	qm := asym.NewMeter(1)
	for comp := 0; comp < 5; comp++ {
		base := int32(comp * 4)
		hasPrimary := false
		for v := base; v < base+4; v++ {
			if d.IsPrimary(qm, v) {
				hasPrimary = true
			}
		}
		if hasPrimary {
			continue
		}
		for v := base; v < base+4; v++ {
			if got := d.Rho(qm, nil, v); got != base {
				t.Fatalf("rho(%d) = %d, want implicit center %d", v, got, base)
			}
		}
	}
}

func TestLargeComponentAlwaysHasPrimary(t *testing.T) {
	// A component of size >= k with no sampled primary must get one from
	// the extension. Seed chosen arbitrarily; property must hold for all.
	f := func(seed uint64) bool {
		g := graph.Disconnected(graph.Cycle(12), 6) // six size-12 comps
		d, _, _ := build(g, 8, seed, Options{})
		qm := asym.NewMeter(1)
		for comp := 0; comp < 6; comp++ {
			base := int(comp * 12)
			found := false
			for v := base; v < base+12; v++ {
				if d.IsPrimary(qm, int32(v)) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsProperty(t *testing.T) {
	// Property check across random bounded-degree graphs and seeds.
	f := func(seed uint64) bool {
		g := graph.RandomRegular(120, 3, seed)
		m := asym.NewMeter(16)
		c := parallel.NewCtx(m, asym.NewSymTracker(0))
		d := Build(c, graph.View{G: g, M: m}, 6, seed+13, Options{})
		qm := asym.NewMeter(1)
		sizes := map[int32]int{}
		for v := 0; v < g.N(); v++ {
			sizes[d.Rho(qm, nil, int32(v))]++
		}
		for _, sz := range sizes {
			if sz > 6 {
				return false
			}
		}
		return len(sizes) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	build(graph.Cycle(5), 0, 1, Options{})
}

func TestSymmetricMemoryBudget(t *testing.T) {
	// Theorem 3.1: construction and queries use O(k log n) symmetric words.
	g := graph.RandomRegular(500, 3, 91)
	k := 8
	m := asym.NewMeter(asym.DefaultOmega)
	sym := asym.NewSymTracker(0)
	c := parallel.NewCtx(m, sym)
	d := Build(c, graph.View{G: g, M: m}, k, 92, Options{})
	logn := log2ceil(g.N())
	// Allowance: 16 * k log n words (each map entry counted as 2 words).
	limit := int64(16 * k * logn)
	if hw := sym.HighWater(); hw > limit {
		t.Fatalf("construction symmetric high water = %d > %d", hw, limit)
	}
	sym.Reset()
	qm := asym.NewMeter(1)
	for v := 0; v < 50; v++ {
		d.Rho(qm, sym, int32(v))
	}
	if hw := sym.HighWater(); hw > limit {
		t.Fatalf("query symmetric high water = %d > %d", hw, limit)
	}
}

func TestParallelDepthPolylog(t *testing.T) {
	// Lemma 3.7: depth O(k log n (k^2 log n + omega)) — far below the
	// sequential work O(nk). Check depth << work on a sizable instance.
	g := graph.RandomRegular(2000, 3, 95)
	k := 8
	m := asym.NewMeter(16)
	c := parallel.NewCtx(m, asym.NewSymTracker(0))
	Build(c, graph.View{G: g, M: m}, k, 96, Options{Parallel: true})
	if c.Depth() <= 0 {
		t.Fatal("no depth recorded")
	}
	if c.Depth() >= m.Work()/4 {
		t.Fatalf("depth %d not far below work %d", c.Depth(), m.Work())
	}
}
