// Package decomp implements the paper's primary contribution: the implicit
// k-decomposition of a bounded-degree graph (§3, Algorithm 1, Theorem 3.1).
//
// A k-decomposition partitions the vertices into connected clusters of size
// at most k around a center set S of size O(n/k). It is *implicit*: the only
// state written to asymmetric memory is the set S plus one bit per center
// (primary vs secondary). The mapping ρ(v) from a vertex to its center is
// recomputed on demand from G and S by a deterministic search using
// symmetric memory only — O(k) expected reads and zero writes — which is
// how the construction breaks the Ω(n)-write barrier.
//
// Definitions implemented here:
//
//	ρ0(v) = the primary center nearest to v under tie-broken shortest paths
//	ρ(v)  = the first center on the path from v toward ρ0(v)
//	C(s)  = {v : ρ(v) = s}, connected by Lemma 3.3/Corollary 3.4
//
// Tie-breaking (§3): paths of equal hop length are compared by the priority
// (= id, lower is higher priority) of the first vertex at which they
// diverge, which makes shortest paths and their subpaths unique.
package decomp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Decomposition is an implicit k-decomposition (S, ρ, ℓ) of a bounded-degree
// graph. Asymmetric state is two bit vectors (center membership and the
// 1-bit primary/secondary label) and a sorted center list used as the
// clusters-graph vertex numbering.
//
//wec:immutable
type Decomposition struct {
	g    *graph.Graph
	k    int
	seed uint64

	isCenter  *asym.BitArray // over vertices
	isPrimary *asym.BitArray // over vertices; meaningful where isCenter
	centers   *asym.Array    // sorted center ids (clusters-graph numbering)

	unstable bool          // Options.UnstableTieBreak
	callSeq  atomic.Uint64 // per-search sequence for the unstable ablation

	// Construction statistics, for the experiment harness.
	PrimaryCount   int
	SecondaryCount int
	ExtraPrimaries int // primaries added by the unconnected-graph extension
}

// Options configures Build.
type Options struct {
	// Parallel switches on the Lemma 3.7 variant: every call to
	// SecondaryCenters additionally marks the children of the subtree root
	// as secondary centers, which bounds the recursion depth by the tree
	// height at the cost of a constant-factor increase in |S1|.
	Parallel bool
	// MaxSearch caps the per-vertex primary search of the unconnected-graph
	// extension (§3 "Extension to unconnected graphs"). Zero means the
	// default 4·k·⌈log2 n⌉, the whp bound of Lemma 3.2.
	MaxSearch int
	// UnstableTieBreak deliberately breaks the deterministic priority
	// order of the §3 searches: each search visits neighbors in a
	// per-call pseudo-random order. FOR ABLATION ONLY — Lemma 3.3 (and
	// with it ρ consistency and the cluster-size bound) relies on the
	// deterministic order; BenchmarkAblationTieBreak measures how badly
	// the decomposition degrades without it.
	UnstableTieBreak bool
}

// Build constructs an implicit k-decomposition of the graph behind vw,
// charging all construction traffic to vw.M: O(kn) expected operations and
// O(n/k) expected writes (Lemma 3.6). seed drives the primary sampling.
//
// The graph need not be connected (the §3 extension is applied), but its
// degree should be bounded for the stated costs to hold; Build works on any
// graph, with costs degrading gracefully with the maximum degree.
//
//wec:mutator build-time constructor; the decomposition is not shared until it returns
func Build(c *parallel.Ctx, vw graph.View, k int, seed uint64, opt Options) *Decomposition {
	if k < 1 {
		panic(fmt.Sprintf("decomp: k must be >= 1, got %d", k))
	}
	n := vw.G.N()
	m := vw.M
	d := &Decomposition{
		g:         vw.G,
		k:         k,
		seed:      seed,
		isCenter:  asym.NewBitArray(m, n),
		isPrimary: asym.NewBitArray(m, n),
		unstable:  opt.UnstableTieBreak,
	}

	// Line 1 of Algorithm 1: sample each vertex into S0 with probability
	// 1/k. The coin is a hash of the vertex id, so it is reproducible and
	// needs no stored randomness.
	for v := 0; v < n; v++ {
		m.Op(1)
		if graph.Hash64(seed, uint64(v))%uint64(k) == 0 {
			d.isCenter.Set(v, true)
			d.isPrimary.Set(v, true)
			d.PrimaryCount++
		}
	}

	// Unconnected-graph extension: a component of size >= k that drew no
	// primary gets its smallest vertex marked primary. Components smaller
	// than k are served by an implicit (never written) center.
	d.extendUnconnected(c, vw, opt)

	// Lines 3-4: carve every primary cluster into size-<=k pieces by
	// adding secondary centers.
	d.addSecondaryCenters(c, vw, opt)

	// Materialize the sorted center list (the clusters-graph numbering):
	// O(n) reads to scan the bitmap, O(n/k) writes to store the list.
	ids := make([]int32, 0, 2*(n/max(1, k))+4)
	for v := 0; v < n; v++ {
		m.Read(1)
		if d.isCenter.RawGet(v) { //wec:unmetered charged by the m.Read(1) above
			ids = append(ids, int32(v))
		}
	}
	d.centers = asym.NewArray(m, len(ids))
	for i, s := range ids {
		d.centers.Set(i, s)
	}
	return d
}

// K returns the cluster-size bound.
func (d *Decomposition) K() int { return d.k }

// Graph returns the underlying graph.
func (d *Decomposition) Graph() *graph.Graph { return d.g }

// NumCenters returns |S|.
func (d *Decomposition) NumCenters() int { return d.centers.Len() }

// Center returns the i-th center in sorted order, charging one read.
func (d *Decomposition) Center(m *asym.Meter, i int) int32 {
	m.Read(1)
	return d.centers.Raw()[i] //wec:unmetered charged by the m.Read(1) above
}

// CenterIndex returns the position of center s in the sorted center list
// (its clusters-graph id), or -1. Binary search: O(log n) reads.
func (d *Decomposition) CenterIndex(m *asym.Meter, s int32) int {
	lo, hi := 0, d.centers.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		m.Read(1)
		if d.centers.Raw()[mid] < s { //wec:unmetered charged by the m.Read(1) above
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	m.Read(1)
	if lo < d.centers.Len() && d.centers.Raw()[lo] == s { //wec:unmetered charged by the m.Read(1) above
		return lo
	}
	return -1
}

// IsCenter reports whether v is in S, charging one read.
func (d *Decomposition) IsCenter(m *asym.Meter, v int32) bool {
	m.Read(1)
	return d.isCenter.RawGet(int(v)) //wec:unmetered charged by the m.Read(1) above
}

// IsPrimary reports whether v is in S0, charging one read.
func (d *Decomposition) IsPrimary(m *asym.Meter, v int32) bool {
	m.Read(1)
	return d.isPrimary.RawGet(int(v)) //wec:unmetered charged by the m.Read(1) above
}

// markSecondary adds u to S1 (one read for the double-mark probe, one
// write per bit set, as in Lemma 3.6).
//
//wec:mutator construction-time helper of Build, before the decomposition is shared
func (d *Decomposition) markSecondary(u int32) {
	if d.isCenter.Get(int(u)) {
		return
	}
	d.isCenter.Set(int(u), true)
	d.SecondaryCount++
}

// markPrimary adds u to S0 (used by the unconnected extension).
//
//wec:mutator construction-time helper of Build, before the decomposition is shared
func (d *Decomposition) markPrimary(u int32) {
	d.isCenter.Set(int(u), true)
	d.isPrimary.Set(int(u), true)
	d.PrimaryCount++
	d.ExtraPrimaries++
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func log2ceil(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}
