package decomp

import (
	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// This file implements the query side of the implicit decomposition: the
// deterministic tie-broken BFS, ρ0/ρ (Lemma 3.2), C(s) (Lemma 3.5), the
// clusters-graph neighbor listing (Lemma 4.3), and the unconnected-graph
// extension pass. All searches run entirely in symmetric memory — they
// charge asymmetric reads for graph and center-bit probes but perform zero
// asymmetric writes.

// Scratch is a reusable symmetric-memory workspace for the query-side
// searches (ρ, ρ0, cluster listing). The searches visit O(k) expected
// vertices, so a scratch amortizes to a handful of small, long-lived
// buffers: a serving worker allocates one Scratch and threads it through
// every query it answers, making the steady-state query path allocation
// free. A nil *Scratch everywhere means "allocate per call", the original
// behavior — the paper-table experiments and the serving layer's legacy
// dispatch path keep it.
//
// A Scratch is not safe for concurrent use; it is worker-local by design.
// Reuse does not change charged costs: meters see exactly the reads/ops a
// scratch-less search charges.
type Scratch struct {
	parent   map[int32]int32
	order    []int32
	frontier []int32
	next     []int32
	path     []int32

	// Cluster/NeighborCenters workspaces (ClusterS, NeighborCentersS).
	// Disjoint from the search fields above, so a cluster listing can call
	// RhoS on the same scratch while its own buffers stay live. The maps
	// are lazily created: connectivity workers share the Scratch type but
	// never run cluster listings.
	cOut      []int32
	cFrontier []int32
	cNext     []int32
	cSeen     map[int32]bool
	ncOut     []CenterEdge
	ncSeen    map[int32]int
	ncIn      map[int32]bool
}

// NewScratch returns an empty reusable search workspace.
func NewScratch() *Scratch {
	return &Scratch{parent: make(map[int32]int32, 64)}
}

// reset prepares the scratch for the next search, keeping capacity.
func (sc *Scratch) reset() {
	clear(sc.parent)
	sc.order = sc.order[:0]
	sc.frontier = sc.frontier[:0]
	sc.next = sc.next[:0]
}

// search is the deterministic priority BFS of §3. Starting from v, it calls
// visit(u) for each reached vertex in L(SP(v,·)) order. visit returns true
// to stop the whole search at u. parent pointers record the tie-broken
// shortest-path tree. The search stops after visiting cap vertices (cap <= 0
// means unbounded) or when the component is exhausted.
//
// With a non-nil scratch the parent map and traversal slices are reused
// buffers (the zero-alloc serving path) and adjacency lists are iterated
// directly off the CSR span, with reads charged in bulk for exactly the
// slots scanned — one meter update per vertex expansion (or a partial one
// at an early exit) instead of one per neighbor, identical charged totals
// to the per-slot Neighbor path even when visit stops the search mid-scan.
// With a nil scratch every call allocates fresh state, the original
// behavior.
//
// Order correctness: the frontier is processed in discovery order and each
// vertex's neighbors are scanned in increasing id (= decreasing priority
// rank) order, so discovery order within a level is exactly the
// lexicographic path-priority order the paper's tie-breaking rule defines,
// and each vertex's first discoverer is its unique tie-broken shortest-path
// predecessor.
type searchState struct {
	parent  map[int32]int32 // tie-broken SP tree, parent[src] = src
	order   []int32         // visit order
	stopped bool            // visit returned true
	hit     int32           // the vertex at which visit stopped
}

//wec:noalloc
func (d *Decomposition) search(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, v int32, cap int, visit func(u int32) bool) searchState {
	var st searchState
	var frontier, next []int32
	if sc != nil {
		sc.reset()
		st = searchState{parent: sc.parent, order: sc.order, hit: -1}
		frontier, next = sc.frontier, sc.next
	} else {
		st = searchState{parent: make(map[int32]int32, 8), hit: -1} //wec:alloc cold path without a scratch; the zero-alloc gate runs warmed
	}
	st.parent[v] = v
	frontier = append(frontier, v) //wec:alloc amortized scratch growth; steady state stays within capacity
	st.order = append(st.order, v) //wec:alloc amortized scratch growth; steady state stays within capacity
	acquired := 2
	if sym != nil {
		sym.Acquire(acquired)
	}
	release := func() {
		if sym != nil {
			sym.Release(acquired)
		}
		if sc != nil {
			// Hand grown buffers back so the capacity survives to the
			// next query on this scratch.
			sc.order, sc.frontier, sc.next = st.order, frontier, next
		}
	}
	m.Op(1)
	if visit(v) {
		st.stopped, st.hit = true, v
		release()
		return st
	}
	if cap > 0 && len(st.order) >= cap {
		release()
		return st
	}
	vw := graph.View{G: d.g, M: m}
	callSeed := uint64(0)
	if d.unstable {
		callSeed = d.callSeq.Add(1)
	}
	for len(frontier) > 0 {
		next = next[:0]
		for _, x := range frontier {
			deg := vw.Degree(int(x))
			order := d.neighborOrder(callSeed, x, deg)
			var span []int32
			if sc != nil && order == nil {
				// Zero-alloc path: iterate the CSR span in place. Reads
				// are charged for the slots actually scanned — one bulk
				// meter update after a full scan, a partial one at an
				// early exit — so charged totals match the per-slot
				// Neighbor path exactly.
				span = d.g.Adj(int(x)) //wec:unmetered span reads are bulk-charged after the scan (see above)
			}
			for i := 0; i < deg; i++ {
				slot := i
				if order != nil {
					slot = order[i]
				}
				var u int32
				if span != nil {
					u = span[slot]
				} else {
					u = vw.Neighbor(int(x), slot)
				}
				if _, seen := st.parent[u]; seen {
					continue
				}
				st.parent[u] = x
				st.order = append(st.order, u) //wec:alloc amortized scratch growth; steady state stays within capacity
				if sym != nil {
					sym.Acquire(2)
					acquired += 2
				}
				m.Op(1)
				if visit(u) {
					if span != nil {
						m.Read(i + 1) // span slots scanned before the stop
					}
					st.stopped, st.hit = true, u
					release()
					return st
				}
				if cap > 0 && len(st.order) >= cap {
					if span != nil {
						m.Read(i + 1) // span slots scanned before the cap
					}
					release()
					return st
				}
				next = append(next, u) //wec:alloc amortized scratch growth; steady state stays within capacity
			}
			if span != nil {
				m.Read(deg) // the full span was scanned
			}
		}
		frontier, next = next, frontier
	}
	release()
	return st
}

// pathFrom reconstructs the tie-broken shortest path v .. target from the
// search's parent pointers, in order starting at v. A non-nil scratch
// lends its reusable path buffer; the returned slice is only valid until
// the scratch's next search in that case.
//
//wec:noalloc
func (st *searchState) pathFrom(sc *Scratch, v, target int32) []int32 {
	var rev []int32
	if sc != nil {
		rev = sc.path[:0]
	}
	rev = append(rev, target) //wec:alloc amortized scratch growth; steady state stays within capacity
	for x := target; x != v; {
		x = st.parent[x]
		rev = append(rev, x) //wec:alloc amortized scratch growth; steady state stays within capacity
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if sc != nil {
		sc.path = rev
	}
	return rev
}

// Rho returns ρ(v): the first center on the tie-broken shortest path from v
// to its nearest primary center ρ0(v) (Lemma 3.2: O(k) expected reads, no
// writes). In a small primary-free component the implicit center — the
// smallest vertex of the component — is returned, per the §3 extension.
func (d *Decomposition) Rho(m *asym.Meter, sym *asym.SymTracker, v int32) int32 {
	return d.RhoS(m, sym, nil, v)
}

// RhoS is Rho with a caller-provided reusable scratch (nil allocates per
// call) — the serving layer's zero-alloc query path. Charged costs are
// identical to Rho's.
//
//wec:noalloc
func (d *Decomposition) RhoS(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, v int32) int32 {
	c, _ := d.rhoPath(m, sym, sc, v)
	return c
}

// rhoPath returns ρ(v) together with the prefix of SP(v, ρ0(v)) ending at
// ρ(v), in order starting at v. The path is nil for implicit centers of
// primary-free small components (and borrowed from the scratch when one is
// supplied).
//
//wec:noalloc
func (d *Decomposition) rhoPath(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, v int32) (int32, []int32) {
	st := d.search(m, sym, sc, v, 0, func(u int32) bool {
		m.Read(1)
		return d.isPrimary.RawGet(int(u)) //wec:unmetered charged by the m.Read(1) above
	})
	if !st.stopped {
		// Component exhausted without a primary: implicit smallest-vertex
		// center (possible only for components smaller than k, since
		// larger ones had a primary marked during construction).
		min := v
		for _, u := range st.order {
			if u < min {
				min = u
			}
		}
		m.Op(len(st.order))
		return min, nil
	}
	// Walk the path from v toward ρ0(v); the first center is ρ(v).
	path := st.pathFrom(sc, v, st.hit)
	for i, u := range path {
		m.Read(1)
		if d.isCenter.RawGet(int(u)) { //wec:unmetered charged by the m.Read(1) above
			return u, path[:i+1]
		}
	}
	return st.hit, path // unreachable: ρ0(v) itself is a center
}

// PathToCenter returns the tie-broken shortest path v .. ρ(v) (Lemma 3.3:
// these paths form a rooted tree on every cluster). For the implicit center
// of a primary-free small component the path is recomputed by a restricted
// search. O(k) expected reads, no writes.
func (d *Decomposition) PathToCenter(m *asym.Meter, sym *asym.SymTracker, v int32) []int32 {
	c, path := d.rhoPath(m, sym, nil, v)
	if path != nil {
		return path
	}
	// Implicit center: search from v until c is reached; the parent chain
	// gives the deterministic path.
	st := d.search(m, sym, nil, v, 0, func(u int32) bool { return u == c })
	if !st.stopped {
		return []int32{v} // isolated vertex (v == c)
	}
	return st.pathFrom(nil, v, c)
}

// Rho0 returns ρ0(v), the nearest primary center (or the implicit center of
// a primary-free small component).
func (d *Decomposition) Rho0(m *asym.Meter, sym *asym.SymTracker, v int32) int32 {
	st := d.search(m, sym, nil, v, 0, func(u int32) bool {
		m.Read(1)
		return d.isPrimary.RawGet(int(u)) //wec:unmetered charged by the m.Read(1) above
	})
	if !st.stopped {
		min := v
		for _, u := range st.order {
			if u < min {
				min = u
			}
		}
		m.Op(len(st.order))
		return min
	}
	return st.hit
}

// Cluster returns C(s) — every vertex whose ρ is s — in deterministic
// search order (Lemma 3.5: O(k²) expected reads, no writes). The result
// lives in symmetric memory. If s is not a center (and not an implicit
// small-component center) the result is empty or meaningless; callers
// iterate over Centers.
//
// Correctness relies on Corollary 3.4: every vertex of C(s) reaches s
// through C(s), so a search from s that only expands vertices with ρ = s
// finds the whole cluster.
func (d *Decomposition) Cluster(m *asym.Meter, sym *asym.SymTracker, s int32) []int32 {
	var out []int32
	frontier := []int32{s}
	seen := map[int32]bool{s: true}
	if sym != nil {
		sym.Acquire(1)
		defer sym.Release(1)
	}
	vw := graph.View{G: d.g, M: m}
	for len(frontier) > 0 {
		var next []int32
		for _, x := range frontier {
			if d.Rho(m, sym, x) != s {
				continue
			}
			out = append(out, x)
			deg := vw.Degree(int(x))
			for i := 0; i < deg; i++ {
				u := vw.Neighbor(int(x), i)
				if !seen[u] {
					seen[u] = true
					if sym != nil {
						sym.Acquire(1)
						defer sym.Release(1)
					}
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return out
}

// ClusterS is Cluster with a caller-provided reusable scratch (nil
// delegates to Cluster) — the warm biconnectivity query path. The returned
// slice is borrowed from the scratch and only valid until its next
// ClusterS/NeighborCentersS call. Charged costs and the symmetric-memory
// high-water are identical to Cluster's: the same acquires happen at the
// same points, and the per-seen deferred releases (all of which run at
// return) are replaced by one counted release at return.
//
//wec:noalloc
func (d *Decomposition) ClusterS(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, s int32) []int32 {
	if sc == nil {
		return d.Cluster(m, sym, s)
	}
	if sc.cSeen == nil {
		sc.cSeen = make(map[int32]bool, 64) //wec:alloc one-time lazy init; reused for the scratch's lifetime
	}
	out := sc.cOut[:0]
	frontier := append(sc.cFrontier[:0], s) //wec:alloc amortized scratch growth; steady state stays within capacity
	next := sc.cNext[:0]
	clear(sc.cSeen)
	seen := sc.cSeen
	seen[s] = true
	acquired := 0
	if sym != nil {
		sym.Acquire(1)
		acquired = 1
	}
	vw := graph.View{G: d.g, M: m}
	for len(frontier) > 0 {
		next = next[:0]
		for _, x := range frontier {
			if d.RhoS(m, sym, sc, x) != s {
				continue
			}
			out = append(out, x) //wec:alloc amortized scratch growth; steady state stays within capacity
			deg := vw.Degree(int(x))
			for i := 0; i < deg; i++ {
				u := vw.Neighbor(int(x), i)
				if !seen[u] {
					seen[u] = true
					if sym != nil {
						sym.Acquire(1)
						acquired++
					}
					next = append(next, u) //wec:alloc amortized scratch growth; steady state stays within capacity
				}
			}
		}
		frontier, next = next, frontier
	}
	if sym != nil {
		sym.Release(acquired)
	}
	sc.cOut, sc.cFrontier, sc.cNext = out, frontier, next
	return out
}

// NeighborCenters lists the centers adjacent to s in the clusters graph
// (Lemma 4.3: O(k²) expected reads, no writes), deduplicated, along with
// one witness edge {inVertex, outVertex} per neighbor center for spanning
// forest reconstruction.
type CenterEdge struct {
	Other        int32 // the neighboring center
	From, To     int32 // witness original-graph edge: From in C(s), To in C(Other)
	Multiplicity int   // number of original edges between the two clusters
}

// NeighborCenters returns the clusters-graph neighbors of center s.
func (d *Decomposition) NeighborCenters(m *asym.Meter, sym *asym.SymTracker, s int32) []CenterEdge {
	members := d.Cluster(m, sym, s)
	inCluster := make(map[int32]bool, len(members))
	for _, v := range members {
		inCluster[v] = true
	}
	if sym != nil {
		sym.Acquire(len(members))
		defer sym.Release(len(members))
	}
	var out []CenterEdge
	seen := map[int32]int{} // neighbor center -> index into out
	vw := graph.View{G: d.g, M: m}
	for _, v := range members {
		deg := vw.Degree(int(v))
		for i := 0; i < deg; i++ {
			u := vw.Neighbor(int(v), i)
			if inCluster[u] {
				continue
			}
			t := d.Rho(m, sym, u)
			if t == s {
				continue
			}
			if j, ok := seen[t]; ok {
				out[j].Multiplicity++
				continue
			}
			seen[t] = len(out)
			out = append(out, CenterEdge{Other: t, From: v, To: u, Multiplicity: 1})
		}
	}
	return out
}

// NeighborCentersS is NeighborCenters with a caller-provided reusable
// scratch (nil delegates to NeighborCenters). Like the original it runs the
// cluster listing itself, so its charged costs stay identical; the returned
// slice — and the members slice of the inner ClusterS call — are borrowed
// from the scratch and only valid until its next use.
//
//wec:noalloc
func (d *Decomposition) NeighborCentersS(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, s int32) []CenterEdge {
	if sc == nil {
		return d.NeighborCenters(m, sym, s)
	}
	members := d.ClusterS(m, sym, sc, s)
	if sc.ncIn == nil {
		sc.ncIn = make(map[int32]bool, 64) //wec:alloc one-time lazy init; reused for the scratch's lifetime
	}
	if sc.ncSeen == nil {
		sc.ncSeen = make(map[int32]int, 16) //wec:alloc one-time lazy init; reused for the scratch's lifetime
	}
	clear(sc.ncIn)
	inCluster := sc.ncIn
	for _, v := range members {
		inCluster[v] = true
	}
	if sym != nil {
		sym.Acquire(len(members))
		defer sym.Release(len(members))
	}
	out := sc.ncOut[:0]
	clear(sc.ncSeen)
	seen := sc.ncSeen // neighbor center -> index into out
	vw := graph.View{G: d.g, M: m}
	for _, v := range members {
		deg := vw.Degree(int(v))
		for i := 0; i < deg; i++ {
			u := vw.Neighbor(int(v), i)
			if inCluster[u] {
				continue
			}
			t := d.RhoS(m, sym, sc, u)
			if t == s {
				continue
			}
			if j, ok := seen[t]; ok {
				out[j].Multiplicity++
				continue
			}
			seen[t] = len(out)
			out = append(out, CenterEdge{Other: t, From: v, To: u, Multiplicity: 1}) //wec:alloc amortized scratch growth; steady state stays within capacity
		}
	}
	sc.ncOut = out
	return out
}

// extendUnconnected implements the §3 extension: every vertex runs its
// primary search; a search that exhausts a component of size >= k without
// finding a primary marks the component's smallest vertex (only the
// smallest vertex performs the mark, so each component is marked once).
// Searches are capped at O(k log n) visits — the whp bound of Lemma 3.2 —
// so the pass costs O(nk) expected operations and O(n/k) writes.
func (d *Decomposition) extendUnconnected(c *parallel.Ctx, vw graph.View, opt Options) {
	n := vw.G.N()
	cap := opt.MaxSearch
	if cap <= 0 {
		cap = 4 * d.k * max(1, log2ceil(max(2, n)))
	}
	for v := 0; v < n; v++ {
		st := d.search(vw.M, c.Sym(), nil, int32(v), cap, func(u int32) bool {
			vw.M.Read(1)
			return d.isPrimary.RawGet(int(u)) //wec:unmetered charged by the vw.M.Read(1) above
		})
		if st.stopped {
			continue // has a primary
		}
		if len(st.order) >= cap {
			continue // cap hit: whp the component has a primary further out
		}
		// Component exhausted without a primary.
		if len(st.order) < d.k {
			continue // small component: implicit center, never written
		}
		min := int32(v)
		for _, u := range st.order {
			if u < min {
				min = u
			}
		}
		if min == int32(v) {
			d.markPrimary(int32(v))
		}
	}
	c.AddDepth(int64(d.k)) // parallel over vertices; per-search depth O(k)
}

// neighborOrder returns nil for the deterministic (id-sorted) order, or a
// per-call pseudo-random permutation of the adjacency slots when the
// UnstableTieBreak ablation is active.
func (d *Decomposition) neighborOrder(callSeed uint64, x int32, deg int) []int {
	if !d.unstable || deg < 2 {
		return nil
	}
	order := make([]int, deg)
	for i := range order {
		order[i] = i
	}
	for i := deg - 1; i > 0; i-- {
		j := int(graph.Hash64(callSeed, uint64(x)<<20|uint64(i)) % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}
