package decomp

import (
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
)

// TestScratchChargesMatchNilScratch pins the cost half of the FastAnswerer
// contract at the search layer: reusing a Scratch must not change charged
// costs. Rho early-exits mid-scan whenever a primary is hit partway through
// an adjacency span, so this exercises exactly the partial-span charging
// that a bulk up-front charge would get wrong.
func TestScratchChargesMatchNilScratch(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(64),
		graph.Grid2D(12, 12),
		graph.RandomRegular(150, 3, 3),
		graph.RandomTree(100, 5),
		graph.Lollipop(20, 30),
		graph.Disconnected(graph.Cycle(5), 3),
	}
	for gi, g := range graphs {
		for _, k := range []int{2, 8} {
			d, _, _ := build(g, k, 7, Options{})
			sc := NewScratch()
			for v := 0; v < g.N(); v++ {
				slow := asym.NewMeter(asym.DefaultOmega)
				fast := asym.NewMeter(asym.DefaultOmega)
				want := d.Rho(slow, nil, int32(v))
				got := d.RhoS(fast, nil, sc, int32(v))
				if got != want {
					t.Fatalf("graph %d k=%d: RhoS(%d)=%d, Rho=%d", gi, k, v, got, want)
				}
				if slow.Reads() != fast.Reads() || slow.Writes() != fast.Writes() || slow.Ops() != fast.Ops() {
					t.Fatalf("graph %d k=%d v=%d: scratch charges r=%d w=%d o=%d, nil-scratch r=%d w=%d o=%d",
						gi, k, v, fast.Reads(), fast.Writes(), fast.Ops(), slow.Reads(), slow.Writes(), slow.Ops())
				}
			}
			// Cap-limited searches stop mid-scan at arbitrary slots; both
			// paths must charge the same partial-span reads there too.
			for v := 0; v < g.N(); v += 7 {
				for _, lim := range []int{1, 2, 5} {
					slow := asym.NewMeter(asym.DefaultOmega)
					fast := asym.NewMeter(asym.DefaultOmega)
					d.search(slow, nil, nil, int32(v), lim, func(u int32) bool { return false })
					d.search(fast, nil, sc, int32(v), lim, func(u int32) bool { return false })
					if slow.Reads() != fast.Reads() || slow.Ops() != fast.Ops() {
						t.Fatalf("graph %d k=%d v=%d cap=%d: scratch charges r=%d o=%d, nil-scratch r=%d o=%d",
							gi, k, v, lim, fast.Reads(), fast.Ops(), slow.Reads(), slow.Ops())
					}
				}
			}
		}
	}
}
