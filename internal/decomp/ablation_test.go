package decomp

import (
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
)

// TestStableSearchIsDeterministic pins the property the paper's tie-break
// rule provides: repeated ρ queries always agree.
func TestStableSearchIsDeterministic(t *testing.T) {
	g := graph.Grid2D(16, 16)
	d, _, _ := build(g, 8, 5, Options{})
	qm := asym.NewMeter(1)
	for v := int32(0); int(v) < g.N(); v++ {
		a := d.Rho(qm, nil, v)
		b := d.Rho(qm, nil, v)
		if a != b {
			t.Fatalf("stable search disagreed on %d: %d vs %d", v, a, b)
		}
	}
}

// TestUnstableTieBreakBreaksConsistency demonstrates why the deterministic
// order is load-bearing: with per-call random neighbor orders, ρ is no
// longer a function — repeated queries can disagree, so clusters are not
// well-defined (the failure mode Lemma 3.3 exists to prevent).
func TestUnstableTieBreakBreaksConsistency(t *testing.T) {
	g := graph.Grid2D(16, 16) // grids have many equal-length paths (ties)
	d, _, _ := build(g, 8, 5, Options{UnstableTieBreak: true})
	qm := asym.NewMeter(1)
	disagreements := 0
	for round := 0; round < 4; round++ {
		for v := int32(0); int(v) < g.N(); v++ {
			if d.Rho(qm, nil, v) != d.Rho(qm, nil, v) {
				disagreements++
			}
		}
		if disagreements > 0 {
			return // ablation demonstrated
		}
	}
	t.Skip("unstable search happened to agree on this instance; ablation inconclusive")
}
