package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/asym"
)

func newCtx() *Ctx {
	return NewCtx(asym.NewMeter(8), asym.NewSymTracker(0))
}

func TestFork2RunsBoth(t *testing.T) {
	c := newCtx()
	var a, b bool
	c.Fork2(func(*Ctx) { a = true }, func(*Ctx) { b = true })
	if !a || !b {
		t.Fatalf("fork children ran: %v %v", a, b)
	}
}

func TestFork2DepthIsMax(t *testing.T) {
	c := newCtx()
	c.Fork2(
		func(cc *Ctx) { cc.AddDepth(100) },
		func(cc *Ctx) { cc.AddDepth(5) },
	)
	if c.Depth() != 101 {
		t.Fatalf("depth = %d, want max(100,5)+1 = 101", c.Depth())
	}
}

func TestForCoversRange(t *testing.T) {
	c := newCtx()
	n := 1000
	seen := make([]atomic.Int32, n)
	c.For(0, n, func(_ *Ctx, i int) { seen[i].Add(1) })
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, seen[i].Load())
		}
	}
}

func TestForEmptyAndReversed(t *testing.T) {
	c := newCtx()
	ran := false
	c.For(5, 5, func(*Ctx, int) { ran = true })
	c.For(7, 3, func(*Ctx, int) { ran = true })
	if ran {
		t.Fatal("body ran on empty range")
	}
}

func TestForDepthLogarithmic(t *testing.T) {
	// With unit-depth bodies, For's depth must be O(grain + log n), far
	// below n. This is the property Lemma 3.7 and Theorem 4.2 depend on.
	c := newCtx()
	c.SetGrain(1)
	n := 1 << 12
	c.For(0, n, func(cc *Ctx, i int) { cc.AddDepth(1) })
	if c.Depth() > 64 {
		t.Fatalf("depth = %d for n=%d; want O(log n)", c.Depth(), n)
	}
}

func TestForEachChunk(t *testing.T) {
	c := newCtx()
	var total atomic.Int64
	c.ForEachChunk(1000, 64, func(_ *Ctx, lo, hi int) {
		total.Add(int64(hi - lo))
	})
	if total.Load() != 1000 {
		t.Fatalf("chunks covered %d elements, want 1000", total.Load())
	}
}

func TestReduceSum(t *testing.T) {
	c := newCtx()
	n := 1234
	got := Reduce(c, n, func(i int) int64 { return int64(i) },
		func(a, b int64) int64 { return a + b })
	want := int64(n*(n-1)) / 2
	if got != want {
		t.Fatalf("Reduce = %d, want %d", got, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	c := newCtx()
	if got := Reduce(c, 0, func(int) int64 { panic("leaf called") },
		func(a, b int64) int64 { return a + b }); got != 0 {
		t.Fatalf("Reduce(0) = %d", got)
	}
}

func TestReduceMax(t *testing.T) {
	c := newCtx()
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	got := Reduce(c, len(vals), func(i int) int64 { return vals[i] },
		func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
	if got != 9 {
		t.Fatalf("Reduce max = %d", got)
	}
}

func TestScanMatchesSequential(t *testing.T) {
	c := newCtx()
	c.SetGrain(4)
	in := []int64{5, 3, 0, 2, 7, 1, 1, 1, 9}
	out, total := Scan(c, in)
	var s int64
	for i, v := range in {
		if out[i] != s {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], s)
		}
		s += v
	}
	if total != s {
		t.Fatalf("total = %d, want %d", total, s)
	}
}

func TestScanEmpty(t *testing.T) {
	c := newCtx()
	out, total := Scan(c, nil)
	if len(out) != 0 || total != 0 {
		t.Fatal("Scan(nil) nonzero")
	}
}

func TestScanProperty(t *testing.T) {
	f := func(in []int16) bool {
		c := newCtx()
		c.SetGrain(3)
		xs := make([]int64, len(in))
		for i, v := range in {
			xs[i] = int64(v)
		}
		out, total := Scan(c, xs)
		var s int64
		for i := range xs {
			if out[i] != s {
				return false
			}
			s += xs[i]
		}
		return total == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterOrderedAndComplete(t *testing.T) {
	c := newCtx()
	n := 500
	got := Filter(c, n, func(i int) bool { return i%3 == 0 })
	want := 0
	for i := 0; i < n; i += 3 {
		if got[want] != i {
			t.Fatalf("slot %d = %d, want %d", want, got[want], i)
		}
		want++
	}
	if len(got) != want {
		t.Fatalf("count = %d, want %d", len(got), want)
	}
}

func TestFilterEmpty(t *testing.T) {
	c := newCtx()
	if got := Filter(c, 0, func(int) bool { return true }); len(got) != 0 {
		t.Fatalf("count = %d", len(got))
	}
}

func TestFilterNonePass(t *testing.T) {
	c := newCtx()
	if got := Filter(c, 100, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("count = %d", len(got))
	}
}

func TestFilterWriteEfficiency(t *testing.T) {
	// Writes must be proportional to the output, not the input.
	c := newCtx()
	before := c.Meter().Writes()
	out := Filter(c, 10000, func(i int) bool { return i%100 == 0 })
	writes := c.Meter().Writes() - before
	if writes > int64(2*len(out)) {
		t.Fatalf("writes = %d for output %d", writes, len(out))
	}
}

func TestFilterProperty(t *testing.T) {
	// Property: Filter returns exactly the passing indices, in order, for
	// arbitrary predicates.
	f := func(mask []bool) bool {
		c := newCtx()
		c.SetGrain(2)
		out := Filter(c, len(mask), func(i int) bool { return mask[i] })
		want := make([]int, 0, len(mask))
		for i, b := range mask {
			if b {
				want = append(want, i)
			}
		}
		if len(out) != len(want) {
			return false
		}
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetGrainFloor(t *testing.T) {
	c := newCtx()
	c.SetGrain(-3)
	ok := true
	c.For(0, 10, func(_ *Ctx, i int) { _ = i })
	if !ok {
		t.Fatal("unreachable")
	}
}

func TestCtxAccessors(t *testing.T) {
	m := asym.NewMeter(2)
	s := asym.NewSymTracker(10)
	c := NewCtx(m, s)
	if c.Meter() != m || c.Sym() != s {
		t.Fatal("accessor identity")
	}
}
