// Package parallel provides the fork-join primitives of the Asymmetric
// Nested-Parallel (NP) model: binary fork, parallel for, reduce, prefix sums
// (scan), and the write-efficient filter of Ben-David et al. [9] that the
// paper's connectivity algorithms rely on.
//
// Two quantities are tracked:
//
//   - Work: charged to a shared asym.Meter (reads + ops + ω·writes).
//   - Depth: the cost of the most expensive path through the dynamically
//     unfolding fork-join DAG. Each Ctx owns a local depth accumulator;
//     Fork2 and For combine child depths with max, sequential code adds.
//
// Execution uses goroutines gated by a global token pool sized to
// GOMAXPROCS, so the measured depth is an analytic property of the DAG and
// is identical no matter how many processors actually run it (the
// work-stealing theorem of [9] then gives time W/P + ωD).
package parallel

import (
	"runtime"

	"repro/internal/asym"
)

// tokens bounds the number of simultaneously running forked goroutines.
var tokens = make(chan struct{}, maxProcs())

func maxProcs() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}

// Ctx is a task context in the Asymmetric NP model. It carries the shared
// cost meter and a task-local depth accumulator. A Ctx must be used by one
// goroutine at a time; Fork2/For hand children their own Ctx.
type Ctx struct {
	meter *asym.Meter
	sym   *asym.SymTracker
	depth int64
	grain int
}

// NewCtx returns a root task context charging the given meter. sym may be
// nil when symmetric-memory accounting is not needed.
func NewCtx(meter *asym.Meter, sym *asym.SymTracker) *Ctx {
	return &Ctx{meter: meter, sym: sym, grain: 64}
}

// Meter returns the shared cost meter.
func (c *Ctx) Meter() *asym.Meter { return c.meter }

// Sym returns the symmetric-memory tracker (may be nil).
func (c *Ctx) Sym() *asym.SymTracker { return c.sym }

// SetGrain sets the sequential grain size for For; below the grain the loop
// runs sequentially. Grain affects constants only, never measured depth
// asymptotics (leaf depth is still counted per iteration).
func (c *Ctx) SetGrain(g int) {
	if g < 1 {
		g = 1
	}
	c.grain = g
}

// AddDepth records d units of sequential cost on this task's path.
func (c *Ctx) AddDepth(d int64) { c.depth += d }

// Depth returns the critical-path cost accumulated in this context so far.
func (c *Ctx) Depth() int64 { return c.depth }

// child returns a fresh context for a forked task.
func (c *Ctx) child() *Ctx {
	return &Ctx{meter: c.meter, sym: c.sym, grain: c.grain}
}

// Fork2 runs f and g as parallel children (the Fork instruction of the
// model) and adds max(depth(f), depth(g)) + 1 to this task's depth.
func (c *Ctx) Fork2(f, g func(*Ctx)) {
	cf, cg := c.child(), c.child()
	select {
	case tokens <- struct{}{}:
		done := make(chan struct{})
		go func() {
			defer func() { <-tokens; close(done) }()
			f(cf)
		}()
		g(cg)
		<-done
	default:
		f(cf)
		g(cg)
	}
	d := cf.depth
	if cg.depth > d {
		d = cg.depth
	}
	c.depth += d + 1
}

// Fork2Seq runs f then g sequentially but accounts their depths as a
// parallel fork (max + 1). Algorithms whose logical structure is parallel
// but whose shared-state updates are deliberately unsynchronized (the
// secondary-center marking of Algorithm 1) use this so the measured depth
// still reflects the fork-join DAG of Lemma 3.7 while execution stays
// deterministic.
func (c *Ctx) Fork2Seq(f, g func(*Ctx)) {
	cf, cg := c.child(), c.child()
	f(cf)
	g(cg)
	d := cf.depth
	if cg.depth > d {
		d = cg.depth
	}
	c.depth += d + 1
}

// Measure runs f sequentially in a fresh child context and returns the
// depth it accumulated, without adding anything to c. Algorithms that model
// custom fork shapes (a fan-out over a variable-sized target set) measure
// each branch and combine with max themselves.
func (c *Ctx) Measure(f func(*Ctx)) int64 {
	cc := c.child()
	f(cc)
	return cc.depth
}

// For runs body(i) for i in [lo, hi) with divide-and-conquer forking.
// Depth contribution is O(log(hi-lo)) for the recursion spine plus, at each
// leaf, the sequential sum of the leaf's iteration depths; the parent
// receives the max over leaves, matching the standard nested-parallel
// analysis of a parallel for.
func (c *Ctx) For(lo, hi int, body func(c *Ctx, i int)) {
	if hi <= lo {
		return
	}
	if hi-lo <= c.grain {
		leaf := c.child()
		for i := lo; i < hi; i++ {
			body(leaf, i)
		}
		c.depth += leaf.depth + 1
		return
	}
	mid := lo + (hi-lo)/2
	c.Fork2(
		func(cc *Ctx) { cc.For(lo, mid, body) },
		func(cc *Ctx) { cc.For(mid, hi, body) },
	)
}

// ForEachChunk runs body over contiguous chunks of [0,n) in parallel,
// giving the body the chunk bounds. Useful for block-local counting in the
// write-efficient filter. Depth is O(log n + max chunk depth).
func (c *Ctx) ForEachChunk(n, chunk int, body func(c *Ctx, lo, hi int)) {
	if chunk < 1 {
		chunk = 1
	}
	nchunks := (n + chunk - 1) / chunk
	saved := c.grain
	c.grain = 1
	c.For(0, nchunks, func(cc *Ctx, b int) {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(cc, lo, hi)
	})
	c.grain = saved
}
