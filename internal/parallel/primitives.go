package parallel

// This file implements the write-efficient primitives of Ben-David et al.
// [9] that the paper's algorithms invoke: reduce, exclusive prefix sums
// (scan), and ordered filter/pack with writes proportional to the output.

// Reduce combines leaf(i) for i in [0,n) with the associative function
// combine, in O(n) work and O(log n) depth, performing no asymmetric writes
// (the reduction tree lives in symmetric memory / task state).
func Reduce(c *Ctx, n int, leaf func(i int) int64, combine func(a, b int64) int64) int64 {
	if n == 0 {
		return 0
	}
	var rec func(cc *Ctx, lo, hi int) int64
	rec = func(cc *Ctx, lo, hi int) int64 {
		if hi-lo <= cc.grain {
			acc := leaf(lo)
			cc.AddDepth(1)
			for i := lo + 1; i < hi; i++ {
				acc = combine(acc, leaf(i))
				cc.AddDepth(1)
			}
			cc.Meter().Op(hi - lo)
			return acc
		}
		mid := lo + (hi-lo)/2
		var l, r int64
		cc.Fork2(
			func(c2 *Ctx) { l = rec(c2, lo, mid) },
			func(c2 *Ctx) { r = rec(c2, mid, hi) },
		)
		cc.Meter().Op(1)
		return combine(l, r)
	}
	return rec(c, 0, n)
}

// Scan computes the exclusive prefix sums of in, returning the output slice
// and the grand total. The output lives in symmetric memory (caller decides
// whether to spill it to an asym.Array); the work charged is O(n) ops and
// the depth is O(log n) via the standard up-sweep/down-sweep.
func Scan(c *Ctx, in []int64) (out []int64, total int64) {
	n := len(in)
	out = make([]int64, n)
	if n == 0 {
		return out, 0
	}
	// Up-sweep: partial sums per block, then scan of block sums, then
	// down-sweep writes. Done recursively to keep depth logarithmic.
	var up func(cc *Ctx, lo, hi int) int64
	up = func(cc *Ctx, lo, hi int) int64 {
		if hi-lo <= cc.grain {
			var s int64
			for i := lo; i < hi; i++ {
				s += in[i]
			}
			cc.Meter().Op(hi - lo)
			cc.AddDepth(int64(hi - lo))
			return s
		}
		mid := lo + (hi-lo)/2
		var l, r int64
		cc.Fork2(
			func(c2 *Ctx) { l = up(c2, lo, mid) },
			func(c2 *Ctx) { r = up(c2, mid, hi) },
		)
		return l + r
	}
	var down func(cc *Ctx, lo, hi int, offset int64)
	down = func(cc *Ctx, lo, hi int, offset int64) {
		if hi-lo <= cc.grain {
			s := offset
			for i := lo; i < hi; i++ {
				out[i] = s
				s += in[i]
			}
			cc.Meter().Op(hi - lo)
			cc.AddDepth(int64(hi - lo))
			return
		}
		mid := lo + (hi-lo)/2
		leftSum := up(cc, lo, mid)
		cc.Fork2(
			func(c2 *Ctx) { down(c2, lo, mid, offset) },
			func(c2 *Ctx) { down(c2, mid, hi, offset+leftSum) },
		)
	}
	total = up(c, 0, n)
	down(c, 0, n, 0)
	return out, total
}

// Filter packs the indices i in [0,n) satisfying pred into a new slice, in
// increasing order. This is the ordered filter of [9]: per-block counts and
// their prefix sums live in symmetric memory, so the only asymmetric writes
// are the output elements themselves — writes proportional to the *output*
// size, which is what makes Step 3 of the connectivity algorithm
// (Theorem 4.2) write-efficient. One asymmetric write is charged per output
// element; reads performed by pred are charged by pred itself.
//
// pred is called twice per index (count pass and emit pass) and must be
// deterministic and safe for concurrent calls on distinct indices; the
// paper's read-write tradeoffs are built from exactly this kind of
// recomputation.
func Filter(c *Ctx, n int, pred func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	chunk := c.grain
	if chunk < 64 {
		chunk = 64
	}
	nchunks := (n + chunk - 1) / chunk
	counts := make([]int64, nchunks)
	if c.sym != nil {
		c.sym.Acquire(2 * nchunks)
		defer c.sym.Release(2 * nchunks)
	}
	c.ForEachChunk(n, chunk, func(cc *Ctx, lo, hi int) {
		var cnt int64
		for i := lo; i < hi; i++ {
			if pred(i) {
				cnt++
			}
		}
		cc.Meter().Op(hi - lo)
		cc.AddDepth(int64(hi - lo))
		counts[lo/chunk] = cnt
	})
	offsets, total := Scan(c, counts)
	out := make([]int, total)
	c.ForEachChunk(n, chunk, func(cc *Ctx, lo, hi int) {
		slot := int(offsets[lo/chunk])
		for i := lo; i < hi; i++ {
			if pred(i) {
				out[slot] = i
				cc.Meter().Write(1)
				slot++
			}
		}
		cc.Meter().Op(hi - lo)
		cc.AddDepth(int64(hi - lo))
	})
	return out
}
