package graph

import "sort"

// This file implements the §6 transform from an arbitrary graph G to a
// bounded-degree graph G' on O(m) vertices that answers connectivity (and,
// with care, biconnectivity) queries for G. Each vertex v whose degree
// exceeds the bound is replaced by a chain of deg(v) gadget nodes, one per
// incident edge slot, linked consecutively; the i-th incident edge of v
// attaches to the i-th gadget node. Gadget nodes then have degree at most 3.
//
// The paper describes a binary-tree gadget; a chain is the depth-(d) special
// case of the same construction and preserves exactly the properties §6
// argues for: connectivity is untouched, a bridge of G maps to a bridge of
// G', and vertices of G map to connected gadget subgraphs of G'.

// Bounded is the result of BoundDegree: the transformed graph plus the
// mappings between original and gadget vertices.
type Bounded struct {
	G *Graph
	// Orig[w] is the original vertex that gadget/plain vertex w represents.
	Orig []int32
	// Base[v] is the first new-graph vertex representing original vertex v;
	// vertices representing v are Base[v] .. Base[v]+GadgetSize(v)-1.
	Base []int32
	// expanded[v] reports whether v was replaced by a multi-node gadget.
	expanded []bool
	src      *Graph
}

// BoundDegree transforms g into a graph of maximum degree <= maxDeg+? — in
// fact at most max(maxDeg, 3): vertices of degree <= maxDeg are kept as-is,
// larger vertices become chains whose nodes have degree at most 3. maxDeg
// must be at least 3.
func BoundDegree(g *Graph, maxDeg int) *Bounded {
	if maxDeg < 3 {
		panic("graph: BoundDegree needs maxDeg >= 3")
	}
	n := g.N()
	base := make([]int32, n)
	expanded := make([]bool, n)
	next := int32(0)
	for v := 0; v < n; v++ {
		base[v] = next
		d := g.Degree(v)
		if d > maxDeg {
			expanded[v] = true
			next += int32(d)
		} else {
			next++
		}
	}
	nn := int(next)
	orig := make([]int32, nn)
	for v := 0; v < n; v++ {
		sz := 1
		if expanded[v] {
			sz = g.Degree(v)
		}
		for i := 0; i < sz; i++ {
			orig[base[v]+int32(i)] = int32(v)
		}
	}

	edges := make([][2]int32, 0, g.M()+nn-n)
	// Chain edges inside each gadget.
	for v := 0; v < n; v++ {
		if expanded[v] {
			d := g.Degree(v)
			for i := 0; i+1 < d; i++ {
				edges = append(edges, [2]int32{base[v] + int32(i), base[v] + int32(i+1)})
			}
		}
	}
	// Original edges, re-attached to gadget slots. Adjacency lists are
	// sorted, so the occurrences of u in v's list are contiguous; the t-th
	// occurrence of u in v's list pairs with the t-th occurrence of v in
	// u's list, which resolves parallel edges consistently.
	b := &Bounded{Orig: orig, Base: base, expanded: expanded, src: g}
	for v := 0; v < n; v++ {
		a := g.Adj(v)
		for j := 0; j < len(a); j++ {
			u := int(a[j])
			if u < v {
				continue
			}
			if u == v {
				// Self-loop: occupies slots j and j+1 of v's own list.
				edges = append(edges, [2]int32{b.slotNode(v, j), b.slotNode(v, j+1)})
				j++ // consume the twin occurrence
				continue
			}
			t := j - firstSlot(g, v, int32(u))
			i := firstSlot(g, u, int32(v)) + t
			edges = append(edges, [2]int32{b.slotNode(v, j), b.slotNode(u, i)})
		}
	}
	b.G = FromEdges(nn, edges)
	return b
}

// firstSlot returns the first index of u in v's sorted adjacency list.
func firstSlot(g *Graph, v int, u int32) int {
	a := g.Adj(v)
	return sort.Search(len(a), func(i int) bool { return a[i] >= u })
}

// slotNode returns the new-graph vertex that carries original vertex v's
// slot-th incident edge.
func (b *Bounded) slotNode(v, slot int) int32 {
	if b.expanded[v] {
		return b.Base[v] + int32(slot)
	}
	return b.Base[v]
}

// Rep returns the canonical new-graph vertex representing original vertex v
// (the first gadget node). Connectivity queries for v in the original graph
// are answered at Rep(v) in the bounded graph.
func (b *Bounded) Rep(v int) int32 { return b.Base[v] }

// EdgeEndpoints maps the original edge that is the slot-th entry of v's
// adjacency list to its endpoints in the bounded graph.
func (b *Bounded) EdgeEndpoints(v, slot int) (int32, int32) {
	u := int(b.src.Adj(v)[slot])
	if u == v {
		return b.slotNode(v, slot), b.slotNode(v, slot+1)
	}
	t := slot - firstSlot(b.src, v, int32(u))
	i := firstSlot(b.src, u, int32(v)) + t
	return b.slotNode(v, slot), b.slotNode(u, i)
}

// IsVirtualEdge reports whether new-graph edge {x,y} is a gadget chain edge
// (both endpoints represent the same original vertex).
func (b *Bounded) IsVirtualEdge(x, y int32) bool {
	return b.Orig[x] == b.Orig[y]
}
