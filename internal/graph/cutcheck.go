package graph

// RemovalPreservesConnectivity reports whether removing one copy of
// edges[skip] keeps its endpoints connected through the remaining multiset
// (O(n+m) BFS over an adjacency built on the fly). Self-loops trivially
// preserve connectivity; a surviving parallel copy shows up as a direct
// path. This is the workload-construction check the churn harnesses and
// tests use to pick deletions the serving layer's spanning-forest
// maintenance must absorb without a rebuild — it is not on any serving
// path and is unmetered.
func RemovalPreservesConnectivity(n int, edges [][2]int32, skip int) bool {
	u, v := edges[skip][0], edges[skip][1]
	if u == v {
		return true
	}
	adj := make([][]int32, n)
	for i, e := range edges {
		if i == skip {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n)
	seen[u] = true
	stack := []int32{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		for _, y := range adj[x] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}
