package graph

import (
	"reflect"
	"testing"

	"repro/internal/asym"
)

func TestEdgesSelfLoopCountsOnce(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 0}, {0, 1}, {0, 1}, {2, 2}, {2, 2}})
	es := g.Edges()
	if len(es) != g.M() {
		t.Fatalf("Edges() has %d entries, M()=%d", len(es), g.M())
	}
	want := [][2]int32{{0, 0}, {0, 1}, {0, 1}, {2, 2}, {2, 2}}
	if !reflect.DeepEqual(es, want) {
		t.Fatalf("Edges()=%v want %v", es, want)
	}
}

func TestEdgeMultiplicity(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {0, 1}, {1, 2}, {3, 3}})
	for _, tc := range []struct {
		u, v int32
		want int
	}{
		{0, 1, 2}, {1, 0, 2}, {1, 2, 1}, {2, 1, 1}, {3, 3, 1},
		{0, 2, 0}, {0, 3, 0}, {0, 0, 0}, {-1, 0, 0}, {0, 9, 0},
	} {
		if got := g.EdgeMultiplicity(tc.u, tc.v); got != tc.want {
			t.Errorf("EdgeMultiplicity(%d,%d)=%d want %d", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestOverlayBuildMatchesFromEdges(t *testing.T) {
	base := GNM(40, 80, 11, true)
	ov := NewOverlay(base)
	add := [][2]int32{{0, 39}, {5, 5}, {0, 39}}
	if err := ov.AddEdges(add); err != nil {
		t.Fatal(err)
	}
	rm := base.Edges()[:3]
	if err := ov.RemoveEdges(rm); err != nil {
		t.Fatal(err)
	}
	if ov.Added() != 3 || ov.Removed() != 3 {
		t.Fatalf("added=%d removed=%d", ov.Added(), ov.Removed())
	}
	m := asym.NewMeter(64)
	got := ov.Build(m)

	// Expected: base edges minus the removed prefix, plus the additions.
	want := append(append([][2]int32{}, base.Edges()[3:]...), add...)
	exp := FromEdges(base.N(), want)
	if !reflect.DeepEqual(got.Edges(), exp.Edges()) {
		t.Fatalf("overlay build differs from FromEdges rebuild")
	}
	if got.N() != base.N() || got.M() != base.M() {
		t.Fatalf("shape n=%d m=%d want n=%d m=%d", got.N(), got.M(), base.N(), base.M())
	}
	if m.Writes() < int64(got.N()+2*got.M()) {
		t.Fatalf("build writes %d not charged for the new CSR", m.Writes())
	}
	// Base untouched.
	if base.M() != len(base.Edges()) {
		t.Fatal("base mutated")
	}
}

func TestOverlayRemoveStagedAdd(t *testing.T) {
	base := Path(4) // 0-1-2-3
	ov := NewOverlay(base)
	if err := ov.AddEdges([][2]int32{{0, 3}}); err != nil {
		t.Fatal(err)
	}
	// Removing the just-staged edge is legal (multiset includes the delta).
	if err := ov.RemoveEdges([][2]int32{{3, 0}}); err != nil {
		t.Fatal(err)
	}
	g := ov.Build(asym.NewMeter(1))
	if !reflect.DeepEqual(g.Edges(), base.Edges()) {
		t.Fatalf("add+remove not a no-op: %v", g.Edges())
	}
}

func TestOverlayErrors(t *testing.T) {
	base := Path(4)
	ov := NewOverlay(base)
	if err := ov.AddEdges([][2]int32{{0, 4}}); err == nil {
		t.Fatal("out-of-range add accepted")
	}
	if err := ov.AddEdges([][2]int32{{-1, 0}}); err == nil {
		t.Fatal("negative add accepted")
	}
	if err := ov.RemoveEdges([][2]int32{{0, 2}}); err == nil {
		t.Fatal("absent removal accepted")
	}
	// Removing one copy twice when only one exists must fail atomically:
	// the single {0,1} copy cannot satisfy both removals...
	if err := ov.RemoveEdges([][2]int32{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("double removal of a single copy accepted")
	}
	// ...and the failed batch must not have staged anything.
	if ov.Removed() != 0 {
		t.Fatalf("failed batch staged %d removals", ov.Removed())
	}
	if err := ov.RemoveEdges([][2]int32{{0, 1}}); err != nil {
		t.Fatalf("single removal after failed batch: %v", err)
	}
}
