package graph

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). The repository uses it instead of math/rand so that every
// experiment is reproducible from a seed and so that the sampling step of
// Algorithm 1 (pick each vertex with probability 1/k) can be re-derived
// per-vertex from a hash without storing per-vertex state — the same trick
// the paper's "edges selected based on Boolean hash functions" motivation
// uses for implicit graphs.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 pseudo-random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("graph: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Hash64 mixes x with a fixed seed into 64 pseudo-random bits. Stateless;
// used for per-vertex coin flips (primary-center sampling) and per-edge
// Boolean hash functions (examples/socialhash).
func Hash64(seed, x uint64) uint64 {
	z := x + seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
