// Package graph provides the undirected-graph substrate used by every
// algorithm in this repository: a compact CSR (compressed sparse row)
// representation, a cost-metered access view for the Asymmetric RAM model,
// deterministic vertex priorities for the tie-breaking rule of §3, synthetic
// generators for the workloads the paper motivates, and the §6 transform
// from unbounded-degree to bounded-degree graphs.
//
// Graphs are simple to construct from edge lists and may contain self-loops
// and parallel edges (the paper permits both); generators in this package
// avoid them unless documented otherwise.
package graph

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/asym"
)

// Graph is an immutable undirected graph in CSR form. Vertex ids are
// 0..N()-1. Each undirected edge {u,v} appears once in u's adjacency list
// and once in v's (a self-loop appears twice in its endpoint's list).
//
// The total order on vertices required by the paper's tie-breaking rule
// (§3: "we assume a global ordering of the vertices") is the id order:
// lower id = higher priority.
type Graph struct {
	off []int32 // len n+1, prefix offsets into adj
	adj []int32 // concatenated adjacency lists, len 2m
	m   int     // number of undirected edges
}

// FromEdges builds a graph on n vertices from an undirected edge list.
// Adjacency lists are sorted by neighbor id so iteration order — and hence
// the deterministic BFS of package decomp — is reproducible.
func FromEdges(n int, edges [][2]int32) *Graph {
	deg := make([]int32, n)
	for _, e := range edges {
		if int(e[0]) >= n || int(e[1]) >= n || e[0] < 0 || e[1] < 0 {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", e[0], e[1], n))
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i]
	}
	adj := make([]int32, off[n])
	pos := make([]int32, n)
	copy(pos, off[:n])
	for _, e := range edges {
		u, v := e[0], e[1]
		adj[pos[u]] = v
		pos[u]++
		adj[pos[v]] = u
		pos[v]++
	}
	g := &Graph{off: off, adj: adj, m: len(edges)}
	g.sortAdj()
	return g
}

// sortAdj sorts every adjacency list by neighbor id. slices.Sort
// specializes the comparison to int32 (no per-element interface closure,
// unlike sort.Slice), which makes CSR packing the cheap part of a snapshot
// rebuild — the dynamic update path re-materializes the CSR every epoch.
func (g *Graph) sortAdj() {
	n := g.N()
	for v := 0; v < n; v++ {
		slices.Sort(g.adj[g.off[v]:g.off[v+1]])
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.off) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v (self-loops count twice). Unmetered.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// Adj returns v's adjacency list as a shared slice. Unmetered; algorithms
// under cost accounting must use View instead.
func (g *Graph) Adj(v int) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	md := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > md {
			md = d
		}
	}
	return md
}

// EdgeIndex locates neighbor slot: returns the position j (relative to v's
// list) of the j-th incident edge such that Adj(v)[j] == u, starting the
// search at fromSlot. Used by the §6 transform, which needs each edge's
// position in both endpoint lists.
func (g *Graph) EdgeIndex(v int, u int32, fromSlot int) int {
	a := g.Adj(v)
	for j := fromSlot; j < len(a); j++ {
		if a[j] == u {
			return j
		}
	}
	return -1
}

// EdgeMultiplicity returns how many copies of the undirected edge {u,v} the
// graph contains (0 when absent). Self-loops count each loop once even
// though it occupies two adjacency slots. Unmetered; used by the dynamic
// update path to validate removals. O(log deg(u)) via binary search on the
// sorted adjacency list.
func (g *Graph) EdgeMultiplicity(u, v int32) int {
	if u < 0 || v < 0 || int(u) >= g.N() || int(v) >= g.N() {
		return 0
	}
	a := g.Adj(int(u))
	lo := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	hi := sort.Search(len(a), func(i int) bool { return a[i] > v })
	c := hi - lo
	if u == v {
		c /= 2
	}
	return c
}

// Edges materializes the undirected edge list with u <= v, sorted. The
// result has exactly M() entries: parallel edges appear once per copy and a
// self-loop appears once (its two adjacency slots are one edge). Intended
// for tests and I/O, not for metered algorithms.
func (g *Graph) Edges() [][2]int32 {
	out := make([][2]int32, 0, g.m)
	for v := int32(0); int(v) < g.N(); v++ {
		loopSlot := false
		for _, u := range g.Adj(int(v)) {
			if u == v {
				// A self-loop occupies two slots in v's list; emit on
				// every second one.
				loopSlot = !loopSlot
				if loopSlot {
					continue
				}
			}
			if u >= v {
				out = append(out, [2]int32{v, u})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// View is a cost-metered window onto a Graph: the graph lives in asymmetric
// memory, so every adjacency access charges reads to the meter. Reading a
// vertex's degree is one read (the offset word); reading each neighbor is
// one read per adjacency word.
type View struct {
	G *Graph
	M *asym.Meter
}

// Degree returns v's degree, charging one read.
func (vw View) Degree(v int) int {
	vw.M.Read(1)
	return vw.G.Degree(v)
}

// Neighbor returns the i-th neighbor of v, charging one read.
func (vw View) Neighbor(v, i int) int32 {
	vw.M.Read(1)
	return vw.G.adj[vw.G.off[v]+int32(i)]
}

// VisitNeighbors calls f for each neighbor of v in priority (id) order,
// charging one read per neighbor plus one for the degree.
func (vw View) VisitNeighbors(v int, f func(u int32)) {
	d := vw.Degree(v)
	for i := 0; i < d; i++ {
		f(vw.Neighbor(v, i))
	}
}

// Callers that iterate a CSR span directly via G.Adj (the zero-alloc query
// fast path in internal/decomp) must charge vw.M.Read for exactly the
// slots they scan, so charged totals stay identical to the per-slot
// Neighbor path even on an early exit mid-scan.
