package graph

import (
	"fmt"

	"repro/internal/asym"
)

// Overlay is a mutable edge-multiset delta staged on top of an immutable
// base Graph. It is the batch-update half of the dynamic serving path:
// callers stage AddEdges / RemoveEdges batches and then Build a fresh
// immutable *Graph, leaving the base untouched so readers holding it keep
// working (copy-on-write). The vertex set is fixed to the base's — edge
// churn only, which is what the serving layer's update endpoint accepts.
//
// Semantics are multiset semantics, matching the package's tolerance of
// parallel edges: AddEdges appends copies, RemoveEdges removes one copy per
// requested pair and fails if no copy is present (counting copies staged by
// earlier AddEdges calls on the same overlay). Within one overlay the
// operations compose in call order.
//
// Overlay is not safe for concurrent use; the serving layer serializes
// staging under its own lock.
type Overlay struct {
	base *Graph
	// delta[e] is the staged multiplicity change of the normalized edge e
	// (u <= v): positive for net additions, negative for net removals.
	delta          map[[2]int32]int
	added, removed int
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base *Graph) *Overlay {
	return &Overlay{base: base, delta: map[[2]int32]int{}}
}

// Base returns the graph the overlay builds on.
func (o *Overlay) Base() *Graph { return o.base }

// Added returns the number of edge copies staged for addition.
func (o *Overlay) Added() int { return o.added }

// Removed returns the number of edge copies staged for removal.
func (o *Overlay) Removed() int { return o.removed }

// NormEdge returns the undirected edge in its canonical u <= v order — the
// multiset key used by Overlay and by the serving layer's staged-update
// validation.
func NormEdge(e [2]int32) [2]int32 {
	if e[0] > e[1] {
		return [2]int32{e[1], e[0]}
	}
	return e
}

// AddEdges stages one copy of every listed edge. Self-loops and parallel
// edges are allowed; vertices must lie in [0, base.N()).
func (o *Overlay) AddEdges(edges [][2]int32) error {
	n := int32(o.base.N())
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return fmt.Errorf("graph: add edge (%d,%d) out of range n=%d", e[0], e[1], n)
		}
	}
	for _, e := range edges {
		o.delta[NormEdge(e)]++
		o.added++
	}
	return nil
}

// RemoveEdges stages the removal of one copy of every listed edge. A
// removal fails when the edge has no remaining copy in base plus the
// already-staged delta; on failure the overlay is left unchanged.
func (o *Overlay) RemoveEdges(edges [][2]int32) error {
	// Validate the whole batch against a scratch delta first so a failure
	// mid-batch cannot leave a partial removal staged.
	scratch := map[[2]int32]int{}
	for _, e := range edges {
		key := NormEdge(e)
		if o.base.EdgeMultiplicity(key[0], key[1])+o.delta[key]+scratch[key] <= 0 {
			return fmt.Errorf("graph: remove edge (%d,%d): not present", e[0], e[1])
		}
		scratch[key]--
	}
	for key, d := range scratch {
		o.delta[key] += d
		o.removed -= d
	}
	return nil
}

// Build materializes the overlay as a new immutable Graph, charging the
// construction to m: one read per base adjacency slot scanned and one write
// per word of the new CSR (offsets plus adjacency), the cost of writing the
// next snapshot into asymmetric memory. The base is not modified.
func (o *Overlay) Build(m *asym.Meter) *Graph {
	edges := make([][2]int32, 0, o.base.M()+o.added-o.removed)
	pending := make(map[[2]int32]int, len(o.delta))
	for k, d := range o.delta {
		if d != 0 {
			pending[k] = d
		}
	}
	m.Read(2 * o.base.M()) // scan the base adjacency structure
	for _, e := range o.base.Edges() {
		if d := pending[e]; d < 0 {
			pending[e]++ // drop one copy
			continue
		}
		edges = append(edges, e)
	}
	for k, d := range pending {
		for ; d > 0; d-- {
			edges = append(edges, k)
		}
	}
	g := FromEdges(o.base.N(), edges)
	m.Write(g.N() + 1 + 2*g.M()) // the new CSR (offsets + adjacency)
	return g
}

// BuildPlain materializes the overlay without cost accounting — for I/O and
// recovery paths that live outside the asymmetric cost model (the durable
// store's snapshot materialization).
func (o *Overlay) BuildPlain() *Graph {
	return o.Build(asym.NewMeter(1))
}
