package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
)

func TestFromEdgesBasics(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if got := g.Adj(0); got[0] != 1 || got[1] != 3 {
		t.Fatalf("Adj(0) = %v (want sorted [1 3])", got)
	}
}

func TestFromEdgesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range edge")
		}
	}()
	FromEdges(2, [][2]int32{{0, 2}})
}

func TestSelfLoopAndParallel(t *testing.T) {
	g := FromEdges(2, [][2]int32{{0, 0}, {0, 1}, {0, 1}})
	if g.Degree(0) != 4 { // self-loop twice + two parallel edges
		t.Fatalf("degree(0) = %d, want 4", g.Degree(0))
	}
	if g.Degree(1) != 2 {
		t.Fatalf("degree(1) = %d, want 2", g.Degree(1))
	}
	if g.M() != 3 {
		t.Fatalf("m = %d", g.M())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	g := FromEdges(4, in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("edges = %v", out)
	}
	g2 := FromEdges(4, out)
	out2 := g2.Edges()
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, out[i], out2[i])
		}
	}
}

func TestViewMetersReads(t *testing.T) {
	g := Cycle(5)
	m := asym.NewMeter(4)
	vw := View{G: g, M: m}
	if vw.Degree(0) != 2 {
		t.Fatal("degree")
	}
	if m.Reads() != 1 {
		t.Fatalf("reads after Degree = %d", m.Reads())
	}
	count := 0
	vw.VisitNeighbors(0, func(u int32) { count++ })
	if count != 2 {
		t.Fatalf("neighbors visited = %d", count)
	}
	if m.Reads() != 1+1+2 {
		t.Fatalf("reads = %d, want 4", m.Reads())
	}
	if got := vw.Neighbor(0, 0); got != 1 {
		t.Fatalf("Neighbor = %d", got)
	}
}

func TestCycleGridPathStructure(t *testing.T) {
	if g := Cycle(10); g.N() != 10 || g.M() != 10 || g.MaxDegree() != 2 {
		t.Fatal("cycle shape")
	}
	if g := Path(10); g.M() != 9 || g.MaxDegree() != 2 {
		t.Fatal("path shape")
	}
	g := Grid2D(5, 7)
	if g.N() != 35 || g.M() != 5*6+4*7 {
		t.Fatalf("grid m = %d", g.M())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("grid max degree = %d", g.MaxDegree())
	}
}

func TestCycleTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Cycle(2)
}

func countComponentsRef(g *Graph) int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		stack := []int{s}
		comp[s] = c
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Adj(v) {
				if comp[u] < 0 {
					comp[u] = c
					stack = append(stack, int(u))
				}
			}
		}
		c++
	}
	return c
}

func TestRandomRegularConnectedBounded(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		g := RandomRegular(200, d, 42)
		if g.N() != 200 {
			t.Fatalf("n = %d", g.N())
		}
		if g.MaxDegree() > d {
			t.Fatalf("d=%d: max degree %d", d, g.MaxDegree())
		}
		if countComponentsRef(g) != 1 {
			t.Fatalf("d=%d: not connected", d)
		}
	}
}

func TestRandomRegularPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RandomRegular(10, 1, 1) },
		func() { RandomRegular(11, 3, 1) }, // odd n*d
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestGNM(t *testing.T) {
	g := GNM(100, 300, 7, true)
	if g.N() != 100 || g.M() != 300 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if countComponentsRef(g) != 1 {
		t.Fatal("connected GNM not connected")
	}
	// No self loops or duplicates.
	seen := map[[2]int32]bool{}
	for _, e := range g.Edges() {
		if e[0] == e[1] {
			t.Fatal("self loop")
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestGNMDisconnectedAllowed(t *testing.T) {
	g := GNM(50, 10, 3, false)
	if g.M() != 10 {
		t.Fatalf("m = %d", g.M())
	}
}

func TestGNMConnectTooFewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GNM(10, 5, 1, true)
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(64, 9)
	if g.M() != 63 || countComponentsRef(g) != 1 {
		t.Fatalf("tree m=%d comps=%d", g.M(), countComponentsRef(g))
	}
}

func TestStarCompleteShapes(t *testing.T) {
	if g := Star(10); g.Degree(0) != 9 || g.M() != 9 {
		t.Fatal("star shape")
	}
	if g := Complete(6); g.M() != 15 || g.MaxDegree() != 5 {
		t.Fatal("complete shape")
	}
}

func TestLollipopLadder(t *testing.T) {
	g := Lollipop(10, 5)
	if g.N() != 15 || countComponentsRef(g) != 1 {
		t.Fatal("lollipop")
	}
	l := Ladder(8)
	if l.N() != 16 || l.M() != 8+2*7 || countComponentsRef(l) != 1 {
		t.Fatal("ladder")
	}
}

func TestPercolationBounds(t *testing.T) {
	g := Percolation(20, 20, 0.5, 11)
	if g.N() != 400 {
		t.Fatal("n")
	}
	full := Grid2D(20, 20)
	if g.M() > full.M() {
		t.Fatal("more edges than the lattice")
	}
	if p0 := Percolation(10, 10, 0, 1); p0.M() != 0 {
		t.Fatal("p=0 has edges")
	}
	if p1 := Percolation(10, 10, 1.001, 1); p1.M() != Grid2D(10, 10).M() {
		t.Fatal("p=1 missing edges")
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := PowerLaw(500, 3, 5)
	if g.N() != 500 {
		t.Fatal("n")
	}
	if g.MaxDegree() < 10 {
		t.Fatalf("max degree %d: expected a hub", g.MaxDegree())
	}
	if countComponentsRef(g) != 1 {
		t.Fatal("power law disconnected")
	}
}

func TestDisconnected(t *testing.T) {
	g := Disconnected(Cycle(5), 4)
	if g.N() != 20 || g.M() != 20 {
		t.Fatal("shape")
	}
	if countComponentsRef(g) != 4 {
		t.Fatalf("components = %d", countComponentsRef(g))
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(33), NewRNG(33)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Next() == NewRNG(2).Next() {
		t.Fatal("different seeds collided immediately")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := NewRNG(77)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("not deterministic")
	}
	if Hash64(1, 2) == Hash64(2, 2) {
		t.Fatal("seed ignored")
	}
}

func TestEdgeIndex(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {0, 1}, {0, 2}})
	// Adj(0) sorted = [1 1 2]
	if j := g.EdgeIndex(0, 1, 0); j != 0 {
		t.Fatalf("first occurrence at %d", j)
	}
	if j := g.EdgeIndex(0, 1, 1); j != 1 {
		t.Fatalf("second occurrence at %d", j)
	}
	if j := g.EdgeIndex(0, 3, 0); j != -1 {
		t.Fatalf("missing neighbor found at %d", j)
	}
}

// --- Degree bounding (§6) ---

func TestBoundDegreeIdentityOnBounded(t *testing.T) {
	g := Cycle(10)
	b := BoundDegree(g, 3)
	if b.G.N() != 10 || b.G.M() != 10 {
		t.Fatal("bounded graph changed a bounded input")
	}
}

func TestBoundDegreeStar(t *testing.T) {
	g := Star(50) // center degree 49
	b := BoundDegree(g, 3)
	if b.G.MaxDegree() > 3 {
		t.Fatalf("max degree %d after transform", b.G.MaxDegree())
	}
	// n' = 49 gadget nodes for center + 49 leaves.
	if b.G.N() != 49+49 {
		t.Fatalf("n' = %d", b.G.N())
	}
	if countComponentsRef(b.G) != 1 {
		t.Fatal("transform disconnected the star")
	}
	// All gadget nodes of the center map back to vertex 0.
	for w := 0; w < b.G.N(); w++ {
		if b.Orig[w] == 0 && b.Rep(0) > int32(w) {
			t.Fatal("Rep is not the first gadget node")
		}
	}
}

func TestBoundDegreePreservesComponents(t *testing.T) {
	g := Disconnected(Star(20), 3)
	b := BoundDegree(g, 3)
	if got := countComponentsRef(b.G); got != 3 {
		t.Fatalf("components = %d, want 3", got)
	}
}

func TestBoundDegreeEdgeEndpoints(t *testing.T) {
	g := Star(10)
	b := BoundDegree(g, 3)
	for slot := 0; slot < g.Degree(0); slot++ {
		x, y := b.EdgeEndpoints(0, slot)
		if b.Orig[x] != 0 {
			t.Fatalf("slot %d: x maps to %d", slot, b.Orig[x])
		}
		leaf := g.Adj(0)[slot]
		if b.Orig[y] != leaf {
			t.Fatalf("slot %d: y maps to %d, want %d", slot, b.Orig[y], leaf)
		}
		if b.IsVirtualEdge(x, y) {
			t.Fatal("real edge flagged virtual")
		}
	}
}

func TestBoundDegreeVirtualEdges(t *testing.T) {
	b := BoundDegree(Star(10), 3)
	virtual := 0
	for _, e := range b.G.Edges() {
		if b.IsVirtualEdge(e[0], e[1]) {
			virtual++
		}
	}
	if virtual != 9-1 { // chain of 9 gadget nodes has 8 internal edges
		t.Fatalf("virtual edges = %d, want 8", virtual)
	}
}

func TestBoundDegreePanicsBelow3(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BoundDegree(Cycle(4), 2)
}

func TestBoundDegreePowerLawProperty(t *testing.T) {
	// Property: for arbitrary preferential-attachment graphs the transform
	// yields max degree <= 3 and the same number of components, and the
	// number of non-virtual edges equals m.
	f := func(seed uint64) bool {
		g := PowerLaw(120, 4, seed)
		b := BoundDegree(g, 3)
		if b.G.MaxDegree() > 3 {
			return false
		}
		if countComponentsRef(b.G) != countComponentsRef(g) {
			return false
		}
		real := 0
		for _, e := range b.G.Edges() {
			if !b.IsVirtualEdge(e[0], e[1]) {
				real++
			}
		}
		return real == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundDegreeSelfLoop(t *testing.T) {
	// Vertex 0 with a self-loop and enough other edges to force expansion.
	edges := [][2]int32{{0, 0}}
	for v := int32(1); v <= 6; v++ {
		edges = append(edges, [2]int32{0, v})
	}
	g := FromEdges(7, edges)
	b := BoundDegree(g, 3)
	if b.G.MaxDegree() > 3 {
		t.Fatalf("max degree %d", b.G.MaxDegree())
	}
	if countComponentsRef(b.G) != 1 {
		t.Fatal("disconnected")
	}
}

func TestMaxDegree(t *testing.T) {
	if Star(5).MaxDegree() != 4 {
		t.Fatal("star max degree")
	}
	if FromEdges(3, nil).MaxDegree() != 0 {
		t.Fatal("empty graph max degree")
	}
}
