package graph

import "fmt"

// This file provides the synthetic workloads used by the experiments:
// bounded-degree families (regular graphs, grids, cycles, trees) for the
// sparse-oracle results, ER-style G(n,m) for the dense results, lollipops
// and ladders for biconnectivity structure, and a bond-percolation lattice
// matching the Swendsen–Wang motivation of §1.

// Cycle returns the n-cycle (n >= 3), a 2-regular connected graph.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	edges := make([][2]int32, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int32{int32(i), int32((i + 1) % n)}
	}
	return FromEdges(n, edges)
}

// Path returns the n-vertex path graph.
func Path(n int) *Graph {
	edges := make([][2]int32, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	return FromEdges(n, edges)
}

// Grid2D returns the rows×cols grid graph, a bounded-degree (≤4) connected
// planar graph. Vertex (r,c) has id r*cols+c.
func Grid2D(rows, cols int) *Graph {
	n := rows * cols
	edges := make([][2]int32, 0, 2*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := int32(r*cols + c)
			if c+1 < cols {
				edges = append(edges, [2]int32{v, v + 1})
			}
			if r+1 < rows {
				edges = append(edges, [2]int32{v, v + int32(cols)})
			}
		}
	}
	return FromEdges(n, edges)
}

// RandomRegular returns a connected random d-regular multigraph-free graph
// on n vertices via repeated pairing with retries (configuration model with
// rejection of self-loops/duplicates, then connectivity patching along a
// Hamiltonian backbone if pairing fails). n*d must be even, d >= 2.
//
// For d=2 it simply returns the cycle. The result is guaranteed connected:
// it starts from a cycle backbone (ensuring connectivity) and fills the
// remaining d-2 slots per vertex by random matching, which keeps the graph
// d-regular whenever the matching succeeds; leftover unmatched slots are
// dropped, so a few vertices may have degree d-1. Degree stays ≤ d, which
// is all the bounded-degree algorithms require.
func RandomRegular(n, d int, seed uint64) *Graph {
	if d < 2 {
		panic("graph: RandomRegular needs d >= 2")
	}
	if n*d%2 != 0 {
		panic("graph: RandomRegular needs n*d even")
	}
	if d == 2 {
		return Cycle(n)
	}
	rng := NewRNG(seed)
	edges := make([][2]int32, 0, n*d/2)
	seen := make(map[[2]int32]bool, n*d/2)
	addEdge := func(u, v int32) bool {
		if u == v {
			return false
		}
		key := [2]int32{min32(u, v), max32(u, v)}
		if seen[key] {
			return false
		}
		seen[key] = true
		edges = append(edges, key)
		return true
	}
	// Backbone cycle guarantees connectivity and gives every vertex degree 2.
	for i := 0; i < n; i++ {
		addEdge(int32(i), int32((i+1)%n))
	}
	// Remaining slots: d-2 per vertex, matched randomly with retries.
	slots := make([]int32, 0, n*(d-2))
	for i := 0; i < n; i++ {
		for j := 0; j < d-2; j++ {
			slots = append(slots, int32(i))
		}
	}
	for attempt := 0; attempt < 20 && len(slots) > 1; attempt++ {
		// Fisher-Yates shuffle then greedy pairing.
		for i := len(slots) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			slots[i], slots[j] = slots[j], slots[i]
		}
		rest := slots[:0]
		for i := 0; i+1 < len(slots); i += 2 {
			if !addEdge(slots[i], slots[i+1]) {
				rest = append(rest, slots[i], slots[i+1])
			}
		}
		if len(slots)%2 == 1 {
			rest = append(rest, slots[len(slots)-1])
		}
		slots = rest
	}
	return FromEdges(n, edges)
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// GNM returns an Erdős–Rényi-style G(n,m) graph: m distinct edges sampled
// uniformly (no self-loops, no duplicates). When connect is true a random
// spanning backbone is added first so the graph is connected (m must then
// be >= n-1).
func GNM(n, m int, seed uint64, connect bool) *Graph {
	rng := NewRNG(seed)
	edges := make([][2]int32, 0, m)
	seen := make(map[[2]int32]bool, m)
	add := func(u, v int32) bool {
		if u == v {
			return false
		}
		key := [2]int32{min32(u, v), max32(u, v)}
		if seen[key] {
			return false
		}
		seen[key] = true
		edges = append(edges, key)
		return true
	}
	if connect {
		if m < n-1 {
			panic(fmt.Sprintf("graph: GNM connect needs m >= n-1 (n=%d m=%d)", n, m))
		}
		// Random recursive tree backbone.
		for v := 1; v < n; v++ {
			u := rng.Intn(v)
			add(int32(u), int32(v))
		}
	}
	for len(edges) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		add(u, v)
	}
	return FromEdges(n, edges)
}

// RandomTree returns a uniform random recursive tree on n vertices.
func RandomTree(n int, seed uint64) *Graph {
	rng := NewRNG(seed)
	edges := make([][2]int32, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int32{int32(rng.Intn(v)), int32(v)})
	}
	return FromEdges(n, edges)
}

// Star returns the star K_{1,n-1}: vertex 0 connected to all others. The
// canonical unbounded-degree input for the §6 transform.
func Star(n int) *Graph {
	edges := make([][2]int32, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int32{0, int32(v)})
	}
	return FromEdges(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	edges := make([][2]int32, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	return FromEdges(n, edges)
}

// Lollipop returns a clique of size cliqueN attached by a single bridge to a
// path of size pathN — a worst case with one articulation point and a long
// bridge chain, used by the biconnectivity experiments.
func Lollipop(cliqueN, pathN int) *Graph {
	n := cliqueN + pathN
	edges := make([][2]int32, 0, cliqueN*(cliqueN-1)/2+pathN)
	for u := 0; u < cliqueN; u++ {
		for v := u + 1; v < cliqueN; v++ {
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	for i := 0; i < pathN; i++ {
		u := cliqueN + i - 1
		if i == 0 {
			u = cliqueN - 1
		}
		edges = append(edges, [2]int32{int32(u), int32(cliqueN + i)})
	}
	return FromEdges(n, edges)
}

// Ladder returns the 2×n ladder graph (a biconnected bounded-degree graph).
func Ladder(n int) *Graph {
	edges := make([][2]int32, 0, 3*n)
	for i := 0; i < n; i++ {
		a, b := int32(2*i), int32(2*i+1)
		edges = append(edges, [2]int32{a, b})
		if i+1 < n {
			edges = append(edges, [2]int32{a, a + 2}, [2]int32{b, b + 2})
		}
	}
	return FromEdges(2*n, edges)
}

// Percolation returns a bond-percolation sample of the rows×cols grid: each
// grid edge is kept independently with probability p. This reproduces the
// Swendsen–Wang workload of §1, where the same lattice is repeatedly
// re-sampled and each sample's connected components are needed.
func Percolation(rows, cols int, p float64, seed uint64) *Graph {
	n := rows * cols
	edges := make([][2]int32, 0, int(float64(2*n)*p)+16)
	rng := NewRNG(seed)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := int32(r*cols + c)
			if c+1 < cols && rng.Float64() < p {
				edges = append(edges, [2]int32{v, v + 1})
			}
			if r+1 < rows && rng.Float64() < p {
				edges = append(edges, [2]int32{v, v + int32(cols)})
			}
		}
	}
	return FromEdges(n, edges)
}

// PowerLaw returns a preferential-attachment graph: each new vertex attaches
// outDeg edges to earlier vertices chosen proportionally to degree (plus
// one). Produces the skewed degree distribution the §6 transform targets.
func PowerLaw(n, outDeg int, seed uint64) *Graph {
	rng := NewRNG(seed)
	edges := make([][2]int32, 0, n*outDeg)
	// targets holds one entry per edge endpoint, so sampling an index
	// uniformly samples a vertex proportionally to its degree.
	targets := make([]int32, 0, 2*n*outDeg)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		chosen := map[int32]bool{}
		for t := 0; t < outDeg && t < v; t++ {
			u := targets[rng.Intn(len(targets))]
			if u == int32(v) || chosen[u] {
				continue
			}
			chosen[u] = true
			edges = append(edges, [2]int32{u, int32(v)})
			targets = append(targets, u, int32(v))
		}
		if len(chosen) == 0 {
			u := int32(rng.Intn(v))
			edges = append(edges, [2]int32{u, int32(v)})
			targets = append(targets, u, int32(v))
		}
	}
	return FromEdges(n, edges)
}

// Disconnected returns a graph made of c disjoint copies of base. Used to
// exercise the unconnected-graph extension of Algorithm 1 (§3).
func Disconnected(base *Graph, c int) *Graph {
	n := base.N()
	edges := make([][2]int32, 0, c*base.M())
	for i := 0; i < c; i++ {
		off := int32(i * n)
		for _, e := range base.Edges() {
			edges = append(edges, [2]int32{e[0] + off, e[1] + off})
		}
	}
	return FromEdges(c*n, edges)
}
