package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// waitForState polls until the named graph reaches the wanted state.
func waitForState(t *testing.T, reg *Registry, name string, want GraphState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := reg.Status(name); ok && st.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, ok := reg.Status(name)
	t.Fatalf("graph %q never reached %s (now %+v ok=%v)", name, want, st, ok)
}

func doReq(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// TestHealthzNotReadyWindow is the readiness satellite: /healthz must
// report 503 from the moment the default graph is registered until its
// first snapshot is published, then 200 — and per-graph queries during the
// build window get 503 + Retry-After, not an answer from a half-built
// oracle.
func TestHealthzNotReadyWindow(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	t.Cleanup(reg.Close)
	gate := make(chan struct{})
	reg.beforeBuild = func(string) { <-gate }
	ts := httptest.NewServer(NewRegistryServer(reg))
	t.Cleanup(ts.Close)

	// Empty registry: not ready.
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty registry /healthz: %d, want 503", resp.StatusCode)
	}

	if _, err := reg.Create(GraphSpec{Name: "default", N: 64, Deg: 3}); err != nil {
		t.Fatal(err)
	}

	// The build is gated: the not-ready window is open.
	var health map[string]any
	resp, body := doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || health["ok"] != false || health["state"] != "building" {
		t.Fatalf("building /healthz: code=%d body=%v", resp.StatusCode, health)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/query", []byte(`{"kind":"component","u":0}`))
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("query during build: code=%d retry-after=%q, want 503 + Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stats during build: code=%d, want 503", resp.StatusCode)
	}

	// Publish the first snapshot; readiness flips.
	close(gate)
	waitForState(t, reg, "default", StateReady)
	resp, body = doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	health = nil
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health["ok"] != true {
		t.Fatalf("ready /healthz: code=%d body=%v", resp.StatusCode, health)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/query", []byte(`{"kind":"component","u":0}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after ready: %d", resp.StatusCode)
	}
}

// TestRegistryLifecycleHTTP walks the whole multi-graph lifecycle over
// HTTP: create two graphs (one generated, one uploaded via graphio), query
// both with per-graph answers isolated, list, delete one, and hit the
// error surfaces (duplicate, unknown, default-delete).
func TestRegistryLifecycleHTTP(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Engine: Config{Omega: 16, Seed: 5}})
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(NewRegistryServer(reg))
	t.Cleanup(ts.Close)

	// Graph A: generated, becomes the default.
	resp, body := doReq(t, http.MethodPost, ts.URL+"/graphs",
		[]byte(`{"name":"a","gen":"random-regular","n":120,"deg":3,"graph_seed":1,"wait":true}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create a: code=%d body=%s", resp.StatusCode, body)
	}

	// Graph B: uploaded edge list (a path of 4 vertices → 2 bridges from 3
	// edges; structurally nothing like A).
	spec := GraphSpec{Name: "b", Graphio: "# 4 3\n0 1\n1 2\n2 3\n", Wait: true}
	sb, _ := json.Marshal(spec)
	resp, body = doReq(t, http.MethodPost, ts.URL+"/graphs", sb)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create b: code=%d body=%s", resp.StatusCode, body)
	}

	// Listing shows both, A as default.
	var list GraphListResponse
	resp, body = doReq(t, http.MethodGet, ts.URL+"/graphs", nil)
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(list.Graphs) != 2 || list.Default != "a" {
		t.Fatalf("list: code=%d %+v", resp.StatusCode, list)
	}
	for _, g := range list.Graphs {
		if g.State != StateReady {
			t.Fatalf("graph %s state %s", g.Name, g.State)
		}
	}

	// Per-graph info reflects each graph's own shape (isolation at the
	// metadata level).
	var ia, ib Info
	_, body = doReq(t, http.MethodGet, ts.URL+"/graphs/a/info", nil)
	if err := json.Unmarshal(body, &ia); err != nil {
		t.Fatal(err)
	}
	_, body = doReq(t, http.MethodGet, ts.URL+"/graphs/b/info", nil)
	if err := json.Unmarshal(body, &ib); err != nil {
		t.Fatal(err)
	}
	if ia.GraphN != 120 || ib.GraphN != 4 || ib.GraphM != 3 {
		t.Fatalf("per-graph info not isolated: a=%+v b=%+v", ia, ib)
	}

	// Un-prefixed endpoints are the default graph: /info must equal
	// /graphs/a/info.
	var idef Info
	_, body = doReq(t, http.MethodGet, ts.URL+"/info", nil)
	if err := json.Unmarshal(body, &idef); err != nil {
		t.Fatal(err)
	}
	if idef.GraphN != ia.GraphN || idef.GraphM != ia.GraphM {
		t.Fatalf("default routing broken: /info=%+v /graphs/a/info=%+v", idef, ia)
	}

	// Per-graph answers come from that graph's oracle: vertex 1 on the
	// path is an articulation point; on the 3-regular graph A it is not.
	var ra, rb Result
	_, body = doReq(t, http.MethodPost, ts.URL+"/graphs/a/query", []byte(`{"kind":"articulation","u":1}`))
	if err := json.Unmarshal(body, &ra); err != nil {
		t.Fatal(err)
	}
	_, body = doReq(t, http.MethodPost, ts.URL+"/graphs/b/query", []byte(`{"kind":"articulation","u":1}`))
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if ra.Bool == nil || rb.Bool == nil || *ra.Bool || !*rb.Bool {
		t.Fatalf("cross-graph isolation: a=%+v b=%+v (want false/true)", ra, rb)
	}

	// Update one graph; the other's epoch must not move.
	resp, body = doReq(t, http.MethodPost, ts.URL+"/graphs/b/update",
		[]byte(`{"add":[[0,3]],"wait":true}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update b: code=%d body=%s", resp.StatusCode, body)
	}
	var sa, sbJSON StatsJSON
	_, body = doReq(t, http.MethodGet, ts.URL+"/graphs/a/stats", nil)
	if err := json.Unmarshal(body, &sa); err != nil {
		t.Fatal(err)
	}
	_, body = doReq(t, http.MethodGet, ts.URL+"/graphs/b/stats", nil)
	if err := json.Unmarshal(body, &sbJSON); err != nil {
		t.Fatal(err)
	}
	if sa.Epoch != 0 || sbJSON.Epoch != 1 {
		t.Fatalf("update isolation: a.epoch=%d b.epoch=%d (want 0, 1)", sa.Epoch, sbJSON.Epoch)
	}

	// Error surfaces.
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs", []byte(`{"name":"a","n":64,"deg":3}`))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs", []byte(`{"name":"///","n":64}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid name: %d, want 400", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs", []byte(`{"name":"c","gen":"mystery"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown generator: %d, want 400", resp.StatusCode)
	}
	// The memory-DoS guards: n and n·deg/2 are capped before any
	// generation-sized work runs.
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs",
		[]byte(`{"name":"c","gen":"gnm","n":4194304,"deg":1000000000}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized deg: %d, want 400", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs", []byte(`{"name":"c","n":16777216}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized n: %d, want 400", resp.StatusCode)
	}
	// gnm edge counts outside [n-1, n(n-1)/2] would spin or panic in the
	// generator; both must be synchronous 400s.
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs", []byte(`{"name":"c","gen":"gnm","n":16,"deg":1000}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("gnm over-dense: %d, want 400", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs", []byte(`{"name":"c","gen":"gnm","n":512,"deg":1}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("gnm under-connected: %d, want 400", resp.StatusCode)
	}
	// Graph quota: with MaxGraphs 2 (a and b live) any further create is
	// shed with 429, without paying for a build.
	reg.mu.Lock()
	reg.cfg.MaxGraphs = 2
	reg.mu.Unlock()
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs", []byte(`{"name":"c","n":64,"deg":3}`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota create: %d, want 429", resp.StatusCode)
	}
	reg.mu.Lock()
	reg.cfg.MaxGraphs = 0
	reg.mu.Unlock()
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs", []byte(`{"name":"c","graphio":"garbage"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad graphio: %d, want 400", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs/nope/query", []byte(`{"kind":"component","u":0}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph query: %d, want 404", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/graphs/a", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete default: %d, want 409", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/graphs/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown: %d, want 404", resp.StatusCode)
	}

	// Delete B: immediate 404s afterwards; name becomes reusable.
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/graphs/b", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete b: %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/graphs/b/query", []byte(`{"kind":"component","u":0}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query deleted graph: %d, want 404", resp.StatusCode)
	}
	resp, body = doReq(t, http.MethodPost, ts.URL+"/graphs",
		[]byte(`{"name":"b","n":64,"deg":3,"wait":true}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("recreate b: code=%d body=%s", resp.StatusCode, body)
	}
}

// TestAdmissionControl covers Engine.Admit directly and the 429 surface
// over HTTP: with MaxInflight=1 and one slot held, every request is
// rejected with Retry-After and counted in /stats.
func TestAdmissionControl(t *testing.T) {
	g := graph.RandomRegular(100, 3, 7)
	e := New(g, Config{Omega: 8, Seed: 5, MaxInflight: 1})
	t.Cleanup(e.Close)

	release, err := e.Admit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Admit(); !errors.Is(err, ErrBusy) {
		t.Fatalf("second admit: %v, want ErrBusy", err)
	}

	ts := httptest.NewServer(NewServer(e))
	t.Cleanup(ts.Close)
	resp, _ := doReq(t, http.MethodPost, ts.URL+"/batch",
		[]byte(`{"queries":[{"kind":"component","u":0}]}`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch at capacity: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/query", []byte(`{"kind":"component","u":0}`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("query at capacity: %d, want 429", resp.StatusCode)
	}

	release()
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/batch",
		[]byte(`{"queries":[{"kind":"component","u":0}]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after release: %d", resp.StatusCode)
	}

	st := e.Stats()
	if st.Admission.MaxInflight != 1 || st.Admission.Rejected != 3 || st.Admission.Inflight != 0 {
		t.Fatalf("admission stats %+v (want cap 1, 3 rejections, 0 inflight)", st.Admission)
	}
	var sj StatsJSON
	_, body := doReq(t, http.MethodGet, ts.URL+"/stats", nil)
	if err := json.Unmarshal(body, &sj); err != nil {
		t.Fatal(err)
	}
	if sj.Admission.Rejected != 3 {
		t.Fatalf("/stats admission.rejected = %d, want 3", sj.Admission.Rejected)
	}
	if sj.Pool.Size <= 0 || sj.Pool.Tasks == 0 {
		t.Fatalf("/stats pool telemetry empty: %+v", sj.Pool)
	}
}

// TestMethodNotAllowedAllow is the 405 satellite: wrong methods on every
// endpoint get 405 with an Allow header naming the right method — never a
// zero-value decode of a GET's empty body.
func TestMethodNotAllowedAllow(t *testing.T) {
	g := graph.Grid2D(4, 4)
	e := New(g, Config{Omega: 8, Seed: 5})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(NewServer(e))
	t.Cleanup(ts.Close)

	for _, tc := range []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/query", "POST"},
		{http.MethodGet, "/batch", "POST"},
		{http.MethodGet, "/update", "POST"},
		{http.MethodPost, "/stats", "GET"},
		{http.MethodPost, "/info", "GET"},
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodPut, "/graphs", "POST"},
		{http.MethodGet, "/graphs/default/query", "POST"},
		{http.MethodGet, "/graphs/default/batch", "POST"},
		{http.MethodGet, "/graphs/default/update", "POST"},
		{http.MethodPost, "/graphs/default/stats", "GET"},
		{http.MethodPost, "/graphs/default/info", "GET"},
	} {
		resp, _ := doReq(t, tc.method, ts.URL+tc.path, nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: code=%d want 405", tc.method, tc.path, resp.StatusCode)
			continue
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, tc.allow) {
			t.Errorf("%s %s: Allow=%q, want it to contain %q", tc.method, tc.path, allow, tc.allow)
		}
	}
}

// TestSharedPoolAcrossGraphs checks the tentpole bound: two engines
// sharing one pool never run more worker tasks at once than the pool has
// slots, no matter how many concurrent batches arrive, and both graphs'
// queue waits are accounted.
func TestSharedPoolAcrossGraphs(t *testing.T) {
	pool := NewPool(2)
	reg := NewRegistry(RegistryConfig{Engine: Config{Omega: 8, Seed: 5}, Pool: pool})
	t.Cleanup(reg.Close)
	for _, name := range []string{"x", "y"} {
		if _, err := reg.Create(GraphSpec{Name: name, N: 200, Deg: 3, GraphSeed: 9, Wait: true}); err != nil {
			t.Fatal(err)
		}
	}
	ex, _ := reg.Get("x")
	ey, _ := reg.Get("y")
	if ex.Pool() != pool || ey.Pool() != pool {
		t.Fatal("engines not sharing the registry pool")
	}

	qs := mixedQueries(ex.Graph(), 2000, 11)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		e := ex
		if i%2 == 1 {
			e = ey
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				for _, r := range e.Do(qs) {
					if r.Err != "" {
						t.Errorf("query error: %s", r.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	ps := pool.Stats()
	if ps.PeakInUse > int64(pool.Size()) {
		t.Fatalf("pool peak %d exceeded size %d", ps.PeakInUse, pool.Size())
	}
	if ps.Tasks == 0 {
		t.Fatal("pool ran no tasks")
	}
	if ex.Stats().Pool.Tasks != ps.Tasks || ey.Stats().Pool.Tasks != ps.Tasks {
		t.Fatalf("pool stats not shared: x=%+v y=%+v pool=%+v",
			ex.Stats().Pool, ey.Stats().Pool, ps)
	}
}

// TestDeleteDrainsInflight checks delete-then-drain: a deleted graph's
// engine keeps serving its in-flight request to completion, then closes.
func TestDeleteDrainsInflight(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Engine: Config{Omega: 8, Seed: 5}})
	t.Cleanup(reg.Close)
	if _, err := reg.Create(GraphSpec{Name: "default", N: 64, Deg: 3, Wait: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(GraphSpec{Name: "victim", N: 64, Deg: 3, Wait: true}); err != nil {
		t.Fatal(err)
	}
	e, err := reg.Get("victim")
	if err != nil {
		t.Fatal(err)
	}
	release, err := e.Admit()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("victim"); err == nil {
		t.Fatal("deleted graph still resolvable")
	}
	// The in-flight request still answers against its engine handle.
	if res := e.Query(Query{Kind: KindComponent, U: 0}); res.Err != "" || res.Label == nil {
		t.Fatalf("in-flight query after delete: %+v", res)
	}
	release()
	// After the drain the engine refuses updates (closed).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := e.Update(Update{Add: [][2]int32{{0, 1}}}, false); errors.Is(err, ErrClosed) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("engine never closed after drain")
}

// TestCreateFailedState: a build that panics lands the graph in "failed"
// with the cause inspectable and queries mapped to 503.
func TestCreateFailedState(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	t.Cleanup(reg.Close)
	var stateMu sync.Mutex
	states := map[string]GraphState{}
	reg.cfg.OnState = func(name string, st GraphState, _ string) {
		stateMu.Lock()
		states[name] = st
		stateMu.Unlock()
	}
	reg.beforeBuild = func(name string) {
		if name == "boom" {
			panic("synthetic build failure")
		}
	}
	if _, err := reg.Create(GraphSpec{Name: "boom", N: 64, Deg: 3}); err != nil {
		t.Fatal(err)
	}
	waitForState(t, reg, "boom", StateFailed)
	st, _ := reg.Status("boom")
	if st.Error == "" {
		t.Fatalf("failed graph carries no error: %+v", st)
	}
	stateMu.Lock()
	if states["boom"] != StateFailed {
		t.Errorf("OnState not fired for failure: %v", states)
	}
	stateMu.Unlock()
	if _, err := reg.Get("boom"); err == nil {
		t.Fatal("failed graph resolvable")
	}
	ts := httptest.NewServer(NewRegistryServer(reg))
	t.Cleanup(ts.Close)
	resp, _ := doReq(t, http.MethodPost, ts.URL+"/graphs/boom/query", []byte(`{"kind":"component","u":0}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query failed graph: %d, want 503", resp.StatusCode)
	}
	// boom is the first (hence default) graph, but a *failed* default may
	// be deleted — that is the only restart-free recovery path — and the
	// name becomes reusable.
	if err := reg.Delete("boom"); err != nil {
		t.Fatalf("delete failed default graph: %v", err)
	}
	if name := reg.DefaultName(); name != "" {
		t.Fatalf("default after deleting sole graph: %q, want empty", name)
	}
	reg.beforeBuild = nil
	if _, err := reg.Create(GraphSpec{Name: "boom", N: 64, Deg: 3, Wait: true}); err != nil {
		t.Fatalf("recreate after failed delete: %v", err)
	}
	if name := reg.DefaultName(); name != "boom" {
		t.Fatalf("recreated graph not default: %q", name)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after recovery: %d, want 200", resp.StatusCode)
	}
}
