package serve

import (
	"runtime"
	"testing"

	"repro/internal/graph"
)

// TestConnFastPathZeroAlloc is the runtime ground truth behind the
// noallocpath static rule: the conn fast query path — Engine.answer through
// oracle.FastAnswerer with a warmed worker and label arena — performs zero
// allocations per query. Methodology matches BENCH_query_hot_path.json
// (GOMAXPROCS=1, omega 64, seed 7): the recorded steady-state figure there
// is 0 allocs/query with the small remainder amortized per-batch overhead,
// and this gate keeps it that way.
func TestConnFastPathZeroAlloc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	g := graph.GNM(2048, 3072, 7, false)
	e := New(g, Config{Omega: 64, Seed: 7, Workers: 1})
	defer e.Close()

	s := e.snap.Load()
	w := e.getWorker(s)
	defer e.putWorker(w)
	labels := make([]int32, 0, 1)
	queries := []Query{
		{Kind: KindComponent, U: 3},
		{Kind: KindComponent, U: 999},
		{Kind: KindConnected, U: 3, V: 999},
		{Kind: KindConnected, U: 0, V: 1},
	}
	// Warm the scratch (first searches grow the BFS workspace to its
	// high-water mark; growth is amortized and off the steady state).
	for _, q := range queries {
		labels = labels[:0]
		if r := e.answer(s, w, q, &labels); r.Err != "" {
			t.Fatalf("warmup %+v: %s", q, r.Err)
		}
	}
	for _, q := range queries {
		q := q
		allocs := testing.AllocsPerRun(200, func() {
			labels = labels[:0]
			if r := e.answer(s, w, q, &labels); r.Err != "" {
				t.Fatalf("%+v: %s", q, r.Err)
			}
		})
		if allocs != 0 {
			t.Errorf("conn fast path %+v: %.2f allocs/query, want 0", q, allocs)
		}
	}
}

// TestDoBatchAllocBound pins the amortized per-query allocation cost of the
// public batch path: a Do call allocates its result slice, one label arena
// per chunk, and pool bookkeeping — constant per batch — so per query it
// must stay far below one allocation, matching the allocs_per_query column
// of BENCH_query_hot_path.json (~0.03 at batch size 256).
func TestDoBatchAllocBound(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	g := graph.GNM(2048, 3072, 7, false)
	e := New(g, Config{Omega: 64, Seed: 7, Workers: 1})
	defer e.Close()

	const batch = 256
	qs := make([]Query, batch)
	for i := range qs {
		if i%2 == 0 {
			qs[i] = Query{Kind: KindComponent, U: int32(i % g.N())}
		} else {
			qs[i] = Query{Kind: KindConnected, U: int32(i % g.N()), V: int32((i * 7) % g.N())}
		}
	}
	for i := 0; i < 3; i++ { // warm pool workers and scratches
		e.Do(qs)
	}
	allocs := testing.AllocsPerRun(50, func() { e.Do(qs) })
	perQuery := allocs / batch
	if perQuery > 0.1 {
		t.Errorf("Do batch: %.1f allocs/batch = %.3f allocs/query, want <= 0.1", allocs, perQuery)
	}
}
