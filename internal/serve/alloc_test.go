package serve

import (
	"runtime"
	"testing"

	"repro/internal/graph"
)

// TestConnFastPathZeroAlloc is the runtime ground truth behind the
// noallocpath static rule: the conn fast query path — Engine.answer through
// oracle.FastAnswerer with a warmed worker and label arena — performs zero
// allocations per query. Methodology matches BENCH_query_hot_path.json
// (GOMAXPROCS=1, omega 64, seed 7): the recorded steady-state figure there
// is 0 allocs/query with the small remainder amortized per-batch overhead,
// and this gate keeps it that way.
func TestConnFastPathZeroAlloc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	g := graph.GNM(2048, 3072, 7, false)
	e := New(g, Config{Omega: 64, Seed: 7, Workers: 1})
	defer e.Close()

	s := e.snap.Load()
	w := e.getWorker(s)
	defer e.putWorker(w)
	labels := make([]int32, 0, 1)
	queries := []Query{
		{Kind: KindComponent, U: 3},
		{Kind: KindComponent, U: 999},
		{Kind: KindConnected, U: 3, V: 999},
		{Kind: KindConnected, U: 0, V: 1},
	}
	// Warm the scratch (first searches grow the BFS workspace to its
	// high-water mark; growth is amortized and off the steady state).
	for _, q := range queries {
		labels = labels[:0]
		if r := e.answer(s, w, q, &labels); r.Err != "" {
			t.Fatalf("warmup %+v: %s", q, r.Err)
		}
	}
	for _, q := range queries {
		q := q
		allocs := testing.AllocsPerRun(200, func() {
			labels = labels[:0]
			if r := e.answer(s, w, q, &labels); r.Err != "" {
				t.Fatalf("%+v: %s", q, r.Err)
			}
		})
		if allocs != 0 {
			t.Errorf("conn fast path %+v: %.2f allocs/query, want 0", q, allocs)
		}
	}
}

// TestBiccWarmPathAllocCeiling pins the warmed biconnectivity query path:
// once every cluster's local graph is cached (and with a stream of
// never-repeating queries, so the result cache cannot answer and every
// query exercises the oracle through the cluster cache), the fast path
// must stay at or under 2 allocations per query. This is the runtime gate
// behind the bicc rows of BENCH_query_hot_path.json.
func TestBiccWarmPathAllocCeiling(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	// Connected cycle-plus-chords graph: no small-component path (which
	// deliberately stays allocating), rich biconnectivity structure.
	const n = 2048
	var edges [][2]int32
	for i := int32(0); i < n; i++ {
		edges = append(edges, [2]int32{i, (i + 1) % n})
		if i%3 == 0 {
			edges = append(edges, [2]int32{i, (i + 97) % n})
		}
	}
	g := graph.FromEdges(n, edges)
	e := New(g, Config{Omega: 64, Seed: 7, Workers: 1})
	defer e.Close()

	s := e.snap.Load()
	kinds := []Kind{KindBridge, KindArticulation, KindBiconnected, KindTwoEdgeConnected}
	// Never-repeating (kind, u, v) triples: the pair (u, v) is a bijection
	// of the cursor below n², so the result cache misses on every query and
	// only the cluster cache serves the warm path.
	queryAt := func(i int) Query {
		return Query{Kind: kinds[i%4], U: int32((i / n) % n), V: int32(i % n)}
	}
	cursor := 0
	runBatch := func(batch int) {
		w := e.getWorker(s)
		labels := make([]int32, 0, batch)
		for j := 0; j < batch; j++ {
			if r := e.answer(s, w, queryAt(cursor), &labels); r.Err != "" {
				t.Fatalf("query %d: %s", cursor, r.Err)
			}
			cursor++
		}
		w.mergeInto(e)
		e.putWorker(w)
	}
	// Warm pass: every vertex appears as an endpoint, so every cluster's
	// local graph is filled (each cluster is its own center's cluster).
	for cursor < 3*n {
		runBatch(256)
	}
	const batch = 256
	allocs := testing.AllocsPerRun(20, func() { runBatch(batch) })
	perQuery := allocs / batch
	if perQuery > 2 {
		t.Errorf("warmed bicc path: %.1f allocs/batch = %.2f allocs/query, want <= 2", allocs, perQuery)
	}
}

// TestDoBatchAllocBound pins the amortized per-query allocation cost of the
// public batch path: a Do call allocates its result slice, one label arena
// per chunk, and pool bookkeeping — constant per batch — so per query it
// must stay far below one allocation, matching the allocs_per_query column
// of BENCH_query_hot_path.json (~0.03 at batch size 256).
func TestDoBatchAllocBound(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	g := graph.GNM(2048, 3072, 7, false)
	e := New(g, Config{Omega: 64, Seed: 7, Workers: 1})
	defer e.Close()

	const batch = 256
	qs := make([]Query, batch)
	for i := range qs {
		if i%2 == 0 {
			qs[i] = Query{Kind: KindComponent, U: int32(i % g.N())}
		} else {
			qs[i] = Query{Kind: KindConnected, U: int32(i % g.N()), V: int32((i * 7) % g.N())}
		}
	}
	for i := 0; i < 3; i++ { // warm pool workers and scratches
		e.Do(qs)
	}
	allocs := testing.AllocsPerRun(50, func() { e.Do(qs) })
	perQuery := allocs / batch
	if perQuery > 0.1 {
		t.Errorf("Do batch: %.1f allocs/batch = %.3f allocs/query, want <= 0.1", allocs, perQuery)
	}
}
