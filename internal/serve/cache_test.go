package serve

import (
	"testing"

	"repro/internal/graph"
)

// This file tests the serving layer's result memoization (batch-local
// dedup + the epoch-keyed shared table): cached dispatch must be
// observably identical to the legacy recompute-everything path — same
// answers AND same per-kind charged costs, since hits replay the fill's
// recorded charges — and a snapshot swap must invalidate every memoized
// result.

// dupBatch builds a duplicate-laden batch over all six kinds: queries
// cycle through a small hot set, so both the batch-local dedup map and the
// shared table get exercised.
func dupBatch(n, hot int, gN int32, seed uint64) []Query {
	rng := graph.NewRNG(seed)
	kinds := []Kind{KindConnected, KindComponent, KindBridge, KindArticulation, KindBiconnected, KindTwoEdgeConnected}
	pairs := make([][2]int32, hot)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(int(gN))), int32(rng.Intn(int(gN)))}
	}
	qs := make([]Query, n)
	for i := range qs {
		p := pairs[rng.Intn(hot)]
		qs[i] = Query{Kind: kinds[rng.Intn(len(kinds))], U: p[0], V: p[1]}
	}
	return qs
}

func sameResults(t *testing.T, got, want []Result, label string) {
	t.Helper()
	for i := range want {
		g, w := got[i], want[i]
		if g.Err != w.Err {
			t.Fatalf("%s: query %d error %q, want %q", label, i, g.Err, w.Err)
		}
		if (g.Bool == nil) != (w.Bool == nil) || (g.Bool != nil && *g.Bool != *w.Bool) {
			t.Fatalf("%s: query %d bool mismatch", label, i)
		}
		if (g.Label == nil) != (w.Label == nil) || (g.Label != nil && *g.Label != *w.Label) {
			t.Fatalf("%s: query %d label mismatch", label, i)
		}
	}
}

func TestResultCacheEquivalentToLegacy(t *testing.T) {
	g := graph.GNM(512, 700, 17, false)
	cfg := Config{Omega: 64, Seed: 7, Workers: 2}
	fast := New(g, cfg)
	defer fast.Close()
	lcfg := cfg
	lcfg.LegacyDispatch = true
	legacy := New(g, lcfg)
	defer legacy.Close()

	for round := 0; round < 3; round++ {
		qs := dupBatch(512, 40, int32(g.N()), uint64(100+round))
		sameResults(t, fast.Do(qs), legacy.Do(qs), "round")
	}

	fs, ls := fast.Stats(), legacy.Stats()
	for kind, want := range ls.Queries {
		got := fs.Queries[kind]
		if got.Count != want.Count || got.Errors != want.Errors || got.Cost != want.Cost {
			t.Fatalf("kind %s: cached telemetry %+v, legacy %+v", kind, got, want)
		}
	}
	if fs.ResultCache.Hits == 0 {
		t.Fatalf("duplicate-laden rounds produced no shared-table hits: %+v", fs.ResultCache)
	}
	if fs.ResultCache.BatchDedup == 0 {
		t.Fatalf("duplicate-laden rounds produced no batch-local dedup hits: %+v", fs.ResultCache)
	}
	if fs.ClusterCache.Misses == 0 {
		t.Fatalf("bicc queries produced no cluster-cache fills: %+v", fs.ClusterCache)
	}
	if ls.ResultCache != (ResultCacheStats{}) {
		t.Fatalf("legacy dispatch must bypass the result cache entirely: %+v", ls.ResultCache)
	}
}

func TestResultCacheEpochInvalidation(t *testing.T) {
	g := graph.GNM(256, 340, 23, true)
	cfg := Config{Omega: 64, Seed: 7, Workers: 1}
	e := New(g, cfg)
	defer e.Close()

	// Distinct queries only (bool kinds, so answers stay comparable across
	// engines after the swap): first run fills, second run hits in full.
	kinds := []Kind{KindConnected, KindBridge, KindBiconnected, KindTwoEdgeConnected}
	qs := make([]Query, 128)
	for i := range qs {
		qs[i] = Query{Kind: kinds[i%4], U: int32(i % g.N()), V: int32((i*3 + 1) % g.N())}
	}
	e.Do(qs)
	h0 := e.Stats().ResultCache.Hits
	e.Do(qs)
	h1 := e.Stats().ResultCache.Hits
	// The table is direct-mapped, so a handful of slot collisions may evict
	// live entries; the second run must still hit on the vast majority.
	if h1-h0 < int64(len(qs))-8 {
		t.Fatalf("identical second batch: %d shared-table hits, want >= %d", h1-h0, len(qs)-8)
	}

	if _, err := e.Update(Update{Add: [][2]int32{{0, 100}, {1, 200}}}, true); err != nil {
		t.Fatalf("update: %v", err)
	}
	got := e.Do(qs)
	h2 := e.Stats().ResultCache.Hits
	if h2 != h1 {
		t.Fatalf("post-swap batch served %d stale hits; epoch keying must miss", h2-h1)
	}
	// Answers on the new epoch match a fresh legacy engine over the updated
	// graph (bicc rebuilds fresh on both sides; bool answers are canonical).
	lcfg := cfg
	lcfg.LegacyDispatch = true
	legacy := New(e.Graph(), lcfg)
	defer legacy.Close()
	sameResults(t, got, legacy.Do(qs), "post-swap")

	// Cluster-cache counters are cumulative across the swap: the retired
	// snapshot's fills are folded into the engine accumulators.
	if cc := e.Stats().ClusterCache; cc.Misses == 0 {
		t.Fatalf("cluster-cache telemetry lost across swap: %+v", cc)
	}
}
