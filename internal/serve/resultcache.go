package serve

import (
	"sync"

	"repro/internal/asym"
	"repro/internal/oracle"
)

// This file implements the engine's epoch-keyed hot-pair result cache: a
// fixed-size, striped, direct-mapped table memoizing (kind, u, v) answers
// together with the charged cost and symmetric peak of the query that
// filled them — a hit replays those charges onto the caller's meter and
// tracker, so cached answers are telemetry-identical to recomputed ones
// (the same replay argument as bicc's ClusterCache; see localS).
//
// Epoch keying makes invalidation free: every entry records the snapshot
// epoch it was filled under, and a probe from a different epoch is a miss
// whose fill simply overwrites the stale slot. Nothing is scanned or
// cleared on a snapshot swap.
//
// The table is direct-mapped on purpose: the warm path does one hash, one
// striped lock, one slot compare — no allocation, no LRU bookkeeping. A
// colliding hot pair evicts its predecessor (counted in /stats).

// rcKey identifies one query result within an epoch. agg is the engine's
// aggregate kind index (stable for the engine's lifetime), so the key is
// three int32s — comparable and pointer-free.
type rcKey struct {
	agg  int32
	u, v int32
}

// bsKey is the chunk-local batch-dedup key: an rcKey plus the built epoch
// of the oracle state that answered it. The shared table keys epoch and
// rcKey separately (rcEntry), but the per-worker batchSeen map needs the
// pair in one comparable value because a single chunk can mix strict and
// bounded-staleness answers for the same (kind, u, v).
type bsKey struct {
	k     rcKey
	epoch int64
}

// rcVal is one memoized answer with the charges its fill recorded.
type rcVal struct {
	av   oracle.AnswerVal
	cost asym.Cost
	peak int64
}

const (
	rcSlots   = 8192 // power of two
	rcStripes = 64   // power of two
)

type rcEntry struct {
	epoch int64
	key   rcKey
	val   rcVal
	full  bool
}

// resultCache is the fixed-size striped table. Zero-value-unusable; build
// with newResultCache.
type resultCache struct {
	mu    []sync.Mutex
	slots []rcEntry
}

func newResultCache() *resultCache {
	return &resultCache{mu: make([]sync.Mutex, rcStripes), slots: make([]rcEntry, rcSlots)}
}

// slotOf maps a key to its slot by multiplicative hashing (Fibonacci
// constant; the inputs are small ints so low-bit mixing matters).
//
//wec:noalloc
func (c *resultCache) slotOf(k rcKey) uint64 {
	h := uint64(uint32(k.agg))*0x9e3779b97f4a7c15 ^ uint64(uint32(k.u))*0xbf58476d1ce4e5b9 ^ uint64(uint32(k.v))*0x94d049bb133111eb
	h ^= h >> 29
	return (h * 0x9e3779b97f4a7c15) >> 32 % rcSlots
}

// get probes for the key under the given epoch.
//
//wec:noalloc
func (c *resultCache) get(epoch int64, k rcKey) (rcVal, bool) {
	slot := c.slotOf(k)
	mu := &c.mu[slot%rcStripes]
	mu.Lock()
	e := &c.slots[slot]
	if !e.full || e.epoch != epoch || e.key != k {
		mu.Unlock()
		return rcVal{}, false
	}
	v := e.val
	mu.Unlock()
	return v, true
}

// put installs a filled answer, unconditionally overwriting the slot
// (stale-epoch and colliding entries alike). Reports whether a live
// same-epoch entry for a *different* key was displaced — the /stats
// eviction counter; overwriting a stale epoch is reclamation, not
// eviction.
//
//wec:noalloc
func (c *resultCache) put(epoch int64, k rcKey, v rcVal) (evicted bool) {
	slot := c.slotOf(k)
	mu := &c.mu[slot%rcStripes]
	mu.Lock()
	e := &c.slots[slot]
	evicted = e.full && e.epoch == epoch && e.key != k
	e.epoch, e.key, e.val, e.full = epoch, k, v, true
	mu.Unlock()
	return evicted
}
