package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is the shared, bounded worker pool of the serving layer: a weighted
// semaphore sized to GOMAXPROCS (or an explicit size) that every engine's
// batch dispatch draws worker slots from. One pool is shared across all
// graphs of a Registry, replacing the old per-request goroutine fan-out —
// however many graphs and concurrent requests the daemon carries, at most
// Size query workers run at once.
//
// Admission (how many requests may *wait* for slots) is per-graph and lives
// on the Engine (Config.MaxInflight / Engine.Admit); the pool only bounds
// execution. A request acquires slots one at a time and starts each chunk
// as its slot arrives, so requests never hold-and-wait for a full worker
// set and the pool cannot deadlock.
type Pool struct {
	size int
	sem  chan struct{}

	inUse  atomic.Int64
	peak   atomic.Int64
	tasks  atomic.Int64
	waitNs atomic.Int64
}

// NewPool returns a pool with the given number of worker slots; size <= 0
// selects GOMAXPROCS.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{size: size, sem: make(chan struct{}, size)}
}

// Size returns the pool's worker-slot count.
func (p *Pool) Size() int { return p.size }

// Run executes run(0..tasks-1), each task on its own worker slot, and
// blocks until all complete. It returns the total time this call spent
// waiting for slots (the queue-wait telemetry /stats reports). Safe for
// any number of concurrent callers; total running tasks across all callers
// never exceeds Size.
func (p *Pool) Run(tasks int, run func(task int)) time.Duration {
	if tasks <= 0 {
		return 0
	}
	var wg sync.WaitGroup
	var wait time.Duration
	for t := 0; t < tasks; t++ {
		t0 := time.Now()
		p.sem <- struct{}{}
		wait += time.Since(t0)
		in := p.inUse.Add(1)
		for {
			peak := p.peak.Load()
			if in <= peak || p.peak.CompareAndSwap(peak, in) {
				break
			}
		}
		wg.Add(1)
		go func(t int) {
			defer func() {
				p.inUse.Add(-1)
				<-p.sem
				wg.Done()
			}()
			run(t)
		}(t)
	}
	wg.Wait()
	p.tasks.Add(int64(tasks))
	p.waitNs.Add(int64(wait))
	return wait
}

// PoolStats is the pool's cumulative telemetry, served under /stats.
type PoolStats struct {
	Size      int           `json:"size"`
	InUse     int64         `json:"in_use"`
	PeakInUse int64         `json:"peak_in_use"`
	Tasks     int64         `json:"tasks"`
	QueueWait time.Duration `json:"queue_wait_ns"`
}

// Stats snapshots the pool telemetry.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Size:      p.size,
		InUse:     p.inUse.Load(),
		PeakInUse: p.peak.Load(),
		Tasks:     p.tasks.Load(),
		QueueWait: time.Duration(p.waitNs.Load()),
	}
}
