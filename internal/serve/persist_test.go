package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// memPersist is an in-memory GraphPersister that records every call in
// order, optionally failing LogUpdate.
type memPersist struct {
	mu        sync.Mutex
	updates   []int64 // seqs logged
	commits   [][2]int64
	snapshots [][2]int64
	aborts    [][2]int64
	staged    func() int // observed staging depth at LogUpdate time
	depths    []int
	forests   []int // forest sizes seen by EpochPublished/SaveSnapshot
	depths2   []int // chain depths seen by EpochPublished/SaveSnapshot
	failLog   error
}

func (p *memPersist) LogUpdate(seq int64, add, remove [][2]int32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failLog != nil {
		return p.failLog
	}
	p.updates = append(p.updates, seq)
	if p.staged != nil {
		p.depths = append(p.depths, p.staged())
	}
	return nil
}

func (p *memPersist) EpochPublished(epoch, seq int64, g *graph.Graph, dyn func() (map[int32]int32, [][2]int32, int)) {
	_, forest, chainDepth := dyn()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.commits = append(p.commits, [2]int64{epoch, seq})
	p.forests = append(p.forests, len(forest))
	p.depths2 = append(p.depths2, chainDepth)
}

func (p *memPersist) SaveSnapshot(epoch, seq int64, g *graph.Graph, remap map[int32]int32, forest [][2]int32, chainDepth int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.snapshots = append(p.snapshots, [2]int64{epoch, seq})
	p.forests = append(p.forests, len(forest))
	p.depths2 = append(p.depths2, chainDepth)
	return nil
}

func (p *memPersist) LogAbort(fromSeq, toSeq int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aborts = append(p.aborts, [2]int64{fromSeq, toSeq})
	return nil
}

func (p *memPersist) snap() memPersist {
	p.mu.Lock()
	defer p.mu.Unlock()
	return memPersist{updates: append([]int64(nil), p.updates...),
		commits:   append([][2]int64(nil), p.commits...),
		snapshots: append([][2]int64(nil), p.snapshots...),
		aborts:    append([][2]int64(nil), p.aborts...),
		depths:    append([]int(nil), p.depths...),
		forests:   append([]int(nil), p.forests...),
		depths2:   append([]int(nil), p.depths2...)}
}

// TestEngineWALBeforeStage: every accepted batch reaches the log with the
// right sequence number before it is staged, publishes commit the right
// watermarks, and a recovered-style engine resumes numbering after
// InitialSeq.
func TestEngineWALBeforeStage(t *testing.T) {
	g := graph.RandomRegular(128, 3, 1)
	p := &memPersist{}
	var e *Engine
	p.staged = func() int {
		// Called inside LogUpdate, which the engine invokes while holding
		// its update lock with the batch NOT yet staged: the pending delta
		// must not contain it.
		return len(e.pending)
	}
	e = New(g, Config{Omega: 8, Seed: 3, Persist: p, InitialEpoch: 5, InitialSeq: 40})
	defer e.Close()

	if e.Epoch() != 5 || e.LastSeq() != 40 {
		t.Fatalf("initial watermark epoch=%d seq=%d, want 5/40", e.Epoch(), e.LastSeq())
	}

	st, err := e.Update(Update{Add: [][2]int32{{0, 9}}}, true)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if st.Seq != 41 || !st.Applied || st.Epoch != 6 {
		t.Fatalf("update status %+v, want seq=41 applied epoch=6", st)
	}
	if _, err := e.Update(Update{Remove: [][2]int32{{0, 9}}}, true); err != nil {
		t.Fatalf("update 2: %v", err)
	}

	got := p.snap()
	if len(got.updates) != 2 || got.updates[0] != 41 || got.updates[1] != 42 {
		t.Fatalf("logged seqs %v, want [41 42]", got.updates)
	}
	// With wait=true the previous batch drains before the next accept, so
	// the staging depth observed inside LogUpdate must be 0 every time:
	// the batch being logged is NOT yet staged (log-before-stage).
	for i, d := range got.depths {
		if d != 0 {
			t.Fatalf("LogUpdate %d observed staging depth %d, want 0 (batch staged before logging?)", i, d)
		}
	}
	// Each wait=true batch forces its own publish: commits are (6,41),(7,42).
	if len(got.commits) != 2 || got.commits[0] != [2]int64{6, 41} || got.commits[1] != [2]int64{7, 42} {
		t.Fatalf("commits %v, want [[6 41] [7 42]]", got.commits)
	}
	// Every publish hands the store the conn dynamic state: the maintained
	// spanning forest (127 edges of the connected 128-vertex graph) and
	// the growing patch-chain depth.
	if len(got.forests) != 2 || got.forests[0] != 127 || got.forests[1] != 127 {
		t.Fatalf("published forest sizes %v, want [127 127]", got.forests)
	}
	if len(got.depths2) != 2 || got.depths2[0] != 1 || got.depths2[1] != 2 {
		t.Fatalf("published chain depths %v, want [1 2]", got.depths2)
	}
}

// TestEngineLogFailureRejectsUpdate: a failing durable log rejects the
// batch with ErrPersist, stages nothing, and does not burn a sequence
// number.
func TestEngineLogFailureRejectsUpdate(t *testing.T) {
	g := graph.RandomRegular(64, 3, 1)
	p := &memPersist{failLog: errors.New("disk full")}
	e := New(g, Config{Omega: 8, Seed: 3, Persist: p})
	defer e.Close()

	_, err := e.Update(Update{Add: [][2]int32{{1, 2}}}, false)
	if !errors.Is(err, ErrPersist) {
		t.Fatalf("err = %v, want ErrPersist", err)
	}
	if e.LastSeq() != 0 || e.Epoch() != 0 {
		t.Fatalf("failed update advanced state: seq=%d epoch=%d", e.LastSeq(), e.Epoch())
	}
	if st := e.Stats(); st.PendingUpdates != 0 {
		t.Fatalf("failed update staged: pending=%d", st.PendingUpdates)
	}

	// The log recovers; the next accept takes seq 1 (no gap).
	p.mu.Lock()
	p.failLog = nil
	p.mu.Unlock()
	st, err := e.Update(Update{Add: [][2]int32{{1, 2}}}, true)
	if err != nil || st.Seq != 1 {
		t.Fatalf("post-recovery update: %+v, %v", st, err)
	}
}

// TestRebuildFailureTyped: a server-side rebuild failure reaches wait=true
// updaters as ErrRebuildFailed and the HTTP surface as a 500 — while a
// plain bad request stays a 400. This is the ROADMAP wart fixed.
func TestRebuildFailureTyped(t *testing.T) {
	g := graph.RandomRegular(64, 3, 1)
	p := &memPersist{}
	e := New(g, Config{Omega: 8, Seed: 3, Persist: p})
	defer e.Close()
	boom := errors.New("plugged-in oracle exploded")
	// The hook pointer is installed before the first Update (which starts
	// the rebuild goroutine), and the toggle is atomic, so the rebuild
	// goroutine never races a hook rewrite.
	var failing atomic.Bool
	failing.Store(true)
	e.testRebuildErr = func(*graph.Graph) error {
		if failing.Load() {
			return boom
		}
		return nil
	}

	_, err := e.Update(Update{Add: [][2]int32{{1, 2}}}, true)
	if !errors.Is(err, ErrRebuildFailed) {
		t.Fatalf("err = %v, want ErrRebuildFailed", err)
	}
	if e.Epoch() != 0 {
		t.Fatalf("failed rebuild published epoch %d", e.Epoch())
	}
	// The dropped batch must be aborted in the durable log, or recovery
	// would replay an update the client was told failed.
	if s := p.snap(); len(s.aborts) != 1 || s.aborts[0] != [2]int64{1, 1} {
		t.Fatalf("abort records %v, want [[1 1]]", s.aborts)
	}

	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/update", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"add":[[1,3]],"wait":true}`); code != http.StatusInternalServerError {
		t.Fatalf("rebuild failure → %d, want 500", code)
	}
	if code := post(`{"remove":[[1,1]],"wait":true}`); code != http.StatusBadRequest {
		t.Fatalf("absent removal → %d, want 400", code)
	}
	failing.Store(false)
	if code := post(`{"add":[[1,3]],"wait":true}`); code != http.StatusOK {
		t.Fatalf("recovered update → %d, want 200", code)
	}
}

// memRegPersist is an in-memory RegistryPersister.
type memRegPersist struct {
	mu         sync.Mutex
	created    []string
	specs      map[string][]byte
	deleted    []string
	logs       map[string]*memPersist
	failFor    string
	failDelete bool
}

func newMemRegPersist() *memRegPersist {
	return &memRegPersist{specs: map[string][]byte{}, logs: map[string]*memPersist{}}
}

func (p *memRegPersist) CreateGraph(name string, specJSON []byte) (GraphPersister, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if name == p.failFor {
		return nil, fmt.Errorf("store says no")
	}
	p.created = append(p.created, name)
	p.specs[name] = append([]byte(nil), specJSON...)
	l := &memPersist{}
	p.logs[name] = l
	return l, nil
}

func (p *memRegPersist) DeleteGraph(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failDelete {
		return fmt.Errorf("manifest on fire")
	}
	p.deleted = append(p.deleted, name)
	return nil
}

// TestRegistryLifecycleDurability: creates record a spec and an initial
// snapshot before ready, deletes are recorded, a failing durable create
// frees the name, and a recovered graph resumes its watermark without
// re-recording creation.
func TestRegistryLifecycleDurability(t *testing.T) {
	p := newMemRegPersist()
	reg := NewRegistry(RegistryConfig{Engine: Config{Omega: 8, Seed: 3}, Persist: p})
	defer reg.Close()

	if _, err := reg.Create(GraphSpec{Name: "a", N: 128, Deg: 3, Wait: true}); err != nil {
		t.Fatalf("create: %v", err)
	}
	p.mu.Lock()
	created := append([]string(nil), p.created...)
	var spec GraphSpec
	if err := json.Unmarshal(p.specs["a"], &spec); err != nil {
		t.Fatalf("stored spec: %v", err)
	}
	al := p.logs["a"]
	p.mu.Unlock()
	if len(created) != 1 || created[0] != "a" || spec.N != 128 {
		t.Fatalf("durable create: %v spec=%+v", created, spec)
	}
	if s := al.snap(); len(s.snapshots) != 1 || s.snapshots[0] != [2]int64{0, 0} {
		t.Fatalf("initial snapshot calls: %+v", s.snapshots)
	}

	// Failing durable create rolls the name back.
	p.failFor = "b"
	if _, err := reg.Create(GraphSpec{Name: "b", N: 64, Deg: 3, Wait: true}); err == nil {
		t.Fatal("create with failing store succeeded")
	}
	if _, ok := reg.Status("b"); ok {
		t.Fatal("failed durable create left the name registered")
	}
	p.failFor = ""

	// Recovered graphs resume their watermark and their log.
	g := graph.RandomRegular(64, 3, 9)
	rl := &memPersist{}
	if _, err := reg.CreateRecovered("rec", g, GraphSpec{Wait: true}, rl, RecoveredState{Epoch: 7, Seq: 30}); err != nil {
		t.Fatalf("recovered create: %v", err)
	}
	waitReady(t, reg, "rec")
	eng, err := reg.Get("rec")
	if err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 7 || eng.LastSeq() != 30 {
		t.Fatalf("recovered engine epoch=%d seq=%d, want 7/30", eng.Epoch(), eng.LastSeq())
	}
	p.mu.Lock()
	recreated := len(p.created)
	p.mu.Unlock()
	if recreated != 1 {
		t.Fatalf("recovery re-recorded creation: %v", p.created)
	}
	if _, err := eng.Update(Update{Add: [][2]int32{{0, 5}}}, true); err != nil {
		t.Fatal(err)
	}
	if s := rl.snap(); len(s.updates) != 1 || s.updates[0] != 31 {
		t.Fatalf("recovered log seqs %v, want [31]", s.updates)
	}

	// A failing durable delete leaves the graph registered — the DELETE
	// is retryable, never a 404 over data that resurrects next boot.
	p.mu.Lock()
	p.failDelete = true
	p.mu.Unlock()
	if err := reg.Delete("rec"); err == nil {
		t.Fatal("delete with failing store succeeded")
	}
	if _, ok := reg.Status("rec"); !ok {
		t.Fatal("failed durable delete unregistered the graph (retry would 404)")
	}
	if _, err := reg.Get("rec"); err != nil {
		t.Fatalf("graph unusable after failed delete: %v", err)
	}
	p.mu.Lock()
	p.failDelete = false
	p.mu.Unlock()

	// Retry succeeds and reaches the store (a non-default graph).
	if err := reg.Delete("rec"); err != nil {
		t.Fatalf("delete retry: %v", err)
	}
	p.mu.Lock()
	deleted := append([]string(nil), p.deleted...)
	p.mu.Unlock()
	if len(deleted) != 1 || deleted[0] != "rec" {
		t.Fatalf("durable deletes %v, want [rec]", deleted)
	}
	if _, ok := reg.Status("rec"); ok {
		t.Fatal("graph still registered after successful delete")
	}
}

// TestRecoveredDefaultClaim: recovered graphs never auto-claim the default
// slot (manifest order must not silently point the un-prefixed endpoints
// at a tenant's graph); the embedder restores the default by name, and
// SetDefault refuses to re-point an occupied slot.
func TestRecoveredDefaultClaim(t *testing.T) {
	reg := NewRegistry(RegistryConfig{Engine: Config{Omega: 8, Seed: 3}})
	defer reg.Close()

	ga := graph.RandomRegular(64, 3, 1)
	gb := graph.RandomRegular(64, 3, 2)
	if _, err := reg.CreateRecovered("tenant", ga, GraphSpec{Wait: true}, nil, RecoveredState{}); err != nil {
		t.Fatal(err)
	}
	waitReady(t, reg, "tenant")
	if d := reg.DefaultName(); d != "" {
		t.Fatalf("recovered graph claimed the default slot: %q", d)
	}
	if _, err := reg.Default(); err == nil {
		t.Fatal("Default() resolved with an empty slot")
	}

	if _, err := reg.CreateRecovered("primary", gb, GraphSpec{Wait: true}, nil, RecoveredState{Epoch: 3, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	waitReady(t, reg, "primary")
	if err := reg.SetDefault("nope"); err == nil {
		t.Fatal("SetDefault accepted an unknown graph")
	}
	if err := reg.SetDefault("primary"); err != nil {
		t.Fatalf("SetDefault: %v", err)
	}
	if d := reg.DefaultName(); d != "primary" {
		t.Fatalf("default %q, want primary", d)
	}
	if err := reg.SetDefault("tenant"); err == nil {
		t.Fatal("SetDefault silently re-pointed an occupied slot")
	}
	if err := reg.SetDefault("primary"); err != nil {
		t.Fatalf("SetDefault idempotent case: %v", err)
	}
}

func waitReady(t *testing.T, reg *Registry, name string) {
	t.Helper()
	for i := 0; i < 400; i++ {
		if st, ok := reg.Status(name); ok && st.State != StateBuilding {
			if st.State != StateReady {
				t.Fatalf("graph %q: %s (%s)", name, st.State, st.Error)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("graph %q never left building", name)
}
