package serve

import (
	"repro/internal/obs"
)

// This file wires the engine and registry into the obs metrics registry
// (GET /metrics). The instrumentation obeys the package's two telemetry
// disciplines:
//
//   - Hot-path instruments (query latency, batch size, queue wait) are
//     pre-resolved atomic handles — Histogram.Observe is alloc-free, so the
//     //wec:noalloc answer path observes latencies directly and
//     serve/alloc_test.go holds with metrics enabled.
//   - Everything the engine already counts in its own atomics (per-kind
//     totals, admission, caches, epoch) is exported through scrape-time
//     func instruments, costing the serving path nothing at all.
//
// Label cardinality is bounded by construction: graph names (validated by
// graphNameRE, retired by Registry.Delete via DeleteLabeled), query kinds
// (the oracle registry's fixed vocabulary), rebuild strategies (the five
// ladder rungs), oracle names (registered factories), and cache layer
// names. Per-request values — vertex ids,
// batch contents — never become labels.

// Cache layer label values of wec_cache_*_total.
const (
	cacheLayerResult     = "result"
	cacheLayerCluster    = "cluster"
	cacheLayerBatchDedup = "batch_dedup"
)

// engineMetrics is one engine's pre-resolved instrument handles. Built at
// the end of New — after the first snapshot publishes — so every scrape-time
// callback can load the snapshot unconditionally.
type engineMetrics struct {
	graph string
	reg   *obs.Registry

	// qdur is indexed by the kind's aggregate slot (Engine.kinds order) —
	// the hot answer path reaches its histogram with one slice index.
	qdur        []*obs.Histogram
	batchSize   *obs.Histogram
	queueWait   *obs.Histogram
	rebuildDur  map[string]*obs.Histogram // by strategy
	rebuildFail *obs.Counter
}

// newEngineMetrics registers the engine's per-graph families in reg (nil
// selects a fresh private registry) and resolves the hot-path handles.
func newEngineMetrics(reg *obs.Registry, graphName string, e *Engine) *engineMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if graphName == "" {
		graphName = "default"
	}
	m := &engineMetrics{graph: graphName, reg: reg}

	qdur := reg.NewHistogramVec("wec_query_duration_seconds",
		"Per-query answer latency through the engine dispatch path.", nil, "graph", "kind")
	m.qdur = make([]*obs.Histogram, len(e.specs))
	queries := reg.NewFuncVec("wec_queries_total",
		"Queries answered successfully.", obs.TypeCounter, "graph", "kind")
	qerrors := reg.NewFuncVec("wec_query_errors_total",
		"Queries rejected as malformed (unknown vertex, bad arity).", obs.TypeCounter, "graph", "kind")
	for i, spec := range e.specs {
		kind := string(spec.Kind)
		m.qdur[i] = qdur.With(graphName, kind)
		agg := &e.kinds[i]
		queries.Set(func() float64 { return float64(agg.count.Load()) }, graphName, kind)
		qerrors.Set(func() float64 { return float64(agg.errors.Load()) }, graphName, kind)
	}

	m.batchSize = reg.NewHistogramVec("wec_batch_size_queries",
		"Queries per Do batch.", obs.SizeBuckets, "graph").With(graphName)
	m.queueWait = reg.NewHistogramVec("wec_pool_queue_wait_seconds",
		"Time a batch spent waiting for pool worker slots.", nil, "graph").With(graphName)

	reg.NewFuncVec("wec_admission_rejected_total",
		"Requests refused with 429 at the per-graph in-flight cap.", obs.TypeCounter, "graph").
		Set(func() float64 { return float64(e.rejected.Load()) }, graphName)
	reg.NewFuncVec("wec_admission_inflight",
		"Currently admitted requests.", obs.TypeGauge, "graph").
		Set(func() float64 { return float64(e.inflight.Load()) }, graphName)

	m.rebuildDur = make(map[string]*obs.Histogram, 5)
	rdur := reg.NewHistogramVec("wec_rebuild_duration_seconds",
		"Background rebuild duration by summary strategy; the lazy bucket observes deferred, query-triggered builds.", nil, "graph", "strategy")
	for _, s := range []string{StrategyPatchedInsert, StrategyPatchedDelete, StrategyRebased, StrategyFull, StrategyLazy} {
		m.rebuildDur[s] = rdur.With(graphName, s)
	}
	m.rebuildFail = reg.NewCounterVec("wec_rebuild_failures_total",
		"Rebuild attempts that failed (their batches dropped).", "graph").With(graphName)

	reg.NewFuncVec("wec_rebuilds_avoided_total",
		"Publishes at which a deferrable oracle skipped its eager rebuild (deferred lazily or absorbed as a provable no-op patch).", obs.TypeCounter, "graph").
		Set(func() float64 { return float64(e.rebuildsAvoided.Load()) }, graphName)
	reg.NewFuncVec("wec_lazy_rebuilds_total",
		"Deferred oracle rebuilds actually performed on the query path (single-flight, first matching query pays).", obs.TypeCounter, "graph").
		Set(func() float64 { return float64(e.lazyBuilds.Load()) }, graphName)

	reg.NewFuncVec("wec_published_epoch",
		"Epoch of the currently published snapshot.", obs.TypeGauge, "graph").
		Set(func() float64 { return float64(e.snap.Load().epoch) }, graphName)
	oep := reg.NewFuncVec("wec_oracle_epoch",
		"Epoch each oracle's built state corresponds to; wec_published_epoch minus this is the oracle's staleness lag (-1 = never built).", obs.TypeGauge, "graph", "oracle")
	for fi := range e.factories {
		fi := fi
		oep.Set(func() float64 { return float64(e.snap.Load().builtEpochAt(fi)) }, graphName, e.factories[fi].Name)
	}
	reg.NewFuncVec("wec_pending_batches",
		"Staged update batches not yet folded into a snapshot.", obs.TypeGauge, "graph").
		Set(func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.unapplied)
		}, graphName)
	edges := reg.NewFuncVec("wec_edges_added_total",
		"Edges added by published updates.", obs.TypeCounter, "graph")
	edges.Set(func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(e.edgesAdded)
	}, graphName)
	removed := reg.NewFuncVec("wec_edges_removed_total",
		"Edges removed by published updates.", obs.TypeCounter, "graph")
	removed.Set(func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(e.edgesRemoved)
	}, graphName)

	hits := reg.NewFuncVec("wec_cache_hits_total",
		"Query-path cache hits by layer (result, cluster, batch_dedup).", obs.TypeCounter, "graph", "cache")
	misses := reg.NewFuncVec("wec_cache_misses_total",
		"Query-path cache misses by layer.", obs.TypeCounter, "graph", "cache")
	evicts := reg.NewFuncVec("wec_cache_evictions_total",
		"Query-path cache evictions by layer.", obs.TypeCounter, "graph", "cache")
	hits.Set(func() float64 { return float64(e.rcHits.Load()) }, graphName, cacheLayerResult)
	misses.Set(func() float64 { return float64(e.rcMisses.Load()) }, graphName, cacheLayerResult)
	evicts.Set(func() float64 { return float64(e.rcEvicts.Load()) }, graphName, cacheLayerResult)
	hits.Set(func() float64 { return float64(e.dedupHits.Load()) }, graphName, cacheLayerBatchDedup)
	hits.Set(func() float64 { h, _, _ := e.clusterCacheCounts(); return float64(h) }, graphName, cacheLayerCluster)
	misses.Set(func() float64 { _, ms, _ := e.clusterCacheCounts(); return float64(ms) }, graphName, cacheLayerCluster)
	evicts.Set(func() float64 { _, _, ev := e.clusterCacheCounts(); return float64(ev) }, graphName, cacheLayerCluster)

	return m
}

// registerFleetMetrics registers the registry-wide families — the shared
// worker pool and the graph count — which carry no graph label.
func registerFleetMetrics(reg *obs.Registry, r *Registry) {
	reg.NewFuncVec("wec_pool_size",
		"Worker slots in the shared query pool.", obs.TypeGauge).
		Set(func() float64 { return float64(r.pool.Size()) })
	reg.NewFuncVec("wec_pool_in_use",
		"Worker slots currently running batch chunks.", obs.TypeGauge).
		Set(func() float64 { return float64(r.pool.inUse.Load()) })
	reg.NewFuncVec("wec_pool_tasks_total",
		"Batch chunks executed by the shared pool.", obs.TypeCounter).
		Set(func() float64 { return float64(r.pool.tasks.Load()) })
	reg.NewFuncVec("wec_graphs",
		"Graphs registered in the fleet (any lifecycle state).", obs.TypeGauge).
		Set(func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.graphs))
		})
}
