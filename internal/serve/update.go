package serve

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/parallel"
)

// This file is the dynamic-update half of the engine: edge-churn batches
// are validated and staged under the engine lock, a single background
// goroutine folds all staged batches into the next snapshot (coalescing
// them into one rebuild), and an atomic pointer swap publishes it. The
// current snapshot keeps answering queries for the whole rebuild — updates
// never block reads.
//
// Strategy selection is a per-oracle ladder, chosen per coalesced batch
// (the new graph CSR is written in every case — full rebuilds and the
// deletion path's replacement search need it):
//
//   patch-insert   insertion-only batch, oracle implements
//                  oracle.InsertionApplier: the connectivity oracle's
//                  O(#merged-components)-write label merge.
//   patch-delete   batch contains removals, oracle implements
//                  oracle.DeletionApplier (and InsertionApplier when the
//                  batch also adds): spanning-forest maintenance absorbs
//                  every removal that preserves connectivity; a genuine
//                  component split (typed oracle.ErrNeedsRebuild) steps
//                  down one rung to a full rebuild of that oracle.
//   rebased        the oracle's incremental patch chain reached
//                  Config.RebaseEvery: one reconstruction over the current
//                  graph collapses the remap chain and reseeds the forest
//                  (oracle.Rebaser), scheduled before the chain's per-batch
//                  copy cost outgrows its savings.
//   lazy           the factory is Deferrable and the batch is not a provable
//                  no-op for it: the previous instance is carried forward as
//                  stale (tagged with its built epoch) and a lazySlot is
//                  planted in the new snapshot. Nothing is built on the
//                  publish path; the first query of one of the factory's
//                  kinds pays for one single-flight rebuild (lazy.go).
//                  Biconnectivity is neither insertion- nor deletion-
//                  monotone, so this is its rung for every batch it cannot
//                  prove structure-preserving — a conn-only workload churns
//                  forever without ever rebuilding bicc.
//   full           everything else.
//
// Per-rebuild asymmetric costs (graph / conn / bicc, separately metered),
// the per-oracle strategies taken, and cumulative per-oracle strategy
// counters are recorded in RebuildRecord / Stats and served through
// /stats — how the write savings of the incremental paths are measured
// (and asserted by the churn harnesses) end to end.

// Rebuild strategies recorded per oracle in RebuildRecord.Strategies and
// summarized in RebuildRecord.Strategy.
const (
	StrategyPatchedInsert = "patched-insert"
	StrategyPatchedDelete = "patched-delete"
	StrategyRebased       = "rebased"
	StrategyFull          = "full"
	// StrategyLazy marks a Deferrable oracle whose rebuild was skipped at
	// publish time and deferred to the first matching query (lazy.go). Its
	// label also keys the rebuild-duration histogram bucket those deferred,
	// query-triggered builds observe into.
	StrategyLazy = "lazy"
)

// DefaultRebaseEvery is the chain-depth budget selected by
// Config.RebaseEvery = 0: an oracle whose incremental patch chain reaches
// this depth is re-based (fresh decomposition) instead of patched again.
const DefaultRebaseEvery = 64

// ErrClosed is returned by Update after Close.
var ErrClosed = errors.New("serve: engine closed")

// MaxRebuildHistory bounds the rebuild records kept for /stats: older
// records rotate out, so consumers asserting on per-rebuild telemetry must
// account for the cap (the churn harness does).
const MaxRebuildHistory = 32

// Update is one edge-churn batch: Add edges are applied before Remove
// edges. Vertex ids must lie in the served graph's fixed vertex set;
// multiset semantics match graph.Overlay (parallel edges and self-loops
// allowed, removals take one copy each).
type Update struct {
	Add    [][2]int32
	Remove [][2]int32
}

// UpdateStatus reports the outcome of staging an update.
type UpdateStatus struct {
	// Seq is the batch's staging sequence number (1-based).
	Seq int64
	// Epoch is the snapshot epoch observed at return: the epoch that
	// includes the batch when Applied, the pre-staging epoch otherwise.
	Epoch int64
	// Pending counts staged batches not yet folded into a snapshot.
	Pending int
	// Applied reports whether the batch is already part of the published
	// snapshot (always true when Update was called with wait=true).
	Applied bool
}

// RebuildRecord is the telemetry of one background rebuild attempt.
// Strategy summarizes the batch (the most incremental rung any oracle
// worked on the publish path; "lazy" only when every oracle deferred);
// Strategies records the rung each oracle actually took, keyed by factory
// name. The costs are the publish path's own metered work: a lazily
// deferred oracle contributes only its refused patch attempt (often zero) —
// the deferred build's cost surfaces later on the snapshot's build-cost
// side (/stats Oracles), not here. ConnCost/BiccCost are the built-in
// factories' costs (kept for single-graph clients); OracleCosts has every
// registered factory's, keyed by factory name.
type RebuildRecord struct {
	Epoch        int64                `json:"epoch"`
	Strategy     string               `json:"strategy"`             // patched-insert | patched-delete | rebased | lazy | full
	Strategies   map[string]string    `json:"strategies,omitempty"` // factory name -> strategy taken
	Batches      int                  `json:"batches"`              // update batches coalesced in
	AddedEdges   int                  `json:"added_edges"`
	RemovedEdges int                  `json:"removed_edges"`
	GraphCost    asym.Cost            `json:"graph_cost"` // writing the new CSR
	ConnCost     asym.Cost            `json:"conn_cost"`  // connectivity oracle (patched, rebased or full)
	BiccCost     asym.Cost            `json:"bicc_cost"`  // biconnectivity oracle (patched, deferred or full)
	OracleCosts  map[string]asym.Cost `json:"oracle_costs,omitempty"`
	Duration     time.Duration        `json:"duration_ns"`
	Err          string               `json:"error,omitempty"`
}

// updateBatch is one staged Update plus its bookkeeping: the multiset delta
// it contributed to Engine.delta (for exact un-staging at publish time) and
// the completion state its waiters block on.
type updateBatch struct {
	seq    int64
	add    [][2]int32
	remove [][2]int32
	delta  map[[2]int32]int

	done  bool
	err   error
	epoch int64 // epoch that folded the batch in (when done && err == nil)
}

// Update validates and stages an edge-churn batch, waking the background
// rebuilder. With wait=false it returns as soon as the batch is staged;
// with wait=true it blocks until the batch is part of the published
// snapshot (or the engine closes).
//
// Validation is synchronous and atomic: vertex ids are bounds-checked and
// every removal is checked against the effective edge multiset (published
// snapshot plus all staged batches, this one included, adds before
// removes). A rejected batch stages nothing. The multiplicity rule here
// must stay the cross-batch extension of graph.Overlay's (same NormEdge
// keys, adds before removes): buildNext replays accepted batches into an
// Overlay and relies on them agreeing.
func (e *Engine) Update(u Update, wait bool) (UpdateStatus, error) {
	if len(u.Add)+len(u.Remove) == 0 {
		return UpdateStatus{}, errors.New("serve: empty update")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return UpdateStatus{}, ErrClosed
	}
	sn := e.snap.Load()
	n := int32(sn.g.N())
	batchDelta := map[[2]int32]int{}
	for _, edge := range u.Add {
		if edge[0] < 0 || edge[1] < 0 || edge[0] >= n || edge[1] >= n {
			e.mu.Unlock()
			return UpdateStatus{}, fmt.Errorf("serve: add edge (%d,%d) out of range [0,%d)", edge[0], edge[1], n)
		}
		batchDelta[graph.NormEdge(edge)]++
	}
	for _, edge := range u.Remove {
		if edge[0] < 0 || edge[1] < 0 || edge[0] >= n || edge[1] >= n {
			e.mu.Unlock()
			return UpdateStatus{}, fmt.Errorf("serve: remove edge (%d,%d) out of range [0,%d)", edge[0], edge[1], n)
		}
		key := graph.NormEdge(edge)
		if sn.g.EdgeMultiplicity(key[0], key[1])+e.delta[key]+batchDelta[key] <= 0 {
			e.mu.Unlock()
			return UpdateStatus{}, fmt.Errorf("serve: remove edge (%d,%d): not present", edge[0], edge[1])
		}
		batchDelta[key]--
	}

	// Durability before staging: once the batch is staged it can be
	// acknowledged, so it must already be in the WAL by then. A log
	// failure rejects the batch with nothing staged.
	if e.persist != nil {
		if perr := e.persist.LogUpdate(e.seq+1, u.Add, u.Remove); perr != nil {
			e.mu.Unlock()
			return UpdateStatus{}, fmt.Errorf("%w: %v", ErrPersist, perr)
		}
	}

	for k, d := range batchDelta {
		e.delta[k] += d
	}
	e.seq++
	b := &updateBatch{
		seq:    e.seq,
		add:    append([][2]int32(nil), u.Add...),
		remove: append([][2]int32(nil), u.Remove...),
		delta:  batchDelta,
	}
	e.pending = append(e.pending, b)
	e.unapplied++
	e.loopOnce.Do(func() { go e.rebuildLoop() })
	e.cond.Broadcast()

	if !wait {
		st := UpdateStatus{Seq: b.seq, Epoch: sn.epoch, Pending: e.unapplied}
		e.mu.Unlock()
		return st, nil
	}
	for !b.done {
		e.cond.Wait()
	}
	st := UpdateStatus{Seq: b.seq, Epoch: b.epoch, Pending: e.unapplied, Applied: b.err == nil}
	err := b.err
	e.mu.Unlock()
	return st, err
}

// Close stops accepting updates and shuts the rebuild goroutine down after
// it drains the already-staged batches. Queries keep working against the
// last published snapshot. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// rebuildLoop is the single background rebuilder: it drains all staged
// batches at once, builds the next snapshot while the current one serves,
// publishes it with an atomic store, and wakes the batches' waiters.
func (e *Engine) rebuildLoop() {
	for {
		e.mu.Lock()
		for len(e.pending) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.pending) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		batches := e.pending
		e.pending = nil
		cur := e.snap.Load()
		e.mu.Unlock()

		start := time.Now()
		next, rec, err := e.buildNext(cur, batches)
		rec.Duration = time.Since(start)
		if err != nil {
			// Typed so wait=true updaters (and the HTTP layer) can tell a
			// server-side rebuild failure from a rejected request.
			err = fmt.Errorf("%w: %v", ErrRebuildFailed, err)
		}

		e.mu.Lock()
		if err == nil {
			// The outgoing snapshot's oracle-side cache counters retire into
			// the engine accumulators so /stats stays cumulative across
			// swaps (the caches themselves are rebuilt with their oracles —
			// that is the epoch invalidation rule). Instances carried into
			// the next snapshot — a deferred oracle's stale base, a
			// no-op-patched adapter that returned itself — are skipped: their
			// counters stay live and folding them now would double-count.
			for fi := range cur.oracles {
				cur.liveOracles(fi, func(o oracle.QueryOracle) {
					if oracleSame(o, next.oracles[fi]) {
						return
					}
					if cs, ok := o.(oracle.CacheStatser); ok {
						h, ms, ev := cs.CacheStats()
						e.ccHits.Add(h)
						e.ccMisses.Add(ms)
						e.ccEvicts.Add(ev)
					}
				})
			}
			e.snap.Store(next)
			e.pubSeq = batches[len(batches)-1].seq
			e.nRebuilds++
			if rec.Strategy == StrategyPatchedInsert || rec.Strategy == StrategyPatchedDelete || rec.Strategy == StrategyLazy {
				e.nIncremental++
			}
			for i := range e.factories {
				if !e.factories[i].Deferrable || e.eager {
					continue
				}
				switch rec.Strategies[e.factories[i].Name] {
				case StrategyLazy, StrategyPatchedInsert, StrategyPatchedDelete:
					// Either rung means this publish skipped the eager
					// rebuild the pre-deferral engine would have paid for.
					e.rebuildsAvoided.Add(1)
				}
			}
			for name, s := range rec.Strategies {
				if e.stratCounts[name] == nil {
					e.stratCounts[name] = map[string]int64{}
				}
				e.stratCounts[name][s]++
			}
			e.edgesAdded += int64(rec.AddedEdges)
			e.edgesRemoved += int64(rec.RemovedEdges)
		} else {
			rec.Err = err.Error()
			// The dropped batches' WAL records must not replay on
			// recovery: abort them durably BEFORE their staged deltas are
			// released below — once released, later updates validate
			// against a graph without these batches, and a recovery that
			// resurrected them could invalidate those later, acknowledged
			// batches. (Batches drain FIFO, so the range is contiguous.)
			if e.persist != nil {
				if aerr := e.persist.LogAbort(batches[0].seq, batches[len(batches)-1].seq); aerr != nil {
					rec.Err += "; abort record failed: " + aerr.Error()
				}
			}
		}
		e.history = append(e.history, rec)
		if len(e.history) > MaxRebuildHistory {
			e.history = e.history[len(e.history)-MaxRebuildHistory:]
		}
		for _, b := range batches {
			// Whether published or dropped, the batch is no longer staged:
			// un-stage its multiset delta so removal validation tracks the
			// (new) published graph again.
			for k, d := range b.delta {
				if e.delta[k] += -d; e.delta[k] == 0 {
					delete(e.delta, k)
				}
			}
			b.done = true
			b.err = err
			b.epoch = rec.Epoch
			e.unapplied--
		}
		e.cond.Broadcast()
		cb := e.onRebuild
		e.mu.Unlock()
		// Metric observation outside the lock: strategies not on the ladder
		// (a failed build records Strategy before stepping down) fall back
		// to no observation rather than a panic.
		if err == nil {
			if h := e.met.rebuildDur[rec.Strategy]; h != nil {
				h.Observe(rec.Duration.Seconds())
			}
		} else {
			e.met.rebuildFail.Inc()
		}
		if err == nil && e.persist != nil {
			// Commit the published epoch to the durable log (and let it
			// compact) outside the engine lock: the snapshot's graph and
			// remap are immutable, so the store can encode them while new
			// batches stage concurrently. Batches drain FIFO with
			// monotonic sequence numbers, so the last one's seq is the
			// publish's coverage watermark.
			e.persist.EpochPublished(rec.Epoch, batches[len(batches)-1].seq, next.g,
				func() (map[int32]int32, [][2]int32, int) { return connDynOf(next) })
		}
		if cb != nil {
			cb(rec)
		}
	}
}

// planStrategy picks factory fi's rung on the update-strategy ladder for a
// batch of the given shape.
//
// Deferrable factories (unless Config.EagerRebuilds pins the engine to the
// eager ladder) walk the deferred sub-ladder: attempt the no-op patch when
// the effective instance is fresh — the patch predicates answer about the
// instance's *own* graph, so testing a stale instance against a newer batch
// would be unsound — and otherwise go lazy, carrying the instance forward
// as stale for the first query to rebuild. Everything else walks the eager
// ladder: rebase when the patch chain hit its budget, else the cheapest
// patch the oracle's capabilities and the batch shape allow, else a full
// rebuild.
//
// The plan is provisional — inside the build, patch-delete steps down to
// full when the oracle refuses the batch with oracle.ErrNeedsRebuild (a
// genuine component split), and a deferrable oracle's refused patch steps
// down to lazy, never to a publish-path rebuild.
func (e *Engine) planStrategy(fi int, cur *snapshot, hasAdds, hasRemovals bool) string {
	o := cur.oracleAt(fi)
	if e.factories[fi].Deferrable {
		if e.eager {
			// Config.EagerRebuilds pins deferrable oracles to the
			// pre-deferral baseline — a full rebuild every publish, no
			// patch attempts — which is what benchmark before/after pairs
			// compare against.
			return StrategyFull
		}
		if o != nil && cur.builtEpochAt(fi) == cur.epoch {
			if !hasRemovals {
				if _, ok := o.(oracle.InsertionApplier); ok {
					return StrategyPatchedInsert
				}
			} else if _, ok := o.(oracle.DeletionApplier); ok {
				if !hasAdds {
					return StrategyPatchedDelete
				}
				if _, ok := o.(oracle.InsertionApplier); ok {
					return StrategyPatchedDelete
				}
			}
		}
		return StrategyLazy
	}
	if e.rebaseEvery > 0 {
		if rb, ok := o.(oracle.Rebaser); ok && rb.ChainDepth() >= e.rebaseEvery {
			return StrategyRebased
		}
	}
	if !hasRemovals {
		if _, ok := o.(oracle.InsertionApplier); ok {
			return StrategyPatchedInsert
		}
		return StrategyFull
	}
	if _, ok := o.(oracle.DeletionApplier); ok {
		if !hasAdds {
			return StrategyPatchedDelete
		}
		if _, ok := o.(oracle.InsertionApplier); ok {
			return StrategyPatchedDelete
		}
	}
	return StrategyFull
}

// summarizeStrategies collapses the per-oracle strategies into the record's
// headline: the most incremental rung a non-deferred oracle *worked* on the
// publish path. Deferrable oracles' entries are skipped entirely (unless
// Config.EagerRebuilds put them on the eager ladder): their lazy rung did
// no publish work, and their no-op patch absorptions are read-only
// predicate checks — letting either outrank, say, a conn rebase would make
// the headline (and the incremental-rebuild counter it drives) depend on
// batch shapes the eager ladder never sees. Only a batch that defers every
// oracle summarizes as lazy.
func (e *Engine) summarizeStrategies(strategies []string) string {
	rank := map[string]int{StrategyFull: 0, StrategyRebased: 1, StrategyPatchedDelete: 2, StrategyPatchedInsert: 3}
	best := ""
	for i, s := range strategies {
		if s == StrategyLazy || (e.factories[i].Deferrable && !e.eager) {
			continue
		}
		if best == "" || rank[s] > rank[best] {
			best = s
		}
	}
	if best == "" {
		return StrategyLazy
	}
	return best
}

// oracleSame reports whether two oracle instances are the same carried
// value. Adapter patches that absorb a batch as a provable no-op return the
// receiver unchanged, so identity comparison is the signal that an instance
// survived into the next snapshot. Non-comparable dynamic types (a
// plugged-in oracle holding a map or slice directly) can't be carried-same
// in that sense, so they compare false instead of panicking.
func oracleSame(a, b oracle.QueryOracle) bool {
	if a == nil || b == nil {
		return false
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	return a == b
}

// buildNext folds the staged batches into a new snapshot, walking the
// update-strategy ladder independently for every oracle (see the file
// header). The new graph CSR is written in every case — full rebuilds need
// it and the deletion path's replacement search runs over it.
func (e *Engine) buildNext(cur *snapshot, batches []*updateBatch) (*snapshot, RebuildRecord, error) {
	rec := RebuildRecord{Epoch: cur.epoch + 1, Batches: len(batches), Strategy: StrategyFull}

	ov := graph.NewOverlay(cur.g)
	var adds, removes [][2]int32
	for _, b := range batches {
		if err := ov.AddEdges(b.add); err != nil {
			rec.Epoch = cur.epoch
			return nil, rec, err
		}
		if err := ov.RemoveEdges(b.remove); err != nil {
			rec.Epoch = cur.epoch
			return nil, rec, err
		}
		adds = append(adds, b.add...)
		removes = append(removes, b.remove...)
	}
	rec.AddedEdges = ov.Added()
	rec.RemovedEdges = ov.Removed()

	gm := asym.NewMeter(e.omega)
	newG := ov.Build(gm)
	rec.GraphCost = gm.Snapshot()
	if e.testRebuildErr != nil {
		if err := e.testRebuildErr(newG); err != nil {
			rec.Epoch = cur.epoch
			return nil, rec, err
		}
	}

	hasAdds, hasRemovals := ov.Added() > 0, ov.Removed() > 0
	nf := len(e.factories)
	ms := make([]*asym.Meter, nf)
	os := make([]oracle.QueryOracle, nf)
	errs := make([]error, nf)
	strategies := make([]string, nf)
	for i := range ms {
		ms[i] = asym.NewMeter(e.omega)
		strategies[i] = e.planStrategy(i, cur, hasAdds, hasRemovals)
	}
	root := parallel.NewCtx(e.disp, nil)
	root.SetGrain(1)
	root.For(0, nf, func(_ *parallel.Ctx, i int) {
		// A panicking rebuild branch runs on a fork-spawned goroutine with
		// no recover above it; capture it as this rebuild's error (the
		// batches drop, the old snapshot keeps serving) instead of letting
		// it kill the process.
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("oracle %q rebuild panicked: %v", e.factories[i].Name, r)
			}
		}()
		switch strategies[i] {
		case StrategyLazy:
			// Nothing happens on the publish path; the assembly below
			// carries the stale instance forward and plants the slot.
			return
		case StrategyPatchedInsert:
			ia := cur.oracleAt(i).(oracle.InsertionApplier)
			o, err := ia.ApplyInsertions(ms[i], asym.NewSymTracker(e.sym), adds)
			if err == nil {
				os[i] = o
				return
			}
			if !errors.Is(err, oracle.ErrNeedsRebuild) {
				errs[i] = err
				return
			}
			if e.factories[i].Deferrable && !e.eager {
				// The oracle refused the patch (an insertion merges blocks):
				// a deferrable oracle steps down to the lazy rung, never to
				// a publish-path rebuild. The refused attempt's charges stay
				// on ms[i] — they are real publish work and show up in the
				// record's costs.
				strategies[i] = StrategyLazy
				return
			}
			// A typed refusal is a ladder step-down by contract, not a
			// failure: fall through to a full rebuild on a fresh meter so
			// the recorded cost is the rebuild's, not attempt + rebuild.
			strategies[i] = StrategyFull
			ms[i] = asym.NewMeter(e.omega)
		case StrategyPatchedDelete:
			sym := asym.NewSymTracker(e.sym)
			patched := cur.oracleAt(i)
			var err error
			if len(adds) > 0 {
				// Coalesced-batch order: all adds fold in first (they can
				// only merge), then the removals run against the final
				// multiset — the same end state as replaying the batches.
				patched, err = patched.(oracle.InsertionApplier).ApplyInsertions(ms[i], sym, adds)
			}
			if err == nil {
				os[i], err = patched.(oracle.DeletionApplier).ApplyDeletions(ms[i], sym, removes, newG)
			}
			if err == nil {
				return
			}
			if !errors.Is(err, oracle.ErrNeedsRebuild) {
				errs[i] = err
				return
			}
			if e.factories[i].Deferrable && !e.eager {
				// Refused patch on a deferrable oracle: defer, don't rebuild.
				strategies[i] = StrategyLazy
				return
			}
			// A deletion genuinely split a component: step down the ladder
			// to a full rebuild of this oracle (fresh meter so the recorded
			// cost is the rebuild's, not patch-attempt + rebuild).
			strategies[i] = StrategyFull
			ms[i] = asym.NewMeter(e.omega)
		case StrategyRebased:
			rb := cur.oracleAt(i).(oracle.Rebaser)
			c := parallel.NewCtx(ms[i], asym.NewSymTracker(e.sym))
			os[i] = rb.Rebase(c, graph.View{G: newG, M: ms[i]}, e.k, e.seed)
			return
		}
		c := parallel.NewCtx(ms[i], asym.NewSymTracker(e.sym))
		os[i] = e.factories[i].Build(c, graph.View{G: newG, M: ms[i]}, e.k, e.seed)
	})
	for _, err := range errs {
		if err != nil { // staging validation makes this unreachable
			rec.Epoch = cur.epoch
			return nil, rec, err
		}
	}
	rec.Strategies = make(map[string]string, nf)
	for i, f := range e.factories {
		rec.Strategies[f.Name] = strategies[i]
	}
	rec.Strategy = e.summarizeStrategies(strategies)
	// The record's costs are the publish path's own work, straight off the
	// per-oracle meters — identical to the snapshot build costs for every
	// eager rung, but NOT for a lazy slot, whose snapshot cost is the
	// carried (or later, the deferred build's) cost while its publish work
	// is just the refused patch attempt.
	rec.OracleCosts = make(map[string]asym.Cost, nf)
	for i, f := range e.factories {
		rec.OracleCosts[f.Name] = ms[i].Snapshot()
	}
	rec.ConnCost = rec.OracleCosts["conn"]
	rec.BiccCost = rec.OracleCosts["bicc"]
	costs := make([]asym.Cost, nf)
	for i, m := range ms {
		costs[i] = m.Snapshot()
	}
	nextEpoch := cur.epoch + 1
	var builtEpochs []int64
	var lazySlots []*lazySlot
	for i := range os {
		if strategies[i] != StrategyLazy {
			continue
		}
		if builtEpochs == nil {
			builtEpochs = make([]int64, nf)
			lazySlots = make([]*lazySlot, nf)
			for j := range builtEpochs {
				builtEpochs[j] = nextEpoch
			}
		}
		// Carry the effective instance forward as stale, tagged with the
		// epoch it was built at. The slot's built pointer flips nil ->
		// non-nil exactly once, so loading it once here keeps the
		// (instance, cost, tag) triple coherent even if a lazy build of cur
		// races with this publish.
		var lb *lazyBuilt
		if cur.lazy != nil && cur.lazy[i] != nil {
			lb = cur.lazy[i].built.Load()
		}
		switch {
		case lb != nil:
			os[i], costs[i], builtEpochs[i] = lb.o, lb.cost, cur.epoch
		case cur.builtEpoch != nil:
			os[i], costs[i], builtEpochs[i] = cur.oracles[i], cur.costs[i], cur.builtEpoch[i]
		default:
			os[i], costs[i], builtEpochs[i] = cur.oracles[i], cur.costs[i], cur.epoch
		}
		lazySlots[i] = &lazySlot{}
	}
	next := newSnap(nextEpoch, newG, os, costs, builtEpochs, lazySlots)
	return next, rec, nil
}
