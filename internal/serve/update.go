package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/parallel"
)

// This file is the dynamic-update half of the engine: edge-churn batches
// are validated and staged under the engine lock, a single background
// goroutine folds all staged batches into the next snapshot (coalescing
// them into one rebuild), and an atomic pointer swap publishes it. The
// current snapshot keeps answering queries for the whole rebuild — updates
// never block reads.
//
// Strategy selection per rebuild:
//
//   - insertion-only batches: the incremental path — the new graph CSR is
//     written (full rebuilds need it), and every oracle that implements
//     oracle.InsertionApplier is patched instead of rebuilt (the
//     connectivity oracle's O(#merged-components)-write label merge);
//     oracles without an incremental path (biconnectivity is not
//     insertion-monotone) are rebuilt over the new graph.
//   - any batch containing a removal: full rebuild of graph and all
//     oracles.
//
// Per-rebuild asymmetric costs (graph / conn / bicc, separately metered)
// are recorded in RebuildRecord and served through /stats, which is how the
// write savings of the incremental path are measured end to end.

// Rebuild strategies recorded in RebuildRecord.Strategy.
const (
	StrategyIncremental = "incremental"
	StrategyFull        = "full"
)

// ErrClosed is returned by Update after Close.
var ErrClosed = errors.New("serve: engine closed")

// MaxRebuildHistory bounds the rebuild records kept for /stats: older
// records rotate out, so consumers asserting on per-rebuild telemetry must
// account for the cap (the churn harness does).
const MaxRebuildHistory = 32

// Update is one edge-churn batch: Add edges are applied before Remove
// edges. Vertex ids must lie in the served graph's fixed vertex set;
// multiset semantics match graph.Overlay (parallel edges and self-loops
// allowed, removals take one copy each).
type Update struct {
	Add    [][2]int32
	Remove [][2]int32
}

// UpdateStatus reports the outcome of staging an update.
type UpdateStatus struct {
	// Seq is the batch's staging sequence number (1-based).
	Seq int64
	// Epoch is the snapshot epoch observed at return: the epoch that
	// includes the batch when Applied, the pre-staging epoch otherwise.
	Epoch int64
	// Pending counts staged batches not yet folded into a snapshot.
	Pending int
	// Applied reports whether the batch is already part of the published
	// snapshot (always true when Update was called with wait=true).
	Applied bool
}

// RebuildRecord is the telemetry of one background rebuild attempt.
// ConnCost/BiccCost are the built-in factories' costs (kept for
// single-graph clients); OracleCosts has every registered factory's,
// keyed by factory name.
type RebuildRecord struct {
	Epoch        int64                `json:"epoch"`
	Strategy     string               `json:"strategy"` // "incremental" | "full"
	Batches      int                  `json:"batches"`  // update batches coalesced in
	AddedEdges   int                  `json:"added_edges"`
	RemovedEdges int                  `json:"removed_edges"`
	GraphCost    asym.Cost            `json:"graph_cost"` // writing the new CSR
	ConnCost     asym.Cost            `json:"conn_cost"`  // connectivity oracle (incremental or full)
	BiccCost     asym.Cost            `json:"bicc_cost"`  // biconnectivity oracle (always full)
	OracleCosts  map[string]asym.Cost `json:"oracle_costs,omitempty"`
	Duration     time.Duration        `json:"duration_ns"`
	Err          string               `json:"error,omitempty"`
}

// updateBatch is one staged Update plus its bookkeeping: the multiset delta
// it contributed to Engine.delta (for exact un-staging at publish time) and
// the completion state its waiters block on.
type updateBatch struct {
	seq    int64
	add    [][2]int32
	remove [][2]int32
	delta  map[[2]int32]int

	done  bool
	err   error
	epoch int64 // epoch that folded the batch in (when done && err == nil)
}

// Update validates and stages an edge-churn batch, waking the background
// rebuilder. With wait=false it returns as soon as the batch is staged;
// with wait=true it blocks until the batch is part of the published
// snapshot (or the engine closes).
//
// Validation is synchronous and atomic: vertex ids are bounds-checked and
// every removal is checked against the effective edge multiset (published
// snapshot plus all staged batches, this one included, adds before
// removes). A rejected batch stages nothing. The multiplicity rule here
// must stay the cross-batch extension of graph.Overlay's (same NormEdge
// keys, adds before removes): buildNext replays accepted batches into an
// Overlay and relies on them agreeing.
func (e *Engine) Update(u Update, wait bool) (UpdateStatus, error) {
	if len(u.Add)+len(u.Remove) == 0 {
		return UpdateStatus{}, errors.New("serve: empty update")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return UpdateStatus{}, ErrClosed
	}
	sn := e.snap.Load()
	n := int32(sn.g.N())
	batchDelta := map[[2]int32]int{}
	for _, edge := range u.Add {
		if edge[0] < 0 || edge[1] < 0 || edge[0] >= n || edge[1] >= n {
			e.mu.Unlock()
			return UpdateStatus{}, fmt.Errorf("serve: add edge (%d,%d) out of range [0,%d)", edge[0], edge[1], n)
		}
		batchDelta[graph.NormEdge(edge)]++
	}
	for _, edge := range u.Remove {
		if edge[0] < 0 || edge[1] < 0 || edge[0] >= n || edge[1] >= n {
			e.mu.Unlock()
			return UpdateStatus{}, fmt.Errorf("serve: remove edge (%d,%d) out of range [0,%d)", edge[0], edge[1], n)
		}
		key := graph.NormEdge(edge)
		if sn.g.EdgeMultiplicity(key[0], key[1])+e.delta[key]+batchDelta[key] <= 0 {
			e.mu.Unlock()
			return UpdateStatus{}, fmt.Errorf("serve: remove edge (%d,%d): not present", edge[0], edge[1])
		}
		batchDelta[key]--
	}

	// Durability before staging: once the batch is staged it can be
	// acknowledged, so it must already be in the WAL by then. A log
	// failure rejects the batch with nothing staged.
	if e.persist != nil {
		if perr := e.persist.LogUpdate(e.seq+1, u.Add, u.Remove); perr != nil {
			e.mu.Unlock()
			return UpdateStatus{}, fmt.Errorf("%w: %v", ErrPersist, perr)
		}
	}

	for k, d := range batchDelta {
		e.delta[k] += d
	}
	e.seq++
	b := &updateBatch{
		seq:    e.seq,
		add:    append([][2]int32(nil), u.Add...),
		remove: append([][2]int32(nil), u.Remove...),
		delta:  batchDelta,
	}
	e.pending = append(e.pending, b)
	e.unapplied++
	e.loopOnce.Do(func() { go e.rebuildLoop() })
	e.cond.Broadcast()

	if !wait {
		st := UpdateStatus{Seq: b.seq, Epoch: sn.epoch, Pending: e.unapplied}
		e.mu.Unlock()
		return st, nil
	}
	for !b.done {
		e.cond.Wait()
	}
	st := UpdateStatus{Seq: b.seq, Epoch: b.epoch, Pending: e.unapplied, Applied: b.err == nil}
	err := b.err
	e.mu.Unlock()
	return st, err
}

// Close stops accepting updates and shuts the rebuild goroutine down after
// it drains the already-staged batches. Queries keep working against the
// last published snapshot. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// rebuildLoop is the single background rebuilder: it drains all staged
// batches at once, builds the next snapshot while the current one serves,
// publishes it with an atomic store, and wakes the batches' waiters.
func (e *Engine) rebuildLoop() {
	for {
		e.mu.Lock()
		for len(e.pending) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.pending) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		batches := e.pending
		e.pending = nil
		cur := e.snap.Load()
		e.mu.Unlock()

		start := time.Now()
		next, rec, err := e.buildNext(cur, batches)
		rec.Duration = time.Since(start)
		if err != nil {
			// Typed so wait=true updaters (and the HTTP layer) can tell a
			// server-side rebuild failure from a rejected request.
			err = fmt.Errorf("%w: %v", ErrRebuildFailed, err)
		}

		e.mu.Lock()
		if err == nil {
			e.snap.Store(next)
			e.pubSeq = batches[len(batches)-1].seq
			e.nRebuilds++
			if rec.Strategy == StrategyIncremental {
				e.nIncremental++
			}
			e.edgesAdded += int64(rec.AddedEdges)
			e.edgesRemoved += int64(rec.RemovedEdges)
		} else {
			rec.Err = err.Error()
			// The dropped batches' WAL records must not replay on
			// recovery: abort them durably BEFORE their staged deltas are
			// released below — once released, later updates validate
			// against a graph without these batches, and a recovery that
			// resurrected them could invalidate those later, acknowledged
			// batches. (Batches drain FIFO, so the range is contiguous.)
			if e.persist != nil {
				if aerr := e.persist.LogAbort(batches[0].seq, batches[len(batches)-1].seq); aerr != nil {
					rec.Err += "; abort record failed: " + aerr.Error()
				}
			}
		}
		e.history = append(e.history, rec)
		if len(e.history) > MaxRebuildHistory {
			e.history = e.history[len(e.history)-MaxRebuildHistory:]
		}
		for _, b := range batches {
			// Whether published or dropped, the batch is no longer staged:
			// un-stage its multiset delta so removal validation tracks the
			// (new) published graph again.
			for k, d := range b.delta {
				if e.delta[k] += -d; e.delta[k] == 0 {
					delete(e.delta, k)
				}
			}
			b.done = true
			b.err = err
			b.epoch = rec.Epoch
			e.unapplied--
		}
		e.cond.Broadcast()
		cb := e.onRebuild
		e.mu.Unlock()
		if err == nil && e.persist != nil {
			// Commit the published epoch to the durable log (and let it
			// compact) outside the engine lock: the snapshot's graph and
			// remap are immutable, so the store can encode them while new
			// batches stage concurrently. Batches drain FIFO with
			// monotonic sequence numbers, so the last one's seq is the
			// publish's coverage watermark.
			e.persist.EpochPublished(rec.Epoch, batches[len(batches)-1].seq, next.g, connRemapOf(next))
		}
		if cb != nil {
			cb(rec)
		}
	}
}

// buildNext folds the staged batches into a new snapshot. The incremental
// path is taken iff no batch removes an edge: oracles implementing
// oracle.InsertionApplier are patched from the current snapshot, the rest
// are rebuilt over the new graph. The new graph CSR is written either way
// (the full rebuilds and future overlays need it).
func (e *Engine) buildNext(cur *snapshot, batches []*updateBatch) (*snapshot, RebuildRecord, error) {
	rec := RebuildRecord{Epoch: cur.epoch + 1, Batches: len(batches), Strategy: StrategyFull}

	ov := graph.NewOverlay(cur.g)
	var adds [][2]int32
	for _, b := range batches {
		if err := ov.AddEdges(b.add); err != nil {
			rec.Epoch = cur.epoch
			return nil, rec, err
		}
		if err := ov.RemoveEdges(b.remove); err != nil {
			rec.Epoch = cur.epoch
			return nil, rec, err
		}
		adds = append(adds, b.add...)
	}
	rec.AddedEdges = ov.Added()
	rec.RemovedEdges = ov.Removed()

	gm := asym.NewMeter(e.omega)
	newG := ov.Build(gm)
	rec.GraphCost = gm.Snapshot()
	if e.testRebuildErr != nil {
		if err := e.testRebuildErr(newG); err != nil {
			rec.Epoch = cur.epoch
			return nil, rec, err
		}
	}

	incremental := ov.Removed() == 0
	nf := len(e.factories)
	ms := make([]*asym.Meter, nf)
	os := make([]oracle.QueryOracle, nf)
	errs := make([]error, nf)
	patched := false
	for i := range ms {
		ms[i] = asym.NewMeter(e.omega)
		if incremental {
			if _, ok := cur.oracles[i].(oracle.InsertionApplier); ok {
				patched = true
			}
		}
	}
	root := parallel.NewCtx(e.disp, nil)
	root.SetGrain(1)
	root.For(0, nf, func(_ *parallel.Ctx, i int) {
		// A panicking rebuild branch runs on a fork-spawned goroutine with
		// no recover above it; capture it as this rebuild's error (the
		// batches drop, the old snapshot keeps serving) instead of letting
		// it kill the process.
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("oracle %q rebuild panicked: %v", e.factories[i].Name, r)
			}
		}()
		if incremental {
			if ia, ok := cur.oracles[i].(oracle.InsertionApplier); ok {
				os[i], errs[i] = ia.ApplyInsertions(ms[i], asym.NewSymTracker(e.sym), adds)
				return
			}
		}
		c := parallel.NewCtx(ms[i], asym.NewSymTracker(e.sym))
		os[i] = e.factories[i].Build(c, graph.View{G: newG, M: ms[i]}, e.k, e.seed)
	})
	for _, err := range errs {
		if err != nil { // staging validation makes this unreachable
			rec.Epoch = cur.epoch
			return nil, rec, err
		}
	}
	if incremental && patched {
		rec.Strategy = StrategyIncremental
	}
	costs := make([]asym.Cost, nf)
	for i, m := range ms {
		costs[i] = m.Snapshot()
	}
	next := &snapshot{epoch: cur.epoch + 1, g: newG, oracles: os, costs: costs}
	rec.ConnCost = e.costByName(next, "conn")
	rec.BiccCost = e.costByName(next, "bicc")
	rec.OracleCosts = e.buildCosts(next)
	return next, rec, nil
}
