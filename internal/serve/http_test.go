package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
)

func newTestServer(t *testing.T, g *graph.Graph) (*Engine, *httptest.Server) {
	t.Helper()
	e := New(g, Config{Omega: 16, Seed: 5})
	ts := httptest.NewServer(NewServer(e))
	t.Cleanup(ts.Close)
	t.Cleanup(e.Close)
	return e, ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestHTTPRoundTripAllEndpoints exercises every endpoint once: /healthz,
// /info, /query for each kind, /batch, and /stats.
func TestHTTPRoundTripAllEndpoints(t *testing.T) {
	g := graph.RandomRegular(200, 3, 47)
	e, ts := newTestServer(t, g)

	var health map[string]bool
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health["ok"] {
		t.Fatalf("/healthz: code=%d body=%v", code, health)
	}

	var info Info
	if code := getJSON(t, ts.URL+"/info", &info); code != http.StatusOK {
		t.Fatalf("/info: code=%d", code)
	}
	if info.GraphN != g.N() || info.GraphM != g.M() || len(info.Kinds) != len(Kinds) {
		t.Errorf("/info mismatch: %+v", info)
	}
	if info.BuildConn.Writes == 0 || info.BuildBicc.Writes == 0 {
		t.Errorf("/info build costs should have nonzero writes: %+v %+v", info.BuildConn, info.BuildBicc)
	}

	// One /query per kind, checked against a direct oracle call.
	m := asym.NewMeter(e.Omega())
	sym := asym.NewSymTracker(0)
	for i, kind := range Kinds {
		q := Query{Kind: kind, U: int32(i), V: int32(i + 7)}
		var got Result
		if code := postJSON(t, ts.URL+"/query", q, &got); code != http.StatusOK {
			t.Fatalf("/query %s: code=%d", kind, code)
		}
		want := direct(e, m, sym, q)
		if !sameResult(got, want) {
			t.Errorf("/query %s: got %+v want %+v", kind, got, want)
		}
	}

	// A mixed batch.
	qs := mixedQueries(g, 250, 53)
	var br BatchResponse
	if code := postJSON(t, ts.URL+"/batch", BatchRequest{Queries: qs}, &br); code != http.StatusOK {
		t.Fatalf("/batch: code=%d", code)
	}
	if br.Count != len(qs) || len(br.Results) != len(qs) {
		t.Fatalf("/batch: count=%d results=%d want %d", br.Count, len(br.Results), len(qs))
	}
	for i, q := range qs {
		if want := direct(e, m, sym, q); !sameResult(br.Results[i], want) {
			t.Errorf("/batch %d %s: got %+v want %+v", i, describe(q), br.Results[i], want)
		}
	}

	var st StatsJSON
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats: code=%d", code)
	}
	if st.TotalQueries != int64(len(Kinds)+len(qs)) {
		t.Errorf("/stats total=%d want %d", st.TotalQueries, len(Kinds)+len(qs))
	}
	for _, k := range Kinds {
		ks, ok := st.Queries[string(k)]
		if !ok || ks.Count == 0 {
			t.Errorf("/stats missing kind %s: %+v", k, ks)
			continue
		}
		if ks.Cost.Reads == 0 || ks.Cost.Writes == 0 || ks.Cost.Work == 0 {
			t.Errorf("/stats kind %s: want nonzero reads/writes/work, got %+v", k, ks.Cost)
		}
	}
}

// TestHTTPBatch10kEquivalence is the acceptance check: >= 10k mixed queries
// served through the HTTP API must return answers identical to direct
// single-threaded oracle calls.
func TestHTTPBatch10kEquivalence(t *testing.T) {
	g := graph.GNM(500, 700, 59, false) // disconnected: exercises implicit centers
	e, ts := newTestServer(t, g)

	const nq = 10_000
	qs := mixedQueries(g, nq, 61)
	var br BatchResponse
	if code := postJSON(t, ts.URL+"/batch", BatchRequest{Queries: qs}, &br); code != http.StatusOK {
		t.Fatalf("/batch: code=%d", code)
	}
	if len(br.Results) != nq {
		t.Fatalf("/batch returned %d results, want %d", len(br.Results), nq)
	}
	m := asym.NewMeter(e.Omega())
	sym := asym.NewSymTracker(0)
	mismatches := 0
	for i, q := range qs {
		if want := direct(e, m, sym, q); !sameResult(br.Results[i], want) {
			if mismatches < 5 {
				t.Errorf("query %d %s: got %+v want %+v", i, describe(q), br.Results[i], want)
			}
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d mismatches", mismatches, nq)
	}

	var st StatsJSON
	getJSON(t, ts.URL+"/stats", &st)
	for _, k := range Kinds {
		c := st.Queries[string(k)].Cost
		if c.Reads == 0 || c.Writes == 0 || c.Work == 0 {
			t.Errorf("kind %s: want nonzero reads/writes/work after 10k batch, got %+v", k, c)
		}
	}
}

// TestHTTPErrors covers the failure surfaces: wrong methods, bad JSON,
// malformed queries, oversized batches.
func TestHTTPErrors(t *testing.T) {
	g := graph.Grid2D(5, 5)
	_, ts := newTestServer(t, g)

	for _, tc := range []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"query GET", func() (*http.Response, error) { return http.Get(ts.URL + "/query") }, http.StatusMethodNotAllowed},
		{"batch GET", func() (*http.Response, error) { return http.Get(ts.URL + "/batch") }, http.StatusMethodNotAllowed},
		{"stats POST", func() (*http.Response, error) {
			return http.Post(ts.URL+"/stats", "application/json", bytes.NewReader(nil))
		}, http.StatusMethodNotAllowed},
		{"bad query JSON", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{")))
		}, http.StatusBadRequest},
		{"bad batch JSON", func() (*http.Response, error) {
			return http.Post(ts.URL+"/batch", "application/json", bytes.NewReader([]byte("[]")))
		}, http.StatusBadRequest},
		{"unknown kind", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json",
				bytes.NewReader([]byte(`{"kind":"mystery","u":0}`)))
		}, http.StatusBadRequest},
		{"vertex out of range", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json",
				bytes.NewReader([]byte(fmt.Sprintf(`{"kind":"component","u":%d}`, g.N()))))
		}, http.StatusBadRequest},
		{"oversized query body", func() (*http.Response, error) {
			// Valid JSON padded past maxQueryBytes: must be rejected by the
			// byte limit, not decoded.
			body := append([]byte(`{"kind":"component","u":0,"pad":"`),
				bytes.Repeat([]byte("x"), maxQueryBytes+1)...)
			body = append(body, []byte(`"}`)...)
			return http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		}, http.StatusRequestEntityTooLarge},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: code=%d want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
