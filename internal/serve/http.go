package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/asym"
	"repro/internal/obs"
)

// This file is the HTTP/JSON surface over the Registry, mounted by
// cmd/oracled and by the httptest round-trips in the test files.
//
// Single-graph endpoints (route to the registry's *default* graph, so every
// pre-multi-tenant client works unchanged):
//
//	POST /query   {"kind":"connected","u":0,"v":5}      -> Result
//	              (optional "staleness":"bounded" answers a deferred oracle's
//	              kinds from its last-built state, reporting "epoch")
//	POST /batch   {"queries":[Query,...]}                -> {"results":[Result,...],"count":N}
//	              (optional top-level "staleness" is the default for queries
//	              that don't set their own)
//	POST /update  {"add":[[0,5],...],"remove":[[1,2],...],"wait":true} -> UpdateResponse
//	GET  /stats                                          -> Stats (incl. epoch, rebuild, admission, pool telemetry)
//	GET  /info                                           -> per-snapshot build/graph info
//	GET  /healthz                                        -> 200 {"ok":true} once the default graph's first
//	                                                        snapshot is published; 503 {"ok":false,...} before
//	                                                        (readiness, not liveness)
//
// Observability (fleet-wide):
//
//	GET /metrics       -> Prometheus text exposition of the registry's obs
//	                      metrics (per-graph query latency, admission, caches,
//	                      rebuilds, epoch; fleet pool and graph count)
//	GET /debug/traces  -> JSON ring of recent slow requests (span per phase;
//	                      threshold from RegistryConfig.SlowQuery)
//
// Graph lifecycle (multi-tenant):
//
//	POST   /graphs                -> create a named graph from generator params or an inline
//	                                 graphio body; built in the background (202 + state
//	                                 "building", or the final state with "wait":true)
//	GET    /graphs                -> every graph's lifecycle status
//	GET    /graphs/{name}         -> one graph's lifecycle status
//	DELETE /graphs/{name}         -> unregister; drains in-flight requests, then closes
//	POST   /graphs/{name}/query|batch|update, GET /graphs/{name}/stats|info
//	                              -> the single-graph endpoints, per graph
//
// Requests against a graph that is still building get 503 + Retry-After;
// admission-control rejections (per-graph in-flight cap) get 429 +
// Retry-After with the rejection counted in that graph's /stats. Wrong
// methods get 405 with an Allow header (the method-aware mux patterns
// below), never a zero-value decode of the wrong request shape.
//
// Batch requests are capped at MaxBatch queries so a single request cannot
// hold a worker set for an unbounded time; load generators split larger
// workloads into multiple requests (cmd/wecbench -exp serve does). The cap
// is enforced before decoding via a MaxBytesReader on the request body —
// rejecting an oversized batch must not itself cost an oversized decode.
// Update requests are capped the same way at MaxUpdateEdges edges, graph
// creations at maxGraphSpecBytes.

// MaxBatch bounds the number of queries accepted by one /batch request.
const MaxBatch = 1 << 20

// MaxUpdateEdges bounds the total edges (add + remove) in one /update
// request; larger churn is split into multiple batches, which the engine
// coalesces into one rebuild anyway.
const MaxUpdateEdges = 1 << 18

// maxUpdateBytes bounds the /update request body. 32 bytes per edge covers
// the encoded pair ("[2147483647,2147483647],") with room for the wrapper.
const maxUpdateBytes = MaxUpdateEdges * 32

// maxBatchBytes bounds the /batch request body. 64 bytes comfortably covers
// one encoded query ({"kind":"articulation","u":2147483647,"v":...} plus
// separators), so the limit is never the binding constraint for a legal
// MaxBatch-sized batch.
const maxBatchBytes = MaxBatch * 64

// maxQueryBytes bounds the /query request body.
const maxQueryBytes = 1 << 12

// maxGraphSpecBytes bounds the POST /graphs request body (the graphio
// field carries whole edge lists).
const maxGraphSpecBytes = 64 << 20

// retryAfter is the Retry-After value (seconds) sent with 429 and
// not-ready 503 responses.
const retryAfter = "1"

// BatchRequest is the /batch request body. Staleness, when set, is the
// batch-level default applied to every query that does not set its own
// (per-query values win; see StalenessStrict / StalenessBounded).
type BatchRequest struct {
	Queries   []Query `json:"queries"`
	Staleness string  `json:"staleness,omitempty"`
}

// BatchResponse is the /batch response body.
type BatchResponse struct {
	Results []Result `json:"results"`
	Count   int      `json:"count"`
}

// UpdateRequest is the /update request body: edge pairs to add and remove
// (adds apply before removes) and whether to block until the batch is part
// of the published snapshot.
type UpdateRequest struct {
	Add    [][2]int32 `json:"add,omitempty"`
	Remove [][2]int32 `json:"remove,omitempty"`
	Wait   bool       `json:"wait,omitempty"`
}

// UpdateResponse is the /update response body (a JSON view of
// UpdateStatus).
type UpdateResponse struct {
	Seq     int64 `json:"seq"`
	Epoch   int64 `json:"epoch"`
	Pending int   `json:"pending"`
	Applied bool  `json:"applied"`
}

// GraphListResponse is the GET /graphs response body.
type GraphListResponse struct {
	Graphs  []GraphStatus `json:"graphs"`
	Default string        `json:"default,omitempty"`
}

// Info is the /info response body: the engine's configuration plus the
// current snapshot's shape and build costs (stable within an epoch), and
// the binary's build identity so scraped metrics can be correlated with the
// exact build.
type Info struct {
	GraphN        int      `json:"graph_n"`
	GraphM        int      `json:"graph_m"`
	Omega         int      `json:"omega"`
	K             int      `json:"k"`
	Workers       int      `json:"workers"`
	NumComponents int      `json:"num_components"`
	NumBCC        int      `json:"num_bcc"`
	Epoch         int64    `json:"epoch"`
	Kinds         []Kind   `json:"kinds"`
	BuildConn     CostJSON `json:"build_conn"`
	BuildBicc     CostJSON `json:"build_bicc"`
	// OracleEpochs maps each oracle to the epoch its built state corresponds
	// to: Epoch when fresh, lagging while its rebuild is deferred, -1 when
	// it has never been built (a recovered graph before the first
	// biconnectivity query, for example).
	OracleEpochs map[string]int64    `json:"oracle_epochs,omitempty"`
	BuildCosts   map[string]CostJSON `json:"build_costs"`
	Build        obs.BuildInfo       `json:"build"`
}

// CostJSON is an asym.Cost with the derived work made explicit for JSON
// consumers (asym.Cost computes Work() as a method, which encoding/json
// cannot see).
type CostJSON struct {
	Omega  int   `json:"omega"`
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Ops    int64 `json:"ops"`
	Work   int64 `json:"work"`
}

// AdmissionJSON mirrors AdmissionStats with the queue wait in
// milliseconds.
type AdmissionJSON struct {
	MaxInflight int     `json:"max_inflight"`
	Inflight    int64   `json:"inflight"`
	Rejected    int64   `json:"rejected"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
}

// PoolJSON mirrors PoolStats with the queue wait in milliseconds.
type PoolJSON struct {
	Size        int     `json:"size"`
	InUse       int64   `json:"in_use"`
	PeakInUse   int64   `json:"peak_in_use"`
	Tasks       int64   `json:"tasks"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
}

// StatsJSON mirrors Stats with CostJSON leaves.
//
// Duration units: every duration field in the /stats document — the
// admission and pool queue_wait_ms, and rebuild duration_ms — is in
// MILLISECONDS, flagged by the _ms suffix. The same quantities exported
// as histograms on GET /metrics (wec_pool_queue_wait_seconds,
// wec_rebuild_duration_seconds) are in SECONDS, per Prometheus base-unit
// convention. docs/observability.md carries the field-by-field mapping.
type StatsJSON struct {
	GraphN        int                      `json:"graph_n"`
	GraphM        int                      `json:"graph_m"`
	Omega         int                      `json:"omega"`
	K             int                      `json:"k"`
	Workers       int                      `json:"workers"`
	NumComponents int                      `json:"num_components"`
	NumBCC        int                      `json:"num_bcc"`
	BuildConn     CostJSON                 `json:"build_conn"`
	BuildBicc     CostJSON                 `json:"build_bicc"`
	BuildCosts    map[string]CostJSON      `json:"build_costs"`
	Queries       map[string]KindStatsJSON `json:"queries"`
	TotalQueries  int64                    `json:"total_queries"`

	Admission AdmissionJSON `json:"admission"`
	Pool      PoolJSON      `json:"pool"`

	ResultCache  ResultCacheStats `json:"result_cache"`
	ClusterCache CacheStats       `json:"cluster_cache"`

	Epoch               int64                       `json:"epoch"`
	OracleEpochs        map[string]int64            `json:"oracle_epochs,omitempty"`
	RebuildsAvoided     int64                       `json:"rebuilds_avoided"`
	LazyRebuilds        int64                       `json:"lazy_rebuilds"`
	PendingUpdates      int                         `json:"pending_updates"`
	TotalRebuilds       int64                       `json:"total_rebuilds"`
	IncrementalRebuilds int64                       `json:"incremental_rebuilds"`
	Strategies          map[string]map[string]int64 `json:"strategies,omitempty"`
	ConnChainDepth      int                         `json:"conn_chain_depth"`
	EdgesAdded          int64                       `json:"edges_added"`
	EdgesRemoved        int64                       `json:"edges_removed"`
	Rebuilds            []RebuildRecordJSON         `json:"rebuilds,omitempty"`
}

// RebuildRecordJSON mirrors RebuildRecord with CostJSON leaves and the
// duration in milliseconds.
type RebuildRecordJSON struct {
	Epoch        int64               `json:"epoch"`
	Strategy     string              `json:"strategy"`
	Strategies   map[string]string   `json:"strategies,omitempty"`
	Batches      int                 `json:"batches"`
	AddedEdges   int                 `json:"added_edges"`
	RemovedEdges int                 `json:"removed_edges"`
	GraphCost    CostJSON            `json:"graph_cost"`
	ConnCost     CostJSON            `json:"conn_cost"`
	BiccCost     CostJSON            `json:"bicc_cost"`
	OracleCosts  map[string]CostJSON `json:"oracle_costs,omitempty"`
	DurationMs   float64             `json:"duration_ms"`
	Err          string              `json:"error,omitempty"`
}

// KindStatsJSON mirrors KindStats with a CostJSON leaf.
type KindStatsJSON struct {
	Count  int64    `json:"count"`
	Errors int64    `json:"errors"`
	Cost   CostJSON `json:"cost"`
}

func costJSON(c asym.Cost) CostJSON {
	return CostJSON{Omega: c.Omega, Reads: c.Reads, Writes: c.Writes, Ops: c.Ops, Work: c.Work()}
}

func costsJSON(m map[string]asym.Cost) map[string]CostJSON {
	if m == nil {
		return nil
	}
	out := make(map[string]CostJSON, len(m))
	for name, c := range m {
		out[name] = costJSON(c)
	}
	return out
}

// NewServer returns the HTTP handler serving a single engine: the engine
// is attached as the default graph of a fresh registry, so the un-prefixed
// endpoints behave exactly as before the multi-graph refactor and the
// /graphs endpoints report it. Graph *creation* stays disabled (quota 1 =
// the wrapped engine): a single-engine surface must not silently grow an
// open build API — embedders who want multi-tenancy mount
// NewRegistryServer(NewRegistry(...)) instead. The caller keeps ownership
// of e's lifecycle.
func NewServer(e *Engine) http.Handler {
	reg := NewRegistry(RegistryConfig{
		Engine:      Config{Omega: e.omega, K: e.k, Seed: e.seed, Workers: e.workers, SymLimit: e.sym},
		Pool:        e.Pool(),
		MaxInflight: int(e.maxInflight),
		MaxGraphs:   1,
		// Serve the wrapped engine's own registry at /metrics — its series
		// were registered there when the caller built it.
		Metrics: e.MetricsRegistry(),
	})
	if err := reg.Attach("default", e); err != nil {
		panic(err) // fresh registry: unreachable
	}
	return NewRegistryServer(reg)
}

// resolver locates the engine a request addresses.
type resolver func(r *http.Request) (*Engine, error)

// NewRegistryServer returns the HTTP handler serving every graph in reg.
// Method-qualified mux patterns give wrong-method requests a 405 with an
// Allow header for free.
func NewRegistryServer(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	def := func(*http.Request) (*Engine, error) { return reg.Default() }
	named := func(r *http.Request) (*Engine, error) { return reg.Get(r.PathValue("name")) }

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st, ok := reg.Status(reg.DefaultName())
		if ok && st.State == StateReady {
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
			return
		}
		state := "no graphs"
		if ok {
			state = string(st.State)
		}
		// Retry-After only for transient states; a failed build is
		// terminal until the graph is deleted, so no retry hint (same
		// rule as resolveEngine).
		if !ok || st.State == StateBuilding {
			w.Header().Set("Retry-After", retryAfter)
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false, "state": state})
	})

	// Observability: the fleet's metric registry and slow-request ring.
	mux.Handle("GET /metrics", reg.Metrics().Handler())
	mux.Handle("GET /debug/traces", reg.Tracer().Handler())

	// Single-graph endpoints, twice: un-prefixed against the default graph
	// and under /graphs/{name}/ against any graph. The nameOf funcs label
	// request traces without resolving the engine twice.
	routes := []struct {
		prefix  string
		resolve resolver
		nameOf  func(*http.Request) string
	}{
		{"", def, func(*http.Request) string { return reg.DefaultName() }},
		{"/graphs/{name}", named, func(r *http.Request) string { return r.PathValue("name") }},
	}
	for _, rt := range routes {
		mux.HandleFunc("GET "+rt.prefix+"/info", handleInfo(rt.resolve))
		mux.HandleFunc("GET "+rt.prefix+"/stats", handleStats(rt.resolve))
		mux.HandleFunc("POST "+rt.prefix+"/query", handleQuery(reg.tracer, rt.resolve, rt.nameOf))
		mux.HandleFunc("POST "+rt.prefix+"/batch", handleBatch(reg.tracer, rt.resolve, rt.nameOf))
		mux.HandleFunc("POST "+rt.prefix+"/update", handleUpdate(reg.tracer, rt.resolve, rt.nameOf))
	}

	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, GraphListResponse{Graphs: reg.List(), Default: reg.DefaultName()})
	})
	mux.HandleFunc("POST /graphs", func(w http.ResponseWriter, r *http.Request) {
		// Quota check before the (potentially 64 MB) body decode: a full
		// registry rejects every create, so shed it without paying for
		// the parse.
		if reg.AtQuota() {
			w.Header().Set("Retry-After", retryAfter)
			httpError(w, http.StatusTooManyRequests, "%v", ErrTooManyGraphs)
			return
		}
		var spec GraphSpec
		if _, err := decodeBody(w, r, maxGraphSpecBytes, &spec); err != nil {
			return
		}
		st, err := reg.Create(spec)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrGraphExists):
				status = http.StatusConflict
			case errors.Is(err, ErrTooManyGraphs):
				status = http.StatusTooManyRequests
				w.Header().Set("Retry-After", retryAfter)
			}
			httpError(w, status, "%v", err)
			return
		}
		code := http.StatusAccepted // building in the background
		switch st.State {
		case StateReady:
			code = http.StatusCreated
		case StateFailed:
			code = http.StatusUnprocessableEntity
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := reg.Status(r.PathValue("name"))
		if !ok {
			httpError(w, http.StatusNotFound, "graph %q not found", r.PathValue("name"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		switch err := reg.Delete(name); {
		case err == nil:
			writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
		case errors.Is(err, ErrDefaultGraph):
			httpError(w, http.StatusConflict, "%v", err)
		case errors.Is(err, ErrGraphNotFound):
			httpError(w, http.StatusNotFound, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
	})
	return mux
}

// resolveEngine runs the resolver and writes the lifecycle error response
// when the engine is unavailable: 404 for an unknown graph, 503 +
// Retry-After while building (transient), and a plain 503 for a failed
// build — terminal until the graph is deleted, so no retry hint.
func resolveEngine(w http.ResponseWriter, r *http.Request, resolve resolver) (*Engine, bool) {
	e, err := resolve(r)
	if err == nil {
		return e, true
	}
	if errors.Is(err, ErrGraphNotFound) {
		httpError(w, http.StatusNotFound, "%v", err)
		return nil, false
	}
	if errors.Is(err, ErrGraphNotReady) {
		w.Header().Set("Retry-After", retryAfter)
	}
	httpError(w, http.StatusServiceUnavailable, "%v", err)
	return nil, false
}

// admit reserves an in-flight slot on e, writing the 429 + Retry-After
// response on rejection. The returned release must be called when the
// request finishes.
func admit(w http.ResponseWriter, e *Engine) (func(), bool) {
	release, err := e.Admit()
	if err != nil {
		w.Header().Set("Retry-After", retryAfter)
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return nil, false
	}
	return release, true
}

func handleInfo(resolve resolver) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := resolveEngine(w, r, resolve)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, infoOf(e))
	}
}

func handleStats(resolve resolver) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := resolveEngine(w, r, resolve)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, statsJSON(e.Stats()))
	}
}

// Traced request handlers. Each builds an obs.Req (nil-safe; Finish hands
// it to the tracer only when the request is slow enough to capture) with a
// span per phase. The span order is the handlers' actual order — admission
// deliberately comes BEFORE the body decode, so a shed request costs O(1)
// rather than a full decode; docs/observability.md has the glossary.

func handleQuery(tr *obs.Tracer, resolve resolver, nameOf func(*http.Request) string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := resolveEngine(w, r, resolve)
		if !ok {
			return
		}
		treq := tr.Start(nameOf(r), "query")
		// Admission comes before the body decode: a shed request must cost
		// O(1), not a full decode (the same rationale as the byte limits).
		release, ok := admit(w, e)
		treq.Phase("admit")
		if !ok {
			treq.Finish(http.StatusTooManyRequests)
			return
		}
		defer release()
		var q Query
		status, err := decodeBody(w, r, maxQueryBytes, &q)
		treq.Phase("decode")
		if err != nil {
			treq.Finish(status)
			return
		}
		res := e.Query(q)
		treq.Phase("answer")
		status = http.StatusOK
		if res.Err != "" {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, res)
		treq.Phase("encode")
		treq.Finish(status)
	}
}

func handleBatch(tr *obs.Tracer, resolve resolver, nameOf func(*http.Request) string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := resolveEngine(w, r, resolve)
		if !ok {
			return
		}
		treq := tr.Start(nameOf(r), "batch")
		release, ok := admit(w, e)
		treq.Phase("admit")
		if !ok {
			treq.Finish(http.StatusTooManyRequests)
			return
		}
		defer release()
		var req BatchRequest
		status, err := decodeBody(w, r, maxBatchBytes, &req)
		treq.Phase("decode")
		if err != nil {
			treq.Finish(status)
			return
		}
		if len(req.Queries) > MaxBatch {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch of %d exceeds limit %d", len(req.Queries), MaxBatch)
			treq.Finish(http.StatusRequestEntityTooLarge)
			return
		}
		if req.Staleness != "" {
			// The batch-level default fills only unset queries, so a mixed
			// batch can still pin individual queries to strict. An invalid
			// value is rejected per-query by dispatch, like any other.
			for i := range req.Queries {
				if req.Queries[i].Staleness == "" {
					req.Queries[i].Staleness = req.Staleness
				}
			}
		}
		treq.SetDetail(fmt.Sprintf("queries=%d", len(req.Queries)))
		// DoWait reports how much of the dispatch interval was pool queue
		// wait, splitting it into the pool_queue and answer spans.
		off := treq.Elapsed()
		results, wait := e.DoWait(req.Queries)
		dur := treq.Elapsed() - off
		treq.Add("pool_queue", off, wait)
		treq.Add("answer", off+wait, dur-wait)
		writeJSON(w, http.StatusOK, BatchResponse{Results: results, Count: len(results)})
		treq.Phase("encode")
		treq.Finish(http.StatusOK)
	}
}

func handleUpdate(tr *obs.Tracer, resolve resolver, nameOf func(*http.Request) string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := resolveEngine(w, r, resolve)
		if !ok {
			return
		}
		treq := tr.Start(nameOf(r), "update")
		// Updates go through the same per-graph admission as queries: the
		// in-flight count is what Registry.Delete's drain waits on, and a
		// capped graph must shed update bursts too (a wait=true update can
		// hold its slot until the rebuild publishes — that is the point).
		release, ok := admit(w, e)
		treq.Phase("admit")
		if !ok {
			treq.Finish(http.StatusTooManyRequests)
			return
		}
		defer release()
		var req UpdateRequest
		status, err := decodeBody(w, r, maxUpdateBytes, &req)
		treq.Phase("decode")
		if err != nil {
			treq.Finish(status)
			return
		}
		if len(req.Add)+len(req.Remove) > MaxUpdateEdges {
			httpError(w, http.StatusRequestEntityTooLarge,
				"update of %d edges exceeds limit %d", len(req.Add)+len(req.Remove), MaxUpdateEdges)
			treq.Finish(http.StatusRequestEntityTooLarge)
			return
		}
		treq.SetDetail(fmt.Sprintf("add=%d remove=%d wait=%t", len(req.Add), len(req.Remove), req.Wait))
		st, uerr := e.Update(Update{Add: req.Add, Remove: req.Remove}, req.Wait)
		treq.Phase("update")
		if uerr != nil {
			// 400 is reserved for requests the client got wrong (bad
			// vertices, absent removals). A server-side failure — the
			// engine closing, the rebuild of a valid batch failing, the
			// durable log rejecting the append — is 5xx.
			status = http.StatusBadRequest
			switch {
			case errors.Is(uerr, ErrClosed):
				status = http.StatusServiceUnavailable
			case errors.Is(uerr, ErrRebuildFailed), errors.Is(uerr, ErrPersist):
				status = http.StatusInternalServerError
			}
			httpError(w, status, "%v", uerr)
			treq.Finish(status)
			return
		}
		writeJSON(w, http.StatusOK, UpdateResponse{
			Seq: st.Seq, Epoch: st.Epoch, Pending: st.Pending, Applied: st.Applied,
		})
		treq.Phase("encode")
		treq.Finish(http.StatusOK)
	}
}

// infoOf reads everything from the immutable snapshot — no engine lock, no
// history copies — so /info polls never contend with update staging.
func infoOf(e *Engine) Info {
	sn := e.snap.Load()
	info := Info{
		GraphN:       sn.g.N(),
		GraphM:       sn.g.M(),
		Omega:        e.omega,
		K:            e.k,
		Workers:      e.workers,
		Epoch:        sn.epoch,
		Kinds:        e.Kinds(),
		BuildConn:    costJSON(e.costByName(sn, "conn")),
		BuildBicc:    costJSON(e.costByName(sn, "bicc")),
		OracleEpochs: e.oracleEpochs(sn),
		BuildCosts:   costsJSON(e.buildCosts(sn)),
	}
	info.NumComponents, info.NumBCC = sn.counts()
	info.Build = obs.Build()
	return info
}

func statsJSON(s Stats) StatsJSON {
	out := StatsJSON{
		GraphN:        s.GraphN,
		GraphM:        s.GraphM,
		Omega:         s.Omega,
		K:             s.K,
		Workers:       s.Workers,
		NumComponents: s.NumComponents,
		NumBCC:        s.NumBCC,
		BuildConn:     costJSON(s.BuildConn),
		BuildBicc:     costJSON(s.BuildBicc),
		BuildCosts:    costsJSON(s.BuildCosts),
		Queries:       make(map[string]KindStatsJSON, len(s.Queries)),
		TotalQueries:  s.TotalQueries,
	}
	for k, ks := range s.Queries {
		out.Queries[k] = KindStatsJSON{
			Count:  ks.Count,
			Errors: ks.Errors,
			Cost:   costJSON(ks.Cost),
		}
	}
	out.Admission = AdmissionJSON{
		MaxInflight: s.Admission.MaxInflight,
		Inflight:    s.Admission.Inflight,
		Rejected:    s.Admission.Rejected,
		QueueWaitMs: float64(s.Admission.QueueWait.Microseconds()) / 1000,
	}
	out.Pool = PoolJSON{
		Size:        s.Pool.Size,
		InUse:       s.Pool.InUse,
		PeakInUse:   s.Pool.PeakInUse,
		Tasks:       s.Pool.Tasks,
		QueueWaitMs: float64(s.Pool.QueueWait.Microseconds()) / 1000,
	}
	out.ResultCache = s.ResultCache
	out.ClusterCache = s.ClusterCache
	out.Epoch = s.Epoch
	out.OracleEpochs = s.OracleEpochs
	out.RebuildsAvoided = s.RebuildsAvoided
	out.LazyRebuilds = s.LazyRebuilds
	out.PendingUpdates = s.PendingUpdates
	out.TotalRebuilds = s.TotalRebuilds
	out.IncrementalRebuilds = s.IncrementalRebuilds
	out.Strategies = s.Strategies
	out.ConnChainDepth = s.ConnChainDepth
	out.EdgesAdded = s.EdgesAdded
	out.EdgesRemoved = s.EdgesRemoved
	for _, r := range s.Rebuilds {
		out.Rebuilds = append(out.Rebuilds, RebuildRecordJSON{
			Epoch:        r.Epoch,
			Strategy:     r.Strategy,
			Strategies:   r.Strategies,
			Batches:      r.Batches,
			AddedEdges:   r.AddedEdges,
			RemovedEdges: r.RemovedEdges,
			GraphCost:    costJSON(r.GraphCost),
			ConnCost:     costJSON(r.ConnCost),
			BiccCost:     costJSON(r.BiccCost),
			OracleCosts:  costsJSON(r.OracleCosts),
			DurationMs:   float64(r.Duration.Microseconds()) / 1000,
			Err:          r.Err,
		})
	}
	return out
}

// decodeBody decodes a JSON request body into out, enforcing the byte limit
// before any allocation proportional to the body happens. On failure it has
// already written the error response — 413 when the limit tripped, 400
// otherwise — and returns the status it wrote (0 on success) so traced
// handlers can finish their trace with the real outcome.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, out any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, limit)
	err := json.NewDecoder(body).Decode(out)
	if err == nil {
		return 0, nil
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", limit)
		return http.StatusRequestEntityTooLarge, err
	}
	httpError(w, http.StatusBadRequest, "bad request body: %v", err)
	return http.StatusBadRequest, err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
