package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/asym"
)

// This file is the HTTP/JSON surface over Engine, mounted by cmd/oracled
// and by the httptest round-trips in http_test.go:
//
//	POST /query   {"kind":"connected","u":0,"v":5}      -> Result
//	POST /batch   {"queries":[Query,...]}                -> {"results":[Result,...],"count":N}
//	POST /update  {"add":[[0,5],...],"remove":[[1,2],...],"wait":true} -> UpdateResponse
//	GET  /stats                                          -> Stats (incl. epoch + rebuild telemetry)
//	GET  /info                                           -> per-snapshot build/graph info
//	GET  /healthz                                        -> {"ok":true}
//
// Batch requests are capped at MaxBatch queries so a single request cannot
// hold a worker set for an unbounded time; load generators split larger
// workloads into multiple requests (cmd/wecbench -exp serve does). The cap
// is enforced before decoding via a MaxBytesReader on the request body —
// rejecting an oversized batch must not itself cost an oversized decode.
// Update requests are capped the same way at MaxUpdateEdges edges.

// MaxBatch bounds the number of queries accepted by one /batch request.
const MaxBatch = 1 << 20

// MaxUpdateEdges bounds the total edges (add + remove) in one /update
// request; larger churn is split into multiple batches, which the engine
// coalesces into one rebuild anyway.
const MaxUpdateEdges = 1 << 18

// maxUpdateBytes bounds the /update request body. 32 bytes per edge covers
// the encoded pair ("[2147483647,2147483647],") with room for the wrapper.
const maxUpdateBytes = MaxUpdateEdges * 32

// maxBatchBytes bounds the /batch request body. 64 bytes comfortably covers
// one encoded query ({"kind":"articulation","u":2147483647,"v":...} plus
// separators), so the limit is never the binding constraint for a legal
// MaxBatch-sized batch.
const maxBatchBytes = MaxBatch * 64

// maxQueryBytes bounds the /query request body.
const maxQueryBytes = 1 << 12

// BatchRequest is the /batch request body.
type BatchRequest struct {
	Queries []Query `json:"queries"`
}

// BatchResponse is the /batch response body.
type BatchResponse struct {
	Results []Result `json:"results"`
	Count   int      `json:"count"`
}

// UpdateRequest is the /update request body: edge pairs to add and remove
// (adds apply before removes) and whether to block until the batch is part
// of the published snapshot.
type UpdateRequest struct {
	Add    [][2]int32 `json:"add,omitempty"`
	Remove [][2]int32 `json:"remove,omitempty"`
	Wait   bool       `json:"wait,omitempty"`
}

// UpdateResponse is the /update response body (a JSON view of
// UpdateStatus).
type UpdateResponse struct {
	Seq     int64 `json:"seq"`
	Epoch   int64 `json:"epoch"`
	Pending int   `json:"pending"`
	Applied bool  `json:"applied"`
}

// Info is the /info response body: the engine's configuration plus the
// current snapshot's shape and build costs (stable within an epoch).
type Info struct {
	GraphN        int      `json:"graph_n"`
	GraphM        int      `json:"graph_m"`
	Omega         int      `json:"omega"`
	K             int      `json:"k"`
	Workers       int      `json:"workers"`
	NumComponents int      `json:"num_components"`
	NumBCC        int      `json:"num_bcc"`
	Epoch         int64    `json:"epoch"`
	Kinds         []Kind   `json:"kinds"`
	BuildConn     CostJSON `json:"build_conn"`
	BuildBicc     CostJSON `json:"build_bicc"`
}

// CostJSON is an asym.Cost with the derived work made explicit for JSON
// consumers (asym.Cost computes Work() as a method, which encoding/json
// cannot see).
type CostJSON struct {
	Omega  int   `json:"omega"`
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Ops    int64 `json:"ops"`
	Work   int64 `json:"work"`
}

// StatsJSON mirrors Stats with CostJSON leaves.
type StatsJSON struct {
	GraphN        int                      `json:"graph_n"`
	GraphM        int                      `json:"graph_m"`
	Omega         int                      `json:"omega"`
	K             int                      `json:"k"`
	Workers       int                      `json:"workers"`
	NumComponents int                      `json:"num_components"`
	NumBCC        int                      `json:"num_bcc"`
	BuildConn     CostJSON                 `json:"build_conn"`
	BuildBicc     CostJSON                 `json:"build_bicc"`
	Queries       map[string]KindStatsJSON `json:"queries"`
	TotalQueries  int64                    `json:"total_queries"`

	Epoch               int64               `json:"epoch"`
	PendingUpdates      int                 `json:"pending_updates"`
	TotalRebuilds       int64               `json:"total_rebuilds"`
	IncrementalRebuilds int64               `json:"incremental_rebuilds"`
	EdgesAdded          int64               `json:"edges_added"`
	EdgesRemoved        int64               `json:"edges_removed"`
	Rebuilds            []RebuildRecordJSON `json:"rebuilds,omitempty"`
}

// RebuildRecordJSON mirrors RebuildRecord with CostJSON leaves and the
// duration in milliseconds.
type RebuildRecordJSON struct {
	Epoch        int64    `json:"epoch"`
	Strategy     string   `json:"strategy"`
	Batches      int      `json:"batches"`
	AddedEdges   int      `json:"added_edges"`
	RemovedEdges int      `json:"removed_edges"`
	GraphCost    CostJSON `json:"graph_cost"`
	ConnCost     CostJSON `json:"conn_cost"`
	BiccCost     CostJSON `json:"bicc_cost"`
	DurationMs   float64  `json:"duration_ms"`
	Err          string   `json:"error,omitempty"`
}

// KindStatsJSON mirrors KindStats with a CostJSON leaf.
type KindStatsJSON struct {
	Count  int64    `json:"count"`
	Errors int64    `json:"errors"`
	Cost   CostJSON `json:"cost"`
}

func costJSON(c asym.Cost) CostJSON {
	return CostJSON{Omega: c.Omega, Reads: c.Reads, Writes: c.Writes, Ops: c.Ops, Work: c.Work()}
}

// NewServer returns the HTTP handler serving e.
func NewServer(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, infoOf(e))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, statsJSON(e.Stats()))
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var q Query
		if err := decodeBody(w, r, maxQueryBytes, &q); err != nil {
			return
		}
		res := e.Query(q)
		status := http.StatusOK
		if res.Err != "" {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, res)
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req BatchRequest
		if err := decodeBody(w, r, maxBatchBytes, &req); err != nil {
			return
		}
		if len(req.Queries) > MaxBatch {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch of %d exceeds limit %d", len(req.Queries), MaxBatch)
			return
		}
		results := e.Do(req.Queries)
		writeJSON(w, http.StatusOK, BatchResponse{Results: results, Count: len(results)})
	})
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req UpdateRequest
		if err := decodeBody(w, r, maxUpdateBytes, &req); err != nil {
			return
		}
		if len(req.Add)+len(req.Remove) > MaxUpdateEdges {
			httpError(w, http.StatusRequestEntityTooLarge,
				"update of %d edges exceeds limit %d", len(req.Add)+len(req.Remove), MaxUpdateEdges)
			return
		}
		st, err := e.Update(Update{Add: req.Add, Remove: req.Remove}, req.Wait)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, UpdateResponse{
			Seq: st.Seq, Epoch: st.Epoch, Pending: st.Pending, Applied: st.Applied,
		})
	})
	return mux
}

func infoOf(e *Engine) Info {
	sn := e.snap.Load()
	return Info{
		GraphN:        sn.g.N(),
		GraphM:        sn.g.M(),
		Omega:         e.omega,
		K:             e.k,
		Workers:       e.workers,
		NumComponents: sn.conn.NumComponents,
		NumBCC:        sn.bicc.NumBCC,
		Epoch:         sn.epoch,
		Kinds:         Kinds,
		BuildConn:     costJSON(sn.buildConn),
		BuildBicc:     costJSON(sn.buildBicc),
	}
}

func statsJSON(s Stats) StatsJSON {
	out := StatsJSON{
		GraphN:        s.GraphN,
		GraphM:        s.GraphM,
		Omega:         s.Omega,
		K:             s.K,
		Workers:       s.Workers,
		NumComponents: s.NumComponents,
		NumBCC:        s.NumBCC,
		BuildConn:     costJSON(s.BuildConn),
		BuildBicc:     costJSON(s.BuildBicc),
		Queries:       make(map[string]KindStatsJSON, len(s.Queries)),
		TotalQueries:  s.TotalQueries,
	}
	for k, ks := range s.Queries {
		out.Queries[k] = KindStatsJSON{
			Count:  ks.Count,
			Errors: ks.Errors,
			Cost:   costJSON(ks.Cost),
		}
	}
	out.Epoch = s.Epoch
	out.PendingUpdates = s.PendingUpdates
	out.TotalRebuilds = s.TotalRebuilds
	out.IncrementalRebuilds = s.IncrementalRebuilds
	out.EdgesAdded = s.EdgesAdded
	out.EdgesRemoved = s.EdgesRemoved
	for _, r := range s.Rebuilds {
		out.Rebuilds = append(out.Rebuilds, RebuildRecordJSON{
			Epoch:        r.Epoch,
			Strategy:     r.Strategy,
			Batches:      r.Batches,
			AddedEdges:   r.AddedEdges,
			RemovedEdges: r.RemovedEdges,
			GraphCost:    costJSON(r.GraphCost),
			ConnCost:     costJSON(r.ConnCost),
			BiccCost:     costJSON(r.BiccCost),
			DurationMs:   float64(r.Duration.Microseconds()) / 1000,
			Err:          r.Err,
		})
	}
	return out
}

// decodeBody decodes a JSON request body into out, enforcing the byte limit
// before any allocation proportional to the body happens. On failure it has
// already written the error response: 413 when the limit tripped, 400
// otherwise.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, out any) error {
	body := http.MaxBytesReader(w, r.Body, limit)
	err := json.NewDecoder(body).Decode(out)
	if err == nil {
		return nil
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", limit)
	} else {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	return err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
