package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// newMetricsTestServer starts a registry server with one ready graph named
// "default" and returns the registry plus the test server.
func newMetricsTestServer(t *testing.T, cfg RegistryConfig) (*Registry, *httptest.Server) {
	t.Helper()
	if cfg.Engine.Omega == 0 {
		cfg.Engine = Config{Omega: 16, Seed: 5}
	}
	reg := NewRegistry(cfg)
	t.Cleanup(reg.Close)
	if _, err := reg.Create(GraphSpec{Name: "default", N: 64, Deg: 3, Wait: true}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryServer(reg))
	t.Cleanup(ts.Close)
	return reg, ts
}

func scrape(t *testing.T, base string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Fatalf("GET /metrics Content-Type %q, want %q", ct, obs.ExpositionContentType)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition unparseable: %v", err)
	}
	return exp
}

// TestMetricsEndpointFamiliesAndHygiene drives traffic through every
// instrumented path, then asserts GET /metrics parses, every registered
// family is present, and label cardinality stays bounded: every label
// value comes from a fixed vocabulary (graph names, query kinds, rebuild
// strategies, cache layers, bucket bounds) — never per-request data like
// vertex ids.
func TestMetricsEndpointFamiliesAndHygiene(t *testing.T) {
	_, ts := newMetricsTestServer(t, RegistryConfig{})

	for _, kind := range []string{"connected", "component", "bridge", "articulation", "biconnected"} {
		body := fmt.Sprintf(`{"kind":%q,"u":1,"v":2}`, kind)
		if code := postJSON(t, ts.URL+"/query", json.RawMessage(body), nil); code != http.StatusOK {
			t.Fatalf("query %s: %d", kind, code)
		}
	}
	if code := postJSON(t, ts.URL+"/batch",
		json.RawMessage(`{"queries":[{"kind":"connected","u":0,"v":1},{"kind":"component","u":3}]}`), nil); code != http.StatusOK {
		t.Fatalf("batch: %d", code)
	}
	if code := postJSON(t, ts.URL+"/update",
		json.RawMessage(`{"add":[[0,5],[1,9]],"wait":true}`), nil); code != http.StatusOK {
		t.Fatalf("update: %d", code)
	}

	exp := scrape(t, ts.URL)
	for _, fam := range []string{
		"wec_query_duration_seconds", "wec_queries_total", "wec_query_errors_total",
		"wec_batch_size_queries", "wec_pool_queue_wait_seconds",
		"wec_admission_rejected_total", "wec_admission_inflight",
		"wec_rebuild_duration_seconds", "wec_rebuild_failures_total",
		"wec_rebuilds_avoided_total", "wec_lazy_rebuilds_total",
		"wec_published_epoch", "wec_oracle_epoch", "wec_pending_batches",
		"wec_edges_added_total", "wec_edges_removed_total",
		"wec_cache_hits_total", "wec_cache_misses_total", "wec_cache_evictions_total",
		"wec_pool_size", "wec_pool_in_use", "wec_pool_tasks_total", "wec_graphs",
	} {
		if !exp.HasFamily(fam) {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}

	// The update published epoch 1 through one of the ladder strategies.
	var rebuilds float64
	for _, s := range exp.Samples {
		if s.Name == "wec_rebuild_duration_seconds_count" {
			rebuilds += s.Value
		}
	}
	if rebuilds < 1 {
		t.Errorf("no rebuild observed in wec_rebuild_duration_seconds after update")
	}

	allowed := map[string]map[string]bool{
		"graph": {"default": true},
		"kind": {"connected": true, "component": true, "bridge": true,
			"articulation": true, "biconnected": true, "2ecc": true},
		"strategy": {StrategyPatchedInsert: true, StrategyPatchedDelete: true,
			StrategyRebased: true, StrategyFull: true, StrategyLazy: true},
		"oracle": {"conn": true, "bicc": true},
		"cache":  {"result": true, "cluster": true, "batch_dedup": true},
	}
	for _, s := range exp.Samples {
		for k, v := range s.Labels {
			if k == "le" {
				if v != "+Inf" {
					if _, err := strconv.ParseFloat(v, 64); err != nil {
						t.Errorf("%s: non-numeric le %q", s.Name, v)
					}
				}
				continue
			}
			vocab, ok := allowed[k]
			if !ok {
				t.Errorf("%s: unexpected label key %q", s.Name, k)
				continue
			}
			if !vocab[v] {
				t.Errorf("%s: label %s=%q outside the bounded vocabulary", s.Name, k, v)
			}
		}
	}
}

// TestMetricsDeletedGraphRetired asserts a deleted graph's series leave
// the exposition: a scrape after DELETE must not report the ghost.
func TestMetricsDeletedGraphRetired(t *testing.T) {
	reg, ts := newMetricsTestServer(t, RegistryConfig{})
	if _, err := reg.Create(GraphSpec{Name: "temp", N: 64, Deg: 3, Wait: true}); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts.URL+"/graphs/temp/query",
		json.RawMessage(`{"kind":"connected","u":0,"v":1}`), nil); code != http.StatusOK {
		t.Fatalf("query temp: %d", code)
	}
	if !hasGraphLabel(scrape(t, ts.URL), "temp") {
		t.Fatal("created graph temp has no series before delete")
	}
	if err := reg.Delete("temp"); err != nil {
		t.Fatal(err)
	}
	if hasGraphLabel(scrape(t, ts.URL), "temp") {
		t.Error("deleted graph temp still has series in /metrics")
	}
}

func hasGraphLabel(exp *obs.Exposition, name string) bool {
	for _, s := range exp.Samples {
		if s.Labels["graph"] == name {
			return true
		}
	}
	return false
}

// TestDebugTracesCaptureAboveThreshold runs with SlowQuery < 0 (capture
// all): every request must land in /debug/traces with its phase spans.
func TestDebugTracesCaptureAboveThreshold(t *testing.T) {
	_, ts := newMetricsTestServer(t, RegistryConfig{SlowQuery: -1})
	if code := postJSON(t, ts.URL+"/query",
		json.RawMessage(`{"kind":"connected","u":0,"v":1}`), nil); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if code := postJSON(t, ts.URL+"/batch",
		json.RawMessage(`{"queries":[{"kind":"component","u":3}]}`), nil); code != http.StatusOK {
		t.Fatalf("batch: %d", code)
	}

	page := tracesPage(t, ts.URL)
	if page.Captured != 2 || len(page.Traces) != 2 {
		t.Fatalf("captured=%d traces=%d, want 2/2", page.Captured, len(page.Traces))
	}
	byOp := map[string]obs.Trace{}
	for _, tr := range page.Traces {
		byOp[tr.Op] = tr
	}
	q, ok := byOp["query"]
	if !ok || q.Graph != "default" || q.Status != http.StatusOK {
		t.Fatalf("query trace missing or wrong: %+v", byOp)
	}
	spans := map[string]bool{}
	for _, sp := range q.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"admit", "decode", "answer", "encode"} {
		if !spans[want] {
			t.Errorf("query trace missing span %q (got %v)", want, q.Spans)
		}
	}
	b, ok := byOp["batch"]
	if !ok || !strings.Contains(b.Detail, "queries=1") {
		t.Errorf("batch trace missing or without batch-size detail: %+v", b)
	}
	bspans := map[string]bool{}
	for _, sp := range b.Spans {
		bspans[sp.Name] = true
	}
	if !bspans["pool_queue"] || !bspans["answer"] {
		t.Errorf("batch trace missing pool_queue/answer split: %v", b.Spans)
	}
}

// TestDebugTracesSkipBelowThreshold runs with an unreachable threshold:
// requests are seen but never captured.
func TestDebugTracesSkipBelowThreshold(t *testing.T) {
	_, ts := newMetricsTestServer(t, RegistryConfig{SlowQuery: time.Hour})
	for i := 0; i < 3; i++ {
		if code := postJSON(t, ts.URL+"/query",
			json.RawMessage(`{"kind":"connected","u":0,"v":1}`), nil); code != http.StatusOK {
			t.Fatalf("query: %d", code)
		}
	}
	page := tracesPage(t, ts.URL)
	if page.Seen != 3 || page.Captured != 0 || len(page.Traces) != 0 {
		t.Fatalf("seen=%d captured=%d traces=%d, want 3/0/0", page.Seen, page.Captured, len(page.Traces))
	}
}

// TestDebugTracesRingBounded floods more requests than the ring holds:
// the page stays bounded at the capacity while Seen keeps counting.
func TestDebugTracesRingBounded(t *testing.T) {
	_, ts := newMetricsTestServer(t, RegistryConfig{SlowQuery: -1})
	total := obs.DefaultTraceCap + 10
	for i := 0; i < total; i++ {
		if code := postJSON(t, ts.URL+"/query",
			json.RawMessage(`{"kind":"connected","u":0,"v":1}`), nil); code != http.StatusOK {
			t.Fatalf("query %d: %d", i, code)
		}
	}
	page := tracesPage(t, ts.URL)
	if len(page.Traces) != obs.DefaultTraceCap {
		t.Fatalf("ring holds %d traces, want capacity %d", len(page.Traces), obs.DefaultTraceCap)
	}
	if page.Seen != int64(total) || page.Captured != int64(total) {
		t.Fatalf("seen=%d captured=%d, want %d/%d", page.Seen, page.Captured, total, total)
	}
}

func tracesPage(t *testing.T, base string) obs.TracesPage {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatalf("GET /debug/traces: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", resp.StatusCode)
	}
	var page obs.TracesPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatalf("decode traces: %v", err)
	}
	return page
}

// TestMetricsScrapeDuringChurn hammers GET /metrics while queries, churn
// updates, and graph create/delete cycles run concurrently — the race
// gate for every scrape-time func instrument (they read engine and
// registry state under their own locks).
func TestMetricsScrapeDuringChurn(t *testing.T) {
	reg, ts := newMetricsTestServer(t, RegistryConfig{SlowQuery: -1})
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			postJSON(t, ts.URL+"/query", json.RawMessage(`{"kind":"connected","u":0,"v":1}`), nil)
			if i%3 == 0 {
				postJSON(t, ts.URL+"/update", json.RawMessage(`{"add":[[0,7]],"wait":true}`), nil)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn%d", i%2)
			if _, err := reg.Create(GraphSpec{Name: name, N: 32, Deg: 3, Wait: true}); err != nil {
				continue
			}
			reg.Delete(name)
		}
	}()

	deadline := time.Now().Add(1 * time.Second)
	for time.Now().Before(deadline) {
		exp := scrape(t, ts.URL)
		if !exp.HasFamily("wec_query_duration_seconds") {
			t.Error("scrape lost wec_query_duration_seconds mid-churn")
			break
		}
	}
	close(stop)
	wg.Wait()
}
