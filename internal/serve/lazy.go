package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/parallel"
)

// Deferred (lazy) oracle rebuilds. A Deferrable factory's oracle is not
// rebuilt on the publish path: buildNext (update.go) carries the previous
// instance forward as stale — tagged with the epoch it was actually built
// at — and plants a lazySlot in the new snapshot. The first query of one
// of the factory's kinds at that snapshot pays for one build; everything
// after it (and every concurrent query during it, via the slot mutex) uses
// the built instance. Queries for other factories' kinds never touch the
// slot, which is how a pure-connectivity tenant churns a graph forever
// without ever paying for bicc.
//
// Bounded-staleness queries (Query.Staleness == StalenessBounded) skip the
// build while the slot is unfilled and answer from the stale instance,
// reporting its built epoch — the escape hatch for tenants that prefer a
// lagging answer to a build stall.

// lazySlot is the mutable single-flight cell of one deferred oracle slot.
// It lives *beside* the immutable snapshot (referenced by it, never
// mutated through it): built flips nil -> non-nil exactly once, under mu,
// and is read lock-free by the query path.
type lazySlot struct {
	mu    sync.Mutex
	built atomic.Pointer[lazyBuilt]
}

// lazyBuilt is the product of one on-demand build: the oracle, its
// pre-resolved fast-path capability, and the build's metered cost (which
// becomes the slot's reported build cost — the lazy path moves the work,
// it doesn't hide it).
type lazyBuilt struct {
	o    oracle.QueryOracle
	fast oracle.FastAnswerer
	cost asym.Cost
}

// resolveOracle picks the oracle instance that serves one query of factory
// fi against snapshot s, returning it with its fast-path capability and
// the epoch its state was built at (the cache key + the epoch reported on
// bounded answers). The fresh-slot fast path is two nil checks; deferred
// slots resolve to the lazily built instance, the stale instance (bounded
// queries only), or block on the single-flight build.
//
//wec:noalloc
func (e *Engine) resolveOracle(s *snapshot, fi int, bounded bool) (oracle.QueryOracle, oracle.FastAnswerer, int64, error) {
	if s.lazy == nil || s.lazy[fi] == nil {
		return s.oracles[fi], s.fast[fi], s.epoch, nil
	}
	slot := s.lazy[fi]
	if lb := slot.built.Load(); lb != nil {
		return lb.o, lb.fast, s.epoch, nil
	}
	if bounded && s.oracles[fi] != nil {
		return s.oracles[fi], s.fast[fi], s.builtEpoch[fi], nil
	}
	lb, err := e.buildLazy(s, fi)
	if err != nil {
		return nil, nil, 0, err
	}
	return lb.o, lb.fast, s.epoch, nil
}

// buildLazy runs the deferred slot's on-demand build, single-flight: the
// first caller builds under the slot mutex while concurrent callers of the
// same factory's kinds wait on it and then reuse the result (the
// double-check below). Queries of other factories never arrive here, so
// they never block. The build charges a fresh meter — its cost surfaces as
// the slot's build cost, not on any query's per-kind meter, so per-query
// telemetry is identical whether the build was eager or lazy.
func (e *Engine) buildLazy(s *snapshot, fi int) (*lazyBuilt, error) {
	slot := s.lazy[fi]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if lb := slot.built.Load(); lb != nil {
		return lb, nil
	}
	start := time.Now()
	m := asym.NewMeter(e.omega)
	var o oracle.QueryOracle
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: oracle %q lazy rebuild panicked: %v", e.factories[fi].Name, r)
			}
		}()
		c := parallel.NewCtx(m, asym.NewSymTracker(e.sym))
		o = e.factories[fi].Build(c, graph.View{G: s.g, M: m}, e.k, e.seed)
		return nil
	}()
	if err != nil {
		// Leave the slot unfilled: the next query retries the build. The
		// error surfaces on this query's Result like any oracle error.
		return nil, err
	}
	lb := &lazyBuilt{o: o, cost: m.Snapshot()}
	if fa, ok := o.(oracle.FastAnswerer); ok {
		lb.fast = fa
	}
	slot.built.Store(lb)
	e.lazyBuilds.Add(1)
	if e.met != nil {
		if h := e.met.rebuildDur[StrategyLazy]; h != nil {
			h.Observe(time.Since(start).Seconds())
		}
	}
	return lb, nil
}
