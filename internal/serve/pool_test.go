package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolBoundsConcurrency hammers one pool from many goroutines and
// checks the invariant the whole admission design rests on: running tasks
// never exceed the slot count, every task runs exactly once, and the
// telemetry adds up.
func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	var running, peak, ran atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(20, func(int) {
				in := running.Add(1)
				for {
					pk := peak.Load()
					if in <= pk || peak.CompareAndSwap(pk, in) {
						break
					}
				}
				for i := 0; i < 1000; i++ {
					_ = i * i // hold the slot briefly
				}
				ran.Add(1)
				running.Add(-1)
			})
		}()
	}
	wg.Wait()
	if pk := peak.Load(); pk > 3 {
		t.Fatalf("observed %d concurrent tasks, pool size 3", pk)
	}
	if ran.Load() != 8*20 {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), 8*20)
	}
	st := p.Stats()
	if st.Tasks != 8*20 || st.InUse != 0 || st.Size != 3 {
		t.Fatalf("pool stats %+v", st)
	}
	if st.PeakInUse < 1 || st.PeakInUse > 3 {
		t.Fatalf("peak %d out of [1,3]", st.PeakInUse)
	}
}

// TestPoolDefaults: size <= 0 selects GOMAXPROCS; zero tasks are a no-op.
func TestPoolDefaults(t *testing.T) {
	p := NewPool(0)
	if p.Size() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default size %d, want GOMAXPROCS %d", p.Size(), runtime.GOMAXPROCS(0))
	}
	if wait := p.Run(0, func(int) { t.Fatal("task ran") }); wait != 0 {
		t.Fatalf("zero-task run waited %v", wait)
	}
	if st := p.Stats(); st.Tasks != 0 {
		t.Fatalf("stats after no-op run: %+v", st)
	}
}
