//go:build !race

package serve

// raceEnabled lets long-haul tests shrink their iteration counts under the
// race detector (the CI race gate runs this package).
const raceEnabled = false
