// Package serve turns the paper's query oracles into a long-lived,
// concurrent serving layer: the write-efficient connectivity oracle
// (Theorem 4.4) and the biconnectivity oracle (Theorem 5.3) are built once
// over a graph and then answer batches of queries sharded across
// GOMAXPROCS workers.
//
// The design follows the oracles' own cost discipline:
//
//   - Construction is charged to per-oracle meters (both oracles build in
//     parallel under one parallel.Ctx fork), so /stats can report the
//     paper's construction write bounds as live telemetry.
//   - Each worker queries with a private asym.Meter and asym.SymTracker —
//     concurrent queries never share mutable cost-model state — and merges
//     its totals into long-lived per-query-kind aggregate meters when its
//     shard completes (asym.Meter.Merge).
//   - Queries themselves perform no asymmetric writes (that is the paper's
//     headline); the engine charges exactly one write per query for storing
//     the answer into the batch's result slice, which is the usual way an
//     output-sized cost enters the Asymmetric RAM model. Everything else in
//     a query's cost is reads and unit ops.
//
// The engine serves an *evolving* graph through epoch-numbered copy-on-write
// snapshots: all immutable per-graph state (graph, both oracles, build
// costs) lives in one snapshot behind an atomic pointer, edge-churn batches
// staged through Update are folded into the next snapshot by a background
// rebuild (update.go), and an atomic pointer swap publishes it — queries
// never block on updates and always see a consistent graph. Insertion-only
// batches take the write-efficient incremental path
// (conn.Oracle.ApplyInsertions); batches with deletions trigger a full
// rebuild.
//
// Package serve is transport-agnostic; the HTTP/JSON surface lives in
// http.go and is mounted by cmd/oracled.
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/asym"
	"repro/internal/bicc"
	"repro/internal/conn"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Kind names a query type served by the engine.
type Kind string

// The five query kinds. Connected, Component and the spanning structure
// behind them come from conn.Oracle (Thm 4.2/4.4); Bridge, Articulation and
// Biconnected from bicc.Oracle (Thm 5.1/5.3/6.1).
const (
	KindConnected    Kind = "connected"    // u, v — same component?
	KindComponent    Kind = "component"    // u — canonical component label
	KindBridge       Kind = "bridge"       // u, v — is edge {u,v} a bridge?
	KindArticulation Kind = "articulation" // u — is u a cut vertex?
	KindBiconnected  Kind = "biconnected"  // u, v — biconnected pair?
)

// Kinds lists every query kind in a stable order (used for stats output and
// load-mix parsing).
var Kinds = []Kind{KindConnected, KindComponent, KindBridge, KindArticulation, KindBiconnected}

// kindIndex maps a Kind to its slot in the per-kind stat arrays; -1 if
// unknown.
func kindIndex(k Kind) int {
	for i, kk := range Kinds {
		if kk == k {
			return i
		}
	}
	return -1
}

// Query is one oracle query. V is ignored by the single-vertex kinds
// (component, articulation).
type Query struct {
	Kind Kind  `json:"kind"`
	U    int32 `json:"u"`
	V    int32 `json:"v,omitempty"`
}

// Result is the answer to one Query. Exactly one of Bool/Label is set on
// success; Err is set (and the value fields nil) on a malformed query.
// Bool carries connected/bridge/articulation/biconnected answers, Label the
// component label. Component labels are canonical within one snapshot
// epoch; a full rebuild may renumber them.
type Result struct {
	Bool  *bool  `json:"bool,omitempty"`
	Label *int32 `json:"label,omitempty"`
	Err   string `json:"error,omitempty"`
}

// Config configures an Engine.
type Config struct {
	// Omega is the asymmetric write cost ω; 0 selects asym.DefaultOmega.
	Omega int
	// K is the decomposition parameter; 0 selects the paper's k = ⌈√ω⌉.
	K int
	// Seed drives the decomposition's primary sampling (also for rebuilds).
	Seed uint64
	// Workers bounds the batch shard count; 0 selects GOMAXPROCS.
	Workers int
	// SymLimit, if nonzero, caps per-worker symmetric memory in words
	// (the paper's O(k log n) budget); 0 means report-only.
	SymLimit int
	// OnRebuild, if non-nil, is called after every rebuild attempt
	// (successful or not) with its record. Called outside the engine's
	// lock, from the rebuild goroutine; keep it fast and non-blocking.
	OnRebuild func(RebuildRecord)
}

// KindStats is the cumulative serving telemetry for one query kind.
type KindStats struct {
	Count  int64     `json:"count"`
	Errors int64     `json:"errors"`
	Cost   asym.Cost `json:"cost"`
}

// Stats is the engine-wide snapshot served at /stats. Graph shape, build
// costs and component counts describe the current snapshot; query and
// rebuild telemetry is cumulative across the engine's lifetime.
type Stats struct {
	GraphN        int                  `json:"graph_n"`
	GraphM        int                  `json:"graph_m"`
	Omega         int                  `json:"omega"`
	K             int                  `json:"k"`
	Workers       int                  `json:"workers"`
	NumComponents int                  `json:"num_components"`
	NumBCC        int                  `json:"num_bcc"`
	BuildConn     asym.Cost            `json:"build_conn"`
	BuildBicc     asym.Cost            `json:"build_bicc"`
	Queries       map[string]KindStats `json:"queries"`
	TotalQueries  int64                `json:"total_queries"`

	// Dynamic-update telemetry (update.go).
	Epoch               int64           `json:"epoch"`
	PendingUpdates      int             `json:"pending_updates"`
	TotalRebuilds       int64           `json:"total_rebuilds"`
	IncrementalRebuilds int64           `json:"incremental_rebuilds"`
	EdgesAdded          int64           `json:"edges_added"`
	EdgesRemoved        int64           `json:"edges_removed"`
	Rebuilds            []RebuildRecord `json:"rebuilds,omitempty"`
}

// snapshot is the immutable per-epoch serving state. A snapshot is built
// completely before its pointer is published; after that nothing in it
// mutates, so readers never lock.
type snapshot struct {
	epoch     int64
	g         *graph.Graph
	conn      *conn.Oracle
	bicc      *bicc.Oracle
	buildConn asym.Cost
	buildBicc asym.Cost
}

// Engine is a thread-safe batched query service over one evolving graph.
// The current snapshot (graph + both oracles) is immutable and reached
// through an atomic pointer; all per-query mutable state (meters, symmetric
// trackers, search scratch) is worker-local, so any number of goroutines
// may call Do / Query / Update concurrently.
type Engine struct {
	omega     int
	k         int
	workers   int
	sym       int
	seed      uint64
	onRebuild func(RebuildRecord)

	snap atomic.Pointer[snapshot]

	// Per-kind aggregates. The meters are shared long-lived accumulators
	// (atomic internally); workers merge into them only at shard
	// completion, so the per-query hot path touches worker-local state
	// only.
	kinds []kindAgg
	total atomic.Int64
	disp  *asym.Meter // dispatch overhead (batch sharding), not per-kind

	// Dynamic-update state (update.go). mu guards everything below plus
	// the snap.Store in the rebuild loop; snap.Load never locks.
	mu        sync.Mutex
	cond      *sync.Cond
	loopOnce  sync.Once
	closed    bool
	pending   []*updateBatch
	delta     map[[2]int32]int // staged-but-unpublished edge multiplicity delta
	seq       int64            // update batches staged, ever
	unapplied int              // staged batches not yet folded into a snapshot
	history   []RebuildRecord  // most recent rebuilds, newest last

	nRebuilds    int64
	nIncremental int64
	edgesAdded   int64
	edgesRemoved int64
}

type kindAgg struct {
	count  atomic.Int64
	errors atomic.Int64
	meter  *asym.Meter
}

// New builds both oracles over g and returns a ready engine. The two
// constructions run as the two branches of a parallel.Ctx fork, each
// charging its own meter, so the build parallelizes and the per-oracle
// construction costs stay separable in /stats.
func New(g *graph.Graph, cfg Config) *Engine {
	omega := cfg.Omega
	if omega <= 0 {
		omega = asym.DefaultOmega
	}
	k := cfg.K
	if k <= 0 {
		k = conn.DefaultK(omega)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		omega:     omega,
		k:         k,
		workers:   workers,
		sym:       cfg.SymLimit,
		seed:      cfg.Seed,
		onRebuild: cfg.OnRebuild,
		disp:      asym.NewMeter(omega),
		kinds:     make([]kindAgg, len(Kinds)),
		delta:     map[[2]int32]int{},
	}
	e.cond = sync.NewCond(&e.mu)
	for i := range e.kinds {
		e.kinds[i].meter = asym.NewMeter(omega)
	}
	co, bo, cc, bc := e.buildOracles(g)
	e.snap.Store(&snapshot{epoch: 0, g: g, conn: co, bicc: bo, buildConn: cc, buildBicc: bc})
	return e
}

// buildOracles constructs both oracles over g in parallel, returning them
// with their separable construction costs. Used for the initial snapshot
// and for full rebuilds.
func (e *Engine) buildOracles(g *graph.Graph) (*conn.Oracle, *bicc.Oracle, asym.Cost, asym.Cost) {
	mc := asym.NewMeter(e.omega)
	mb := asym.NewMeter(e.omega)
	var co *conn.Oracle
	var bo *bicc.Oracle
	root := parallel.NewCtx(e.disp, nil)
	root.Fork2(
		func(*parallel.Ctx) {
			c := parallel.NewCtx(mc, asym.NewSymTracker(e.sym))
			co = conn.BuildOracle(c, graph.View{G: g, M: mc}, e.k, e.seed)
		},
		func(*parallel.Ctx) {
			c := parallel.NewCtx(mb, asym.NewSymTracker(e.sym))
			bo = bicc.BuildOracle(c, graph.View{G: g, M: mb}, nil, e.k, e.seed)
		},
	)
	return co, bo, mc.Snapshot(), mb.Snapshot()
}

// Graph returns the currently served graph (the latest snapshot's).
func (e *Engine) Graph() *graph.Graph { return e.snap.Load().g }

// Epoch returns the current snapshot epoch (0 for the initial build; +1
// per published rebuild).
func (e *Engine) Epoch() int64 { return e.snap.Load().epoch }

// Omega returns the engine's write cost ω.
func (e *Engine) Omega() int { return e.omega }

// K returns the decomposition parameter.
func (e *Engine) K() int { return e.k }

// Conn exposes the current snapshot's connectivity oracle (read-only use).
func (e *Engine) Conn() *conn.Oracle { return e.snap.Load().conn }

// Bicc exposes the current snapshot's biconnectivity oracle (read-only use).
func (e *Engine) Bicc() *bicc.Oracle { return e.snap.Load().bicc }

// worker holds one shard's private cost-model state: a meter per query kind
// plus a symmetric-memory tracker. Nothing here is shared until mergeInto.
type worker struct {
	meters []*asym.Meter
	counts []int64
	errs   []int64
	sym    *asym.SymTracker
}

func (e *Engine) newWorker() *worker {
	w := &worker{
		meters: make([]*asym.Meter, len(Kinds)),
		counts: make([]int64, len(Kinds)),
		errs:   make([]int64, len(Kinds)),
		sym:    asym.NewSymTracker(e.sym),
	}
	for i := range w.meters {
		w.meters[i] = asym.NewMeter(e.omega)
	}
	return w
}

// mergeInto folds the worker's per-kind totals into the engine aggregates.
func (w *worker) mergeInto(e *Engine) {
	for i := range Kinds {
		if w.counts[i] == 0 && w.errs[i] == 0 {
			continue
		}
		e.kinds[i].meter.Merge(w.meters[i].Snapshot())
		e.kinds[i].count.Add(w.counts[i])
		e.kinds[i].errors.Add(w.errs[i])
		e.total.Add(w.counts[i])
	}
}

// answer runs one query against the snapshot's oracles using the worker's
// private meters. The single m.Write(1) charges the store of the answer
// into the batch's result slice (the output-sized write cost of the model);
// the oracles themselves write nothing during queries.
func (e *Engine) answer(s *snapshot, w *worker, q Query) Result {
	ki := kindIndex(q.Kind)
	if ki < 0 {
		// Unknown kinds are not attributable to a per-kind meter; count
		// them under no kind and report the error.
		return Result{Err: fmt.Sprintf("unknown query kind %q", q.Kind)}
	}
	n := int32(s.g.N())
	pairwise := q.Kind == KindConnected || q.Kind == KindBridge || q.Kind == KindBiconnected
	if q.U < 0 || q.U >= n || (pairwise && (q.V < 0 || q.V >= n)) {
		w.errs[ki]++
		return Result{Err: fmt.Sprintf("vertex out of range [0,%d)", n)}
	}
	m := w.meters[ki]
	var res Result
	switch q.Kind {
	case KindConnected:
		v := s.conn.Connected(m, w.sym, q.U, q.V)
		res.Bool = &v
	case KindComponent:
		v := s.conn.Query(m, w.sym, q.U)
		res.Label = &v
	case KindBridge:
		v := s.bicc.IsBridge(m, w.sym, q.U, q.V)
		res.Bool = &v
	case KindArticulation:
		v := s.bicc.IsArticulation(m, w.sym, q.U)
		res.Bool = &v
	case KindBiconnected:
		v := s.bicc.Biconnected(m, w.sym, q.U, q.V)
		res.Bool = &v
	}
	m.Write(1) // store the answer (output-sized cost)
	w.counts[ki]++
	return res
}

// Do answers a batch of queries. The snapshot pointer is loaded once, so
// every query in the batch is answered against the same epoch even if an
// update publishes mid-batch. The slice is sharded into up to Workers
// contiguous chunks dispatched through parallel.Ctx.For (ForEachChunk), so
// fork overhead is amortized across the whole request slice rather than
// paid per query; each chunk runs on its own worker state. Do is safe to
// call from many goroutines at once — each call builds a fresh dispatch
// context and fresh workers.
func (e *Engine) Do(queries []Query) []Result {
	out := make([]Result, len(queries))
	if len(queries) == 0 {
		return out
	}
	s := e.snap.Load()
	chunk := (len(queries) + e.workers - 1) / e.workers
	ctx := parallel.NewCtx(e.disp, nil)
	ctx.ForEachChunk(len(queries), chunk, func(cc *parallel.Ctx, lo, hi int) {
		w := e.newWorker()
		for i := lo; i < hi; i++ {
			out[i] = e.answer(s, w, queries[i])
		}
		cc.AddDepth(int64(hi - lo))
		w.mergeInto(e)
	})
	return out
}

// Query answers a single query (a one-element batch without the fork
// spine).
func (e *Engine) Query(q Query) Result {
	w := e.newWorker()
	res := e.answer(e.snap.Load(), w, q)
	w.mergeInto(e)
	return res
}

// Stats snapshots the engine's cumulative serving telemetry. The snapshot
// pointer is read under the update lock (publishes also happen under it),
// so the reported epoch is consistent with the rebuild counters and
// history.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	sn := e.snap.Load()
	s := Stats{
		GraphN:        sn.g.N(),
		GraphM:        sn.g.M(),
		Omega:         e.omega,
		K:             e.k,
		Workers:       e.workers,
		NumComponents: sn.conn.NumComponents,
		NumBCC:        sn.bicc.NumBCC,
		BuildConn:     sn.buildConn,
		BuildBicc:     sn.buildBicc,
		Queries:       make(map[string]KindStats, len(Kinds)),
		TotalQueries:  e.total.Load(),
		Epoch:         sn.epoch,
	}
	s.PendingUpdates = e.unapplied
	s.TotalRebuilds = e.nRebuilds
	s.IncrementalRebuilds = e.nIncremental
	s.EdgesAdded = e.edgesAdded
	s.EdgesRemoved = e.edgesRemoved
	s.Rebuilds = append([]RebuildRecord(nil), e.history...)
	e.mu.Unlock()
	for i, k := range Kinds {
		s.Queries[string(k)] = KindStats{
			Count:  e.kinds[i].count.Load(),
			Errors: e.kinds[i].errors.Load(),
			Cost:   e.kinds[i].meter.Snapshot(),
		}
	}
	return s
}
