// Package serve turns the paper's query oracles into a long-lived,
// concurrent, multi-tenant serving layer. An Engine serves one evolving
// graph; a Registry (registry.go) manages many named engines behind one
// HTTP surface, all drawing query workers from one shared
// admission-controlled Pool (pool.go).
//
// The engine no longer hardcodes the two paper oracles: it builds one
// oracle per factory registered in internal/oracle (the connectivity oracle
// of Theorem 4.4 and the biconnectivity oracle of Theorem 5.3 are the
// built-ins) and dispatches queries by registered kind, so future oracles
// (spanning forest, 2-edge-connectivity) plug in without engine changes.
//
// The design follows the oracles' own cost discipline:
//
//   - Construction is charged to per-oracle meters (all factories build in
//     parallel under one parallel.Ctx), so /stats can report the paper's
//     construction write bounds as live telemetry.
//   - Each worker queries with a private asym.Meter and asym.SymTracker —
//     concurrent queries never share mutable cost-model state — and merges
//     its totals into long-lived per-query-kind aggregate meters when its
//     shard completes (asym.Meter.Merge).
//   - Queries themselves perform no asymmetric writes (that is the paper's
//     headline); the engine charges exactly one write per query for storing
//     the answer into the batch's result slice, which is the usual way an
//     output-sized cost enters the Asymmetric RAM model. Everything else in
//     a query's cost is reads and unit ops.
//
// The engine serves an *evolving* graph through epoch-numbered copy-on-write
// snapshots: all immutable per-graph state (graph, oracles, build costs)
// lives in one snapshot behind an atomic pointer, edge-churn batches staged
// through Update are folded into the next snapshot by a background rebuild
// (update.go), and an atomic pointer swap publishes it — queries never
// block on updates and always see a consistent graph. Insertion-only
// batches take the write-efficient incremental path for every oracle that
// implements oracle.InsertionApplier; the rest are rebuilt.
//
// Batch dispatch is bounded: chunks run as tasks on the engine's Pool
// (shared across graphs when the engine belongs to a Registry), and the
// transport layer admits requests through Engine.Admit, which enforces the
// per-graph in-flight cap and counts rejections — the 429 surface.
//
// Package serve is transport-agnostic; the HTTP/JSON surface lives in
// http.go and is mounted by cmd/oracled.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asym"
	"repro/internal/bicc"
	"repro/internal/conn"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/parallel"
)

// Kind names a query type served by the engine (an alias of the registry's
// kind type; the constants below re-export the built-ins).
type Kind = oracle.Kind

// The six built-in query kinds. Connected, Component and the spanning
// structure behind them come from conn.Oracle (Thm 4.2/4.4); Bridge,
// Articulation, Biconnected and TwoEdgeConnected from bicc.Oracle
// (Thm 5.1/5.3/6.1).
const (
	KindConnected        = oracle.KindConnected
	KindComponent        = oracle.KindComponent
	KindBridge           = oracle.KindBridge
	KindArticulation     = oracle.KindArticulation
	KindBiconnected      = oracle.KindBiconnected
	KindTwoEdgeConnected = oracle.KindTwoEdgeConnected
)

// Kinds lists every query kind registered when package serve initialized,
// in the registry's stable order (used for stats output and load-mix
// parsing). Factories registered later — e.g. from a plugin package whose
// init runs after serve's — are served by engines and reported by
// Engine.Kinds / /info, but do not appear here; call oracle.Kinds() for
// the live set.
var Kinds = oracle.Kinds()

// The per-query staleness contracts (Query.Staleness). Strict (the default)
// answers from the current snapshot epoch, lazily rebuilding a deferred
// oracle first if necessary; Bounded accepts an answer from the last-built
// epoch of a stale deferrable oracle — never a mixture of epochs — with
// that epoch reported in Result.Epoch. For kinds whose oracle is fresh (or
// not deferrable at all) the two contracts coincide.
const (
	StalenessStrict  = "strict"
	StalenessBounded = "bounded"
)

// Query is one oracle query. V is ignored by the single-vertex kinds
// (component, articulation). Staleness is "" or StalenessStrict for
// current-epoch answers (the default), or StalenessBounded to accept an
// answer from a deferred oracle's last-built epoch instead of waiting for
// its lazy rebuild.
type Query struct {
	Kind      Kind   `json:"kind"`
	U         int32  `json:"u"`
	V         int32  `json:"v,omitempty"`
	Staleness string `json:"staleness,omitempty"`
}

// Result is the answer to one Query. Exactly one of Bool/Label is set on
// success; Err is set (and the value fields nil) on a malformed query.
// Bool carries connected/bridge/articulation/biconnected answers, Label the
// component label. Component labels are canonical within one snapshot
// epoch; a full rebuild may renumber them.
//
// Results are read-only. On the fast dispatch path Bool aliases one of two
// process-wide interned bool words shared by every boolean Result, and
// Label points into a batch-owned arena shared by the batch's Results —
// writing through either pointer silently corrupts other results, past and
// future. Dereference and copy the values; never assign through them.
type Result struct {
	Bool  *bool  `json:"bool,omitempty"`
	Label *int32 `json:"label,omitempty"`
	Err   string `json:"error,omitempty"`
	// Epoch is set only on bounded-staleness queries (Query.Staleness): the
	// epoch whose oracle state produced this answer — the snapshot epoch
	// when the serving oracle was fresh, or the last-built epoch of a stale
	// deferred oracle. (An answer at epoch 0 is omitted from the JSON form;
	// in-process callers read the field directly.)
	Epoch int64 `json:"epoch,omitempty"`
}

// ErrBusy is returned by Admit when the engine's in-flight request cap is
// reached; the HTTP layer maps it to 429 with a Retry-After header.
var ErrBusy = errors.New("serve: graph at admission capacity")

// Config configures an Engine.
type Config struct {
	// Omega is the asymmetric write cost ω; 0 selects asym.DefaultOmega.
	Omega int
	// K is the decomposition parameter; 0 selects the paper's k = ⌈√ω⌉.
	K int
	// Seed drives the decomposition's primary sampling (also for rebuilds).
	Seed uint64
	// Workers bounds the batch shard count; 0 selects GOMAXPROCS.
	Workers int
	// SymLimit, if nonzero, caps per-worker symmetric memory in words
	// (the paper's O(k log n) budget); 0 means report-only.
	SymLimit int
	// Pool is the worker pool batch chunks run on. Nil creates a private
	// pool sized to GOMAXPROCS; a Registry passes its shared pool so all
	// graphs draw from one bounded worker fleet.
	Pool *Pool
	// MaxInflight caps concurrently admitted requests (Admit); 0 means
	// unlimited. Requests beyond the cap are rejected with ErrBusy and
	// counted in Stats.Admission.Rejected.
	MaxInflight int
	// OnRebuild, if non-nil, is called after every rebuild attempt
	// (successful or not) with its record. Called outside the engine's
	// lock, from the rebuild goroutine; keep it fast and non-blocking.
	OnRebuild func(RebuildRecord)

	// LegacyDispatch forces the boxed per-query dispatch path: a fresh
	// worker per batch chunk, Answer (pointer-boxed results) instead of
	// AnswerFast, and no reusable search scratch. It exists so the
	// benchmark harness can regenerate the pre-optimization baseline
	// (BENCH_query_hot_path_legacy.json) against the same code; answers
	// and charged costs are identical either way.
	LegacyDispatch bool

	// EagerRebuilds disables the deferred (lazy) rebuild path: every
	// accepted batch rebuilds every oracle on the publish path, Deferrable
	// or not — the pre-optimization behavior. It exists so the benchmark
	// harness can regenerate the pre-PR baseline against the same code;
	// answers are identical either way, only where the rebuild work happens
	// moves. It also implies boot-time construction of every oracle
	// (LazyBoot is ignored).
	EagerRebuilds bool
	// LazyBoot skips the initial construction of Deferrable oracles: the
	// engine starts serving with those slots unbuilt (built-epoch -1) and
	// constructs them on the first query of one of their kinds. The
	// registry sets this for recovered graphs so a restart never pays
	// boot-time bicc rebuilds that no query may need. Ignored under
	// EagerRebuilds.
	LazyBoot bool

	// RebaseEvery is the incremental patch-chain budget: an oracle whose
	// chain depth (oracle.Rebaser) reaches it is re-based — rebuilt fresh
	// over the current graph, collapsing its remap chain — instead of
	// patched again. Depth counts patch *generations*, each of which
	// copies the persisted remap table once: a pure insertion or deletion
	// batch is one generation, a mixed batch two (the insertion fold and
	// the deletion fold). 0 selects DefaultRebaseEvery; negative disables
	// automatic re-basing (chains grow until a batch forces a rebuild).
	RebaseEvery int

	// Persist, if non-nil, is the graph's durable log (persist.go): every
	// accepted update batch is appended to it before staging, and every
	// published epoch is committed to it. Nil disables persistence.
	Persist GraphPersister
	// InitialEpoch seeds the first snapshot's epoch — a recovered engine
	// resumes at (at least) the epoch its clients last saw acknowledged
	// instead of restarting at 0.
	InitialEpoch int64
	// InitialSeq seeds the update sequence counter — a recovered engine
	// numbers its next accepted batch InitialSeq+1 so WAL sequence numbers
	// stay monotonic across restarts.
	InitialSeq int64
	// InitialForest, when non-nil, is a recovered spanning forest (store
	// snapshot v2): after the oracles build, it is offered to every
	// oracle.ForestCarrier together with InitialChainDepth, so the
	// dynamic-update machinery resumes the persisted forest and re-base
	// schedule instead of starting a fresh chain. A forest that fails
	// validation against the recovered graph is dropped silently — the
	// oracle keeps its own freshly seeded forest.
	InitialForest [][2]int32
	// InitialChainDepth is the recovered remap-chain depth adopted with
	// InitialForest.
	InitialChainDepth int

	// GraphName is the value of the "graph" label on this engine's metric
	// series (metrics.go); "" selects "default". A Registry passes the
	// graph's registered name.
	GraphName string
	// Metrics is the obs registry the engine registers its instruments in;
	// nil creates a private registry (NewServer still serves it at
	// /metrics). Sharing one registry across engines is how a Registry
	// exposes the whole fleet on one scrape.
	Metrics *obs.Registry
}

// KindStats is the cumulative serving telemetry for one query kind.
type KindStats struct {
	Count  int64     `json:"count"`
	Errors int64     `json:"errors"`
	Cost   asym.Cost `json:"cost"`
}

// ResultCacheStats is the epoch-keyed hot-pair result cache telemetry
// (resultcache.go). BatchDedup counts answers served from the batch-local
// duplicate map, which sits in front of the shared table.
type ResultCacheStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	BatchDedup int64 `json:"batch_dedup"`
}

// CacheStats is the oracle-side derived-structure cache telemetry (the
// bicc cluster local-graph cache), cumulative across snapshot swaps:
// retired snapshots' counters are folded into the engine at publish time
// and the live snapshot's are added on read.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// AdmissionStats is the per-graph admission-control telemetry.
type AdmissionStats struct {
	// MaxInflight is the configured cap (0 = unlimited).
	MaxInflight int `json:"max_inflight"`
	// Inflight counts currently admitted requests.
	Inflight int64 `json:"inflight"`
	// Rejected counts requests refused with ErrBusy over the engine's
	// lifetime.
	Rejected int64 `json:"rejected"`
	// QueueWait is the cumulative time this graph's batches spent waiting
	// for pool worker slots.
	QueueWait time.Duration `json:"queue_wait_ns"`
}

// Stats is the engine-wide snapshot served at /stats. Graph shape, build
// costs and component counts describe the current snapshot; query, rebuild,
// admission and pool telemetry is cumulative.
type Stats struct {
	GraphN        int `json:"graph_n"`
	GraphM        int `json:"graph_m"`
	Omega         int `json:"omega"`
	K             int `json:"k"`
	Workers       int `json:"workers"`
	NumComponents int `json:"num_components"`
	NumBCC        int `json:"num_bcc"`
	// BuildConn/BuildBicc are the built-in factories' construction costs
	// (kept for single-graph clients); BuildCosts has every registered
	// factory's, keyed by factory name.
	BuildConn    asym.Cost            `json:"build_conn"`
	BuildBicc    asym.Cost            `json:"build_bicc"`
	BuildCosts   map[string]asym.Cost `json:"build_costs"`
	Queries      map[string]KindStats `json:"queries"`
	TotalQueries int64                `json:"total_queries"`

	// Query-path cache telemetry: the engine's result memoization and the
	// bicc oracle's cluster local-graph cache. Both replay fill-time
	// charges on hits, so Queries' costs above are unaffected by either.
	ResultCache  ResultCacheStats `json:"result_cache"`
	ClusterCache CacheStats       `json:"cluster_cache"`

	// Admission control (this graph) and the worker pool (shared across
	// graphs when the engine belongs to a Registry).
	Admission AdmissionStats `json:"admission"`
	Pool      PoolStats      `json:"pool"`

	// Dynamic-update telemetry (update.go). IncrementalRebuilds counts
	// rebuilds whose summary strategy was a patch (patched-insert or
	// patched-delete); Strategies has the full per-oracle breakdown —
	// factory name -> strategy -> cumulative count — which is what the
	// churn harnesses assert on ("zero full conn rebuilds").
	Epoch               int64                       `json:"epoch"`
	PendingUpdates      int                         `json:"pending_updates"`
	TotalRebuilds       int64                       `json:"total_rebuilds"`
	IncrementalRebuilds int64                       `json:"incremental_rebuilds"`
	Strategies          map[string]map[string]int64 `json:"strategies,omitempty"`
	// ConnChainDepth is the conn oracle's current incremental patch-chain
	// depth (how far the snapshot is from its last full decomposition;
	// re-based to 0 every RebaseEvery generations).
	ConnChainDepth int             `json:"conn_chain_depth"`
	EdgesAdded     int64           `json:"edges_added"`
	EdgesRemoved   int64           `json:"edges_removed"`
	Rebuilds       []RebuildRecord `json:"rebuilds,omitempty"`

	// Deferred-rebuild telemetry. RebuildsAvoided counts publishes where a
	// Deferrable oracle's rebuild was skipped (marked stale) instead of run;
	// LazyRebuilds counts the on-demand rebuilds queries later forced, so
	// RebuildsAvoided - LazyRebuilds is the net rebuild work the lazy path
	// saved. OracleEpochs maps each factory to the epoch its serving oracle
	// was last actually (re)built at: equal to Epoch when fresh, lagging it
	// while stale, -1 when a lazily-booted oracle has never built. The gap
	// Epoch - OracleEpochs[f] is the oracle's epoch lag.
	RebuildsAvoided int64            `json:"rebuilds_avoided"`
	LazyRebuilds    int64            `json:"lazy_rebuilds"`
	OracleEpochs    map[string]int64 `json:"oracle_epochs,omitempty"`
}

// snapshot is the immutable per-epoch serving state. A snapshot is built
// completely before its pointer is published; after that nothing in it
// mutates, so readers never lock. oracles, costs, fast, builtEpoch and lazy
// are parallel to the engine's factory list.
//
// The one deliberate exception to "nothing mutates" is behind lazy: a
// Deferrable oracle whose rebuild was skipped at publish time gets a
// *lazySlot (lazy.go) — a separate mutable single-flight cell the first
// matching query fills with the freshly built oracle. The snapshot's own
// fields (including the slot pointer itself) never change; oracles[i] then
// holds the carried-forward *stale* instance (nil if never built) and
// builtEpoch[i] the epoch that instance was built at, which is what the
// bounded-staleness answer path serves and reports.
//
//wec:immutable
type snapshot struct {
	epoch   int64
	g       *graph.Graph
	oracles []oracle.QueryOracle
	costs   []asym.Cost
	// fast caches each oracle's FastAnswerer capability (nil for oracles
	// without one), so the per-query hot path does one slice index instead
	// of a type assertion per query.
	fast []oracle.FastAnswerer
	// builtEpoch[i] is the epoch oracles[i]'s state was built at (== epoch
	// for a fresh oracle, lagging while deferred, -1 for never-built). A
	// nil slice means every oracle is fresh.
	builtEpoch []int64
	// lazy[i], when non-nil, is factory i's deferred-rebuild cell for this
	// snapshot. A nil slice means no oracle is deferred.
	lazy []*lazySlot
}

// newSnap assembles a snapshot, resolving each oracle's zero-alloc
// capability once. Every snapshot — initial build and rebuild publishes —
// goes through here so the fast slice is never missing. builtEpoch nil
// means all-fresh; lazy nil means no deferred slots.
//
//wec:mutator the snapshot constructor: the only writes before publication
func newSnap(epoch int64, g *graph.Graph, os []oracle.QueryOracle, costs []asym.Cost, builtEpoch []int64, lazy []*lazySlot) *snapshot {
	s := &snapshot{epoch: epoch, g: g, oracles: os, costs: costs,
		fast: make([]oracle.FastAnswerer, len(os)), builtEpoch: builtEpoch, lazy: lazy}
	for i, o := range os {
		if fa, ok := o.(oracle.FastAnswerer); ok {
			s.fast[i] = fa
		}
	}
	return s
}

// oracleAt returns the effective oracle of slot fi: the lazily built one
// when the slot's query-triggered rebuild has happened, else the (possibly
// stale, possibly nil) instance carried in oracles.
func (s *snapshot) oracleAt(fi int) oracle.QueryOracle {
	if s.lazy != nil && s.lazy[fi] != nil {
		if lb := s.lazy[fi].built.Load(); lb != nil {
			return lb.o
		}
	}
	return s.oracles[fi]
}

// costAt returns the construction cost of the effective oracle of slot fi
// (the lazy build's cost once it has run, else the carried build cost).
func (s *snapshot) costAt(fi int) asym.Cost {
	if s.lazy != nil && s.lazy[fi] != nil {
		if lb := s.lazy[fi].built.Load(); lb != nil {
			return lb.cost
		}
	}
	return s.costs[fi]
}

// builtEpochAt returns the epoch the effective oracle of slot fi was built
// at: the snapshot epoch once a lazy build has run (or when the slot was
// never deferred), the carried tag while stale, -1 when never built.
func (s *snapshot) builtEpochAt(fi int) int64 {
	if s.lazy != nil && s.lazy[fi] != nil && s.lazy[fi].built.Load() != nil {
		return s.epoch
	}
	if s.builtEpoch == nil {
		return s.epoch
	}
	return s.builtEpoch[fi]
}

// liveOracles calls f with every oracle instance of slot fi that can still
// be serving answers for this snapshot: the carried base instance (which
// bounded-staleness queries keep using even after a lazy build replaced it
// on the strict path) and the lazily built one. Cache-counter aggregation
// iterates these so no instance's telemetry goes dark before publish-time
// folding retires it.
func (s *snapshot) liveOracles(fi int, f func(oracle.QueryOracle)) {
	if o := s.oracles[fi]; o != nil {
		f(o)
	}
	if s.lazy != nil && s.lazy[fi] != nil {
		if lb := s.lazy[fi].built.Load(); lb != nil {
			f(lb.o)
		}
	}
}

// counts extracts the structure counters from whichever snapshot oracles
// advertise them (shared by /stats and /info). A lazily-deferred oracle
// that has never built contributes nothing (NumBCC reads 0 until the first
// biconnectivity query forces its build).
func (s *snapshot) counts() (components, bccs int) {
	for fi := range s.oracles {
		o := s.oracleAt(fi)
		if o == nil {
			continue
		}
		if cc, ok := o.(oracle.ComponentCounter); ok {
			components = cc.NumComponents()
		}
		if bc, ok := o.(oracle.BCCCounter); ok {
			bccs = bc.NumBCC()
		}
	}
	return components, bccs
}

// kindRef locates one kind's aggregate slot and owning oracle.
type kindRef struct {
	agg int // index into Engine.specs / Engine.kinds
	fac int // index into Engine.factories / snapshot.oracles
}

// Engine is a thread-safe batched query service over one evolving graph.
// The current snapshot (graph + oracles) is immutable and reached through
// an atomic pointer; all per-query mutable state (meters, symmetric
// trackers, search scratch) is worker-local, so any number of goroutines
// may call Do / Query / Update concurrently.
type Engine struct {
	omega       int
	k           int
	workers     int
	sym         int
	seed        uint64
	rebaseEvery int // resolved patch-chain budget (0 = re-basing disabled)
	legacy      bool
	eager       bool // Config.EagerRebuilds: deferred rebuilds disabled
	onRebuild   func(RebuildRecord)
	persist     GraphPersister

	// Oracle dispatch, fixed at New from the process-wide registry.
	factories []oracle.Factory
	specs     []oracle.Spec
	byKind    map[oracle.Kind]kindRef
	facByName map[string]int

	// Worker pool + admission control.
	pool        *Pool
	maxInflight int64
	inflight    atomic.Int64
	rejected    atomic.Int64
	queueWaitNs atomic.Int64

	snap atomic.Pointer[snapshot]

	// wpool recycles worker state (per-kind meters, symmetric tracker,
	// per-factory query scratch) across batch chunks, so steady-state
	// serving allocates nothing per chunk. Unused under LegacyDispatch.
	wpool sync.Pool

	// rcache is the epoch-keyed hot-pair result cache of the fast path
	// (resultcache.go); the atomics below are its cumulative telemetry
	// plus the retired snapshots' cluster-cache counters (the live
	// snapshot's are read on demand in Stats). Unused under LegacyDispatch
	// — the legacy path recomputes every answer, which is what makes it a
	// true pre-optimization baseline.
	rcache    *resultCache
	rcHits    atomic.Int64
	rcMisses  atomic.Int64
	rcEvicts  atomic.Int64
	dedupHits atomic.Int64
	ccHits    atomic.Int64
	ccMisses  atomic.Int64
	ccEvicts  atomic.Int64

	// Per-kind aggregates. The meters are shared long-lived accumulators
	// (atomic internally); workers merge into them only at shard
	// completion, so the per-query hot path touches worker-local state
	// only.
	kinds []kindAgg
	total atomic.Int64
	disp  *asym.Meter // build/rebuild root-context overhead, not per-kind

	// Dynamic-update state (update.go). mu guards everything below plus
	// the snap.Store in the rebuild loop; snap.Load never locks.
	mu        sync.Mutex
	cond      *sync.Cond
	loopOnce  sync.Once
	closed    bool
	pending   []*updateBatch
	delta     map[[2]int32]int // staged-but-unpublished edge multiplicity delta
	seq       int64            // update batches staged, ever
	pubSeq    int64            // highest seq folded into the published snapshot
	unapplied int              // staged batches not yet folded into a snapshot
	history   []RebuildRecord  // most recent rebuilds, newest last

	nRebuilds    int64
	nIncremental int64
	stratCounts  map[string]map[string]int64 // factory -> strategy -> rebuilds
	edgesAdded   int64
	edgesRemoved int64

	// Deferred-rebuild counters (lazy.go): publishes that skipped a
	// Deferrable oracle's rebuild, and the on-demand builds queries later
	// forced. Atomics because lazy builds happen on query goroutines,
	// outside mu.
	rebuildsAvoided atomic.Int64
	lazyBuilds      atomic.Int64

	// met holds the engine's pre-resolved metric handles (metrics.go).
	// Assigned once in New after the first snapshot publishes, so the
	// scrape-time callbacks registered with it never see a nil snapshot.
	met *engineMetrics

	// testRebuildErr, when non-nil, lets white-box tests inject a rebuild
	// failure (standing in for a plugged-in oracle whose rebuild errors —
	// the path that must surface as ErrRebuildFailed, not a 400).
	testRebuildErr func(next *graph.Graph) error
}

type kindAgg struct {
	count  atomic.Int64
	errors atomic.Int64
	meter  *asym.Meter
}

// New builds one oracle per registered factory over g and returns a ready
// engine. The constructions run in parallel under one parallel.Ctx, each
// charging its own meter, so the build parallelizes and the per-oracle
// construction costs stay separable in /stats.
func New(g *graph.Graph, cfg Config) *Engine {
	omega := cfg.Omega
	if omega <= 0 {
		omega = asym.DefaultOmega
	}
	k := cfg.K
	if k <= 0 {
		k = conn.DefaultK(omega)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := cfg.Pool
	if pool == nil {
		pool = NewPool(0)
	}
	rebaseEvery := cfg.RebaseEvery
	switch {
	case rebaseEvery == 0:
		rebaseEvery = DefaultRebaseEvery
	case rebaseEvery < 0:
		rebaseEvery = 0
	}
	e := &Engine{
		omega:       omega,
		k:           k,
		workers:     workers,
		sym:         cfg.SymLimit,
		seed:        cfg.Seed,
		rebaseEvery: rebaseEvery,
		legacy:      cfg.LegacyDispatch,
		eager:       cfg.EagerRebuilds,
		onRebuild:   cfg.OnRebuild,
		persist:     cfg.Persist,
		seq:         cfg.InitialSeq,
		pubSeq:      cfg.InitialSeq,
		pool:        pool,
		maxInflight: int64(cfg.MaxInflight),
		rcache:      newResultCache(),
		disp:        asym.NewMeter(omega),
		byKind:      map[oracle.Kind]kindRef{},
		facByName:   map[string]int{},
		delta:       map[[2]int32]int{},
		stratCounts: map[string]map[string]int64{},
	}
	e.cond = sync.NewCond(&e.mu)
	e.factories = oracle.Factories()
	for fi, f := range e.factories {
		e.facByName[f.Name] = fi
		for _, s := range f.Specs {
			e.byKind[s.Kind] = kindRef{agg: len(e.specs), fac: fi}
			e.specs = append(e.specs, s)
		}
	}
	e.kinds = make([]kindAgg, len(e.specs))
	for i := range e.kinds {
		e.kinds[i].meter = asym.NewMeter(omega)
	}
	var skip []bool
	if cfg.LazyBoot && !cfg.EagerRebuilds {
		for fi, f := range e.factories {
			if f.Deferrable {
				if skip == nil {
					skip = make([]bool, len(e.factories))
				}
				skip[fi] = true
			}
		}
	}
	os, costs := e.buildOracles(g, skip)
	if len(cfg.InitialForest) > 0 || cfg.InitialChainDepth > 0 {
		// Recovery: offer the persisted forest + chain depth to every
		// forest-carrying oracle. A forest the oracle rejects (stale
		// against the recovered graph) is dropped — the fresh seed from
		// the build stands, which is always correct, just a new chain.
		for i, o := range os {
			if fc, ok := o.(oracle.ForestCarrier); ok {
				if adopted, err := fc.AdoptForest(cfg.InitialForest, cfg.InitialChainDepth); err == nil {
					os[i] = adopted
				}
			}
		}
	}
	var builtEpoch []int64
	var lazySlots []*lazySlot
	if skip != nil {
		builtEpoch = make([]int64, len(os))
		lazySlots = make([]*lazySlot, len(os))
		for i := range os {
			builtEpoch[i] = cfg.InitialEpoch
			if skip[i] {
				builtEpoch[i] = -1 // never built; first matching query builds
				lazySlots[i] = &lazySlot{}
			}
		}
	}
	e.snap.Store(newSnap(cfg.InitialEpoch, g, os, costs, builtEpoch, lazySlots))
	e.met = newEngineMetrics(cfg.Metrics, cfg.GraphName, e)
	return e
}

// buildOracles constructs every factory's oracle over g in parallel,
// returning them with their separable construction costs. Used for the
// initial snapshot and for full rebuilds. A non-nil skip masks factories
// to leave unbuilt (LazyBoot's deferred slots): their oracle stays nil
// with a zero cost.
//
// A panicking Build is re-raised on the *calling* goroutine: the parallel
// fork runs branches on spawned goroutines with no recover of their own,
// so without the capture here a single oracle panic would kill the whole
// process instead of reaching the caller's recover (the Registry parks the
// graph at StateFailed).
func (e *Engine) buildOracles(g *graph.Graph, skip []bool) ([]oracle.QueryOracle, []asym.Cost) {
	os := make([]oracle.QueryOracle, len(e.factories))
	ms := make([]*asym.Meter, len(e.factories))
	for i := range ms {
		ms[i] = asym.NewMeter(e.omega)
	}
	panics := make([]error, len(e.factories))
	root := parallel.NewCtx(e.disp, nil)
	root.SetGrain(1)
	root.For(0, len(e.factories), func(_ *parallel.Ctx, i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = fmt.Errorf("oracle %q build panicked: %v", e.factories[i].Name, r)
			}
		}()
		if skip != nil && skip[i] {
			return
		}
		c := parallel.NewCtx(ms[i], asym.NewSymTracker(e.sym))
		os[i] = e.factories[i].Build(c, graph.View{G: g, M: ms[i]}, e.k, e.seed)
	})
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	costs := make([]asym.Cost, len(ms))
	for i, m := range ms {
		costs[i] = m.Snapshot()
	}
	return os, costs
}

// costByName returns the snapshot build cost of the named factory (zero if
// that factory is not registered). For a deferred slot this is the cost of
// whatever build produced the effective oracle — the carried one while
// stale, the lazy build's once it has run, zero while never built.
func (e *Engine) costByName(s *snapshot, name string) asym.Cost {
	if fi, ok := e.facByName[name]; ok {
		return s.costAt(fi)
	}
	return asym.Cost{Omega: e.omega}
}

// buildCosts returns every factory's snapshot build cost keyed by factory
// name — the generalization of BuildConn/BuildBicc that covers plugged-in
// oracles too.
func (e *Engine) buildCosts(s *snapshot) map[string]asym.Cost {
	out := make(map[string]asym.Cost, len(e.factories))
	for fi, f := range e.factories {
		out[f.Name] = s.costAt(fi)
	}
	return out
}

// oracleEpochs maps each factory to the epoch its effective oracle was
// last actually built at (-1 for a never-built deferred slot) — the
// per-oracle staleness surface of /stats, /info and the oracle_epoch
// metric gauge.
func (e *Engine) oracleEpochs(s *snapshot) map[string]int64 {
	out := make(map[string]int64, len(e.factories))
	for fi, f := range e.factories {
		out[f.Name] = s.builtEpochAt(fi)
	}
	return out
}

// Graph returns the currently served graph (the latest snapshot's).
func (e *Engine) Graph() *graph.Graph { return e.snap.Load().g }

// Epoch returns the current snapshot epoch (Config.InitialEpoch for the
// initial build — 0 unless recovered; +1 per published rebuild).
func (e *Engine) Epoch() int64 { return e.snap.Load().epoch }

// LastSeq returns the sequence number of the most recently accepted update
// batch (Config.InitialSeq until the first accept).
func (e *Engine) LastSeq() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

// ConnDyn returns the current snapshot's complete dynamic conn state — the
// label remap table, the maintained spanning forest, and the incremental
// patch-chain depth — everything the durable store writes into a v2
// snapshot so a restarted daemon resumes the update machinery where the
// fleet left off.
func (e *Engine) ConnDyn() (remap map[int32]int32, forest [][2]int32, chainDepth int) {
	return connDynOf(e.snap.Load())
}

// PersistNow forces the durable store (when configured) to write a fresh
// snapshot of the currently *published* state — the graceful-shutdown
// fold, so the next boot loads one file instead of replaying the WAL.
// The watermark is the highest sequence number actually folded into the
// published snapshot: staged-but-unpublished batches stay in the WAL and
// replay on the next boot. No-op without a persister.
func (e *Engine) PersistNow() error {
	if e.persist == nil {
		return nil
	}
	e.mu.Lock()
	sn := e.snap.Load()
	seq := e.pubSeq
	e.mu.Unlock()
	remap, forest, depth := connDynOf(sn)
	return e.persist.SaveSnapshot(sn.epoch, seq, sn.g, remap, forest, depth)
}

// Omega returns the engine's write cost ω.
func (e *Engine) Omega() int { return e.omega }

// K returns the decomposition parameter.
func (e *Engine) K() int { return e.k }

// Pool returns the worker pool this engine draws query workers from.
func (e *Engine) Pool() *Pool { return e.pool }

// Kinds returns the query kinds this engine serves (the kinds registered
// at its construction), in dispatch order.
func (e *Engine) Kinds() []Kind {
	ks := make([]Kind, len(e.specs))
	for i, s := range e.specs {
		ks[i] = s.Kind
	}
	return ks
}

// Inflight returns the number of currently admitted requests.
func (e *Engine) Inflight() int64 { return e.inflight.Load() }

// MetricsRegistry returns the obs registry this engine's instruments are
// registered in (Config.Metrics, or the private registry created when that
// was nil). NewServer serves it at GET /metrics.
func (e *Engine) MetricsRegistry() *obs.Registry { return e.met.reg }

// clusterCacheCounts returns the cumulative oracle-side cluster-cache
// counters: the retired snapshots' totals (folded into the engine atomics
// at publish time) plus the live snapshot's. Shared by Stats and the
// scrape-time cache metrics.
func (e *Engine) clusterCacheCounts() (hits, misses, evicts int64) {
	hits, misses, evicts = e.ccHits.Load(), e.ccMisses.Load(), e.ccEvicts.Load()
	sn := e.snap.Load()
	for fi := range sn.oracles {
		sn.liveOracles(fi, func(o oracle.QueryOracle) {
			if cs, ok := o.(oracle.CacheStatser); ok {
				h, ms, ev := cs.CacheStats()
				hits += h
				misses += ms
				evicts += ev
			}
		})
	}
	return hits, misses, evicts
}

// Conn exposes the current snapshot's connectivity oracle (read-only use);
// nil if no conn factory is registered.
func (e *Engine) Conn() *conn.Oracle {
	sn := e.snap.Load()
	for fi := range sn.oracles {
		if a, ok := sn.oracleAt(fi).(oracle.ConnAdapter); ok {
			return a.O
		}
	}
	return nil
}

// Bicc exposes the current snapshot's biconnectivity oracle (read-only
// use); nil if no bicc factory is registered — or registered but deferred
// and not yet lazily built.
func (e *Engine) Bicc() *bicc.Oracle {
	sn := e.snap.Load()
	for fi := range sn.oracles {
		if a, ok := sn.oracleAt(fi).(oracle.BiccAdapter); ok {
			return a.O
		}
	}
	return nil
}

// Admit reserves one in-flight request slot, returning the release func.
// When the engine's MaxInflight cap is reached it rejects with ErrBusy and
// counts the rejection — the transport layer's 429. With MaxInflight 0
// admission always succeeds (the slot is still counted, so /stats reports
// live in-flight depth).
func (e *Engine) Admit() (release func(), err error) {
	for {
		cur := e.inflight.Load()
		if e.maxInflight > 0 && cur >= e.maxInflight {
			e.rejected.Add(1)
			return nil, ErrBusy
		}
		if e.inflight.CompareAndSwap(cur, cur+1) {
			return func() { e.inflight.Add(-1) }, nil
		}
	}
}

// worker holds one shard's private cost-model state: a meter per query
// kind, a symmetric-memory tracker, and one reusable query scratch per
// oracle factory. Nothing here is shared until mergeInto.
type worker struct {
	meters []*asym.Meter
	counts []int64
	errs   []int64
	sym    *asym.SymTracker
	// scratch[fi] is the FastAnswerer scratch of factory fi (nil for
	// factories without one or whose NewScratch returns nil). A scratch
	// depends only on the oracle's type, so a pooled worker's scratch
	// stays valid across snapshot swaps.
	scratch []any
	// batchSeen dedupes repeated (kind, u, v) queries within one chunk.
	// Cleared in getWorker, so entries never outlive the chunk. The key
	// carries the answering oracle's built epoch because one chunk can mix
	// strict and bounded-staleness queries for the same (kind, u, v) —
	// those may resolve to different oracle states and must never share an
	// entry.
	batchSeen map[bsKey]rcVal
	// fillSym isolates the symmetric peak of one cache-filling query so it
	// can be recorded for replay: it is Reset before each fill, and the
	// observed peak is pulsed onto sym (every query returns its footprint
	// to zero, so the worker's cumulative high-water is the max of
	// per-query peaks either way).
	fillSym *asym.SymTracker
	dedup   int64 // batch-local dedup hits, flushed by mergeInto
}

func (e *Engine) newWorker() *worker {
	w := &worker{
		meters:    make([]*asym.Meter, len(e.specs)),
		counts:    make([]int64, len(e.specs)),
		errs:      make([]int64, len(e.specs)),
		sym:       asym.NewSymTracker(e.sym),
		batchSeen: make(map[bsKey]rcVal, 64),
		fillSym:   asym.NewSymTracker(0),
	}
	for i := range w.meters {
		w.meters[i] = asym.NewMeter(e.omega)
	}
	return w
}

// getWorker takes a worker from the engine's pool (or builds one),
// equipping it with per-factory query scratch on first use.
func (e *Engine) getWorker(s *snapshot) *worker {
	w, _ := e.wpool.Get().(*worker)
	if w == nil {
		w = e.newWorker()
	}
	if w.scratch == nil {
		w.scratch = make([]any, len(e.factories))
		for i, fa := range s.fast {
			if fa != nil {
				w.scratch[i] = fa.NewScratch()
			}
		}
	}
	clear(w.batchSeen) // chunk-local: entries must not leak across batches
	return w
}

// putWorker resets the worker's accumulators (after mergeInto) and returns
// it to the pool. The scratch is deliberately kept — its grown buffers are
// the allocation win.
func (e *Engine) putWorker(w *worker) {
	for i := range w.meters {
		w.meters[i].Reset()
		w.counts[i] = 0
		w.errs[i] = 0
	}
	w.sym.Reset()
	e.wpool.Put(w)
}

// mergeInto folds the worker's per-kind totals into the engine aggregates.
func (w *worker) mergeInto(e *Engine) {
	for i := range e.kinds {
		if w.counts[i] == 0 && w.errs[i] == 0 {
			continue
		}
		e.kinds[i].meter.Merge(w.meters[i].Snapshot())
		e.kinds[i].count.Add(w.counts[i])
		e.kinds[i].errors.Add(w.errs[i])
		e.total.Add(w.counts[i])
	}
	if w.dedup != 0 {
		e.dedupHits.Add(w.dedup)
		w.dedup = 0
	}
}

// replay charges a memoized answer's recorded meter cost and symmetric
// peak onto the worker's state, making a cache hit telemetry-identical to
// the query that filled the entry.
//
//wec:noalloc
func (w *worker) replay(m *asym.Meter, v rcVal) oracle.AnswerVal {
	m.Merge(v.cost)
	if v.peak > 0 {
		w.sym.Acquire(int(v.peak))
		w.sym.Release(int(v.peak))
	}
	return v.av
}

// Shared Result.Bool targets: boolean answers point at one of these two
// immutable words instead of boxing a fresh bool per query. Results are
// read-only after Do returns, so sharing is safe.
var (
	boolTrueVal  = true
	boolFalseVal = false
	boolTrue     = &boolTrueVal
	boolFalse    = &boolFalseVal
)

// answer runs one query through dispatch, observing its wall-clock latency
// in the per-(graph, kind) histogram. The observation is pre-resolved
// atomics only (obs.Histogram.Observe allocates nothing), so this wrapper
// is as zero-alloc as the dispatch underneath it — the alloc_test.go gates
// hold with metrics enabled. Unknown-kind errors (agg < 0) have no kind
// series to observe into and are skipped; malformed-but-known-kind queries
// are observed (their error counts are exported separately).
//
//wec:noalloc
func (e *Engine) answer(s *snapshot, w *worker, q Query, labels *[]int32) Result {
	start := time.Now()
	res, agg := e.dispatch(s, w, q, labels)
	if agg >= 0 {
		e.met.qdur[agg].Observe(time.Since(start).Seconds())
	}
	return res
}

// dispatch runs one query against the snapshot's oracles using the worker's
// private meters, returning the result and the kind's aggregate index (-1
// for an unknown kind). Dispatch is by registered kind: the spec supplies
// the arity for validation, the kindRef the owning oracle. The single
// m.Write(1) charges the store of the answer into the batch's result slice
// (the output-sized write cost of the model); the oracles themselves write
// nothing during queries.
//
// labels, when non-nil, selects the zero-alloc path for oracles that
// implement oracle.FastAnswerer: results are built from shared bool words
// and a caller-owned label arena instead of boxing a value per query. The
// arena must have capacity for one label per remaining query in the
// caller's chunk — appends then never reallocate, so previously returned
// Result.Label pointers stay valid. If a caller undersizes the arena, the
// overflow labels are boxed individually (an allocation, not corruption)
// rather than appended through a reallocation that would dangle earlier
// Result.Label pointers. A nil labels (or an oracle without the
// capability) takes the boxed Answer path; answers and charged costs are
// identical on both.
//
//wec:noalloc
func (e *Engine) dispatch(s *snapshot, w *worker, q Query, labels *[]int32) (Result, int) {
	ref, ok := e.byKind[q.Kind]
	if !ok {
		// Unknown kinds are not attributable to a per-kind meter; count
		// them under no kind and report the error.
		return Result{Err: fmt.Sprintf("unknown query kind %q", q.Kind)}, -1 //wec:alloc malformed-query error path, not the hot answer path
	}
	n := int32(s.g.N())
	if q.U < 0 || q.U >= n || (e.specs[ref.agg].Pairwise && (q.V < 0 || q.V >= n)) {
		w.errs[ref.agg]++
		return Result{Err: fmt.Sprintf("vertex out of range [0,%d)", n)}, ref.agg //wec:alloc malformed-query error path, not the hot answer path
	}
	bounded := false
	switch q.Staleness {
	case "", StalenessStrict:
	case StalenessBounded:
		bounded = true
	default:
		w.errs[ref.agg]++
		return Result{Err: fmt.Sprintf("unknown staleness %q", q.Staleness)}, ref.agg //wec:alloc malformed-query error path, not the hot answer path
	}
	// Resolve the serving oracle: one nil check for fresh slots; for a
	// deferred slot, the lazily built instance, the stale one (bounded
	// queries only), or the single-flight on-demand build (lazy.go). ep is
	// the epoch the resolved oracle's state was built at — it keys both
	// result-cache layers, so strict and bounded answers, and answers from
	// different build generations, never share an entry.
	qo, fa, ep, err := e.resolveOracle(s, ref.fac, bounded)
	if err != nil {
		w.errs[ref.agg]++
		return Result{Err: err.Error()}, ref.agg //wec:alloc lazy-build failure path, not the hot answer path
	}
	m := w.meters[ref.agg]
	if labels != nil {
		if fa != nil {
			if w.scratch[ref.fac] == nil {
				// A lazily-booted slot had no oracle to take a scratch from
				// when this worker was equipped; fill it on first contact.
				w.scratch[ref.fac] = fa.NewScratch() //wec:alloc one-time per-worker scratch fill after a lazy build
			}
			// Result memoization, two layers: the chunk-local batchSeen map
			// (duplicates inside one batch), then the engine's epoch-keyed
			// shared table. Hits replay the memoized query's recorded cost
			// and symmetric peak, so per-kind telemetry is identical to
			// recomputing; misses compute, record, and publish. Errors are
			// never memoized.
			key := rcKey{agg: int32(ref.agg), u: q.U, v: q.V}
			bkey := bsKey{k: key, epoch: ep}
			var av oracle.AnswerVal
			if hit, ok := w.batchSeen[bkey]; ok {
				w.dedup++
				av = w.replay(m, hit)
			} else if hit, ok := e.rcache.get(ep, key); ok {
				e.rcHits.Add(1)
				w.batchSeen[bkey] = hit
				av = w.replay(m, hit)
			} else {
				e.rcMisses.Add(1)
				before := m.Snapshot()
				w.fillSym.Reset()
				var err error
				av, err = fa.AnswerFast(m, w.fillSym, oracle.Query{Kind: q.Kind, U: q.U, V: q.V}, w.scratch[ref.fac])
				// Pulse the fill's isolated peak onto the worker tracker:
				// queries return their footprint to zero, so the worker's
				// high-water is the max of per-query peaks either way.
				if peak := w.fillSym.HighWater(); peak > 0 {
					w.sym.Acquire(int(peak))
					w.sym.Release(int(peak))
				}
				if err != nil {
					w.errs[ref.agg]++
					return Result{Err: err.Error()}, ref.agg
				}
				val := rcVal{av: av, cost: m.Snapshot().Sub(before), peak: w.fillSym.HighWater()}
				w.batchSeen[bkey] = val
				if e.rcache.put(ep, key, val) {
					e.rcEvicts.Add(1)
				}
			}
			m.Write(1) // store the answer (output-sized cost)
			w.counts[ref.agg]++
			var res Result
			switch {
			case av.IsBool && av.Bool:
				res = Result{Bool: boolTrue}
			case av.IsBool:
				res = Result{Bool: boolFalse}
			case len(*labels) < cap(*labels):
				*labels = append(*labels, av.Label)
				res = Result{Label: &(*labels)[len(*labels)-1]}
			default:
				// Undersized arena (a caller bug — both call sites size it to
				// one slot per query): box this label rather than let append
				// reallocate, which would silently dangle every previously
				// returned Result.Label into the old array.
				lbl := av.Label
				res = Result{Label: &lbl} //wec:alloc arena-overflow fallback; both call sites size the arena to avoid it
			}
			if bounded {
				res.Epoch = ep
			}
			return res, ref.agg
		}
	}
	ans, err := qo.Answer(m, w.sym, oracle.Query{Kind: q.Kind, U: q.U, V: q.V})
	if err != nil {
		w.errs[ref.agg]++
		return Result{Err: err.Error()}, ref.agg
	}
	m.Write(1) // store the answer (output-sized cost)
	w.counts[ref.agg]++
	res := Result{Bool: ans.Bool, Label: ans.Label}
	if bounded {
		res.Epoch = ep
	}
	return res, ref.agg
}

// Do answers a batch of queries. The snapshot pointer is loaded once, so
// every query in the batch is answered against the same epoch even if an
// update publishes mid-batch. The slice is split into up to Workers
// contiguous chunks which run as tasks on the engine's worker pool — the
// bound shared across all graphs of a Registry — each on its own worker
// state. Do is safe to call from many goroutines at once; time spent
// waiting for pool slots is recorded in the admission telemetry.
func (e *Engine) Do(queries []Query) []Result {
	out, _ := e.DoWait(queries)
	return out
}

// DoWait is Do returning also the time this batch spent waiting for pool
// worker slots — the HTTP layer splits a traced batch request into its
// pool_queue and answer spans with it.
func (e *Engine) DoWait(queries []Query) ([]Result, time.Duration) {
	out := make([]Result, len(queries))
	if len(queries) == 0 {
		return out, 0
	}
	e.met.batchSize.Observe(float64(len(queries)))
	s := e.snap.Load()
	chunk := (len(queries) + e.workers - 1) / e.workers
	nchunks := (len(queries) + chunk - 1) / chunk
	wait := e.pool.Run(nchunks, func(ci int) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		if e.legacy {
			w := e.newWorker()
			for i := lo; i < hi; i++ {
				out[i] = e.answer(s, w, queries[i], nil)
			}
			w.mergeInto(e)
			return
		}
		w := e.getWorker(s)
		// One label arena per chunk, sized so appends never reallocate
		// (at most one label per query) — Result.Label pointers into it
		// stay valid for the caller.
		labels := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out[i] = e.answer(s, w, queries[i], &labels)
		}
		w.mergeInto(e)
		e.putWorker(w)
	})
	e.queueWaitNs.Add(int64(wait))
	e.met.queueWait.Observe(wait.Seconds())
	return out, wait
}

// Query answers a single query (a one-element batch without the pool
// round-trip).
func (e *Engine) Query(q Query) Result {
	s := e.snap.Load()
	if e.legacy {
		w := e.newWorker()
		res := e.answer(s, w, q, nil)
		w.mergeInto(e)
		return res
	}
	w := e.getWorker(s)
	labels := make([]int32, 0, 1)
	res := e.answer(s, w, q, &labels)
	w.mergeInto(e)
	e.putWorker(w)
	return res
}

// Stats snapshots the engine's cumulative serving telemetry. The snapshot
// pointer is read under the update lock (publishes also happen under it),
// so the reported epoch is consistent with the rebuild counters and
// history.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	sn := e.snap.Load()
	s := Stats{
		GraphN:       sn.g.N(),
		GraphM:       sn.g.M(),
		Omega:        e.omega,
		K:            e.k,
		Workers:      e.workers,
		BuildConn:    e.costByName(sn, "conn"),
		BuildBicc:    e.costByName(sn, "bicc"),
		BuildCosts:   e.buildCosts(sn),
		Queries:      make(map[string]KindStats, len(e.specs)),
		TotalQueries: e.total.Load(),
		Epoch:        sn.epoch,
	}
	s.PendingUpdates = e.unapplied
	s.TotalRebuilds = e.nRebuilds
	s.IncrementalRebuilds = e.nIncremental
	if len(e.stratCounts) > 0 {
		s.Strategies = make(map[string]map[string]int64, len(e.stratCounts))
		for name, m := range e.stratCounts {
			inner := make(map[string]int64, len(m))
			for strat, c := range m {
				inner[strat] = c
			}
			s.Strategies[name] = inner
		}
	}
	s.EdgesAdded = e.edgesAdded
	s.EdgesRemoved = e.edgesRemoved
	s.Rebuilds = append([]RebuildRecord(nil), e.history...)
	e.mu.Unlock()
	s.RebuildsAvoided = e.rebuildsAvoided.Load()
	s.LazyRebuilds = e.lazyBuilds.Load()
	s.OracleEpochs = e.oracleEpochs(sn)
	s.NumComponents, s.NumBCC = sn.counts()
	s.ConnChainDepth = connChainDepthOf(sn)
	for i, spec := range e.specs {
		s.Queries[string(spec.Kind)] = KindStats{
			Count:  e.kinds[i].count.Load(),
			Errors: e.kinds[i].errors.Load(),
			Cost:   e.kinds[i].meter.Snapshot(),
		}
	}
	s.ResultCache = ResultCacheStats{
		Hits:       e.rcHits.Load(),
		Misses:     e.rcMisses.Load(),
		Evictions:  e.rcEvicts.Load(),
		BatchDedup: e.dedupHits.Load(),
	}
	// Cluster-cache counters: retired snapshots' totals (folded in at
	// publish time, update.go) plus every instance still live in the
	// current snapshot (a deferred slot can have two: the stale base that
	// bounded queries use and the lazily built replacement).
	s.ClusterCache = CacheStats{Hits: e.ccHits.Load(), Misses: e.ccMisses.Load(), Evictions: e.ccEvicts.Load()}
	for fi := range sn.oracles {
		sn.liveOracles(fi, func(o oracle.QueryOracle) {
			if cs, ok := o.(oracle.CacheStatser); ok {
				h, ms, ev := cs.CacheStats()
				s.ClusterCache.Hits += h
				s.ClusterCache.Misses += ms
				s.ClusterCache.Evictions += ev
			}
		})
	}
	s.Admission = AdmissionStats{
		MaxInflight: int(e.maxInflight),
		Inflight:    e.inflight.Load(),
		Rejected:    e.rejected.Load(),
		QueueWait:   time.Duration(e.queueWaitNs.Load()),
	}
	s.Pool = e.pool.Stats()
	return s
}
