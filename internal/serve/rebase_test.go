package serve

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestRebaseEveryScheduling: with RebaseEvery=3, chained insertion-only
// batches must go patch, patch, patch, REBASE, patch, ... — the re-base
// collapsing the chain (depth back to 0, remap gone) while answers stay
// equivalent to a from-scratch engine.
func TestRebaseEveryScheduling(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(8), 8)
	e := New(g, Config{Omega: 16, Seed: 5, RebaseEvery: 3})
	defer e.Close()
	n := g.N()
	rng := graph.NewRNG(31)

	want := []string{
		StrategyPatchedInsert, StrategyPatchedInsert, StrategyPatchedInsert,
		StrategyRebased,
		StrategyPatchedInsert, StrategyPatchedInsert, StrategyPatchedInsert,
	}
	for i := range want {
		u := Update{Add: [][2]int32{{int32(rng.Intn(n)), int32(rng.Intn(n))}}}
		if _, err := e.Update(u, true); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	st := e.Stats()
	if len(st.Rebuilds) != len(want) {
		t.Fatalf("%d rebuild records, want %d", len(st.Rebuilds), len(want))
	}
	for i, r := range st.Rebuilds {
		if r.Strategies["conn"] != want[i] {
			t.Fatalf("batch %d conn strategy %q, want %q", i+1, r.Strategies["conn"], want[i])
		}
	}
	if st.Strategies["conn"][StrategyRebased] != 1 || st.Strategies["conn"][StrategyPatchedInsert] != 6 {
		t.Fatalf("conn counters %+v", st.Strategies["conn"])
	}
	// After the re-base the chain restarted: depth reflects batches since.
	if _, _, depth := e.ConnDyn(); depth != 3 {
		t.Fatalf("chain depth %d, want 3", depth)
	}

	fresh := New(e.Graph(), Config{Omega: 16, Seed: 5})
	defer fresh.Close()
	assertEquivalent(t, e, fresh, 7)

	// RebaseEvery < 0 disables the schedule entirely.
	e2 := New(g, Config{Omega: 16, Seed: 5, RebaseEvery: -1})
	defer e2.Close()
	for i := 0; i < 5; i++ {
		if _, err := e2.Update(Update{Add: [][2]int32{{int32(rng.Intn(n)), int32(rng.Intn(n))}}}, true); err != nil {
			t.Fatal(err)
		}
	}
	if c := e2.Stats().Strategies["conn"]; c[StrategyRebased] != 0 || c[StrategyPatchedInsert] != 5 {
		t.Fatalf("disabled re-base counters %+v", c)
	}
}

// TestInitialForestAdoption: a recovered forest + chain depth handed to New
// is adopted by the conn oracle (so the re-base schedule resumes), while an
// invalid forest is dropped in favor of the fresh seed.
func TestInitialForestAdoption(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(10), 4)
	donor := New(g, Config{Omega: 16, Seed: 5})
	_, persisted, _ := donor.ConnDyn()
	donor.Close()
	if len(persisted) == 0 {
		t.Fatal("donor carries no forest")
	}

	e := New(g, Config{Omega: 16, Seed: 5, InitialForest: persisted, InitialChainDepth: 9})
	defer e.Close()
	remap, forest, depth := e.ConnDyn()
	if depth != 9 {
		t.Fatalf("adopted depth %d, want 9", depth)
	}
	if !reflect.DeepEqual(forest, persisted) {
		t.Fatal("adopted forest differs from the persisted one")
	}
	if remap != nil {
		t.Fatalf("recovered oracle invented a remap: %v", remap)
	}

	// Stale forest (edge not in the graph): silently dropped, fresh seed
	// kept, chain restarts at 0.
	bad := append(append([][2]int32{}, persisted[1:]...), [2]int32{0, 25})
	e2 := New(g, Config{Omega: 16, Seed: 5, InitialForest: bad, InitialChainDepth: 9})
	defer e2.Close()
	_, forest2, depth2 := e2.ConnDyn()
	if depth2 != 0 || len(forest2) != len(persisted) {
		t.Fatalf("stale forest: depth=%d forest=%d edges (want fresh seed)", depth2, len(forest2))
	}

	// And the adopted engine still absorbs deletions through it.
	cut := g.Edges()[0] // a cycle edge: split-free
	if _, err := e.Update(Update{Remove: [][2]int32{cut}}, true); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Strategies["conn"][StrategyPatchedDelete] != 1 {
		t.Fatalf("adopted forest did not absorb the deletion: %+v", st.Strategies["conn"])
	}
}
