package serve

import (
	"testing"

	"repro/internal/lintdoc"
)

// TestExportedAPIDocumented enforces godoc coverage on this package's
// exported surface (revive "exported"-rule semantics, run from go test so
// no linter install is needed). The serving layer is the repository's
// public face — every exported identifier must say what it does.
func TestExportedAPIDocumented(t *testing.T) {
	missing, err := lintdoc.Check(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}
