package serve

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/oracle"
)

// This file is the serving layer's durability seam. The engine and
// registry never touch disk themselves; they call these narrow interfaces
// at the three moments that matter — an update batch is accepted, a
// snapshot epoch publishes, a graph is created or deleted — and
// internal/store implements them (cmd/oracled wires the two together, so
// serve stays free of any on-disk format knowledge).
//
// Ordering contract with the engine:
//
//   - LogUpdate is called under the engine's update lock, after the batch
//     validated and BEFORE it is staged: a batch the client saw accepted
//     is in the WAL. A LogUpdate error rejects the batch (ErrPersist →
//     HTTP 500) with nothing staged.
//   - EpochPublished is called from the background rebuild goroutine after
//     each snapshot swap, outside the engine lock, with the published
//     graph and the connectivity oracle's remap table — everything a
//     store needs to write a compacted snapshot. It must tolerate running
//     concurrently with LogUpdate calls for later sequence numbers.
//   - SaveSnapshot is the forced variant (creation-time initial snapshot);
//     its error fails the graph build rather than serving a graph whose
//     durability promise cannot be kept.

// GraphPersister is the durable log of one graph. The dynamic conn state
// handed to EpochPublished/SaveSnapshot — label remap table, maintained
// spanning forest, incremental patch-chain depth — is what store snapshot
// format v2 carries so recovery resumes the update machinery incrementally
// instead of starting a fresh chain.
type GraphPersister interface {
	// LogUpdate durably appends one accepted update batch before the
	// engine stages it. seq is the batch's staging sequence number
	// (monotonic per graph, resuming across restarts).
	LogUpdate(seq int64, add, remove [][2]int32) error
	// EpochPublished records that snapshot epoch `epoch`, folding updates
	// through seq, is now served; implementations use it to append a
	// commit record and to decide WAL compaction. dyn supplies the conn
	// dynamic state on demand — materializing the forest edge list is
	// O(F log F), so implementations call it only when they actually
	// write a snapshot (a compaction trigger fired), not on every epoch.
	EpochPublished(epoch, seq int64, g *graph.Graph, dyn func() (connRemap map[int32]int32, forest [][2]int32, chainDepth int))
	// LogAbort durably records that the staged batches in the inclusive
	// sequence range [fromSeq, toSeq] were dropped by a failed rebuild:
	// their updaters were told they failed, so recovery must not
	// re-apply their logged update records. Called under the engine's
	// update lock, before the batches' staged deltas are released.
	LogAbort(fromSeq, toSeq int64) error
	// SaveSnapshot forces a full snapshot of the given state.
	SaveSnapshot(epoch, seq int64, g *graph.Graph, connRemap map[int32]int32, forest [][2]int32, chainDepth int) error
}

// RegistryPersister records fleet lifecycle events (the durable half of
// the /graphs API).
type RegistryPersister interface {
	// CreateGraph durably registers a graph and returns its persister.
	// specJSON is the creation GraphSpec in its own wire encoding (the
	// registry marshals it), stored so recovery can rebuild the engine
	// with the same parameters.
	CreateGraph(name string, specJSON []byte) (GraphPersister, error)
	// DeleteGraph durably unregisters a graph and removes its data.
	DeleteGraph(name string) error
}

// ErrPersist is returned by Update when the durable log rejects the batch;
// the HTTP layer maps it to 500 (the daemon cannot keep its durability
// promise, which is a server fault, not a client one).
var ErrPersist = errors.New("serve: durable log write failed")

// ErrRebuildFailed wraps a server-side rebuild failure (e.g. a plugged-in
// oracle's rebuild erroring or panicking) reported to wait=true updaters.
// The HTTP layer maps it to 500: the batch was valid, the server failed to
// apply it — the ROADMAP wart of reporting it as a 400 is gone.
var ErrRebuildFailed = errors.New("serve: rebuild failed")

// connDynOf extracts the connectivity oracle's dynamic state from a
// snapshot: the label remap table (nil when empty), the maintained
// spanning forest (nil when the oracle carries none), and the incremental
// patch-chain depth. All zero values when no conn-like factory is
// registered.
func connDynOf(s *snapshot) (remap map[int32]int32, forest [][2]int32, chainDepth int) {
	for _, o := range s.oracles {
		a, ok := o.(interface{ Remap() map[int32]int32 })
		if !ok {
			continue
		}
		remap = a.Remap()
		if fc, ok := o.(oracle.ForestCarrier); ok {
			forest = fc.ForestEdges()
		}
		if ct, ok := o.(interface{ ChainDepth() int }); ok {
			chainDepth = ct.ChainDepth()
		}
		return remap, forest, chainDepth
	}
	return nil, nil, 0
}

// connChainDepthOf probes just the chain depth — the cheap slice of the
// dynamic state for telemetry paths (/stats polls must not pay connDynOf's
// remap copy and forest materialization to read one int).
func connChainDepthOf(s *snapshot) int {
	for _, o := range s.oracles {
		if ct, ok := o.(interface{ ChainDepth() int }); ok {
			return ct.ChainDepth()
		}
	}
	return 0
}
