package serve

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// Tests of the deferred (lazy) bicc rebuild path: long-churn equivalence
// with from-scratch builds, the bounded-staleness answer contract, the
// single-flight build guarantee, and lazy boot.

// biccProbe returns a strict query batch covering every bicc-family kind
// for a few vertex pairs — issuing it forces a deferred slot to build.
func biccProbe(n int, seed uint64) []Query {
	rng := graph.NewRNG(seed)
	var qs []Query
	for j := 0; j < 8; j++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		qs = append(qs,
			Query{Kind: KindBridge, U: u, V: v},
			Query{Kind: KindArticulation, U: u},
			Query{Kind: KindBiconnected, U: u, V: v},
			Query{Kind: KindTwoEdgeConnected, U: u, V: v},
		)
	}
	return qs
}

// TestLazyChurnEquivalence drives hundreds of mixed update batches through
// the engine, forcing the deferred bicc slot to build at every epoch (each
// batch is followed by strict bicc-family queries), and checks the full
// answer surface against a from-scratch engine over the same graph. This is
// the end-to-end correctness argument for the lazy rung: deferral plus
// query-triggered rebuild must be answer-for-answer identical to the old
// rebuild-every-epoch engine.
func TestLazyChurnEquivalence(t *testing.T) {
	const n = 48
	batches := 500
	if testing.Short() {
		batches = 100
	}
	g := graph.GNM(n, 72, 11, false)
	e := New(g, Config{Omega: 16, Seed: 5})
	defer e.Close()
	rng := graph.NewRNG(17)

	lazySeen := false
	for b := 0; b < batches; b++ {
		var u Update
		for j := 0; j < 3; j++ {
			u.Add = append(u.Add, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}
		if b%2 == 1 {
			es := e.Graph().Edges()
			u.Remove = append(u.Remove, es[rng.Intn(len(es))])
		}
		if _, err := e.Update(u, true); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		st := e.Stats()
		switch st.Rebuilds[len(st.Rebuilds)-1].Strategies["bicc"] {
		case StrategyLazy:
			lazySeen = true
		case StrategyFull, StrategyRebased:
			t.Fatalf("batch %d: bicc rebuilt on the publish path: %+v",
				b, st.Rebuilds[len(st.Rebuilds)-1].Strategies)
		}
		// Force the deferred slot to build, then compare every kind against
		// a from-scratch engine over the same graph. Deep comparison every
		// 25th batch (a fresh engine build per batch would dominate the
		// test); the probe alone still validates the build path each epoch.
		res := e.Do(biccProbe(n, uint64(b)))
		for i, r := range res {
			if r.Err != "" {
				t.Fatalf("batch %d: probe %d: %s", b, i, r.Err)
			}
		}
		if b%25 == 0 || b == batches-1 {
			fresh := New(e.Graph(), Config{Omega: 16, Seed: 21})
			assertEquivalent(t, e, fresh, uint64(b)*13+1)
			fresh.Close()
		}
	}
	if !lazySeen {
		t.Fatal("workload never exercised the lazy rung")
	}
	st := e.Stats()
	if st.LazyRebuilds == 0 {
		t.Fatal("no query-triggered bicc build was recorded")
	}
	if st.OracleEpochs["bicc"] != st.Epoch {
		t.Fatalf("bicc epoch %d after forced build, want %d", st.OracleEpochs["bicc"], st.Epoch)
	}
}

// TestBoundedStalenessAnswers pins the bounded contract: while the bicc
// slot is deferred, a bounded query answers from the last-built instance —
// matching a reference engine over the OLD graph — and reports that
// instance's built epoch; it must not trigger the deferred build. A strict
// query then builds and answers for the new graph.
func TestBoundedStalenessAnswers(t *testing.T) {
	// Two cycles: vertices 0..7 and 8..15. The update bridges them, which
	// changes bridge answers on the connecting edge and keeps the patch
	// predicates from absorbing the batch.
	g := graph.Disconnected(graph.Cycle(8), 2)
	e := New(g, Config{Omega: 16, Seed: 5})
	defer e.Close()
	ref := New(g, Config{Omega: 16, Seed: 9}) // frozen at the old graph
	defer ref.Close()

	if _, err := e.Update(Update{Add: [][2]int32{{0, 8}}}, true); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Rebuilds[len(st.Rebuilds)-1].Strategies["bicc"] != StrategyLazy {
		t.Fatalf("merging insertion not deferred: %+v", st.Rebuilds[len(st.Rebuilds)-1].Strategies)
	}
	if st.OracleEpochs["bicc"] != 0 || st.Epoch != 1 {
		t.Fatalf("epochs: bicc=%d published=%d, want 0/1", st.OracleEpochs["bicc"], st.Epoch)
	}

	// Bounded answers == the old graph's answers, tagged with epoch 0.
	qs := biccProbe(g.N(), 3)
	for i := range qs {
		qs[i].Staleness = StalenessBounded
	}
	got, want := e.Do(qs), ref.Do(qs)
	for i := range qs {
		if got[i].Err != "" || want[i].Err != "" {
			t.Fatalf("probe %d errored: %q / %q", i, got[i].Err, want[i].Err)
		}
		if *got[i].Bool != *want[i].Bool {
			t.Fatalf("bounded %s(%d,%d) = %v, old-graph reference %v",
				qs[i].Kind, qs[i].U, qs[i].V, *got[i].Bool, *want[i].Bool)
		}
		if got[i].Epoch != 0 {
			t.Fatalf("bounded answer tagged epoch %d, want 0", got[i].Epoch)
		}
	}
	if st := e.Stats(); st.LazyRebuilds != 0 {
		t.Fatalf("bounded queries triggered %d builds, want 0", st.LazyRebuilds)
	}

	// Strict now builds and answers for the new graph: (0,8) is a bridge.
	r := e.Query(Query{Kind: KindBridge, U: 0, V: 8})
	if r.Err != "" || !*r.Bool {
		t.Fatalf("strict bridge(0,8) after merge: %+v", r)
	}
	st = e.Stats()
	if st.LazyRebuilds != 1 || st.OracleEpochs["bicc"] != 1 {
		t.Fatalf("after strict query: lazy=%d bicc epoch=%d, want 1/1", st.LazyRebuilds, st.OracleEpochs["bicc"])
	}
	// Bounded at a fresh (built) slot reports the snapshot epoch.
	rb := e.Query(Query{Kind: KindBridge, U: 0, V: 8, Staleness: StalenessBounded})
	if rb.Err != "" || !*rb.Bool || rb.Epoch != 1 {
		t.Fatalf("bounded after build: %+v, want bridge=true epoch=1", rb)
	}
	// Conn-family kinds never defer; their bounded answers are just the
	// current snapshot's, tagged with its epoch.
	rc := e.Query(Query{Kind: KindConnected, U: 0, V: 8, Staleness: StalenessBounded})
	if rc.Err != "" || !*rc.Bool || rc.Epoch != 1 {
		t.Fatalf("bounded connected: %+v", rc)
	}
	// An unknown staleness value is a per-query error, not a panic.
	if r := e.Query(Query{Kind: KindBridge, U: 0, V: 1, Staleness: "eventual"}); r.Err == "" {
		t.Fatal("invalid staleness accepted")
	}
}

// TestLazySingleFlight floods a deferred slot with concurrent strict
// queries and asserts exactly one build ran: the slot mutex makes the first
// query pay while the rest wait and reuse. Run under -race in CI.
func TestLazySingleFlight(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(48), 2) // vertices 0..47 and 48..95
	e := New(g, Config{Omega: 16, Seed: 5})
	defer e.Close()
	// A component-merging edge is guaranteed to be refused by the patch
	// predicates, so the slot is deterministically deferred.
	if _, err := e.Update(Update{Add: [][2]int32{{0, 48}}}, true); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Rebuilds[len(st.Rebuilds)-1].Strategies["bicc"] != StrategyLazy {
		t.Fatalf("batch not deferred: %+v", st.Rebuilds[len(st.Rebuilds)-1].Strategies)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make([]string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, r := range e.Do(biccProbe(96, uint64(w))) {
				if r.Err != "" {
					errs[w] = r.Err
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, msg := range errs {
		if msg != "" {
			t.Fatalf("worker %d: %s", w, msg)
		}
	}
	if st := e.Stats(); st.LazyRebuilds != 1 {
		t.Fatalf("%d builds ran under %d concurrent probes, want exactly 1 (single-flight)", st.LazyRebuilds, workers)
	}
}

// TestLazyBootDefersBicc pins Config.LazyBoot (what the registry sets for
// recovered graphs): the engine comes up with bicc unbuilt (-1 in the epoch
// map, NumBCC 0), serves conn queries without building it, and builds it on
// the first bicc-family query.
func TestLazyBootDefersBicc(t *testing.T) {
	g := graph.GNM(64, 96, 7, false)
	e := New(g, Config{Omega: 16, Seed: 5, LazyBoot: true})
	defer e.Close()

	st := e.Stats()
	if got := st.OracleEpochs["bicc"]; got != -1 {
		t.Fatalf("boot bicc epoch %d, want -1 (never built)", got)
	}
	if st.BuildBicc.Writes != 0 || st.NumBCC != 0 {
		t.Fatalf("lazy boot paid for bicc: writes=%d numBCC=%d", st.BuildBicc.Writes, st.NumBCC)
	}
	if r := e.Query(Query{Kind: KindConnected, U: 0, V: 1}); r.Err != "" {
		t.Fatalf("conn query on lazy-booted engine: %s", r.Err)
	}
	if st := e.Stats(); st.LazyRebuilds != 0 {
		t.Fatal("conn query triggered the deferred bicc build")
	}

	fresh := New(g, Config{Omega: 16, Seed: 5})
	defer fresh.Close()
	assertEquivalent(t, e, fresh, 31) // forces the build via bicc kinds
	st = e.Stats()
	if st.LazyRebuilds != 1 || st.OracleEpochs["bicc"] != st.Epoch {
		t.Fatalf("after bicc queries: lazy=%d epoch=%d/%d", st.LazyRebuilds, st.OracleEpochs["bicc"], st.Epoch)
	}
	if st.BuildBicc.Writes == 0 {
		t.Fatal("deferred build cost did not surface in BuildBicc")
	}

	// EagerRebuilds wins over LazyBoot: the baseline engine builds at boot.
	eager := New(g, Config{Omega: 16, Seed: 5, LazyBoot: true, EagerRebuilds: true})
	defer eager.Close()
	if st := eager.Stats(); st.OracleEpochs["bicc"] != 0 || st.BuildBicc.Writes == 0 {
		t.Fatalf("eager engine deferred its boot build: %+v", st.OracleEpochs)
	}
}
