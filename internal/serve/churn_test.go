package serve

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

// TestChurn1kMixedZeroConnFullRebuilds is the acceptance gate of the
// update-strategy engine: a long run of mixed insert/delete batches —
// constructed so deletions rarely hit the maintained spanning forest and
// never split a component — must complete with ZERO full rebuilds of the
// conn oracle (every deletion absorbed by forest maintenance, every chain
// collapse a scheduled re-base), with every post-swap connectivity answer
// matching a from-scratch reference partition.
//
// 1000 batches normally; shortened under -short and under the race
// detector (the CI race gate runs this package with every check intact,
// just fewer iterations).
func TestChurn1kMixedZeroConnFullRebuilds(t *testing.T) {
	batches := 1000
	if testing.Short() || raceEnabled {
		batches = 200
	}
	const rebaseEvery = 100

	// Redundant islands (3-regular) so replacement edges are plentiful.
	g := graph.Disconnected(graph.RandomRegular(64, 3, 5), 4)
	n := g.N()
	e := New(g, Config{Omega: 16, Seed: 7, RebaseEvery: rebaseEvery})
	defer e.Close()

	edges := append([][2]int32{}, g.Edges()...)
	// ref mirrors connectivity; pool holds removable cycle-adds (edges that
	// closed a cycle when inserted, hence non-forest at insert time).
	var pool [][2]int32
	rng := graph.NewRNG(20260730)

	refPartition := func() []int32 {
		uf := unionfind.NewRef(n)
		for _, ed := range edges {
			uf.Union(ed[0], ed[1])
		}
		return uf.Components()
	}

	depth := 0
	expectConn := map[string]int64{}
	removals, forestHits := 0, 0

	for b := 1; b <= batches; b++ {
		var u Update
		hasRemove := false
		switch b % 3 {
		case 1, 0: // insert phases feed the pool
			uf := unionfind.NewRef(n)
			for _, ed := range edges {
				uf.Union(ed[0], ed[1])
			}
			for j := 0; j < 6; j++ {
				ed := [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
				u.Add = append(u.Add, ed)
				if ed[0] != ed[1] && !uf.Union(ed[0], ed[1]) {
					pool = append(pool, graph.NormEdge(ed))
				}
			}
		default: // delete phase: mostly non-forest pool edges, rare forest hits
			// The live forest (from the published snapshot) shapes the
			// workload: pool edges promoted into the forest by earlier
			// replacement searches are skipped, and a deliberate slice of
			// ~1-in-25 removals targets a forest edge on purpose — the
			// acceptance criterion's "<10% of deletions hit forest edges"
			// profile, with the replacement path still exercised.
			_, forest, _ := e.ConnDyn()
			fset := map[[2]int32]bool{}
			for _, fe := range forest {
				fset[fe] = true
			}
			working := append([][2]int32{}, edges...)
			for j := 0; j < 6; j++ {
				var cand [2]int32
				if removals%25 == 24 && len(forest) > 0 {
					cand = forest[rng.Intn(len(forest))]
				} else if len(pool) > 0 {
					pi := rng.Intn(len(pool))
					cand = pool[pi]
					pool[pi] = pool[len(pool)-1]
					pool = pool[:len(pool)-1]
					if fset[cand] {
						continue // promoted into the forest since it was added
					}
				} else {
					break
				}
				idx := indexOfEdge(working, cand)
				if idx < 0 || !graph.RemovalPreservesConnectivity(n, working, idx) {
					continue // already removed this batch, or a would-be split
				}
				u.Remove = append(u.Remove, cand)
				if fset[cand] {
					forestHits++
				}
				working[idx] = working[len(working)-1]
				working = working[:len(working)-1]
				removals++
			}
			if len(u.Remove) == 0 { // degenerate: keep the batch non-empty
				u.Add = append(u.Add, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
			}
			hasRemove = len(u.Remove) > 0
		}
		switch {
		case depth >= rebaseEvery:
			expectConn[StrategyRebased]++
			depth = 0
		case hasRemove:
			expectConn[StrategyPatchedDelete]++
			depth++
		default:
			expectConn[StrategyPatchedInsert]++
			depth++
		}

		if _, err := e.Update(u, true); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		// Apply to the mirror.
		for _, ad := range u.Add {
			edges = append(edges, ad)
		}
		for _, r := range u.Remove {
			idx := indexOfEdge(edges, graph.NormEdge(r))
			if idx < 0 {
				t.Fatalf("batch %d: mirror lost edge %v", b, r)
			}
			edges[idx] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
		}

		// Post-swap verification against the from-scratch reference
		// partition: all component labels plus sampled pair queries.
		want := refPartition()
		qs := make([]Query, 0, n+32)
		for v := 0; v < n; v++ {
			qs = append(qs, Query{Kind: KindComponent, U: int32(v)})
		}
		type pair struct{ u, v int32 }
		var pairs []pair
		for j := 0; j < 32; j++ {
			pairs = append(pairs, pair{int32(rng.Intn(n)), int32(rng.Intn(n))})
			qs = append(qs, Query{Kind: KindConnected, U: pairs[j].u, V: pairs[j].v})
		}
		res := e.Do(qs)
		got := make([]int32, n)
		for v := 0; v < n; v++ {
			if res[v].Err != "" || res[v].Label == nil {
				t.Fatalf("batch %d: component(%d): %+v", b, v, res[v])
			}
			got[v] = *res[v].Label
		}
		if !samePartitionServe(got, want) {
			t.Fatalf("batch %d: component partition diverges from reference", b)
		}
		for j, p := range pairs {
			r := res[n+j]
			if r.Err != "" || r.Bool == nil || *r.Bool != (want[p.u] == want[p.v]) {
				t.Fatalf("batch %d: connected(%d,%d) = %+v, reference %v", b, p.u, p.v, r, want[p.u] == want[p.v])
			}
		}
	}

	st := e.Stats()
	conn := st.Strategies["conn"]
	if conn[StrategyFull] != 0 {
		t.Fatalf("conn was fully rebuilt %d times (want 0): %+v", conn[StrategyFull], conn)
	}
	for _, s := range []string{StrategyPatchedInsert, StrategyPatchedDelete, StrategyRebased} {
		if conn[s] != expectConn[s] {
			t.Fatalf("conn %q count %d, want %d (counters %+v)", s, conn[s], expectConn[s], conn)
		}
	}
	// The workload above queries only conn kinds, so the deferrable bicc
	// oracle must never rebuild on the publish path: every batch is either
	// absorbed as a provable no-op patch or deferred lazily — and with no
	// bicc-family query ever arriving, no deferred build runs either.
	bicc := st.Strategies["bicc"]
	if bicc[StrategyFull] != 0 || bicc[StrategyRebased] != 0 {
		t.Fatalf("bicc rebuilt on the publish path: %+v", bicc)
	}
	if got := bicc[StrategyLazy] + bicc[StrategyPatchedInsert] + bicc[StrategyPatchedDelete]; got != int64(batches) {
		t.Fatalf("bicc deferred/patched %d of %d batches: %+v", got, batches, bicc)
	}
	if st.LazyRebuilds != 0 {
		t.Fatalf("lazy rebuilds %d, want 0 (no bicc-family query was sent)", st.LazyRebuilds)
	}
	if st.RebuildsAvoided != int64(batches) {
		t.Fatalf("rebuilds avoided %d, want %d", st.RebuildsAvoided, batches)
	}
	if st.TotalRebuilds != int64(batches) || st.Epoch != int64(batches) || st.PendingUpdates != 0 {
		t.Fatalf("rebuilds=%d epoch=%d pending=%d, want %d/%d/0",
			st.TotalRebuilds, st.Epoch, st.PendingUpdates, batches, batches)
	}
	if removals == 0 || expectConn[StrategyRebased] == 0 {
		t.Fatalf("workload lost its teeth: %d removals, %d rebases", removals, expectConn[StrategyRebased])
	}
	hitRatio := float64(forestHits) / float64(removals)
	t.Logf("%d batches: %d removals, %d forest hits (%.1f%%), conn strategies %+v",
		batches, removals, forestHits, 100*hitRatio, conn)
	if hitRatio >= 0.10 {
		t.Fatalf("forest-hit ratio %.1f%% ≥ 10%% — the pool bias stopped shaping the workload", 100*hitRatio)
	}
}

// indexOfEdge finds one copy of the normalized edge in the multiset.
func indexOfEdge(edges [][2]int32, key [2]int32) int {
	for i, e := range edges {
		if graph.NormEdge(e) == key {
			return i
		}
	}
	return -1
}
