package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// labelsOf queries the component label of every vertex through the public
// batch path.
func labelsOf(e *Engine) []int32 {
	n := e.Graph().N()
	qs := make([]Query, n)
	for v := 0; v < n; v++ {
		qs[v] = Query{Kind: KindComponent, U: int32(v)}
	}
	out := make([]int32, n)
	for i, r := range e.Do(qs) {
		out[i] = *r.Label
	}
	return out
}

// samePartitionServe checks that two labelings induce the same partition.
func samePartitionServe(a, b []int32) bool {
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := bwd[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

// assertEquivalent compares the dynamic engine's answers with a
// from-scratch engine over the same graph: boolean kinds must agree
// exactly, component labels as a partition.
func assertEquivalent(t *testing.T, dyn, fresh *Engine, seed uint64) {
	t.Helper()
	if !samePartitionServe(labelsOf(dyn), labelsOf(fresh)) {
		t.Fatal("component partitions diverge from from-scratch rebuild")
	}
	qs := mixedQueries(dyn.Graph(), 300, seed)
	got, want := dyn.Do(qs), fresh.Do(qs)
	for i := range qs {
		if qs[i].Kind == KindComponent {
			continue // compared partition-wise above
		}
		if !sameResult(got[i], want[i]) {
			t.Fatalf("%s: dynamic %+v, from-scratch %+v", describe(qs[i]), got[i], want[i])
		}
	}
}

func TestUpdateInsertionIncremental(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(12), 6) // 6 components, n=72
	e := New(g, Config{Omega: 16, Seed: 5})
	defer e.Close()

	add := [][2]int32{{0, 12}, {24, 36}, {11, 70}, {5, 5}}
	st, err := e.Update(Update{Add: add}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Applied || st.Epoch != 1 || st.Pending != 0 {
		t.Fatalf("status %+v", st)
	}
	if e.Epoch() != 1 {
		t.Fatalf("epoch %d", e.Epoch())
	}
	if e.Graph().M() != g.M()+len(add) {
		t.Fatalf("m=%d want %d", e.Graph().M(), g.M()+len(add))
	}

	stats := e.Stats()
	if stats.TotalRebuilds != 1 || stats.IncrementalRebuilds != 1 {
		t.Fatalf("rebuilds %d incremental %d", stats.TotalRebuilds, stats.IncrementalRebuilds)
	}
	rec := stats.Rebuilds[len(stats.Rebuilds)-1]
	if rec.Strategy != StrategyPatchedInsert || rec.AddedEdges != len(add) || rec.RemovedEdges != 0 {
		t.Fatalf("record %+v", rec)
	}
	// The adds merge components, so the deferrable bicc oracle cannot absorb
	// them as a no-op patch — it defers to the lazy rung instead of paying a
	// publish-path rebuild.
	if rec.Strategies["conn"] != StrategyPatchedInsert || rec.Strategies["bicc"] != StrategyLazy {
		t.Fatalf("per-oracle strategies %+v", rec.Strategies)
	}
	if stats.Strategies["conn"][StrategyPatchedInsert] != 1 || stats.Strategies["bicc"][StrategyLazy] != 1 {
		t.Fatalf("strategy counters %+v", stats.Strategies)
	}
	if stats.RebuildsAvoided != 1 {
		t.Fatalf("rebuilds avoided %d, want 1", stats.RebuildsAvoided)
	}
	// The write-savings claim: the incremental connectivity maintenance
	// must cost strictly fewer asymmetric writes than the full build of
	// the connectivity oracle over the same graph.
	fresh := New(e.Graph(), Config{Omega: 16, Seed: 5})
	defer fresh.Close()
	if rec.ConnCost.Writes >= fresh.Stats().BuildConn.Writes {
		t.Fatalf("incremental conn writes %d not below full build %d",
			rec.ConnCost.Writes, fresh.Stats().BuildConn.Writes)
	}
	assertEquivalent(t, e, fresh, 99)
}

func TestUpdateRemovalFullRebuild(t *testing.T) {
	// Lollipop: clique + path; every path edge is a bridge.
	g := graph.Lollipop(8, 8)
	e := New(g, Config{Omega: 16, Seed: 3})
	defer e.Close()
	n := int32(g.N())

	// Cut the path: the tail vertex disconnects.
	cut := [2]int32{n - 2, n - 1}
	st, err := e.Update(Update{Remove: [][2]int32{cut}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Applied || st.Epoch != 1 {
		t.Fatalf("status %+v", st)
	}
	r := e.Query(Query{Kind: KindConnected, U: 0, V: n - 1})
	if r.Err != "" || *r.Bool {
		t.Fatalf("tail still connected after bridge removal: %+v", r)
	}
	stats := e.Stats()
	rec := stats.Rebuilds[len(stats.Rebuilds)-1]
	// Removing a bridge genuinely splits the component: the deletion patch
	// must refuse (no replacement edge exists) and the ladder must step
	// down to a full rebuild of the conn oracle.
	if rec.Strategy != StrategyFull || rec.RemovedEdges != 1 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Strategies["conn"] != StrategyFull {
		t.Fatalf("bridge removal conn strategy %q, want full (%+v)", rec.Strategies["conn"], rec.Strategies)
	}
	if stats.Strategies["conn"][StrategyFull] != 1 || stats.IncrementalRebuilds != 0 {
		t.Fatalf("counters %+v incremental=%d", stats.Strategies, stats.IncrementalRebuilds)
	}
	fresh := New(e.Graph(), Config{Omega: 16, Seed: 11})
	defer fresh.Close()
	assertEquivalent(t, e, fresh, 41)
}

// TestUpdateChainedBatches interleaves insertion-only and removal batches
// and checks equivalence with a from-scratch engine after every publish.
func TestUpdateChainedBatches(t *testing.T) {
	g := graph.GNM(80, 60, 7, false)
	e := New(g, Config{Omega: 16, Seed: 5})
	defer e.Close()
	rng := graph.NewRNG(13)
	n := g.N()

	for i := 0; i < 5; i++ {
		var u Update
		for j := 0; j < 6; j++ {
			u.Add = append(u.Add, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}
		if i%2 == 1 { // remove existing edges on odd batches
			es := e.Graph().Edges()
			u.Remove = append(u.Remove, es[rng.Intn(len(es))], es[rng.Intn(len(es))])
			// A duplicate pick may exceed the multiset; drop the second if so.
			if u.Remove[0] == u.Remove[1] &&
				e.Graph().EdgeMultiplicity(u.Remove[0][0], u.Remove[0][1]) < 2 {
				u.Remove = u.Remove[:1]
			}
		}
		st, err := e.Update(u, true)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if st.Epoch != int64(i+1) {
			t.Fatalf("batch %d: epoch %d", i, st.Epoch)
		}
		fresh := New(e.Graph(), Config{Omega: 16, Seed: 21})
		assertEquivalent(t, e, fresh, uint64(i)*7+1)
		fresh.Close()
	}
	st := e.Stats()
	if st.IncrementalRebuilds == 0 {
		t.Fatalf("no incremental rebuilds across %d batches", st.TotalRebuilds)
	}
	// The per-oracle counters partition the rebuilds: pure-insertion
	// batches patch-insert, removal batches either patch-delete (a
	// replacement edge existed) or step down to full (a split) — never
	// anything else, and they must add up.
	conn := st.Strategies["conn"]
	if conn[StrategyPatchedInsert] != 3 {
		t.Fatalf("conn patched-insert %d, want 3 (counters %+v)", conn[StrategyPatchedInsert], conn)
	}
	if conn[StrategyPatchedDelete]+conn[StrategyFull] != 2 || conn[StrategyRebased] != 0 {
		t.Fatalf("conn removal-batch counters %+v, want patch-delete+full = 2", conn)
	}
	// bicc never rebuilds on the publish path: every batch is deferred
	// lazily or absorbed as a provable no-op patch (the equivalence check
	// after each publish queries bicc kinds, so each deferral is followed by
	// one query-triggered build, keeping the instance fresh for the next
	// batch's patch attempt).
	bicc := st.Strategies["bicc"]
	if bicc[StrategyFull] != 0 || bicc[StrategyRebased] != 0 {
		t.Fatalf("bicc rebuilt on the publish path: %+v", bicc)
	}
	if got := bicc[StrategyLazy] + bicc[StrategyPatchedInsert] + bicc[StrategyPatchedDelete]; got != st.TotalRebuilds {
		t.Fatalf("bicc counters %+v, want %d deferred/patched", bicc, st.TotalRebuilds)
	}
	if st.LazyRebuilds != bicc[StrategyLazy] {
		t.Fatalf("lazy rebuilds %d, want %d (every deferral was queried)", st.LazyRebuilds, bicc[StrategyLazy])
	}
}

// TestUpdateConcurrentQueries hammers Do from many goroutines while update
// batches publish snapshots — the query-during-rebuild race surface. Run
// under -race in CI. Every valid query must be answered without error at
// every epoch.
func TestUpdateConcurrentQueries(t *testing.T) {
	g := graph.Disconnected(graph.Cycle(10), 8)
	e := New(g, Config{Omega: 16, Seed: 5})
	defer e.Close()
	n := g.N()

	var stop atomic.Bool
	var failures atomic.Int64
	var answered atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := graph.NewRNG(seed)
			for !stop.Load() {
				qs := make([]Query, 64)
				for i := range qs {
					qs[i] = Query{
						Kind: Kinds[rng.Intn(len(Kinds))],
						U:    int32(rng.Intn(n)),
						V:    int32(rng.Intn(n)),
					}
				}
				for _, r := range e.Do(qs) {
					if r.Err != "" {
						failures.Add(1)
					}
				}
				answered.Add(int64(len(qs)))
			}
		}(uint64(100 + c))
	}

	rng := graph.NewRNG(9)
	for i := 0; i < 8; i++ {
		u := Update{Add: [][2]int32{
			{int32(rng.Intn(n)), int32(rng.Intn(n))},
			{int32(rng.Intn(n)), int32(rng.Intn(n))},
		}}
		if i%3 == 2 {
			es := e.Graph().Edges()
			u.Remove = [][2]int32{es[rng.Intn(len(es))]}
		}
		if _, err := e.Update(u, true); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d query errors during churn (%d answered)", failures.Load(), answered.Load())
	}
	if e.Epoch() != 8 {
		t.Fatalf("epoch %d want 8", e.Epoch())
	}
}

func TestUpdateValidation(t *testing.T) {
	g := graph.Path(4) // edges (0,1),(1,2),(2,3)
	e := New(g, Config{Omega: 8, Seed: 1})

	for name, u := range map[string]Update{
		"empty":             {},
		"add out of range":  {Add: [][2]int32{{0, 4}}},
		"add negative":      {Add: [][2]int32{{-1, 1}}},
		"remove missing":    {Remove: [][2]int32{{0, 2}}},
		"remove out of rng": {Remove: [][2]int32{{0, 9}}},
		"double remove":     {Remove: [][2]int32{{0, 1}, {1, 0}}},
	} {
		if _, err := e.Update(u, true); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A rejected batch stages nothing: the single copy is still removable.
	if _, err := e.Update(Update{Remove: [][2]int32{{0, 1}}}, true); err != nil {
		t.Fatalf("valid removal after rejected batches: %v", err)
	}
	// Staged-delta awareness without waiting: the same copy cannot be
	// removed twice across batches, wherever the rebuild happens to be.
	if _, err := e.Update(Update{Remove: [][2]int32{{1, 2}}}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Update(Update{Remove: [][2]int32{{1, 2}}}, false); err == nil {
		t.Fatal("same copy removed twice across staged batches")
	}
	// And an edge added in a staged batch is removable before it publishes.
	if _, err := e.Update(Update{Add: [][2]int32{{0, 3}}}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Update(Update{Remove: [][2]int32{{3, 0}}}, true); err != nil {
		t.Fatalf("staged add not removable: %v", err)
	}

	e.Close()
	if _, err := e.Update(Update{Add: [][2]int32{{0, 1}}}, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("after Close: %v", err)
	}
	e.Close() // idempotent
}

func TestHTTPUpdateRoundTrip(t *testing.T) {
	g := graph.Disconnected(graph.Path(5), 2) // two path components
	_, ts := newTestServer(t, g)

	// Before: 0 and 5 are in different components.
	var r Result
	postJSON(t, ts.URL+"/query", Query{Kind: KindConnected, U: 0, V: 5}, &r)
	if *r.Bool {
		t.Fatal("components connected before update")
	}

	var ur UpdateResponse
	code := postJSON(t, ts.URL+"/update", UpdateRequest{Add: [][2]int32{{0, 5}}, Wait: true}, &ur)
	if code != http.StatusOK || !ur.Applied || ur.Epoch != 1 || ur.Seq != 1 {
		t.Fatalf("code=%d resp=%+v", code, ur)
	}
	postJSON(t, ts.URL+"/query", Query{Kind: KindConnected, U: 0, V: 5}, &r)
	if !*r.Bool {
		t.Fatal("components not connected after update")
	}

	var info Info
	getJSON(t, ts.URL+"/info", &info)
	if info.Epoch != 1 || info.GraphM != g.M()+1 {
		t.Fatalf("info %+v", info)
	}
	var st StatsJSON
	getJSON(t, ts.URL+"/stats", &st)
	if st.Epoch != 1 || st.TotalRebuilds != 1 || st.IncrementalRebuilds != 1 ||
		st.PendingUpdates != 0 || len(st.Rebuilds) != 1 {
		t.Fatalf("stats epoch=%d rebuilds=%d/%d pending=%d records=%d",
			st.Epoch, st.IncrementalRebuilds, st.TotalRebuilds, st.PendingUpdates, len(st.Rebuilds))
	}
	if st.Rebuilds[0].Strategy != StrategyPatchedInsert || st.Rebuilds[0].ConnCost.Work == 0 {
		t.Fatalf("rebuild record %+v", st.Rebuilds[0])
	}
	if st.Rebuilds[0].Strategies["conn"] != StrategyPatchedInsert {
		t.Fatalf("rebuild record strategies %+v", st.Rebuilds[0].Strategies)
	}
	if st.Strategies["conn"][StrategyPatchedInsert] != 1 {
		t.Fatalf("strategy counters %+v", st.Strategies)
	}

	// Remove the same edge again: full rebuild, epoch 2.
	code = postJSON(t, ts.URL+"/update", UpdateRequest{Remove: [][2]int32{{0, 5}}, Wait: true}, &ur)
	if code != http.StatusOK || ur.Epoch != 2 {
		t.Fatalf("code=%d resp=%+v", code, ur)
	}
	postJSON(t, ts.URL+"/query", Query{Kind: KindConnected, U: 0, V: 5}, &r)
	if *r.Bool {
		t.Fatal("still connected after removal")
	}
}

func TestHTTPUpdateErrors(t *testing.T) {
	g := graph.Path(4)
	_, ts := newTestServer(t, g)

	for _, tc := range []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"GET", func() (*http.Response, error) { return http.Get(ts.URL + "/update") }, http.StatusMethodNotAllowed},
		{"bad JSON", func() (*http.Response, error) {
			return http.Post(ts.URL+"/update", "application/json", bytes.NewReader([]byte("{")))
		}, http.StatusBadRequest},
		{"empty", func() (*http.Response, error) {
			return http.Post(ts.URL+"/update", "application/json", bytes.NewReader([]byte("{}")))
		}, http.StatusBadRequest},
		{"out of range", func() (*http.Response, error) {
			return http.Post(ts.URL+"/update", "application/json",
				bytes.NewReader([]byte(fmt.Sprintf(`{"add":[[0,%d]]}`, g.N()))))
		}, http.StatusBadRequest},
		{"remove missing", func() (*http.Response, error) {
			return http.Post(ts.URL+"/update", "application/json", bytes.NewReader([]byte(`{"remove":[[0,3]]}`)))
		}, http.StatusBadRequest},
		{"too many edges", func() (*http.Response, error) {
			// MaxUpdateEdges+1 syntactically valid pairs, well under the
			// byte limit: the count cap must trip.
			var b bytes.Buffer
			b.WriteString(`{"add":[[0,1]`)
			b.Write(bytes.Repeat([]byte(`,[0,1]`), MaxUpdateEdges))
			b.WriteString(`]}`)
			return http.Post(ts.URL+"/update", "application/json", &b)
		}, http.StatusRequestEntityTooLarge},
		{"oversized body", func() (*http.Response, error) {
			body := append([]byte(`{"add":[[0,1]],"pad":"`),
				bytes.Repeat([]byte("x"), maxUpdateBytes+1)...)
			body = append(body, []byte(`"}`)...)
			return http.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
		}, http.StatusRequestEntityTooLarge},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: code=%d want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
