package serve

import "testing"

// TestUndersizedLabelArenaStaysValid drives answer directly with a label
// arena deliberately sized below the query count (the public Do path always
// sizes it to one slot per query). Overflow labels must be boxed instead of
// appended through a reallocation, so Result.Label pointers returned before
// the overflow keep pointing at the values they held when returned.
func TestUndersizedLabelArenaStaysValid(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			e := New(g, Config{Omega: 16, Seed: 5})
			s := e.snap.Load()
			w := e.getWorker(s)
			defer e.putWorker(w)

			const nq = 64
			labels := make([]int32, 0, nq/4) // deliberately too small
			results := make([]Result, 0, nq)
			want := make([]int32, 0, nq)
			for i := 0; i < nq; i++ {
				q := Query{Kind: KindComponent, U: int32(i % g.N())}
				res := e.answer(s, w, q, &labels)
				if res.Err != "" || res.Label == nil {
					t.Fatalf("query %d: unexpected result %+v", i, res)
				}
				results = append(results, res)
				want = append(want, *res.Label)
			}
			for i, res := range results {
				if *res.Label != want[i] {
					t.Fatalf("query %d: Label drifted from %d to %d after arena overflow",
						i, want[i], *res.Label)
				}
			}
		})
	}
}
