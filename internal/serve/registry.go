package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
)

// This file is the multi-tenant half of the serving layer: a Registry owns
// the lifecycle of many named graphs, each served by its own Engine, all
// drawing query workers from one shared admission-controlled Pool. The
// oracles here are cheap to query but expensive to (re)build, so the
// registry builds engines in a background goroutine and reports build state
// (building → ready | failed) while the rest of the fleet keeps serving.
//
// The first graph registered becomes the *default* graph: the un-prefixed
// HTTP endpoints (/query, /batch, /update, /stats, /info) route to it, so
// every single-graph client keeps working unchanged, and /healthz reports
// readiness (503) until its first snapshot is published.

// Graph lifecycle states reported by GraphStatus.State.
type GraphState string

const (
	// StateBuilding: the graph is registered; its oracles are being built
	// in the background. Queries return 503 until the first snapshot
	// publishes.
	StateBuilding GraphState = "building"
	// StateReady: the engine is serving.
	StateReady GraphState = "ready"
	// StateFailed: the build failed; Error carries the cause. The name
	// stays reserved (and inspectable) until the graph is deleted.
	StateFailed GraphState = "failed"
)

// Registry errors, mapped to HTTP statuses by http.go.
var (
	ErrGraphNotFound = errors.New("serve: graph not found")
	ErrGraphNotReady = errors.New("serve: graph not ready")
	ErrGraphFailed   = errors.New("serve: graph build failed")
	ErrGraphExists   = errors.New("serve: graph already exists")
	ErrDefaultGraph  = errors.New("serve: cannot delete the default graph")
	ErrTooManyGraphs = errors.New("serve: graph quota reached")
)

// DefaultMaxGraphs is the registry's default graph quota
// (RegistryConfig.MaxGraphs = 0). Per-graph n/m caps bound each graph; the
// quota bounds how many of them — and how many concurrent background
// builds — an open /graphs surface can accumulate.
const DefaultMaxGraphs = 64

// MaxGraphN and MaxGraphM cap the vertex and edge counts a GraphSpec may
// request — daemon guards: /graphs is an open surface and a runaway n (or
// a huge deg driving n·deg/2 edges) would be a memory DoS, not a graph.
const (
	MaxGraphN = 1 << 22
	MaxGraphM = 1 << 24
)

// graphNameRE validates graph names (path segments of the per-graph
// endpoints).
var graphNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// GraphSpec describes a graph to create: either a synthetic generator
// (Gen/N/Deg/GraphSeed) or an inline edge list in graphio format
// (Graphio). Omega/K/Seed/MaxInflight override the registry's engine
// defaults when nonzero (MaxInflight < 0 means explicitly unlimited).
type GraphSpec struct {
	Name      string `json:"name"`
	Gen       string `json:"gen,omitempty"` // "random-regular" (default) | "gnm"
	N         int    `json:"n,omitempty"`
	Deg       int    `json:"deg,omitempty"`
	GraphSeed uint64 `json:"graph_seed,omitempty"`
	Graphio   string `json:"graphio,omitempty"` // inline edge-list body; wins over Gen

	Omega       int    `json:"omega,omitempty"`
	K           int    `json:"k,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
	MaxInflight int    `json:"max_inflight,omitempty"`

	// Wait makes Create block until the build finishes (scripts and tests;
	// the HTTP surface passes it through).
	Wait bool `json:"wait,omitempty"`
}

// GraphStatus is the lifecycle view of one graph (GET /graphs).
type GraphStatus struct {
	Name    string     `json:"name"`
	State   GraphState `json:"state"`
	Error   string     `json:"error,omitempty"`
	Default bool       `json:"default"`
	GraphN  int        `json:"graph_n,omitempty"`
	GraphM  int        `json:"graph_m,omitempty"`
	Epoch   int64      `json:"epoch,omitempty"`
	BuildMs float64    `json:"build_ms,omitempty"`
}

// RegistryConfig configures a Registry.
type RegistryConfig struct {
	// Engine is the default engine configuration for created graphs
	// (Omega/K/Seed/Workers/SymLimit); per-graph spec fields override it.
	Engine Config
	// Pool is the shared worker pool; nil creates one sized to GOMAXPROCS.
	Pool *Pool
	// MaxInflight is the default per-graph admission cap (0 = unlimited);
	// GraphSpec.MaxInflight overrides it per graph.
	MaxInflight int
	// MaxGraphs caps how many graphs (any state) the registry holds at
	// once; 0 selects DefaultMaxGraphs, negative means unlimited. Creation
	// beyond the quota fails with ErrTooManyGraphs (HTTP 429).
	MaxGraphs int
	// OnRebuild, if non-nil, is called with the graph name after every
	// rebuild of any registered graph.
	OnRebuild func(graph string, r RebuildRecord)
	// OnState, if non-nil, is called on lifecycle transitions
	// (building→ready, building→failed) outside the registry lock.
	OnState func(graph string, state GraphState, errMsg string)
	// Persist, if non-nil, makes the fleet durable: every Create is
	// recorded (and given a per-graph durable log wired into its engine)
	// before the build starts, every Delete removes the graph's data, and
	// a freshly built graph writes its initial snapshot before going
	// ready. Attach bypasses persistence (single-engine back-compat).
	Persist RegistryPersister
	// Metrics is the obs registry every created engine registers its
	// instruments in, served at GET /metrics by NewRegistryServer. Nil
	// creates a fresh registry. Share it with the durable store
	// (store.Options.Metrics) so WAL/snapshot families land on the same
	// scrape.
	Metrics *obs.Registry
	// SlowQuery is the request-trace capture threshold for GET
	// /debug/traces: 0 selects obs.DefaultSlowQuery, negative captures
	// every request (tests use it for determinism).
	SlowQuery time.Duration
}

// Registry manages named graphs with full lifecycle: background builds,
// per-graph serving, drain-then-close deletion. All methods are safe for
// concurrent use.
type Registry struct {
	cfg    RegistryConfig
	pool   *Pool
	obs    *obs.Registry
	tracer *obs.Tracer

	mu          sync.Mutex
	graphs      map[string]*graphEntry
	order       []string // registration order; order[0] is the default
	defaultName string

	// beforeBuild, when non-nil, runs in the build goroutine before the
	// engine build starts — a test hook to hold a graph in StateBuilding.
	beforeBuild func(name string)
}

type graphEntry struct {
	name  string
	state GraphState
	err   string
	eng   *Engine
	built time.Duration

	// Persistence wiring (nil without a RegistryPersister). recovered
	// entries resume at initEpoch/initSeq and skip the initial snapshot
	// (theirs already exists on disk). deleting marks an entry whose
	// durable delete is in flight (a second DELETE 404s instead of
	// racing it).
	persist    GraphPersister
	recovered  bool
	deleting   bool
	initEpoch  int64
	initSeq    int64
	initForest [][2]int32
	initDepth  int

	// noDefaultClaim keeps insertLocked from promoting this entry to the
	// default slot. Recovered entries set it: which graph was the default
	// before the crash is the embedder's knowledge (cmd/oracled restores
	// its -graphname graph via SetDefault), and auto-claiming in manifest
	// order could silently point the un-prefixed endpoints at another
	// tenant's graph.
	noDefaultClaim bool
}

// NewRegistry returns an empty registry. The first graph subsequently
// created or attached becomes the default graph.
func NewRegistry(cfg RegistryConfig) *Registry {
	pool := cfg.Pool
	if pool == nil {
		pool = NewPool(0)
	}
	mreg := cfg.Metrics
	if mreg == nil {
		mreg = obs.NewRegistry()
	}
	reg := &Registry{
		cfg:    cfg,
		pool:   pool,
		obs:    mreg,
		tracer: obs.NewTracer(0, cfg.SlowQuery),
		graphs: map[string]*graphEntry{},
	}
	registerFleetMetrics(mreg, reg)
	return reg
}

// Pool returns the shared worker pool.
func (reg *Registry) Pool() *Pool { return reg.pool }

// Metrics returns the obs registry the fleet's instruments live in (served
// at GET /metrics).
func (reg *Registry) Metrics() *obs.Registry { return reg.obs }

// Tracer returns the fleet's slow-request trace ring (served at GET
// /debug/traces).
func (reg *Registry) Tracer() *obs.Tracer { return reg.tracer }

// DefaultName returns the default graph's name ("" while the registry is
// empty).
func (reg *Registry) DefaultName() string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return reg.defaultName
}

// Attach registers an already-built engine under name (immediately ready).
// The engine keeps its own pool and admission configuration; the caller
// retains ownership of its lifecycle. Used by NewServer for single-engine
// back-compat.
func (reg *Registry) Attach(name string, e *Engine) error {
	if !graphNameRE.MatchString(name) {
		return fmt.Errorf("serve: invalid graph name %q", name)
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if err := reg.checkCapacityLocked(name); err != nil {
		return err
	}
	reg.insertLocked(&graphEntry{name: name, state: StateReady, eng: e})
	return nil
}

// insertLocked adds an entry and makes it the default if it is the first
// (unless the entry declines the claim — recovered graphs do).
func (reg *Registry) insertLocked(ent *graphEntry) {
	reg.graphs[ent.name] = ent
	reg.order = append(reg.order, ent.name)
	if reg.defaultName == "" && !ent.noDefaultClaim {
		reg.defaultName = ent.name
	}
}

// SetDefault points the default slot (the un-prefixed compatibility
// endpoints) at a registered graph. It refuses to re-point an occupied
// slot away from a different graph — the default only moves by deleting
// it first — so a tenant's graph can never be silently promoted over a
// live default. Used by embedders after recovery, where no entry
// auto-claims the slot.
func (reg *Registry) SetDefault(name string) error {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.graphs[name]; !ok {
		return fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	if reg.defaultName != "" && reg.defaultName != name {
		return fmt.Errorf("serve: default slot already held by %q", reg.defaultName)
	}
	reg.defaultName = name
	return nil
}

// Create registers a graph from spec and builds its engine in the
// background (synchronously when spec.Wait). The returned status reflects
// the state at return: building for async creates, ready/failed after a
// waited build. Validation — name, uniqueness, generator parameters,
// graphio parsing — is synchronous and happens *before* any
// generation-sized work, so a non-nil error means nothing was registered
// and nothing expensive ran; graph materialization itself happens in the
// build (a duplicate-name request never pays for a generation).
func (reg *Registry) Create(spec GraphSpec) (GraphStatus, error) {
	// Cheap rejections first: a taken name, a bad name, or a full quota
	// must not pay for a 64 MB graphio parse. create() re-checks
	// authoritatively when it reserves the name.
	if !graphNameRE.MatchString(spec.Name) {
		return GraphStatus{}, fmt.Errorf("serve: invalid graph name %q (want %s)", spec.Name, graphNameRE)
	}
	if err := reg.checkCapacity(spec.Name); err != nil {
		return GraphStatus{}, err
	}
	var pre *graph.Graph
	if spec.Graphio != "" {
		// The body is already in memory (the HTTP layer bounds it); parse
		// now so malformed uploads are synchronous 400s.
		g, err := graphio.Read(strings.NewReader(spec.Graphio))
		if err != nil {
			return GraphStatus{}, fmt.Errorf("serve: graphio body: %w", err)
		}
		if g.N() > MaxGraphN || g.M() > MaxGraphM {
			return GraphStatus{}, fmt.Errorf("serve: graph n=%d m=%d exceeds limits (%d, %d)",
				g.N(), g.M(), MaxGraphN, MaxGraphM)
		}
		pre = g
	} else if err := validateGenSpec(spec); err != nil {
		return GraphStatus{}, err
	}
	return reg.create(spec.Name, spec, func() (*graph.Graph, error) {
		if pre != nil {
			return pre, nil
		}
		return generateGraph(spec), nil
	})
}

// CreateFromGraph registers a pre-loaded graph under name (the generator
// fields of spec are ignored) and builds its engine in the background,
// honouring spec.Wait and the engine-override fields.
func (reg *Registry) CreateFromGraph(name string, g *graph.Graph, spec GraphSpec) (GraphStatus, error) {
	if g == nil {
		return GraphStatus{}, errors.New("serve: nil graph")
	}
	return reg.create(name, spec, func() (*graph.Graph, error) { return g, nil })
}

// checkCapacity reports whether a graph named name could be registered
// right now (name free, quota not reached). Advisory when called outside
// create's critical section.
func (reg *Registry) checkCapacity(name string) error {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return reg.checkCapacityLocked(name)
}

func (reg *Registry) checkCapacityLocked(name string) error {
	if _, ok := reg.graphs[name]; ok {
		return ErrGraphExists
	}
	if quota := reg.quotaLocked(); quota > 0 && len(reg.graphs) >= quota {
		return fmt.Errorf("%w: %d graphs (delete one first)", ErrTooManyGraphs, quota)
	}
	return nil
}

// quotaLocked resolves the effective graph quota (0 in MaxGraphs selects
// the default; negative disables the quota, reported as 0 here).
func (reg *Registry) quotaLocked() int {
	quota := reg.cfg.MaxGraphs
	switch {
	case quota == 0:
		return DefaultMaxGraphs
	case quota < 0:
		return 0
	}
	return quota
}

// AtQuota reports whether the registry cannot accept any new graph. The
// HTTP layer checks this before reading a creation body, so a full
// registry sheds POST /graphs in O(1) instead of decoding up to 64 MB per
// doomed request.
func (reg *Registry) AtQuota() bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	quota := reg.quotaLocked()
	return quota > 0 && len(reg.graphs) >= quota
}

// RecoveredState is the durable watermark and dynamic conn state a graph
// resumes at after recovery (store snapshot v2 persists Forest/ChainDepth;
// v1 snapshots recover with both zero, which simply starts a fresh chain).
type RecoveredState struct {
	Epoch int64
	Seq   int64
	// Forest is the recovered spanning forest, already re-based onto the
	// recovered graph by the store (valid even when a WAL tail changed the
	// edge set after the snapshot).
	Forest [][2]int32
	// ChainDepth is the recovered incremental patch-chain depth.
	ChainDepth int
}

// CreateRecovered registers a graph reconstructed from the durable store:
// the engine builds over the recovered graph in the background (listener
// up immediately, same as any create), resumes at the recovered
// epoch/sequence watermark with the recovered dynamic conn state (forest +
// chain depth), and continues appending to the given durable log. No
// creation event is re-recorded and no initial snapshot is written — both
// already exist on disk — and the entry never auto-claims the default slot
// (the embedder restores it with SetDefault).
func (reg *Registry) CreateRecovered(name string, g *graph.Graph, spec GraphSpec, gp GraphPersister, rs RecoveredState) (GraphStatus, error) {
	if g == nil {
		return GraphStatus{}, errors.New("serve: nil recovered graph")
	}
	return reg.createEntry(name, spec, func() (*graph.Graph, error) { return g, nil },
		&graphEntry{name: name, state: StateBuilding, persist: gp, recovered: true,
			initEpoch: rs.Epoch, initSeq: rs.Seq, initForest: rs.Forest, initDepth: rs.ChainDepth,
			noDefaultClaim: true})
}

// create reserves the name, then runs the build (load + engine
// construction) synchronously or in the background per spec.Wait.
func (reg *Registry) create(name string, spec GraphSpec, load func() (*graph.Graph, error)) (GraphStatus, error) {
	return reg.createEntry(name, spec, load, &graphEntry{name: name, state: StateBuilding})
}

func (reg *Registry) createEntry(name string, spec GraphSpec, load func() (*graph.Graph, error), ent *graphEntry) (GraphStatus, error) {
	if !graphNameRE.MatchString(name) {
		return GraphStatus{}, fmt.Errorf("serve: invalid graph name %q (want %s)", name, graphNameRE)
	}
	reg.mu.Lock()
	if err := reg.checkCapacityLocked(name); err != nil {
		reg.mu.Unlock()
		return GraphStatus{}, err
	}
	reg.insertLocked(ent)
	reg.mu.Unlock()

	// Durably record the creation before any build work: an accepted
	// create must survive a crash even if its build never finishes (the
	// store drops never-snapshotted graphs on recovery, which is the right
	// outcome for exactly that window).
	if !ent.recovered && reg.cfg.Persist != nil {
		specJSON, err := json.Marshal(spec)
		if err != nil {
			reg.removeEntry(ent)
			return GraphStatus{}, fmt.Errorf("serve: spec of %q: %w", name, err)
		}
		gp, err := reg.cfg.Persist.CreateGraph(name, specJSON)
		if err != nil {
			reg.removeEntry(ent)
			return GraphStatus{}, fmt.Errorf("serve: durable create of %q: %w", name, err)
		}
		ent.persist = gp
	}

	if spec.Wait {
		reg.build(ent, load, spec)
	} else {
		go reg.build(ent, load, spec)
	}
	st, ok := reg.Status(name)
	if !ok {
		// Deleted out from under the build (possible for waited builds):
		// do not hand the caller a success-looking zero status.
		return GraphStatus{}, fmt.Errorf("%w: %q (deleted during build)", ErrGraphNotFound, name)
	}
	return st, nil
}

// removeEntry rolls a reserved name back out of the registry (creation
// failed before any build started).
func (reg *Registry) removeEntry(ent *graphEntry) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.graphs[ent.name] != ent {
		return
	}
	delete(reg.graphs, ent.name)
	for i, n := range reg.order {
		if n == ent.name {
			reg.order = append(reg.order[:i], reg.order[i+1:]...)
			break
		}
	}
	if reg.defaultName == ent.name {
		reg.defaultName = ""
	}
}

// build materializes the graph, constructs the entry's engine, and
// publishes the lifecycle transition. Runs in a dedicated goroutine for
// async creates; a panic anywhere in the build marks the graph failed
// rather than killing the daemon.
func (reg *Registry) build(ent *graphEntry, load func() (*graph.Graph, error), spec GraphSpec) {
	start := time.Now()
	var eng *Engine
	var buildErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				buildErr = fmt.Errorf("build panicked: %v", r)
			}
		}()
		if reg.beforeBuild != nil {
			reg.beforeBuild(ent.name)
		}
		var g *graph.Graph
		if g, buildErr = load(); buildErr != nil {
			return
		}
		cfg := reg.engineConfig(ent.name, spec)
		cfg.Persist = ent.persist
		cfg.InitialEpoch = ent.initEpoch
		cfg.InitialSeq = ent.initSeq
		cfg.InitialForest = ent.initForest
		cfg.InitialChainDepth = ent.initDepth
		// A recovered graph boots with its deferrable oracles unbuilt: the
		// restart stops paying for biconnectivity until something actually
		// asks for it (the first bicc-family query lazily builds, exactly as
		// after a deferred update).
		cfg.LazyBoot = ent.recovered
		eng = New(g, cfg)
		// A fresh create writes its initial snapshot before going ready:
		// the durability promise starts at the moment clients can reach
		// the graph. (Recovered graphs already have one on disk.)
		if ent.persist != nil && !ent.recovered {
			remap, forest, depth := eng.ConnDyn()
			if buildErr = ent.persist.SaveSnapshot(eng.Epoch(), eng.LastSeq(), eng.Graph(), remap, forest, depth); buildErr != nil {
				buildErr = fmt.Errorf("initial snapshot: %w", buildErr)
				eng.Close()
				eng = nil
				// The dead engine's metric series must not scrape as a live
				// graph; the failed entry keeps the name reserved.
				reg.obs.DeleteLabeled("graph", ent.name)
			}
		}
	}()

	reg.mu.Lock()
	if reg.graphs[ent.name] != ent {
		// Deleted while building: the engine (if any) has no owner left.
		reg.mu.Unlock()
		if eng != nil {
			eng.Close()
			// The orphan engine registered its series in New; retire them
			// the same way Delete does for a served graph.
			reg.obs.DeleteLabeled("graph", ent.name)
		}
		return
	}
	state := StateReady
	if buildErr != nil {
		state = StateFailed
		ent.err = buildErr.Error()
	}
	ent.eng = eng
	ent.state = state
	ent.built = time.Since(start)
	cb := reg.cfg.OnState
	reg.mu.Unlock()
	if cb != nil {
		cb(ent.name, state, ent.err)
	}
}

// engineConfig merges the registry defaults with per-spec overrides and
// wires the shared pool plus the name-tagged rebuild callback.
func (reg *Registry) engineConfig(name string, spec GraphSpec) Config {
	cfg := reg.cfg.Engine
	if spec.Omega > 0 {
		cfg.Omega = spec.Omega
	}
	if spec.K > 0 {
		cfg.K = spec.K
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	cfg.Pool = reg.pool
	cfg.MaxInflight = reg.cfg.MaxInflight
	switch {
	case spec.MaxInflight > 0:
		cfg.MaxInflight = spec.MaxInflight
	case spec.MaxInflight < 0:
		cfg.MaxInflight = 0
	}
	if cb := reg.cfg.OnRebuild; cb != nil {
		cfg.OnRebuild = func(r RebuildRecord) { cb(name, r) }
	}
	cfg.GraphName = name
	cfg.Metrics = reg.obs
	return cfg
}

// Get returns the named graph's engine, or ErrGraphNotFound /
// ErrGraphNotReady / ErrGraphFailed (the latter two wrapped with detail).
func (reg *Registry) Get(name string) (*Engine, error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	ent, ok := reg.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	switch ent.state {
	case StateReady:
		return ent.eng, nil
	case StateFailed:
		return nil, fmt.Errorf("%w: %q: %s", ErrGraphFailed, name, ent.err)
	default:
		return nil, fmt.Errorf("%w: %q is %s", ErrGraphNotReady, name, ent.state)
	}
}

// Default returns the default graph's engine (Get semantics).
func (reg *Registry) Default() (*Engine, error) {
	reg.mu.Lock()
	name := reg.defaultName
	reg.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("%w: no default graph", ErrGraphNotFound)
	}
	return reg.Get(name)
}

// Status returns the lifecycle view of one graph.
func (reg *Registry) Status(name string) (GraphStatus, bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	ent, ok := reg.graphs[name]
	if !ok {
		return GraphStatus{}, false
	}
	return reg.statusLocked(ent), true
}

// List returns every graph's status in registration order.
func (reg *Registry) List() []GraphStatus {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make([]GraphStatus, 0, len(reg.order))
	for _, name := range reg.order {
		if ent, ok := reg.graphs[name]; ok {
			out = append(out, reg.statusLocked(ent))
		}
	}
	return out
}

func (reg *Registry) statusLocked(ent *graphEntry) GraphStatus {
	st := GraphStatus{
		Name:    ent.name,
		State:   ent.state,
		Error:   ent.err,
		Default: ent.name == reg.defaultName,
		BuildMs: float64(ent.built.Microseconds()) / 1000,
	}
	if ent.state == StateReady && ent.eng != nil {
		st.GraphN = ent.eng.Graph().N()
		st.GraphM = ent.eng.Graph().M()
		st.Epoch = ent.eng.Epoch()
	}
	return st
}

// Delete unregisters a graph. The durable removal (when a persister is
// configured) happens first — a failure leaves the graph registered so
// the client can simply retry the DELETE — then the name 404s and the
// engine is closed in the background once its in-flight requests drain.
// The default graph cannot be deleted while it serves (the un-prefixed
// compatibility endpoints route to it) — except in the failed state,
// where deletion is the only way to free the name and recover without a
// restart. The default slot is then left empty (un-prefixed requests 404)
// until the next created graph claims it — never silently re-pointed at
// an existing tenant's graph.
func (reg *Registry) Delete(name string) error {
	reg.mu.Lock()
	ent, ok := reg.graphs[name]
	if !ok || ent.deleting {
		reg.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	if name == reg.defaultName && ent.state != StateFailed {
		reg.mu.Unlock()
		return ErrDefaultGraph
	}
	ent.deleting = true
	reg.mu.Unlock()

	// Durable removal before the registry removal: if the tombstone or
	// data removal fails, the entry is still registered, so the DELETE is
	// retryable instead of leaving on-disk state that resurrects a graph
	// every boot behind a name that 404s. The graph serves (and a crash
	// recovers it) until the durable delete succeeds. A draining engine
	// may still append to the removed log through its open descriptor;
	// those writes land in unlinked files and vanish with the close —
	// exactly a deleted graph's fate.
	if reg.cfg.Persist != nil && ent.persist != nil {
		if err := reg.cfg.Persist.DeleteGraph(name); err != nil {
			reg.mu.Lock()
			ent.deleting = false
			reg.mu.Unlock()
			return fmt.Errorf("serve: durable delete of %q: %w", name, err)
		}
	}

	// Retire the graph's metric series while the name is still reserved in
	// the registry map: a concurrent Create of the same name fails with
	// ErrGraphExists until the removal below, so a new engine cannot be
	// registering fresh series for this label value concurrently. (Late
	// observations through already-resolved handles are harmless — the
	// series is simply no longer scraped.)
	reg.obs.DeleteLabeled("graph", name)

	reg.mu.Lock()
	if reg.graphs[name] == ent {
		delete(reg.graphs, name)
		for i, n := range reg.order {
			if n == name {
				reg.order = append(reg.order[:i], reg.order[i+1:]...)
				break
			}
		}
		if name == reg.defaultName {
			reg.defaultName = ""
		}
	}
	reg.mu.Unlock()

	// Drain, then close. A still-building entry is handled by build():
	// it notices the entry was removed and closes the fresh engine itself.
	if ent.eng != nil {
		eng := ent.eng
		go func() {
			for i := 0; i < 1000 && eng.Inflight() > 0; i++ {
				time.Sleep(5 * time.Millisecond)
			}
			eng.Close()
		}()
	}
	return nil
}

// Close shuts every registered engine down (attached engines included:
// Engine.Close is idempotent, so owners double-closing is fine).
func (reg *Registry) Close() {
	reg.mu.Lock()
	engines := make([]*Engine, 0, len(reg.graphs))
	for _, ent := range reg.graphs {
		if ent.eng != nil {
			engines = append(engines, ent.eng)
		}
	}
	reg.mu.Unlock()
	for _, e := range engines {
		e.Close()
	}
}

// genParams resolves the generator defaults (n=4096 3-regular).
func genParams(spec GraphSpec) (n, deg int) {
	n, deg = spec.N, spec.Deg
	if n == 0 {
		n = 1 << 12
	}
	if deg == 0 {
		deg = 3
	}
	return n, deg
}

// validateGenSpec checks a generator spec without materializing anything;
// errors surface as HTTP 400s. After it passes, generateGraph cannot fail.
func validateGenSpec(spec GraphSpec) error {
	n, deg := genParams(spec)
	if n < 1 || n > MaxGraphN {
		return fmt.Errorf("serve: n must be in [1,%d], got %d", MaxGraphN, n)
	}
	if deg < 0 {
		return fmt.Errorf("serve: deg must be >= 0, got %d", deg)
	}
	if int64(n)*int64(deg)/2 > MaxGraphM {
		return fmt.Errorf("serve: n·deg/2 = %d edges exceeds limit %d", int64(n)*int64(deg)/2, MaxGraphM)
	}
	switch spec.Gen {
	case "", "random-regular":
		if deg < 2 {
			return fmt.Errorf("serve: deg must be >= 2 for random-regular, got %d", deg)
		}
		if deg >= n {
			return fmt.Errorf("serve: deg %d must be below n %d for random-regular", deg, n)
		}
		if n*deg%2 != 0 {
			return fmt.Errorf("serve: n·deg must be even for random-regular, got %d·%d", n, deg)
		}
	case "gnm":
		// GNM(n, m, connect=true) needs a spanning tree's worth of edges
		// and cannot place more than the simple-graph maximum — outside
		// those bounds it panics or loops forever, so reject up front.
		m := int64(n) * int64(deg) / 2
		if m < int64(n)-1 {
			return fmt.Errorf("serve: gnm needs n·deg/2 >= n-1 edges to stay connected, got %d", m)
		}
		if simpleMax := int64(n) * int64(n-1) / 2; m > simpleMax {
			return fmt.Errorf("serve: gnm n·deg/2 = %d exceeds the simple-graph maximum %d", m, simpleMax)
		}
	default:
		return fmt.Errorf("serve: unknown generator %q (want random-regular or gnm)", spec.Gen)
	}
	return nil
}

// generateGraph materializes a validated generator spec.
func generateGraph(spec GraphSpec) *graph.Graph {
	n, deg := genParams(spec)
	if spec.Gen == "gnm" {
		return graph.GNM(n, n*deg/2, spec.GraphSeed, true)
	}
	return graph.RandomRegular(n, deg, spec.GraphSeed)
}
