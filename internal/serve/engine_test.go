package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
)

// mixedQueries generates nq queries cycling through every kind, with vertex
// pairs drawn from the graph (some adjacent pairs so bridge queries hit
// real edges, some random pairs).
func mixedQueries(g *graph.Graph, nq int, seed uint64) []Query {
	rng := graph.NewRNG(seed)
	n := g.N()
	edges := g.Edges()
	qs := make([]Query, nq)
	for i := range qs {
		kind := Kinds[i%len(Kinds)]
		var u, v int32
		if (kind == KindBridge || kind == KindBiconnected) && len(edges) > 0 && i%2 == 0 {
			e := edges[rng.Intn(len(edges))]
			u, v = e[0], e[1]
		} else {
			u, v = int32(rng.Intn(n)), int32(rng.Intn(n))
		}
		qs[i] = Query{Kind: kind, U: u, V: v}
	}
	return qs
}

// direct answers q with single-threaded oracle calls on a caller-owned
// meter, mirroring Engine.answer without any of the batching machinery.
func direct(e *Engine, m *asym.Meter, sym *asym.SymTracker, q Query) Result {
	var res Result
	switch q.Kind {
	case KindConnected:
		v := e.Conn().Connected(m, sym, q.U, q.V)
		res.Bool = &v
	case KindComponent:
		v := e.Conn().Query(m, sym, q.U)
		res.Label = &v
	case KindBridge:
		v := e.Bicc().IsBridge(m, sym, q.U, q.V)
		res.Bool = &v
	case KindArticulation:
		v := e.Bicc().IsArticulation(m, sym, q.U)
		res.Bool = &v
	case KindBiconnected:
		v := e.Bicc().Biconnected(m, sym, q.U, q.V)
		res.Bool = &v
	case KindTwoEdgeConnected:
		v := e.Bicc().OneEdgeConnected(m, sym, q.U, q.V)
		res.Bool = &v
	}
	return res
}

func sameResult(a, b Result) bool {
	if (a.Bool == nil) != (b.Bool == nil) || (a.Label == nil) != (b.Label == nil) {
		return false
	}
	if a.Bool != nil && *a.Bool != *b.Bool {
		return false
	}
	if a.Label != nil && *a.Label != *b.Label {
		return false
	}
	return a.Err == b.Err
}

func describe(q Query) string {
	return fmt.Sprintf("%s(%d,%d)", q.Kind, q.U, q.V)
}

// testGraphs returns the instance set the equivalence tests run over: a
// connected regular graph, a disconnected sparse G(n,m) with small
// components (exercising the implicit-center paths), and a grid (bridges
// and articulation points everywhere after edge removal is not needed —
// the 2D grid is 2-connected in the interior but its corners exercise
// local-graph boundaries).
func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	return map[string]*graph.Graph{
		"regular":      graph.RandomRegular(400, 3, 11),
		"disconnected": graph.GNM(300, 320, 13, false),
		"grid":         graph.Grid2D(16, 24),
	}
}

// TestBatchMatchesDirect is the core equivalence check: batched concurrent
// answers must be identical to single-threaded direct oracle calls.
func TestBatchMatchesDirect(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			e := New(g, Config{Omega: 16, Seed: 5})
			qs := mixedQueries(g, 2000, 17)
			got := e.Do(qs)
			m := asym.NewMeter(e.Omega())
			sym := asym.NewSymTracker(0)
			for i, q := range qs {
				want := direct(e, m, sym, q)
				if !sameResult(got[i], want) {
					t.Fatalf("query %d %s: batch=%+v direct=%+v", i, describe(q), got[i], want)
				}
			}
		})
	}
}

// TestConcurrentDo runs many Do batches from concurrent goroutines (the
// -race target of the serving layer) and checks every answer against a
// single-threaded reference computed up front.
func TestConcurrentDo(t *testing.T) {
	g := graph.RandomRegular(300, 3, 23)
	e := New(g, Config{Omega: 16, Seed: 5})

	const goroutines = 8
	const perBatch = 400
	batches := make([][]Query, goroutines)
	want := make([][]Result, goroutines)
	m := asym.NewMeter(e.Omega())
	sym := asym.NewSymTracker(0)
	for i := range batches {
		batches[i] = mixedQueries(g, perBatch, uint64(100+i))
		want[i] = make([]Result, perBatch)
		for j, q := range batches[i] {
			want[i][j] = direct(e, m, sym, q)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for i := range batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got := e.Do(batches[i])
			for j := range got {
				if !sameResult(got[j], want[i][j]) {
					errs <- fmt.Sprintf("goroutine %d query %d %s: got %+v want %+v",
						i, j, describe(batches[i][j]), got[j], want[i][j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	st := e.Stats()
	if st.TotalQueries != goroutines*perBatch {
		t.Errorf("TotalQueries = %d, want %d", st.TotalQueries, goroutines*perBatch)
	}
	for _, k := range Kinds {
		ks := st.Queries[string(k)]
		if ks.Count == 0 {
			t.Errorf("kind %s: zero count", k)
		}
		if ks.Cost.Reads == 0 || ks.Cost.Work() == 0 {
			t.Errorf("kind %s: zero reads/work: %+v", k, ks.Cost)
		}
		if ks.Cost.Writes != ks.Count {
			t.Errorf("kind %s: writes = %d, want one per answered query (%d)",
				k, ks.Cost.Writes, ks.Count)
		}
	}
}

// TestWorkerIsolation checks the per-worker metering invariant: the
// aggregate per-kind cost of a batch equals the cost of the same queries
// answered single-threaded (query costs are deterministic, so any
// cross-worker interference or double counting shows up as a mismatch).
func TestWorkerIsolation(t *testing.T) {
	g := graph.RandomRegular(200, 3, 29)
	qs := mixedQueries(g, 1000, 31)

	batched := New(g, Config{Omega: 16, Seed: 5, Workers: 4})
	batched.Do(qs)

	single := New(g, Config{Omega: 16, Seed: 5, Workers: 1})
	single.Do(qs)

	bs, ss := batched.Stats(), single.Stats()
	for _, k := range Kinds {
		b, s := bs.Queries[string(k)], ss.Queries[string(k)]
		if b.Cost != s.Cost || b.Count != s.Count {
			t.Errorf("kind %s: 4-worker cost %+v (count %d) != 1-worker cost %+v (count %d)",
				k, b.Cost, b.Count, s.Cost, s.Count)
		}
	}
}

// TestQueryValidation covers the malformed-query paths.
func TestQueryValidation(t *testing.T) {
	g := graph.RandomRegular(50, 3, 37)
	e := New(g, Config{Omega: 16, Seed: 5})

	cases := []Query{
		{Kind: "nope", U: 0, V: 1},
		{Kind: KindConnected, U: -1, V: 1},
		{Kind: KindConnected, U: 0, V: 99},
		{Kind: KindComponent, U: 50},
		{Kind: KindBridge, U: 0, V: -3},
	}
	for _, q := range cases {
		if res := e.Query(q); res.Err == "" {
			t.Errorf("%s: want error, got %+v", describe(q), res)
		}
	}
	// Single-vertex kinds ignore V entirely.
	if res := e.Query(Query{Kind: KindComponent, U: 3, V: 9999}); res.Err != "" {
		t.Errorf("component with out-of-range V should succeed, got %q", res.Err)
	}
	st := e.Stats()
	if st.Queries[string(KindConnected)].Errors != 2 {
		t.Errorf("connected errors = %d, want 2", st.Queries[string(KindConnected)].Errors)
	}
}

// TestEmptyAndTinyBatches covers the degenerate dispatch shapes.
func TestEmptyAndTinyBatches(t *testing.T) {
	g := graph.Grid2D(4, 4)
	e := New(g, Config{Omega: 4, Seed: 5})
	if got := e.Do(nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
	got := e.Do([]Query{{Kind: KindComponent, U: 0}})
	if len(got) != 1 || got[0].Label == nil {
		t.Fatalf("single-query batch: %+v", got)
	}
}

func BenchmarkServeBatch(b *testing.B) {
	g := graph.RandomRegular(1<<12, 3, 41)
	e := New(g, Config{Omega: 64, Seed: 5})
	qs := mixedQueries(g, 4096, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Do(qs)
	}
	st := e.Stats()
	var reads, work int64
	for _, ks := range st.Queries {
		reads += ks.Cost.Reads
		work += ks.Cost.Work()
	}
	b.ReportMetric(float64(reads)/float64(st.TotalQueries), "reads/query")
	b.ReportMetric(float64(work)/float64(st.TotalQueries), "work/query")
}
