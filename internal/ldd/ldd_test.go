package ldd

import (
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

func run(g *graph.Graph, beta float64, seed uint64, omega int) (Result, *asym.Meter, *parallel.Ctx) {
	m := asym.NewMeter(omega)
	c := parallel.NewCtx(m, asym.NewSymTracker(0))
	vw := graph.View{G: g, M: m}
	return Decompose(c, Explicit{VW: vw}, m, beta, seed), m, c
}

func TestEveryVertexAssigned(t *testing.T) {
	g := graph.GNM(300, 900, 1, false) // possibly disconnected
	res, _, _ := run(g, 0.2, 7, 8)
	for v := 0; v < g.N(); v++ {
		if res.Cluster.Raw()[v] == Unassigned {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
	if len(res.Sources) == 0 {
		t.Fatal("no sources")
	}
}

func TestSourcesOwnThemselves(t *testing.T) {
	g := graph.Grid2D(10, 10)
	res, _, _ := run(g, 0.3, 3, 8)
	seen := map[int32]bool{}
	for _, s := range res.Sources {
		if res.Cluster.Raw()[s] != s {
			t.Fatalf("source %d labeled %d", s, res.Cluster.Raw()[s])
		}
		if seen[s] {
			t.Fatalf("duplicate source %d", s)
		}
		seen[s] = true
	}
	// Every cluster label is a source.
	for v := 0; v < g.N(); v++ {
		if !seen[res.Cluster.Raw()[v]] {
			t.Fatalf("label %d of vertex %d is not a source", res.Cluster.Raw()[v], v)
		}
	}
}

func TestClustersConnected(t *testing.T) {
	// Each cluster must induce a connected subgraph (vertices were claimed
	// along BFS edges from the source).
	g := graph.GNM(200, 500, 9, true)
	res, _, _ := run(g, 0.4, 11, 8)
	// For each cluster, union its internal edges; then every member must
	// share a set with its source.
	uf := unionfind.NewRef(g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Adj(v) {
			if res.Cluster.Raw()[v] == res.Cluster.Raw()[u] {
				uf.Union(int32(v), u)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if !uf.Same(int32(v), res.Cluster.Raw()[v]) {
			t.Fatalf("vertex %d disconnected from its source %d within cluster", v, res.Cluster.Raw()[v])
		}
	}
}

func TestCrossEdgeFractionTracksBeta(t *testing.T) {
	// Expected cross edges <= beta*m; allow generous slack (3x) since this
	// is a randomized bound and n is modest.
	g := graph.GNM(2000, 10000, 13, true)
	for _, beta := range []float64{0.1, 0.3} {
		res, _, _ := run(g, beta, 17, 8)
		cm := asym.NewMeter(1)
		cross := res.CrossEdges(Explicit{VW: graph.View{G: g, M: cm}}, cm)
		limit := int(3 * beta * float64(g.M()))
		if cross > limit {
			t.Fatalf("beta=%v: cross=%d > %d (m=%d)", beta, cross, limit, g.M())
		}
	}
}

func TestSmallerBetaFewerClusters(t *testing.T) {
	g := graph.Grid2D(40, 40)
	small, _, _ := run(g, 0.05, 5, 8)
	large, _, _ := run(g, 0.8, 5, 8)
	if len(small.Sources) >= len(large.Sources) {
		t.Fatalf("beta=0.05 gave %d clusters, beta=0.8 gave %d",
			len(small.Sources), len(large.Sources))
	}
}

func TestWritesLinearInN(t *testing.T) {
	// Theorem 4.1: O(n) writes regardless of m.
	g := graph.GNM(1000, 20000, 21, true)
	_, m, _ := run(g, 0.1, 23, 16)
	// shifts n + fill n + one claim per vertex (+ sources bookkeeping).
	if m.Writes() > int64(4*g.N()) {
		t.Fatalf("writes = %d for n=%d m=%d", m.Writes(), g.N(), g.M())
	}
}

func TestIterationsLogOverBeta(t *testing.T) {
	// Radius bound O(log n / beta) whp — allow constant 6.
	g := graph.Grid2D(50, 50)
	beta := 0.2
	res, _, _ := run(g, beta, 29, 8)
	n := float64(g.N())
	limit := int(6*logf(n)/beta) + 2
	if res.Iterations > limit {
		t.Fatalf("iterations = %d > %d", res.Iterations, limit)
	}
}

func logf(x float64) float64 {
	// natural log via math is fine; avoid importing math twice in tests
	l := 0.0
	for x > 1 {
		x /= 2.718281828
		l++
	}
	return l + x - 1
}

func TestDeterministicForSeed(t *testing.T) {
	g := graph.GNM(100, 250, 31, true)
	a, _, _ := run(g, 0.3, 99, 8)
	b, _, _ := run(g, 0.3, 99, 8)
	for v := 0; v < g.N(); v++ {
		if a.Cluster.Raw()[v] != b.Cluster.Raw()[v] {
			t.Fatalf("vertex %d differs across runs", v)
		}
	}
}

func TestBetaClamped(t *testing.T) {
	g := graph.Cycle(10)
	res, _, _ := run(g, 5.0, 1, 8) // clamped to 1
	for v := 0; v < g.N(); v++ {
		if res.Cluster.Raw()[v] == Unassigned {
			t.Fatal("unassigned vertex with beta=1")
		}
	}
}

func TestBetaNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g := graph.Cycle(5)
	run(g, 0, 1, 8)
}

func TestSingletonAndEmptyComponents(t *testing.T) {
	// Graph with isolated vertices: each becomes its own cluster eventually.
	g := graph.FromEdges(5, [][2]int32{{0, 1}})
	res, _, _ := run(g, 0.5, 41, 8)
	for v := 0; v < 5; v++ {
		if res.Cluster.Raw()[v] == Unassigned {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
	for v := 2; v < 5; v++ {
		if res.Cluster.Raw()[v] != int32(v) {
			t.Fatalf("isolated vertex %d claimed by %d", v, res.Cluster.Raw()[v])
		}
	}
}
