// Package ldd implements the low-diameter (β, O(log n/β))-decomposition of
// Miller, Peng and Xu [36] in its write-efficient form (paper §4.1,
// Appendix C, Theorem 4.1): every vertex draws a start-time shift δv from an
// exponential distribution with parameter β; the vertex with the largest
// shift starts a breadth-first search first (MPX assign u to the center v
// minimizing d(v,u) − δv), later shifts join in descending order, and all
// live searches advance one level per synchronous round. Vertices are
// assigned to the search that claims them first (arbitrary tie-breaking is
// fine, per Shun et al. [43] footnote 6).
//
// Properties delivered (and asserted by the tests):
//   - every vertex is assigned to exactly one cluster whose source reaches
//     it within O(log n/β) levels whp, so intra-cluster paths are short;
//   - the expected fraction of edges crossing clusters is at most β (the
//     memoryless gap between the two largest shifted arrivals);
//   - asymmetric writes are O(n): one shift write plus one claim write per
//     vertex, with all per-edge traffic being reads.
//
// The decomposition runs over an abstract Neighborhood so that Theorem 4.4
// can apply it to the *implicit* clusters graph of a k-decomposition, whose
// edges are recomputed on demand and never written.
package ldd

import (
	"math"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Unassigned marks vertices not yet claimed by any cluster.
const Unassigned = int32(-1)

// Neighborhood abstracts the graph being decomposed. Implementations charge
// their own access costs to the meter they were built with: the explicit
// adapter charges one read per adjacency word, the implicit clusters-graph
// adapter of package conn charges the O(k²) recomputation of Lemma 4.3.
type Neighborhood interface {
	// Size returns the number of vertices.
	Size() int
	// Visit calls f on each neighbor of v (order must be deterministic).
	Visit(v int32, f func(u int32))
}

// Explicit adapts a metered graph view to the Neighborhood interface.
type Explicit struct{ VW graph.View }

// Size returns the number of vertices.
func (e Explicit) Size() int { return e.VW.G.N() }

// Visit enumerates v's neighbors, charging one read per adjacency word.
func (e Explicit) Visit(v int32, f func(u int32)) { e.VW.VisitNeighbors(int(v), f) }

// Result is a (β, d)-decomposition: Cluster[v] is the source vertex of v's
// cluster; Sources lists cluster sources in start order; Iterations is the
// number of synchronous rounds executed (an upper bound on cluster radius).
type Result struct {
	Cluster    *asym.Array
	Sources    []int32
	Iterations int
}

// Decompose partitions every vertex of nb (all components) with parameter
// beta in (0, 1]. seed makes the exponential shifts reproducible. Costs are
// charged to m: O(n) writes plus whatever nb.Visit charges for reads.
func Decompose(c *parallel.Ctx, nb Neighborhood, m *asym.Meter, beta float64, seed uint64) Result {
	if beta <= 0 {
		panic("ldd: beta must be positive")
	}
	if beta > 1 {
		beta = 1
	}
	n := nb.Size()

	// Draw shifts δv ~ Exp(β) and bucket vertices by start time
	// ⌊δmax⌋ − ⌊δv⌋, so the largest shift starts first. The shift values
	// are stored in asymmetric memory in the original algorithm — one
	// write per vertex — while the bucket lists stand in for the radix
	// step and are charged as unit operations.
	maxBucket := 0
	shift := make([]int, n)
	for v := 0; v < n; v++ {
		u := float64(graph.Hash64(seed, uint64(v))>>11+1) / float64(1<<53)
		d := int(math.Floor(-math.Log(u) / beta))
		shift[v] = d
		if d > maxBucket {
			maxBucket = d
		}
	}
	m.Write(n) // persist shifts
	m.Op(n)
	buckets := make([][]int32, maxBucket+1)
	for v := 0; v < n; v++ {
		start := maxBucket - shift[v]
		buckets[start] = append(buckets[start], int32(v))
	}

	cluster := asym.NewArray(m, n)
	cluster.Fill(Unassigned)
	var sources []int32
	frontier := make([]int32, 0, 64)
	next := make([]int32, 0, 64)
	iter := 0
	visited := 0
	for visited < n {
		// Start new searches from this round's unclaimed shifted vertices.
		if iter < len(buckets) {
			for _, v := range buckets[iter] {
				m.Read(1)
				if cluster.Raw()[v] != Unassigned { //wec:unmetered charged by the m.Read(1) above
					continue
				}
				cluster.Set(int(v), v)
				sources = append(sources, v)
				frontier = append(frontier, v)
				visited++
			}
		}
		// Advance all live searches one level.
		next = next[:0]
		for _, v := range frontier {
			lab := cluster.Get(int(v))
			nb.Visit(v, func(u int32) {
				m.Read(1)
				if cluster.Raw()[u] != Unassigned { //wec:unmetered charged by the m.Read(1) above
					return
				}
				cluster.Set(int(u), lab)
				next = append(next, u)
				visited++
			})
		}
		// Per-round depth: parallel neighbor scans plus the O(ω log n)
		// frontier pack of the write-efficient BFS.
		c.AddDepth(int64(m.Omega()) * logDepth(n))
		frontier, next = next, frontier
		iter++
		if iter > n+len(buckets)+1 {
			panic("ldd: failed to converge") // cannot happen on valid input
		}
	}
	return Result{Cluster: cluster, Sources: sources, Iterations: iter}
}

// CrossEdges counts edges {u,v} with Cluster[u] != Cluster[v], reading each
// adjacency once. Used by tests to check the β bound and by the contraction
// step to size its output.
func (r Result) CrossEdges(nb Neighborhood, m *asym.Meter) int {
	cnt := 0
	for v := 0; v < r.Cluster.Len(); v++ {
		cv := r.Cluster.Get(v)
		nb.Visit(int32(v), func(u int32) {
			if int32(v) < u && r.Cluster.Get(int(u)) != cv {
				cnt++
			}
		})
	}
	return cnt
}

func logDepth(n int) int64 {
	d := int64(1)
	for n > 1 {
		n >>= 1
		d++
	}
	return d
}
