package store

import (
	"repro/internal/obs"
)

// logMetrics is one graph's pre-resolved durability instrument handles.
// They are registered when the GraphLog opens and retired by DeleteGraph
// (via DeleteLabeled), so a recreated graph starts from fresh series. All
// durations are exported in seconds per Prometheus convention; the serving
// layer's /stats JSON reports milliseconds — see docs/observability.md for
// the mapping.
type logMetrics struct {
	walAppend   *obs.Histogram // update/abort record append (excl. fsync)
	walFsync    *obs.Histogram // explicit WAL fsync calls
	walCommit   *obs.Histogram // commit record append + policy fsync
	snapWrite   *obs.Histogram // snapshot encode + durable write
	snapBytes   *obs.Gauge     // size of the newest snapshot file
	compactions *obs.Counter   // snapshots written (WAL fold points)
}

// newLogMetrics registers the per-graph durability families in reg (nil
// selects a fresh private registry, keeping the store usable standalone).
func newLogMetrics(reg *obs.Registry, graphName string) *logMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &logMetrics{
		walAppend: reg.NewHistogramVec("wec_wal_append_seconds",
			"WAL record append latency, excluding fsync.", nil, "graph").With(graphName),
		walFsync: reg.NewHistogramVec("wec_wal_fsync_seconds",
			"WAL fsync latency (policy-dependent: every append, commits only, or never).", nil, "graph").With(graphName),
		walCommit: reg.NewHistogramVec("wec_wal_commit_seconds",
			"Epoch-commit record latency including its policy fsync.", nil, "graph").With(graphName),
		snapWrite: reg.NewHistogramVec("wec_snapshot_write_seconds",
			"Snapshot encode and durable write latency.", nil, "graph").With(graphName),
		snapBytes: reg.NewGaugeVec("wec_snapshot_bytes",
			"Size of the newest durable snapshot file.", "graph").With(graphName),
		compactions: reg.NewCounterVec("wec_compactions_total",
			"Snapshots written (each folds the WAL and rotates the segment).", "graph").With(graphName),
	}
}
