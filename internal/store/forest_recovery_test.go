package store

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

// checkSpanningForestOf verifies forest is a valid spanning forest of g:
// subgraph, acyclic, n - components(g) edges.
func checkSpanningForestOf(t *testing.T, g *graph.Graph, forest [][2]int32) {
	t.Helper()
	uf := unionfind.NewRef(g.N())
	for _, e := range forest {
		if g.EdgeMultiplicity(e[0], e[1]) == 0 {
			t.Fatalf("forest edge %v not in recovered graph", e)
		}
		if !uf.Union(e[0], e[1]) {
			t.Fatalf("forest edge %v closes a cycle", e)
		}
	}
	comps := unionfind.NewRef(g.N())
	want := 0
	for _, e := range g.Edges() {
		if e[0] != e[1] && comps.Union(e[0], e[1]) {
			want++
		}
	}
	if len(forest) != want {
		t.Fatalf("recovered forest has %d edges, want %d", len(forest), want)
	}
}

// TestStoreForestRecovery: the forest and chain depth persisted in a v2
// snapshot come back from recovery, and a WAL tail that changed the edge
// set after the snapshot gets the forest re-based — surviving persisted
// edges kept, the rest completed — so it is always valid for the recovered
// graph.
func TestStoreForestRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir, Options{Fsync: FsyncNone})
	g := graph.Disconnected(graph.Cycle(10), 3) // n=30, 3 components
	l, err := st.CreateGraph("g", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}

	// Persist a snapshot carrying a hand-picked spanning forest (cycle
	// minus one edge per island) and a chain depth.
	var forest [][2]int32
	for _, e := range g.Edges() {
		if e[0]+1 == e[1] { // the consecutive edges of each cycle: a path
			forest = append(forest, e)
		}
	}
	checkSpanningForestOf(t, g, forest)
	if err := l.SaveSnapshot(4, 9, g, map[int32]int32{7: 0}, forest, 13); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Clean recovery: forest and depth come back verbatim.
	st2, rec := openT(t, dir, Options{Fsync: FsyncNone})
	rg := rec.Graphs[0]
	if rg.ChainDepth != 13 {
		t.Fatalf("chain depth %d, want 13", rg.ChainDepth)
	}
	checkSpanningForestOf(t, rg.Graph, rg.Forest)
	kept := map[[2]int32]bool{}
	for _, e := range forest {
		kept[e] = true
	}
	for _, e := range rg.Forest {
		if !kept[e] {
			t.Fatalf("clean recovery replaced forest edge %v", e)
		}
	}

	// A WAL tail that merges two islands and deletes a persisted forest
	// edge: recovery must re-base — keep what survives, absorb the merge,
	// drop the deleted edge — and still return a valid spanning forest.
	if err := rg.Log.LogUpdate(10, [][2]int32{{0, 10}}, [][2]int32{forest[0]}); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3, rec3 := openT(t, dir, Options{Fsync: FsyncNone})
	defer st3.Close()
	rg3 := rec3.Graphs[0]
	if rg3.Graph.M() != g.M() { // one added, one removed
		t.Fatalf("tail fold m=%d, want %d", rg3.Graph.M(), g.M())
	}
	checkSpanningForestOf(t, rg3.Graph, rg3.Forest)
	if rg3.ChainDepth != 13 {
		t.Fatalf("chain depth lost across tail fold: %d", rg3.ChainDepth)
	}
	reused := 0
	still := map[[2]int32]bool{}
	for _, e := range rg3.Forest {
		still[e] = true
	}
	for _, e := range forest[1:] { // everything but the deleted edge survives
		if still[e] {
			reused++
		}
	}
	if reused != len(forest)-1 {
		t.Fatalf("re-base reused %d/%d surviving persisted edges", reused, len(forest)-1)
	}
}
