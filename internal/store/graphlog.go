package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/graph"
)

// GraphLog is one graph's durable log: the current WAL segment plus the
// compaction bookkeeping that decides when to fold the WAL into a fresh
// snapshot. It implements the serving layer's per-graph persistence
// interface (serve.GraphPersister).
//
// Concurrency: LogUpdate is called from the serving layer's update staging
// path (serialized per graph by the engine lock, but the GraphLog takes no
// dependency on that), EpochPublished/SaveSnapshot from the engine's
// background rebuild goroutine. All methods lock l.mu; a compaction holds
// it for the duration of the snapshot encode, which stalls concurrent
// update *staging* briefly but never queries — queries never touch the
// store.
type GraphLog struct {
	dir  string
	name string
	opts Options
	met  *logMetrics

	mu       sync.Mutex
	f        *os.File // current WAL segment (O_APPEND)
	segEpoch int64    // epoch in the current segment's name
	// older holds closed segments not yet covered by a snapshot, with the
	// largest update seq each may contain (an upper bound); a segment is
	// deleted once a snapshot's watermark covers it.
	older map[int64]int64

	segMaxSeq      int64 // largest update seq appended to the current segment
	bytesSinceSnap int64
	lastSnap       time.Time
	snapEpoch      int64 // newest durable snapshot epoch
	snapSeq        int64 // its seq watermark
	closed         bool
}

// countWriter counts bytes written through it (append-size accounting).
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// openGraphLog opens (creating if needed) the WAL segment for snapEpoch.
func openGraphLog(dir, name string, opts Options, snapEpoch, snapSeq int64) (*GraphLog, error) {
	l := &GraphLog{
		dir:       dir,
		name:      name,
		opts:      opts,
		met:       newLogMetrics(opts.Metrics, name),
		segEpoch:  snapEpoch,
		older:     map[int64]int64{},
		lastSnap:  time.Now(),
		snapEpoch: snapEpoch,
		snapSeq:   snapSeq,
	}
	f, err := os.OpenFile(filepath.Join(dir, walName(snapEpoch)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	return l, nil
}

// noteRecovered installs the segment inventory found by recovery: the
// newest segment becomes the append target (already opened at segEpoch ==
// snapEpoch only when they coincide; otherwise reopen the true newest) and
// older segments are tracked for deferred deletion. Called once, before
// the log is shared.
func (l *GraphLog) noteRecovered(segEpochs []int64, segMax map[int64]int64, snapEpoch int64) {
	if len(segEpochs) == 0 {
		return
	}
	newest := segEpochs[len(segEpochs)-1]
	if newest != l.segEpoch {
		// Recovery found segments newer than the snapshot's (e.g. a
		// compaction rotated the WAL but the subsequent snapshot write
		// lost the race with the crash). Append to the newest so ordering
		// stays monotonic.
		if f, err := os.OpenFile(filepath.Join(l.dir, walName(newest)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
			l.f.Close()
			l.f = f
			l.segEpoch = newest
		}
	}
	for _, ep := range segEpochs {
		if ep != l.segEpoch {
			l.older[ep] = segMax[ep]
		} else {
			l.segMaxSeq = segMax[ep]
		}
	}
	// Size-trigger accounting starts from what is already on disk, so a
	// messy recovery compacts sooner rather than never.
	for _, ep := range segEpochs {
		if fi, err := os.Stat(filepath.Join(l.dir, walName(ep))); err == nil {
			l.bytesSinceSnap += fi.Size()
		}
	}
}

// Dir returns the graph's storage directory.
func (l *GraphLog) Dir() string { return l.dir }

// LogUpdate durably appends one accepted update batch. Under FsyncAlways
// the record is synced before return (the batch is then durable before the
// serving layer stages or acknowledges it); under FsyncCommit/FsyncNone
// the append is buffered by the OS, which still survives SIGKILL.
func (l *GraphLog) LogUpdate(seq int64, add, remove [][2]int32) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("store: graph log closed")
	}
	cw := &countWriter{w: l.f}
	start := time.Now()
	if err := appendUpdateRecord(cw, seq, add, remove); err != nil {
		return err
	}
	l.met.walAppend.Observe(time.Since(start).Seconds())
	l.bytesSinceSnap += cw.n
	if seq > l.segMaxSeq {
		l.segMaxSeq = seq
	}
	if l.opts.fsync() == FsyncAlways {
		return l.timedSync()
	}
	return nil
}

// timedSync fsyncs the current segment and observes the latency.
func (l *GraphLog) timedSync() error {
	start := time.Now()
	err := l.f.Sync()
	l.met.walFsync.Observe(time.Since(start).Seconds())
	return err
}

// EpochPublished records that snapshot epoch `epoch` (folding updates
// through seq) was published, then compacts the WAL into a fresh snapshot
// when the size or age trigger fires. Called from the engine's rebuild
// goroutine after every publish; errors are reported through Options.Logf
// because the publish itself already happened — the WAL still holds every
// record needed to recover even if this particular snapshot never lands.
// dyn supplies the conn oracle's dynamic state (persisted by v2
// snapshots); it is invoked only when a compaction trigger actually fires,
// so the publish fast path never pays the forest materialization.
func (l *GraphLog) EpochPublished(epoch, seq int64, g *graph.Graph, dyn func() (map[int32]int32, [][2]int32, int)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	commitStart := time.Now()
	if err := appendCommitRecord(l.f, epoch, seq); err != nil {
		l.opts.logf("store: [%s] commit record: %v", l.name, err)
		return
	}
	if l.opts.fsync() != FsyncNone {
		if err := l.timedSync(); err != nil {
			l.opts.logf("store: [%s] commit sync: %v", l.name, err)
		}
	}
	l.met.walCommit.Observe(time.Since(commitStart).Seconds())
	byTrig := l.opts.compactBytes() > 0 && l.bytesSinceSnap >= l.opts.compactBytes()
	ageTrig := l.opts.compactInterval() > 0 && time.Since(l.lastSnap) >= l.opts.compactInterval() && l.bytesSinceSnap > 0
	if !byTrig && !ageTrig {
		return
	}
	remap, forest, chainDepth := dyn()
	if err := l.compactLocked(epoch, seq, g, remap, forest, chainDepth); err != nil {
		l.opts.logf("store: [%s] compaction at epoch %d: %v", l.name, epoch, err)
	} else {
		l.opts.logf("store: [%s] compacted into %s (seq %d)", l.name, snapshotName(epoch), seq)
	}
}

// LogAbort durably records that the staged batches in the inclusive
// sequence range [fromSeq, toSeq] were dropped by a failed rebuild.
// Without it, recovery would replay update records whose batches the
// server reported as failed — resurrecting edges clients were told never
// landed, and potentially invalidating later acknowledged batches whose
// removals were validated against a graph without them. Synced under any
// policy but FsyncNone (like commits: it guards a correctness boundary).
func (l *GraphLog) LogAbort(fromSeq, toSeq int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("store: graph log closed")
	}
	cw := &countWriter{w: l.f}
	start := time.Now()
	if err := appendAbortRecord(cw, fromSeq, toSeq); err != nil {
		return err
	}
	l.met.walAppend.Observe(time.Since(start).Seconds())
	l.bytesSinceSnap += cw.n
	if l.opts.fsync() != FsyncNone {
		return l.timedSync()
	}
	return nil
}

// SaveSnapshot forces a snapshot of state (epoch, seq, g, conn dynamic
// state) and rotates the WAL — the creation-time initial snapshot and the
// graceful-shutdown fold both come through here.
func (l *GraphLog) SaveSnapshot(epoch, seq int64, g *graph.Graph, remap map[int32]int32, forest [][2]int32, chainDepth int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("store: graph log closed")
	}
	return l.compactLocked(epoch, seq, g, remap, forest, chainDepth)
}

// compactLocked writes the snapshot, rotates to a fresh segment named for
// it, and deletes whatever older files the new snapshot fully covers.
// Rotation happens before the snapshot write, so records appended by a
// concurrent LogUpdate during the encode land in the new segment and are
// never covered-and-deleted by mistake; segments that picked up records
// beyond the snapshot's watermark survive until a later snapshot covers
// them.
func (l *GraphLog) compactLocked(epoch, seq int64, g *graph.Graph, remap map[int32]int32, forest [][2]int32, chainDepth int) error {
	if epoch != l.segEpoch {
		nf, err := os.OpenFile(filepath.Join(l.dir, walName(epoch)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.f.Close()
		// The closed segment may hold records staged after the publish this
		// snapshot captures (they raced in before this compaction took the
		// lock), so it is covered only once a snapshot watermark reaches its
		// true max seq — tracked per append, never assumed.
		l.older[l.segEpoch] = l.segMaxSeq
		l.f = nf
		l.segEpoch = epoch
		l.segMaxSeq = 0
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	writeStart := time.Now()
	path, err := WriteSnapshotFile(l.dir, &Snapshot{
		Epoch: epoch, LastSeq: seq, Base: g,
		Remap: remap, Forest: forest, ChainDepth: chainDepth,
	})
	if err != nil {
		return err
	}
	l.met.snapWrite.Observe(time.Since(writeStart).Seconds())
	if fi, serr := os.Stat(path); serr == nil {
		l.met.snapBytes.Set(float64(fi.Size()))
	}
	l.met.compactions.Inc()
	l.snapEpoch, l.snapSeq = epoch, seq
	l.bytesSinceSnap = 0
	l.lastSnap = time.Now()

	// Reclaim: older segments fully covered by the snapshot, and all but
	// the two newest snapshots.
	for ep, maxSeq := range l.older {
		if maxSeq <= seq {
			os.Remove(filepath.Join(l.dir, walName(ep)))
			delete(l.older, ep)
		}
	}
	if snaps, err := listNumbered(l.dir, "snap-", ".wecs"); err == nil && len(snaps) > 2 {
		for _, ep := range snaps[:len(snaps)-2] {
			os.Remove(filepath.Join(l.dir, snapshotName(ep)))
		}
	}
	return nil
}

// Close closes the segment file. Further appends fail; recovery replays
// whatever was written.
func (l *GraphLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// debugString summarizes the log state (tests).
func (l *GraphLog) debugString() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("seg=%d snap=%d/%d bytes=%d older=%d",
		l.segEpoch, l.snapEpoch, l.snapSeq, l.bytesSinceSnap, len(l.older))
}
