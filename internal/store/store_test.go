package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// dynNone is the empty conn-dynamic-state supplier for EpochPublished.
func dynNone() (map[int32]int32, [][2]int32, int) { return nil, nil, 0 }

// openT opens a store in dir with fast-compaction-free test options.
func openT(t *testing.T, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	st, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st, rec
}

// applyBatches folds WAL-shaped batches onto g the way the serving layer
// would (adds before removes, batch order).
func applyBatches(t *testing.T, g *graph.Graph, batches []walUpdate) *graph.Graph {
	t.Helper()
	ov := graph.NewOverlay(g)
	for _, b := range batches {
		if err := ov.AddEdges(b.Add); err != nil {
			t.Fatalf("apply add: %v", err)
		}
		if err := ov.RemoveEdges(b.Remove); err != nil {
			t.Fatalf("apply remove: %v", err)
		}
	}
	return ov.BuildPlain()
}

// TestStoreCreateRecoverDelete is the basic lifecycle: create two graphs,
// churn one, reopen, and the recovered fleet matches — names in creation
// order, graphs equal to snapshot ⊕ WAL tail, sequence watermarks right.
// Then delete one and reopen again.
func TestStoreCreateRecoverDelete(t *testing.T) {
	dir := t.TempDir()
	st, rec := openT(t, dir, Options{Fsync: FsyncNone})
	if len(rec.Graphs) != 0 {
		t.Fatalf("fresh dir recovered %d graphs", len(rec.Graphs))
	}

	ga := graph.RandomRegular(64, 3, 1)
	gb := graph.Cycle(40)
	la, err := st.CreateGraph("alpha", []byte(`{"omega":16}`))
	if err != nil {
		t.Fatalf("create alpha: %v", err)
	}
	lb, err := st.CreateGraph("beta", []byte(`{"omega":32}`))
	if err != nil {
		t.Fatalf("create beta: %v", err)
	}
	if _, err := st.CreateGraph("alpha", nil); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := st.CreateGraph("../evil", nil); err == nil {
		t.Fatal("path-traversal name accepted")
	}
	if err := la.SaveSnapshot(0, 0, ga, nil, nil, 0); err != nil {
		t.Fatalf("alpha snapshot: %v", err)
	}
	if err := lb.SaveSnapshot(0, 0, gb, nil, nil, 0); err != nil {
		t.Fatalf("beta snapshot: %v", err)
	}

	// Churn beta: two acknowledged batches, one published epoch between.
	batches := []walUpdate{
		{Seq: 1, Add: [][2]int32{{0, 5}, {3, 3}}},
		{Seq: 2, Add: [][2]int32{{1, 7}}, Remove: [][2]int32{{0, 1}}},
	}
	if err := lb.LogUpdate(1, batches[0].Add, batches[0].Remove); err != nil {
		t.Fatalf("log 1: %v", err)
	}
	g1 := applyBatches(t, gb, batches[:1])
	lb.EpochPublished(1, 1, g1, dynNone)
	if err := lb.LogUpdate(2, batches[1].Add, batches[1].Remove); err != nil {
		t.Fatalf("log 2: %v", err)
	}
	st.Close()

	st2, rec2 := openT(t, dir, Options{Fsync: FsyncNone})
	if len(rec2.Graphs) != 2 || rec2.Graphs[0].Name != "alpha" || rec2.Graphs[1].Name != "beta" {
		t.Fatalf("recovered fleet: %+v", rec2.Graphs)
	}
	ra, rb := rec2.Graphs[0], rec2.Graphs[1]
	if string(ra.SpecJSON) != `{"omega":16}` {
		t.Fatalf("alpha spec: %s", ra.SpecJSON)
	}
	if !sameGraph(ra.Graph, ga) || ra.Epoch != 0 || ra.LastSeq != 0 {
		t.Fatalf("alpha recovery: epoch=%d seq=%d", ra.Epoch, ra.LastSeq)
	}
	want := applyBatches(t, gb, batches)
	if !sameGraph(rb.Graph, want) {
		t.Fatalf("beta graph: n=%d m=%d, want n=%d m=%d", rb.Graph.N(), rb.Graph.M(), want.N(), want.M())
	}
	if rb.LastSeq != 2 {
		t.Fatalf("beta lastSeq=%d, want 2", rb.LastSeq)
	}
	// Batch 2 was acknowledged (staged) but never published: its fold costs
	// one epoch beyond the last committed epoch 1.
	if rb.Epoch != 2 {
		t.Fatalf("beta epoch=%d, want 2", rb.Epoch)
	}

	if err := st2.DeleteGraph("alpha"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	st2.Close()

	st3, rec3 := openT(t, dir, Options{Fsync: FsyncNone})
	defer st3.Close()
	if len(rec3.Graphs) != 1 || rec3.Graphs[0].Name != "beta" {
		t.Fatalf("after delete: %+v", rec3.Graphs)
	}
	if _, err := os.Stat(filepath.Join(dir, "graphs", "alpha")); !os.IsNotExist(err) {
		t.Fatalf("alpha dir survives delete: %v", err)
	}
}

// TestStoreTornWALTail simulates a crash mid-append: extra garbage (a torn
// frame) at the WAL tail is truncated away, the intact prefix recovers,
// and the log accepts further appends that then recover too.
func TestStoreTornWALTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir, Options{Fsync: FsyncNone})
	g := graph.Cycle(30)
	l, err := st.CreateGraph("g", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SaveSnapshot(0, 0, g, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.LogUpdate(1, [][2]int32{{2, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear the tail: append half a record's worth of garbage.
	walPath := filepath.Join(dir, "graphs", "g", walName(0))
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{recUpdate, 200, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, rec := openT(t, dir, Options{Fsync: FsyncNone})
	if len(rec.Graphs) != 1 {
		t.Fatalf("recovered %d graphs", len(rec.Graphs))
	}
	rg := rec.Graphs[0]
	if rg.Warn == "" || !strings.Contains(rg.Warn, "truncating") {
		t.Fatalf("torn tail not reported: %q", rg.Warn)
	}
	want := applyBatches(t, g, []walUpdate{{Seq: 1, Add: [][2]int32{{2, 9}}}})
	if !sameGraph(rg.Graph, want) || rg.LastSeq != 1 {
		t.Fatalf("torn-tail recovery wrong: seq=%d", rg.LastSeq)
	}

	// The truncated log keeps working: append seq 2, crash, recover both.
	if err := rg.Log.LogUpdate(2, [][2]int32{{4, 11}}, nil); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, rec3 := openT(t, dir, Options{Fsync: FsyncNone})
	defer st3.Close()
	rg3 := rec3.Graphs[0]
	want = applyBatches(t, g, []walUpdate{
		{Seq: 1, Add: [][2]int32{{2, 9}}},
		{Seq: 2, Add: [][2]int32{{4, 11}}},
	})
	if !sameGraph(rg3.Graph, want) || rg3.LastSeq != 2 {
		t.Fatalf("post-truncation append lost: seq=%d warn=%q", rg3.LastSeq, rg3.Warn)
	}
}

// TestStoreCompaction drives enough churn through a tiny CompactBytes
// threshold to force compactions, then verifies: a fresh snapshot exists at
// the published epoch, fully-covered old segments are gone, at most two
// snapshots are retained, and recovery still reproduces the reference
// graph exactly.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir, Options{Fsync: FsyncNone, CompactBytes: 64})
	g := graph.RandomRegular(48, 3, 3)
	l, err := st.CreateGraph("g", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SaveSnapshot(0, 0, g, nil, nil, 0); err != nil {
		t.Fatal(err)
	}

	cur := g
	rng := graph.NewRNG(5)
	var seq, epoch int64
	for i := 0; i < 12; i++ {
		add := [][2]int32{{int32(rng.Intn(48)), int32(rng.Intn(48))}, {int32(rng.Intn(48)), int32(rng.Intn(48))}}
		seq++
		if err := l.LogUpdate(seq, add, nil); err != nil {
			t.Fatal(err)
		}
		cur = applyBatches(t, cur, []walUpdate{{Seq: seq, Add: add}})
		epoch++
		remap := map[int32]int32{int32(i): 0}
		l.EpochPublished(epoch, seq, cur, func() (map[int32]int32, [][2]int32, int) { return remap, nil, 0 })
	}

	gdir := filepath.Join(dir, "graphs", "g")
	snaps, _ := listNumbered(gdir, "snap-", ".wecs")
	if len(snaps) == 0 || len(snaps) > 2 {
		t.Fatalf("retained snapshots: %v (want 1..2)", snaps)
	}
	if snaps[len(snaps)-1] < 2 {
		t.Fatalf("no compaction happened: newest snapshot epoch %d", snaps[len(snaps)-1])
	}
	segs, _ := listNumbered(gdir, "wal-", ".log")
	if len(segs) > 2 {
		t.Fatalf("old segments not reclaimed: %v", segs)
	}
	st.Close()

	st2, rec := openT(t, dir, Options{Fsync: FsyncNone})
	defer st2.Close()
	rg := rec.Graphs[0]
	if !sameGraph(rg.Graph, cur) {
		t.Fatalf("compacted recovery mismatch: n=%d m=%d want m=%d", rg.Graph.N(), rg.Graph.M(), cur.M())
	}
	if rg.Epoch != epoch || rg.LastSeq != seq {
		t.Fatalf("compacted recovery watermark epoch=%d seq=%d, want %d/%d", rg.Epoch, rg.LastSeq, epoch, seq)
	}
}

// TestStoreCreateWithoutSnapshotDropped: a graph whose creation was logged
// but whose initial snapshot never landed (crash mid-build) is dropped at
// the next open — and the directory cleaned — rather than resurrected
// empty or left to fail every boot.
func TestStoreCreateWithoutSnapshotDropped(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir, Options{Fsync: FsyncNone})
	if _, err := st.CreateGraph("halfbuilt", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec := openT(t, dir, Options{Fsync: FsyncNone})
	defer st2.Close()
	if len(rec.Graphs) != 0 {
		t.Fatalf("half-built graph resurrected: %+v", rec.Graphs[0])
	}
	found := false
	for _, w := range rec.Warnings {
		found = found || strings.Contains(w, "halfbuilt")
	}
	if !found {
		t.Fatalf("no warning about the dropped graph: %v", rec.Warnings)
	}
	if _, err := os.Stat(filepath.Join(dir, "graphs", "halfbuilt")); !os.IsNotExist(err) {
		t.Fatal("half-built dir not cleaned")
	}

	// And its name is reusable.
	if _, err := st2.CreateGraph("halfbuilt", []byte(`{}`)); err != nil {
		t.Fatalf("name not freed: %v", err)
	}
}

// TestStoreAbortedBatchesSkipped: update records covered by an abort
// record (a failed rebuild's dropped batches) are not re-applied on
// recovery, but their sequence numbers stay consumed — the resume
// watermark keeps counting past them even when the newest records are
// aborted.
func TestStoreAbortedBatchesSkipped(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir, Options{Fsync: FsyncNone})
	g := graph.Cycle(24)
	l, err := st.CreateGraph("g", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SaveSnapshot(0, 0, g, nil, nil, 0); err != nil {
		t.Fatal(err)
	}

	// seq 1 dropped by a failed rebuild, seq 2 applied, seq 3 dropped too
	// (and is the newest record in the WAL).
	if err := l.LogUpdate(1, [][2]int32{{0, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.LogAbort(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.LogUpdate(2, [][2]int32{{2, 11}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.LogUpdate(3, [][2]int32{{4, 13}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.LogAbort(3, 3); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec := openT(t, dir, Options{Fsync: FsyncNone})
	defer st2.Close()
	rg := rec.Graphs[0]
	want := applyBatches(t, g, []walUpdate{{Seq: 2, Add: [][2]int32{{2, 11}}}})
	if !sameGraph(rg.Graph, want) {
		t.Fatalf("aborted batches leaked into recovery: m=%d want %d", rg.Graph.M(), want.M())
	}
	if rg.LastSeq != 3 {
		t.Fatalf("resume watermark %d, want 3 (aborted seqs stay consumed)", rg.LastSeq)
	}
}

// TestStoreOrphanDirCleanup: a directory under graphs/ that the manifest
// does not know is removed on open.
func TestStoreOrphanDirCleanup(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir, Options{Fsync: FsyncNone})
	st.Close()
	orphan := filepath.Join(dir, "graphs", "ghost")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, rec := openT(t, dir, Options{Fsync: FsyncNone})
	defer st2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan dir survived open")
	}
	found := false
	for _, w := range rec.Warnings {
		found = found || strings.Contains(w, "ghost")
	}
	if !found {
		t.Fatalf("orphan cleanup not reported: %v", rec.Warnings)
	}
}

// TestStoreSnapshotOverlayPreserved: a snapshot written with a populated
// overlay (base + staged delta) recovers to the same effective graph as
// the materialized form — the two encodings are interchangeable.
func TestStoreSnapshotOverlayPreserved(t *testing.T) {
	dir := t.TempDir()
	base := graph.Cycle(20)
	ov := map[[2]int32]int{{0, 10}: 2, {0, 1}: -1}
	snap := &Snapshot{Epoch: 3, LastSeq: 7, Base: base, Overlay: ov, Remap: map[int32]int32{5: 1}}

	st, _ := openT(t, dir, Options{Fsync: FsyncNone})
	l, err := st.CreateGraph("g", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = l
	if _, err := WriteSnapshotFile(filepath.Join(dir, "graphs", "g"), snap); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec := openT(t, dir, Options{Fsync: FsyncNone})
	defer st2.Close()
	rg := rec.Graphs[0]
	want, err := snap.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(rg.Graph, want) {
		t.Fatal("overlay snapshot materialized differently on recovery")
	}
	if !reflect.DeepEqual(rg.Remap, snap.Remap) {
		t.Fatalf("remap lost: %v", rg.Remap)
	}
	if rg.Epoch != 3 || rg.LastSeq != 7 {
		t.Fatalf("watermark epoch=%d seq=%d", rg.Epoch, rg.LastSeq)
	}
}
