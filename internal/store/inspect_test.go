package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// TestInspectDir drives the inspector over a directory with a churned
// graph, a torn WAL tail, and an orphan directory — and proves the walk is
// strictly read-only (recovery still repairs afterwards, and the torn
// bytes are still there when the inspector is done).
func TestInspectDir(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir, Options{Fsync: FsyncNone})
	g := graph.Cycle(20)
	l, err := st.CreateGraph("main", []byte(`{"omega":16}`))
	if err != nil {
		t.Fatal(err)
	}
	forest := g.Edges()[:19]
	if err := l.SaveSnapshot(0, 0, g, map[int32]int32{3: 1}, forest, 5); err != nil {
		t.Fatal(err)
	}
	if err := l.LogUpdate(1, [][2]int32{{0, 7}}, nil); err != nil {
		t.Fatal(err)
	}
	l.EpochPublished(1, 1, g, dynNone)
	if err := l.LogUpdate(2, [][2]int32{{0, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.LogAbort(2, 2); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear the WAL tail and plant an orphan dir.
	walPath := filepath.Join(dir, "graphs", "main", walName(0))
	f, _ := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{recUpdate, 77, 1})
	f.Close()
	tornSize := fileSize(t, walPath)
	os.MkdirAll(filepath.Join(dir, "graphs", "ghost"), 0o755)

	rep, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Manifest) != 1 || rep.Manifest[0].Name != "main" || rep.Manifest[0].SpecJSON != `{"omega":16}` {
		t.Fatalf("manifest %+v", rep.Manifest)
	}
	byName := map[string]GraphReport{}
	for _, gr := range rep.Graphs {
		byName[gr.Name] = gr
	}
	main, ok := byName["main"]
	if !ok || main.Orphan || !main.HasSpec {
		t.Fatalf("main report %+v", main)
	}
	if ghost, ok := byName["ghost"]; !ok || !ghost.Orphan {
		t.Fatalf("orphan not reported: %+v", byName)
	}

	if len(main.Snapshots) != 1 {
		t.Fatalf("snapshots %+v", main.Snapshots)
	}
	sn := main.Snapshots[0]
	if sn.Err != "" || !sn.CRCOK || sn.Version != SnapshotVersion ||
		sn.Epoch != 0 || sn.GraphN != 20 || sn.GraphM != 20 ||
		sn.Remap != 1 || sn.Forest != 19 || sn.ChainDepth != 5 {
		t.Fatalf("snapshot info %+v", sn)
	}
	if len(main.Segments) != 1 {
		t.Fatalf("segments %+v", main.Segments)
	}
	seg := main.Segments[0]
	if seg.Updates != 2 || seg.Commits != 1 || seg.Aborts != 1 ||
		seg.MinSeq != 1 || seg.MaxSeq != 2 ||
		seg.LastCommitEpoch != 1 || seg.LastCommitSeq != 1 || !seg.Torn {
		t.Fatalf("segment info %+v", seg)
	}

	// Read-only: the torn bytes are untouched and the orphan still exists.
	if got := fileSize(t, walPath); got != tornSize {
		t.Fatalf("inspector changed the WAL: %d -> %d bytes", tornSize, got)
	}
	if _, err := os.Stat(filepath.Join(dir, "graphs", "ghost")); err != nil {
		t.Fatal("inspector removed the orphan dir")
	}

	// A corrupted snapshot is reported, not fatal.
	raw, _ := os.ReadFile(filepath.Join(dir, "graphs", "main", snapshotName(0)))
	raw[len(raw)/2] ^= 0xFF
	os.WriteFile(filepath.Join(dir, "graphs", "main", snapshotName(0)), raw, 0o644)
	rep2, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range rep2.Graphs {
		if gr.Name == "main" {
			if gr.Snapshots[0].Err == "" || gr.Snapshots[0].CRCOK {
				t.Fatalf("corruption not reported: %+v", gr.Snapshots[0])
			}
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
