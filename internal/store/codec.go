// Package store is the durability layer of the serving daemon: a versioned
// binary snapshot codec, a per-graph append-only update WAL, and a fleet
// manifest, composed into crash recovery for cmd/oracled.
//
// The paper's oracles are cheap to query but expensive to (re)build —
// construction is exactly where the write-efficient decomposition spends
// its budget — so losing the in-memory graph fleet on process death means
// re-paying every construction from flags. The store makes the fleet
// survive: each accepted update batch is appended to a per-graph WAL
// *before* it is staged (so an acknowledged batch is always recoverable),
// snapshots periodically fold the WAL into a single CRC-guarded file
// written with atomic rename-into-place, and a manifest log records graph
// create/delete lifecycle events so the set of graphs itself is durable.
//
// On-disk layout under one data directory:
//
//	<datadir>/
//	  MANIFEST.log             create/delete frames, fleet registration order
//	  graphs/<name>/
//	    spec.json              the creation spec (engine parameters)
//	    snap-<epoch17>.wecs    snapshots, newest-valid wins
//	    wal-<epoch17>.log      WAL segments, rotated at each compaction
//
// Recovery per graph: load the newest snapshot that decodes cleanly, replay
// every WAL segment in epoch order applying update records with seq beyond
// the snapshot's, and stop at the first torn or corrupt frame (the tail
// that was mid-write at the crash). The result is handed to the serving
// layer, which rebuilds oracles over it in the background.
package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/graph"
	"repro/internal/graphio"
)

// Snapshot file format (version 2; version 1 lacks the FOREST section and
// remains readable — see DecodeSnapshot's negotiation):
//
//	magic "WECS" | uvarint version | varint epoch | varint lastSeq
//	GRAPH:   uvarint n, delta-encoded edge list (graphio.AppendEdgesDelta)
//	OVERLAY: uvarint count, per entry varint u, varint v, varint delta
//	REMAP:   uvarint count, per entry varint from, varint to
//	FOREST:  delta-encoded edge list, then varint chainDepth   (v2 only)
//	CRC32-C over everything above, 4 bytes LE
//
// The overlay section lets a snapshot be expressed as base + staged
// multiset delta without materializing the merged CSR first; the serving
// daemon writes compacted snapshots with an empty overlay, but the codec
// (and its property tests) treat a populated one as first-class. The remap
// section preserves the connectivity oracle's label-merge table and the
// forest section its maintained spanning forest plus incremental
// patch-chain depth — the durable trace of the incremental update paths —
// so a recovered daemon resumes the dynamic-update machinery (deletion
// absorption, re-base scheduling) where the fleet left off instead of
// starting a fresh chain.

// snapMagic opens every snapshot file.
var snapMagic = []byte("WECS")

// Snapshot format versions. SnapshotVersion is what EncodeSnapshot writes;
// DecodeSnapshot also reads snapshotVersionV1 (pre-forest) so data
// directories written before the forest-field bump survive the upgrade.
const (
	SnapshotVersion   = 2
	snapshotVersionV1 = 1
)

// Snapshot is the durable state of one graph: an immutable base graph, a
// staged edge-multiset overlay on top of it, the connectivity oracle's
// label remap table, and the epoch/seq watermark the state corresponds to.
type Snapshot struct {
	// Epoch is the serving epoch this snapshot captures.
	Epoch int64
	// LastSeq is the highest update-batch sequence number folded into the
	// snapshot; WAL records at or below it are already included.
	LastSeq int64
	// Base is the snapshot's base graph.
	Base *graph.Graph
	// Overlay is a staged multiset delta over Base, keyed by normalized
	// edge (graph.NormEdge): positive = copies added, negative = removed.
	// May be nil/empty (a fully compacted snapshot).
	Overlay map[[2]int32]int
	// Remap is the connectivity oracle's label remap table at Epoch (nil
	// when the oracle had none).
	Remap map[int32]int32
	// Forest is the connectivity oracle's maintained spanning forest at
	// Epoch, normalized and sorted (nil when none was carried — v1
	// snapshots, or a conn-less fleet).
	Forest [][2]int32
	// ChainDepth is the connectivity oracle's incremental patch-chain
	// depth at Epoch (0 for v1 snapshots).
	ChainDepth int
}

// Materialize applies the overlay to the base and returns the effective
// graph the snapshot describes. A snapshot with an empty overlay returns
// the base unchanged.
func (s *Snapshot) Materialize() (*graph.Graph, error) {
	if len(s.Overlay) == 0 {
		return s.Base, nil
	}
	ov := graph.NewOverlay(s.Base)
	var add, remove [][2]int32
	for e, d := range s.Overlay {
		for ; d > 0; d-- {
			add = append(add, e)
		}
		for ; d < 0; d++ {
			remove = append(remove, e)
		}
	}
	if err := ov.AddEdges(add); err != nil {
		return nil, fmt.Errorf("store: overlay: %w", err)
	}
	if err := ov.RemoveEdges(remove); err != nil {
		return nil, fmt.Errorf("store: overlay: %w", err)
	}
	return ov.BuildPlain(), nil
}

// EncodeSnapshot writes s to w in the versioned binary format.
func EncodeSnapshot(w io.Writer, s *Snapshot) error {
	if s.Base == nil {
		return fmt.Errorf("store: snapshot needs a base graph")
	}
	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, SnapshotVersion)
	buf = binary.AppendVarint(buf, s.Epoch)
	buf = binary.AppendVarint(buf, s.LastSeq)

	buf = binary.AppendUvarint(buf, uint64(s.Base.N()))
	var err error
	buf, err = graphio.AppendEdgesDelta(buf, s.Base.Edges())
	if err != nil {
		return err
	}

	buf = binary.AppendUvarint(buf, uint64(len(s.Overlay)))
	for _, e := range sortedOverlayKeys(s.Overlay) {
		buf = binary.AppendVarint(buf, int64(e[0]))
		buf = binary.AppendVarint(buf, int64(e[1]))
		buf = binary.AppendVarint(buf, int64(s.Overlay[e]))
	}

	buf = binary.AppendUvarint(buf, uint64(len(s.Remap)))
	for _, k := range sortedRemapKeys(s.Remap) {
		buf = binary.AppendVarint(buf, int64(k))
		buf = binary.AppendVarint(buf, int64(s.Remap[k]))
	}

	// v2: the maintained spanning forest (normalized+sorted, so the delta
	// codec applies) and the incremental patch-chain depth.
	buf, err = graphio.AppendEdgesDelta(buf, s.Forest)
	if err != nil {
		return fmt.Errorf("store: forest: %w", err)
	}
	buf = binary.AppendVarint(buf, int64(s.ChainDepth))

	buf = binary.LittleEndian.AppendUint32(buf, graphio.Checksum(buf))
	_, err = w.Write(buf)
	return err
}

// DecodeSnapshot reads a snapshot written by EncodeSnapshot, verifying the
// trailing checksum before parsing anything. Truncation, bit corruption,
// wrong magic, and unknown versions all fail with an error wrapping
// graphio.ErrCorrupt or a version error; no partial snapshot is returned.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(raw) < len(snapMagic)+4 {
		return nil, fmt.Errorf("%w: snapshot too short (%d bytes)", graphio.ErrCorrupt, len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if graphio.Checksum(body) != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", graphio.ErrCorrupt)
	}
	if string(body[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("%w: bad snapshot magic", graphio.ErrCorrupt)
	}
	b := body[len(snapMagic):]

	version, b, err := ruv(b)
	if err != nil {
		return nil, err
	}
	// Version negotiation: the current version and its direct predecessor
	// decode (v1 simply lacks the forest section), anything else is
	// rejected — a v3 writer that changes earlier sections would otherwise
	// misparse silently.
	if version != SnapshotVersion && version != snapshotVersionV1 {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (reads %d and %d)",
			version, snapshotVersionV1, SnapshotVersion)
	}
	epoch, b, err := rv(b)
	if err != nil {
		return nil, err
	}
	lastSeq, b, err := rv(b)
	if err != nil {
		return nil, err
	}

	n, b, err := ruv(b)
	if err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("%w: implausible n=%d", graphio.ErrCorrupt, n)
	}
	edges, b, err := graphio.DecodeEdgesDelta(b)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		if uint64(e[1]) >= n {
			return nil, fmt.Errorf("%w: edge (%d,%d) out of range n=%d", graphio.ErrCorrupt, e[0], e[1], n)
		}
	}

	ovCount, b, err := ruv(b)
	if err != nil {
		return nil, err
	}
	if ovCount > uint64(len(b)) {
		return nil, fmt.Errorf("%w: overlay count %d exceeds %d remaining bytes", graphio.ErrCorrupt, ovCount, len(b))
	}
	var overlay map[[2]int32]int
	if ovCount > 0 {
		overlay = make(map[[2]int32]int, ovCount)
	}
	for i := uint64(0); i < ovCount; i++ {
		var u, v, d int64
		if u, b, err = rv(b); err != nil {
			return nil, err
		}
		if v, b, err = rv(b); err != nil {
			return nil, err
		}
		if d, b, err = rv(b); err != nil {
			return nil, err
		}
		if u < 0 || v < u || uint64(v) >= n {
			return nil, fmt.Errorf("%w: overlay edge (%d,%d) invalid for n=%d", graphio.ErrCorrupt, u, v, n)
		}
		overlay[[2]int32{int32(u), int32(v)}] = int(d)
	}

	rmCount, b, err := ruv(b)
	if err != nil {
		return nil, err
	}
	if rmCount > uint64(len(b)) {
		return nil, fmt.Errorf("%w: remap count %d exceeds %d remaining bytes", graphio.ErrCorrupt, rmCount, len(b))
	}
	var remap map[int32]int32
	if rmCount > 0 {
		remap = make(map[int32]int32, rmCount)
	}
	for i := uint64(0); i < rmCount; i++ {
		var from, to int64
		if from, b, err = rv(b); err != nil {
			return nil, err
		}
		if to, b, err = rv(b); err != nil {
			return nil, err
		}
		remap[int32(from)] = int32(to)
	}

	var forest [][2]int32
	var chainDepth int64
	if version >= SnapshotVersion {
		forest, b, err = graphio.DecodeEdgesDelta(b)
		if err != nil {
			return nil, err
		}
		for _, e := range forest {
			if uint64(e[1]) >= n {
				return nil, fmt.Errorf("%w: forest edge (%d,%d) out of range n=%d", graphio.ErrCorrupt, e[0], e[1], n)
			}
		}
		if chainDepth, b, err = rv(b); err != nil {
			return nil, err
		}
		if chainDepth < 0 {
			return nil, fmt.Errorf("%w: negative chain depth %d", graphio.ErrCorrupt, chainDepth)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot", graphio.ErrCorrupt, len(b))
	}

	return &Snapshot{
		Epoch:      epoch,
		LastSeq:    lastSeq,
		Base:       graph.FromEdges(int(n), edges),
		Overlay:    overlay,
		Remap:      remap,
		Forest:     forest,
		ChainDepth: int(chainDepth),
	}, nil
}

// WriteSnapshotFile encodes s and installs it in dir as snap-<epoch>.wecs
// using the tmp-write + fsync + atomic-rename + directory-fsync discipline:
// the final name only ever points at a complete, checksummed file.
func WriteSnapshotFile(dir string, s *Snapshot) (string, error) {
	final := filepath.Join(dir, snapshotName(s.Epoch))
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := EncodeSnapshot(tmp, s); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	return final, syncDir(dir)
}

// snapshotName formats the snapshot filename for an epoch; the zero-padded
// decimal keeps lexicographic order equal to epoch order.
func snapshotName(epoch int64) string { return fmt.Sprintf("snap-%017d.wecs", epoch) }

// walName formats a WAL segment filename; segments are ordered the same
// way.
func walName(epoch int64) string { return fmt.Sprintf("wal-%017d.log", epoch) }

// syncDir fsyncs a directory so a just-renamed or just-created entry
// survives power loss (process-death durability does not need it, but the
// rename-into-place contract promises the stronger property).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func sortedOverlayKeys(m map[[2]int32]int) [][2]int32 {
	keys := make([][2]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

func sortedRemapKeys(m map[int32]int32) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// ruv / rv are the package-local varint readers (byte-slice cursors).
func ruv(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated uvarint", graphio.ErrCorrupt)
	}
	return x, b[n:], nil
}

func rv(b []byte) (int64, []byte, error) {
	x, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", graphio.ErrCorrupt)
	}
	return x, b[n:], nil
}
