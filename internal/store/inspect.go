package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/graphio"
)

// This file is the data-directory inspector behind `oracled inspect`: a
// strictly read-only walk of a store layout — manifest frames, snapshot
// headers, WAL segment coverage — using the same binary codecs the store
// itself writes with. Unlike Open it never truncates a torn tail, never
// rewrites a dirty manifest, never sweeps temp files, and never deletes an
// orphan: it reports what is on disk, damage included, so an operator can
// look at a directory without a daemon (or before trusting one to recover
// it).

// DirReport is everything InspectDir found in one data directory.
type DirReport struct {
	Dir string `json:"dir"`
	// Manifest holds the live graphs in creation order (the first entry is
	// the fleet's recovery-order head).
	Manifest []ManifestEntry `json:"manifest"`
	// Warnings carries manifest damage notes (torn tail, undecodable
	// frames). The inspector repairs nothing.
	Warnings []string `json:"warnings,omitempty"`
	// Graphs reports every graph directory found under graphs/, manifested
	// or orphaned, in name order.
	Graphs []GraphReport `json:"graphs"`
}

// ManifestEntry is one live manifest create record.
type ManifestEntry struct {
	Name     string `json:"name"`
	SpecJSON string `json:"spec_json,omitempty"`
}

// GraphReport is the on-disk state of one graph directory.
type GraphReport struct {
	Name string `json:"name"`
	// Orphan marks a directory not referenced by the manifest (a crashed
	// create or delete; Open would remove it).
	Orphan    bool           `json:"orphan,omitempty"`
	HasSpec   bool           `json:"has_spec"`
	Snapshots []SnapshotInfo `json:"snapshots"`
	Segments  []WALSegment   `json:"wal_segments"`
}

// SnapshotInfo is one snapshot file's header as read from disk. Err is set
// (and the content fields zero) when the file fails its checksum or decode;
// Version is still reported whenever the header is readable.
type SnapshotInfo struct {
	File    string `json:"file"`
	Size    int64  `json:"size"`
	Version uint64 `json:"version,omitempty"`
	CRCOK   bool   `json:"crc_ok"`
	Err     string `json:"error,omitempty"`

	Epoch      int64 `json:"epoch,omitempty"`
	LastSeq    int64 `json:"last_seq,omitempty"`
	GraphN     int   `json:"graph_n,omitempty"`
	GraphM     int   `json:"graph_m,omitempty"`
	Overlay    int   `json:"overlay_entries,omitempty"`
	Remap      int   `json:"remap_entries,omitempty"`
	Forest     int   `json:"forest_edges,omitempty"`
	ChainDepth int   `json:"chain_depth,omitempty"`
}

// WALSegment is one WAL segment's record coverage.
type WALSegment struct {
	File    string `json:"file"`
	Size    int64  `json:"size"`
	Updates int    `json:"updates"`
	Commits int    `json:"commits"`
	Aborts  int    `json:"aborts"`
	// MinSeq/MaxSeq bound the update sequence numbers in the segment
	// (both 0 when it holds no update records).
	MinSeq int64 `json:"min_seq,omitempty"`
	MaxSeq int64 `json:"max_seq,omitempty"`
	// LastCommitEpoch/LastCommitSeq are the newest commit record's
	// watermark (0/0 when the segment holds none).
	LastCommitEpoch int64 `json:"last_commit_epoch,omitempty"`
	LastCommitSeq   int64 `json:"last_commit_seq,omitempty"`
	// Torn reports a damaged tail; GoodBytes is the intact prefix length
	// recovery would truncate to, and Warn the detail.
	Torn      bool   `json:"torn,omitempty"`
	GoodBytes int64  `json:"good_bytes,omitempty"`
	Warn      string `json:"warn,omitempty"`
}

// InspectDir reads a data directory's manifest, snapshot headers and WAL
// segment coverage without modifying anything. It fails only when the
// directory itself is unreadable; per-file damage is reported in place.
func InspectDir(dir string) (*DirReport, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, err
	}
	rep := &DirReport{Dir: dir}

	// Manifest: the same frame walk as recovery, minus every repair.
	live := map[string]bool{}
	if raw, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		b := raw
		name2spec := map[string][]byte{}
		var order []string
		for len(b) > 0 {
			br := bytes.NewReader(b)
			tag, payload, err := graphio.ReadFrame(br)
			if err != nil {
				if !errors.Is(err, io.EOF) {
					rep.Warnings = append(rep.Warnings, fmt.Sprintf("manifest tail damaged: %v", err))
				}
				break
			}
			b = b[len(b)-br.Len():]
			switch tag {
			case manCreate:
				name, spec, err := decodeManifestCreate(payload)
				if err != nil {
					rep.Warnings = append(rep.Warnings, fmt.Sprintf("manifest: %v", err))
					b = nil
					break
				}
				if _, ok := name2spec[name]; !ok {
					order = append(order, name)
				}
				name2spec[name] = spec
			case manDelete:
				name := string(payload)
				if _, ok := name2spec[name]; ok {
					delete(name2spec, name)
					for i, n := range order {
						if n == name {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
			}
		}
		for _, name := range order {
			live[name] = true
			rep.Manifest = append(rep.Manifest, ManifestEntry{Name: name, SpecJSON: string(name2spec[name])})
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	entries, err := os.ReadDir(filepath.Join(dir, "graphs"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return rep, nil
		}
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		gr, err := inspectGraphDir(filepath.Join(dir, "graphs", ent.Name()), ent.Name())
		if err != nil {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("graph %q: %v", ent.Name(), err))
			continue
		}
		gr.Orphan = !live[ent.Name()]
		rep.Graphs = append(rep.Graphs, *gr)
	}
	return rep, nil
}

func inspectGraphDir(dir, name string) (*GraphReport, error) {
	gr := &GraphReport{Name: name}
	if _, err := os.Stat(filepath.Join(dir, "spec.json")); err == nil {
		gr.HasSpec = true
	}

	snapEpochs, err := listNumbered(dir, "snap-", ".wecs")
	if err != nil {
		return nil, err
	}
	for _, ep := range snapEpochs {
		gr.Snapshots = append(gr.Snapshots, inspectSnapshotFile(filepath.Join(dir, snapshotName(ep))))
	}

	segEpochs, err := listNumbered(dir, "wal-", ".log")
	if err != nil {
		return nil, err
	}
	for _, ep := range segEpochs {
		gr.Segments = append(gr.Segments, inspectWALFile(filepath.Join(dir, walName(ep))))
	}
	return gr, nil
}

// inspectSnapshotFile reads one snapshot's header and section counts. The
// CRC is checked first (like DecodeSnapshot); the version is reported even
// for files the full decode rejects, so an operator can tell "future
// format" apart from "bit rot".
func inspectSnapshotFile(path string) SnapshotInfo {
	info := SnapshotInfo{File: filepath.Base(path)}
	raw, err := os.ReadFile(path)
	if err != nil {
		info.Err = err.Error()
		return info
	}
	info.Size = int64(len(raw))
	// Best-effort header peek before the strict decode.
	if len(raw) > len(snapMagic)+4 && string(raw[:len(snapMagic)]) == string(snapMagic) {
		if v, _, err := ruv(raw[len(snapMagic):]); err == nil {
			info.Version = v
		}
		body := raw[:len(raw)-4]
		info.CRCOK = graphio.Checksum(body) == binary.LittleEndian.Uint32(raw[len(raw)-4:])
	}
	snap, err := DecodeSnapshot(bytes.NewReader(raw))
	if err != nil {
		info.Err = err.Error()
		return info
	}
	info.Epoch = snap.Epoch
	info.LastSeq = snap.LastSeq
	info.GraphN = snap.Base.N()
	info.GraphM = snap.Base.M()
	info.Overlay = len(snap.Overlay)
	info.Remap = len(snap.Remap)
	info.Forest = len(snap.Forest)
	info.ChainDepth = snap.ChainDepth
	return info
}

// inspectWALFile summarizes one segment's records via the same replay loop
// recovery uses — without truncating anything on damage.
func inspectWALFile(path string) WALSegment {
	seg := WALSegment{File: filepath.Base(path)}
	if fi, err := os.Stat(path); err == nil {
		seg.Size = fi.Size()
	}
	var acc walReplay
	var maxSeq int64
	good, ok := replayWALFile(path, &acc, &maxSeq)
	seg.GoodBytes = good
	if !ok {
		seg.Torn = true
		seg.Warn = acc.Warn
	}
	seg.Updates = len(acc.Updates)
	seg.Commits = acc.Commits
	seg.Aborts = len(acc.Aborts)
	for i, u := range acc.Updates {
		if i == 0 || u.Seq < seg.MinSeq {
			seg.MinSeq = u.Seq
		}
		if u.Seq > seg.MaxSeq {
			seg.MaxSeq = u.Seq
		}
	}
	seg.LastCommitEpoch = acc.LastCommit.Epoch
	seg.LastCommitSeq = acc.LastCommit.Seq
	return seg
}
