package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphio"
)

// randomSnapshot builds a random but internally consistent snapshot: a
// graph with parallel edges and self-loops, an overlay whose removals are
// valid against base+adds, and a remap table shaped like the chains
// ApplyInsertions produces (keys redirecting to canonical labels).
func randomSnapshot(rng *graph.RNG, maxN int) *Snapshot {
	n := 1 + rng.Intn(maxN)
	m := rng.Intn(3 * n)
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		edges = append(edges, [2]int32{u, v})
		if rng.Intn(8) == 0 { // parallel copy
			edges = append(edges, [2]int32{u, v})
		}
	}
	base := graph.FromEdges(n, edges)

	overlay := map[[2]int32]int{}
	for i := rng.Intn(16); i > 0; i-- {
		e := graph.NormEdge([2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
		overlay[e] += 1 + rng.Intn(3)
	}
	// Stage removals only where base plus staged adds has copies to give.
	for i := rng.Intn(8); i > 0 && base.M() > 0; i-- {
		e := base.Edges()[rng.Intn(base.M())]
		if base.EdgeMultiplicity(e[0], e[1])+overlay[e] > 0 {
			overlay[e]--
			if overlay[e] == 0 {
				delete(overlay, e)
			}
		}
	}
	if len(overlay) == 0 {
		overlay = nil
	}

	var remap map[int32]int32
	if k := rng.Intn(10); k > 0 {
		remap = map[int32]int32{}
		for i := 0; i < k; i++ {
			remap[int32(rng.Intn(n))] = int32(rng.Intn(n))
		}
	}

	// A forest-shaped edge list: a subsample of the base's sorted edge
	// list (the canonical normalized+sorted form the conn oracle hands the
	// store), plus the chain depth it travels with.
	var forest [][2]int32
	for _, e := range base.Edges() {
		if rng.Intn(2) == 0 {
			forest = append(forest, e)
		}
	}

	return &Snapshot{
		Epoch:      int64(rng.Intn(1 << 20)),
		LastSeq:    int64(rng.Intn(1 << 20)),
		Base:       base,
		Overlay:    overlay,
		Remap:      remap,
		Forest:     forest,
		ChainDepth: rng.Intn(200),
	}
}

func encode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, s); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func sameGraph(a, b *graph.Graph) bool {
	return a.N() == b.N() && reflect.DeepEqual(a.Edges(), b.Edges())
}

// TestSnapshotRoundTrip is the property test: random graph + overlay +
// remap chains encode → decode → deep-equal, across many seeds and sizes,
// and the decoded snapshot materializes to the same effective graph.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := graph.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		s := randomSnapshot(rng, 200)
		got, err := DecodeSnapshot(bytes.NewReader(encode(t, s)))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got.Epoch != s.Epoch || got.LastSeq != s.LastSeq {
			t.Fatalf("trial %d: watermark (%d,%d) != (%d,%d)", trial, got.Epoch, got.LastSeq, s.Epoch, s.LastSeq)
		}
		if !sameGraph(got.Base, s.Base) {
			t.Fatalf("trial %d: base graph mismatch", trial)
		}
		if !reflect.DeepEqual(got.Overlay, s.Overlay) {
			t.Fatalf("trial %d: overlay %v != %v", trial, got.Overlay, s.Overlay)
		}
		if !reflect.DeepEqual(got.Remap, s.Remap) {
			t.Fatalf("trial %d: remap %v != %v", trial, got.Remap, s.Remap)
		}
		if len(got.Forest) != len(s.Forest) || (len(s.Forest) > 0 && !reflect.DeepEqual(got.Forest, s.Forest)) {
			t.Fatalf("trial %d: forest %v != %v", trial, got.Forest, s.Forest)
		}
		if got.ChainDepth != s.ChainDepth {
			t.Fatalf("trial %d: chain depth %d != %d", trial, got.ChainDepth, s.ChainDepth)
		}
		wantG, err := s.Materialize()
		if err != nil {
			t.Fatalf("trial %d: materialize original: %v", trial, err)
		}
		gotG, err := got.Materialize()
		if err != nil {
			t.Fatalf("trial %d: materialize decoded: %v", trial, err)
		}
		if !sameGraph(wantG, gotG) {
			t.Fatalf("trial %d: materialized graphs differ", trial)
		}
	}
}

// TestSnapshotEmptyAndEdgeCases pins the degenerate shapes: empty graph,
// no overlay, no remap, zero epoch.
func TestSnapshotEmptyAndEdgeCases(t *testing.T) {
	for _, s := range []*Snapshot{
		{Base: graph.FromEdges(0, nil)},
		{Base: graph.FromEdges(1, nil), Epoch: 1 << 40, LastSeq: 1 << 41},
		{Base: graph.FromEdges(3, [][2]int32{{0, 0}, {0, 0}, {1, 2}}),
			Overlay: map[[2]int32]int{{0, 0}: -1, {1, 2}: 2},
			Remap:   map[int32]int32{2: 0}},
	} {
		got, err := DecodeSnapshot(bytes.NewReader(encode(t, s)))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Epoch != s.Epoch || got.LastSeq != s.LastSeq || !sameGraph(got.Base, s.Base) {
			t.Fatalf("round-trip mismatch: %+v", got)
		}
	}
	if err := EncodeSnapshot(&bytes.Buffer{}, &Snapshot{}); err == nil {
		t.Fatal("encoding a snapshot without a base graph succeeded")
	}
}

// TestSnapshotTruncationRejected: every strict prefix of a valid snapshot
// must fail to decode (no prefix may silently parse as a snapshot).
func TestSnapshotTruncationRejected(t *testing.T) {
	raw := encode(t, randomSnapshot(graph.NewRNG(7), 120))
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", cut, len(raw))
		}
	}
}

// TestSnapshotCorruptionRejected: flipping any single bit anywhere in the
// file must be caught (CRC32 detects all single-bit errors).
func TestSnapshotCorruptionRejected(t *testing.T) {
	raw := encode(t, randomSnapshot(graph.NewRNG(9), 80))
	for pos := 0; pos < len(raw); pos++ {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 1 << bit
			if _, err := DecodeSnapshot(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", pos, bit)
			}
		}
	}
}

// TestSnapshotVersionAndMagic pins the header checks.
func TestSnapshotVersionAndMagic(t *testing.T) {
	s := &Snapshot{Base: graph.FromEdges(2, [][2]int32{{0, 1}})}
	raw := encode(t, s)

	bad := append([]byte("XXXX"), raw[4:]...)
	fixCRC(bad)
	if _, err := DecodeSnapshot(bytes.NewReader(bad)); err == nil || !errors.Is(err, graphio.ErrCorrupt) {
		t.Fatalf("bad magic: err=%v, want ErrCorrupt", err)
	}

	bad = append([]byte(nil), raw...)
	bad[4] = 99 // version varint (single byte for small versions)
	fixCRC(bad)
	if _, err := DecodeSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("future version decoded successfully")
	} else if errors.Is(err, graphio.ErrCorrupt) {
		t.Fatalf("future version reported as corruption, want a version error: %v", err)
	}
}

// encodeV1 hand-writes the version-1 layout (no forest section) — the
// exact bytes a pre-forest daemon's store produced — so the negotiation
// test cannot drift with the current encoder.
func encodeV1(s *Snapshot) []byte {
	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, snapshotVersionV1)
	buf = binary.AppendVarint(buf, s.Epoch)
	buf = binary.AppendVarint(buf, s.LastSeq)
	buf = binary.AppendUvarint(buf, uint64(s.Base.N()))
	buf, _ = graphio.AppendEdgesDelta(buf, s.Base.Edges())
	buf = binary.AppendUvarint(buf, uint64(len(s.Overlay)))
	for _, e := range sortedOverlayKeys(s.Overlay) {
		buf = binary.AppendVarint(buf, int64(e[0]))
		buf = binary.AppendVarint(buf, int64(e[1]))
		buf = binary.AppendVarint(buf, int64(s.Overlay[e]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Remap)))
	for _, k := range sortedRemapKeys(s.Remap) {
		buf = binary.AppendVarint(buf, int64(k))
		buf = binary.AppendVarint(buf, int64(s.Remap[k]))
	}
	return binary.LittleEndian.AppendUint32(buf, graphio.Checksum(buf))
}

// TestSnapshotV1ReadCompat: version-1 snapshots (written before the forest
// field) must keep decoding after the version bump — same graph, overlay
// and remap, with the forest absent and chain depth zero — so existing
// -datadir directories survive the upgrade. Truncated v1 files must still
// be rejected.
func TestSnapshotV1ReadCompat(t *testing.T) {
	rng := graph.NewRNG(11)
	for trial := 0; trial < 50; trial++ {
		s := randomSnapshot(rng, 120)
		raw := encodeV1(s)
		got, err := DecodeSnapshot(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("trial %d: v1 decode: %v", trial, err)
		}
		if got.Epoch != s.Epoch || got.LastSeq != s.LastSeq || !sameGraph(got.Base, s.Base) ||
			!reflect.DeepEqual(got.Overlay, s.Overlay) || !reflect.DeepEqual(got.Remap, s.Remap) {
			t.Fatalf("trial %d: v1 content mismatch", trial)
		}
		if got.Forest != nil || got.ChainDepth != 0 {
			t.Fatalf("trial %d: v1 decode invented forest=%v depth=%d", trial, got.Forest, got.ChainDepth)
		}
	}
	raw := encodeV1(randomSnapshot(rng, 60))
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := DecodeSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncated v1 snapshot (%d/%d bytes) decoded", cut, len(raw))
		}
	}
}

// fixCRC recomputes the trailing checksum so header mutations test the
// *semantic* checks rather than tripping the CRC.
func fixCRC(raw []byte) {
	body := raw[:len(raw)-4]
	sum := graphio.Checksum(body)
	raw[len(raw)-4] = byte(sum)
	raw[len(raw)-3] = byte(sum >> 8)
	raw[len(raw)-2] = byte(sum >> 16)
	raw[len(raw)-1] = byte(sum >> 24)
}

// TestEdgeCodecs exercises the graphio primitives the snapshot and WAL
// build on, including the not-sorted error path of the delta codec.
func TestEdgeCodecs(t *testing.T) {
	rng := graph.NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(500)
		raw := make([][2]int32, rng.Intn(400))
		for i := range raw {
			raw[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		buf := graphio.AppendEdgesRaw(nil, raw)
		got, rest, err := graphio.DecodeEdgesRaw(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("raw decode: err=%v rest=%d", err, len(rest))
		}
		if len(got) != len(raw) || (len(raw) > 0 && !reflect.DeepEqual(got, raw)) {
			t.Fatalf("raw round-trip mismatch")
		}

		sorted := graph.FromEdges(n, raw).Edges()
		dbuf, err := graphio.AppendEdgesDelta(nil, sorted)
		if err != nil {
			t.Fatalf("delta encode: %v", err)
		}
		dgot, rest, err := graphio.DecodeEdgesDelta(dbuf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("delta decode: err=%v rest=%d", err, len(rest))
		}
		if len(dgot) != len(sorted) || (len(sorted) > 0 && !reflect.DeepEqual(dgot, sorted)) {
			t.Fatalf("delta round-trip mismatch")
		}
	}
	if _, err := graphio.AppendEdgesDelta(nil, [][2]int32{{3, 4}, {1, 2}}); err == nil {
		t.Fatal("unsorted edge list delta-encoded successfully")
	}
	if _, err := graphio.AppendEdgesDelta(nil, [][2]int32{{4, 3}}); err == nil {
		t.Fatal("unnormalized edge delta-encoded successfully")
	}
}

// TestFrameTornTail: a frame stream cut at every possible byte boundary
// yields the intact prefix and then exactly one ErrCorrupt (or clean EOF at
// a frame boundary) — the WAL replay contract.
func TestFrameTornTail(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 300)}
	for i, p := range payloads {
		if err := graphio.WriteFrame(&buf, byte('a'+i), p); err != nil {
			t.Fatalf("write frame: %v", err)
		}
	}
	full := buf.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		var seen int
		var terminal error
		for {
			tag, p, err := graphio.ReadFrame(r)
			if err != nil {
				terminal = err
				break
			}
			if tag != byte('a'+seen) || !bytes.Equal(p, payloads[seen]) {
				t.Fatalf("cut %d: frame %d mangled", cut, seen)
			}
			seen++
		}
		if errors.Is(terminal, graphio.ErrCorrupt) {
			continue // torn tail detected — acceptable at any non-boundary cut
		}
		if !errors.Is(terminal, io.EOF) {
			t.Fatalf("cut %d: terminal error %v", cut, terminal)
		}
		// Clean EOF must only happen at frame boundaries.
		want := 0
		off := 0
		for i, p := range payloads {
			var fb bytes.Buffer
			graphio.WriteFrame(&fb, byte('a'+i), p)
			off += fb.Len()
			if off <= cut {
				want = i + 1
			}
		}
		if seen != want {
			t.Fatalf("cut %d: clean EOF after %d frames, want %d", cut, seen, want)
		}
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	// A corrupted length field must not drive a giant allocation.
	var buf bytes.Buffer
	if err := graphio.WriteFrame(&buf, 'x', []byte("ok")); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw := buf.Bytes()
	raw[1] = 0xff // length varint first byte: continuation, huge value
	raw[2] = 0xff
	if _, _, err := graphio.ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}
