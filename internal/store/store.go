package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/spanning"
)

// Fsync policies for WAL appends. Snapshot files are always fsynced before
// the atomic rename regardless of policy.
const (
	// FsyncAlways syncs after every WAL append: an acknowledged update is
	// durable against power loss, not just process death.
	FsyncAlways = "always"
	// FsyncCommit syncs only on epoch-commit records and snapshots:
	// acknowledged updates survive process death (SIGKILL) but a power cut
	// may lose the tail after the last published epoch.
	FsyncCommit = "commit"
	// FsyncNone never syncs the WAL (tests and benchmarks).
	FsyncNone = "none"
)

// ValidFsync reports whether s names a known fsync policy.
func ValidFsync(s string) bool {
	return s == FsyncAlways || s == FsyncCommit || s == FsyncNone
}

// Default compaction thresholds (Options zero values).
const (
	DefaultCompactBytes    = 4 << 20
	DefaultCompactInterval = 5 * time.Minute
)

// Options configures a Store.
type Options struct {
	// Fsync is the WAL sync policy (FsyncAlways / FsyncCommit / FsyncNone);
	// empty selects FsyncCommit.
	Fsync string
	// CompactBytes triggers a compaction once this many WAL bytes
	// accumulated since the last snapshot; 0 selects DefaultCompactBytes,
	// negative disables the size trigger.
	CompactBytes int64
	// CompactInterval triggers a compaction when the last snapshot is older
	// than this and the WAL has grown since; 0 selects
	// DefaultCompactInterval, negative disables the time trigger.
	CompactInterval time.Duration
	// Logf, when non-nil, receives recovery and compaction diagnostics.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the per-graph durability families
	// (WAL append/fsync/commit latency, snapshot write latency and size,
	// compaction counts). Share it with the serving layer's registry so
	// GET /metrics covers both; nil gives each graph log a private
	// registry nothing scrapes.
	Metrics *obs.Registry
}

func (o Options) fsync() string {
	if o.Fsync == "" {
		return FsyncCommit
	}
	return o.Fsync
}

func (o Options) compactBytes() int64 {
	switch {
	case o.CompactBytes == 0:
		return DefaultCompactBytes
	case o.CompactBytes < 0:
		return 0
	}
	return o.CompactBytes
}

func (o Options) compactInterval() time.Duration {
	switch {
	case o.CompactInterval == 0:
		return DefaultCompactInterval
	case o.CompactInterval < 0:
		return 0
	}
	return o.CompactInterval
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Manifest record tags.
const (
	manCreate byte = 'G'
	manDelete byte = 'D'
)

const manifestName = "MANIFEST.log"

// storeNameRE guards manifest names used as path segments; it matches the
// serving layer's graph-name grammar.
var storeNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// Store is one data directory: the fleet manifest plus a GraphLog per live
// graph. All methods are safe for concurrent use; per-graph append traffic
// only contends on its own GraphLog.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	manifest *os.File
	logs     map[string]*GraphLog
	closed   bool
}

// RecoveredGraph is one graph reconstructed from disk by Open.
type RecoveredGraph struct {
	Name     string
	SpecJSON []byte
	// Graph is the recovered effective graph: newest valid snapshot with
	// the WAL tail folded in.
	Graph *graph.Graph
	// Epoch is the serving epoch to resume at — at least the last epoch
	// any client saw acknowledged.
	Epoch int64
	// LastSeq is the highest recovered update sequence number; the serving
	// layer resumes numbering after it.
	LastSeq int64
	// Remap is the connectivity-oracle label remap table from the
	// snapshot (informational: recovered oracles are rebuilt from
	// scratch, which re-canonicalizes labels).
	Remap map[int32]int32
	// Forest is the connectivity oracle's maintained spanning forest,
	// re-based onto the recovered graph: persisted forest edges that
	// survived the WAL tail are kept, the rest is completed from the
	// recovered edge list — so it is always a valid spanning forest of
	// Graph, ready for the serving layer to adopt. Nil when the snapshot
	// carried none (v1 format).
	Forest [][2]int32
	// ChainDepth is the recovered incremental patch-chain depth (0 for v1
	// snapshots); the serving layer resumes its re-base schedule from it.
	ChainDepth int
	// Log is the graph's open WAL, ready for continued appends.
	Log *GraphLog
	// Warn carries non-fatal recovery notes (torn tail truncated, older
	// snapshot used, ...); empty for a clean recovery.
	Warn string
}

// Recovery is everything Open reconstructed from a data directory.
type Recovery struct {
	// Graphs holds every recovered graph in manifest (creation) order —
	// the first entry is the fleet's default graph.
	Graphs []*RecoveredGraph
	// Warnings lists store-level recovery notes (orphan directories
	// removed, unrecoverable graphs dropped, manifest tail truncated).
	Warnings []string
}

// Open opens (creating if needed) a data directory, replays the manifest
// and every live graph's snapshot + WAL, and returns the store ready for
// new appends plus the recovered fleet.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	if !ValidFsync(opts.fsync()) {
		return nil, nil, fmt.Errorf("store: unknown fsync policy %q", opts.Fsync)
	}
	if err := os.MkdirAll(filepath.Join(dir, "graphs"), 0o755); err != nil {
		return nil, nil, err
	}
	st := &Store{dir: dir, opts: opts, logs: map[string]*GraphLog{}}
	rec := &Recovery{}

	// A crash between CreateTemp and the atomic rename (snapshot or
	// manifest rewrite) leaves a *.tmp file nothing references; sweep them
	// so each crash-during-compaction doesn't leak a snapshot-sized file.
	removeTmpFiles(dir)

	names, err := st.replayManifest(rec)
	if err != nil {
		return nil, nil, err
	}

	// Orphan graph directories (created but never manifested, or deleted
	// with the removal interrupted) are cleaned up, never resurrected: the
	// manifest is the authority on fleet membership.
	live := map[string]bool{}
	for _, n := range names {
		live[n] = true
	}
	entries, err := os.ReadDir(filepath.Join(dir, "graphs"))
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range entries {
		if !live[ent.Name()] {
			rec.Warnings = append(rec.Warnings, fmt.Sprintf("removing orphan graph dir %q (not in manifest)", ent.Name()))
			os.RemoveAll(filepath.Join(dir, "graphs", ent.Name()))
		}
	}

	for _, name := range names {
		rg, err := st.openGraph(name)
		if err != nil {
			// Unrecoverable (no valid snapshot at all): drop it from the
			// manifest so the next boot is clean, and say so loudly.
			rec.Warnings = append(rec.Warnings,
				fmt.Sprintf("graph %q unrecoverable, dropping: %v", name, err))
			if derr := st.DeleteGraph(name); derr != nil {
				rec.Warnings = append(rec.Warnings, fmt.Sprintf("dropping %q: %v", name, derr))
			}
			continue
		}
		st.logs[name] = rg.Log
		rec.Graphs = append(rec.Graphs, rg)
	}
	for _, w := range rec.Warnings {
		opts.logf("store: %s", w)
	}
	return st, rec, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// replayManifest reads MANIFEST.log (tolerating a torn tail, which is
// truncated away), rewrites it compacted when it held tombstones or
// damage, and leaves it open for appends. Returns live names in creation
// order.
func (s *Store) replayManifest(rec *Recovery) ([]string, error) {
	path := filepath.Join(s.dir, manifestName)
	var names []string
	name2spec := map[string][]byte{}
	dirty := false
	if raw, err := os.ReadFile(path); err == nil {
		b := raw
		for len(b) > 0 {
			// Frames are read from the in-memory byte slice so a torn
			// tail leaves the prefix intact.
			br := bytes.NewReader(b)
			tag, payload, err := graphio.ReadFrame(br)
			if err != nil {
				if !errors.Is(err, io.EOF) {
					rec.Warnings = append(rec.Warnings, fmt.Sprintf("manifest tail truncated: %v", err))
					dirty = true
				}
				break
			}
			b = b[len(b)-br.Len():]
			switch tag {
			case manCreate:
				name, spec, err := decodeManifestCreate(payload)
				if err != nil {
					rec.Warnings = append(rec.Warnings, fmt.Sprintf("manifest: %v", err))
					dirty = true
					b = nil
					break
				}
				if _, ok := name2spec[name]; !ok {
					names = append(names, name)
				}
				name2spec[name] = spec
			case manDelete:
				name := string(payload)
				if _, ok := name2spec[name]; ok {
					delete(name2spec, name)
					for i, n := range names {
						if n == name {
							names = append(names[:i], names[i+1:]...)
							break
						}
					}
				}
				dirty = true
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	if dirty {
		// Rewrite compacted: live creates only, in order, via tmp+rename.
		tmp, err := os.CreateTemp(s.dir, "manifest-*.tmp")
		if err != nil {
			return nil, err
		}
		defer os.Remove(tmp.Name())
		for _, n := range names {
			if err := writeManifestCreate(tmp, n, name2spec[n]); err != nil {
				tmp.Close()
				return nil, err
			}
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return nil, err
		}
		if err := tmp.Close(); err != nil {
			return nil, err
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			return nil, err
		}
		if err := syncDir(s.dir); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.manifest = f
	return names, nil
}

func writeManifestCreate(w io.Writer, name string, spec []byte) error {
	payload := binary.AppendUvarint(nil, uint64(len(name)))
	payload = append(payload, name...)
	payload = append(payload, spec...)
	return graphio.WriteFrame(w, manCreate, payload)
}

func decodeManifestCreate(payload []byte) (name string, spec []byte, err error) {
	n, b, err := ruv(payload)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(b)) {
		return "", nil, fmt.Errorf("%w: manifest name length %d exceeds payload", graphio.ErrCorrupt, n)
	}
	return string(b[:n]), append([]byte(nil), b[n:]...), nil
}

// CreateGraph durably registers a new graph: its directory and spec.json
// are created, the create event is appended to the manifest (fsynced), and
// an empty WAL at epoch 0 is opened. The caller follows up with
// Log.SaveSnapshot once the graph is materialized; until then the graph
// recovers as unrecoverable-and-dropped, which is the correct outcome for
// a create whose build never finished.
func (s *Store) CreateGraph(name string, specJSON []byte) (*GraphLog, error) {
	if !storeNameRE.MatchString(name) {
		return nil, fmt.Errorf("store: invalid graph name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if _, ok := s.logs[name]; ok {
		return nil, fmt.Errorf("store: graph %q already exists", name)
	}
	dir := filepath.Join(s.dir, "graphs", name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), specJSON, 0o644); err != nil {
		return nil, err
	}
	if err := writeManifestCreate(s.manifest, name, specJSON); err != nil {
		return nil, err
	}
	if err := s.manifest.Sync(); err != nil {
		return nil, err
	}
	l, err := openGraphLog(dir, name, s.opts, 0, 0)
	if err != nil {
		return nil, err
	}
	s.logs[name] = l
	return l, nil
}

// DeleteGraph durably unregisters a graph: tombstone appended to the
// manifest (fsynced), then the directory is removed. A crash in between
// leaves an orphan directory that the next Open cleans up.
func (s *Store) DeleteGraph(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if l, ok := s.logs[name]; ok {
		l.Close()
		delete(s.logs, name)
	}
	if err := graphio.WriteFrame(s.manifest, manDelete, []byte(name)); err != nil {
		return err
	}
	if err := s.manifest.Sync(); err != nil {
		return err
	}
	if s.opts.Metrics != nil {
		// Retire the graph's durability series so a scrape after the delete
		// doesn't report a ghost; the serving layer retires its own families
		// the same way when the registries are shared.
		s.opts.Metrics.DeleteLabeled("graph", name)
	}
	return os.RemoveAll(filepath.Join(s.dir, "graphs", name))
}

// Close closes the manifest and every open graph log. Compaction state is
// flushed but no final snapshot is forced; recovery replays the WAL tails.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, l := range s.logs {
		l.Close()
	}
	s.logs = map[string]*GraphLog{}
	return s.manifest.Close()
}

// removeTmpFiles sweeps crash-orphaned temp files out of one directory.
func removeTmpFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
}

// openGraph recovers one graph's state from its directory.
func (s *Store) openGraph(name string) (*RecoveredGraph, error) {
	dir := filepath.Join(s.dir, "graphs", name)
	removeTmpFiles(dir)
	spec, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}

	var warns []string

	// Newest snapshot that decodes cleanly wins; older ones are fallbacks
	// against latent corruption of the newest.
	snapEpochs, err := listNumbered(dir, "snap-", ".wecs")
	if err != nil {
		return nil, err
	}
	var snap *Snapshot
	for i := len(snapEpochs) - 1; i >= 0 && snap == nil; i-- {
		path := filepath.Join(dir, snapshotName(snapEpochs[i]))
		f, err := os.Open(path)
		if err != nil {
			warns = append(warns, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		sn, err := DecodeSnapshot(f)
		f.Close()
		if err != nil {
			warns = append(warns, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		snap = sn
	}
	if snap == nil {
		return nil, fmt.Errorf("no valid snapshot among %d candidates (%v)", len(snapEpochs), warns)
	}

	// Replay every WAL segment in epoch order. A torn or corrupt frame
	// truncates that segment to its intact prefix and discards anything
	// newer (ordering beyond the damage is unknowable).
	segEpochs, err := listNumbered(dir, "wal-", ".log")
	if err != nil {
		return nil, err
	}
	var replay walReplay
	maxSeq := snap.LastSeq
	segMax := map[int64]int64{}
	for i, ep := range segEpochs {
		path := filepath.Join(dir, walName(ep))
		good, ok := replayWALFile(path, &replay, &maxSeq)
		segMax[ep] = maxSeq
		if !ok {
			warns = append(warns, fmt.Sprintf("WAL damage, truncating %s to %d bytes: %s", filepath.Base(path), good, replay.Warn))
			if err := os.Truncate(path, good); err != nil {
				return nil, fmt.Errorf("truncate damaged WAL: %w", err)
			}
			for _, later := range segEpochs[i+1:] {
				warns = append(warns, fmt.Sprintf("discarding %s (follows damaged segment)", walName(later)))
				os.Remove(filepath.Join(dir, walName(later)))
			}
			break
		}
	}

	// Fold the tail — updates beyond the snapshot's watermark — through the
	// normal Overlay path. Sequence numbers are strictly increasing across
	// segments; anything at or below the snapshot watermark is already
	// folded in, and batches in an aborted range were dropped by a failed
	// rebuild (their updaters saw an error) so they must not be re-applied.
	aborted := func(seq int64) bool {
		for _, a := range replay.Aborts {
			if seq >= a.From && seq <= a.To {
				return true
			}
		}
		return false
	}
	g, err := snap.Materialize()
	if err != nil {
		return nil, err
	}
	applied := snap.LastSeq
	var pendingTail int
	if len(replay.Updates) > 0 {
		ov := graph.NewOverlay(g)
		for _, u := range replay.Updates {
			if u.Seq <= applied || aborted(u.Seq) {
				continue
			}
			if err := ov.AddEdges(u.Add); err != nil {
				warns = append(warns, fmt.Sprintf("WAL replay stopped at seq %d: %v", u.Seq, err))
				break
			}
			if err := ov.RemoveEdges(u.Remove); err != nil {
				warns = append(warns, fmt.Sprintf("WAL replay stopped at seq %d: %v", u.Seq, err))
				break
			}
			applied = u.Seq
			pendingTail++
		}
		if pendingTail > 0 {
			g = ov.BuildPlain()
		}
	}

	// The resume epoch must be at least the last epoch a client saw
	// acknowledged. Commits record published epochs; updates beyond the
	// last commit's coverage may have been published-and-acknowledged with
	// the commit record lost to the crash, so they cost one extra epoch.
	epoch := snap.Epoch
	if replay.LastCommit.Epoch > epoch {
		epoch = replay.LastCommit.Epoch
	}
	covered := snap.LastSeq
	if replay.LastCommit.Seq > covered {
		covered = replay.LastCommit.Seq
	}
	if applied > covered {
		epoch++
	}

	l, err := openGraphLog(dir, name, s.opts, snap.Epoch, snap.LastSeq)
	if err != nil {
		return nil, err
	}
	l.noteRecovered(segEpochs, segMax, snap.Epoch)

	// Re-base the persisted forest onto the recovered graph: the WAL tail
	// may have added or removed edges after the snapshot, so surviving
	// forest edges are kept and the rest completed from the recovered edge
	// list — the incremental half of recovery (the serving layer adopts
	// the result instead of discarding the fleet's dynamic state).
	forest := snap.Forest
	if len(forest) > 0 {
		forest = spanning.Rebase(asym.NewMeter(1), g.N(), g.Edges(), forest)
	}

	return &RecoveredGraph{
		Name:     name,
		SpecJSON: spec,
		Graph:    g,
		Epoch:    epoch,
		// The resume watermark is the highest sequence number ever LOGGED
		// (maxSeq), not the highest folded: aborted or unreplayable
		// batches consumed their numbers, and a recovered engine reusing
		// one would collide with the existing WAL record — whose
		// duplicate the next recovery's monotonic filter would drop.
		LastSeq:    maxSeq,
		Remap:      snap.Remap,
		Forest:     forest,
		ChainDepth: snap.ChainDepth,
		Log:        l,
		Warn:       joinWarns(warns),
	}, nil
}

// listNumbered returns the numeric infixes of dir entries shaped
// prefix<number>suffix, ascending.
func listNumbered(dir, prefix, suffix string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, ent := range entries {
		name := ent.Name()
		if len(name) <= len(prefix)+len(suffix) ||
			name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
			continue
		}
		v, err := strconv.ParseInt(name[len(prefix):len(name)-len(suffix)], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func joinWarns(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += "; "
		}
		out += w
	}
	return out
}
