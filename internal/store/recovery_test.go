package store

// The store↔serve integration: a registry persisted through a real Store,
// churned, "crashed" (the store dropped without any graceful fold), and
// recovered into a fresh registry whose answers must match a from-scratch
// reference engine over the expected edge list. This is the in-process
// core of the smoke-restart e2e (cmd/wecbench -exp restart adds the real
// SIGKILL and process boundary).

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// storePersist adapts Store to serve.RegistryPersister (the same ten lines
// cmd/oracled wires; duplicated here because serve must not import store).
type storePersist struct{ st *Store }

func (p storePersist) CreateGraph(name string, specJSON []byte) (serve.GraphPersister, error) {
	return p.st.CreateGraph(name, specJSON)
}

func (p storePersist) DeleteGraph(name string) error { return p.st.DeleteGraph(name) }

func waitState(t *testing.T, reg *serve.Registry, name string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if st, ok := reg.Status(name); ok && st.State != serve.StateBuilding {
			if st.State != serve.StateReady {
				t.Fatalf("graph %q: %s (%s)", name, st.State, st.Error)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("graph %q never became ready", name)
}

// verifyAgainstReference compares served answers with a from-scratch
// engine over the expected edge multiset: same seed and ω, so labels
// match exactly, not just as a partition.
func verifyAgainstReference(t *testing.T, eng *serve.Engine, n int, edges [][2]int32, omega int, seed uint64) {
	t.Helper()
	ref := serve.New(graph.FromEdges(n, edges), serve.Config{Omega: omega, Seed: seed})
	defer ref.Close()
	rng := graph.NewRNG(777)
	var qs []serve.Query
	kinds := ref.Kinds()
	for i := 0; i < 600; i++ {
		kind := kinds[i%len(kinds)]
		var u, v int32
		if i%3 == 0 && len(edges) > 0 {
			e := edges[rng.Intn(len(edges))]
			u, v = e[0], e[1]
		} else {
			u, v = int32(rng.Intn(n)), int32(rng.Intn(n))
		}
		qs = append(qs, serve.Query{Kind: kind, U: u, V: v})
	}
	got, want := eng.Do(qs), ref.Do(qs)
	for i := range qs {
		g, w := got[i], want[i]
		if (g.Bool == nil) != (w.Bool == nil) || (g.Label == nil) != (w.Label == nil) ||
			(g.Bool != nil && *g.Bool != *w.Bool) || (g.Label != nil && *g.Label != *w.Label) || g.Err != w.Err {
			t.Fatalf("query %d %s(%d,%d): served %+v, reference %+v", i, qs[i].Kind, qs[i].U, qs[i].V, g, w)
		}
	}
}

// TestRegistryStoreCrashRecovery: two graphs created through a persisted
// registry, churned (one incrementally, one with removals), crash-dropped,
// recovered into a new registry — names, watermarks, and every sampled
// answer must match from-scratch references. Then churn continues and a
// second crash/recover round proves sequence continuity.
func TestRegistryStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	const omega, seed = 16, 7

	st, rec, err := Open(dir, Options{Fsync: FsyncNone, CompactBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Graphs) != 0 {
		t.Fatalf("fresh recovery has %d graphs", len(rec.Graphs))
	}
	reg := serve.NewRegistry(serve.RegistryConfig{
		Engine:  serve.Config{Omega: omega, Seed: seed},
		Persist: storePersist{st},
	})

	type tenant struct {
		name  string
		n     int
		edges [][2]int32
	}
	tenants := []*tenant{{name: "alpha", n: 200}, {name: "beta", n: 150}}
	for i, tn := range tenants {
		g := graph.RandomRegular(tn.n, 3, uint64(10+i))
		tn.edges = g.Edges()
		if _, err := reg.CreateFromGraph(tn.name, g, serve.GraphSpec{Name: tn.name, Wait: true}); err != nil {
			t.Fatalf("create %s: %v", tn.name, err)
		}
	}

	// Churn: alpha gets insertion-only batches (incremental path + remap
	// tables), beta gets mixed batches (full rebuilds).
	rng := graph.NewRNG(3)
	churn := func(reg *serve.Registry, tn *tenant, batches int, withRemovals bool) {
		eng, err := reg.Get(tn.name)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < batches; b++ {
			var u serve.Update
			for j := 0; j < 5; j++ {
				u.Add = append(u.Add, [2]int32{int32(rng.Intn(tn.n)), int32(rng.Intn(tn.n))})
			}
			if withRemovals && len(tn.edges) > 3 {
				idx := rng.Intn(len(tn.edges) - 1)
				u.Remove = [][2]int32{tn.edges[idx]}
				tn.edges = append(tn.edges[:idx], tn.edges[idx+1:]...)
			}
			if _, err := eng.Update(u, true); err != nil {
				t.Fatalf("churn %s: %v", tn.name, err)
			}
			tn.edges = append(tn.edges, u.Add...)
		}
	}
	churn(reg, tenants[0], 4, false)
	churn(reg, tenants[1], 3, true)

	alphaEpoch, _ := reg.Get(tenants[0].name)
	wantAlphaEpoch := alphaEpoch.Epoch()
	if wantAlphaEpoch < 4 {
		t.Fatalf("alpha epoch %d after 4 waited batches", wantAlphaEpoch)
	}

	// Crash: close the store abruptly; the registry is simply dropped (no
	// graceful shutdown, no final snapshot).
	st.Close()

	// Recover into a fresh store + registry.
	st2, rec2, err := Open(dir, Options{Fsync: FsyncNone, CompactBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Graphs) != 2 || rec2.Graphs[0].Name != "alpha" || rec2.Graphs[1].Name != "beta" {
		t.Fatalf("recovered fleet %+v", rec2.Graphs)
	}
	reg2 := serve.NewRegistry(serve.RegistryConfig{
		Engine:  serve.Config{Omega: omega, Seed: seed},
		Persist: storePersist{st2},
	})
	for _, rg := range rec2.Graphs {
		var spec serve.GraphSpec
		if err := json.Unmarshal(rg.SpecJSON, &spec); err != nil {
			t.Fatalf("spec of %s: %v", rg.Name, err)
		}
		rs := serve.RecoveredState{Epoch: rg.Epoch, Seq: rg.LastSeq, Forest: rg.Forest, ChainDepth: rg.ChainDepth}
		if _, err := reg2.CreateRecovered(rg.Name, rg.Graph, spec, rg.Log, rs); err != nil {
			t.Fatalf("recover %s: %v", rg.Name, err)
		}
	}
	for i, tn := range tenants {
		waitState(t, reg2, tn.name)
		eng, err := reg2.Get(tn.name)
		if err != nil {
			t.Fatal(err)
		}
		if eng.Graph().N() != tn.n || eng.Graph().M() != len(tn.edges) {
			t.Fatalf("%s recovered shape n=%d m=%d, want n=%d m=%d",
				tn.name, eng.Graph().N(), eng.Graph().M(), tn.n, len(tn.edges))
		}
		if i == 0 && eng.Epoch() < wantAlphaEpoch {
			t.Fatalf("alpha recovered at epoch %d, below last acknowledged %d", eng.Epoch(), wantAlphaEpoch)
		}
		verifyAgainstReference(t, eng, tn.n, tn.edges, omega, seed)
	}

	// Life goes on: more churn against the recovered fleet, then a second
	// crash/recover round (sequence numbers must have continued, not
	// collided with the pre-crash WAL records).
	churn(reg2, tenants[0], 2, true)
	st2.Close()

	st3, rec3, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	reg3 := serve.NewRegistry(serve.RegistryConfig{Engine: serve.Config{Omega: omega, Seed: seed}})
	for _, rg := range rec3.Graphs {
		rs := serve.RecoveredState{Epoch: rg.Epoch, Seq: rg.LastSeq, Forest: rg.Forest, ChainDepth: rg.ChainDepth}
		if _, err := reg3.CreateRecovered(rg.Name, rg.Graph, serve.GraphSpec{}, rg.Log, rs); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, reg3, "alpha")
	eng, err := reg3.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if eng.Graph().M() != len(tenants[0].edges) {
		t.Fatalf("second recovery m=%d, want %d", eng.Graph().M(), len(tenants[0].edges))
	}
	verifyAgainstReference(t, eng, tenants[0].n, tenants[0].edges, omega, seed)
	reg.Close()
	reg2.Close()
	reg3.Close()
}
