package store

// The per-graph write-ahead log. Records are CRC-framed (graphio.WriteFrame)
// and come in two kinds:
//
//	'U' update: varint seq, raw add list, raw remove list — one accepted
//	    /update batch, appended BEFORE the serving layer stages it, so a
//	    batch whose acceptance the client saw is always recoverable.
//	'C' commit: varint epoch, varint seq — snapshot epoch `epoch` was
//	    published and folds in every update with sequence <= seq. Written
//	    after each publish; recovery uses it to restore the epoch counter
//	    to at least the last acknowledged epoch.
//	'A' abort: varint fromSeq, varint toSeq — the staged batches in that
//	    contiguous sequence range were dropped by a failed rebuild (their
//	    updaters saw an error, the served graph excludes them). Recovery
//	    must skip their update records, or it would resurrect edges the
//	    server told clients had failed.
//
// Segments are named wal-<epoch>.log and rotated at each compaction: a new
// snapshot at epoch E opens wal-E.log, and older segments (fully covered by
// the snapshot) are deleted once the snapshot is durably in place. Replay
// reads segments in epoch order and stops at the first torn or corrupt
// frame — the tail that was mid-write when the process died.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/graphio"
)

const (
	recUpdate byte = 'U'
	recCommit byte = 'C'
	recAbort  byte = 'A'
)

// walUpdate is one decoded update record.
type walUpdate struct {
	Seq    int64
	Add    [][2]int32
	Remove [][2]int32
}

// walCommit is one decoded commit record.
type walCommit struct {
	Epoch int64
	Seq   int64
}

// appendUpdateRecord frames and writes an update record.
func appendUpdateRecord(w io.Writer, seq int64, add, remove [][2]int32) error {
	buf := binary.AppendVarint(nil, seq)
	buf = graphio.AppendEdgesRaw(buf, add)
	buf = graphio.AppendEdgesRaw(buf, remove)
	return graphio.WriteFrame(w, recUpdate, buf)
}

// appendCommitRecord frames and writes a commit record.
func appendCommitRecord(w io.Writer, epoch, seq int64) error {
	buf := binary.AppendVarint(nil, epoch)
	buf = binary.AppendVarint(buf, seq)
	return graphio.WriteFrame(w, recCommit, buf)
}

// appendAbortRecord frames and writes an abort record.
func appendAbortRecord(w io.Writer, fromSeq, toSeq int64) error {
	buf := binary.AppendVarint(nil, fromSeq)
	buf = binary.AppendVarint(buf, toSeq)
	return graphio.WriteFrame(w, recAbort, buf)
}

func decodeUpdateRecord(payload []byte) (walUpdate, error) {
	seq, b, err := rv(payload)
	if err != nil {
		return walUpdate{}, err
	}
	add, b, err := graphio.DecodeEdgesRaw(b)
	if err != nil {
		return walUpdate{}, err
	}
	remove, b, err := graphio.DecodeEdgesRaw(b)
	if err != nil {
		return walUpdate{}, err
	}
	if len(b) != 0 {
		return walUpdate{}, fmt.Errorf("%w: %d trailing bytes in update record", graphio.ErrCorrupt, len(b))
	}
	return walUpdate{Seq: seq, Add: add, Remove: remove}, nil
}

func decodeCommitRecord(payload []byte) (walCommit, error) {
	epoch, b, err := rv(payload)
	if err != nil {
		return walCommit{}, err
	}
	seq, b, err := rv(b)
	if err != nil {
		return walCommit{}, err
	}
	if len(b) != 0 {
		return walCommit{}, fmt.Errorf("%w: %d trailing bytes in commit record", graphio.ErrCorrupt, len(b))
	}
	return walCommit{Epoch: epoch, Seq: seq}, nil
}

// walAbort is one decoded abort record: the inclusive dropped seq range.
type walAbort struct {
	From, To int64
}

func decodeAbortRecord(payload []byte) (walAbort, error) {
	from, b, err := rv(payload)
	if err != nil {
		return walAbort{}, err
	}
	to, b, err := rv(b)
	if err != nil {
		return walAbort{}, err
	}
	if len(b) != 0 {
		return walAbort{}, fmt.Errorf("%w: %d trailing bytes in abort record", graphio.ErrCorrupt, len(b))
	}
	return walAbort{From: from, To: to}, nil
}

// walReplay is the merged result of replaying one graph's WAL segments.
type walReplay struct {
	// Updates holds every update record seen, in append order.
	Updates []walUpdate
	// Aborts holds every abort record's dropped seq range.
	Aborts []walAbort
	// LastCommit is the newest commit record (zero-valued when none).
	LastCommit walCommit
	// Commits counts commit records seen.
	Commits int
	// Truncated reports that replay stopped early at a torn or corrupt
	// frame; Warn carries the detail.
	Truncated bool
	Warn      string
}

// countingReader wraps a bufio.Reader and tracks consumed bytes, so replay
// knows the exact offset of the last intact frame (the truncation point
// for a torn tail).
type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// replayWALFile reads one segment into acc, stopping cleanly at a torn
// tail. It returns the byte offset of the end of the last intact frame
// (the length callers truncate a damaged segment to before appending) and
// whether the whole segment was intact. seqMax is updated to the largest
// update sequence seen in this segment.
func replayWALFile(path string, acc *walReplay, seqMax *int64) (good int64, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		acc.Truncated, acc.Warn = true, fmt.Sprintf("open %s: %v", path, err)
		return 0, false
	}
	defer f.Close()
	cr := &countingReader{r: bufio.NewReader(f)}
	for {
		tag, payload, err := graphio.ReadFrame(cr)
		if errors.Is(err, io.EOF) {
			return good, true
		}
		if err != nil {
			acc.Truncated, acc.Warn = true, fmt.Sprintf("%s: %v", path, err)
			return good, false
		}
		switch tag {
		case recUpdate:
			u, err := decodeUpdateRecord(payload)
			if err != nil {
				acc.Truncated, acc.Warn = true, fmt.Sprintf("%s: %v", path, err)
				return good, false
			}
			acc.Updates = append(acc.Updates, u)
			if u.Seq > *seqMax {
				*seqMax = u.Seq
			}
		case recCommit:
			c, err := decodeCommitRecord(payload)
			if err != nil {
				acc.Truncated, acc.Warn = true, fmt.Sprintf("%s: %v", path, err)
				return good, false
			}
			acc.LastCommit = c
			acc.Commits++
		case recAbort:
			a, err := decodeAbortRecord(payload)
			if err != nil {
				acc.Truncated, acc.Warn = true, fmt.Sprintf("%s: %v", path, err)
				return good, false
			}
			acc.Aborts = append(acc.Aborts, a)
		default:
			// Unknown record kinds from a newer writer are skipped, not
			// fatal: the CRC already proved the frame intact, and older
			// readers must tolerate forward-compatible additions.
		}
		good = cr.n
	}
}
