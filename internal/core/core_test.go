package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

func TestSystemDefaults(t *testing.T) {
	g := graph.Cycle(10)
	s := New(g, Config{})
	if s.Omega() <= 1 {
		t.Fatalf("default omega = %d", s.Omega())
	}
	if s.K()*s.K() < s.Omega() {
		t.Fatalf("K = %d too small for omega %d", s.K(), s.Omega())
	}
	s2 := New(g, Config{Omega: 100, K: 5})
	if s2.K() != 5 {
		t.Fatal("K override ignored")
	}
}

func TestEndToEndConnectivity(t *testing.T) {
	g := graph.RandomRegular(300, 3, 7)
	s := New(g, Config{Omega: 64, Seed: 9})
	res := s.ConnectivityParallel(false)
	if res.NumComponents != 1 {
		t.Fatalf("components = %d", res.NumComponents)
	}
	oracle := s.NewConnectivityOracle()
	if !oracle.Connected(0, 299) {
		t.Fatal("oracle disagrees on connected graph")
	}
	if oracle.QueryCost().Writes != 0 {
		t.Fatal("oracle query wrote")
	}
	if oracle.QueryCost().Reads == 0 {
		t.Fatal("oracle query cost not recorded")
	}
	if s.Cost().Writes == 0 || s.Depth() == 0 {
		t.Fatal("system cost not recorded")
	}
}

func TestEndToEndBiconnectivity(t *testing.T) {
	g := graph.Lollipop(8, 6)
	s := New(g, Config{Omega: 16, Seed: 3, K: 4})
	bc := s.NewBCLabeling()
	or := s.NewBiconnectivityOracle()
	// The clique-path attachment vertex is an articulation point; both
	// structures must agree everywhere.
	for v := int32(0); int(v) < g.N(); v++ {
		if bc.IsArticulation(v) != or.IsArticulation(v) {
			t.Fatalf("structures disagree on articulation(%d)", v)
		}
	}
	for _, e := range g.Edges() {
		if bc.IsBridge(e[0], e[1]) != or.IsBridge(e[0], e[1]) {
			t.Fatalf("structures disagree on bridge(%v)", e)
		}
	}
	if bc.NumBCC() != or.NumBCC() {
		t.Fatalf("NumBCC: %d vs %d", bc.NumBCC(), or.NumBCC())
	}
	if len(bc.BlockCutTree()) == 0 {
		t.Fatal("empty block-cut tree on a lollipop")
	}
	if !bc.Same2EdgeCC(0, 1) || bc.Same2EdgeCC(0, int32(g.N()-1)) {
		t.Fatal("2ecc answers wrong")
	}
	if !or.OneEdgeConnected(0, 1) {
		t.Fatal("oracle 2ecc wrong")
	}
	if bc.EdgeLabel(0, 1) < 0 || or.EdgeBCCLabel(0, 1) < 0 {
		t.Fatal("edge labels missing")
	}
	if bc.QueryCost().Reads == 0 || or.QueryCost().Reads == 0 {
		t.Fatal("query costs not recorded")
	}
}

func TestDecompositionFacade(t *testing.T) {
	g := graph.Grid2D(10, 10)
	s := New(g, Config{Omega: 36, Seed: 5})
	d := s.NewDecomposition(false)
	if d.NumCenters() == 0 {
		t.Fatal("no centers")
	}
	seen := 0
	for v := int32(0); int(v) < g.N(); v++ {
		c := d.Center(v)
		if c == v {
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("no vertex is its own center")
	}
	members := d.Cluster(d.Center(0))
	found := false
	for _, v := range members {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("Cluster does not contain the queried vertex")
	}
	if d.QueryCost().Writes != 0 {
		t.Fatal("decomposition queries wrote")
	}
}

func TestSequentialVsBaselinePartitions(t *testing.T) {
	g := graph.GNM(120, 200, 11, false)
	s1 := New(g, Config{Omega: 8, Seed: 1})
	s2 := New(g, Config{Omega: 8, Seed: 1})
	a := s1.ConnectivitySequential(false)
	b := s2.ConnectivityBaseline()
	uf := unionfind.NewRef(g.N())
	for _, e := range g.Edges() {
		uf.Union(e[0], e[1])
	}
	ref := uf.Components()
	for v := 0; v < g.N(); v++ {
		for u := 0; u < v; u++ {
			same := ref[u] == ref[v]
			if (a.Labels.Raw()[u] == a.Labels.Raw()[v]) != same {
				t.Fatal("sequential wrong")
			}
			if (b.Labels.Raw()[u] == b.Labels.Raw()[v]) != same {
				t.Fatal("baseline wrong")
			}
		}
	}
}

func TestSymHighWaterTracked(t *testing.T) {
	g := graph.RandomRegular(200, 3, 13)
	s := New(g, Config{Omega: 64, Seed: 15})
	s.NewConnectivityOracle()
	if s.SymHighWater() == 0 {
		t.Fatal("symmetric memory not tracked")
	}
}

func TestBatchQueriesMatchSingles(t *testing.T) {
	g := graph.RandomRegular(200, 3, 23)
	s := New(g, Config{Omega: 64, Seed: 25})
	co := s.NewConnectivityOracle()
	vs := make([]int32, 64)
	rng := graph.NewRNG(1)
	for i := range vs {
		vs[i] = int32(rng.Intn(g.N()))
	}
	batch := co.ComponentsBatch(vs)
	for i, v := range vs {
		if batch[i] != co.Component(v) {
			t.Fatalf("batch[%d] = %d, single = %d", i, batch[i], co.Component(v))
		}
	}
	bo := s.NewBiconnectivityOracle()
	pairs := make([][2]int32, 32)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))}
	}
	bb := bo.BiconnectedBatch(pairs)
	for i, p := range pairs {
		if bb[i] != bo.Biconnected(p[0], p[1]) {
			t.Fatalf("batch pair %d mismatch", i)
		}
	}
}

func TestSpanningForestFacade(t *testing.T) {
	g := graph.RandomRegular(150, 3, 27)
	s := New(g, Config{Omega: 64, Seed: 29})
	co := s.NewConnectivityOracle()
	forest := co.SpanningForest()
	if len(forest) != g.N()-1 {
		t.Fatalf("forest edges = %d, want %d", len(forest), g.N()-1)
	}
	uf := unionfind.NewRef(g.N())
	for _, e := range forest {
		if !uf.Union(e[0], e[1]) {
			t.Fatal("cycle in forest")
		}
	}
}

func TestBridgeBlockTreeFacade(t *testing.T) {
	g := graph.Lollipop(6, 5) // 5 bridges on the path
	s := New(g, Config{Omega: 16, Seed: 31})
	bc := s.NewBCLabeling()
	bbt := bc.BridgeBlockTree()
	if len(bbt) != 5 {
		t.Fatalf("bridge-block tree edges = %d, want 5", len(bbt))
	}
	for _, e := range bbt {
		if e[0] == e[1] {
			t.Fatal("bridge within a 2ecc component")
		}
	}
	if bc.TwoEdgeLabel(0) != bc.TwoEdgeLabel(1) {
		t.Fatal("clique vertices in different 2ecc components")
	}
	if bc.TwoEdgeLabel(0) == bc.TwoEdgeLabel(int32(g.N()-1)) {
		t.Fatal("path tail shares 2ecc with clique")
	}
}
