// Package core is the public facade of the write-efficient connectivity
// library: it wires the substrates (cost model, fork-join runtime, graphs)
// to the paper's algorithms and exposes them behind a small API.
//
// A System owns one graph, one Asymmetric RAM meter (with write cost ω),
// and one fork-join context. Constructions charge the System's meter;
// every oracle carries its own query meter so construction and query costs
// are separable — exactly the split Table 1 reports.
//
//	g := graph.RandomRegular(100_000, 3, 1)
//	sys := core.New(g, core.Config{Omega: 256})
//	oracle := sys.NewConnectivityOracle()
//	same := oracle.Connected(u, v)
//	fmt.Println(sys.Cost(), oracle.QueryCost())
package core

import (
	"repro/internal/asym"
	"repro/internal/bicc"
	"repro/internal/conn"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Config selects the cost-model and algorithm parameters.
type Config struct {
	// Omega is the asymmetric write cost ω (default asym.DefaultOmega).
	Omega int
	// K overrides the cluster-size parameter of the implicit
	// decomposition; 0 selects the paper's √ω.
	K int
	// Beta overrides the low-diameter decomposition parameter of the
	// parallel connectivity algorithm; 0 selects the paper's 1/ω.
	Beta float64
	// Seed drives all randomized choices (sampling, shifts).
	Seed uint64
	// SymWords bounds the symmetric memory (0 = track the high-water mark
	// without enforcing a limit).
	SymWords int
}

// System binds a graph to one metered execution environment.
type System struct {
	G     *graph.Graph
	cfg   Config
	meter *asym.Meter
	sym   *asym.SymTracker
	ctx   *parallel.Ctx
}

// New creates a System for g under cfg.
func New(g *graph.Graph, cfg Config) *System {
	if cfg.Omega <= 0 {
		cfg.Omega = asym.DefaultOmega
	}
	m := asym.NewMeter(cfg.Omega)
	sym := asym.NewSymTracker(cfg.SymWords)
	return &System{
		G:     g,
		cfg:   cfg,
		meter: m,
		sym:   sym,
		ctx:   parallel.NewCtx(m, sym),
	}
}

// Omega returns the configured write cost.
func (s *System) Omega() int { return s.meter.Omega() }

// K returns the effective cluster parameter (√ω unless overridden).
func (s *System) K() int {
	if s.cfg.K > 0 {
		return s.cfg.K
	}
	return conn.DefaultK(s.meter.Omega())
}

// Cost returns a snapshot of everything charged to the System so far
// (construction traffic; queries charge the per-oracle meters).
func (s *System) Cost() asym.Cost { return s.meter.Snapshot() }

// Depth returns the critical-path cost of the fork-join work so far.
func (s *System) Depth() int64 { return s.ctx.Depth() }

// SymHighWater returns the peak symmetric-memory words used.
func (s *System) SymHighWater() int64 { return s.sym.HighWater() }

// Meter exposes the construction meter (for benchmarks).
func (s *System) Meter() *asym.Meter { return s.meter }

func (s *System) view() graph.View { return graph.View{G: s.G, M: s.meter} }

// --- Connectivity (§4) ---

// ConnectivitySequential runs the classic BFS labeling: O(m) operations,
// O(n) writes.
func (s *System) ConnectivitySequential(wantForest bool) conn.Result {
	return conn.Sequential(s.ctx, s.view(), wantForest)
}

// ConnectivityParallel runs the Theorem 4.2 algorithm: O(n + m/ω) expected
// writes and O(m + ωn) expected work at the default β = 1/ω.
func (s *System) ConnectivityParallel(wantForest bool) conn.Result {
	return conn.Parallel(s.ctx, s.view(), s.cfg.Beta, s.cfg.Seed, wantForest)
}

// ConnectivityBaseline runs the prior-work recursive-contraction algorithm
// [43]: Θ(m) writes per round, hence Θ(ωm) work — the Table 1 comparator.
func (s *System) ConnectivityBaseline() conn.Result {
	return conn.Baseline(s.ctx, s.view(), s.cfg.Seed)
}

// ConnectivityOracle answers component queries in O(√ω) expected reads
// after an O(n/√ω)-write construction (Theorem 4.4).
type ConnectivityOracle struct {
	o  *conn.Oracle
	qm *asym.Meter
	s  *System
}

// NewConnectivityOracle builds the Theorem 4.4 oracle (bounded-degree
// graphs; apply graph.BoundDegree first for others).
func (s *System) NewConnectivityOracle() *ConnectivityOracle {
	o := conn.BuildOracle(s.ctx, s.view(), s.cfg.K, s.cfg.Seed)
	return &ConnectivityOracle{o: o, qm: asym.NewMeter(s.meter.Omega()), s: s}
}

// Component returns v's component label.
func (c *ConnectivityOracle) Component(v int32) int32 {
	return c.o.Query(c.qm, c.s.sym, v)
}

// Connected reports whether u and v share a component.
func (c *ConnectivityOracle) Connected(u, v int32) bool {
	return c.o.Connected(c.qm, c.s.sym, u, v)
}

// NumComponents counts components with stored centers.
func (c *ConnectivityOracle) NumComponents() int { return c.o.NumComponents }

// ComponentsBatch answers a batch of component queries as a parallel for
// over independent queries (queries touch no shared mutable state, so the
// Asymmetric NP depth of the batch is one query plus the O(log n) fork
// spine; §5.4 notes the same for biconnectivity queries).
func (c *ConnectivityOracle) ComponentsBatch(vs []int32) []int32 {
	out := make([]int32, len(vs))
	ctx := parallel.NewCtx(c.qm, c.s.sym)
	ctx.For(0, len(vs), func(cc *parallel.Ctx, i int) {
		out[i] = c.o.Query(c.qm, c.s.sym, vs[i])
		cc.AddDepth(int64(c.s.K()))
	})
	return out
}

// SpanningForest materializes a spanning forest of the graph from the
// oracle's implicit state (§4.3's spanning-forest remark). The enumeration
// itself performs no asymmetric writes; only the returned slice is new.
func (c *ConnectivityOracle) SpanningForest() [][2]int32 {
	var out [][2]int32
	c.o.VisitSpanningForest(c.qm, c.s.sym, func(u, v int32) {
		out = append(out, [2]int32{u, v})
	})
	return out
}

// QueryCost returns the cost charged by queries so far.
func (c *ConnectivityOracle) QueryCost() asym.Cost { return c.qm.Snapshot() }

// --- Biconnectivity (§5) ---

// BCLabeling is the dense biconnectivity structure of §5.2: O(n)-word
// output with O(1) queries.
type BCLabeling struct {
	b  *bicc.BCLabeling
	qm *asym.Meter
}

// NewBCLabeling builds the BC labeling (Lemma 5.1).
func (s *System) NewBCLabeling() *BCLabeling {
	return &BCLabeling{
		b:  bicc.Build(s.ctx, s.view()),
		qm: asym.NewMeter(s.meter.Omega()),
	}
}

// IsBridge reports whether edge {u,v} is a bridge.
func (b *BCLabeling) IsBridge(u, v int32) bool { return b.b.IsBridge(b.qm, u, v) }

// IsArticulation reports whether v is a cut vertex.
func (b *BCLabeling) IsArticulation(v int32) bool { return b.b.IsArticulation(b.qm, v) }

// EdgeLabel returns the biconnected-component label of edge {u,v}.
func (b *BCLabeling) EdgeLabel(u, v int32) int32 { return b.b.EdgeLabel(b.qm, u, v) }

// SameBCC reports whether u and v share a biconnected component.
func (b *BCLabeling) SameBCC(u, v int32) bool { return b.b.SameBCC(b.qm, u, v) }

// Same2EdgeCC reports whether u and v are 1-edge connected.
func (b *BCLabeling) Same2EdgeCC(u, v int32) bool { return b.b.Same2EdgeCC(b.qm, u, v) }

// BlockCutTree returns (component label, articulation vertex) pairs.
func (b *BCLabeling) BlockCutTree() [][2]int32 { return b.b.BlockCutTree(b.qm) }

// BridgeBlockTree returns one (2ecc label, 2ecc label) pair per bridge.
func (b *BCLabeling) BridgeBlockTree() [][2]int32 { return b.b.BridgeBlockTree(b.qm) }

// TwoEdgeLabel returns v's 2-edge-connected component label.
func (b *BCLabeling) TwoEdgeLabel(v int32) int32 { return b.b.TwoEdgeLabel(b.qm, v) }

// NumBCC counts biconnected components with at least one edge.
func (b *BCLabeling) NumBCC() int { return b.b.NumBCC }

// QueryCost returns the cost charged by queries so far.
func (b *BCLabeling) QueryCost() asym.Cost { return b.qm.Snapshot() }

// BiconnectivityOracle is the sublinear-write oracle of §5.3.
type BiconnectivityOracle struct {
	o  *bicc.Oracle
	qm *asym.Meter
	s  *System
}

// NewBiconnectivityOracle builds the Theorem 5.3 oracle (bounded-degree
// graphs; apply graph.BoundDegree first for others).
func (s *System) NewBiconnectivityOracle() *BiconnectivityOracle {
	o := bicc.BuildOracle(s.ctx, s.view(), nil, s.cfg.K, s.cfg.Seed)
	return &BiconnectivityOracle{o: o, qm: asym.NewMeter(s.meter.Omega()), s: s}
}

// IsBridge reports whether edge {u,v} is a bridge.
func (b *BiconnectivityOracle) IsBridge(u, v int32) bool {
	return b.o.IsBridge(b.qm, b.s.sym, u, v)
}

// IsArticulation reports whether v is a cut vertex.
func (b *BiconnectivityOracle) IsArticulation(v int32) bool {
	return b.o.IsArticulation(b.qm, b.s.sym, v)
}

// Biconnected reports whether u and v share a biconnected component.
func (b *BiconnectivityOracle) Biconnected(u, v int32) bool {
	return b.o.Biconnected(b.qm, b.s.sym, u, v)
}

// OneEdgeConnected reports whether no single edge separates u from v.
func (b *BiconnectivityOracle) OneEdgeConnected(u, v int32) bool {
	return b.o.OneEdgeConnected(b.qm, b.s.sym, u, v)
}

// EdgeBCCLabel returns the biconnected-component label of edge {u,v}.
func (b *BiconnectivityOracle) EdgeBCCLabel(u, v int32) int32 {
	return b.o.EdgeBCCLabel(b.qm, b.s.sym, u, v)
}

// NumBCC counts biconnected components with at least one edge.
func (b *BiconnectivityOracle) NumBCC() int { return b.o.NumBCC }

// BiconnectedBatch answers pairwise biconnectivity queries as a parallel
// for over independent queries (§5.4: "multiple queries can be done in
// parallel").
func (b *BiconnectivityOracle) BiconnectedBatch(pairs [][2]int32) []bool {
	out := make([]bool, len(pairs))
	ctx := parallel.NewCtx(b.qm, b.s.sym)
	ctx.For(0, len(pairs), func(cc *parallel.Ctx, i int) {
		out[i] = b.o.Biconnected(b.qm, b.s.sym, pairs[i][0], pairs[i][1])
		cc.AddDepth(int64(b.s.Omega()))
	})
	return out
}

// QueryCost returns the cost charged by queries so far.
func (b *BiconnectivityOracle) QueryCost() asym.Cost { return b.qm.Snapshot() }

// --- Implicit decomposition (§3) ---

// Decomposition exposes the implicit k-decomposition directly.
type Decomposition struct {
	D  *decomp.Decomposition
	qm *asym.Meter
	s  *System
}

// NewDecomposition builds an implicit k-decomposition (Theorem 3.1);
// parallel selects the Lemma 3.7 construction.
func (s *System) NewDecomposition(parallelVariant bool) *Decomposition {
	d := decomp.Build(s.ctx, s.view(), s.K(), s.cfg.Seed,
		decomp.Options{Parallel: parallelVariant})
	return &Decomposition{D: d, qm: asym.NewMeter(s.meter.Omega()), s: s}
}

// Center returns ρ(v), the center of v's cluster.
func (d *Decomposition) Center(v int32) int32 { return d.D.Rho(d.qm, d.s.sym, v) }

// Cluster returns C(s), the members of center s's cluster.
func (d *Decomposition) Cluster(s int32) []int32 { return d.D.Cluster(d.qm, d.s.sym, s) }

// NumCenters returns |S|.
func (d *Decomposition) NumCenters() int { return d.D.NumCenters() }

// QueryCost returns the cost charged by queries so far.
func (d *Decomposition) QueryCost() asym.Cost { return d.qm.Snapshot() }
