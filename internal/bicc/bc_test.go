package bicc

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func buildBC(g *graph.Graph, omega int) (*BCLabeling, *asym.Meter, *parallel.Ctx) {
	m := asym.NewMeter(omega)
	c := parallel.NewCtx(m, asym.NewSymTracker(0))
	return Build(c, graph.View{G: g, M: m}), m, c
}

// figure2 reproduces the paper's Figure 2 graph (1-indexed in the paper,
// 0-indexed here): spanning tree rooted at 1; bridges {(2,5)}, articulation
// points {2,6}, BCCs {{1,2,3,4,6,7},{2,5},{6,8,9}}.
func figure2() *graph.Graph {
	// 0-indexed: bridges {(1,4)}, artic {1,5}, BCCs {{0,1,2,3,5,6},{1,4},{5,7,8}}.
	return graph.FromEdges(9, [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {3, 5}, {0, 5}, {5, 6}, {6, 0},
		{1, 4}, // bridge
		{5, 7}, {7, 8}, {8, 5},
	})
}

// checkAgainstRef compares every query the BC labeling answers against the
// Hopcroft–Tarjan ground truth.
func checkAgainstRef(t *testing.T, g *graph.Graph) {
	t.Helper()
	b, _, _ := buildBC(g, 8)
	ref := NewRef(g)
	qm := asym.NewMeter(8)

	for v := int32(0); int(v) < g.N(); v++ {
		if got, want := b.IsArticulation(qm, v), ref.IsArticulation[v]; got != want {
			t.Fatalf("IsArticulation(%d) = %v, want %v", v, got, want)
		}
	}
	for i, e := range g.Edges() {
		if e[0] == e[1] {
			continue
		}
		if got, want := b.IsBridge(qm, e[0], e[1]), ref.BridgeSet[i]; got != want {
			t.Fatalf("IsBridge(%d,%d) = %v, want %v", e[0], e[1], got, want)
		}
	}
	// Edge labels must induce the same partition as the reference.
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i, e := range g.Edges() {
		if e[0] == e[1] {
			continue
		}
		got := b.EdgeLabel(qm, e[0], e[1])
		want := ref.EdgeBCC[i]
		if x, ok := fwd[got]; ok && x != want {
			t.Fatalf("edge (%d,%d): label %d maps to both %d and %d", e[0], e[1], got, x, want)
		}
		if x, ok := bwd[want]; ok && x != got {
			t.Fatalf("edge (%d,%d): ref %d maps to both %d and %d", e[0], e[1], want, x, got)
		}
		fwd[got] = want
		bwd[want] = got
	}
	if b.NumBCC != ref.NumBCC {
		t.Fatalf("NumBCC = %d, want %d", b.NumBCC, ref.NumBCC)
	}
	// Pairwise vertex queries on a sample.
	rng := graph.NewRNG(12345)
	for i := 0; i < 200; i++ {
		u := int32(rng.Intn(g.N()))
		v := int32(rng.Intn(g.N()))
		if u == v {
			continue
		}
		if got, want := b.SameBCC(qm, u, v), ref.SameBCC(u, v); got != want {
			t.Fatalf("SameBCC(%d,%d) = %v, want %v", u, v, got, want)
		}
		if got, want := b.Same2EdgeCC(qm, u, v), ref.TwoEdgeCC[u] == ref.TwoEdgeCC[v]; got != want {
			t.Fatalf("Same2EdgeCC(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func TestFigure2(t *testing.T) {
	g := figure2()
	b, _, _ := buildBC(g, 8)
	qm := asym.NewMeter(8)
	if !b.IsBridge(qm, 1, 4) {
		t.Fatal("(1,4) not a bridge")
	}
	if b.IsBridge(qm, 0, 1) || b.IsBridge(qm, 5, 7) {
		t.Fatal("false bridge")
	}
	wantArtic := map[int32]bool{1: true, 5: true}
	for v := int32(0); v < 9; v++ {
		if b.IsArticulation(qm, v) != wantArtic[v] {
			t.Fatalf("IsArticulation(%d) = %v", v, b.IsArticulation(qm, v))
		}
	}
	if b.NumBCC != 3 {
		t.Fatalf("NumBCC = %d, want 3", b.NumBCC)
	}
	// {5,7,8} share a BCC; 1 and 4 share the bridge BCC; 0 and 7 do not.
	if !b.SameBCC(qm, 5, 7) || !b.SameBCC(qm, 1, 4) || b.SameBCC(qm, 0, 7) {
		t.Fatal("SameBCC wrong on figure 2")
	}
	checkAgainstRef(t, g)
}

func TestAgainstRefFamilies(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"cycle":      graph.Cycle(30),
		"path":       graph.Path(20),
		"ladder":     graph.Ladder(15),
		"lollipop":   graph.Lollipop(8, 10),
		"grid":       graph.Grid2D(7, 7),
		"tree":       graph.RandomTree(60, 3),
		"gnm":        graph.GNM(80, 120, 5, true),
		"gnm-sparse": graph.GNM(100, 110, 7, true),
		"two-comps":  graph.Disconnected(graph.Lollipop(6, 4), 2),
		"star":       graph.Star(12),
		"complete":   graph.Complete(8),
	} {
		t.Run(name, func(t *testing.T) { checkAgainstRef(t, g) })
	}
}

func TestAgainstRefProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(60, 90, seed, false)
		b, _, _ := buildBC(g, 4)
		ref := NewRef(g)
		qm := asym.NewMeter(4)
		for v := int32(0); int(v) < g.N(); v++ {
			if b.IsArticulation(qm, v) != ref.IsArticulation[v] {
				return false
			}
		}
		for i, e := range g.Edges() {
			if e[0] == e[1] {
				continue
			}
			if b.IsBridge(qm, e[0], e[1]) != ref.BridgeSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBCLabelingWrites(t *testing.T) {
	// Lemma 5.1: O(n + m/ω) writes — in particular writes must not scale
	// with m the way the standard Θ(m)-size output does.
	dense := graph.GNM(500, 8000, 9, true)
	b, m, _ := buildBC(dense, 16)
	_ = b
	// Allowance: c·n for the forest, ranks, lifting tables (log n factor),
	// labels, heads, and 2ecc labels.
	limit := int64(30 * dense.N())
	if m.Writes() > limit {
		t.Fatalf("writes = %d > %d (n=%d m=%d)", m.Writes(), limit, dense.N(), dense.M())
	}
	if m.Writes() > int64(dense.M()) {
		t.Fatalf("writes = %d exceed m=%d: no better than the classic output",
			m.Writes(), dense.M())
	}
}

func TestQueriesNoWrites(t *testing.T) {
	g := graph.Lollipop(10, 10)
	b, _, _ := buildBC(g, 8)
	qm := asym.NewMeter(8)
	before := qm.Writes()
	b.IsArticulation(qm, 3)
	b.IsBridge(qm, 9, 10)
	b.SameBCC(qm, 0, 5)
	b.Same2EdgeCC(qm, 0, 5)
	b.EdgeLabel(qm, 0, 1)
	if qm.Writes() != before {
		t.Fatal("queries wrote to asymmetric memory")
	}
	if qm.Reads() == 0 {
		t.Fatal("queries charged no reads")
	}
}

func TestBlockCutTree(t *testing.T) {
	g := figure2()
	b, _, _ := buildBC(g, 8)
	qm := asym.NewMeter(8)
	bct := b.BlockCutTree(qm)
	// Figure 2: articulation points {1,5}; vertex 1 joins its own BCC and
	// heads the bridge BCC; vertex 5 joins its own and heads {5,7,8}.
	if len(bct) != 4 {
		t.Fatalf("block-cut tree edges = %v", bct)
	}
	seen := map[int32]int{}
	for _, e := range bct {
		seen[e[1]]++
	}
	if seen[1] != 2 || seen[5] != 2 {
		t.Fatalf("articulation degrees: %v", seen)
	}
}

func TestEdgeLabelConsistentWithinBCC(t *testing.T) {
	g := graph.Ladder(10)
	b, _, _ := buildBC(g, 8)
	qm := asym.NewMeter(8)
	// The ladder is biconnected: every edge must carry one label.
	labels := map[int32]bool{}
	for _, e := range g.Edges() {
		labels[b.EdgeLabel(qm, e[0], e[1])] = true
	}
	if len(labels) != 1 {
		t.Fatalf("biconnected graph produced %d labels", len(labels))
	}
	if b.NumBCC != 1 {
		t.Fatalf("NumBCC = %d", b.NumBCC)
	}
}

func TestIsolatedAndTinyGraphs(t *testing.T) {
	// Isolated vertices, a single edge, empty graph.
	g := graph.FromEdges(4, [][2]int32{{0, 1}})
	b, _, _ := buildBC(g, 4)
	qm := asym.NewMeter(4)
	if !b.IsBridge(qm, 0, 1) {
		t.Fatal("single edge not a bridge")
	}
	if b.IsArticulation(qm, 0) || b.IsArticulation(qm, 1) {
		t.Fatal("endpoints of a single edge are not articulation points")
	}
	if b.NumBCC != 1 {
		t.Fatalf("NumBCC = %d", b.NumBCC)
	}

	empty := graph.FromEdges(3, nil)
	be, _, _ := buildBC(empty, 4)
	if be.NumBCC != 0 {
		t.Fatalf("empty graph NumBCC = %d", be.NumBCC)
	}
}

func TestRefSelfConsistency(t *testing.T) {
	// The reference itself on known shapes.
	g := graph.Lollipop(5, 3) // K5 + path of 3
	ref := NewRef(g)
	// K5 part: one BCC; each path edge its own BCC. Total 1 + 3.
	if ref.NumBCC != 4 {
		t.Fatalf("NumBCC = %d", ref.NumBCC)
	}
	if !ref.IsArticulation[4] { // clique vertex attached to path
		t.Fatal("attachment not articulation")
	}
	if ref.IsArticulation[0] {
		t.Fatal("interior clique vertex marked articulation")
	}
	if !ref.IsBridge(4, 5) || !ref.IsBridge(5, 6) {
		t.Fatal("path edges not bridges")
	}
	if ref.IsBridge(0, 1) {
		t.Fatal("clique edge marked bridge")
	}
	if ref.SameBCC(0, 5) {
		t.Fatal("clique interior and path vertex share BCC")
	}
	if !ref.SameBCC(4, 5) {
		t.Fatal("bridge endpoints share no BCC")
	}
}
