package bicc

import (
	"slices"

	"repro/internal/asym"
	"repro/internal/decomp"
	"repro/internal/graph"
)

// This file holds the query side of the §5.3 oracle: on-demand local-graph
// construction (Definition 4) and the bridge / articulation-point /
// biconnected / 1-edge-connected / edge-label queries, each touching at
// most three local graphs plus O(1) stored words.
//
// Every query method comes in two forms: the plain paper-pristine form
// (IsBridge, ...) that allocates per call, and an S-variant (IsBridgeS,
// ...) threading an optional reusable *Scratch and *ClusterCache — the
// serving layer's warm path. The plain form is the S form with nil for
// both; answers and charged costs are identical across all four
// combinations (cache hits replay the fill's recorded charges, see
// cache.go).
//
// Concurrency contract: every stored field of Oracle is written by
// BuildOracle and read-only afterwards. Local graphs and small-component
// materializations are rebuilt per call in symmetric memory and never
// cached *on the Oracle*; the optional ClusterCache is the caller-owned,
// internally locked exception, and it keeps the paper's O(k²) read cost
// visible by replaying the fill-time charges on every hit. The one lazy
// structure reachable from a query, the Euler-tour LCA lifting table, is
// forced at construction and guarded by a sync.Once in package eulertour.
// Queries may therefore run from any number of goroutines concurrently
// (scratches must be goroutine-local; a cache may be shared); each call
// charges only the Meter/SymTracker it is handed.

// clusterOf returns the center index of v's cluster, or -1 for vertices of
// small primary-free components (implicit centers).
func (o *Oracle) clusterOf(m *asym.Meter, sym *asym.SymTracker, v int32) int32 {
	return o.clusterOfS(m, sym, nil, v)
}

// clusterOfS is clusterOf with a reusable search scratch (nil allocates
// per call).
//
//wec:noalloc
func (o *Oracle) clusterOfS(m *asym.Meter, sym *asym.SymTracker, sc *decomp.Scratch, v int32) int32 {
	s := o.D.RhoS(m, sym, sc, v)
	return int32(o.D.CenterIndex(m, s))
}

// local rebuilds the Definition 4 local graph of cluster ci in symmetric
// memory: O(k²) expected reads, no writes.
func (o *Oracle) local(m *asym.Meter, sym *asym.SymTracker, ci int32) *localGraph {
	return o.buildLocal(m, sym, nil, ci)
}

// buildLocal is the local-graph construction behind local (nil sc) and the
// cache fill of localS (any sc). A non-nil scratch supplies the transient
// build buffers — member list, tree-neighbor list, edge list, label and
// witness sets — while the returned *localGraph always owns its maps and
// node list: it is the artifact the ClusterCache retains, so nothing in it
// may alias the scratch.
func (o *Oracle) buildLocal(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, ci int32) *localGraph {
	d := o.D
	s := d.Center(m, int(ci))
	members := d.ClusterS(m, sym, sc.dscratch(), s)
	if sc != nil {
		// NeighborCentersS below reuses the scratch's cluster buffers, so
		// keep a private copy of the member list for the later passes.
		sc.members = append(sc.members[:0], members...)
		members = sc.members
	}
	lg := &localGraph{
		idOf:   make(map[int32]int32, 2*len(members)),
		inside: make(map[int32]bool, len(members)),
		voEdge: map[int32]int32{},
	}
	addNode := func(v int32) int32 {
		if id, ok := lg.idOf[v]; ok {
			return id
		}
		id := int32(len(lg.nodes))
		lg.idOf[v] = id
		lg.nodes = append(lg.nodes, v)
		return id
	}
	for _, v := range members {
		lg.inside[v] = true
		addNode(v)
	}
	if sym != nil {
		sym.Acquire(4 * len(members))
		defer sym.Release(4 * len(members))
	}

	// Tree neighbors: the parent edge plus one edge per child cluster.
	var tns []treeNbr
	if sc != nil {
		tns = sc.tns[:0]
	}
	if o.parentCluster[ci] != ci {
		// The grouping label of a tree edge is the BC label of its lower
		// endpoint (§5.2), so the parent edge (P, C) carries l(C) — two
		// tree edges incident to C share a clusters-graph BCC exactly when
		// their labels match, which is the Definition 4 chaining rule.
		tns = append(tns, treeNbr{
			child: ci, inV: o.rootVertex[ci], outV: o.parentAttach[ci],
			isPar: true, labelC: o.clusterLabel[ci],
		})
		m.Read(3)
	}
	// Children are found among neighbor clusters.
	for _, e := range o.D.NeighborCentersS(m, sym, sc.dscratch(), s) {
		cj := int32(o.D.CenterIndex(m, e.Other))
		m.Read(1)
		if o.parentCluster[cj] == ci {
			tns = append(tns, treeNbr{
				child: cj, inV: o.parentAttach[cj], outV: o.rootVertex[cj],
				labelC: o.clusterLabel[cj],
			})
			m.Read(3)
		}
	}

	var edges [][2]int32
	if sc != nil {
		edges = sc.edges[:0]
	}
	addEdge := func(a, b int32) { edges = append(edges, [2]int32{addNode(a), addNode(b)}) }

	// Category 1a: intra-cluster edges.
	vw := graph.View{G: o.g, M: m}
	for _, v := range members {
		deg := vw.Degree(int(v))
		for i := 0; i < deg; i++ {
			u := vw.Neighbor(int(v), i)
			if lg.inside[u] && u >= v { // each once; self-loops dropped by Ref
				if u != v {
					addEdge(v, u)
				}
			}
		}
	}
	// Category 1b: the cluster tree edges, registering Vo nodes.
	for _, tn := range tns {
		vo := addNode(tn.outV)
		lg.voEdge[vo] = tn.child
		addEdge(tn.inV, tn.outV)
	}
	// Category 2: chain same-labeled tree neighbors' outside vertices.
	// Labels are processed in sorted order — not Go's random map order — so
	// the local edge list (and with it the Ref's BCC numbering) is a
	// deterministic function of the snapshot, which is what lets the cache
	// equivalence tests compare cached and fresh builds by equality.
	var labels []int32
	if sc != nil {
		labels = sc.labels[:0]
	}
	for _, tn := range tns {
		if !slices.Contains(labels, tn.labelC) { // |tns| is O(k); linear dedup
			labels = append(labels, tn.labelC)
		}
	}
	slices.Sort(labels)
	for _, lab := range labels {
		prev, havePrev := int32(0), false
		for _, tn := range tns {
			if tn.labelC != lab {
				continue
			}
			if havePrev {
				addEdge(prev, tn.outV)
			}
			prev, havePrev = tn.outV, true
		}
	}
	// Category 3: boundary edges (v1 in C, v2 outside, not a tree edge)
	// re-attach to the Vo node whose cluster subtree contains cluster(v2).
	// The witness set is prebuilt once — the Category 3 loop probes it per
	// boundary edge, so a linear scan over tns there would be O(k·|tns|).
	var witness map[[2]int32]bool
	if sc != nil {
		clear(sc.witness)
		witness = sc.witness
	} else {
		witness = make(map[[2]int32]bool, len(tns))
	}
	for _, tn := range tns {
		witness[[2]int32{tn.inV, tn.outV}] = true
	}
	for _, v := range members {
		deg := vw.Degree(int(v))
		for i := 0; i < deg; i++ {
			u := vw.Neighbor(int(v), i)
			if lg.inside[u] {
				continue
			}
			if witness[[2]int32{v, u}] {
				continue // category 1b already added it
			}
			cu := o.clusterOfS(m, sym, sc.dscratch(), u)
			vo := int32(-1)
			for _, tn := range tns {
				if tn.isPar {
					continue
				}
				if o.ctree.IsAncestor(m, tn.child, cu) {
					vo = tn.outV
					break
				}
			}
			if vo < 0 {
				// Not under any child: the external cluster lies on the
				// parent side.
				if o.parentCluster[ci] == ci {
					continue // isolated tree; cannot happen on valid input
				}
				vo = o.parentAttach[ci]
			}
			addEdge(v, vo)
		}
	}
	lg.ref = NewRef(graph.FromEdges(len(lg.nodes), edges)) // FromEdges copies edges: lg never aliases the scratch
	m.Op(len(lg.nodes) + len(edges))
	if sc != nil {
		sc.tns, sc.edges, sc.labels = tns, edges, labels
	}
	return lg
}

// smallComponent answers queries inside a primary-free small component by
// materializing it (it has fewer than k vertices) in symmetric memory.
func (o *Oracle) smallComponent(m *asym.Meter, sym *asym.SymTracker, v int32) (*Ref, map[int32]int32) {
	idOf := map[int32]int32{v: 0}
	nodes := []int32{v}
	var edges [][2]int32
	vw := graph.View{G: o.g, M: m}
	for qi := 0; qi < len(nodes); qi++ {
		x := nodes[qi]
		deg := vw.Degree(int(x))
		for i := 0; i < deg; i++ {
			u := vw.Neighbor(int(x), i)
			if _, ok := idOf[u]; !ok {
				idOf[u] = int32(len(nodes))
				nodes = append(nodes, u)
			}
			if x < u {
				edges = append(edges, [2]int32{idOf[x], idOf[u]})
			}
		}
	}
	if sym != nil {
		sym.Acquire(2 * len(nodes))
		defer sym.Release(2 * len(nodes))
	}
	return NewRef(graph.FromEdges(len(nodes), edges)), idOf
}

// IsBridge reports whether edge {u,v} is a bridge of G. Three cases (§5.3):
// in-cluster edges use the local graph (Lemma 5.5), cluster tree edges use
// the precomputed clusters-graph bridge bit, cross edges are never bridges.
func (o *Oracle) IsBridge(m *asym.Meter, sym *asym.SymTracker, u, v int32) bool {
	return o.IsBridgeS(m, sym, nil, nil, u, v)
}

// IsBridgeS is IsBridge with an optional reusable scratch and local-graph
// cache — the serving layer's warm path. Identical answers and charges.
//
//wec:noalloc
func (o *Oracle) IsBridgeS(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, cc *ClusterCache, u, v int32) bool {
	cu := o.clusterOfS(m, sym, sc.dscratch(), u)
	cv := o.clusterOfS(m, sym, sc.dscratch(), v)
	if cu < 0 || cv < 0 {
		if cu != cv {
			return false
		}
		ref, id := o.smallComponent(m, sym, u)
		return ref.IsBridge(id[u], id[v])
	}
	if cu == cv {
		lg := o.localS(m, sym, sc, cc, cu)
		return lg.ref.IsBridge(lg.idOf[u], lg.idOf[v])
	}
	// Tree edge between adjacent clusters?
	child := int32(-1)
	if o.parentCluster[cv] == cu && ((o.rootVertex[cv] == v && o.parentAttach[cv] == u) || (o.rootVertex[cv] == u && o.parentAttach[cv] == v)) {
		child = cv
	}
	if o.parentCluster[cu] == cv && ((o.rootVertex[cu] == u && o.parentAttach[cu] == v) || (o.rootVertex[cu] == v && o.parentAttach[cu] == u)) {
		child = cu
	}
	m.Read(4)
	if child >= 0 {
		m.Read(1)
		return o.bridgeBit[child]
	}
	return false // cross edge
}

// IsArticulation reports whether v is a cut vertex of G: exactly when it is
// one in its cluster's local graph (§5.3 "Articulation points").
func (o *Oracle) IsArticulation(m *asym.Meter, sym *asym.SymTracker, v int32) bool {
	return o.IsArticulationS(m, sym, nil, nil, v)
}

// IsArticulationS is IsArticulation with an optional reusable scratch and
// local-graph cache — the serving layer's warm path.
//
//wec:noalloc
func (o *Oracle) IsArticulationS(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, cc *ClusterCache, v int32) bool {
	ci := o.clusterOfS(m, sym, sc.dscratch(), v)
	if ci < 0 {
		ref, id := o.smallComponent(m, sym, v)
		return ref.IsArticulation[id[v]]
	}
	lg := o.localS(m, sym, sc, cc, ci)
	return lg.ref.IsArticulation[lg.idOf[v]]
}

// pathCheck runs the shared machinery of the pairwise queries: it verifies
// the cluster tree path between c1 and c2 is passable under the given
// blocked-depth array and local predicate, with vertices v1, v2 as the
// endpoints inside c1, c2. sc and cc are the optional warm-path scratch
// and local-graph cache (both nil-safe).
//
//wec:noalloc
func (o *Oracle) pathCheck(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, cc *ClusterCache, v1, v2 int32, c1, c2 int32,
	deepBlock []int32,
	localPred func(lg *localGraph, a, b int32) bool) bool {
	m.Read(2)
	if o.treeRoot[c1] != o.treeRoot[c2] {
		return false // different components
	}
	if c1 == c2 {
		lg := o.localS(m, sym, sc, cc, c1)
		return localPred(lg, lg.idOf[v1], lg.idOf[v2])
	}
	cl := o.ctree.LCA(m, c1, c2)
	dl := o.ctree.Depth(m, cl)

	// endpointSide handles one endpoint's chain up to the LCA: the local
	// exit check inside its own cluster, the blocked-ancestor test for the
	// intermediate clusters, and returns the Vo entry vertex into the LCA
	// cluster (or the endpoint itself when its cluster IS the LCA).
	endpointSide := func(v int32, c int32) (int32, bool) {
		if c == cl {
			return v, true
		}
		// Exit check inside c: v must reach the parent attach vertex.
		lg := o.localS(m, sym, sc, cc, c)
		m.Read(1)
		if !localPred(lg, lg.idOf[v], lg.idOf[o.parentAttach[c]]) {
			return 0, false
		}
		// Intermediate clusters: all Y on the chain with depth >= dl+2
		// must be passable.
		m.Read(1)
		if deepBlock[c] >= dl+2 {
			return 0, false
		}
		// Entry into the LCA cluster: the Vo node of the child on c's side.
		top := o.ctree.AncestorAtDepth(m, c, dl+1)
		m.Read(1)
		return o.rootVertex[top], true
	}
	a1, ok := endpointSide(v1, c1)
	if !ok {
		return false
	}
	a2, ok := endpointSide(v2, c2)
	if !ok {
		return false
	}
	lg := o.localS(m, sym, sc, cc, cl)
	return localPred(lg, lg.idOf[a1], lg.idOf[a2])
}

// Biconnected reports whether no single vertex removal disconnects v1 from
// v2 — equivalently, whether they share a biconnected component. O(k²)
// expected reads, no writes.
func (o *Oracle) Biconnected(m *asym.Meter, sym *asym.SymTracker, v1, v2 int32) bool {
	return o.BiconnectedS(m, sym, nil, nil, v1, v2)
}

// BiconnectedS is Biconnected with an optional reusable scratch and
// local-graph cache — the serving layer's warm path.
//
//wec:noalloc
func (o *Oracle) BiconnectedS(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, cc *ClusterCache, v1, v2 int32) bool {
	if v1 == v2 {
		return true
	}
	c1 := o.clusterOfS(m, sym, sc.dscratch(), v1)
	c2 := o.clusterOfS(m, sym, sc.dscratch(), v2)
	if c1 < 0 || c2 < 0 {
		if c1 != c2 {
			return false
		}
		ref, id := o.smallComponent(m, sym, v1)
		if _, ok := id[v2]; !ok {
			return false
		}
		return ref.SameBCC(id[v1], id[v2])
	}
	return o.pathCheck(m, sym, sc, cc, v1, v2, c1, c2, o.deepBlockV,
		func(lg *localGraph, a, b int32) bool {
			if a == b {
				return true
			}
			return lg.ref.SameBCC(a, b)
		})
}

// OneEdgeConnected reports whether no single edge removal disconnects v1
// from v2 (they are in the same 2-edge-connected component). O(k²) expected
// reads, no writes.
func (o *Oracle) OneEdgeConnected(m *asym.Meter, sym *asym.SymTracker, v1, v2 int32) bool {
	return o.OneEdgeConnectedS(m, sym, nil, nil, v1, v2)
}

// OneEdgeConnectedS is OneEdgeConnected with an optional reusable scratch
// and local-graph cache — the serving layer's warm path.
//
//wec:noalloc
func (o *Oracle) OneEdgeConnectedS(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, cc *ClusterCache, v1, v2 int32) bool {
	if v1 == v2 {
		return true
	}
	c1 := o.clusterOfS(m, sym, sc.dscratch(), v1)
	c2 := o.clusterOfS(m, sym, sc.dscratch(), v2)
	if c1 < 0 || c2 < 0 {
		if c1 != c2 {
			return false
		}
		ref, id := o.smallComponent(m, sym, v1)
		if _, ok := id[v2]; !ok {
			return false
		}
		return ref.TwoEdgeCC[id[v1]] == ref.TwoEdgeCC[id[v2]]
	}
	return o.pathCheck(m, sym, sc, cc, v1, v2, c1, c2, o.deepBlockE,
		func(lg *localGraph, a, b int32) bool {
			if a == b {
				return true
			}
			return lg.ref.TwoEdgeCC[a] == lg.ref.TwoEdgeCC[b]
		})
}

// EdgeBCCLabel returns a globally unique label for the biconnected
// component containing edge {u,v} (the standard output of [21, 32],
// answered in O(k²) reads per §5.3 "Queries on biconnected-component
// labels"). Labels below spanBase are cluster-internal BCCs; labels at or
// above it are spanning BCCs keyed by their cluster-tree-edge class.
// Returns -1 for self-loops and absent edges.
func (o *Oracle) EdgeBCCLabel(m *asym.Meter, sym *asym.SymTracker, u, v int32) int32 {
	if u == v {
		return -1
	}
	cu := o.clusterOf(m, sym, u)
	cv := o.clusterOf(m, sym, v)
	if cu < 0 || cv < 0 {
		if cu != cv {
			return -1
		}
		// Small components have no stored offsets; label by the component's
		// local BCC id offset by the implicit center (unique per component,
		// disjoint from stored labels by sign trick: use negative space).
		ref, id := o.smallComponent(m, sym, u)
		lab := ref.EdgeLabel(id[u], id[v])
		if lab < 0 {
			return -1
		}
		return -(o.D.Rho(m, sym, u)*int32(o.D.K()) + lab + 2)
	}
	if cu == cv {
		lg := o.local(m, sym, cu)
		return o.globalize(m, lg, cu, lg.ref.EdgeLabel(lg.idOf[u], lg.idOf[v]))
	}
	// Tree edge?
	for _, cand := range [][3]int32{{cu, u, v}, {cv, v, u}} {
		c, a, b := cand[0], cand[1], cand[2]
		m.Read(3)
		if o.parentCluster[c] != c && o.rootVertex[c] == a && o.parentAttach[c] == b {
			return o.spanBCC[c]
		}
	}
	// Cross edge: resolve inside u's cluster via the replaced edge (u, vo).
	lg := o.local(m, sym, cu)
	// The replaced edge's Vo endpoint: find it by scanning u's incident
	// local edges for a Vo neighbor whose subtree holds cv.
	uid := lg.idOf[u]
	for _, w := range lg.ref.G.Adj(int(uid)) { //wec:unmetered cluster-local graph lives in small memory; its scans are free in the model
		if child, ok := lg.voEdge[w]; ok {
			m.Read(1)
			inSubtree := o.ctree.IsAncestor(m, child, cv)
			onParentSide := child == cu && !o.ctree.IsAncestor(m, cu, cv)
			if (child != cu && inSubtree) || onParentSide {
				return o.globalize(m, lg, cu, lg.ref.EdgeLabel(uid, w))
			}
		}
	}
	return -1
}

// globalize maps a local BCC id to the global label space: spanning BCCs
// resolve through the cluster-tree-edge classes, internal BCCs through the
// cluster's prefix offset plus the BCC's rank among internal BCCs.
func (o *Oracle) globalize(m *asym.Meter, lg *localGraph, ci int32, localBCC int32) int32 {
	if localBCC < 0 {
		return -1
	}
	// Spanning: does this local BCC contain a Vo node?
	voBCC := map[int32]int32{} // local BCC -> tree-edge key
	for voID, child := range lg.voEdge {
		for _, b := range lg.ref.VertexBCCs[voID] {
			voBCC[b] = child
		}
	}
	if child, ok := voBCC[localBCC]; ok {
		m.Read(1)
		return o.spanBCC[child]
	}
	// Internal: rank among internal BCC ids (deterministic: Ref numbers
	// BCCs in DFS pop order).
	rank := int32(0)
	for b := int32(0); b < localBCC; b++ {
		if _, spanning := voBCC[b]; !spanning {
			rank++
		}
	}
	m.Read(1)
	return o.internalOffset[ci] + rank
}
