package bicc

import (
	"sync"
	"testing"

	"repro/internal/asym"
	"repro/internal/graph"
)

// This file is the cache-vs-fresh equivalence suite of the warm query
// path: every S-variant answer, its charged meter totals, and its
// symmetric-memory high-water must equal the plain (paper-pristine) path's
// on every query — cold fill, warm hit, across snapshot swaps, and under
// concurrent access. The charge-replay design (cache.go) makes this an
// equality check, not an approximation.

// queryBoth runs one query on both paths with fresh meters/trackers and
// fails the test on any divergence in answer, charged cost, or symmetric
// high-water.
func queryBoth(t *testing.T, o *Oracle, sc *Scratch, cc *ClusterCache, kind int, u, v int32) {
	t.Helper()
	m1, m2 := asym.NewMeter(64), asym.NewMeter(64)
	s1, s2 := asym.NewSymTracker(0), asym.NewSymTracker(0)
	var plain, cached bool
	switch kind {
	case 0:
		plain = o.IsBridge(m1, s1, u, v)
		cached = o.IsBridgeS(m2, s2, sc, cc, u, v)
	case 1:
		plain = o.IsArticulation(m1, s1, u)
		cached = o.IsArticulationS(m2, s2, sc, cc, u)
	case 2:
		plain = o.Biconnected(m1, s1, u, v)
		cached = o.BiconnectedS(m2, s2, sc, cc, u, v)
	default:
		plain = o.OneEdgeConnected(m1, s1, u, v)
		cached = o.OneEdgeConnectedS(m2, s2, sc, cc, u, v)
	}
	if plain != cached {
		t.Fatalf("kind %d (%d,%d): cached answer %v, plain %v", kind, u, v, cached, plain)
	}
	if c1, c2 := m1.Snapshot(), m2.Snapshot(); c1 != c2 {
		t.Fatalf("kind %d (%d,%d): cached cost %+v, plain %+v", kind, u, v, c2, c1)
	}
	if h1, h2 := s1.HighWater(), s2.HighWater(); h1 != h2 {
		t.Fatalf("kind %d (%d,%d): cached sym high-water %d, plain %d", kind, u, v, h2, h1)
	}
}

// randomizedQueries exercises all four kinds over random pairs plus real
// edges (so the in-cluster / tree-edge / cross-edge bridge cases all hit).
func randomizedQueries(t *testing.T, o *Oracle, g *graph.Graph, sc *Scratch, cc *ClusterCache, n int, seed uint64) {
	t.Helper()
	rng := graph.NewRNG(seed)
	edges := g.Edges()
	for i := 0; i < n; i++ {
		var u, v int32
		if len(edges) > 0 && i%3 == 0 {
			e := edges[rng.Intn(len(edges))]
			u, v = e[0], e[1]
		} else {
			u, v = int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))
		}
		queryBoth(t, o, sc, cc, i%4, u, v)
	}
}

func TestCacheEquivalenceRandomized(t *testing.T) {
	// connect=false leaves small primary-free components in play, so the
	// implicit-center path is covered alongside the cached cluster path.
	g := graph.GNM(300, 360, 31, false)
	o, _, _ := buildOracle(g, 8, 5)
	sc := NewScratch()
	cc := NewClusterCache(0)
	randomizedQueries(t, o, g, sc, cc, 500, 1234)
	hits, misses, _ := cc.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("suite did not exercise both cache outcomes: hits=%d misses=%d", hits, misses)
	}
}

func TestCacheEquivalenceAcrossSwap(t *testing.T) {
	// A snapshot swap rebuilds the oracle and replaces the cache; the
	// worker-held Scratch survives. Equivalence must hold on the new epoch
	// with the old, warm scratch.
	g1 := graph.GNM(200, 280, 11, true)
	o1, _, _ := buildOracle(g1, 8, 9)
	sc := NewScratch()
	cc1 := NewClusterCache(0)
	randomizedQueries(t, o1, g1, sc, cc1, 200, 55)

	g2 := graph.GNM(240, 300, 12, false)
	o2, _, _ := buildOracle(g2, 8, 9)
	cc2 := NewClusterCache(0)
	randomizedQueries(t, o2, g2, sc, cc2, 200, 56)
}

func TestCacheEquivalenceConcurrent(t *testing.T) {
	// One shared cache, one scratch per goroutine — the serving layer's
	// shape. Run under -race this doubles as the cache's race gate.
	g := graph.GNM(400, 520, 21, true)
	o, _, _ := buildOracle(g, 8, 3)
	cc := NewClusterCache(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			randomizedQueries(t, o, g, NewScratch(), cc, 150, uint64(9000+w))
		}(w)
	}
	wg.Wait()
}

func TestClusterCacheEviction(t *testing.T) {
	g := graph.GNM(300, 400, 41, true)
	o, _, _ := buildOracle(g, 6, 7)
	sc := NewScratch()
	cc := NewClusterCache(2)
	randomizedQueries(t, o, g, sc, cc, 300, 777)
	if _, _, evicts := cc.Stats(); evicts == 0 {
		t.Fatalf("capacity-2 cache saw no evictions over 300 randomized queries")
	}
	if got := cc.Len(); got > 2 {
		t.Fatalf("cache holds %d entries, capacity 2", got)
	}
}

func TestClusterCachePutFirstWins(t *testing.T) {
	g := graph.Cycle(64)
	o, _, _ := buildOracle(g, 8, 1)
	m := asym.NewMeter(64)
	cc := NewClusterCache(0)
	a := o.localS(m, nil, nil, cc, 0)
	b := o.localS(m, nil, nil, cc, 0)
	if a != b {
		t.Fatalf("second localS returned a different local graph than the cached one")
	}
	if hits, misses, _ := cc.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}
