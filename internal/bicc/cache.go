package bicc

import (
	"sync"

	"repro/internal/asym"
)

// ClusterCache memoizes materialized Definition 4 local graphs per cluster
// index. A local graph is a pure function of the immutable snapshot and
// the cluster index, so caching is sound for exactly one oracle; the
// serving layer creates a fresh cache alongside every bicc rebuild (the
// oracle takes the full-rebuild strategy on every snapshot swap), which is
// what "epoch-keyed" means here — stale entries cannot survive a swap
// because the cache does not survive it.
//
// The paper's cost accounting survives caching: each entry stores the
// meter charges and the symmetric-memory peak of its fill (taken on a
// private meter/tracker), and every hit replays them onto the caller's
// meter and tracker — a query answers with byte-identical telemetry
// whether it hit or filled, only wall-clock, GC and allocation behavior
// change. See localS for the replay argument.
//
// A ClusterCache is safe for concurrent use (one mutex; the critical
// sections are pointer moves and map probes). Bounded: least recently used
// entries are evicted past the capacity.
type ClusterCache struct {
	mu         sync.Mutex
	capacity   int
	entries    map[int32]*ccEntry
	head, tail *ccEntry // intrusive LRU list, head = most recent

	hits, misses, evicts int64
}

type ccEntry struct {
	ci         int32
	lg         *localGraph
	cost       asym.Cost
	peak       int
	prev, next *ccEntry
}

// DefaultClusterCacheCap bounds a cache created with capacity <= 0. A
// local graph holds O(k) nodes and edges, so the default keeps worst-case
// retention around O(k · cap) words — small next to the graph itself for
// the paper's k = Θ(√ω).
const DefaultClusterCacheCap = 4096

// NewClusterCache returns an empty cache evicting beyond the given entry
// capacity (<= 0 selects DefaultClusterCacheCap).
func NewClusterCache(capacity int) *ClusterCache {
	if capacity <= 0 {
		capacity = DefaultClusterCacheCap
	}
	return &ClusterCache{
		capacity: capacity,
		entries:  make(map[int32]*ccEntry, capacity/4),
	}
}

// get returns the cached local graph of cluster ci with its recorded fill
// charges, marking the entry most recently used.
//
//wec:noalloc
func (c *ClusterCache) get(ci int32) (*localGraph, asym.Cost, int, bool) {
	c.mu.Lock()
	e, ok := c.entries[ci]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, asym.Cost{}, 0, false
	}
	c.hits++
	c.moveToFront(e)
	lg, cost, peak := e.lg, e.cost, e.peak
	c.mu.Unlock()
	return lg, cost, peak, true
}

// put installs a freshly filled entry, evicting from the LRU tail past
// capacity. Concurrent fills of the same cluster race benignly — the build
// is deterministic, so both candidates are identical; first-wins keeps the
// map and list consistent, and the returned local graph is the retained
// one.
func (c *ClusterCache) put(ci int32, lg *localGraph, cost asym.Cost, peak int) *localGraph {
	c.mu.Lock()
	if e, ok := c.entries[ci]; ok {
		c.moveToFront(e)
		lg = e.lg
		c.mu.Unlock()
		return lg
	}
	e := &ccEntry{ci: ci, lg: lg, cost: cost, peak: peak}
	c.entries[ci] = e
	c.pushFront(e)
	for len(c.entries) > c.capacity {
		t := c.tail
		c.unlink(t)
		delete(c.entries, t.ci)
		c.evicts++
	}
	c.mu.Unlock()
	return lg
}

// Stats reports cumulative hit/miss/eviction counts.
func (c *ClusterCache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicts
}

// Len reports the current entry count.
func (c *ClusterCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

//wec:noalloc
func (c *ClusterCache) pushFront(e *ccEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

//wec:noalloc
func (c *ClusterCache) unlink(e *ccEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

//wec:noalloc
func (c *ClusterCache) moveToFront(e *ccEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// localS is local with an optional scratch and cache: the warm query path.
// With a nil cache it is exactly buildLocal. With a cache, a miss fills on
// a private meter and report-only tracker, records the fill's cost and
// symmetric peak on the entry, and a hit replays them:
//
//   - Meter: the fill's Reads/Writes/Ops are merged into the caller's
//     meter on both miss and hit, so totals equal the uncached path's
//     (the build is deterministic per (snapshot, ci)).
//   - Symmetric memory: every Acquire inside a local-graph build is
//     released before buildLocal returns, so a direct call raises the
//     caller's tracker from its current level L to at most L + peak and
//     back to L. The replay pulse — Acquire(peak) immediately followed by
//     Release(peak) — produces the same maximum and the same final level,
//     so high-water marks match the uncached path exactly.
//
//wec:noalloc
func (o *Oracle) localS(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, cc *ClusterCache, ci int32) *localGraph {
	if cc == nil {
		return o.buildLocal(m, sym, sc, ci)
	}
	if lg, cost, peak, ok := cc.get(ci); ok {
		m.Merge(cost)
		if sym != nil && peak > 0 {
			sym.Acquire(peak)
			sym.Release(peak)
		}
		return lg
	}
	fm := asym.NewMeter(m.Omega())
	fs := asym.NewSymTracker(0)
	lg := o.buildLocal(fm, fs, sc, ci)
	cost := fm.Snapshot()
	peak := int(fs.HighWater())
	lg = cc.put(ci, lg, cost, peak)
	m.Merge(cost)
	if sym != nil && peak > 0 {
		sym.Acquire(peak)
		sym.Release(peak)
	}
	return lg
}
