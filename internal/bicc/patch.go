package bicc

import "repro/internal/asym"

// Block-cut-tree patch predicates for the serving layer's update-strategy
// ladder. The §5.3 oracle's internal structures (sketch tree, span labels,
// cluster local graphs) are all derived from the build-time graph, so the
// only insertions and deletions it can absorb without reconstruction are
// the ones that provably change nothing: edits whose block-cut tree is
// identical before and after, which makes the stale structures exact for
// the new graph. Everything else is refused and handled by the engine's
// lazy rebuild path.
//
// The predicates are queries in disguise — they charge the caller's meter
// through the ordinary S-method query path, so a patch attempt's cost is
// visible in rebuild telemetry like any other oracle work, and they write
// nothing (queries are read-only in the asymmetric model).

// InsertionIsNoop reports whether inserting edge (u,v) into the oracle's
// graph leaves every bridge/articulation/biconnected/2ecc answer unchanged,
// i.e. whether the edge lands strictly inside one existing block:
//
//   - a self-loop never affects the block-cut tree;
//   - otherwise the endpoints must already be biconnected AND 2-edge
//     connected, so the new edge closes a cycle inside a single block.
//     Biconnected alone is NOT enough: the endpoints of a bridge share a
//     (trivial) biconnected relation in the pair sense only when they lie
//     in a common block, and a parallel copy of a bridge would turn that
//     bridge into a non-bridge — the 2-edge-connectivity conjunct rejects
//     exactly those cases.
//
// An edge that merges blocks (endpoints in different blocks of the cut
// tree, or connecting two components) collapses a path of the block-cut
// tree into one block and changes bridge/articulation answers along it;
// the caller must fall back to a rebuild for those.
//
//wec:noalloc
func (o *Oracle) InsertionIsNoop(m *asym.Meter, sym *asym.SymTracker, sc *Scratch, cc *ClusterCache, u, v int32) bool {
	if u == v {
		return true
	}
	return o.BiconnectedS(m, sym, sc, cc, u, v) && o.OneEdgeConnectedS(m, sym, sc, cc, u, v)
}

// DeletionIsNoop reports whether removing one copy of edge (u,v) leaves
// every answer unchanged, given the edge's multiplicity in the
// post-removal graph. Only the two trivially safe cases qualify:
//
//   - a self-loop (never on the block-cut tree);
//   - a parallel copy whose pair keeps multiplicity >= 2 after the
//     removal, so the surviving copies still form a 2-cycle and the block
//     structure is untouched.
//
// Anything else is refused: even deleting a cycle edge whose endpoints
// stay 2-edge connected can split a block at an articulation vertex
// (remove one edge of C4 and the remaining path has two new cut
// vertices), so no cheap local test is sound.
//
//wec:noalloc
func (o *Oracle) DeletionIsNoop(m *asym.Meter, u, v int32, multiplicityAfter int) bool {
	// One comparison over already-materialized CSR metadata: charge the
	// multiplicity probe the caller performed.
	m.Read(1)
	if u == v {
		return true
	}
	return multiplicityAfter >= 2
}
