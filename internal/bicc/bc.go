package bicc

import (
	"repro/internal/asym"
	"repro/internal/eulertour"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

// BCLabeling is the paper's O(n)-size biconnectivity output (Definition 3):
// a spanning forest, a component label per vertex (over the graph minus the
// critical tree edges), and a head vertex per component. A biconnected
// component of the graph is exactly one label class plus its head.
//
// All stored state is O(n) words: the spanning forest, first/last/low/high,
// the critical bits, the labels, heads, sizes, head counts, and the
// 2-edge-connected labels used by 1-edge-connectivity queries.
type BCLabeling struct {
	g    *graph.Graph
	tree *eulertour.Tree

	parent   []int32        // spanning forest (parent[root] = root)
	roots    map[int32]bool // forest roots
	critical *asym.BitArray // critical[v]: tree edge (parent(v), v) is critical

	labels *asym.Array // L: vertex -> component label (min vertex in comp)
	head   *asym.Array // head[label] = component head (valid at label slots)
	size   *asym.Array // size[label] = component size
	// headCount[v] = number of components headed by v that do not contain
	// v — the articulation-point counter of Lemma 5.1.
	headCount *asym.Array
	twoEdge   *asym.Array // 2-edge-connected component label per vertex

	// NumBCC counts biconnected components with at least one edge.
	NumBCC int
	// Low, High, First, Last are retained for inspection and the
	// clusters-graph reuse in the §5.3 oracle.
	Low, High []int64
}

// Build computes the BC labeling of (each component of) the graph behind
// vw: O(m) operations and O(n) writes (Lemma 5.1), using the Euler-tour
// low/high computation of the Tarjan–Vishkin algorithm (§5.1) and a
// connectivity pass over the non-critical edges (§5.2).
func Build(c *parallel.Ctx, vw graph.View) *BCLabeling {
	g := vw.G
	m := vw.M
	n := g.N()

	// Spanning forest by BFS: O(m) reads, O(n) writes.
	parent := make([]int32, n)
	var roots []int32
	for v := range parent {
		parent[v] = -1
	}
	for s := 0; s < n; s++ {
		m.Read(1)
		if parent[s] >= 0 {
			continue
		}
		parent[s] = int32(s)
		roots = append(roots, int32(s))
		frontier := []int32{int32(s)}
		for len(frontier) > 0 {
			var next []int32
			for _, v := range frontier {
				deg := vw.Degree(int(v))
				for i := 0; i < deg; i++ {
					u := vw.Neighbor(int(v), i)
					if parent[u] >= 0 {
						continue
					}
					parent[u] = v
					m.Write(1)
					next = append(next, u)
				}
			}
			frontier = next
		}
	}
	m.Write(len(roots))

	b := &BCLabeling{g: g, parent: parent, roots: map[int32]bool{}}
	for _, r := range roots {
		b.roots[r] = true
	}
	b.tree = eulertour.NewForest(m, roots, parent)

	// wmin/wmax per vertex over non-tree incident edges (§5.1). One
	// occurrence of each distinct tree edge is skipped; parallel copies
	// count as non-tree edges, which keeps their endpoints biconnected.
	wmin := make([]int64, n)
	wmax := make([]int64, n)
	for v := 0; v < n; v++ {
		f := int64(b.tree.First(m, int32(v)))
		wmin[v], wmax[v] = f, f
		skippedParent := false
		skippedChild := map[int32]bool{}
		deg := vw.Degree(v)
		for i := 0; i < deg; i++ {
			u := vw.Neighbor(v, i)
			if !skippedParent && parent[v] == u && !b.roots[int32(v)] {
				skippedParent = true
				continue
			}
			if parent[u] == int32(v) && !skippedChild[u] && !b.roots[u] {
				skippedChild[u] = true
				continue
			}
			fu := int64(b.tree.First(m, u))
			if fu < wmin[v] {
				wmin[v] = fu
			}
			if fu > wmax[v] {
				wmax[v] = fu
			}
		}
	}
	m.Write(2 * n) // persist w values (the reduce output of §5.1)

	// low/high by leaffix (§5.1).
	b.Low = b.tree.Leaffix(m, func(v int32) int64 { return wmin[v] },
		func(a, x int64) int64 {
			if x < a {
				return x
			}
			return a
		}, nil)
	b.High = b.tree.Leaffix(m, func(v int32) int64 { return wmax[v] },
		func(a, x int64) int64 {
			if x > a {
				return x
			}
			return a
		}, nil)
	m.Write(2 * n) // persist low/high

	// Critical tree edges: (parent(v), v) with first(p) <= low(v) and
	// high(v) <= last(p).
	b.critical = asym.NewBitArray(m, n)
	for v := 0; v < n; v++ {
		if b.roots[int32(v)] {
			continue
		}
		p := parent[v]
		if int64(b.tree.First(m, p)) <= b.Low[v] && b.High[v] <= int64(b.tree.Last(m, p)) {
			b.critical.Set(v, true)
		}
	}

	// Component labels over the graph minus critical tree edges (§5.2).
	// One occurrence of each critical tree edge is skipped; every other
	// edge is unioned.
	dsu := unionfind.New(m, n)
	for v := 0; v < n; v++ {
		skipped := map[int32]bool{}
		deg := vw.Degree(v)
		for i := 0; i < deg; i++ {
			u := vw.Neighbor(v, i)
			if u < int32(v) {
				continue // handle each undirected edge once, from its lower endpoint
			}
			if u == int32(v) {
				continue // self-loop
			}
			crit := (parent[u] == int32(v) && b.critical.Get(int(u))) ||
				(parent[v] == u && b.critical.Get(v))
			if crit && !skipped[u] {
				skipped[u] = true
				continue
			}
			dsu.Union(int32(v), u)
		}
	}
	b.labels = asym.NewArray(m, n)
	minOf := map[int32]int32{}
	for v := 0; v < n; v++ {
		r := dsu.Find(int32(v))
		if cur, ok := minOf[r]; !ok || int32(v) < cur {
			minOf[r] = int32(v)
		}
	}
	for v := 0; v < n; v++ {
		b.labels.Set(v, minOf[dsu.Find(int32(v))])
	}

	// Heads: the topmost (minimum-depth, then minimum-id) vertex of each
	// component determines its head = that vertex's tree parent.
	b.head = asym.NewArray(m, n)
	b.size = asym.NewArray(m, n)
	b.headCount = asym.NewArray(m, n)
	type top struct {
		v     int32
		depth int32
	}
	tops := map[int32]top{}
	sizes := map[int32]int32{}
	for v := 0; v < n; v++ {
		l := b.labels.Get(v)
		sizes[l]++
		d := b.tree.Depth(m, int32(v))
		if t, ok := tops[l]; !ok || d < t.depth || (d == t.depth && int32(v) < t.v) {
			tops[l] = top{int32(v), d}
		}
	}
	for l, t := range tops {
		h := parent[t.v]
		b.head.Set(int(l), h)
		b.size.Set(int(l), sizes[l])
		// Count toward articulation only when the head is outside the
		// component (the component containing its own head contributes a
		// BCC without a separating role for the head).
		m.Read(1)
		if b.labels.Raw()[h] != l { //wec:unmetered charged by the m.Read(1) above
			b.headCount.Set(int(h), b.headCount.Get(int(h))+1)
		}
		// A component is a real BCC when it has at least one edge: either
		// it is attached below a head outside it (the tree edge to the
		// head), or it has >= 2 vertices.
		if b.labels.Raw()[h] != l || sizes[l] >= 2 { //wec:unmetered re-reads the labels[h] slot already charged above
			b.NumBCC++
		}
	}
	c.AddDepth(logDepth(n) * int64(m.Omega()))

	// 2-edge-connected components: union everything except bridges.
	te := unionfind.New(m, n)
	for v := 0; v < n; v++ {
		deg := vw.Degree(v)
		for i := 0; i < deg; i++ {
			u := vw.Neighbor(v, i)
			if u <= int32(v) {
				continue
			}
			if b.IsBridge(m, int32(v), u) {
				continue
			}
			te.Union(int32(v), u)
		}
	}
	b.twoEdge = asym.NewArray(m, n)
	minOf2 := map[int32]int32{}
	for v := 0; v < n; v++ {
		r := te.Find(int32(v))
		if cur, ok := minOf2[r]; !ok || int32(v) < cur {
			minOf2[r] = int32(v)
		}
	}
	for v := 0; v < n; v++ {
		b.twoEdge.Set(v, minOf2[te.Find(int32(v))])
	}
	return b
}

// Tree returns the spanning forest structure.
func (b *BCLabeling) Tree() *eulertour.Tree { return b.tree }

// Parent returns v's spanning-forest parent (roots map to themselves).
func (b *BCLabeling) Parent(v int32) int32 { return b.parent[v] }

// Label returns v's component label, charging one read.
//
//wec:unmetered the single labels read is charged by the m.Read(1) in the body
func (b *BCLabeling) Label(m *asym.Meter, v int32) int32 {
	m.Read(1)
	return b.labels.Raw()[v]
}

// Head returns the head vertex of the component with the given label.
//
//wec:unmetered the single head read is charged by the m.Read(1) in the body
func (b *BCLabeling) Head(m *asym.Meter, label int32) int32 {
	m.Read(1)
	return b.head.Raw()[label]
}

// IsBridge reports whether edge {u,v} is a bridge: it must be a tree edge
// whose child side forms a single-vertex component headed by the other
// endpoint (Lemma 5.1). O(1) reads, no writes.
//
//wec:unmetered every Raw read is pre-charged by the explicit m.Read calls
func (b *BCLabeling) IsBridge(m *asym.Meter, u, v int32) bool {
	if b.parent[v] != u {
		u, v = v, u
	}
	m.Read(1)
	if b.parent[v] != u || b.roots[v] {
		return false
	}
	m.Read(2)
	l := b.labels.Raw()[v]
	return l == v && b.size.Raw()[l] == 1
}

// IsArticulation reports whether v is an articulation point: a forest root
// must head two components not containing it, any other vertex one. O(1)
// reads, no writes.
//
//wec:unmetered the headCount read is charged by the m.Read(1) in the body
func (b *BCLabeling) IsArticulation(m *asym.Meter, v int32) bool {
	m.Read(1)
	cnt := b.headCount.Raw()[v]
	if b.roots[v] {
		return cnt >= 2
	}
	return cnt >= 1
}

// EdgeLabel returns the biconnected-component label of edge {u,v}: the
// component label of the endpoint farther from the root (§5.2's implicit
// version of the standard output). O(1) reads, no writes.
//
//wec:unmetered both possible label reads are covered by the m.Read(2) up front
func (b *BCLabeling) EdgeLabel(m *asym.Meter, u, v int32) int32 {
	m.Read(2)
	if b.parent[u] == v && !b.roots[u] {
		return b.labels.Raw()[u]
	}
	return b.labels.Raw()[v]
}

// SameBCC reports whether distinct vertices u and v share a biconnected
// component: same label, or one heads the other's component. O(1) reads.
//
//wec:unmetered the m.Read(4) up front covers the worst-case four slot reads
func (b *BCLabeling) SameBCC(m *asym.Meter, u, v int32) bool {
	if u == v {
		return true
	}
	m.Read(4)
	lu := b.labels.Raw()[u]
	lv := b.labels.Raw()[v]
	if lu == lv {
		return true
	}
	// Head relations count only when the headed component really hangs
	// below the head (the head is outside it).
	if b.head.Raw()[lu] == v && b.labels.Raw()[v] != lu {
		return true
	}
	if b.head.Raw()[lv] == u && b.labels.Raw()[u] != lv {
		return true
	}
	return false
}

// Same2EdgeCC reports whether u and v are 1-edge connected (no bridge
// separates them). O(1) reads, no writes.
//
//wec:unmetered both twoEdge reads are covered by the m.Read(2) up front
func (b *BCLabeling) Same2EdgeCC(m *asym.Meter, u, v int32) bool {
	m.Read(2)
	return b.twoEdge.Raw()[u] == b.twoEdge.Raw()[v]
}

// BlockCutTree returns the block-cut tree edges as (component label,
// articulation vertex) pairs, derived per §5.2: each component connects to
// its head when the head is an articulation point, and each articulation
// vertex inside a component connects to that component's label.
//
//wec:unmetered head/label reads are charged by the m.Read(2) in the inner loop
func (b *BCLabeling) BlockCutTree(m *asym.Meter) [][2]int32 {
	n := b.g.N()
	var out [][2]int32
	seen := map[[2]int32]bool{}
	add := func(l, v int32) {
		key := [2]int32{l, v}
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	for v := 0; v < n; v++ {
		if !b.IsArticulation(m, int32(v)) {
			continue
		}
		// v joins its own component...
		l := b.Label(m, int32(v))
		add(l, int32(v))
		// ...and every component it heads.
		for u := 0; u < n; u++ {
			lu := b.Label(m, int32(u))
			m.Read(2)
			if b.head.Raw()[lu] == int32(v) && b.labels.Raw()[int32(v)] != lu {
				add(lu, int32(v))
			}
		}
	}
	return out
}

// BridgeBlockTree returns the bridge-block tree (the tree of 2-edge-
// connected components): one node per 2ecc label, one edge per bridge,
// given as (2ecc label of one side, 2ecc label of the other). Its size is
// the number of bridges, so materializing it costs O(#bridges) beyond the
// O(m) read scan.
//
//wec:unmetered the CSR scan charges one read per adjacency slot and m.Read(2) per bridge endpoint pair
func (b *BCLabeling) BridgeBlockTree(m *asym.Meter) [][2]int32 {
	var out [][2]int32
	for v := 0; v < b.g.N(); v++ {
		for _, u := range b.g.Adj(v) {
			m.Read(1)
			if u <= int32(v) {
				continue
			}
			if b.IsBridge(m, int32(v), u) {
				m.Read(2)
				out = append(out, [2]int32{b.twoEdge.Raw()[v], b.twoEdge.Raw()[u]})
			}
		}
	}
	return out
}

// TwoEdgeLabel returns v's 2-edge-connected component label (the smallest
// vertex id in the component of the graph minus bridges). O(1) reads.
//
//wec:unmetered the single twoEdge read is charged by the m.Read(1) in the body
func (b *BCLabeling) TwoEdgeLabel(m *asym.Meter, v int32) int32 {
	m.Read(1)
	return b.twoEdge.Raw()[v]
}

func logDepth(n int) int64 {
	d := int64(1)
	for n > 1 {
		n >>= 1
		d++
	}
	return d
}
