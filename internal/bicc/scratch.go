package bicc

import "repro/internal/decomp"

// treeNbr describes one cluster-tree edge incident to the cluster whose
// local graph is being built: the parent edge plus one edge per child
// cluster (§5.2).
type treeNbr struct {
	child  int32 // cluster index keying the tree edge
	inV    int32 // endpoint inside this cluster
	outV   int32 // endpoint outside (the Vo node)
	isPar  bool
	labelC int32 // cluster label of the neighbor cluster
}

// Scratch is a reusable symmetric-memory workspace for the biconnectivity
// query path: the decomposition-search scratch plus the local-graph build
// buffers of buildLocal. A serving worker allocates one Scratch and
// threads it through every query it answers; nil everywhere means
// "allocate per call", the paper-pristine original behavior kept by the
// reference/equivalence tests and the legacy dispatch path.
//
// A Scratch is not safe for concurrent use; it is worker-local by design.
// It depends only on the oracle's type, never on a particular snapshot, so
// a pooled worker's Scratch stays valid across snapshot swaps. Reuse does
// not change charged costs: meters see exactly the reads/ops a
// scratch-less query charges.
type Scratch struct {
	dsc     *decomp.Scratch
	members []int32
	tns     []treeNbr
	edges   [][2]int32
	labels  []int32
	witness map[[2]int32]bool
}

// NewScratch returns an empty reusable biconnectivity query workspace.
func NewScratch() *Scratch {
	return &Scratch{
		dsc:     decomp.NewScratch(),
		witness: make(map[[2]int32]bool, 16),
	}
}

// dscratch returns the embedded decomposition-search scratch, nil-safe so
// call sites can thread an optional *Scratch straight through.
//
//wec:noalloc
func (sc *Scratch) dscratch() *decomp.Scratch {
	if sc == nil {
		return nil
	}
	return sc.dsc
}
