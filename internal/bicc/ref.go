// Package bicc implements the paper's §5 biconnectivity suite:
//
//   - Ref (this file): an unmetered Hopcroft–Tarjan DFS used as ground
//     truth by every test.
//   - BC labeling (bc.go): the paper's O(n)-word biconnectivity output
//     (Definition 3, Lemma 5.1) built from Euler-tour low/high values and a
//     connectivity pass over the non-critical edges, with O(1) queries for
//     bridges, articulation points, component labels, and pairwise
//     biconnectivity.
//   - Oracle (oracle.go): the §5.3 sublinear-write biconnectivity oracle on
//     an implicit k-decomposition, with O(k²)-read queries and O(n/k)
//     construction writes.
package bicc

import "repro/internal/graph"

// Ref holds ground-truth biconnectivity facts for a graph, computed by an
// iterative Hopcroft–Tarjan DFS without cost accounting.
type Ref struct {
	G *graph.Graph
	// EdgeBCC[i] is the biconnected-component id of the i-th edge of
	// g.Edges() (self-loops get -1).
	EdgeBCC []int32
	// IsArticulation[v] reports whether v is a cut vertex.
	IsArticulation []bool
	// BridgeSet marks edges (by Edges() index) that are bridges.
	BridgeSet []bool
	// TwoEdgeCC[v] is v's 2-edge-connected component label (component of
	// the graph after deleting bridges; canonical: min vertex id).
	TwoEdgeCC []int32
	// VertexBCCs[v] lists the BCC ids v belongs to (sorted).
	VertexBCCs [][]int32
	NumBCC     int

	edgeIndex map[[2]int32][]int32 // endpoints -> edge ids (parallel edges)
}

// NewRef computes ground truth for g.
//
//wec:unmetered reference implementation; ground truth is not cost-accounted
func NewRef(g *graph.Graph) *Ref {
	edges := g.Edges()
	r := &Ref{
		G:              g,
		EdgeBCC:        make([]int32, len(edges)),
		IsArticulation: make([]bool, g.N()),
		BridgeSet:      make([]bool, len(edges)),
		TwoEdgeCC:      make([]int32, g.N()),
		VertexBCCs:     make([][]int32, g.N()),
		edgeIndex:      map[[2]int32][]int32{},
	}
	for i := range r.EdgeBCC {
		r.EdgeBCC[i] = -1
	}
	for i, e := range edges {
		key := norm(e[0], e[1])
		r.edgeIndex[key] = append(r.edgeIndex[key], int32(i))
	}

	n := g.N()
	// Build per-vertex incident edge lists with edge ids.
	type inc struct {
		to int32
		id int32
	}
	adj := make([][]inc, n)
	for i, e := range edges {
		if e[0] == e[1] {
			continue // self-loops belong to no BCC
		}
		adj[e[0]] = append(adj[e[0]], inc{e[1], int32(i)})
		adj[e[1]] = append(adj[e[1]], inc{e[0], int32(i)})
	}

	disc := make([]int32, n)
	low := make([]int32, n)
	parentEdge := make([]int32, n)
	for v := range disc {
		disc[v] = -1
		parentEdge[v] = -1
	}
	var stack []int32 // edge ids
	timer := int32(0)
	bcc := int32(0)

	var pop func(until int32, cut bool, v int32)
	pop = func(until int32, _ bool, _ int32) {
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r.EdgeBCC[id] = bcc
			if id == until {
				break
			}
		}
		bcc++
	}

	type frame struct {
		v  int32
		pi int // index into adj[v]
	}
	for s := 0; s < n; s++ {
		if disc[s] >= 0 {
			continue
		}
		disc[s] = timer
		low[s] = timer
		timer++
		st := []frame{{int32(s), 0}}
		rootChildren := 0
		for len(st) > 0 {
			f := &st[len(st)-1]
			v := f.v
			if f.pi < len(adj[v]) {
				e := adj[v][f.pi]
				f.pi++
				if e.id == parentEdge[v] {
					continue
				}
				if disc[e.to] < 0 {
					// Tree edge.
					parentEdge[e.to] = e.id
					disc[e.to] = timer
					low[e.to] = timer
					timer++
					stack = append(stack, e.id)
					st = append(st, frame{e.to, 0})
					if v == int32(s) {
						rootChildren++
					}
				} else if disc[e.to] < disc[v] {
					// Back edge.
					stack = append(stack, e.id)
					if disc[e.to] < low[v] {
						low[v] = disc[e.to]
					}
				}
				continue
			}
			st = st[:len(st)-1]
			if len(st) > 0 {
				p := st[len(st)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] >= disc[p] {
					// p separates v's subtree: pop the component.
					if p != int32(s) {
						r.IsArticulation[p] = true
					}
					pop(parentEdge[v], true, p)
				}
			}
		}
		if rootChildren >= 2 {
			r.IsArticulation[s] = true
		}
	}
	r.NumBCC = int(bcc)

	// Bridges: BCCs consisting of exactly one edge.
	sizes := make([]int32, bcc)
	for _, b := range r.EdgeBCC {
		if b >= 0 {
			sizes[b]++
		}
	}
	for i, b := range r.EdgeBCC {
		if b >= 0 && sizes[b] == 1 {
			r.BridgeSet[i] = true
		}
	}

	// Vertex -> BCC memberships.
	seen := map[[2]int32]bool{}
	for i, e := range edges {
		b := r.EdgeBCC[i]
		if b < 0 {
			continue
		}
		for _, v := range []int32{e[0], e[1]} {
			if !seen[[2]int32{v, b}] {
				seen[[2]int32{v, b}] = true
				r.VertexBCCs[v] = append(r.VertexBCCs[v], b)
			}
		}
	}

	// 2-edge-connected components: delete bridges, take components.
	uf := newRefUF(n)
	for i, e := range edges {
		if !r.BridgeSet[i] && e[0] != e[1] {
			uf.union(e[0], e[1])
		}
	}
	minOf := map[int32]int32{}
	for v := 0; v < n; v++ {
		root := uf.find(int32(v))
		if cur, ok := minOf[root]; !ok || int32(v) < cur {
			minOf[root] = int32(v)
		}
	}
	for v := 0; v < n; v++ {
		r.TwoEdgeCC[v] = minOf[uf.find(int32(v))]
	}
	return r
}

func norm(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// IsBridge reports whether some edge {u,v} is a bridge (false if absent).
func (r *Ref) IsBridge(u, v int32) bool {
	ids := r.edgeIndex[norm(u, v)]
	if len(ids) != 1 {
		return false // absent, or parallel edges are never bridges
	}
	return r.BridgeSet[ids[0]]
}

// EdgeLabel returns the BCC id of edge {u,v} (-1 if absent or self-loop).
// For parallel edges the first instance's label is returned (they share a
// BCC in any case).
func (r *Ref) EdgeLabel(u, v int32) int32 {
	ids := r.edgeIndex[norm(u, v)]
	if len(ids) == 0 {
		return -1
	}
	return r.EdgeBCC[ids[0]]
}

// SameBCC reports whether u and v (u != v) share a biconnected component.
func (r *Ref) SameBCC(u, v int32) bool {
	for _, a := range r.VertexBCCs[u] {
		for _, b := range r.VertexBCCs[v] {
			if a == b {
				return true
			}
		}
	}
	return false
}

type refUF struct{ p []int32 }

func newRefUF(n int) *refUF {
	u := &refUF{p: make([]int32, n)}
	for i := range u.p {
		u.p[i] = int32(i)
	}
	return u
}

func (u *refUF) find(x int32) int32 {
	for u.p[x] != x {
		u.p[x] = u.p[u.p[x]]
		x = u.p[x]
	}
	return x
}

func (u *refUF) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.p[rb] = ra
	}
}
