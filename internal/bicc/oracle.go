package bicc

import (
	"repro/internal/decomp"
	"repro/internal/eulertour"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Oracle is the §5.3 sublinear-write biconnectivity oracle (Theorem 5.3).
// Construction stores only O(n/k) words: the clusters spanning tree with
// per-edge witness vertices, the BC labeling of the clusters graph, one
// root-biconnectivity bit (and one bridge analog) per cluster tree edge
// (Definition 5, Lemma 5.6), the rootfix "deepest blocked ancestor" values
// that make path checks O(1), the spanning-BCC equivalence over cluster
// tree edges, and per-cluster label offsets (Lemma 5.7).
//
// Queries rebuild the O(k)-sized *local graph* of at most three clusters
// (Definition 4, Figure 3) in symmetric memory — O(k²) expected reads and
// no writes — and combine local Hopcroft–Tarjan answers with the stored
// bits.
//
//wec:immutable
type Oracle struct {
	D *decomp.Decomposition
	g *graph.Graph

	// Clusters spanning tree, in center-index space (0..n'-1).
	ctree         *eulertour.Tree
	parentCluster []int32 // parent index; self for tree roots
	rootVertex    []int32 // the vertex of C on the tree edge to the parent (-1 for roots)
	parentAttach  []int32 // the vertex of parent(C) on that tree edge (-1 for roots)
	treeRoot      []int32 // root cluster index of C's tree

	// BC labeling of the clusters graph (vertex labels on clusters).
	clusterLabel []int32 // canonical: min center index in the component

	// Per-cluster-tree-edge bits, indexed by the child cluster.
	bridgeBit []bool // the tree edge is a bridge of G
	rbV       []bool // root biconnectivity (vertex version, Def. 5)
	rbE       []bool // bridge analog (1-edge connectivity version)

	// Rootfix: deepest ancestor-or-self Y with ¬rb{V,E}[Y] (-1 if none).
	deepBlockV []int32
	deepBlockE []int32

	// Spanning biconnected components: union-find over cluster tree edges
	// (indexed by child cluster); spanBCC is the canonical id.
	spanBCC []int32
	// internalOffset[C] is the prefix-sum offset of C's fully-internal
	// BCCs in the global label space (which places all spanning BCC ids
	// below spanBase... above, rather: internal ids start at 0 per prefix
	// sums, spanning ids are spanBase+component).
	internalOffset []int32
	spanBase       int32

	// NumBCC is the total number of biconnected components with >= 1 edge.
	NumBCC int
}

// localGraph is the Definition 4 local graph of one cluster, rebuilt in
// symmetric memory on demand.
type localGraph struct {
	ref    *Ref
	idOf   map[int32]int32 // original vertex -> local id
	nodes  []int32         // local id -> original vertex
	inside map[int32]bool  // original vertex is a cluster member (Vi)
	// voEdge maps a Vo node's local id to the cluster tree edge it
	// represents, identified by the child cluster index (for the parent
	// edge of C this is C itself).
	voEdge map[int32]int32
}

// BuildOracle constructs the oracle over the graph behind vw using the
// given implicit k-decomposition (pass nil to build one with k = √ω).
//
//wec:mutator build-time constructor; the oracle is not shared until it returns
func BuildOracle(c *parallel.Ctx, vw graph.View, d *decomp.Decomposition, k int, seed uint64) *Oracle {
	m := vw.M
	if d == nil {
		if k <= 0 {
			k = defaultK(m.Omega())
		}
		d = decomp.Build(c, vw, k, seed, decomp.Options{})
	}
	o := &Oracle{D: d, g: vw.G}
	np := d.NumCenters()
	o.parentCluster = make([]int32, np)
	o.rootVertex = make([]int32, np)
	o.parentAttach = make([]int32, np)
	o.treeRoot = make([]int32, np)
	o.clusterLabel = make([]int32, np)
	o.bridgeBit = make([]bool, np)
	o.rbV = make([]bool, np)
	o.rbE = make([]bool, np)
	o.deepBlockV = make([]int32, np)
	o.deepBlockE = make([]int32, np)
	o.spanBCC = make([]int32, np)
	o.internalOffset = make([]int32, np)
	if np == 0 {
		return o
	}

	// --- Clusters spanning tree by BFS over the implicit clusters graph.
	sym := c.Sym()
	for i := range o.parentCluster {
		o.parentCluster[i] = -1
		o.rootVertex[i] = -1
		o.parentAttach[i] = -1
	}
	var roots []int32
	neighborCache := make([][]decomp.CenterEdge, np)
	nbrs := func(ci int32) []decomp.CenterEdge {
		if neighborCache[ci] == nil {
			s := d.Center(m, int(ci))
			es := d.NeighborCenters(m, sym, s)
			if es == nil {
				es = []decomp.CenterEdge{}
			}
			neighborCache[ci] = es
		}
		return neighborCache[ci]
	}
	for s := int32(0); s < int32(np); s++ {
		if o.parentCluster[s] >= 0 {
			continue
		}
		o.parentCluster[s] = s
		roots = append(roots, s)
		frontier := []int32{s}
		for len(frontier) > 0 {
			var next []int32
			for _, ci := range frontier {
				for _, e := range nbrs(ci) {
					cj := int32(d.CenterIndex(m, e.Other))
					if o.parentCluster[cj] >= 0 {
						continue
					}
					o.parentCluster[cj] = ci
					o.rootVertex[cj] = e.To     // vertex inside the child cluster
					o.parentAttach[cj] = e.From // vertex inside ci
					next = append(next, cj)
				}
			}
			frontier = next
		}
	}
	m.Write(3 * np) // tree arrays
	o.ctree = eulertour.NewForest(m, roots, o.parentCluster)
	// Force the LCA lifting table now so its writes are charged to the
	// construction, keeping queries write-free.
	_ = o.ctree.LCA(m, roots[0], roots[0])
	rootfix := o.ctree.Rootfix(m, func(v int32) int64 {
		if o.parentCluster[v] == v {
			return int64(v)
		}
		return -1
	}, func(par, self int64) int64 {
		if self >= 0 {
			return self
		}
		return par
	}, nil)
	for i := range o.treeRoot {
		o.treeRoot[i] = int32(rootfix[i])
	}
	m.Write(np)

	// --- BC labeling of the clusters graph: wmin/wmax from non-tree
	// cluster edges (multiplicity-aware), low/high leaffix, critical
	// edges, then connectivity over the non-critical cluster edges.
	wmin := make([]int64, np)
	wmax := make([]int64, np)
	isTreeEdge := func(a, b int32) bool {
		return (o.parentCluster[a] == b && a != b) || (o.parentCluster[b] == a && b != a)
	}
	for ci := int32(0); ci < int32(np); ci++ {
		f := int64(o.ctree.First(m, ci))
		wmin[ci], wmax[ci] = f, f
		for _, e := range nbrs(ci) {
			cj := int32(d.CenterIndex(m, e.Other))
			// A tree edge with multiplicity 1 is excluded; everything
			// else (non-tree, or extra parallel copies) contributes.
			if isTreeEdge(ci, cj) && e.Multiplicity == 1 {
				continue
			}
			fj := int64(o.ctree.First(m, cj))
			if fj < wmin[ci] {
				wmin[ci] = fj
			}
			if fj > wmax[ci] {
				wmax[ci] = fj
			}
		}
	}
	m.Write(2 * np)
	low := o.ctree.Leaffix(m, func(v int32) int64 { return wmin[v] },
		func(a, x int64) int64 {
			if x < a {
				return x
			}
			return a
		}, nil)
	high := o.ctree.Leaffix(m, func(v int32) int64 { return wmax[v] },
		func(a, x int64) int64 {
			if x > a {
				return x
			}
			return a
		}, nil)
	m.Write(2 * np)
	critical := make([]bool, np)
	for ci := int32(0); ci < int32(np); ci++ {
		if o.parentCluster[ci] == ci {
			continue
		}
		p := o.parentCluster[ci]
		if int64(o.ctree.First(m, p)) <= low[ci] && high[ci] <= int64(o.ctree.Last(m, p)) {
			critical[ci] = true
		}
	}
	m.Write(np)
	// Components of the clusters graph minus critical tree edges.
	cuf := newRefUF(np)
	for ci := int32(0); ci < int32(np); ci++ {
		for _, e := range nbrs(ci) {
			cj := int32(d.CenterIndex(m, e.Other))
			if cj < ci {
				continue
			}
			if isTreeEdge(ci, cj) && e.Multiplicity == 1 {
				child := ci
				if o.parentCluster[cj] == ci {
					child = cj
				}
				if critical[child] {
					continue
				}
			}
			cuf.union(ci, cj)
		}
	}
	minOf := map[int32]int32{}
	for ci := int32(0); ci < int32(np); ci++ {
		r := cuf.find(ci)
		if cur, ok := minOf[r]; !ok || ci < cur {
			minOf[r] = ci
		}
	}
	for ci := int32(0); ci < int32(np); ci++ {
		o.clusterLabel[ci] = minOf[cuf.find(ci)]
	}
	m.Write(np)
	// Cluster tree edge (P, C) is a bridge of G iff it is a bridge of the
	// clusters multigraph: C's component is the singleton {C}.
	compSize := map[int32]int32{}
	for ci := int32(0); ci < int32(np); ci++ {
		compSize[o.clusterLabel[ci]]++
	}
	for ci := int32(0); ci < int32(np); ci++ {
		if o.parentCluster[ci] != ci && o.clusterLabel[ci] == ci && compSize[ci] == 1 {
			o.bridgeBit[ci] = true
		}
	}
	m.Write(np)

	// --- Per-cluster local-graph pass: root-biconnectivity bits for each
	// tree edge, spanning-BCC unions, and internal BCC counts (Lemma 5.6,
	// Lemma 5.7). One local graph per cluster: O(k²) each, O(nk) total.
	huf := newRefUF(np) // H-graph: nodes are tree edges keyed by child cluster
	internalCount := make([]int32, np)
	for ci := int32(0); ci < int32(np); ci++ {
		lg := o.local(m, sym, ci)
		// Bits for each child edge D: can one pass from D through ci to
		// ci's parent side?
		if o.parentCluster[ci] != ci {
			exit := lg.idOf[o.parentAttach[ci]]
			for voID, child := range lg.voEdge {
				if child == ci {
					continue // the parent edge itself
				}
				y := voID
				o.rbV[child] = lg.ref.SameBCC(y, exit)
				o.rbE[child] = lg.ref.TwoEdgeCC[y] == lg.ref.TwoEdgeCC[exit]
			}
		} else {
			// Root cluster: no parent side; mark children passable only
			// for path checks that terminate here (unused values).
			for _, child := range lg.voEdge {
				if child != ci {
					o.rbV[child] = true
					o.rbE[child] = true
				}
			}
		}
		// Spanning-BCC equivalence: tree edges whose Vo nodes share a
		// local BCC belong to one biconnected component of G.
		vos := make([]int32, 0, len(lg.voEdge))
		for voID := range lg.voEdge {
			vos = append(vos, voID)
		}
		for i := 0; i < len(vos); i++ {
			for j := i + 1; j < len(vos); j++ {
				if lg.ref.SameBCC(vos[i], vos[j]) {
					huf.union(lg.voEdge[vos[i]], lg.voEdge[vos[j]])
				}
			}
		}
		// Internal BCCs: local BCCs containing no Vo node.
		voBCC := map[int32]bool{}
		for _, voID := range vos {
			for _, b := range lg.ref.VertexBCCs[voID] {
				voBCC[b] = true
			}
		}
		cnt := int32(0)
		for b := 0; b < lg.ref.NumBCC; b++ {
			if !voBCC[int32(b)] {
				cnt++
			}
		}
		internalCount[ci] = cnt
	}
	// Prefix sums for internal label offsets; spanning ids live above.
	var off int32
	for ci := 0; ci < np; ci++ {
		o.internalOffset[ci] = off
		off += internalCount[ci]
	}
	o.spanBase = off
	m.Write(np)
	hmin := map[int32]int32{}
	spanComps := map[int32]bool{}
	for ci := int32(0); ci < int32(np); ci++ {
		if o.parentCluster[ci] == ci {
			continue
		}
		r := huf.find(ci)
		if cur, ok := hmin[r]; !ok || ci < cur {
			hmin[r] = ci
		}
	}
	for ci := int32(0); ci < int32(np); ci++ {
		if o.parentCluster[ci] == ci {
			o.spanBCC[ci] = -1
			continue
		}
		o.spanBCC[ci] = o.spanBase + hmin[huf.find(ci)]
		spanComps[o.spanBCC[ci]] = true
	}
	m.Write(np)
	o.NumBCC = int(off) + len(spanComps)

	// --- Rootfix for deepest blocked ancestors.
	dbv := o.ctree.Rootfix(m, func(v int32) int64 {
		if o.parentCluster[v] != v && !o.rbV[v] {
			return int64(o.ctree.Depth(m, v))
		}
		return -1
	}, func(par, self int64) int64 {
		if self > par {
			return self
		}
		return par
	}, nil)
	dbe := o.ctree.Rootfix(m, func(v int32) int64 {
		if o.parentCluster[v] != v && !o.rbE[v] {
			return int64(o.ctree.Depth(m, v))
		}
		return -1
	}, func(par, self int64) int64 {
		if self > par {
			return self
		}
		return par
	}, nil)
	for i := range o.deepBlockV {
		o.deepBlockV[i] = int32(dbv[i])
		o.deepBlockE[i] = int32(dbe[i])
	}
	m.Write(2 * np)

	// --- Count the biconnected components of small primary-free
	// components (answered implicitly at query time, but NumBCC should
	// cover the whole graph). One ρ query per vertex, one materialization
	// per implicit component: O(nk) expected reads.
	for v := int32(0); int(v) < vw.G.N(); v++ {
		s := d.Rho(m, sym, v)
		if d.CenterIndex(m, s) < 0 && s == v {
			ref, _ := o.smallComponent(m, sym, v)
			o.NumBCC += ref.NumBCC
		}
	}
	return o
}

func defaultK(omega int) int {
	k := 2
	for k*k < omega {
		k++
	}
	return k
}
