package bicc

import (
	"testing"
	"testing/quick"

	"repro/internal/asym"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func buildOracle(g *graph.Graph, k int, seed uint64) (*Oracle, *asym.Meter, *parallel.Ctx) {
	m := asym.NewMeter(k * k)
	c := parallel.NewCtx(m, asym.NewSymTracker(0))
	o := BuildOracle(c, graph.View{G: g, M: m}, nil, k, seed)
	return o, m, c
}

// checkOracle compares oracle answers against ground truth on every vertex,
// every edge, and a sample of vertex pairs.
func checkOracle(t *testing.T, g *graph.Graph, k int, seed uint64) {
	t.Helper()
	o, _, _ := buildOracle(g, k, seed)
	ref := NewRef(g)
	qm := asym.NewMeter(k * k)

	for v := int32(0); int(v) < g.N(); v++ {
		if got, want := o.IsArticulation(qm, nil, v), ref.IsArticulation[v]; got != want {
			t.Fatalf("IsArticulation(%d) = %v, want %v (k=%d seed=%d)", v, got, want, k, seed)
		}
	}
	for i, e := range g.Edges() {
		if e[0] == e[1] {
			continue
		}
		if got, want := o.IsBridge(qm, nil, e[0], e[1]), ref.BridgeSet[i]; got != want {
			t.Fatalf("IsBridge(%d,%d) = %v, want %v (k=%d seed=%d)", e[0], e[1], got, want, k, seed)
		}
	}
	rng := graph.NewRNG(seed + 777)
	for i := 0; i < 300; i++ {
		u := int32(rng.Intn(g.N()))
		v := int32(rng.Intn(g.N()))
		if u == v {
			continue
		}
		if got, want := o.Biconnected(qm, nil, u, v), ref.SameBCC(u, v); got != want {
			t.Fatalf("Biconnected(%d,%d) = %v, want %v (k=%d seed=%d)", u, v, got, want, k, seed)
		}
		if got, want := o.OneEdgeConnected(qm, nil, u, v), ref.TwoEdgeCC[u] == ref.TwoEdgeCC[v]; got != want {
			t.Fatalf("OneEdgeConnected(%d,%d) = %v, want %v (k=%d seed=%d)", u, v, got, want, k, seed)
		}
	}
	// Edge labels: same partition as the reference.
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i, e := range g.Edges() {
		if e[0] == e[1] {
			continue
		}
		got := o.EdgeBCCLabel(qm, nil, e[0], e[1])
		want := ref.EdgeBCC[i]
		if x, ok := fwd[got]; ok && x != want {
			t.Fatalf("edge (%d,%d): oracle label %d maps to ref %d and %d (k=%d seed=%d)",
				e[0], e[1], got, x, want, k, seed)
		}
		if x, ok := bwd[want]; ok && x != got {
			t.Fatalf("edge (%d,%d): ref label %d maps to oracle %d and %d (k=%d seed=%d)",
				e[0], e[1], want, x, got, k, seed)
		}
		fwd[got] = want
		bwd[want] = got
	}
	if o.NumBCC != ref.NumBCC {
		t.Fatalf("NumBCC = %d, want %d (k=%d seed=%d)", o.NumBCC, ref.NumBCC, k, seed)
	}
}

func TestOracleFigure2(t *testing.T) {
	checkOracle(t, figure2(), 3, 11)
	checkOracle(t, figure2(), 4, 12)
}

func TestOracleFamilies(t *testing.T) {
	for name, tc := range map[string]struct {
		g *graph.Graph
		k int
	}{
		"cycle":        {graph.Cycle(40), 5},
		"path":         {graph.Path(30), 4},
		"ladder":       {graph.Ladder(20), 6},
		"grid":         {graph.Grid2D(8, 8), 5},
		"3regular":     {graph.RandomRegular(90, 3, 5), 6},
		"tree":         {graph.RandomTree(60, 3), 5},
		"lollipop":     {graph.Lollipop(6, 12), 4},
		"disconnected": {graph.Disconnected(graph.Lollipop(5, 5), 3), 4},
		"small-comps":  {graph.Disconnected(graph.Cycle(4), 6), 8},
	} {
		t.Run(name, func(t *testing.T) { checkOracle(t, tc.g, tc.k, 21) })
	}
}

func TestOracleSeedsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.RandomRegular(60, 3, seed)
		o, _, _ := buildOracle(g, 5, seed+1)
		ref := NewRef(g)
		qm := asym.NewMeter(25)
		for v := int32(0); int(v) < g.N(); v++ {
			if o.IsArticulation(qm, nil, v) != ref.IsArticulation[v] {
				return false
			}
		}
		rng := graph.NewRNG(seed + 2)
		for i := 0; i < 60; i++ {
			u, v := int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))
			if u == v {
				continue
			}
			if o.Biconnected(qm, nil, u, v) != ref.SameBCC(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleBridgeHeavy(t *testing.T) {
	// Trees are all bridges and articulation points: stress the bridge
	// machinery across cluster boundaries.
	g := graph.RandomTree(120, 9)
	checkOracle(t, g, 6, 31)
}

func TestOracleSublinearWrites(t *testing.T) {
	// Theorem 5.3: O(n/√ω) writes. The constant is ~30 words of per-cluster
	// state, so sublinearity in n needs k above that; also check the O(n/k)
	// scaling directly across two k values.
	g := graph.RandomRegular(4000, 3, 41)
	o64, m64, _ := buildOracle(g, 64, 43)
	_ = o64
	if m64.Writes() >= int64(g.N()) {
		t.Fatalf("writes = %d not sublinear in n = %d", m64.Writes(), g.N())
	}
	o16, m16, _ := buildOracle(g, 16, 43)
	_ = o16
	// Quadrupling k should cut writes by roughly 4; demand at least 2x.
	if m64.Writes()*2 > m16.Writes() {
		t.Fatalf("writes k=64: %d, k=16: %d — not scaling as n/k", m64.Writes(), m16.Writes())
	}
	limit := int64(40 * g.N() / 64)
	if m64.Writes() > limit {
		t.Fatalf("writes = %d > %d (n=%d k=64)", m64.Writes(), limit, g.N())
	}
}

func TestOracleQueryCost(t *testing.T) {
	// Queries: O(k²) expected reads, zero writes.
	g := graph.RandomRegular(1000, 3, 51)
	k := 8
	o, _, _ := buildOracle(g, k, 53)
	qm := asym.NewMeter(k * k)
	var reads int64
	const pairs = 200
	rng := graph.NewRNG(99)
	for i := 0; i < pairs; i++ {
		u, v := int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))
		before := qm.Snapshot()
		o.Biconnected(qm, nil, u, v)
		d := qm.Snapshot().Sub(before)
		if d.Writes != 0 {
			t.Fatalf("query wrote %d words", d.Writes)
		}
		reads += d.Reads
	}
	avg := reads / pairs
	if avg > int64(120*k*k) {
		t.Fatalf("avg query reads = %d, want O(k²) = O(%d)", avg, k*k)
	}
}

func TestOracleVsBCLabelingAgreement(t *testing.T) {
	// The two §5 implementations must agree with each other end to end.
	g := graph.GNM(150, 250, 61, true)
	// The oracle requires bounded degree for its cost bounds, but remains
	// correct on any graph; compare answers anyway.
	b, _, _ := buildBC(g, 8)
	o, _, _ := buildOracle(g, 5, 63)
	qm := asym.NewMeter(25)
	rng := graph.NewRNG(7)
	for i := 0; i < 200; i++ {
		u, v := int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))
		if u == v {
			continue
		}
		if b.SameBCC(qm, u, v) != o.Biconnected(qm, nil, u, v) {
			t.Fatalf("BC labeling and oracle disagree on (%d,%d)", u, v)
		}
	}
}

func TestOracleEmptyAndTiny(t *testing.T) {
	empty := graph.FromEdges(2, nil)
	o, _, _ := buildOracle(empty, 4, 1)
	qm := asym.NewMeter(16)
	if o.Biconnected(qm, nil, 0, 1) {
		t.Fatal("isolated vertices biconnected")
	}
	single := graph.FromEdges(2, [][2]int32{{0, 1}})
	o2, _, _ := buildOracle(single, 4, 1)
	if !o2.IsBridge(qm, nil, 0, 1) {
		t.Fatal("single edge not bridge")
	}
	if o2.IsArticulation(qm, nil, 0) {
		t.Fatal("endpoint articulation")
	}
}

func TestOracleDeterministic(t *testing.T) {
	g := graph.Grid2D(10, 10)
	a, _, _ := buildOracle(g, 5, 99)
	b, _, _ := buildOracle(g, 5, 99)
	qm := asym.NewMeter(25)
	for _, e := range g.Edges() {
		if a.EdgeBCCLabel(qm, nil, e[0], e[1]) != b.EdgeBCCLabel(qm, nil, e[0], e[1]) {
			t.Fatal("oracle not deterministic")
		}
	}
}
